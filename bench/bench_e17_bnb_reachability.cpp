// E17 (extension) — the flip side of the paper's massive parallelism: the
// layered DP (sequential or parallel) always pays all 2^k states, but a
// top-down solver only pays the states REACHABLE under the instance's
// action structure, plus branch-and-bound pruning. This bench measures how
// much of the 2^k state space each application family actually needs —
// context for when the 2^30-PE machine is warranted.
#include <iostream>

#include "tt/generator.hpp"
#include "tt/solver_bnb.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ttp::tt;
  ttp::util::print_section(
      std::cout,
      "E17 (extension): reachable/visited states vs the dense 2^k sweep");

  ttp::util::Table t({"family (k=10)", "2^k states", "reachable",
                      "B&B visited", "pruned actions", "visited share"});
  auto add = [&](const std::string& name, const Instance& ins) {
    const auto seq = SequentialSolver().solve(ins);
    const auto bnb = BnbSolver().solve(ins);
    if (bnb.cost != seq.cost) {
      std::cerr << "MISMATCH on " << name << "\n";
      exit(1);
    }
    const std::size_t full = std::size_t{1} << ins.k();
    const auto visited = bnb.breakdown.get("visited_states");
    t.add_row({name, std::to_string(full),
               std::to_string(BnbSolver::count_reachable(ins)),
               std::to_string(visited),
               std::to_string(bnb.breakdown.get("pruned_actions")),
               ttp::util::Table::num(
                   100.0 * static_cast<double>(visited) /
                       static_cast<double>(full),
                   3) +
                   "%"});
  };

  const int k = 10;
  {
    ttp::util::Rng rng(1);
    add("random dense", random_instance(k, RandomOptions{}, rng));
  }
  {
    ttp::util::Rng rng(2);
    add("medical diagnosis", medical_instance(k, k, rng));
  }
  {
    ttp::util::Rng rng(3);
    add("machine fault", machine_fault_instance(k, rng));
  }
  {
    ttp::util::Rng rng(4);
    add("biology key", biology_key_instance(k, rng));
  }
  {
    // Prefix-structured family: tests and treatments are prefixes; the
    // state space collapses to intervals.
    Instance ins(k, std::vector<double>(k, 1.0));
    for (int i = 0; i + 1 < k; ++i) ins.add_test(ttp::util::universe(i + 1), 1.0);
    for (int i = 0; i < k; ++i) {
      ins.add_treatment(ttp::util::universe(i + 1), 1.0 + 0.5 * (i + 1));
    }
    add("prefix chain", ins);
  }
  t.print(std::cout);

  std::cout << "\nfamilies with singleton treatments reach the whole state "
               "space (any object can be removed from any state), which is "
               "exactly the regime the paper's O(N·2^k)-PE machine targets; "
               "coarse-treatment structure collapses it to a sliver a "
               "workstation handles top-down.\n";
  return 0;
}
