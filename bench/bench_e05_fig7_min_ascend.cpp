// E5 — Paper Fig. 7: the ASCEND min-reduction over the action index with
// p = 3 (N = 8 actions). After step t, each aligned 2^(t+1) block holds its
// block minimum; after the last step every PE holds the global minimum —
// which is why M[S,i] becomes C(S) at ALL of a state's PEs.
//
// Regenerates: the per-step M vectors of the figure's example.
#include <algorithm>
#include <iostream>
#include <vector>

#include "net/hypercube.hpp"
#include "util/table.hpp"

int main() {
  ttp::util::print_section(std::cout,
                           "E5: Fig. 7 — ASCEND min over action dims, p=3");

  struct S {
    int v = 0;
  };
  ttp::net::HypercubeMachine<S> m(3);
  const std::vector<int> init{42, 17, 88, 5, 63, 29, 71, 11};
  for (std::size_t i = 0; i < 8; ++i) m.at(i).v = init[i];

  auto print_row = [&](const std::string& label) {
    std::cout << label << ":";
    for (std::size_t i = 0; i < 8; ++i) std::cout << '\t' << m.at(i).v;
    std::cout << '\n';
  };
  std::cout << "PE (i)     :";
  for (int i = 0; i < 8; ++i) std::cout << '\t' << i;
  std::cout << '\n';
  print_row("initial M  ");

  bool ok = true;
  for (int t = 0; t < 3; ++t) {
    m.dim_step(t, [](int, S& lo, S& hi) {
      const int mn = std::min(lo.v, hi.v);
      lo.v = hi.v = mn;
    });
    print_row("after t=" + std::to_string(t) + "  ");
    // Invariant from the paper's induction: aligned blocks of 2^(t+1) agree
    // on their block minimum.
    const int block = 1 << (t + 1);
    for (int base = 0; base < 8; base += block) {
      int expect = init[static_cast<std::size_t>(base)];
      for (int j = 1; j < block; ++j) {
        expect = std::min(expect, init[static_cast<std::size_t>(base + j)]);
      }
      for (int j = 0; j < block; ++j) {
        ok = ok && m.at(static_cast<std::size_t>(base + j)).v == expect;
      }
    }
  }
  std::cout << "\nblock-minimum invariant held at every step: "
            << (ok ? "YES" : "NO") << '\n';
  std::cout << "all PEs hold the global min ("
            << *std::min_element(init.begin(), init.end()) << "): "
            << (m.at(0).v == 5 ? "YES" : "NO") << '\n';
  return ok ? 0 : 1;
}
