// E22 (extension) — reliability of the 2^20-PE machine class: what does a
// transient bit flip do to the TT computation? Record the solve's static
// instruction stream, replay it on a fresh machine, inject a fault at a
// chosen instruction, and count wrong DP-table entries.
//
// The headline finding is NOT the blast radius but the opposite: the
// algorithm is accidentally fault-masking. A single-PE flip is healed by
// three mechanisms: (a) the layer-flag propagation reaches every PE along
// k redundant dimension paths; (b) the ASCEND min-reduction OVERWRITES
// every (S,i) PE of a state with the group minimum, repairing a corrupted
// member unless its wrong value undercuts the true minimum; (c) each
// layer's R=Q=M recopy re-derives scratch state from healed M. Only flips
// landing in the final-value registers after their last write, or
// machine-wide row faults (a stuck register driver), survive to the
// output.
#include <iostream>

#include "bvm/io.hpp"
#include "tt/generator.hpp"
#include "tt/solver_bvm.hpp"
#include "tt/solver_hypercube.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ttp;
using namespace ttp::tt;

struct FaultResult {
  std::size_t wrong_costs = 0;
  std::size_t states = 0;
};

constexpr std::size_t kWholeRow = static_cast<std::size_t>(-1);

// Replays `program` on a fresh machine loaded with the instance's data,
// flipping one bit right after `fault_at` instructions (fault_at < 0: no
// fault), then compares the extracted table with the reference.
FaultResult replay_with_fault(const Instance& ins,
                              const std::vector<bvm::Instr>& program,
                              const util::Fixed::Format& fmt,
                              const TtRegisterMap& rm, int fault_at,
                              int fault_reg, std::size_t fault_pe,
                              const DpTable& reference) {
  const int k = ins.k();
  const int a = HypercubeSolver::action_dims(ins);
  const int npad = 1 << a;
  bvm::Machine m(bvm::BvmConfig::for_dims(k + a));
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    const int i = static_cast<int>(pe) & (npad - 1);
    const bool real = i < ins.num_actions();
    const util::Mask t = real ? ins.action(i).set : ins.universe();
    for (int e = 0; e < k; ++e) {
      m.poke(bvm::Reg::R(rm.tmask + e), pe, util::has_bit(t, e));
    }
    m.poke(bvm::Reg::R(rm.istest), pe, real && ins.action(i).is_test);
    const std::uint64_t raw =
        real ? util::Fixed::from_double(fmt, ins.action(i).cost).raw()
             : fmt.inf_raw();
    m.poke_value(rm.ct, fmt.bits, pe, raw);
  }
  for (std::size_t idx = 0; idx < program.size(); ++idx) {
    if (static_cast<int>(idx) == fault_at) {
      if (fault_pe == kWholeRow) {
        // Stuck register driver: the whole row flips.
        bvm::BitVec& row = m.row(bvm::Reg::R(fault_reg));
        for (std::size_t w = 0; w < row.words(); ++w) {
          row.word(w) = ~row.word(w);
        }
        row.trim();
      } else {
        m.poke(bvm::Reg::R(fault_reg), fault_pe,
               !m.peek(bvm::Reg::R(fault_reg), fault_pe));
      }
    }
    m.exec(program[idx]);
  }

  FaultResult res;
  res.states = std::size_t{1} << k;
  for (std::size_t s = 1; s < res.states; ++s) {
    const std::uint64_t raw = m.peek_value(rm.m, fmt.bits, s << a);
    const util::Fixed v(fmt, raw);
    const double got = v.is_inf() ? kInf : v.to_double();
    const double want = reference.cost[s];
    const bool both_inf = std::isinf(got) && std::isinf(want);
    if (!both_inf && got != want) ++res.wrong_costs;
  }
  return res;
}

}  // namespace

int main() {
  ttp::util::print_section(
      std::cout, "E22: single-bit-flip fault propagation through the solve");

  util::Rng rng(777);
  RandomOptions opt;
  opt.num_tests = 4;
  opt.num_treatments = 4;
  opt.integer_costs = true;
  opt.integer_weights = true;
  const Instance ins = random_instance(6, opt, rng);
  const util::Fixed::Format fmt{16, 0};

  BvmSolverOptions bopt;
  bopt.format = fmt;
  std::vector<bvm::Instr> program;
  bopt.record_program = &program;
  const auto clean = BvmSolver(bopt).solve(ins);
  const auto seq = SequentialSolver().solve(ins);
  if (max_table_diff(clean.table, seq.table) != 0.0) {
    std::cerr << "CLEAN RUN MISMATCH\n";
    return 1;
  }

  const int k = ins.k();
  const int a = HypercubeSolver::action_dims(ins);
  const TtRegisterMap rm(k + a, k, a, fmt.bits, fmt.frac);
  const std::size_t victim_pe = std::size_t{0b010110} << a;  // (S=22, i=0)

  ttp::util::Table t({"fault point (instr #)", "fault",
                      "wrong C(S) entries", "of states"});
  const int total = static_cast<int>(program.size());
  struct Probe {
    int at;
    int reg;
    std::size_t pe;
    const char* name;
  };
  const int msb = rm.m + fmt.bits - 1;
  const Probe probes[] = {
      {-1, rm.m, victim_pe, "none (control)"},
      // Single-PE transients: healed by redundancy / min-reduction.
      {total / 10, rm.pid + a + 2, victim_pe,
       "1 PE: processor-ID bit (early)"},
      {total / 10, rm.tmask + 1, victim_pe, "1 PE: T_i membership (early)"},
      {total / 3, rm.m, victim_pe, "1 PE: M low bit (mid-solve)"},
      {2 * total / 3, msb, victim_pe, "1 PE: M top bit (late)"},
      {total - 40, msb, victim_pe, "1 PE: M top bit (after last write)"},
      // Machine-wide row faults: a stuck register driver.
      {total / 3, rm.tmask + 1, kWholeRow, "ALL PEs: T_i membership row"},
      {2 * total / 3, rm.m + 2, kWholeRow, "ALL PEs: M bit-2 row"},
  };
  for (const Probe& p : probes) {
    const FaultResult r = replay_with_fault(ins, program, fmt, rm, p.at,
                                            p.reg, p.pe, seq.table);
    t.add_row({p.at < 0 ? "-" : std::to_string(p.at), p.name,
               std::to_string(r.wrong_costs), std::to_string(r.states - 1)});
  }
  t.print(std::cout);

  std::cout << "\nsingle-PE transients are almost entirely HEALED: layer "
               "flags arrive over k redundant dimension paths, and the "
               "min-reduction overwrites every (S,i) member with the group "
               "minimum — only a flip in the answer register after its "
               "last write survives (1 entry). Machine-wide row faults "
               "(stuck drivers) corrupt broadly. An unplanned but real "
               "robustness property of the paper's (S,i)-replicated "
               "design.\n";
  return 0;
}
