// E21 (engineering) — throughput of the BVM simulator itself: simulated
// instructions per second as the machine grows, and simulated PE-operations
// per second (the packed-bit-vector design's payoff: one host word carries
// 64 PEs). This is the number that makes the repository's "we simulate the
// paper's 2^20-PE machine cycle-accurately" practical rather than
// aspirational.
#include <benchmark/benchmark.h>

#include "bvm/machine.hpp"

namespace {

// A representative instruction mix: local Boolean op, in-cycle shift,
// lateral read, masked select — roughly the TT microprogram's diet.
void run_mix(ttp::bvm::Machine& m, int rounds) {
  using namespace ttp::bvm;
  for (int i = 0; i < rounds; ++i) {
    m.exec(binop(Reg::R(0), kTtXorFD, Reg::R(0), Reg::R(1)));
    m.exec(mov(Reg::R(2), Reg::R(0), Nbr::S));
    m.exec(mov(Reg::R(3), Reg::R(2), Nbr::L));
    Instr sel;
    sel.dest = Reg::R(1);
    sel.f = kTtMux;
    sel.g = kTtB;
    sel.src_f = Reg::R(1);
    sel.src_d = Reg::R(3);
    sel.act = Act::If;
    sel.act_set = 0b0101;
    m.exec(sel);
  }
}

void BM_BvmInstructionMix(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  const int h = static_cast<int>(state.range(1));
  ttp::bvm::Machine m(ttp::bvm::BvmConfig{r, h, 64});
  for (std::size_t pe = 0; pe < m.num_pes(); pe += 3) {
    m.poke(ttp::bvm::Reg::R(0), pe, true);
  }
  for (auto _ : state) {
    run_mix(m, 64);
  }
  const double instr = static_cast<double>(state.iterations()) * 64 * 4;
  state.counters["PEs"] = static_cast<double>(m.num_pes());
  state.counters["instr/s"] =
      benchmark::Counter(instr, benchmark::Counter::kIsRate);
  state.counters["PEop/s"] = benchmark::Counter(
      instr * static_cast<double>(m.num_pes()), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_BvmInstructionMix)
    ->Args({2, 4})    // 64 PEs
    ->Args({3, 8})    // 2^11
    ->Args({4, 10})   // 2^14
    ->Args({4, 16})   // 2^20, the paper's implementable machine
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
