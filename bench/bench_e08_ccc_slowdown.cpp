// E8 — Claim (§3, citing Preparata-Vuillemin): "these hypercube network
// algorithms can be simulated on a CCC at a slowdown of a factor of 4 to 6,
// regardless of the network sizes."
//
// Measured: parallel steps of a full ASCEND (and DESCEND) sweep on the
// hypercube machine vs the pipelined CCC machine, across machine sizes from
// 2^4 to 2^16 PEs, plus the unpipelined strawman for contrast.
#include <iostream>

#include "net/ccc.hpp"
#include "net/hypercube.hpp"
#include "util/table.hpp"

namespace {

struct Item {
  std::uint64_t v = 0;
};

void mix(int dim, Item& lo, Item& hi) {
  const std::uint64_t a = lo.v, b = hi.v;
  lo.v = a * 1000003u + b * 31u + static_cast<std::uint64_t>(dim);
  hi.v = b * 999979u + a * 37u + static_cast<std::uint64_t>(dim);
}

}  // namespace

int main() {
  using namespace ttp::net;
  ttp::util::print_section(
      std::cout, "E8: CCC simulates hypercube ASCEND at constant slowdown");

  ttp::util::Table t({"shape (r,h)", "PEs", "hypercube steps",
                      "CCC pipelined", "slowdown", "CCC unpipelined",
                      "naive slowdown"});
  double worst = 0, best = 1e9;
  for (const CccConfig cfg :
       {CccConfig{1, 2}, CccConfig{2, 2}, CccConfig::complete(2),
        CccConfig{3, 5}, CccConfig::complete(3), CccConfig{4, 9},
        CccConfig{4, 12}, CccConfig::complete(4)}) {
    HypercubeMachine<Item> hm(cfg.dims());
    CccMachine<Item> cm(cfg), um(cfg);
    for (std::size_t i = 0; i < hm.size(); ++i) {
      hm.at(i).v = cm.at(i).v = um.at(i).v = i * 2654435761u;
    }
    hm.ascend(mix);
    cm.ascend(mix);
    um.ascend_unpipelined(mix);
    // Results must agree bit-for-bit (verified continuously in tests; spot
    // check here too).
    bool same = true;
    for (std::size_t i = 0; i < hm.size(); ++i) {
      same = same && hm.at(i).v == cm.at(i).v && hm.at(i).v == um.at(i).v;
    }
    if (!same) {
      std::cerr << "MISMATCH\n";
      return 1;
    }
    const double s = static_cast<double>(cm.steps().parallel_steps) /
                     static_cast<double>(hm.steps().parallel_steps);
    const double su = static_cast<double>(um.steps().parallel_steps) /
                      static_cast<double>(hm.steps().parallel_steps);
    worst = std::max(worst, s);
    best = std::min(best, s);
    t.add_row({"(" + std::to_string(cfg.r) + "," + std::to_string(cfg.h) + ")",
               std::to_string(cfg.size()),
               std::to_string(hm.steps().parallel_steps),
               std::to_string(cm.steps().parallel_steps),
               ttp::util::Table::num(s, 3),
               std::to_string(um.steps().parallel_steps),
               ttp::util::Table::num(su, 3)});
  }
  t.print(std::cout);
  std::cout << "\npipelined slowdown stays within [" << best << ", " << worst
            << "] across a 4096x size range (paper band: 4-6; a constant, "
               "not growing with n)\n";
  return worst < 8.0 ? 0 : 1;
}
