// E4 — Paper Fig. 6: the broadcasting schedule on a 16-PE array. The figure
// lists, per ASCEND step, every "sender -> receiver" event when PE 0's value
// floods the machine with a traveling SENDER bit.
//
// Regenerates: the exact event list in the figure's binary-address format,
// plus the O(km) cost of a k-bit broadcast run on the bit-serial BVM.
#include <iostream>

#include "bvm/microcode/broadcast.hpp"
#include "net/schedule.hpp"
#include "util/table.hpp"

int main() {
  ttp::util::print_section(std::cout,
                           "E4: Fig. 6 — broadcasting on a 16-PE array");

  // Word-level schedule (the figure itself).
  ttp::net::HypercubeMachine<ttp::net::FlowState> m(4);
  m.at(0).value = 1;
  ttp::net::EventLog log;
  ttp::net::broadcast(m, 0, &log);
  std::cout << ttp::net::format_events_fig6(log, 4) << '\n';

  // The same algorithm as BVM microcode: k-bit value, sender control bit.
  using namespace ttp::bvm;
  Machine bm(BvmConfig{2, 2});  // 16 PEs
  const int k = 6;
  const Field value{0, k}, scratch{k, k};
  bm.poke_value(value.base, k, 0, 0x2D);
  const auto before = bm.instr_count();
  broadcast_from_pe0(bm, value, 12, scratch, 13, 14);
  bool ok = true;
  for (std::size_t pe = 0; pe < bm.num_pes(); ++pe) {
    ok = ok && bm.peek_value(value.base, k, pe) == 0x2D;
  }
  std::cout << "BVM realization: " << k << "-bit broadcast on "
            << bm.num_pes() << " PEs took " << (bm.instr_count() - before)
            << " instructions (paper: O(k·m) with control bits generated on "
               "the fly)\n";
  std::cout << "all PEs received the value: " << (ok ? "YES" : "NO") << '\n';
  return ok ? 0 : 1;
}
