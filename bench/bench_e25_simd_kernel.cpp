// E25 — The SIMD kernel vs the PR 2 scalar path, variant-forced.
//
// PR 2's bench (bench_e23) compares the kernel against the pre-kernel
// legacy loop under whatever variant TTP_KERNEL dispatches; this bench
// pins the variant per run with set_kernel_variant() and asks the PR 4
// acceptance question directly, at three altitudes:
//
//   BM_WarmSolve       ns/solve for a warm-arena solve_with_arena at
//                      k = 10..18 — the kernel's own speedup (acceptance:
//                      simd >= 1.5x scalar at k = 14..16).
//   BM_BatchMany       a 32-instance BatchSolver::solve_many batch — the
//                      speedup as the serving scheduler sees it, through
//                      the per-worker arena machinery.
//   BM_ServiceColdPath end-to-end svc::Service requests with a cache too
//                      small to hold anything and per-iteration-distinct
//                      instances, so every request walks the full miss
//                      path: canon -> cache miss -> scheduler -> kernel.
//
// Every run records {bench, k, N, variant, ns_per_solve} via the shared
// --json harness (bench_json.hpp); BENCH_e25.json at the repo root is this
// bench's committed trajectory and tools/bench_compare.py diffs two such
// files. The forced variant is restored to "auto" after each benchmark so
// run order cannot leak a pin into a later family.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include "svc/service.hpp"
#include "tt/generator.hpp"
#include "tt/kernel.hpp"
#include "tt/solver_batch.hpp"
#include "util/rng.hpp"

namespace {

using ttp::tt::Instance;

Instance bench_instance(int k, std::uint64_t seed = 77) {
  ttp::util::Rng rng(seed);
  ttp::tt::RandomOptions opt;
  opt.num_tests = 10;
  opt.num_treatments = 10;
  return ttp::tt::random_instance(k, opt, rng);
}

/// Pins the requested variant for the duration of one benchmark run and
/// restores auto-dispatch on destruction. Skips the run (with a visible
/// reason) when the variant is unavailable, e.g. "avx2" on a non-AVX2 CPU.
class VariantPin {
 public:
  VariantPin(benchmark::State& state, const char* spec) {
    if (!ttp::tt::set_kernel_variant(spec)) {
      state.SkipWithError(
          (std::string("kernel variant unavailable: ") + spec).c_str());
      ok_ = false;
    }
  }
  ~VariantPin() { ttp::tt::set_kernel_variant("auto"); }
  bool ok() const noexcept { return ok_; }

 private:
  bool ok_ = true;
};

void annotate(benchmark::State& state, const Instance& ins) {
  state.counters["k"] = static_cast<double>(ins.k());
  state.counters["N"] = static_cast<double>(ins.num_actions());
  state.SetLabel(std::string(ttp::tt::active_kernel_variant_name()));
}

void BM_WarmSolve(benchmark::State& state, const char* variant) {
  const VariantPin pin(state, variant);
  if (!pin.ok()) return;
  const auto ins = bench_instance(static_cast<int>(state.range(0)));
  ttp::tt::SolveArena arena;
  double cost = 0;
  for (auto _ : state) {
    cost = ttp::tt::solve_with_arena(ins, arena).cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["C(U)"] = cost;
  annotate(state, ins);
}

void BM_BatchMany(benchmark::State& state, const char* variant) {
  const VariantPin pin(state, variant);
  if (!pin.ok()) return;
  const int k = static_cast<int>(state.range(0));
  std::vector<Instance> batch;
  for (std::uint64_t i = 0; i < 32; ++i) {
    batch.push_back(bench_instance(k, 2000 + i));
  }
  ttp::tt::BatchSolver solver;
  for (auto _ : state) {
    auto results = solver.solve_many(batch);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
  annotate(state, batch.front());
}

void BM_ServiceColdPath(benchmark::State& state, const char* variant) {
  const VariantPin pin(state, variant);
  if (!pin.ok()) return;
  const int k = static_cast<int>(state.range(0));
  // A cache too small for even one procedure plus a zero batch window:
  // every request is a leader that pays the full canon + miss + solve
  // path, and latency is not padded by the micro-batch delay.
  ttp::svc::ServiceConfig cfg;
  cfg.cache.capacity_bytes = 1;
  cfg.scheduler.batch_delay = std::chrono::microseconds(0);
  ttp::svc::Service service(cfg);
  // Distinct weight vectors so canonicalization cannot collapse two
  // requests onto one key mid-iteration.
  std::vector<Instance> pool;
  for (std::uint64_t i = 0; i < 64; ++i) {
    pool.push_back(bench_instance(k, 3000 + i));
  }
  std::size_t next = 0;
  for (auto _ : state) {
    const auto r = service.solve(pool[next]);
    benchmark::DoNotOptimize(r.cost);
    next = (next + 1) % pool.size();
  }
  annotate(state, pool.front());
}

}  // namespace

// k = 10..18 spans the regimes that matter: tables inside L1 (k=10),
// L2-resident (k=12..16, the acceptance window), and spilling toward L3
// (k=18). "simd" resolves to the best variant the CPU supports.
BENCHMARK_CAPTURE(BM_WarmSolve, scalar, "scalar")
    ->DenseRange(10, 18, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WarmSolve, simd, "simd")
    ->DenseRange(10, 18, 2)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_BatchMany, scalar, "scalar")
    ->Arg(12)
    ->Arg(14)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BatchMany, simd, "simd")
    ->Arg(12)
    ->Arg(14)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Real time: the solve happens on the scheduler's drain thread while the
// caller blocks in solve().
BENCHMARK_CAPTURE(BM_ServiceColdPath, scalar, "scalar")
    ->Arg(12)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServiceColdPath, simd, "simd")
    ->Arg(12)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

TTP_BENCH_JSON_MAIN()
