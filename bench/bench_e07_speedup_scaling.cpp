// E7 — Claim: the parallel TT algorithm achieves speedup S = T_1/T_P =
// O(P / log P) on P = O(N·2^k) PEs (abstract + §1).
//
// Measured: T_1 = sequential M-evaluations; T_P = parallel machine steps of
// the hypercube run (word-level; the bit-serial factor p divides out of the
// ratio). If the claim holds, S · log2(P) / P is bounded by constants
// across sizes — the table's last column must stay flat-ish, not trend to 0
// or infinity.
#include <iostream>

#include "tt/generator.hpp"
#include "tt/solver_hypercube.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ttp::tt;
  ttp::util::print_section(std::cout,
                           "E7: speedup O(P/log P) — S·log2(P)/P across sizes");

  ttp::util::Table t({"k", "N", "PEs P", "T_1 (seq ops)", "T_P (par steps)",
                      "speedup S", "S·log2(P)/P"});
  ttp::util::Rng rng(123);
  double lo = 1e9, hi = 0;
  for (int k = 4; k <= 11; ++k) {
    RandomOptions opt;
    opt.num_tests = k;
    opt.num_treatments = k;
    const Instance ins = random_instance(k, opt, rng);
    const auto seq = SequentialSolver().solve(ins);
    const auto par = HypercubeSolver().solve(ins);
    const double T1 = static_cast<double>(seq.steps.total_ops);
    const double TP = static_cast<double>(par.steps.parallel_steps);
    const double P = static_cast<double>(par.breakdown.get("pes"));
    const double S = T1 / TP;
    const double norm = S * (std::log2(P)) / P;
    lo = std::min(lo, norm);
    hi = std::max(hi, norm);
    t.add_row({std::to_string(k), std::to_string(ins.num_actions()),
               ttp::util::Table::num(static_cast<std::uint64_t>(P)),
               ttp::util::Table::num(static_cast<std::uint64_t>(T1)),
               ttp::util::Table::num(static_cast<std::uint64_t>(TP)),
               ttp::util::Table::num(S, 4), ttp::util::Table::num(norm, 3)});
  }
  t.print(std::cout);
  std::cout << "\nnormalized speedup range across a 128x PE-count sweep: ["
            << lo << ", " << hi << "] (ratio " << hi / lo
            << "; bounded => O(P/log P) shape holds)\n";
  return hi / lo < 8.0 ? 0 : 1;
}
