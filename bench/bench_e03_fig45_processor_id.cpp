// E3 — Paper Figs. 4-5: the processor-ID ("each PE holds its own address").
// Fig. 4 shows the pattern for 8 PEs; Fig. 5 traces the generation.
//
// Regenerates: the 8-PE address table from the on-machine generator, the
// same on the 64-PE machine, and the generation-cost scaling that makes
// on-the-fly control bits worthwhile (§4.2).
#include <iostream>

#include "bvm/microcode/ids.hpp"
#include "util/bits.hpp"
#include "util/table.hpp"

namespace {

bool print_processor_id(ttp::bvm::Machine& m) {
  using namespace ttp::bvm;
  gen_processor_id(m, 0, 30, 31);
  const int dims = m.config().dims();
  bool ok = true;
  std::cout << "bit row \\ PE |";
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) std::cout << ' ' << pe % 10;
  std::cout << '\n';
  for (int t = dims - 1; t >= 0; --t) {
    std::cout << "  addr bit " << t << " |";
    const auto expect = ref_address_bit(m.config(), t);
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      const bool bit = m.peek(Reg::R(t), pe);
      ok = ok && bit == expect[pe];
      std::cout << ' ' << (bit ? '1' : '0');
    }
    std::cout << '\n';
  }
  return ok;
}

}  // namespace

int main() {
  using namespace ttp::bvm;
  ttp::util::print_section(std::cout,
                           "E3: Figs. 4-5 — processor-ID (each PE holds its "
                           "own address)");

  std::cout << "8-PE machine (the paper's Fig. 4 illustration):\n";
  Machine m8(BvmConfig{1, 2});
  bool ok = print_processor_id(m8);

  std::cout << "\ncost scaling (on-the-fly generation, instructions):\n";
  ttp::util::Table t({"machine", "PEs", "instructions", "instr / log2(n)^3"});
  for (int r : {1, 2, 3, 4}) {
    const BvmConfig cfg = BvmConfig::complete(r);
    if (cfg.dims() > 24) break;
    Machine m(cfg);
    gen_processor_id(m, 0, 30, 31);
    const double logn = cfg.dims();
    t.add_row({"complete CCC r=" + std::to_string(r),
               std::to_string(cfg.num_pes()),
               std::to_string(m.instr_count()),
               ttp::util::Table::num(
                   static_cast<double>(m.instr_count()) / (logn * logn * logn),
                   3)});
  }
  t.print(std::cout);
  std::cout << "\n8-PE table matches spec: " << (ok ? "YES" : "NO") << '\n';
  return ok ? 0 : 1;
}
