// Shared google-benchmark main with structured JSON emission.
//
// Every bench executable in this directory is one TU globbed into its own
// binary (bench/CMakeLists.txt), so this harness is header-only. Replacing
// BENCHMARK_MAIN() with TTP_BENCH_JSON_MAIN() adds one flag:
//
//   ./bench_e25_simd_kernel --json out.json [benchmark flags...]
//
// which, in addition to the normal console output, writes one JSON array of
// per-run records:
//
//   [{"bench": "BM_WaveSolve", "k": 14, "N": 20, "variant": "simd-avx2",
//     "ns_per_solve": 312410.7, "items_per_sec": 3201.1}, ...]
//
// Record fields are drawn from conventions the benches follow:
//   bench         benchmark family name (args stripped — k/N carry them)
//   k, N          state.counters["k"] / ["N"] (0 when a bench doesn't set
//                 them)
//   variant       state.SetLabel(...) — the kernel variant the run forced
//   ns_per_solve  real wall time per iteration in nanoseconds
//   items_per_sec state.SetItemsProcessed rate (0 when unused)
//   kernel        the dispatch's active kernel variant at emission time —
//                 records whether the host resolved to scalar /
//                 simd-portable / simd-avx2, independent of any per-case
//                 variant pin
//   obs           the observability mode the run executed under (the
//                 TTP_TRACE value; "off" when unset) — numbers taken with
//                 tracing on are not comparable to numbers taken with it
//                 off, and the stamp keeps them from being silently mixed
//
// kernel and obs are provenance stamps: tools/bench_compare.py keys on
// (bench, args, k, N, variant) and ignores them.
//
// Aggregate runs (--benchmark_repetitions aggregates) are skipped: records
// hold raw per-run numbers, and tools/bench_compare.py does the judging.
// The BENCH_*.json trajectory files at the repo root are produced this way
// (see docs/kernel.md).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "tt/kernel.hpp"

namespace ttp::benchjson {

/// The TTP_TRACE mode this process runs under ("off" when unset/empty).
inline std::string obs_mode() {
  const char* env = std::getenv("TTP_TRACE");
  return (env == nullptr || *env == '\0') ? std::string("off")
                                          : std::string(env);
}

/// One emitted record; see the header comment for field semantics.
struct Record {
  std::string bench;
  std::string args;  ///< benchmark arg string, e.g. "12/4" — keeps runs of
                     ///< one family with different shapes distinct
  double k = 0;
  double n = 0;
  std::string variant;
  double ns_per_solve = 0;
  double items_per_sec = 0;
};

/// Console reporter that additionally captures a Record per iteration run.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Record rec;
      // Family name and arg string separately: comparison keys stay stable
      // when a family gains or reorders cases.
      rec.bench = run.run_name.function_name;
      rec.args = run.run_name.args;
      if (const auto it = run.counters.find("k"); it != run.counters.end()) {
        rec.k = it->second.value;
      }
      if (const auto it = run.counters.find("N"); it != run.counters.end()) {
        rec.n = it->second.value;
      }
      rec.variant = run.report_label;
      if (run.iterations > 0) {
        rec.ns_per_solve = run.real_accumulated_time /
                           static_cast<double>(run.iterations) * 1e9;
      }
      if (const auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        rec.items_per_sec = it->second.value;
      }
      records_.push_back(std::move(rec));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Record>& records() const noexcept { return records_; }

 private:
  std::vector<Record> records_;
};

inline void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

/// Collapses records with equal (bench, k, N, variant) keys to one record
/// holding the minimum ns_per_solve (and maximum items_per_sec). With
/// --benchmark_repetitions=R each repetition lands here as its own raw
/// run; on a shared/noisy host the min across repetitions is the robust
/// per-solve estimate (scheduler steal time only ever inflates a run), so
/// that is what the committed BENCH_*.json trajectories record.
inline std::vector<Record> collapse_min(const std::vector<Record>& records) {
  std::vector<Record> out;
  for (const Record& r : records) {
    Record* found = nullptr;
    for (Record& o : out) {
      if (o.bench == r.bench && o.args == r.args && o.k == r.k &&
          o.n == r.n && o.variant == r.variant) {
        found = &o;
        break;
      }
    }
    if (found == nullptr) {
      out.push_back(r);
    } else {
      if (r.ns_per_solve > 0 && (found->ns_per_solve == 0 ||
                                 r.ns_per_solve < found->ns_per_solve)) {
        found->ns_per_solve = r.ns_per_solve;
      }
      if (r.items_per_sec > found->items_per_sec) {
        found->items_per_sec = r.items_per_sec;
      }
    }
  }
  return out;
}

/// Writes the captured records (duplicates collapsed, see collapse_min) as
/// a JSON array. Returns false (after perror) when the file cannot be
/// written.
inline bool write_json(const std::string& path,
                       const std::vector<Record>& raw) {
  const std::vector<Record> records = collapse_min(raw);
  std::string out = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    char num[256];
    out += "  {\"bench\": ";
    append_json_string(out, r.bench);
    out += ", \"args\": ";
    append_json_string(out, r.args);
    std::snprintf(num, sizeof(num),
                  ", \"k\": %g, \"N\": %g, \"variant\": ", r.k, r.n);
    out += num;
    append_json_string(out, r.variant);
    std::snprintf(num, sizeof(num),
                  ", \"ns_per_solve\": %.1f, \"items_per_sec\": %.1f",
                  r.ns_per_solve, r.items_per_sec);
    out += num;
    out += ", \"kernel\": ";
    append_json_string(out, std::string(tt::active_kernel_variant_name()));
    out += ", \"obs\": ";
    append_json_string(out, obs_mode());
    out += '}';
    out += i + 1 < records.size() ? ",\n" : "\n";
  }
  out += "]\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(("bench_json: cannot write " + path).c_str());
    return false;
  }
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

/// Drop-in main: extracts --json <path> / --json=<path> (ours, not
/// google-benchmark's), runs the benchmarks with the capturing reporter,
/// then writes the records. Nonzero exit when the write fails, so CI
/// notices a missing artifact.
inline int run_main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
    } else {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);  // Initialize expects an argv-style terminator
  int filtered_argc = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !write_json(json_path, reporter.records())) {
    return 1;
  }
  return 0;
}

}  // namespace ttp::benchjson

#define TTP_BENCH_JSON_MAIN()                           \
  int main(int argc, char** argv) {                     \
    return ttp::benchjson::run_main(argc, argv);        \
  }
