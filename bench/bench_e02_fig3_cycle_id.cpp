// E2 — Paper Fig. 3: the cycle-ID pattern for the 64-PE CCC (16 cycles of
// 4): "the digit at cycle i and PE j represents the bit held by PE j in
// cycle i", i.e. bit j of i.
//
// Regenerates: the full 16x4 digit table, produced by the on-machine
// cycle-ID microprogram (control bits generated on the fly, §4.1), checked
// cell-by-cell against the specification.
#include <iostream>

#include "bvm/microcode/ids.hpp"
#include "util/table.hpp"

int main() {
  using namespace ttp::bvm;
  ttp::util::print_section(std::cout, "E2: Fig. 3 — cycle-ID on the 64-PE CCC");

  Machine m(BvmConfig::complete(2));
  const auto before = m.instr_count();
  gen_cycle_number(m, 0, 20, 21);
  gen_cycle_id(m, 10, 0);
  const auto instrs = m.instr_count() - before;

  const auto expect = ref_cycle_id(m.config());
  bool ok = true;
  std::cout << "cycle |  PE0 PE1 PE2 PE3\n";
  std::cout << "------+------------------\n";
  for (std::size_t c = 0; c < m.config().num_cycles(); ++c) {
    std::cout << (c < 10 ? "   " : "  ") << c << "  |  ";
    for (int p = 0; p < m.config().Q(); ++p) {
      const bool bit = m.peek(Reg::R(10), m.addr(c, p));
      ok = ok && (bit == expect[m.addr(c, p)]);
      std::cout << ' ' << (bit ? '1' : '0') << "  ";
    }
    std::cout << '\n';
  }
  std::cout << "\ngenerated on-machine in " << instrs
            << " instructions; matches spec (bit j of cycle i at PE (i,j)): "
            << (ok ? "YES" : "NO") << '\n';
  return ok ? 0 : 1;
}
