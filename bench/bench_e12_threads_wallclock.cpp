// E12 — Hardware substitute: the paper's parallel machine does not exist on
// this host, but the same layer-parallel schedule runs on std::thread. This
// google-benchmark binary measures wall-clock of the sequential vs threaded
// DP (results depend on host core count; on a 1-core box the threaded
// variant shows scheduling overhead, which EXPERIMENTS.md notes).
#include <benchmark/benchmark.h>

#include "tt/generator.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/solver_threads.hpp"
#include "util/rng.hpp"

namespace {

ttp::tt::Instance bench_instance(int k) {
  ttp::util::Rng rng(321);
  ttp::tt::RandomOptions opt;
  opt.num_tests = 12;
  opt.num_treatments = 12;
  return ttp::tt::random_instance(k, opt, rng);
}

void BM_SequentialDp(benchmark::State& state) {
  const auto ins = bench_instance(static_cast<int>(state.range(0)));
  ttp::tt::SequentialSolver solver;
  double cost = 0;
  for (auto _ : state) {
    cost = solver.solve(ins).cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["states"] =
      static_cast<double>(std::size_t{1} << state.range(0));
  state.counters["C(U)"] = cost;
}

void BM_ThreadsDp(benchmark::State& state) {
  const auto ins = bench_instance(static_cast<int>(state.range(0)));
  ttp::tt::ThreadsSolver solver(static_cast<std::size_t>(state.range(1)));
  double cost = 0;
  for (auto _ : state) {
    cost = solver.solve(ins).cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["workers"] = static_cast<double>(state.range(1));
  state.counters["C(U)"] = cost;
}

}  // namespace

BENCHMARK(BM_SequentialDp)->Arg(12)->Arg(14)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ThreadsDp)
    ->Args({14, 1})
    ->Args({14, 2})
    ->Args({14, 4})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
