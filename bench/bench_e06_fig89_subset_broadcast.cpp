// E6 — Paper Figs. 8-9: the conditional subset broadcast that realizes
// R[S,i] = M[S−T_i, i]. For U = {0,1,2} and T = {0,1}, Fig. 8 tabulates
// S-T per S; Fig. 9 shows R after each iteration of the e-loop, converging
// to R[S] = M[S-T] via the invariant R[(S−T)∪(S∩T∩I_e)] = M[S−T].
//
// Regenerates: both tables, running the actual e-loop on the hypercube
// machine (value at PE S identifies the state it came from).
#include <iostream>

#include "net/hypercube.hpp"
#include "util/bits.hpp"
#include "util/table.hpp"

int main() {
  using ttp::util::Mask;
  ttp::util::print_section(
      std::cout, "E6: Figs. 8-9 — subset broadcast R[S] = M[S-T], T={0,1}");

  const int k = 3;
  const Mask T = 0b011;

  // Fig. 8: the S-T table.
  ttp::util::Table fig8({"S", "S-T"});
  for (Mask s = 0; s < 8; ++s) {
    fig8.add_row({ttp::util::mask_to_string(s),
                  ttp::util::mask_to_string(s & ~T)});
  }
  std::cout << "Fig. 8 (who must receive whose M):\n";
  fig8.print(std::cout);

  // Fig. 9: run the e-loop; R starts as M[S] = S (use the state id as the
  // "value" so provenance is visible), then propagates along e ∈ S∩T.
  struct S {
    Mask r = 0;
  };
  ttp::net::HypercubeMachine<S> m(k);
  for (std::size_t pe = 0; pe < 8; ++pe) m.at(pe).r = static_cast<Mask>(pe);

  ttp::util::Table fig9({"S", "e=0", "e=1", "e=2"});
  std::vector<std::vector<std::string>> cols(8);
  for (int e = 0; e < k; ++e) {
    m.dim_step(e, [&](int dim, S& lo, S& hi) {
      // Receiver is the PE with bit e set; it adopts when e ∈ T (so that
      // only the S∩T coordinates collapse).
      if (ttp::util::has_bit(T, dim)) hi.r = lo.r;
    });
    for (std::size_t pe = 0; pe < 8; ++pe) {
      cols[pe].push_back(ttp::util::mask_to_string(m.at(pe).r));
    }
  }
  for (std::size_t pe = 0; pe < 8; ++pe) {
    fig9.add_row({ttp::util::mask_to_string(static_cast<Mask>(pe)),
                  cols[pe][0], cols[pe][1], cols[pe][2]});
  }
  std::cout << "\nFig. 9 (source state whose M each R[S] holds, after each "
               "e):\n";
  fig9.print(std::cout);

  bool ok = true;
  for (std::size_t pe = 0; pe < 8; ++pe) {
    ok = ok && m.at(pe).r == (static_cast<Mask>(pe) & ~T);
  }
  std::cout << "\nfinal R[S] == M[S-T] for every S: " << (ok ? "YES" : "NO")
            << '\n';
  return ok ? 0 : 1;
}
