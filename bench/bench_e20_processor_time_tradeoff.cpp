// E20 (extension) — the paper's §1 aside, made quantitative: "Our
// algorithm was designed to optimize performance for relatively few tests
// and treatments, e.g. N = O(k^b) ... Other approaches are reasonable if
// N = O(2^k) is commonly used."
//
// Measured: the (S,i)-parallel algorithm (N·2^k PEs, the paper's) vs the
// S-parallel variant (2^k PEs, actions serialized at the host) across both
// regimes. The crossover is exactly where the paper draws it: with few
// actions the (S,i) machine's log N reduction is nearly free; with
// N = O(2^k) the S-parallel variant does the same work on an
// exponentially smaller machine.
#include <iostream>

#include "tt/generator.hpp"
#include "tt/solver_hypercube.hpp"
#include "tt/solver_state_parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ttp::tt;
  ttp::util::print_section(
      std::cout,
      "E20: processor-time tradeoff — (S,i)-parallel vs S-parallel");

  ttp::util::Table t({"instance", "N", "PEs (S,i)", "steps (S,i)",
                      "PEs (S)", "steps (S)", "PE·time ratio (S)/(S,i)"});
  auto add = [&](const std::string& name, const Instance& ins) {
    const auto si = HypercubeSolver().solve(ins);
    const auto sp = StateParallelSolver().solve(ins);
    if (max_table_diff(si.table, sp.table) != 0.0) {
      std::cerr << "MISMATCH on " << name << "\n";
      exit(1);
    }
    const double prod_si = static_cast<double>(si.breakdown.get("pes")) *
                           static_cast<double>(si.steps.parallel_steps);
    const double prod_sp = static_cast<double>(sp.breakdown.get("pes")) *
                           static_cast<double>(sp.steps.parallel_steps);
    t.add_row({name, std::to_string(ins.num_actions()),
               std::to_string(si.breakdown.get("pes")),
               std::to_string(si.steps.parallel_steps),
               std::to_string(sp.breakdown.get("pes")),
               std::to_string(sp.steps.parallel_steps),
               ttp::util::Table::num(prod_sp / prod_si, 3)});
  };

  {
    ttp::util::Rng rng(1);
    RandomOptions opt;
    opt.num_tests = 3;
    opt.num_treatments = 3;
    add("k=8, few actions (N=O(k))", random_instance(8, opt, rng));
  }
  {
    ttp::util::Rng rng(2);
    RandomOptions opt;
    opt.num_tests = 32;
    opt.num_treatments = 32;
    add("k=8, many actions (N=O(k^2))", random_instance(8, opt, rng));
  }
  add("k=4, ALL subsets (N=O(2^k))", complete_instance(4));
  add("k=5, ALL subsets (N=O(2^k))", complete_instance(5));
  t.print(std::cout);

  std::cout << "\nthe S-parallel variant wins the PE-time product by a "
               "flat ~3x (the (S,i) machine idles the non-active layers), "
               "but the paper's machine is buying LATENCY: serializing the "
               "actions costs only ~2.5x time when N = O(k) and ~19x when "
               "N = O(k^2) — so the (S,i) formulation is the right choice "
               "exactly in the paper's stated design regime (few actions, "
               "PEs abundant), and the S-parallel one when N = O(2^k) "
               "makes N-fold PE multiplication unaffordable.\n";
  return 0;
}
