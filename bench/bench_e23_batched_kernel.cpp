// E23 — The batched layer-wave kernel vs the classic inner loop.
//
// Two questions a serving deployment asks that the paper's step counts do
// not answer:
//   1. single-solve latency — how much faster is the tiled SoA kernel
//      (tt/kernel.*) than the classic per-call action_value sweep on one
//      host thread? (acceptance: >= 1.5x)
//   2. batched throughput — instances/sec when independent solves are
//      pipelined through BatchSolver's worker pool with per-worker arenas.
//
// BM_LegacyInnerLoop is a faithful replica of the pre-kernel
// SequentialSolver (per-call action_value dispatch over vector<Action>,
// per-layer subset enumeration, per-evaluation step accounting);
// BM_KernelSolve is today's kernel-backed SequentialSolver producing
// byte-identical tables. BM_BatchThroughput reports instances/sec via the
// items_per_second counter.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdint>
#include <vector>

#include "tt/generator.hpp"
#include "tt/kernel.hpp"
#include "tt/solver_batch.hpp"
#include "tt/solver_sequential.hpp"
#include "util/bits.hpp"
#include "util/counters.hpp"
#include "util/rng.hpp"

namespace {

using ttp::tt::Instance;
using ttp::tt::kInf;
using ttp::util::Mask;

Instance bench_instance(int k, std::uint64_t seed = 77) {
  ttp::util::Rng rng(seed);
  ttp::tt::RandomOptions opt;
  opt.num_tests = 10;
  opt.num_treatments = 10;
  return ttp::tt::random_instance(k, opt, rng);
}

/// The bench_json.hpp record fields: problem shape as counters, the kernel
/// variant the run actually dispatched to as the label ("legacy" for the
/// pre-kernel replica, which bypasses dispatch entirely).
void annotate(benchmark::State& state, const Instance& ins,
              std::string_view variant = {}) {
  state.counters["k"] = static_cast<double>(ins.k());
  state.counters["N"] = static_cast<double>(ins.num_actions());
  state.SetLabel(std::string(
      variant.empty() ? ttp::tt::active_kernel_variant_name() : variant));
}

/// The pre-kernel SequentialSolver::solve, verbatim: layer subsets
/// re-derived per solve, one out-of-line action_value call and one step()
/// per (S, i), then the same tree reconstruction and breakdown entry
/// today's solver produces — a full solve on both sides of the comparison.
ttp::tt::SolveResult legacy_solve(const Instance& ins) {
  ins.check();
  ttp::tt::SolveResult res;
  const int k = ins.k();
  const int N = ins.num_actions();
  const std::size_t states = std::size_t{1} << k;
  const std::vector<double>& wt = ins.subset_weight_table();
  res.table.k = k;
  res.table.cost.assign(states, kInf);
  res.table.best_action.assign(states, -1);
  res.table.cost[0] = 0.0;
  for (int j = 1; j <= k; ++j) {
    for (Mask s : ttp::util::layer_subsets(k, j)) {
      double b = kInf;
      int arg = -1;
      for (int i = 0; i < N; ++i) {
        const double v = ttp::tt::action_value(ins, res.table.cost, wt, s, i);
        res.steps.step(1);
        if (v < b) {
          b = v;
          arg = i;
        }
      }
      res.table.cost[s] = b;
      res.table.best_action[s] = arg;
    }
  }
  res.cost = res.table.root_cost();
  res.tree = ttp::tt::reconstruct_tree(ins, res.table);
  res.breakdown.add("m_evaluations", res.steps.total_ops);
  return res;
}

void BM_LegacyInnerLoop(benchmark::State& state) {
  const auto ins = bench_instance(static_cast<int>(state.range(0)));
  double cost = 0;
  for (auto _ : state) {
    cost = legacy_solve(ins).cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["C(U)"] = cost;
  state.counters["evals/s"] = benchmark::Counter(
      static_cast<double>(((std::uint64_t{1} << state.range(0)) - 1) *
                          static_cast<std::uint64_t>(ins.num_actions())),
      benchmark::Counter::kIsIterationInvariantRate);
  annotate(state, ins, "legacy");
}

void BM_KernelSolve(benchmark::State& state) {
  const auto ins = bench_instance(static_cast<int>(state.range(0)));
  ttp::tt::SequentialSolver solver;
  double cost = 0;
  for (auto _ : state) {
    cost = solver.solve(ins).cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["C(U)"] = cost;
  state.counters["evals/s"] = benchmark::Counter(
      static_cast<double>(((std::uint64_t{1} << state.range(0)) - 1) *
                          static_cast<std::uint64_t>(ins.num_actions())),
      benchmark::Counter::kIsIterationInvariantRate);
  annotate(state, ins);
}

/// The kernel sweep alone on a pre-bound arena — what one steady-state
/// serving worker pays per request once tables and layers are warm.
void BM_KernelArenaWarm(benchmark::State& state) {
  const auto ins = bench_instance(static_cast<int>(state.range(0)));
  ttp::tt::SolveArena arena;
  double cost = 0;
  for (auto _ : state) {
    cost = ttp::tt::solve_with_arena(ins, arena).cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["C(U)"] = cost;
  annotate(state, ins);
}

void BM_BatchThroughput(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const std::size_t workers = static_cast<std::size_t>(state.range(1));
  std::vector<Instance> batch;
  for (std::uint64_t i = 0; i < 64; ++i) {
    batch.push_back(bench_instance(k, 1000 + i));
  }
  ttp::tt::BatchSolver solver(workers);
  for (auto _ : state) {
    auto results = solver.solve_many(batch);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
  state.counters["workers"] = static_cast<double>(workers);
  annotate(state, batch.front());
}

}  // namespace

BENCHMARK(BM_LegacyInnerLoop)->Arg(12)->Arg(14)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelSolve)->Arg(12)->Arg(14)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelArenaWarm)->Arg(12)->Arg(14)
    ->Unit(benchmark::kMillisecond);
// UseRealTime: the pool's workers do the solving while the main thread
// blocks, so wall clock (not main-thread CPU) is the meaningful basis for
// items_per_second.
BENCHMARK(BM_BatchThroughput)
    ->Args({10, 1})
    ->Args({10, 2})
    ->Args({10, 4})
    ->Args({12, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

TTP_BENCH_JSON_MAIN()
