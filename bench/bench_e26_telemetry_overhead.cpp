// E26 — Telemetry overhead: does the always-on request telemetry (trace
// IDs, quantile sketches, flight recorder) cost anything the serving path
// can feel?
//
// Three altitudes:
//
//   BM_WarmSolve        identical family/args to bench_e25's BM_WarmSolve
//                       (same instance generator, same k sweep, same
//                       variant pins), so tools/bench_compare.py diffs
//                       BENCH_e25.json vs BENCH_e26.json directly — the PR
//                       acceptance bar is warm-solve within 3%. The kernel
//                       itself does not touch the new telemetry, so any
//                       delta here is build/host noise; the comparison is
//                       the control.
//   BM_TelemetryRecord  the incremental cost of one request's telemetry:
//                       trace mint + binding + sketch records + one flight
//                       record — the exact per-request work Service adds.
//   BM_ServiceWarmPath  end-to-end Service::solve on a warm cache (every
//                       request a hit), the hot serving path that now runs
//                       the full telemetry finalize per request.
//
// Run with --json BENCH_e26.json; compare against the committed e25 file:
//   tools/bench_compare.py BENCH_e25.json BENCH_e26.json --threshold 0.03
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/quantiles.hpp"
#include "obs/trace.hpp"
#include "svc/service.hpp"
#include "tt/generator.hpp"
#include "tt/kernel.hpp"
#include "util/rng.hpp"

namespace {

using ttp::tt::Instance;

Instance bench_instance(int k, std::uint64_t seed = 77) {
  ttp::util::Rng rng(seed);
  ttp::tt::RandomOptions opt;
  opt.num_tests = 10;
  opt.num_treatments = 10;
  return ttp::tt::random_instance(k, opt, rng);
}

class VariantPin {
 public:
  VariantPin(benchmark::State& state, const char* spec) {
    if (!ttp::tt::set_kernel_variant(spec)) {
      state.SkipWithError(
          (std::string("kernel variant unavailable: ") + spec).c_str());
      ok_ = false;
    }
  }
  ~VariantPin() { ttp::tt::set_kernel_variant("auto"); }
  bool ok() const noexcept { return ok_; }

 private:
  bool ok_ = true;
};

void annotate(benchmark::State& state, const Instance& ins) {
  state.counters["k"] = static_cast<double>(ins.k());
  state.counters["N"] = static_cast<double>(ins.num_actions());
  state.SetLabel(std::string(ttp::tt::active_kernel_variant_name()));
}

/// Byte-for-byte the e25 warm-solve loop: same generator, same arena reuse.
/// Keeping the family name and args identical is what lets bench_compare
/// key e25 and e26 records against each other.
void BM_WarmSolve(benchmark::State& state, const char* variant) {
  const VariantPin pin(state, variant);
  if (!pin.ok()) return;
  const auto ins = bench_instance(static_cast<int>(state.range(0)));
  ttp::tt::SolveArena arena;
  double cost = 0;
  for (auto _ : state) {
    cost = ttp::tt::solve_with_arena(ins, arena).cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["C(U)"] = cost;
  annotate(state, ins);
}

/// The per-request telemetry work in isolation: mint a trace ID, bind it,
/// record the six stage sketches, publish one flight record. This is the
/// entire incremental cost the tentpole adds to a cache hit.
void BM_TelemetryRecord(benchmark::State& state) {
  ttp::obs::FlightRecorder flight(4096);
  ttp::obs::ShardedQuantiles sketches[6];
  std::uint64_t spins = 0;
  for (auto _ : state) {
    const std::uint64_t trace = ttp::obs::next_trace_id();
    const ttp::obs::TraceBinding bind(trace);
    ttp::obs::FlightRecord rec;
    rec.trace = trace;
    rec.start_ns = ttp::obs::steady_now_ns();
    rec.admit_us = static_cast<std::uint32_t>(spins & 0xff);
    rec.e2e_us = spins & 0xffff;
    for (auto& s : sketches) s.record(rec.e2e_us);
    flight.record(rec);
    ++spins;
    benchmark::DoNotOptimize(trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(std::string(ttp::tt::active_kernel_variant_name()));
}

/// End-to-end hits: the serving hot path with telemetry finalize on every
/// request. Pre-warms one key, then hammers it.
void BM_ServiceWarmPath(benchmark::State& state, const char* variant) {
  const VariantPin pin(state, variant);
  if (!pin.ok()) return;
  const int k = static_cast<int>(state.range(0));
  ttp::svc::Service service;
  const Instance ins = bench_instance(k);
  if (!service.solve(ins).ok()) {
    state.SkipWithError("warmup solve failed");
    return;
  }
  for (auto _ : state) {
    const auto r = service.solve(ins);
    benchmark::DoNotOptimize(r.cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  annotate(state, ins);
}

}  // namespace

// Mirror e25 exactly: same k sweep, same variant pins, same units.
BENCHMARK_CAPTURE(BM_WarmSolve, scalar, "scalar")
    ->DenseRange(10, 18, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WarmSolve, simd, "simd")
    ->DenseRange(10, 18, 2)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_TelemetryRecord);

BENCHMARK_CAPTURE(BM_ServiceWarmPath, scalar, "scalar")
    ->Arg(12)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_ServiceWarmPath, simd, "simd")
    ->Arg(12)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

TTP_BENCH_JSON_MAIN()
