// E28 — what the durable procedure store buys on restart, and what its
// write-behind costs when enabled (docs/store.md).
//
// Four regimes over one k-instance served through svc::Service, k = 14..18:
//
//   BM_ColdSolve          store off, LRU cleared every iteration — every
//                         request is a full kernel solve. The baseline a
//                         cold restart pays per key without the store.
//   BM_ColdSolveStoreOn   the same cold solve with --store-dir on, so each
//                         iteration also pays canonical-tree encode + one
//                         O_APPEND write (sync=none). Acceptance: within
//                         noise of BM_ColdSolve — the write-behind must be
//                         invisible next to the solve itself.
//   BM_StoreWarmHit       a *restarted* service on a populated directory,
//                         LRU cleared every iteration — every request
//                         deserializes straight from the frozen segment's
//                         read-only mmap, no kernel solve. Acceptance
//                         (ISSUE 10): >= 10x faster than BM_ColdSolve at
//                         k = 16.
//   BM_MemoryHit          steady-state LRU hit, for scale: the store tier
//                         sits between this floor and the cold ceiling.
//
// Every run records {bench, k, N, ns_per_solve} via the shared --json
// harness (bench_json.hpp); BENCH_e28.json at the repo root is the
// committed trajectory and tools/bench_compare.py diffs two such files.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "svc/service.hpp"
#include "tt/generator.hpp"
#include "util/rng.hpp"

namespace {

using ttp::tt::Instance;

// Instance i of a fixed per-k family. The cold benches burn one per
// iteration (a repeated key would hit the store instead of re-solving);
// both cold benches walk the identical sequence so their numbers compare.
Instance instance_for(int k, std::uint64_t i = 0) {
  ttp::util::Rng rng(2800 + 1000 * static_cast<std::uint64_t>(k) + i);
  ttp::tt::RandomOptions opt;
  opt.num_tests = 10;
  opt.num_treatments = 10;
  return ttp::tt::random_instance(k, opt, rng);
}

// A fresh store directory for one benchmark run, removed on destruction.
struct BenchDir {
  std::string path;
  BenchDir() {
    char tmpl[] = "/tmp/ttp_bench_e28_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

ttp::svc::ServiceConfig store_cfg(const std::string& dir) {
  ttp::svc::ServiceConfig cfg;
  cfg.store.dir = dir;
  cfg.store.sync = ttp::store::StoreConfig::Sync::kNone;
  return cfg;
}

void set_counters(benchmark::State& state, int k) {
  state.counters["k"] = k;
  state.counters["N"] = 20;  // 10 tests + 10 treatments
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void solve_one(ttp::svc::Service& svc, const Instance& ins,
               benchmark::State& state,
               ttp::svc::CacheOutcome want) {
  const ttp::svc::Response r = svc.solve(ins);
  if (!r.ok()) state.SkipWithError(r.error.c_str());
  if (r.cache != want) state.SkipWithError("unexpected cache outcome");
  benchmark::DoNotOptimize(r.cost);
}

void BM_ColdSolve(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  ttp::svc::Service svc;
  std::uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    svc.cache().clear();
    const Instance ins = instance_for(k, i++);
    state.ResumeTiming();
    solve_one(svc, ins, state, ttp::svc::CacheOutcome::kMiss);
  }
  set_counters(state, k);
}

void BM_ColdSolveStoreOn(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  BenchDir dir;
  ttp::svc::Service svc(store_cfg(dir.path));
  std::uint64_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    svc.cache().clear();
    const Instance ins = instance_for(k, i++);
    state.ResumeTiming();
    solve_one(svc, ins, state, ttp::svc::CacheOutcome::kMiss);
  }
  set_counters(state, k);
}

void BM_StoreWarmHit(benchmark::State& state) {
  const Instance ins = instance_for(static_cast<int>(state.range(0)));
  BenchDir dir;
  {
    // Populate, then shut down cleanly: the restarted service below reads
    // the record from a *frozen* segment — the mmap warm-restart path.
    ttp::svc::Service writer(store_cfg(dir.path));
    const ttp::svc::Response r = writer.solve(ins);
    if (!r.ok()) {
      state.SkipWithError(r.error.c_str());
      return;
    }
  }
  ttp::svc::Service svc(store_cfg(dir.path));
  for (auto _ : state) {
    state.PauseTiming();
    svc.cache().clear();  // the LRU is cold; the durable tier is not
    state.ResumeTiming();
    solve_one(svc, ins, state, ttp::svc::CacheOutcome::kStore);
  }
  set_counters(state, static_cast<int>(state.range(0)));
}

void BM_MemoryHit(benchmark::State& state) {
  const Instance ins = instance_for(static_cast<int>(state.range(0)));
  ttp::svc::Service svc;
  (void)svc.solve(ins);  // populate the LRU once
  for (auto _ : state) {
    solve_one(svc, ins, state, ttp::svc::CacheOutcome::kHit);
  }
  set_counters(state, static_cast<int>(state.range(0)));
}

}  // namespace

// UseRealTime: solves run on pool workers while the main thread blocks in
// get(), so wall clock is the meaningful basis (same as E24).
BENCHMARK(BM_ColdSolve)
    ->Arg(14)->Arg(16)->Arg(18)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ColdSolveStoreOn)
    ->Arg(14)->Arg(16)->Arg(18)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StoreWarmHit)
    ->Arg(14)->Arg(16)->Arg(18)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MemoryHit)
    ->Arg(14)->Arg(16)->Arg(18)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

TTP_BENCH_JSON_MAIN()
