// E14 — Ablation (§4.4's discussion): layer control by propagation of the
// first kind ("no PE knows which group it belongs to" — the paper's choice,
// §7) vs a one-time popcount of the processor-ID ("one can generate the
// processor-ID and count the number of 1's, but that involves more
// overhead"). Measures total and per-layer BVM instructions for both on
// whole TT solves.
#include <iostream>

#include "tt/generator.hpp"
#include "tt/solver_bvm.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ttp::tt;
  ttp::util::print_section(
      std::cout, "E14: layer control — propagation vs popcount (BVM instrs)");

  ttp::util::Table t({"k", "total (propagation)", "total (popcount)",
                      "layers (propagation)", "layers (popcount)",
                      "delta total"});
  for (int k : {3, 4, 5, 6, 7}) {
    ttp::util::Rng rng(static_cast<std::uint64_t>(k));
    RandomOptions opt;
    opt.num_tests = 4;
    opt.num_treatments = 4;
    opt.integer_costs = true;
    opt.integer_weights = true;
    const Instance ins = random_instance(k, opt, rng);

    BvmSolverOptions prop;
    prop.format = ttp::util::Fixed::Format{14, 0};
    prop.layer_mode = ttp::bvm::LayerMode::kPropagation;
    BvmSolverOptions pop = prop;
    pop.layer_mode = ttp::bvm::LayerMode::kPopcount;

    const auto rp = BvmSolver(prop).solve(ins);
    const auto rc = BvmSolver(pop).solve(ins);
    if (max_table_diff(rp.table, rc.table) != 0.0) {
      std::cerr << "MODE MISMATCH\n";
      return 1;
    }
    const auto tp = rp.breakdown.get("bvm_instructions");
    const auto tc = rc.breakdown.get("bvm_instructions");
    t.add_row({std::to_string(k), std::to_string(tp), std::to_string(tc),
               std::to_string(rp.breakdown.get("layers")),
               std::to_string(rc.breakdown.get("layers")),
               ttp::util::Table::num(
                   100.0 * (static_cast<double>(tp) - static_cast<double>(tc)) /
                       static_cast<double>(tc),
                   3) +
                   "%"});
  }
  t.print(std::cout);
  std::cout << "\nboth modes yield identical DP tables; the paper's "
               "propagation choice trades a per-layer exchange cost for "
               "never materializing popcounts.\n";
  return 0;
}
