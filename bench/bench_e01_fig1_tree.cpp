// E1 — Paper Fig. 1 + §1 cost semantics: a TT procedure tree with test and
// treatment nodes, the double-arc treatment leaves, and the expected-cost
// definition Cost(Tree) = Σ_i P_i · (cost of actions on i's path).
//
// Regenerates: the worked tree for the Fig. 1-shaped instance, its cost from
// first principles, and the DP optimum (they must coincide), cross-certified
// by exhaustive tree enumeration.
#include <iostream>

#include "tt/instance.hpp"
#include "tt/report.hpp"
#include "tt/solver_exhaustive.hpp"
#include "tt/solver_sequential.hpp"
#include "util/table.hpp"

int main() {
  using namespace ttp::tt;
  ttp::util::print_section(std::cout, "E1: Fig. 1 — TT procedure tree");

  const Instance ins = fig1_example();
  std::cout << describe(ins) << '\n';

  const auto res = SequentialSolver().solve(ins);
  std::cout << "optimal TT procedure (single arc = test outcome / treatment "
               "failure,\ntreatment nodes end their branch when S ⊆ T):\n"
            << res.tree.to_string(ins) << '\n';

  ttp::util::Table t({"quantity", "value"});
  t.add_row({"C(U) via dynamic program", ttp::util::Table::num(res.cost, 10)});
  t.add_row({"Cost(Tree) from first principles",
             ttp::util::Table::num(res.tree.expected_cost(ins), 10)});
  const auto enumd = enumerate_min_cost(ins, (1 << ins.k()) - 1);
  t.add_row({"min over ALL procedure trees (enumeration)",
             enumd ? ttp::util::Table::num(*enumd, 10) : "none"});
  t.add_row({"per-object path costs (i=0..3)",
             ttp::util::Table::num(res.tree.path_cost(ins, 0), 4) + ", " +
                 ttp::util::Table::num(res.tree.path_cost(ins, 1), 4) + ", " +
                 ttp::util::Table::num(res.tree.path_cost(ins, 2), 4) + ", " +
                 ttp::util::Table::num(res.tree.path_cost(ins, 3), 4)});
  t.print(std::cout);

  const bool ok = enumd && std::abs(*enumd - res.cost) < 1e-9;
  std::cout << "\nDP == enumeration: " << (ok ? "YES" : "NO") << '\n';
  return ok ? 0 : 1;
}
