// E9 — Claim: the BVM TT algorithm runs in T_par = O(k·p·(k + log N))
// (abstract; p = operand precision in bits).
//
// Measured: actual executed BVM instructions of the layer loop (the
// asymptotic part), swept one factor at a time with the others held fixed.
// Each sweep's last column is the measured count divided by the model term;
// flat columns = the factor is linear as claimed. Our dimension exchanges
// are the unpipelined O(Q)-per-lateral realization, so the constant absorbs
// Q (= cycle length, itself Θ(log n)); the pipelined wave that removes it
// is word-level (E13).
#include <algorithm>
#include <iostream>

#include "tt/generator.hpp"
#include "tt/solver_bvm.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

std::uint64_t layer_instr(const ttp::tt::Instance& ins, int p,
                          bool pipelined = false) {
  ttp::tt::BvmSolverOptions opt;
  opt.format = ttp::util::Fixed::Format{p, 0};
  opt.pipelined_laterals = pipelined;
  const auto res = ttp::tt::BvmSolver(opt).solve(ins);
  return res.breakdown.get("layers");
}

ttp::tt::Instance make(int k, int tests, int treats, std::uint64_t seed) {
  ttp::util::Rng rng(seed);
  ttp::tt::RandomOptions opt;
  opt.num_tests = tests;
  opt.num_treatments = treats;
  opt.integer_costs = true;
  opt.integer_weights = true;
  return ttp::tt::random_instance(k, opt, rng);
}

}  // namespace

int main() {
  using namespace ttp::tt;
  ttp::util::print_section(std::cout,
                           "E9: BVM time model T_par = O(k·p·(k + log N))");

  std::cout << "sweep p (k=4, N=8):\n";
  {
    ttp::util::Table t({"p", "layer instrs", "instrs / p"});
    const Instance ins = make(4, 4, 4, 1);
    // p tops out at 24: the microprogram keeps eight p-bit fields and the
    // machine has L = 256 register rows (8·32 would not fit).
    for (int p : {8, 12, 16, 20, 24}) {
      const auto n = layer_instr(ins, p);
      t.add_row({std::to_string(p), std::to_string(n),
                 ttp::util::Table::num(static_cast<double>(n) / p, 4)});
    }
    t.print(std::cout);
  }

  std::cout << "\nsweep k (p=12, N=8); the pipelined column is the paper's "
               "realization, whose normalization needs no Q factor:\n";
  {
    ttp::util::Table t({"k", "Q", "unpipelined", "unpip / (k·Q·(k+log N))",
                        "pipelined", "pip / (k·(k+Q+log N))"});
    for (int k : {3, 4, 5, 6, 7, 8}) {
      const Instance ins = make(k, 4, 4, 2);
      const auto n = layer_instr(ins, 12);
      const auto npipe = layer_instr(ins, 12, /*pipelined=*/true);
      const int a = ttp::util::ceil_log2(
          static_cast<std::uint64_t>(std::max(2, ins.num_actions())));
      const int dims = k + a;
      const int Q = ttp::bvm::BvmConfig::for_dims(dims).Q();
      t.add_row(
          {std::to_string(k), std::to_string(Q), std::to_string(n),
           ttp::util::Table::num(
               static_cast<double>(n) / (static_cast<double>(k) * Q * (k + a)),
               4),
           std::to_string(npipe),
           ttp::util::Table::num(
               static_cast<double>(npipe) /
                   (static_cast<double>(k) * (k + Q + a)),
               4)});
    }
    t.print(std::cout);
  }

  std::cout << "\nsweep N (k=5, p=12):\n";
  {
    ttp::util::Table t({"N (padded)", "log N", "Q", "layer instrs",
                        "instrs / (Q·(k+log N))"});
    for (int tests : {2, 4, 8, 16, 32}) {
      const Instance ins = make(5, tests, tests, 3);
      const auto n = layer_instr(ins, 12);
      const int a = ttp::util::ceil_log2(
          static_cast<std::uint64_t>(std::max(2, ins.num_actions())));
      const int Q = ttp::bvm::BvmConfig::for_dims(5 + a).Q();
      t.add_row({std::to_string(1 << a), std::to_string(a), std::to_string(Q),
                 std::to_string(n),
                 ttp::util::Table::num(
                     static_cast<double>(n) / (Q * (5.0 + a)), 4)});
    }
    t.print(std::cout);
  }

  std::cout << "\nflat last columns across each sweep confirm the per-factor "
               "linearity of T_par = O(k·p·(k + log N)).\n";
  return 0;
}
