// E24 — What the serving layer buys (and costs) over the raw batched kernel.
//
// Three regimes over k=14 instances, reported as requests/sec:
//   1. BM_RawBatchSolver      — BatchSolver::solve_many with no service on
//                               top: the cold-compute ceiling.
//   2. BM_ServiceColdMisses   — the same distinct instances submitted
//                               through svc::Service with an empty cache
//                               each iteration. Acceptance: within 10% of
//                               raw (canon + cache + queue overhead < 10%).
//   3. BM_ServiceWarmHits     — every request already cached: the
//                               steady-state popular-traffic regime.
//                               Acceptance: >= 10x cold throughput.
// Plus the issue's mixed stream: BM_ServiceMixedStream submits a
// 50%-duplicate request stream (each instance appears twice) against an
// empty cache, so half the requests are misses and half are singleflight
// followers or hits.
//
// All service benches submit the whole stream first and then collect (the
// pipelined pattern a connection handler uses), so misses micro-batch the
// same way they would under concurrent load.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "svc/service.hpp"
#include "tt/generator.hpp"
#include "tt/solver_batch.hpp"
#include "util/rng.hpp"

namespace {

using ttp::tt::Instance;

constexpr int kK = 14;
constexpr std::size_t kDistinct = 16;

std::vector<Instance> distinct_instances(std::size_t n, int k = kK) {
  std::vector<Instance> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ttp::util::Rng rng(9000 + i);
    ttp::tt::RandomOptions opt;
    opt.num_tests = 10;
    opt.num_treatments = 10;
    out.push_back(ttp::tt::random_instance(k, opt, rng));
  }
  return out;
}

ttp::svc::ServiceConfig bench_config() {
  ttp::svc::ServiceConfig cfg;
  // Fire a micro-batch as soon as the staged stream is fully queued rather
  // than waiting out the gather window.
  cfg.scheduler.max_batch = kDistinct;
  cfg.scheduler.batch_delay = std::chrono::microseconds(100);
  return cfg;
}

void solve_stream(ttp::svc::Service& svc, const std::vector<Instance>& stream,
                  benchmark::State& state) {
  std::vector<ttp::svc::Service::Pending> pending;
  pending.reserve(stream.size());
  for (const Instance& ins : stream) pending.push_back(svc.submit(ins));
  for (auto& p : pending) {
    const ttp::svc::Response r = p.get();
    if (!r.ok()) state.SkipWithError(r.error.c_str());
    benchmark::DoNotOptimize(r.cost);
  }
}

void BM_RawBatchSolver(benchmark::State& state) {
  const auto instances = distinct_instances(kDistinct);
  ttp::tt::BatchSolver solver;
  for (auto _ : state) {
    auto results = solver.solve_many(instances);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(instances.size()));
}

void BM_ServiceColdMisses(benchmark::State& state) {
  const auto instances = distinct_instances(kDistinct);
  ttp::svc::Service svc(bench_config());
  for (auto _ : state) {
    state.PauseTiming();
    svc.cache().clear();  // every request is a genuine miss
    state.ResumeTiming();
    solve_stream(svc, instances, state);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(instances.size()));
}

void BM_ServiceWarmHits(benchmark::State& state) {
  const auto instances = distinct_instances(kDistinct);
  ttp::svc::Service svc(bench_config());
  solve_stream(svc, instances, state);  // populate the cache once
  for (auto _ : state) {
    solve_stream(svc, instances, state);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(instances.size()));
}

void BM_ServiceMixedStream(benchmark::State& state) {
  // The issue's acceptance stream: 50% duplicates (each distinct instance
  // appears exactly twice), served against a cache that starts empty.
  const auto distinct = distinct_instances(kDistinct);
  std::vector<Instance> stream;
  stream.reserve(distinct.size() * 2);
  for (const Instance& ins : distinct) {
    stream.push_back(ins);
    stream.push_back(ins);
  }
  ttp::svc::Service svc(bench_config());
  for (auto _ : state) {
    state.PauseTiming();
    svc.cache().clear();
    state.ResumeTiming();
    solve_stream(svc, stream, state);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}

}  // namespace

// UseRealTime throughout: the solving happens on pool workers while the
// main thread blocks in get(), so wall clock is the meaningful basis.
BENCHMARK(BM_RawBatchSolver)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServiceColdMisses)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServiceWarmHits)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServiceMixedStream)->UseRealTime()->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
