// E15 — Motivation (§1): the TT problem is NP-hard, so practical systems
// reach for myopic rules; the whole point of throwing 2^30 PEs at the DP is
// that optimal procedures are meaningfully cheaper. This bench quantifies
// the optimality gap of two greedy policies across the paper's application
// domains.
#include <algorithm>
#include <iostream>

#include "tt/generator.hpp"
#include "tt/greedy.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ttp::tt;
  ttp::util::print_section(std::cout,
                           "E15: optimal DP vs greedy baselines (cost ratio "
                           "greedy/optimal over 30 seeds per domain)");

  struct Domain {
    const char* name;
    Instance (*make)(int, ttp::util::Rng&);
  };
  auto make_medical = [](int k, ttp::util::Rng& r) {
    return medical_instance(k, k + 2, r);
  };
  auto make_fault = [](int k, ttp::util::Rng& r) {
    return machine_fault_instance(k, r);
  };
  auto make_bio = [](int k, ttp::util::Rng& r) {
    return biology_key_instance(k, r);
  };
  auto make_random = [](int k, ttp::util::Rng& r) {
    RandomOptions opt;
    opt.num_tests = k;
    opt.num_treatments = k;
    return random_instance(k, opt, r);
  };

  ttp::util::Table t({"domain", "mean balanced", "max balanced",
                      "mean cheapest", "max cheapest", "greedy optimal in"});
  const Domain domains[] = {{"medical diagnosis", +make_medical},
                            {"machine fault", +make_fault},
                            {"biology key", +make_bio},
                            {"random", +make_random}};
  for (const Domain& d : domains) {
    double sum1 = 0, max1 = 0, sum2 = 0, max2 = 0;
    int optimal_hits = 0, n = 0;
    for (int seed = 0; seed < 30; ++seed) {
      ttp::util::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
      const Instance ins = d.make(7, rng);
      const auto opt = SequentialSolver().solve(ins);
      if (!(opt.cost < 1e30)) continue;
      const auto g1 = greedy_solve(ins, GreedyRule::kBalancedSplit);
      const auto g2 = greedy_solve(ins, GreedyRule::kCheapestFirst);
      const double r1 = g1.cost / opt.cost;
      const double r2 = g2.cost / opt.cost;
      sum1 += r1;
      sum2 += r2;
      max1 = std::max(max1, r1);
      max2 = std::max(max2, r2);
      if (std::min(r1, r2) < 1.0 + 1e-9) ++optimal_hits;
      ++n;
    }
    t.add_row({d.name, ttp::util::Table::num(sum1 / n, 4),
               ttp::util::Table::num(max1, 4),
               ttp::util::Table::num(sum2 / n, 4),
               ttp::util::Table::num(max2, 4),
               std::to_string(optimal_hits) + "/" + std::to_string(n)});
  }
  t.print(std::cout);
  std::cout << "\ngreedy procedures can cost several times the optimum — "
               "the gap the parallel DP exists to close.\n";
  return 0;
}
