// E10 — Claims (§1): the algorithm needs O(N·2^k) PEs; "for 2^30 PEs,
// approximately 15 elements could be processed in parallel ... even if all
// possible tests and treatments were available (N = O(2^k))"; "a few more
// elements, e.g. 20, can be processed if N = O(k^2)"; a 2^20-PE machine is
// "currently implementable".
//
// Regenerates: the feasibility table (k vs required PEs vs the 2^20 / 2^30
// machines) and checks the two headline k values.
#include <iostream>

#include "tt/sizing.hpp"
#include "util/table.hpp"

int main() {
  using namespace ttp::tt;
  ttp::util::print_section(std::cout,
                           "E10: machine sizing — O(N·2^k) PEs, headline k");

  for (auto policy : {ActionBudget::kAllSubsets, ActionBudget::kQuadratic,
                      ActionBudget::kLinear}) {
    std::cout << "\naction budget " << budget_name(policy) << ":\n";
    ttp::util::Table t(
        {"k", "N", "PEs needed (log2)", "fits 2^20", "fits 2^30"});
    for (int k : {8, 10, 12, 14, 15, 16, 18, 20, 22, 25}) {
      const SizingRow row = size_for(k, actions_for(k, policy));
      t.add_row({std::to_string(k), std::to_string(row.num_actions),
                 "2^" + std::to_string(row.machine_dims),
                 row.fits_2_20 ? "yes" : "no",
                 row.fits_2_30 ? "yes" : "no"});
    }
    t.print(std::cout);
  }

  const int k_all_30 = max_k_for_machine(30, ActionBudget::kAllSubsets);
  const int k_quad_30 = max_k_for_machine(30, ActionBudget::kQuadratic);
  const int k_all_20 = max_k_for_machine(20, ActionBudget::kAllSubsets);
  std::cout << "\nheadline checks:\n";
  std::cout << "  max k on 2^30 PEs with N=O(2^k): " << k_all_30
            << "   (paper: ~15)\n";
  std::cout << "  max k on 2^30 PEs with N=O(k^2): " << k_quad_30
            << "   (paper: ~20)\n";
  std::cout << "  max k on 2^20 PEs with N=O(2^k): " << k_all_20
            << "   (the 'currently implementable' machine)\n";
  const bool ok = k_all_30 == 15 && k_quad_30 >= 20 && k_quad_30 <= 24;
  std::cout << "\nmatches the paper's feasibility claims: "
            << (ok ? "YES" : "NO") << '\n';
  return ok ? 0 : 1;
}
