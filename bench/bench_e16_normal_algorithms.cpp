// E16 (extension) — §3's premise in action: "designing an ASCEND/DESCEND
// algorithm for a hypercube, and transforming it into a CCC algorithm seems
// to be a reasonable way of designing an efficient CCC algorithm." We run
// the canonical normal algorithms (Batcher bitonic sort, prefix sum) on the
// hypercube machine, the pipelined CCC, and as bit-serial BVM microcode,
// reporting each level's step currency.
#include <iostream>

#include "bvm/microcode/ids.hpp"
#include "bvm/microcode/normal.hpp"
#include "net/ccc.hpp"
#include "net/hypercube.hpp"
#include "net/normal.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  ttp::util::print_section(
      std::cout, "E16 (extension): normal algorithms across machine levels");

  ttp::util::Table t({"dims", "PEs", "hypercube steps (sort)",
                      "CCC steps (sort)", "BVM instrs (sort, p=8)",
                      "hypercube steps (scan)", "CCC steps (scan)",
                      "BVM instrs (scan, p=8)"});
  for (int r : {2, 3}) {
    const ttp::net::CccConfig ccfg = ttp::net::CccConfig::complete(r);
    const int dims = ccfg.dims();
    ttp::util::Rng rng(99);

    ttp::net::HypercubeMachine<ttp::net::NormalItem> hm(dims);
    ttp::net::CccMachine<ttp::net::NormalItem> cm(ccfg);
    for (std::size_t i = 0; i < hm.size(); ++i) {
      const auto key = rng.uniform(0, 200);
      hm.at(i).key = key;
      cm.at(i).key = key;
    }
    ttp::net::init_homes(hm);
    ttp::net::init_homes(cm);
    ttp::net::bitonic_sort(hm);
    ttp::net::bitonic_sort(cm);
    const auto hsort = hm.steps().parallel_steps;
    const auto csort = cm.steps().parallel_steps;
    hm.reset_steps();
    cm.reset_steps();
    ttp::net::prefix_sum(hm);
    ttp::net::prefix_sum(cm);
    const auto hscan = hm.steps().parallel_steps;
    const auto cscan = cm.steps().parallel_steps;

    ttp::bvm::Machine bm(ttp::bvm::BvmConfig::complete(r));
    ttp::bvm::load_processor_id_host(bm, 0);
    const int p = 8;
    ttp::bvm::Field v{10, p}, prefix{10 + p, p};
    ttp::bvm::NormalScratch ws{{10 + 2 * p, p}, 40, 41, 42, 43};
    for (std::size_t pe = 0; pe < bm.num_pes(); ++pe) {
      bm.poke_value(v.base, p, pe, pe % 97);
    }
    ttp::bvm::bitonic_sort(bm, v, 0, ws);
    const auto bsort = bm.instr_count();
    bm.reset_instr_count();
    ttp::bvm::prefix_sum(bm, v, prefix, 0, ws);
    const auto bscan = bm.instr_count();

    t.add_row({std::to_string(dims), std::to_string(hm.size()),
               std::to_string(hsort), std::to_string(csort),
               std::to_string(bsort), std::to_string(hscan),
               std::to_string(cscan), std::to_string(bscan)});
  }
  t.print(std::cout);
  std::cout << "\nsort is O(log^2 n) dimension runs, scan a single ASCEND; "
               "the CCC pays its constant, the BVM multiplies by the "
               "bit-serial word width — the same cost structure the TT "
               "program exhibits (E8, E9).\n";
  return 0;
}
