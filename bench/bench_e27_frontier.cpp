// E27 — reachable-subspace frontier solver vs the dense kernel path.
//
// The dense path (PR 2/4) evaluates all N actions on every one of the 2^k
// states; the frontier solver (this PR) first closes the state space under
// S∩T_i / S−T_i from U and runs the same wave kernel over the reachable
// set only. This bench asks the acceptance question directly: on a family
// whose closure is O(k²) — prefix-interval tests plus a universal
// treatment — how much does skipping the unreachable lattice buy, as N
// scales with k under the paper's machine-sizing policies?
//
//   BM_DenseSolve     warm-arena solve_with_arena at k = 14..20 — the best
//                     dense variant the CPU dispatches (simd on x86).
//   BM_FrontierSolve  FrontierSolver::solve_sparse at k = 14..22 — closure
//                     expansion + sparse waves, end to end, every
//                     iteration (no cached closure).
//
// Args are {k, policy} with policy 0 = ActionBudget::kQuadratic (N = k²)
// and 1 = kLinear (N = 4k); instances pad the k meaningful actions with
// duplicates so the kernel sweeps the full N-wide action set without the
// closure growing. Acceptance (ISSUE 9): frontier ≥ 5x dense at k = 18,
// N = k², and ≥ 20x at k = 20. Every run records
// {bench, args, k, N, variant, ns_per_solve} via the shared --json harness
// (bench_json.hpp); BENCH_e27.json at the repo root is the committed
// trajectory and tools/bench_compare.py diffs two such files.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdint>
#include <string>

#include "tt/kernel.hpp"
#include "tt/sizing.hpp"
#include "tt/solver_frontier.hpp"
#include "util/bits.hpp"

namespace {

using ttp::tt::ActionBudget;
using ttp::tt::Instance;

ActionBudget policy_from(std::int64_t idx) {
  return idx == 0 ? ActionBudget::kQuadratic : ActionBudget::kLinear;
}

/// Prefix-interval family sized to the policy: tests on {0..m-1} for
/// m = 1..k-1 keep the closure at the contiguous bit intervals (O(k²)
/// states), a universal treatment terminates every branch, and duplicate
/// actions pad N up to actions_for(k, policy) so dense and sparse sweep
/// the same N-wide action set per state.
Instance frontier_instance(int k, ActionBudget policy) {
  const auto n_actions = static_cast<int>(ttp::tt::actions_for(k, policy));
  const int pad = n_actions > k ? n_actions - k : 0;
  std::vector<double> w(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) w[static_cast<std::size_t>(i)] = 0.01 + 0.003 * i;
  Instance ins(k, std::move(w));
  for (int m = 1; m < k; ++m) {
    ins.add_test(ttp::util::universe(m), 1.0 + 0.1 * m);
  }
  for (int p = 0; p < pad / 2; ++p) {
    const int m = 1 + p % (k - 1);
    ins.add_test(ttp::util::universe(m), 5.0 + 0.01 * p);
  }
  ins.add_treatment(ins.universe(), 3.0);
  for (int p = 0; p < pad - pad / 2; ++p) {
    ins.add_treatment(ins.universe(), 6.0 + 0.01 * p);
  }
  return ins;
}

void annotate(benchmark::State& state, const Instance& ins,
              ActionBudget policy) {
  state.counters["k"] = static_cast<double>(ins.k());
  state.counters["N"] = static_cast<double>(ins.num_actions());
  state.SetLabel(std::string(ttp::tt::active_kernel_variant_name()) + "/" +
                 ttp::tt::budget_name(policy));
}

void BM_DenseSolve(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const ActionBudget policy = policy_from(state.range(1));
  const Instance ins = frontier_instance(k, policy);
  ttp::tt::SolveArena arena;
  double cost = 0;
  for (auto _ : state) {
    cost = ttp::tt::solve_with_arena(ins, arena).cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["C(U)"] = cost;
  annotate(state, ins, policy);
}

void BM_FrontierSolve(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const ActionBudget policy = policy_from(state.range(1));
  const Instance ins = frontier_instance(k, policy);
  // Pin the planner sparse for every k in range (min_sparse_k below 14)
  // so the bench times the sparse path itself, not the planner's choice.
  ttp::tt::FrontierConfig cfg;
  cfg.min_sparse_k = 2;
  ttp::tt::FrontierSolver solver(/*workers=*/0, cfg);
  double cost = 0;
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto res = solver.solve_sparse(ins);
    cost = res.cost;
    states = res.breakdown.get("frontier_states");
    benchmark::DoNotOptimize(cost);
  }
  state.counters["C(U)"] = cost;
  state.counters["reachable"] = static_cast<double>(states);
  annotate(state, ins, policy);
}

}  // namespace

// Dense stops at k = 20 (N·2^k evals; k = 22 dense is minutes per solve),
// the frontier runs through k = 22 — the serving tier's --max-sparse-k
// headroom. Policy 0 = N = k² (quadratic), 1 = N = 4k (linear).
BENCHMARK(BM_DenseSolve)
    ->ArgsProduct({benchmark::CreateDenseRange(14, 20, 2), {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FrontierSolve)
    ->ArgsProduct({benchmark::CreateDenseRange(14, 22, 2), {0, 1}})
    ->Unit(benchmark::kMillisecond);

TTP_BENCH_JSON_MAIN()
