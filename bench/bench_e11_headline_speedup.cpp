// E11 — Claim (§1): "a speedup of roughly 10^6 could thus be realized over
// a sequential processing of a test-and-treatment problem with 15
// candidates. (This allows for the parallelism of 64 bits that a sequential
// machine might possess.)"
//
// Reproduced two ways:
//  (a) the paper's own analytic estimate, S ≈ P / (log P · 64), recomputed;
//  (b) an extrapolation anchored in MEASURED constants: per-(S,i) sequential
//      work from the host DP and per-layer BVM instruction constants from
//      real small-machine runs, scaled to k = 15, N = 2^15, p = 16.
#include <cmath>
#include <iostream>

#include "tt/generator.hpp"
#include "tt/solver_bvm.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ttp::tt;
  ttp::util::print_section(std::cout,
                           "E11: the ~10^6 headline speedup for k = 15");

  const int k = 15;
  const double p_bits = 16;
  const double N = std::pow(2.0, 15);     // all subsets as actions
  const double P = N * std::pow(2.0, k);  // 2^30 PEs
  const double logP = std::log2(P);

  // (a) Paper-style analytic estimate.
  const double analytic = P / (logP * 64.0);

  // (b) Measured-constant extrapolation. Calibrate on a small instance the
  // simulator can run end to end.
  ttp::util::Rng rng(5);
  RandomOptions opt;
  opt.num_tests = 8;
  opt.num_treatments = 8;
  opt.integer_costs = true;
  opt.integer_weights = true;
  const Instance small = random_instance(6, opt, rng);
  BvmSolverOptions bopt;
  bopt.format = ttp::util::Fixed::Format{16, 0};
  const auto bres = BvmSolver(bopt).solve(small);
  const auto sres = SequentialSolver().solve(small);

  // BVM cost structure: layer instructions scale as k·p·(k + a)·Q with the
  // measured constant c_bvm from the small run.
  const int a_small = ttp::util::ceil_log2(
      static_cast<std::uint64_t>(small.num_actions()));
  const int Q_small =
      ttp::bvm::BvmConfig::for_dims(small.k() + a_small).Q();
  const double c_bvm =
      static_cast<double>(bres.breakdown.get("layers")) /
      (small.k() * p_bits * (small.k() + a_small) * Q_small);

  // Big machine: k=15, a=15 -> dims=30, complete CCC r=5 would have Q=32;
  // take Q=32 (h=25 <= 32).
  const double Q_big = 32;
  const double a_big = 15;
  const double T_bvm = c_bvm * k * p_bits * (k + a_big) * Q_big;

  // Sequential: measured M-evaluation throughput assumption — a 1-cycle-
  // per-word 64-bit machine doing the measured per-eval work. Each eval is
  // a handful of word ops; charge 4 (mask ops + add + compare), the same
  // instruction currency as one BVM instruction.
  const double evals = N * std::pow(2.0, k);
  const double T_seq = evals * 4.0;
  const double measured = T_seq / T_bvm;

  // Pipelined-lateral refinement: the paper's bound assumes the
  // Preparata-Vuillemin wave, which amortizes all h lateral dims of a sweep
  // into one rotation. Relative to the unpipelined realization measured
  // above, the lateral cost shrinks by ~ h·Q / (2(Q+h)) (E13's trend).
  const double h_big = 30 - 5;  // dims=30 on a complete r=5 CCC (Q=32)
  const double pipeline_gain = (h_big * Q_big) / (2.0 * (Q_big + h_big));
  const double measured_pipelined = measured * pipeline_gain;

  ttp::util::Table t({"estimate", "T_seq (ops)", "T_par (instr)", "speedup"});
  t.add_row({"paper-style analytic P/(logP·64)", "-", "-",
             ttp::util::Table::num(analytic, 4)});
  t.add_row({"measured constants, unpipelined laterals",
             ttp::util::Table::num(T_seq, 4), ttp::util::Table::num(T_bvm, 4),
             ttp::util::Table::num(measured, 4)});
  t.add_row({"measured constants + pipelined laterals", "-",
             ttp::util::Table::num(T_bvm / pipeline_gain, 4),
             ttp::util::Table::num(measured_pipelined, 4)});
  t.print(std::cout);

  std::cout << "\ncalibration: small run k=6 N=" << small.num_actions()
            << " took " << bres.breakdown.get("layers")
            << " layer instructions (c_bvm = " << c_bvm << "), sequential "
            << sres.steps.total_ops << " M-evaluations\n";
  std::cout << "\nanalytic estimate reproduces the paper's ~10^6 (within "
               "2x): "
            << (analytic > 3e5 && analytic < 3e6 ? "YES" : "NO") << '\n';
  std::cout << "measured-constant estimates show where the microprogram's "
               "constant factors land (c_bvm ≈ 4 and the choice of lateral "
               "realization cost 1-2 orders of magnitude; the asymptotic "
               "shape is E7/E9's subject).\n";
  return analytic > 3e5 && analytic < 3e6 ? 0 : 1;
}
