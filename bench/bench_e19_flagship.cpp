// E19 (capstone) — the paper's §1 headline configuration, actually
// executed: "for 2^20 PEs ... 15 elements (say, disease candidates) could
// be processed in parallel ... a machine with 2^20 PEs is currently
// implementable."
//
// We build a k = 15 diagnosis problem with 32 actions (dims = 15 + 5 = 20),
// instantiate the full 2^20-PE Boolean Vector Machine (complete CCC, r=4,
// Q=16, 65536 cycles), run the entire bit-serial TT microprogram with
// pipelined lateral waves, and check the resulting DP table against the
// host solver. Every number printed is a real executed-instruction count
// on the simulated machine the paper says is "currently implementable".
#include <chrono>
#include <cmath>
#include <iostream>

#include "tt/generator.hpp"
#include "tt/solver_bvm.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace ttp::tt;
  ttp::util::print_section(
      std::cout, "E19: k = 15 candidates on the 2^20-PE BVM, end to end");

  // 15 disease candidates, 32 actions (16 tests + 16 treatments incl.
  // coverage), integer costs so the bit-serial result is exact.
  ttp::util::Rng rng(1986);
  RandomOptions opt;
  opt.num_tests = 16;
  opt.num_treatments = 16 - 15 >= 1 ? 12 : 12;  // + up to k coverage singles
  opt.integer_costs = true;
  opt.integer_weights = true;
  opt.max_cost = 6.0;
  Instance ins = random_instance(15, opt, rng);
  while (ins.num_actions() > 32) {
    // (cannot happen with these parameters; guard for clarity)
    break;
  }

  BvmSolverOptions bopt;
  bopt.format = ttp::util::Fixed::Format{16, 0};
  bopt.pipelined_laterals = true;
  const auto t0 = std::chrono::steady_clock::now();
  const auto bvm = BvmSolver(bopt).solve(ins);
  const double host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto seq = SequentialSolver().solve(ins);

  ttp::util::Table t({"quantity", "value"});
  t.add_row({"candidates k", "15"});
  t.add_row({"actions N (padded)", std::to_string(ins.num_actions()) + " (32)"});
  t.add_row({"machine", "complete CCC r=4: Q=16, 2^16 cycles"});
  t.add_row({"PEs", std::to_string(bvm.breakdown.get("bvm_pes"))});
  t.add_row({"registers used / L",
             std::to_string(bvm.breakdown.get("bvm_registers")) + " / 256"});
  t.add_row({"BVM instructions total",
             std::to_string(bvm.breakdown.get("bvm_instructions"))});
  t.add_row({"  processor-ID (on the fly)",
             std::to_string(bvm.breakdown.get("init_ids"))});
  t.add_row({"  p(S) + TP init",
             std::to_string(bvm.breakdown.get("init_ps") +
                            bvm.breakdown.get("init_tp"))});
  t.add_row({"  15 DP layers", std::to_string(bvm.breakdown.get("layers"))});
  t.add_row({"C(U) on the BVM", ttp::util::Table::num(bvm.cost, 10)});
  t.add_row({"C(U) host DP", ttp::util::Table::num(seq.cost, 10)});
  t.add_row({"table diff", ttp::util::Table::num(
                               max_table_diff(bvm.table, seq.table), 4)});
  t.add_row({"argmin tables identical",
             bvm.table.best_action == seq.table.best_action ? "yes" : "no"});
  t.add_row({"host wall-clock for the simulation",
             ttp::util::Table::num(host_seconds, 3) + " s"});
  t.print(std::cout);

  const bool ok = max_table_diff(bvm.table, seq.table) == 0.0 &&
                  bvm.table.best_action == seq.table.best_action;
  std::cout << "\nthe full 2^20-PE bit-serial machine reproduces the host DP "
            << (ok ? "exactly" : "INCORRECTLY") << " on all "
            << bvm.table.cost.size() << " states.\n";
  return ok ? 0 : 1;
}
