// E13 — Ablation: the Preparata-Vuillemin pipelined lateral wave vs paying
// a full cycle rotation per lateral dimension (what a naive port of the
// hypercube algorithm to the CCC would do). The paper's 4-6x claim only
// holds because of the pipelining; this bench quantifies how much it buys
// as the lateral count h grows, both for raw ASCEND sweeps and for whole
// TT solves.
#include <iostream>

#include "net/ccc.hpp"
#include "net/hypercube.hpp"
#include "tt/generator.hpp"
#include "tt/solver_bvm.hpp"
#include "tt/solver_ccc.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct Item {
  std::uint64_t v = 0;
};

void mix(int dim, Item& lo, Item& hi) {
  const std::uint64_t a = lo.v, b = hi.v;
  lo.v = a * 7 + b + static_cast<std::uint64_t>(dim);
  hi.v = b * 5 + a;
}

}  // namespace

int main() {
  using namespace ttp::net;
  ttp::util::print_section(
      std::cout, "E13: pipelined vs unpipelined lateral dimensions (ASCEND)");

  ttp::util::Table t({"shape (r,h)", "PEs", "pipelined steps",
                      "unpipelined steps", "pipelining gain"});
  for (const CccConfig cfg :
       {CccConfig{2, 2}, CccConfig::complete(2), CccConfig{3, 6},
        CccConfig::complete(3), CccConfig{4, 10}, CccConfig::complete(4)}) {
    CccMachine<Item> pm(cfg), um(cfg);
    for (std::size_t i = 0; i < pm.size(); ++i) {
      pm.at(i).v = um.at(i).v = i + 1;
    }
    pm.ascend(mix);
    um.ascend_unpipelined(mix);
    t.add_row({"(" + std::to_string(cfg.r) + "," + std::to_string(cfg.h) + ")",
               std::to_string(cfg.size()),
               std::to_string(pm.steps().parallel_steps),
               std::to_string(um.steps().parallel_steps),
               ttp::util::Table::num(
                   static_cast<double>(um.steps().parallel_steps) /
                       static_cast<double>(pm.steps().parallel_steps),
                   3) +
                   "x"});
  }
  t.print(std::cout);

  // The same ablation at the bit level: whole TT solves on the BVM with
  // per-dimension rotation laps vs the pipelined wave in the e-loop.
  std::cout << "\nBVM TT solves (p=12, integer costs):\n";
  ttp::util::Table bt({"k", "layer instrs (per-dim laps)",
                       "layer instrs (pipelined wave)", "gain"});
  for (int k : {4, 6, 8, 10}) {
    ttp::util::Rng rng(static_cast<std::uint64_t>(k));
    ttp::tt::RandomOptions ropt;
    ropt.num_tests = 4;
    ropt.num_treatments = 4;
    ropt.integer_costs = true;
    ropt.integer_weights = true;
    const ttp::tt::Instance ins = ttp::tt::random_instance(k, ropt, rng);
    ttp::tt::BvmSolverOptions a;
    a.format = ttp::util::Fixed::Format{12, 0};
    ttp::tt::BvmSolverOptions b = a;
    b.pipelined_laterals = true;
    const auto ra = ttp::tt::BvmSolver(a).solve(ins);
    const auto rb = ttp::tt::BvmSolver(b).solve(ins);
    if (ttp::tt::max_table_diff(ra.table, rb.table) != 0.0) {
      std::cerr << "MISMATCH\n";
      return 1;
    }
    const auto la = ra.breakdown.get("layers");
    const auto lb = rb.breakdown.get("layers");
    bt.add_row({std::to_string(k), std::to_string(la), std::to_string(lb),
                ttp::util::Table::num(static_cast<double>(la) /
                                          static_cast<double>(lb),
                                      3) +
                    "x"});
  }
  bt.print(std::cout);

  std::cout << "\nthe gain grows with h (the wave amortizes all laterals "
               "into one rotation): the paper's constant-factor simulation "
               "— and its T = O(k·p·(k+log N)) bound — depend on it.\n";
  return 0;
}
