// E18 — Claim (§2): "Since the BVM communication network resembles the
// Benes permutation network, it can accomplish any permutation within
// O(log n) time if the control bits are precalculated."
//
// Measured: random permutations routed through precalculated Benes control
// bits; CCC parallel steps per permutation across machine sizes (flat
// steps/log n = the O(log n) claim), plus the bit-serial BVM instruction
// counts with the control rows DMA-loaded ("precalculated").
#include <iostream>
#include <numeric>

#include "bvm/microcode/permute.hpp"
#include "net/benes.hpp"
#include "net/ccc.hpp"
#include "net/hypercube.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

std::vector<std::size_t> random_perm(std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  ttp::util::Rng rng(seed);
  rng.shuffle(p);
  return p;
}

}  // namespace

int main() {
  ttp::util::print_section(
      std::cout,
      "E18: any permutation in O(log n) with precalculated control bits");

  ttp::util::Table t({"CCC shape", "PEs n", "stages (2·log n − 1)",
                      "hypercube steps", "CCC steps", "CCC steps / log2 n"});
  for (const ttp::net::CccConfig cfg :
       {ttp::net::CccConfig{2, 2}, ttp::net::CccConfig::complete(2),
        ttp::net::CccConfig{3, 6}, ttp::net::CccConfig::complete(3),
        ttp::net::CccConfig{4, 12}}) {
    const auto perm = random_perm(cfg.size(), 99);
    const auto prog = ttp::net::benes_route(perm);

    ttp::net::HypercubeMachine<ttp::net::NormalItem> hm(cfg.dims());
    ttp::net::CccMachine<ttp::net::NormalItem> cm(cfg);
    for (std::size_t i = 0; i < hm.size(); ++i) {
      hm.at(i).key = cm.at(i).key = i;
    }
    ttp::net::init_homes(hm);
    ttp::net::init_homes(cm);
    ttp::net::benes_apply(hm, prog);
    ttp::net::benes_apply(cm, prog);
    for (std::size_t i = 0; i < hm.size(); ++i) {
      if (hm.at(perm[i]).key != i || cm.at(perm[i]).key != i) {
        std::cerr << "ROUTING ERROR\n";
        return 1;
      }
    }
    t.add_row({"(" + std::to_string(cfg.r) + "," + std::to_string(cfg.h) + ")",
               std::to_string(cfg.size()), std::to_string(prog.num_stages()),
               std::to_string(hm.steps().parallel_steps),
               std::to_string(cm.steps().parallel_steps),
               ttp::util::Table::num(
                   static_cast<double>(cm.steps().parallel_steps) /
                       cfg.dims(),
                   4)});
  }
  t.print(std::cout);

  // Bit level: the paper's machine with precalculated rows.
  std::cout << "\nbit-serial BVM (p = 8 data bits, controls DMA-loaded):\n";
  ttp::util::Table bt({"machine", "PEs", "ctrl rows", "instructions",
                       "instr / (p·(2·log n − 1))"});
  for (int r : {2, 3}) {
    const ttp::bvm::BvmConfig cfg = ttp::bvm::BvmConfig::complete(r);
    ttp::bvm::Machine m(cfg);
    const int p = 8;
    const ttp::bvm::Field v{0, p}, x{p, p};
    const auto perm = random_perm(m.num_pes(), 7);
    const auto prog = ttp::net::benes_route(perm);
    ttp::bvm::load_benes_controls(m, prog, 2 * p);
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      m.poke_value(v.base, p, pe, pe % 251);
    }
    ttp::bvm::benes_permute(m, prog, 2 * p, v, x, 60);
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      if (m.peek_value(v.base, p, perm[pe]) != pe % 251) {
        std::cerr << "BVM ROUTING ERROR\n";
        return 1;
      }
    }
    bt.add_row({"complete CCC r=" + std::to_string(r),
                std::to_string(m.num_pes()),
                std::to_string(prog.num_stages()),
                std::to_string(m.instr_count()),
                ttp::util::Table::num(
                    static_cast<double>(m.instr_count()) /
                        (p * (2.0 * cfg.dims() - 1)),
                    4)});
  }
  bt.print(std::cout);
  std::cout << "\nCCC steps scale with log n at a flat constant; every "
              "random permutation routed exactly. The last BVM column is "
              "the per-stage bit cost (dominated by the Q-lap exchange; "
              "the wave of E13 applies here too).\n";
  return 0;
}
