// BitVec storage invariants: the padding bits above size() must stay zero
// under every operation (the word-parallel routing depends on it).
#include <gtest/gtest.h>

#include "bvm/bitvec.hpp"

namespace ttp::bvm {
namespace {

TEST(BitVec, ConstructionAndAccess) {
  BitVec v(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.words(), 1u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_FALSE(v.get(i));
  v.set(3, true);
  v.set(9, true);
  EXPECT_TRUE(v.get(3));
  EXPECT_TRUE(v.get(9));
  v.set(3, false);
  EXPECT_FALSE(v.get(3));
}

TEST(BitVec, FillRespectsSizeBoundary) {
  BitVec v(10, true);
  EXPECT_EQ(v.word(0), 0x3FFu);  // only the low 10 bits
  v.fill(false);
  EXPECT_EQ(v.word(0), 0u);
  v.fill(true);
  EXPECT_EQ(v.word(0), 0x3FFu);
}

TEST(BitVec, TrimClearsSpill) {
  BitVec v(10);
  v.word(0) = ~std::uint64_t{0};
  v.trim();
  EXPECT_EQ(v.word(0), 0x3FFu);
}

TEST(BitVec, MultiWordSizes) {
  BitVec v(130, true);
  EXPECT_EQ(v.words(), 3u);
  EXPECT_EQ(v.word(0), ~std::uint64_t{0});
  EXPECT_EQ(v.word(1), ~std::uint64_t{0});
  EXPECT_EQ(v.word(2), 0x3u);
  EXPECT_TRUE(v.get(129));
  v.set(129, false);
  EXPECT_FALSE(v.get(129));
  EXPECT_TRUE(v.get(128));
}

TEST(BitVec, ExactWordSizeHasNoPadding) {
  BitVec v(128, true);
  EXPECT_EQ(v.words(), 2u);
  EXPECT_EQ(v.word(1), ~std::uint64_t{0});
  v.trim();  // must be a no-op
  EXPECT_EQ(v.word(1), ~std::uint64_t{0});
}

TEST(BitVec, Equality) {
  BitVec a(12), b(12), c(13);
  a.set(5, true);
  EXPECT_FALSE(a == b);
  b.set(5, true);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace ttp::bvm
