#include "util/bits.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ttp::util {
namespace {

TEST(Bits, PopcountAndBitHelpers) {
  EXPECT_EQ(popcount(0u), 0);
  EXPECT_EQ(popcount(0b1011u), 3);
  EXPECT_TRUE(has_bit(0b100u, 2));
  EXPECT_FALSE(has_bit(0b100u, 1));
  EXPECT_EQ(bit(3), 8u);
  EXPECT_EQ(universe(4), 0b1111u);
  EXPECT_EQ(universe(1), 1u);
}

TEST(Bits, BitOfAndFlip) {
  EXPECT_EQ(bit_of(0, 5), 1);
  EXPECT_EQ(bit_of(1, 5), 0);
  EXPECT_EQ(bit_of(2, 5), 1);
  EXPECT_EQ(flip_bit(0b101, 1), 0b111u);
  EXPECT_EQ(flip_bit(0b101, 0), 0b100u);
}

TEST(Bits, Log2Helpers) {
  EXPECT_EQ(log2_exact(1), 0);
  EXPECT_EQ(log2_exact(64), 6);
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(8), 3);
  EXPECT_EQ(ceil_log2(9), 4);
}

TEST(Bits, LayerSubsetsCoverEveryMaskExactlyOnce) {
  const int k = 6;
  std::set<Mask> seen;
  std::size_t total = 0;
  for (int j = 0; j <= k; ++j) {
    for (Mask s : layer_subsets(k, j)) {
      EXPECT_EQ(popcount(s), j);
      EXPECT_TRUE(seen.insert(s).second) << "duplicate mask " << s;
      ++total;
    }
  }
  EXPECT_EQ(total, std::size_t{1} << k);
}

TEST(Bits, LayerSubsetsAscending) {
  for (int j = 1; j <= 5; ++j) {
    const auto layer = layer_subsets(5, j);
    for (std::size_t i = 1; i < layer.size(); ++i) {
      EXPECT_LT(layer[i - 1], layer[i]);
    }
  }
}

TEST(Bits, LayerSubsetsEdges) {
  EXPECT_EQ(layer_subsets(4, 0).size(), 1u);
  EXPECT_EQ(layer_subsets(4, 0)[0], 0u);
  EXPECT_EQ(layer_subsets(4, 4).size(), 1u);
  EXPECT_EQ(layer_subsets(4, 4)[0], 0b1111u);
  EXPECT_TRUE(layer_subsets(4, 5).empty());
}

TEST(Bits, LayerSubsetsFullUniverseLayerForEveryK) {
  // j == k: the single full-universe mask, for every k up to the width of
  // Mask. k == 32 used to shift Mask{1} by 32 (UB) in both layer_subsets
  // and next_same_popcount's bound check.
  for (int k = 1; k <= 32; ++k) {
    const auto layer = layer_subsets(k, k);
    ASSERT_EQ(layer.size(), 1u) << k;
    EXPECT_EQ(layer[0], universe(k)) << k;
  }
}

TEST(Bits, LayerSubsetsAtMaximumWidth) {
  EXPECT_EQ(layer_subsets(32, 1).size(), 32u);
  EXPECT_EQ(layer_subsets(32, 1).front(), 1u);
  EXPECT_EQ(layer_subsets(32, 1).back(), 0x80000000u);
  EXPECT_EQ(layer_subsets(31, 31), std::vector<Mask>{0x7FFFFFFFu});
  // 31-of-32: the Gosper step from the penultimate mask overflows Mask;
  // the enumeration must still terminate with all 32 members seen.
  const auto layer = layer_subsets(32, 31);
  ASSERT_EQ(layer.size(), 32u);
  for (std::size_t i = 0; i < layer.size(); ++i) {
    EXPECT_EQ(popcount(layer[i]), 31) << i;
    EXPECT_EQ(layer[i], ~(Mask{1} << (31 - i))) << i;
  }
}

TEST(Bits, NextSamePopcountTerminatesAtWordBoundary) {
  // Last subsets of their popcount in the full 32-bit space: m + lowbit
  // wraps to 0 (or below m); the successor must be "none", not garbage.
  EXPECT_EQ(next_same_popcount(0xFFFFFFFFu, 32), 0u);
  EXPECT_EQ(next_same_popcount(0x80000000u, 32), 0u);
  EXPECT_EQ(next_same_popcount(0xF0000000u, 32), 0u);
  EXPECT_EQ(next_same_popcount(0xFFFF0000u, 32), 0u);
  // Not at the boundary: ordinary Gosper successor, still correct.
  EXPECT_EQ(next_same_popcount(0xC0000001u, 32), 0xC0000002u);
  EXPECT_EQ(next_same_popcount(0x7FFFFFFFu, 32), 0xBFFFFFFFu);
  EXPECT_EQ(next_same_popcount(1u, 32), 2u);
  // And the k-bound still truncates the walk below the word width.
  EXPECT_EQ(next_same_popcount(0b1100u, 4), 0u);
  EXPECT_EQ(next_same_popcount(0b1100u, 5), 0b10001u);
}

TEST(Bits, AllSubsetsOfSparseSpace) {
  const auto subs = all_subsets(0b101u);
  ASSERT_EQ(subs.size(), 4u);
  EXPECT_EQ(subs[0], 0u);
  EXPECT_EQ(subs[1], 0b001u);
  EXPECT_EQ(subs[2], 0b100u);
  EXPECT_EQ(subs[3], 0b101u);
}

TEST(Bits, MaskToString) {
  EXPECT_EQ(mask_to_string(0), "{}");
  EXPECT_EQ(mask_to_string(0b1011), "{0,1,3}");
}

TEST(Bits, ToBinary) {
  EXPECT_EQ(to_binary(0b1010, 4), "1010");
  EXPECT_EQ(to_binary(1, 4), "0001");
  EXPECT_EQ(to_binary(0, 3), "000");
}

}  // namespace
}  // namespace ttp::util
