// Protocol rendering: structure, numbering, branch-target consistency.
#include <gtest/gtest.h>

#include <regex>

#include "tt/generator.hpp"
#include "tt/protocol.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

TEST(Protocol, Fig1RendersAllSteps) {
  const Instance ins = fig1_example();
  const auto res = SequentialSolver().solve(ins);
  ProtocolOptions opt;
  opt.object_names = {"flu", "strep", "mono", "covid"};
  const std::string doc = render_protocol(ins, res.tree, opt);

  // One numbered line per node.
  for (int s = 1; s <= res.tree.size(); ++s) {
    EXPECT_NE(doc.find("\n" + std::to_string(s) + ". "),
              std::string::npos)
        << "missing step " << s << " in:\n"
        << doc;
  }
  EXPECT_NE(doc.find("Run test \"testAB\""), std::string::npos);
  EXPECT_NE(doc.find("strep"), std::string::npos);
  EXPECT_NE(doc.find("cured -> done"), std::string::npos);
}

TEST(Protocol, BranchTargetsAreValidStepNumbers) {
  util::Rng rng(2);
  const Instance ins = medical_instance(6, 5, rng);
  const auto res = SequentialSolver().solve(ins);
  const std::string doc = render_protocol(ins, res.tree);

  const std::regex target(R"(-> step (\d+))");
  auto begin = std::sregex_iterator(doc.begin(), doc.end(), target);
  int count = 0;
  for (auto it = begin; it != std::sregex_iterator{}; ++it) {
    const int step = std::stoi((*it)[1].str());
    EXPECT_GE(step, 2);  // nothing points back at the root
    EXPECT_LE(step, res.tree.size());
    ++count;
  }
  EXPECT_GT(count, 0);
}

TEST(Protocol, RootIsStepOneAndBreadthFirst) {
  const Instance ins = fig1_example();
  const auto res = SequentialSolver().solve(ins);
  const std::string doc = render_protocol(ins, res.tree);
  const Action& root = ins.action(res.tree.node(res.tree.root()).action);
  // Step 1 names the root action.
  const auto pos1 = doc.find("1. ");
  ASSERT_NE(pos1, std::string::npos);
  EXPECT_NE(doc.find(root.name, pos1), std::string::npos);
}

TEST(Protocol, OptionsToggleDetails) {
  const Instance ins = fig1_example();
  const auto res = SequentialSolver().solve(ins);
  ProtocolOptions bare;
  bare.include_candidates = false;
  bare.include_costs = false;
  const std::string doc = render_protocol(ins, res.tree, bare);
  EXPECT_EQ(doc.find("candidates:"), std::string::npos);
  EXPECT_EQ(doc.find("cost"), std::string::npos);
}

TEST(Protocol, RejectsEmptyTree) {
  const Instance ins = fig1_example();
  EXPECT_THROW(render_protocol(ins, Tree{}), std::invalid_argument);
}

}  // namespace
}  // namespace ttp::tt
