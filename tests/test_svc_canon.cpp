// Canonical instance keying: semantically identical requests collide,
// different problems do not, and cached canonical results translate back
// into the requester's coordinates.
#include <gtest/gtest.h>

#include <unordered_set>

#include "svc/canon.hpp"
#include "tt/generator.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/validate.hpp"
#include "util/rng.hpp"

namespace ttp::svc {
namespace {

using tt::Instance;
using util::bit;

Instance shuffled_renamed_scaled(double scale) {
  // fig1_example with actions reordered within groups, fresh names, and all
  // weights multiplied by `scale` — the same problem, differently spelled.
  Instance ins(4, {0.4 * scale, 0.3 * scale, 0.2 * scale, 0.1 * scale});
  ins.add_test(bit(0) | bit(2), 1.5, "secondTest");
  ins.add_test(bit(0) | bit(1), 1.0, "firstTest");
  ins.add_treatment(bit(2) | bit(3), 2.5, "z");
  ins.add_treatment(bit(0), 2.0, "y");
  ins.add_treatment(bit(1) | bit(2), 3.0, "x");
  return ins;
}

TEST(SvcCanon, Hash128IsStableAndSensitive) {
  const CanonKey a = hash128("tt 4\n");
  EXPECT_EQ(a, hash128("tt 4\n"));
  EXPECT_NE(a, hash128("tt 5\n"));
  EXPECT_NE(a, hash128("tt 4"));
  EXPECT_NE(hash128(""), CanonKey{});
  // hi and lo are independent mixes: flipping one byte changes both.
  const CanonKey b = hash128("tt 5\n");
  EXPECT_NE(a.hi, b.hi);
  EXPECT_NE(a.lo, b.lo);
  EXPECT_EQ(a.hex().size(), 32u);
  EXPECT_NE(a.hex(), b.hex());
}

TEST(SvcCanon, EquivalentSpellingsCollide) {
  const Canonical base = canonicalize(tt::fig1_example());
  for (const double scale : {1.0, 2.0, 8.0, 0.5}) {
    const Canonical other = canonicalize(shuffled_renamed_scaled(scale));
    EXPECT_EQ(base.key, other.key) << "scale=" << scale;
    EXPECT_EQ(base.text, other.text) << "scale=" << scale;
    EXPECT_DOUBLE_EQ(other.weight_scale, scale);
  }
}

TEST(SvcCanon, DistinctProblemsGetDistinctKeys) {
  util::Rng rng(7);
  std::unordered_set<std::string> keys;
  for (int i = 0; i < 50; ++i) {
    tt::RandomOptions opt;
    opt.num_tests = 3 + i % 3;
    opt.num_treatments = 4;
    keys.insert(canonicalize(tt::random_instance(5 + i % 3, opt, rng)).key.hex());
  }
  EXPECT_EQ(keys.size(), 50u);
}

TEST(SvcCanon, CostChangesTheKey) {
  Instance a = tt::fig1_example();
  Instance b = tt::fig1_example();
  Instance c(4, {0.4, 0.3, 0.2, 0.1});
  c.add_test(bit(0) | bit(1), 1.0 + 1e-9, "testAB");  // one cost nudged
  c.add_test(bit(0) | bit(2), 1.5, "testAC");
  c.add_treatment(bit(0), 2.0, "cureA");
  c.add_treatment(bit(1) | bit(2), 3.0, "cureBC");
  c.add_treatment(bit(2) | bit(3), 2.5, "cureCD");
  EXPECT_EQ(canonicalize(a).key, canonicalize(b).key);
  EXPECT_NE(canonicalize(a).key, canonicalize(c).key);
}

TEST(SvcCanon, TestTreatmentKindIsPartOfTheKey) {
  // Same sets and costs, but one action flips kind: different problem.
  Instance a(2, {0.5, 0.5});
  a.add_test(bit(0), 1.0);
  a.add_treatment(bit(0) | bit(1), 1.0);
  Instance b(2, {0.5, 0.5});
  b.add_treatment(bit(0), 1.0);
  b.add_treatment(bit(0) | bit(1), 1.0);
  EXPECT_NE(canonicalize(a).key, canonicalize(b).key);
}

TEST(SvcCanon, MappingTranslatesCanonicalActionsToOriginal) {
  const Instance original = shuffled_renamed_scaled(3.0);
  const Canonical canon = canonicalize(original);
  ASSERT_EQ(canon.to_original.size(),
            static_cast<std::size_t>(original.num_actions()));
  for (int i = 0; i < canon.instance.num_actions(); ++i) {
    const tt::Action& c = canon.instance.action(i);
    const tt::Action& o =
        original.action(canon.to_original[static_cast<std::size_t>(i)]);
    EXPECT_EQ(c.set, o.set) << i;
    EXPECT_EQ(c.cost, o.cost) << i;
    EXPECT_EQ(c.is_test, o.is_test) << i;
  }
  // Canonical weights are normalized to sum 1.
  double sum = 0.0;
  for (int j = 0; j < canon.instance.k(); ++j) sum += canon.instance.weight(j);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(canon.weight_scale, 3.0);
}

TEST(SvcCanon, RemappedTreeIsOptimalForTheOriginal) {
  util::Rng rng(21);
  for (int trial = 0; trial < 8; ++trial) {
    tt::RandomOptions opt;
    opt.num_tests = 4;
    opt.num_treatments = 5;
    const Instance original = tt::random_instance(6, opt, rng);
    const Canonical canon = canonicalize(original);

    const auto canon_res = tt::SequentialSolver().solve(canon.instance);
    const tt::Tree remapped =
        remap_tree_actions(canon_res.tree, canon.to_original);
    const double original_cost = canon_res.cost * canon.weight_scale;

    // The remapped tree must be a valid procedure for the ORIGINAL instance
    // achieving the (rescaled) canonical cost...
    const auto report =
        tt::validate_tree(original, remapped, original_cost, 1e-9);
    EXPECT_TRUE(report.ok) << (report.errors.empty() ? ""
                                                     : report.errors.front());
    // ...and that cost must equal the original's own optimum.
    const auto direct = tt::SequentialSolver().solve(original);
    EXPECT_NEAR(original_cost, direct.cost,
                1e-9 * std::max(1.0, direct.cost));
  }
}

TEST(SvcCanon, CanonicalizationIsIdempotentOnKeys) {
  // Weights with an exactly-representable sum (1.0), so re-normalizing the
  // canonical form divides by exactly 1.0 and the key is a fixed point.
  // (For general weights idempotence holds only up to last-ulp rounding —
  // that costs at most a duplicate solve, never a wrong answer.)
  Instance ins(4, {0.5, 0.25, 0.125, 0.125});
  ins.add_test(bit(0) | bit(1), 1.0);
  ins.add_treatment(bit(0) | bit(1), 2.0);
  ins.add_treatment(bit(2) | bit(3), 2.5);
  const Canonical once = canonicalize(ins);
  const Canonical twice = canonicalize(once.instance);
  EXPECT_EQ(once.key, twice.key);
  EXPECT_EQ(once.text, twice.text);
}

TEST(SvcCanon, MalformedInstanceThrows) {
  Instance bad(2, {0.5, 0.5});
  bad.add_treatment(bit(0) | bit(1), -1.0);  // negative cost
  EXPECT_THROW(canonicalize(bad), std::invalid_argument);
}

}  // namespace
}  // namespace ttp::svc
