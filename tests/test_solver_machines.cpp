// The paper's parallel TT algorithm on the hypercube and CCC machines must
// reproduce the sequential DP table bit-for-bit (same kernel arithmetic,
// same tie-breaking) on every instance family.
#include <gtest/gtest.h>

#include <cmath>

#include "tt/generator.hpp"
#include "tt/report.hpp"
#include "tt/solver_ccc.hpp"
#include "tt/solver_hypercube.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/validate.hpp"

namespace ttp::tt {
namespace {

void expect_identical(const Instance& ins, const SolveResult& seq,
                      const SolveResult& par, const char* name) {
  EXPECT_EQ(max_table_diff(seq.table, par.table), 0.0) << name << "\n"
                                                       << describe(ins);
  EXPECT_EQ(seq.table.best_action, par.table.best_action) << name;
  if (!std::isinf(seq.cost)) {
    EXPECT_EQ(seq.tree.size(), par.tree.size()) << name;
    EXPECT_DOUBLE_EQ(par.tree.expected_cost(ins), seq.cost) << name;
  } else {
    EXPECT_TRUE(par.tree.empty()) << name;
  }
}

TEST(HypercubeSolver, Fig1Identical) {
  const Instance ins = fig1_example();
  const auto seq = SequentialSolver().solve(ins);
  const auto par = HypercubeSolver().solve(ins);
  expect_identical(ins, seq, par, "hypercube");
}

TEST(HypercubeSolver, ActionPaddingNeverWins) {
  // N = 3 pads to 4; the padding treatment (T = U, INF cost) must never be
  // selected anywhere.
  Instance ins(3, {1, 1, 1});
  ins.add_test(0b011, 1.0);
  ins.add_treatment(0b101, 1.0);
  ins.add_treatment(0b110, 1.0);
  const auto par = HypercubeSolver().solve(ins);
  for (std::size_t s = 1; s < par.table.cost.size(); ++s) {
    if (!std::isinf(par.table.cost[s])) {
      EXPECT_LT(par.table.best_action[s], ins.num_actions());
    }
  }
  const auto seq = SequentialSolver().solve(ins);
  expect_identical(ins, seq, par, "hypercube");
}

TEST(HypercubeSolver, InadequateInstance) {
  Instance ins(2, {1, 1});
  ins.add_test(0b01, 1.0);
  ins.add_treatment(0b01, 2.0);
  const auto par = HypercubeSolver().solve(ins);
  EXPECT_TRUE(std::isinf(par.cost));
  EXPECT_TRUE(par.tree.empty());
}

TEST(HypercubeSolver, StepCountScalesWithLayersNotStates) {
  // T_par per layer: O(k + log N) dim steps; total O(k(k + log N)) — the
  // word-level version of the paper's bound. Verify the exact formula of
  // this implementation: per layer 2 local + 2k e-steps + a min-steps.
  util::Rng rng(3);
  const Instance ins = random_instance(6, RandomOptions{}, rng);
  const auto par = HypercubeSolver().solve(ins);
  const int k = ins.k();
  const int a = HypercubeSolver::action_dims(ins);
  const std::uint64_t expect =
      1 /*init*/ +
      static_cast<std::uint64_t>(k) * (2 + 2 * k + a);
  EXPECT_EQ(par.steps.parallel_steps, expect);
}

class MachineSolversAgree : public ::testing::TestWithParam<int> {};

TEST_P(MachineSolversAgree, AllFamilies) {
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  Instance ins = [&]() -> Instance {
    switch (seed % 5) {
      case 0:
        return random_instance(4 + seed % 3, RandomOptions{}, rng);
      case 1:
        return medical_instance(5, 4, rng);
      case 2:
        return machine_fault_instance(6, rng);
      case 3:
        return biology_key_instance(5, rng);
      default:
        return binary_testing_instance(5, 4, rng);
    }
  }();
  const auto seq = SequentialSolver().solve(ins);
  const auto hyp = HypercubeSolver().solve(ins);
  const auto ccc = CccSolver().solve(ins);
  expect_identical(ins, seq, hyp, "hypercube");
  expect_identical(ins, seq, ccc, "ccc");
  if (!std::isinf(seq.cost)) {
    const auto rep = validate_tree(ins, hyp.tree, seq.cost);
    EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineSolversAgree, ::testing::Range(0, 20));

TEST(CccSolver, ShapeIsMinimalLegalCcc) {
  const Instance ins = fig1_example();  // k=4, N=5 -> a=3, dims=7
  const auto cfg = CccSolver::machine_shape(ins);
  EXPECT_EQ(cfg.dims(), 7);
  EXPECT_LE(cfg.h, cfg.cycle_len());
  // Minimality: one less r must be illegal.
  EXPECT_GT(7 - (cfg.r - 1), 1 << (cfg.r - 1));
}

TEST(CccSolver, ReportsTopologyBreakdown) {
  const Instance ins = fig1_example();
  const auto res = CccSolver().solve(ins);
  EXPECT_EQ(res.breakdown.get("pes"), std::uint64_t{1} << 7);
  EXPECT_GT(res.breakdown.get("links"), 0u);
  // CCC pays a constant-factor more steps than the hypercube run.
  const auto hyp = HypercubeSolver().solve(ins);
  EXPECT_GT(res.steps.parallel_steps, hyp.steps.parallel_steps);
  EXPECT_LT(res.steps.parallel_steps, 30 * hyp.steps.parallel_steps);
}

TEST(HypercubeSolver, CompleteInstanceSmall) {
  // The N = O(2^k) regime the paper sizes the machine for (tiny k here).
  const Instance ins = complete_instance(3);
  const auto seq = SequentialSolver().solve(ins);
  const auto hyp = HypercubeSolver().solve(ins);
  expect_identical(ins, seq, hyp, "hypercube-complete");
  EXPECT_FALSE(std::isinf(seq.cost));
}

}  // namespace
}  // namespace ttp::tt
