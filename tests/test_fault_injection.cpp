// Failure injection: corrupt machine state mid-computation and verify the
// validation layer actually catches the damage — silence under faults would
// mean the validators are vacuous.
#include <gtest/gtest.h>

#include <cmath>

#include "bvm/machine.hpp"
#include "tt/generator.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/validate.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

TEST(FaultInjection, TableValidatorCatchesValueCorruption) {
  util::Rng rng(55);
  const Instance ins = random_instance(5, RandomOptions{}, rng);
  auto res = SequentialSolver().solve(ins);
  ASSERT_TRUE(validate_table(ins, res.table).ok);
  // Corrupt one finite cost.
  for (std::size_t s = 1; s < res.table.cost.size(); ++s) {
    if (!std::isinf(res.table.cost[s])) {
      res.table.cost[s] *= 1.01;
      break;
    }
  }
  EXPECT_FALSE(validate_table(ins, res.table).ok);
}

TEST(FaultInjection, TableValidatorCatchesWrongArgmin) {
  // Point best_action at an action that does NOT achieve the optimum.
  Instance ins(2, {1.0, 1.0});
  ins.add_treatment(0b11, 1.0, "good");
  ins.add_treatment(0b11, 5.0, "bad");
  auto res = SequentialSolver().solve(ins);
  ASSERT_TRUE(validate_table(ins, res.table).ok);
  res.table.best_action[0b11] = 1;  // the dear one
  EXPECT_FALSE(validate_table(ins, res.table).ok);
}

TEST(FaultInjection, TreeValidatorCatchesStateMismatch) {
  const Instance ins = fig1_example();
  auto res = SequentialSolver().solve(ins);
  ASSERT_TRUE(validate_tree(ins, res.tree, res.cost).ok);
  // Rebuild the tree with one child state corrupted.
  auto nodes = res.tree.nodes();
  for (auto& n : nodes) {
    if (n.yes >= 0) {
      nodes[static_cast<std::size_t>(n.yes)].state ^= 1u;
      break;
    }
  }
  Tree broken(nodes, res.tree.root());
  EXPECT_FALSE(validate_tree(ins, broken, res.cost).ok);
}

TEST(FaultInjection, TreeValidatorCatchesWrongCostClaim) {
  const Instance ins = fig1_example();
  const auto res = SequentialSolver().solve(ins);
  EXPECT_FALSE(validate_tree(ins, res.tree, res.cost + 0.5).ok);
}

TEST(FaultInjection, TreeValidatorCatchesDanglingFailureArc) {
  Instance ins(2, {1.0, 1.0});
  ins.add_treatment(0b01, 1.0);
  ins.add_treatment(0b10, 1.0);
  // Treatment of {0} at S={0,1} whose failure continuation is missing.
  std::vector<TreeNode> nodes{{0b11, 0, -1, -1}};
  EXPECT_FALSE(validate_tree(ins, Tree(nodes, 0), 1.0).ok);
}

TEST(FaultInjection, BvmBitFlipChangesDpOutput) {
  // Flip a single M-register bit of a single PE mid-solve and show the
  // corruption propagates to the read-out table — i.e. the simulator's
  // answers really are carried by the machine state, not recomputed on the
  // host. We re-run the microprogram's tail manually via a second machine:
  // here it suffices to flip BEFORE the final extraction.
  using namespace ttp::bvm;
  Machine m(BvmConfig{2, 2});
  // Build a tiny "computation": R[0..3] hold a 4-bit value 5 at every PE.
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke_value(0, 4, pe, 5);
  }
  // Inject: stuck-at-one fault on PE 9's bit 1.
  m.poke(Reg::R(1), 9, true);
  EXPECT_EQ(m.peek_value(0, 4, 9), 7u);
  EXPECT_EQ(m.peek_value(0, 4, 8), 5u);
}

}  // namespace
}  // namespace ttp::tt
