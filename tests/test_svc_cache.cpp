// Sharded LRU procedure cache: hit/miss flow, byte-accounted eviction, TTL
// expiry on an injected clock, and counter bookkeeping.
#include <gtest/gtest.h>

#include <memory>

#include "obs/metrics.hpp"
#include "svc/cache.hpp"

namespace ttp::svc {
namespace {

using Clock = std::chrono::steady_clock;

CanonKey key(std::uint64_t n) {
  return hash128("key-" + std::to_string(n));
}

std::shared_ptr<const CachedProcedure> proc_of_bytes(std::size_t bytes,
                                                     double cost = 1.0) {
  auto p = std::make_shared<CachedProcedure>();
  p->cost = cost;
  p->bytes = bytes;
  return p;
}

TEST(SvcCache, MissThenHit) {
  obs::MetricsRegistry m;
  ProcedureCache cache(CacheConfig{}, m);
  EXPECT_EQ(cache.find(key(1)), nullptr);
  cache.insert(key(1), proc_of_bytes(100, 42.0));
  const auto got = cache.find(key(1));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->cost, 42.0);
  EXPECT_EQ(m.get("svc.cache.misses"), 1u);
  EXPECT_EQ(m.get("svc.cache.hits"), 1u);
  EXPECT_EQ(m.get("svc.cache.inserts"), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 100u);
}

TEST(SvcCache, LruEvictionUnderByteCapacity) {
  obs::MetricsRegistry m;
  CacheConfig cfg;
  cfg.capacity_bytes = 350;
  cfg.shards = 1;  // single shard so the LRU order is global
  ProcedureCache cache(cfg, m);
  cache.insert(key(1), proc_of_bytes(100));
  cache.insert(key(2), proc_of_bytes(100));
  cache.insert(key(3), proc_of_bytes(100));
  EXPECT_EQ(cache.size(), 3u);
  // Touch 1 so 2 becomes least-recently-used, then overflow.
  EXPECT_NE(cache.find(key(1)), nullptr);
  cache.insert(key(4), proc_of_bytes(100));
  EXPECT_EQ(m.get("svc.cache.evictions"), 1u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.bytes(), 300u);
  EXPECT_EQ(cache.find(key(2)), nullptr);  // the LRU victim
  EXPECT_NE(cache.find(key(1)), nullptr);
  EXPECT_NE(cache.find(key(3)), nullptr);
  EXPECT_NE(cache.find(key(4)), nullptr);
}

TEST(SvcCache, OversizedEntryIsAdmittedAlone) {
  obs::MetricsRegistry m;
  CacheConfig cfg;
  cfg.capacity_bytes = 100;
  cfg.shards = 1;
  ProcedureCache cache(cfg, m);
  cache.insert(key(1), proc_of_bytes(50));
  cache.insert(key(2), proc_of_bytes(500));  // alone exceeds capacity
  // The newcomer survives (evicting it would make this key unservable from
  // cache forever); everything else goes.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.find(key(2)), nullptr);
}

TEST(SvcCache, ReinsertReplacesAndReaccounts) {
  obs::MetricsRegistry m;
  CacheConfig cfg;
  cfg.shards = 1;
  ProcedureCache cache(cfg, m);
  cache.insert(key(1), proc_of_bytes(100, 1.0));
  cache.insert(key(1), proc_of_bytes(300, 2.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 300u);
  EXPECT_EQ(cache.find(key(1))->cost, 2.0);
}

TEST(SvcCache, TtlExpiryOnInjectedClock) {
  obs::MetricsRegistry m;
  Clock::time_point fake_now{};  // epoch
  CacheConfig cfg;
  cfg.ttl = std::chrono::seconds(10);
  cfg.now = [&fake_now] { return fake_now; };
  ProcedureCache cache(cfg, m);

  cache.insert(key(1), proc_of_bytes(100));
  fake_now += std::chrono::seconds(9);
  EXPECT_NE(cache.find(key(1)), nullptr) << "entry should survive inside TTL";
  fake_now += std::chrono::seconds(2);  // now 11s after insert
  EXPECT_EQ(cache.find(key(1)), nullptr) << "entry should expire past TTL";
  EXPECT_EQ(m.get("svc.cache.expired"), 1u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);

  // A fresh insert after expiry serves again (its TTL restarts from now).
  cache.insert(key(1), proc_of_bytes(100));
  EXPECT_NE(cache.find(key(1)), nullptr);
}

TEST(SvcCache, ShardCountRoundsToPowerOfTwo) {
  obs::MetricsRegistry m;
  CacheConfig cfg;
  cfg.shards = 5;
  ProcedureCache cache(cfg, m);
  EXPECT_EQ(cache.shard_count(), 8u);
  cfg.shards = 0;
  ProcedureCache one(cfg, m);
  EXPECT_EQ(one.shard_count(), 1u);
}

TEST(SvcCache, ClearDropsEverything) {
  obs::MetricsRegistry m;
  ProcedureCache cache(CacheConfig{}, m);
  for (std::uint64_t i = 0; i < 32; ++i) {
    cache.insert(key(i), proc_of_bytes(64));
  }
  EXPECT_EQ(cache.size(), 32u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.find(key(0)), nullptr);
}

TEST(SvcCache, ApproxBytesChargesEntryMetadata) {
  // Even an empty-tree procedure carries the make_shared control block, the
  // LRU list node (key + shared_ptr + expiry + prev/next), the hash-map
  // node, and allocator headers. The accountant must charge a meaningful
  // fixed floor per entry — 200 bytes is the stated bound the budget test
  // below relies on.
  CachedProcedure empty;
  EXPECT_GE(approx_bytes(empty), 200u);
  // And the tree storage is charged by capacity on top of the floor.
  CachedProcedure with_tree;
  with_tree.tree = tt::Tree(std::vector<tt::TreeNode>(100), 0);
  EXPECT_GE(approx_bytes(with_tree),
            approx_bytes(empty) + 100 * sizeof(tt::TreeNode));
}

TEST(SvcCache, ManySmallEntriesRespectByteBudget) {
  // A flood of tiny entries must stay inside the configured budget via the
  // per-entry metadata charge — with only tree bytes accounted, 10k
  // empty-tree entries would all "fit" a 64 KiB cache while really holding
  // several MiB of nodes and map/list overhead.
  obs::MetricsRegistry m;
  CacheConfig cfg;
  cfg.capacity_bytes = std::size_t{64} << 10;
  cfg.shards = 1;
  ProcedureCache cache(cfg, m);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    auto p = std::make_shared<CachedProcedure>();
    p->cost = 1.0;
    p->bytes = approx_bytes(*p);  // what the scheduler does on insert
    cache.insert(key(i), std::move(p));
  }
  EXPECT_LE(cache.bytes(), cfg.capacity_bytes);
  // The stated bound: >= 200 accounted bytes per entry, so at most
  // capacity/200 entries survive.
  EXPECT_LE(cache.size(), cfg.capacity_bytes / 200);
  EXPECT_GT(m.get("svc.cache.evictions"), 0u);
}

TEST(SvcCache, EvictedEntryStaysAliveForHolders) {
  obs::MetricsRegistry m;
  CacheConfig cfg;
  cfg.capacity_bytes = 100;
  cfg.shards = 1;
  ProcedureCache cache(cfg, m);
  cache.insert(key(1), proc_of_bytes(80, 7.0));
  const auto held = cache.find(key(1));
  cache.insert(key(2), proc_of_bytes(80));  // evicts key 1
  EXPECT_EQ(cache.find(key(1)), nullptr);
  ASSERT_NE(held, nullptr);  // shared_ptr keeps the evicted entry alive
  EXPECT_EQ(held->cost, 7.0);
}

}  // namespace
}  // namespace ttp::svc
