// High-assurance configuration matrix for the BVM TT solver: every
// combination of layer-control mode, lateral realization, and ID source,
// across problem shapes that exercise a<r, a==r and a>r machine layouts —
// each must match the sequential DP exactly on integer instances.
#include <gtest/gtest.h>

#include <tuple>

#include "bvm/microcode/arith.hpp"
#include "tt/generator.hpp"
#include "tt/solver_bvm.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

using Config = std::tuple<int /*k*/, int /*actions*/, int /*p*/,
                          bool /*pipelined*/, bool /*popcount layer*/,
                          bool /*host ids*/>;

class BvmMatrix : public ::testing::TestWithParam<Config> {};

TEST_P(BvmMatrix, MatchesSequentialExactly) {
  const auto [k, actions, p, pipelined, popcount, host_ids] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(k * 131 + actions * 17 + p));
  RandomOptions ropt;
  ropt.num_tests = actions / 2;
  ropt.num_treatments = actions - actions / 2;
  ropt.integer_costs = true;
  ropt.integer_weights = true;
  ropt.max_cost = 3.0;
  const Instance ins = random_instance(k, ropt, rng);

  BvmSolverOptions opt;
  opt.format = util::Fixed::Format{p, 0};
  opt.pipelined_laterals = pipelined;
  opt.layer_mode =
      popcount ? bvm::LayerMode::kPopcount : bvm::LayerMode::kPropagation;
  opt.on_machine_ids = !host_ids;

  const auto bvm = BvmSolver(opt).solve(ins);
  const auto seq = SequentialSolver().solve(ins);
  EXPECT_EQ(max_table_diff(bvm.table, seq.table), 0.0)
      << "k=" << k << " N=" << ins.num_actions() << " p=" << p
      << " pipelined=" << pipelined << " popcount=" << popcount
      << " host_ids=" << host_ids;
  EXPECT_EQ(bvm.table.best_action, seq.table.best_action);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BvmMatrix,
    ::testing::Values(
        // a > r layouts (many actions, small k).
        Config{2, 14, 16, false, false, false},
        Config{2, 14, 16, true, false, false},
        Config{3, 12, 20, true, true, true},
        // a == r-ish layouts.
        Config{4, 8, 16, false, true, false},
        Config{4, 8, 16, true, false, true},
        Config{5, 6, 18, true, true, false},
        // a < r layouts (few actions, larger k -> in-cycle e-dims exist).
        Config{6, 3, 14, false, false, false},
        Config{6, 3, 14, true, true, false},
        Config{7, 4, 16, true, false, false},
        Config{8, 4, 12, true, true, true},
        // precision extremes (p = 26 is the most that fits the 256-row
        // register file alongside the wave workspace at this shape)
        Config{4, 6, 8, true, false, false},
        Config{4, 6, 26, true, false, false}),
    [](const ::testing::TestParamInfo<Config>& info) {
      // NOTE: no structured bindings here — their commas are not protected
      // from the INSTANTIATE macro's argument splitting.
      return "k" + std::to_string(std::get<0>(info.param)) + "a" +
             std::to_string(std::get<1>(info.param)) + "p" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "_wave" : "_laps") +
             (std::get<4>(info.param) ? "_pop" : "_prop") +
             (std::get<5>(info.param) ? "_dma" : "_gen");
    });

TEST(BvmArithExtra, SubSatMonus) {
  bvm::Machine m(bvm::BvmConfig{2, 3});
  const int p = 9;
  const bvm::Field x{0, p}, y{p, p}, z{2 * p, p};
  util::Rng rng(3);
  std::vector<std::uint64_t> xv(m.num_pes()), yv(m.num_pes());
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    xv[pe] = rng.uniform(0, bvm::field_inf(p));
    yv[pe] = rng.uniform(0, bvm::field_inf(p));
    m.poke_value(x.base, p, pe, xv[pe]);
    m.poke_value(y.base, p, pe, yv[pe]);
  }
  sub_sat(m, z, x, y, 40);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    const std::uint64_t expect = xv[pe] >= yv[pe] ? xv[pe] - yv[pe] : 0;
    ASSERT_EQ(m.peek_value(z.base, p, pe), expect)
        << pe << ": " << xv[pe] << " - " << yv[pe];
  }
}

TEST(BvmArithExtra, SubSatAliasing) {
  bvm::Machine m(bvm::BvmConfig{1, 2});
  const bvm::Field x{0, 6}, y{6, 6};
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke_value(x.base, 6, pe, 40 + pe);
    m.poke_value(y.base, 6, pe, 2 * pe);
  }
  sub_sat(m, x, x, y, 20);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    ASSERT_EQ(m.peek_value(x.base, 6, pe), 40 + pe - 2 * pe);
  }
}

TEST(BvmArithExtra, MinMaxFields) {
  bvm::Machine m(bvm::BvmConfig{2, 2});
  const bvm::Field x{0, 8}, y{8, 8}, z{16, 8};
  util::Rng rng(4);
  std::vector<std::uint64_t> xv(m.num_pes()), yv(m.num_pes());
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    xv[pe] = rng.uniform(0, 255);
    yv[pe] = rng.uniform(0, 255);
    m.poke_value(x.base, 8, pe, xv[pe]);
    m.poke_value(y.base, 8, pe, yv[pe]);
  }
  min_field(m, z, x, y, 30);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    ASSERT_EQ(m.peek_value(z.base, 8, pe), std::min(xv[pe], yv[pe])) << pe;
  }
  max_field(m, z, x, y, 30);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    ASSERT_EQ(m.peek_value(z.base, 8, pe), std::max(xv[pe], yv[pe])) << pe;
  }
}

TEST(BvmArithExtra, AbsDiff) {
  bvm::Machine m(bvm::BvmConfig{2, 2});
  const bvm::Field x{0, 8}, y{8, 8}, z{16, 8}, s{24, 8};
  util::Rng rng(5);
  std::vector<std::uint64_t> xv(m.num_pes()), yv(m.num_pes());
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    xv[pe] = rng.uniform(0, 255);
    yv[pe] = rng.uniform(0, 255);
    m.poke_value(x.base, 8, pe, xv[pe]);
    m.poke_value(y.base, 8, pe, yv[pe]);
  }
  abs_diff(m, z, x, y, s, 40);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    const auto expect = xv[pe] > yv[pe] ? xv[pe] - yv[pe] : yv[pe] - xv[pe];
    ASSERT_EQ(m.peek_value(z.base, 8, pe), expect)
        << pe << ": |" << xv[pe] << " - " << yv[pe] << "|";
  }
}

TEST(BvmArithExtra, FieldShifts) {
  bvm::Machine m(bvm::BvmConfig{1, 2});
  const bvm::Field v{0, 10};
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke_value(v.base, 10, pe, 0x155 + pe);
  }
  shift_left_field(m, v, 3);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    ASSERT_EQ(m.peek_value(v.base, 10, pe), ((0x155 + pe) << 3) & 0x3FF);
  }
  shift_right_field(m, v, 5);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    ASSERT_EQ(m.peek_value(v.base, 10, pe),
              (((0x155 + pe) << 3) & 0x3FF) >> 5);
  }
  // Degenerate amounts.
  shift_left_field(m, v, 0);
  const auto before = m.instr_count();
  shift_right_field(m, v, 0);
  EXPECT_EQ(m.instr_count(), before);
}

}  // namespace
}  // namespace ttp::tt
