// ttp_serve wire protocol, driven through serve_session over stringstreams —
// the exact code path the stdio and TCP daemons run, minus the transport.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "svc/service.hpp"
#include "svc/wire.hpp"
#include "tt/generator.hpp"
#include "tt/serialize.hpp"
#include "tt/solver_sequential.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace ttp::svc {
namespace {

using tt::Instance;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

std::string session(Service& svc, const std::string& input,
                    std::size_t* handled = nullptr) {
  std::istringstream in(input);
  std::ostringstream out;
  const std::size_t n = serve_session(svc, in, out);
  if (handled != nullptr) *handled = n;
  return out.str();
}

std::string solve_frame(const Instance& ins) {
  return "SOLVE\n" + tt::to_text(ins) + "END\n";
}

TEST(SvcWire, TreeWireRoundTripsSolvedTrees) {
  util::Rng rng(5);
  tt::RandomOptions opt;
  opt.num_tests = 4;
  opt.num_treatments = 4;
  for (int trial = 0; trial < 6; ++trial) {
    const Instance ins = tt::random_instance(5, opt, rng);
    const tt::Tree tree = tt::SequentialSolver().solve(ins).tree;
    const tt::Tree back = tree_from_wire(tree_to_wire(tree));
    ASSERT_EQ(back.size(), tree.size());
    EXPECT_EQ(back.root(), tree.root());
    for (int i = 0; i < tree.size(); ++i) {
      EXPECT_EQ(back.node(i).action, tree.node(i).action) << i;
      EXPECT_EQ(back.node(i).yes, tree.node(i).yes) << i;
      EXPECT_EQ(back.node(i).no, tree.node(i).no) << i;
      EXPECT_EQ(back.node(i).state, tree.node(i).state) << i;
    }
  }
  // Empty tree round-trips too.
  EXPECT_EQ(tree_from_wire(tree_to_wire(tt::Tree())).size(), 0);
}

TEST(SvcWire, TreeFromWireRejectsMalformedInput) {
  EXPECT_THROW(tree_from_wire(""), std::invalid_argument);
  EXPECT_THROW(tree_from_wire("bush 0\n"), std::invalid_argument);
  EXPECT_THROW(tree_from_wire("tree 0\n"), std::invalid_argument);  // no nodes
  EXPECT_THROW(tree_from_wire("tree 0\nnode 1 0 -1 -1 {0}\n"),
               std::invalid_argument);  // indices must ascend from 0
  EXPECT_THROW(tree_from_wire("tree 0\nnode 0 0 -1 -1 [0]\n"),
               std::invalid_argument);  // bad state-set syntax
}

TEST(SvcWire, SolveRepliesWithTreeAndCacheStatus) {
  Service svc;
  const Instance ins = tt::fig1_example();
  const double optimum = tt::SequentialSolver().solve(ins).cost;

  const std::string reply = session(svc, solve_frame(ins) + solve_frame(ins));
  const auto lines = lines_of(reply);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines.front().rfind("OK cache=miss cost=", 0), 0u) << lines.front();

  // Both replies parse: OK header, tree payload, END.
  std::size_t ok_count = 0;
  std::string current;
  std::vector<std::string> payloads;
  for (const std::string& line : lines) {
    if (line.rfind("OK cache=", 0) == 0) {
      ++ok_count;
      current.clear();
    } else if (line == "END") {
      payloads.push_back(current);
    } else {
      current += line + "\n";
    }
  }
  ASSERT_EQ(ok_count, 2u) << reply;
  ASSERT_EQ(payloads.size(), 2u);
  // Second identical SOLVE is served from cache and carries the same tree.
  EXPECT_NE(reply.find("OK cache=hit"), std::string::npos) << reply;
  EXPECT_EQ(payloads[0], payloads[1]);

  const tt::Tree tree = tree_from_wire(payloads[0]);
  EXPECT_GT(tree.size(), 0);
  // The header cost round-trips to the direct optimum.
  const std::string& head = lines.front();
  const std::size_t cost_at = head.find("cost=") + 5;
  EXPECT_NEAR(std::stod(head.substr(cost_at)), optimum, 1e-9);
}

TEST(SvcWire, StatsPingQuitAndCommandCount) {
  Service svc;
  std::size_t handled = 0;
  // Solve once first so the lazily created counters exist in the dump.
  const std::string reply = session(
      svc, solve_frame(tt::fig1_example()) + "PING\nSTATS\nQUIT\nPING\n",
      &handled);
  EXPECT_EQ(handled, 4u) << "QUIT must end the session before the 2nd PING";
  EXPECT_NE(reply.find("PONG\nSTATS\n"), std::string::npos) << reply;
  EXPECT_NE(reply.find("svc.requests"), std::string::npos);
  EXPECT_NE(reply.find("END\nBYE\n"), std::string::npos) << reply;
}

TEST(SvcWire, CrlfClientsAreTolerated) {
  Service svc;
  const std::string reply = session(svc, "PING\r\nQUIT\r\n");
  EXPECT_EQ(reply, "PONG\nBYE\n");
}

TEST(SvcWire, ProtocolErrorsAreRepliesNotExceptions) {
  Service svc;
  // Unknown command.
  EXPECT_EQ(session(svc, "FROBNICATE\n").rfind("ERR bad-request", 0), 0u);
  // SOLVE frame without END (EOF mid-frame).
  EXPECT_EQ(session(svc, "SOLVE\ntt 2\n").rfind("ERR bad-request", 0), 0u);
  // Malformed instance text inside a complete frame.
  const std::string reply = session(svc, "SOLVE\nnot an instance\nEND\n");
  EXPECT_EQ(reply.rfind("ERR bad-request", 0), 0u) << reply;
  // The daemon keeps serving after an error.
  EXPECT_NE(session(svc, "JUNK\nPING\n").find("PONG"), std::string::npos);
}

TEST(SvcWire, OversizeInstanceGetsTypedErrCode) {
  ServiceConfig cfg;
  cfg.scheduler.max_k = 3;
  cfg.scheduler.max_sparse_k = 0;  // dense-only: oversize must reject
  Service svc(cfg);
  const std::string reply = session(svc, solve_frame(tt::fig1_example()));
  EXPECT_EQ(reply.rfind("ERR oversize", 0), 0u) << reply;
}

TEST(SvcWire, TreeFromWireRejectsHostileValues) {
  // Bit indices outside [0, 32) would be UB shifts on the 32-bit Mask; the
  // parser must reject them before util::bit ever sees them.
  EXPECT_THROW(tree_from_wire("tree 0\nnode 0 0 -1 -1 {32}\n"),
               std::invalid_argument);
  EXPECT_THROW(tree_from_wire("tree 0\nnode 0 0 -1 -1 {-1}\n"),
               std::invalid_argument);
  // std::stoi throws on out-of-int values; that must surface as the typed
  // parse error, not escape the session loop.
  EXPECT_THROW(tree_from_wire("tree 0\nnode 0 0 -1 -1 {99999999999999}\n"),
               std::invalid_argument);
  EXPECT_THROW(tree_from_wire("tree 0\nnode 0 0 -1 -1 {3x}\n"),
               std::invalid_argument);  // trailing garbage in a bit index
  // Action/arc/root references are range-checked.
  EXPECT_THROW(tree_from_wire("tree 0\nnode 0 -2 -1 -1 {0}\n"),
               std::invalid_argument);  // action below -1
  EXPECT_THROW(tree_from_wire("tree 0\nnode 0 0 7 -1 {0}\n"),
               std::invalid_argument);  // yes arc outside [-1, size)
  EXPECT_THROW(tree_from_wire("tree 0\nnode 0 0 -1 -9 {0}\n"),
               std::invalid_argument);  // no arc outside [-1, size)
  EXPECT_THROW(tree_from_wire("tree 5\nnode 0 0 -1 -1 {0}\n"),
               std::invalid_argument);  // root outside [0, size)
  EXPECT_THROW(tree_from_wire("tree -1\nnode 0 0 -1 -1 {0}\n"),
               std::invalid_argument);
  // The guards reject, they don't truncate: a maximal valid tree parses.
  const tt::Tree ok = tree_from_wire("tree 0\nnode 0 3 1 -1 {0,31}\nnode 1 0 -1 -1 {5}\n");
  EXPECT_EQ(ok.size(), 2);
  EXPECT_EQ(ok.node(0).state, (util::bit(0) | util::bit(31)));
}

TEST(SvcWire, OversizeFrameIsRefusedEarlyAndSessionStaysInSync) {
  Service svc;
  SessionOptions opts;
  opts.max_frame_bytes = 64;
  std::string body(256, 'x');
  std::istringstream in("SOLVE\n" + body + "\nEND\nPING\nQUIT\n");
  std::ostringstream out;
  const SessionResult result = serve_session(svc, in, out, opts);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u) << out.str();
  EXPECT_EQ(lines[0].rfind("ERR oversize", 0), 0u) << lines[0];
  EXPECT_NE(lines[0].find("max-frame-bytes=64"), std::string::npos);
  // The frame was discarded up to END: the following commands still ran.
  EXPECT_EQ(lines[1], "PONG");
  EXPECT_EQ(lines[2], "BYE");
  EXPECT_EQ(result.end, SessionEnd::kQuit);
}

TEST(SvcWire, ErrMessagesStayOnOneLine) {
  Service svc;
  // from_text errors carry line numbers; whatever the message, the ERR reply
  // must remain newline-framed (exactly one line).
  const std::string reply =
      session(svc, "SOLVE\ntt 2\nweights 1\nEND\n");
  const auto lines = lines_of(reply);
  ASSERT_EQ(lines.size(), 1u) << reply;
  EXPECT_EQ(lines[0].rfind("ERR bad-request", 0), 0u);
}

}  // namespace
}  // namespace ttp::svc
