// BVM ISA semantics: routing, truth tables, dual assignment, activation
// sets, enable gating, I-chain. Every routing mode is checked against a
// naive per-PE topology computation.
#include <gtest/gtest.h>

#include <sstream>
#include "bvm/machine.hpp"

namespace ttp::bvm {
namespace {

// Naive reference for neighbor addresses.
std::size_t ref_neighbor(const BvmConfig& cfg, std::size_t pe, Nbr n) {
  const std::size_t Q = static_cast<std::size_t>(cfg.Q());
  const std::size_t c = pe / Q;
  const std::size_t p = pe % Q;
  switch (n) {
    case Nbr::S:
      return c * Q + (p + 1) % Q;
    case Nbr::P:
      return c * Q + (p + Q - 1) % Q;
    case Nbr::XS:
      return c * Q + (p ^ 1);
    case Nbr::XP:
      return c * Q + (p % 2 == 0 ? (p + Q - 1) % Q : (p + 1) % Q);
    case Nbr::L:
      if (p < static_cast<std::size_t>(cfg.h)) {
        return (c ^ (std::size_t{1} << p)) * Q + p;
      }
      return pe;  // no link: defined to read self
    default:
      return pe;
  }
}

void fill_pattern(Machine& m, Reg reg, std::uint64_t seed) {
  BitVec& row = m.row(reg);
  for (std::size_t i = 0; i < m.num_pes(); ++i) {
    row.set(i, ((i * 2654435761u + seed) >> 3) & 1u);
  }
}

class Routing : public ::testing::TestWithParam<BvmConfig> {};

TEST_P(Routing, AllNeighborsMatchTopology) {
  Machine m(GetParam());
  fill_pattern(m, Reg::R(0), 12345);
  for (Nbr n : {Nbr::S, Nbr::P, Nbr::XS, Nbr::XP, Nbr::L}) {
    m.exec(mov(Reg::R(1), Reg::R(0), n));
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      const std::size_t src = ref_neighbor(m.config(), pe, n);
      ASSERT_EQ(m.peek(Reg::R(1), pe), m.peek(Reg::R(0), src))
          << "nbr " << static_cast<int>(n) << " PE " << pe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Routing,
    ::testing::Values(BvmConfig{1, 1}, BvmConfig{1, 2}, BvmConfig{2, 3},
                      BvmConfig::complete(2), BvmConfig{3, 5},
                      BvmConfig::complete(3), BvmConfig{4, 6}),
    [](const ::testing::TestParamInfo<BvmConfig>& info) {
      return "r" + std::to_string(info.param.r) + "h" +
             std::to_string(info.param.h);
    });

TEST(Machine, TruthTablesExhaustive) {
  // For every f truth table value on a tiny machine, compare against direct
  // evaluation. g fixed to keep B.
  Machine m(BvmConfig{1, 1});  // 4 PEs
  // Four PEs enumerate all (F, D) combos; B varies by a second pass.
  for (int bval = 0; bval <= 1; ++bval) {
    for (int tt = 0; tt < 256; ++tt) {
      m.row(Reg::R(0)) = BitVec(4);
      m.row(Reg::R(1)) = BitVec(4);
      for (std::size_t pe = 0; pe < 4; ++pe) {
        m.row(Reg::R(0)).set(pe, pe & 1);
        m.row(Reg::R(1)).set(pe, pe & 2);
      }
      Instr setb;
      setb.dest = Reg::R(5);
      setb.f = kTtZero;
      setb.g = bval ? kTtOne : kTtZero;
      m.exec(setb);
      Instr in;
      in.dest = Reg::R(2);
      in.f = static_cast<std::uint8_t>(tt);
      in.g = kTtB;
      in.src_f = Reg::R(0);
      in.src_d = Reg::R(1);
      m.exec(in);
      for (std::size_t pe = 0; pe < 4; ++pe) {
        const int idx = static_cast<int>(pe & 1) + 2 * ((pe >> 1) & 1) +
                        4 * bval;
        ASSERT_EQ(m.peek(Reg::R(2), pe), ((tt >> idx) & 1) != 0)
            << "tt=" << tt << " pe=" << pe << " b=" << bval;
      }
    }
  }
}

TEST(Machine, DualAssignmentWritesBothTargets) {
  Machine m(BvmConfig{2, 2});
  fill_pattern(m, Reg::R(0), 1);
  fill_pattern(m, Reg::R(1), 2);
  Instr in;
  in.dest = Reg::R(2);
  in.f = kTtAndFD;
  in.g = kTtOrFD;
  in.src_f = Reg::R(0);
  in.src_d = Reg::R(1);
  m.exec(in);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    const bool f = m.peek(Reg::R(0), pe);
    const bool d = m.peek(Reg::R(1), pe);
    EXPECT_EQ(m.peek(Reg::R(2), pe), f && d);
    EXPECT_EQ(m.peek(Reg::MakeB(), pe), f || d);
  }
}

TEST(Machine, ActivationIfNfMasksByPosition) {
  Machine m(BvmConfig::complete(2));  // Q=4
  Instr set1 = setv(Reg::R(0), true);
  set1.act = Act::If;
  set1.act_set = 0b0101;  // positions 0 and 2
  m.exec(set1);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    const int pos = m.pos_of(pe);
    EXPECT_EQ(m.peek(Reg::R(0), pe), pos == 0 || pos == 2);
  }
  Instr set2 = setv(Reg::R(0), true);
  set2.act = Act::Nf;
  set2.act_set = 0b0101;
  m.exec(set2);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_TRUE(m.peek(Reg::R(0), pe));
  }
}

TEST(Machine, EnableRegisterGatesWritesButNotItself) {
  Machine m(BvmConfig{2, 2});
  // Disable odd PEs.
  Instr dis = setv(Reg::MakeE(), false);
  dis.act = Act::If;
  dis.act_set = 0b1010;
  m.exec(dis);
  m.exec(setv(Reg::R(0), true));
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(m.peek(Reg::R(0), pe), m.pos_of(pe) % 2 == 0) << pe;
  }
  // B is gated too.
  Instr bset;
  bset.dest = Reg::R(1);
  bset.f = kTtZero;
  bset.g = kTtOne;
  m.exec(bset);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(m.peek(Reg::MakeB(), pe), m.pos_of(pe) % 2 == 0) << pe;
  }
  // Writes to E itself ignore the gate: re-enable everyone.
  m.exec(setv(Reg::MakeE(), true));
  m.exec(setv(Reg::R(0), true));
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_TRUE(m.peek(Reg::R(0), pe));
  }
}

TEST(Machine, IChainShiftsGlobally) {
  Machine m(BvmConfig{1, 2});  // 8 PEs
  // Load a recognizable pattern via pokes, shift once.
  for (std::size_t pe = 0; pe < 8; ++pe) {
    m.poke(Reg::R(0), pe, pe == 3 || pe == 7);
  }
  m.push_input(true);
  m.exec(mov(Reg::R(0), Reg::R(0), Nbr::I));
  EXPECT_TRUE(m.peek(Reg::R(0), 0));   // input bit
  EXPECT_TRUE(m.peek(Reg::R(0), 4));   // old PE 3
  EXPECT_FALSE(m.peek(Reg::R(0), 3));
  ASSERT_EQ(m.output().size(), 1u);
  EXPECT_TRUE(m.output()[0]);  // old PE 7 left the machine
}

TEST(Machine, RejectsIllegalOperands) {
  Machine m(BvmConfig{1, 1});
  Instr bad;
  bad.dest = Reg::MakeB();
  EXPECT_THROW(m.exec(bad), std::invalid_argument);
  Instr bad2;
  bad2.src_f = Reg::MakeB();
  EXPECT_THROW(m.exec(bad2), std::invalid_argument);
  Instr bad3;
  bad3.src_d = Reg::MakeE();
  EXPECT_THROW(m.exec(bad3), std::invalid_argument);
  Instr bad4;
  bad4.dest = Reg::R(9999);
  EXPECT_THROW(m.exec(bad4), std::out_of_range);
}

TEST(Machine, InstrCountAdvances) {
  Machine m(BvmConfig{1, 1});
  EXPECT_EQ(m.instr_count(), 0u);
  m.exec(setv(Reg::R(0), true));
  m.exec(setv(Reg::R(1), false));
  EXPECT_EQ(m.instr_count(), 2u);
  m.reset_instr_count();
  EXPECT_EQ(m.instr_count(), 0u);
}

TEST(Machine, TraceStreamsDisassembly) {
  Machine m(BvmConfig{1, 1});
  std::ostringstream trace;
  m.set_trace(&trace);
  m.exec(setv(Reg::R(3), true));
  m.exec(mov(Reg::MakeA(), Reg::R(3), Nbr::S));
  m.set_trace(nullptr);
  m.exec(setv(Reg::R(4), false));
  const std::string out = trace.str();
  EXPECT_NE(out.find("1: R[3],B"), std::string::npos);
  EXPECT_NE(out.find("R[3].S"), std::string::npos);
  EXPECT_EQ(out.find("R[4]"), std::string::npos);  // disabled before
}

TEST(Machine, DumpRowRendersBits) {
  Machine m(BvmConfig{1, 1});  // 4 PEs
  m.poke(Reg::R(0), 1, true);
  m.poke(Reg::R(0), 3, true);
  EXPECT_EQ(m.dump_row(Reg::R(0)), "0101");
}

TEST(Machine, PokePeekValueRoundTrip) {
  Machine m(BvmConfig{2, 2});
  m.poke_value(10, 8, 5, 0xA7);
  EXPECT_EQ(m.peek_value(10, 8, 5), 0xA7u);
  EXPECT_EQ(m.peek_value(10, 8, 4), 0u);
}

}  // namespace
}  // namespace ttp::bvm
