// util layer: fixed-point, RNG determinism, thread pool, table formatting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include "util/fixed.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace ttp::util {
namespace {

TEST(Fixed, EncodingRoundTrip) {
  const Fixed::Format fmt{16, 4};
  for (double v : {0.0, 1.0, 2.5, 100.0, 4095.9}) {
    const Fixed f = Fixed::from_double(fmt, v);
    EXPECT_NEAR(f.to_double(), v, 1.0 / fmt.scale() / 2 + 1e-12) << v;
  }
}

TEST(Fixed, InfHandling) {
  const Fixed::Format fmt{12, 0};
  const Fixed inf = Fixed::inf(fmt);
  EXPECT_TRUE(inf.is_inf());
  EXPECT_TRUE(std::isinf(inf.to_double()));
  EXPECT_TRUE(Fixed::from_double(fmt, 1e18).is_inf());  // saturates
  EXPECT_TRUE(
      Fixed::from_double(fmt, std::numeric_limits<double>::infinity())
          .is_inf());
  EXPECT_EQ(inf.to_string(), "INF");
}

TEST(Fixed, SaturatingAddIsAbsorbing) {
  const Fixed::Format fmt{10, 0};
  const Fixed big(fmt, 1000);
  const Fixed one(fmt, 1);
  EXPECT_TRUE((big + big).is_inf());
  EXPECT_TRUE((Fixed::inf(fmt) + one).is_inf());
  EXPECT_EQ((one + one).raw(), 2u);
}

TEST(Fixed, ScaledBySaturates) {
  const Fixed::Format fmt{10, 0};
  const Fixed x(fmt, 100);
  EXPECT_EQ(x.scaled_by(2.0).raw(), 200u);
  EXPECT_TRUE(x.scaled_by(1e9).is_inf());
  EXPECT_TRUE(Fixed::inf(fmt).scaled_by(0.0).is_inf());  // INF stays INF
}

TEST(Fixed, RejectsNegative) {
  EXPECT_THROW(Fixed::from_double({8, 0}, -1.0), std::invalid_argument);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform(5, 11);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 11u);
  }
  for (int i = 0; i < 2000; ++i) {
    const double d = rng.uniform_real(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, SubsetsRespectSpace) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const Mask s = rng.subset(0b1010);
    EXPECT_EQ(s & ~0b1010u, 0u);
    const Mask ns = rng.nonempty_subset(0b1010);
    EXPECT_NE(ns, 0u);
    EXPECT_EQ(ns & ~0b1010u, 0u);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  auto v2 = v;
  std::sort(v2.begin(), v2.end());
  EXPECT_EQ(v2, sorted);
}

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesSmallAndEmptyRanges) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(0, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(3, [&](std::size_t b, std::size_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
      total.fetch_add(e - b);
    });
  }
  EXPECT_EQ(total.load(), 64u * 50);
}

TEST(Table, AlignsAndValidates) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "222"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| longer-name | 222"), std::string::npos);
  // All lines equally wide.
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(1.5, 3), "1.5");
  EXPECT_EQ(Table::num(std::int64_t{-7}), "-7");
}

}  // namespace
}  // namespace ttp::util
