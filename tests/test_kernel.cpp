// The layer-wave kernel (tt/kernel.*): SoA layout, layer index, tiled
// evaluation, arena reuse, and the batched entry point. The central check
// is byte-identity against `legacy_solve`, a faithful replica of the
// pre-kernel SequentialSolver inner loop (per-call action_value dispatch),
// so the kernel can never drift from the reference semantics unnoticed.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tt/generator.hpp"
#include "tt/kernel.hpp"
#include "tt/solver_batch.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/solver_threads.hpp"
#include "tt/validate.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

/// The pre-kernel SequentialSolver, verbatim: layered sweep, per-call
/// action_value, strict `<` lowest-index ties.
DpTable legacy_solve(const Instance& ins) {
  const int k = ins.k();
  const int N = ins.num_actions();
  const std::size_t states = std::size_t{1} << k;
  const std::vector<double>& wt = ins.subset_weight_table();
  DpTable table;
  table.k = k;
  table.cost.assign(states, kInf);
  table.best_action.assign(states, -1);
  table.cost[0] = 0.0;
  for (int j = 1; j <= k; ++j) {
    for (Mask s : util::layer_subsets(k, j)) {
      double best = kInf;
      int arg = -1;
      for (int i = 0; i < N; ++i) {
        const double v = action_value(ins, table.cost, wt, s, i);
        if (v < best) {
          best = v;
          arg = i;
        }
      }
      table.cost[s] = best;
      table.best_action[s] = arg;
    }
  }
  return table;
}

Instance random_for(int seed, int k) {
  util::Rng rng(static_cast<std::uint64_t>(seed) * 1013 + 7);
  RandomOptions opt;
  opt.num_tests = 3 + seed % 4;
  opt.num_treatments = 3 + seed % 3;
  return random_instance(k, opt, rng);
}

TEST(ActionSoA, MirrorsInstanceActions) {
  const Instance ins = fig1_example();
  ActionSoA soa;
  soa.build(ins);
  ASSERT_EQ(soa.num_actions, ins.num_actions());
  EXPECT_EQ(soa.num_tests, ins.num_tests());
  for (int i = 0; i < ins.num_actions(); ++i) {
    const auto ui = static_cast<std::size_t>(i);
    EXPECT_EQ(soa.set[ui], ins.action(i).set) << i;
    EXPECT_EQ(soa.nset[ui], static_cast<Mask>(~ins.action(i).set)) << i;
    EXPECT_EQ(soa.cost[ui], ins.action(i).cost) << i;
    EXPECT_EQ(soa.is_test[ui] != 0, ins.action(i).is_test) << i;
    EXPECT_EQ(soa.is_test[ui] != 0, i < soa.num_tests) << i;
  }
}

TEST(LayerIndex, MatchesLayerSubsetsForAllK) {
  LayerIndex idx;
  for (int k = 1; k <= 10; ++k) {
    idx.build(k);
    EXPECT_EQ(idx.k(), k);
    for (int j = 0; j <= k; ++j) {
      const auto expect = util::layer_subsets(k, j);
      const auto got = idx.layer(j);
      ASSERT_EQ(got.size(), expect.size()) << "k=" << k << " j=" << j;
      for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(got[i], expect[i]) << "k=" << k << " j=" << j;
      }
    }
  }
}

TEST(Kernel, EvalStatesByteIdenticalToLegacyLoop) {
  for (int seed = 0; seed < 12; ++seed) {
    const int k = 4 + seed % 5;  // 4..8
    const Instance ins = random_for(seed, k);
    const DpTable legacy = legacy_solve(ins);
    const auto res = SequentialSolver().solve(ins);
    ASSERT_EQ(res.table.cost.size(), legacy.cost.size()) << seed;
    for (std::size_t s = 0; s < legacy.cost.size(); ++s) {
      // EXPECT_EQ, not NEAR: byte-identical is the contract.
      EXPECT_EQ(res.table.cost[s], legacy.cost[s]) << "seed " << seed;
      EXPECT_EQ(res.table.best_action[s], legacy.best_action[s])
          << "seed " << seed << " state " << s;
    }
  }
}

TEST(Kernel, TileBoundariesDoNotChangeResults) {
  // A layer larger than one tile (k = 10 middle layer has C(10,5) = 252
  // states > kKernelTile) must agree with the legacy loop too.
  const Instance ins = random_for(3, 10);
  const DpTable legacy = legacy_solve(ins);
  const auto res = SequentialSolver().solve(ins);
  EXPECT_EQ(res.table.cost, legacy.cost);
  EXPECT_EQ(res.table.best_action, legacy.best_action);
}

TEST(Kernel, PairPhaseMatchesActionValue) {
  const Instance ins = random_for(5, 6);
  const std::vector<double>& wt = ins.subset_weight_table();
  const DpTable legacy = legacy_solve(ins);
  ActionSoA soa;
  soa.build(ins);
  const std::size_t n = static_cast<std::size_t>(ins.num_actions());
  // Evaluate the top layer's pairs against finalized lower layers.
  const auto layer = util::layer_subsets(ins.k(), ins.k());
  std::vector<double> m(layer.size() * n);
  // Split the pair range unevenly to exercise mid-row begin/end.
  eval_pairs(soa, wt.data(), legacy.cost.data(), layer.data(), 0, 3, m.data());
  eval_pairs(soa, wt.data(), legacy.cost.data(), layer.data(), 3, m.size(),
             m.data());
  for (std::size_t idx = 0; idx < m.size(); ++idx) {
    const Mask s = layer[idx / n];
    const int i = static_cast<int>(idx % n);
    EXPECT_EQ(m[idx], action_value(ins, legacy.cost, wt, s, i)) << idx;
  }
  // And the reduce phase reproduces the legacy minimization.
  std::vector<double> cost(legacy.cost);
  std::vector<int> best(legacy.best_action);
  reduce_pairs(soa, m.data(), layer.data(), 0, layer.size(), cost.data(),
               best.data());
  EXPECT_EQ(cost, legacy.cost);
  EXPECT_EQ(best, legacy.best_action);
}

TEST(SolveArena, ReusedAcrossSolvesAndUniverseSizes) {
  SolveArena arena;
  for (int round = 0; round < 3; ++round) {
    for (int k : {4, 6, 5}) {  // deliberately non-monotone k sequence
      const Instance ins = random_for(round * 10 + k, k);
      const DpTable legacy = legacy_solve(ins);
      const auto res = solve_with_arena(ins, arena);
      EXPECT_EQ(res.table.cost, legacy.cost) << "round " << round;
      EXPECT_EQ(res.table.best_action, legacy.best_action)
          << "round " << round;
      EXPECT_EQ(res.breakdown.get("m_evaluations"), res.steps.total_ops);
    }
  }
}

TEST(SolveArena, SequentialCostModelPreserved) {
  const Instance ins = fig1_example();
  const auto res = SequentialSolver().solve(ins);
  const std::uint64_t evals =
      ((std::uint64_t{1} << ins.k()) - 1) *
      static_cast<std::uint64_t>(ins.num_actions());
  EXPECT_EQ(res.steps.total_ops, evals);
  EXPECT_EQ(res.steps.parallel_steps, evals);
  EXPECT_EQ(res.steps.route_steps, 0u);
}

TEST(BatchSolver, MatchesPerInstanceSolvesInOrder) {
  std::vector<Instance> batch;
  for (int seed = 0; seed < 9; ++seed) {
    batch.push_back(random_for(seed, 4 + seed % 4));  // heterogeneous k
  }
  const auto results = BatchSolver(3).solve_many(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const DpTable legacy = legacy_solve(batch[i]);
    EXPECT_EQ(results[i].table.cost, legacy.cost) << i;
    EXPECT_EQ(results[i].table.best_action, legacy.best_action) << i;
    if (!std::isinf(results[i].cost)) {
      const auto rep =
          validate_tree(batch[i], results[i].tree, results[i].cost);
      EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
    }
    EXPECT_EQ(results[i].breakdown.get("m_evaluations"),
              results[i].steps.total_ops)
        << i;
  }
}

TEST(BatchSolver, EmptyAndSingleAndOversubscribed) {
  EXPECT_TRUE(BatchSolver(2).solve_many(std::span<const Instance>{}).empty());

  std::vector<Instance> one{fig1_example()};
  const auto r1 = BatchSolver(4).solve_many(one);  // more workers than items
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0].table.cost, SequentialSolver().solve(one[0]).table.cost);

  std::vector<Instance> many;
  for (int seed = 0; seed < 17; ++seed) {  // more items than workers
    many.push_back(random_for(seed + 100, 5));
  }
  const auto rm = BatchSolver(2).solve_many(many);
  ASSERT_EQ(rm.size(), many.size());
  for (std::size_t i = 0; i < many.size(); ++i) {
    EXPECT_EQ(rm[i].table.cost, legacy_solve(many[i]).cost) << i;
  }
}

TEST(BatchSolver, ThrowsOnMalformedInstanceBeforeDispatch) {
  std::vector<Instance> batch{fig1_example(), Instance(2, {1.0, -1.0})};
  EXPECT_THROW(BatchSolver(2).solve_many(batch), std::invalid_argument);
}

}  // namespace
}  // namespace ttp::tt
