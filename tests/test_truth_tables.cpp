// Spec test for every named truth-table constant: each must equal the
// table generated from its defining Boolean expression. A wrong constant
// here would silently corrupt all microcode, so the check is exhaustive.
#include <gtest/gtest.h>

#include "bvm/instr.hpp"

namespace ttp::bvm {
namespace {

TEST(TruthTables, NamedConstantsMatchDefinitions) {
  EXPECT_EQ(kTtZero, tt3([](bool, bool, bool) { return false; }));
  EXPECT_EQ(kTtOne, tt3([](bool, bool, bool) { return true; }));
  EXPECT_EQ(kTtF, tt3([](bool f, bool, bool) { return f; }));
  EXPECT_EQ(kTtD, tt3([](bool, bool d, bool) { return d; }));
  EXPECT_EQ(kTtB, tt3([](bool, bool, bool b) { return b; }));
  EXPECT_EQ(kTtNotF, tt3([](bool f, bool, bool) { return !f; }));
  EXPECT_EQ(kTtNotD, tt3([](bool, bool d, bool) { return !d; }));
  EXPECT_EQ(kTtNotB, tt3([](bool, bool, bool b) { return !b; }));
  EXPECT_EQ(kTtAndFD, tt3([](bool f, bool d, bool) { return f && d; }));
  EXPECT_EQ(kTtOrFD, tt3([](bool f, bool d, bool) { return f || d; }));
  EXPECT_EQ(kTtXorFD, tt3([](bool f, bool d, bool) { return f != d; }));
  EXPECT_EQ(kTtAndFB, tt3([](bool f, bool, bool b) { return f && b; }));
  EXPECT_EQ(kTtOrFB, tt3([](bool f, bool, bool b) { return f || b; }));
  EXPECT_EQ(kTtXorFB, tt3([](bool f, bool, bool b) { return f != b; }));
  EXPECT_EQ(kTtAndDB, tt3([](bool, bool d, bool b) { return d && b; }));
  EXPECT_EQ(kTtOrDB, tt3([](bool, bool d, bool b) { return d || b; }));
  EXPECT_EQ(kTtXor3,
            tt3([](bool f, bool d, bool b) { return (f != d) != b; }));
  EXPECT_EQ(kTtMaj, tt3([](bool f, bool d, bool b) {
              return (f && d) || (f && b) || (d && b);
            }));
  EXPECT_EQ(kTtMux, tt3([](bool f, bool d, bool b) { return b ? d : f; }));
  EXPECT_EQ(kTtAndFNotD, tt3([](bool f, bool d, bool) { return f && !d; }));
  EXPECT_EQ(kTtAndDNotF, tt3([](bool f, bool d, bool) { return d && !f; }));
  EXPECT_EQ(kTtAndBNotF, tt3([](bool f, bool, bool b) { return b && !f; }));
  EXPECT_EQ(kTtAndFNotB, tt3([](bool f, bool, bool b) { return f && !b; }));
  EXPECT_EQ(kTtOrFDB,
            tt3([](bool f, bool d, bool b) { return f || d || b; }));
  // Borrow of F - D with borrow-in B: out iff (!F && D) || (B && F == D).
  EXPECT_EQ(kTtBorrow, tt3([](bool f, bool d, bool b) {
              return (!f && d) || (b && f == d);
            }));
}

TEST(TruthTables, Tt3IndexingConvention) {
  // Input index = F + 2D + 4B (documented in instr.hpp).
  const std::uint8_t t = tt3([](bool f, bool d, bool b) {
    return f && !d && b;  // minterm F=1,D=0,B=1 -> index 5
  });
  EXPECT_EQ(t, 1u << 5);
}

}  // namespace
}  // namespace ttp::bvm
