// Branch-and-bound solver: exactness against the layered DP, reachability
// savings on structured instances, and pruning sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "tt/generator.hpp"
#include "tt/solver_bnb.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/validate.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

class BnbExact : public ::testing::TestWithParam<int> {};

TEST_P(BnbExact, MatchesSequentialCostOnAllVisitedStates) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Instance ins = [&]() -> Instance {
    switch (GetParam() % 4) {
      case 0:
        return random_instance(5 + GetParam() % 3, RandomOptions{}, rng);
      case 1:
        return medical_instance(6, 5, rng);
      case 2:
        return machine_fault_instance(7, rng);
      default:
        return biology_key_instance(6, rng);
    }
  }();
  const auto seq = SequentialSolver().solve(ins);
  const auto bnb = BnbSolver().solve(ins);
  EXPECT_EQ(bnb.cost, seq.cost);
  // Every state B&B visited carries the exact DP value.
  for (std::size_t s = 0; s < seq.table.cost.size(); ++s) {
    if (bnb.table.best_action[s] >= 0 || bnb.table.cost[s] == 0.0) {
      EXPECT_EQ(bnb.table.cost[s], seq.table.cost[s])
          << util::mask_to_string(static_cast<Mask>(s));
    }
  }
  if (!std::isinf(seq.cost)) {
    const auto rep = validate_tree(ins, bnb.tree, seq.cost);
    EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbExact, ::testing::Range(0, 16));

// Prefix family: tests AND treatments are prefixes {0..i}. Every reachable
// state is then an interval {a..b} — O(k^2) states, far below 2^k. (Any
// instance with singleton treatments reaches every subset from U, so
// sub-exponential reachability needs coarse treatments.)
Instance prefix_chain_instance(int k) {
  Instance ins(k, std::vector<double>(static_cast<std::size_t>(k), 1.0));
  for (int i = 0; i + 1 < k; ++i) {
    ins.add_test(util::universe(i + 1), 1.0, "prefix" + std::to_string(i));
  }
  for (int i = 0; i < k; ++i) {
    ins.add_treatment(util::universe(i + 1), 1.0 + 0.5 * (i + 1),
                      "fixpre" + std::to_string(i));
  }
  return ins;
}

TEST(BnbSolver, VisitsFarFewerStatesOnStructuredInstances) {
  const Instance ins = prefix_chain_instance(12);
  const auto bnb = BnbSolver().solve(ins);
  const auto seq = SequentialSolver().solve(ins);
  EXPECT_EQ(bnb.cost, seq.cost);
  const std::size_t full = std::size_t{1} << ins.k();
  const std::size_t reachable = BnbSolver::count_reachable(ins);
  EXPECT_LT(reachable, full / 8)
      << "structured instances should not need the full state space";
  // And the reachable set is a sound upper bound on visits.
  EXPECT_LE(bnb.breakdown.get("visited_states"), reachable);
}

TEST(BnbSolver, ReachableCountsAreExactForTinyCases) {
  // One test splitting {0,1}|{2}, singleton treatments. From U = {0,1,2}:
  // treat0 -> {1,2}; treat1 -> {0,2}; treat2 -> {0,1}; test -> {0,1},{2}...
  Instance ins(3, {1, 1, 1});
  ins.add_test(0b011, 1.0);
  for (int j = 0; j < 3; ++j) ins.add_treatment(util::bit(j), 1.0);
  const auto n = BnbSolver::count_reachable(ins);
  EXPECT_EQ(n, 8u);  // this instance happens to reach everything
}

TEST(BnbSolver, PrunesSomething) {
  util::Rng rng(5);
  const Instance ins = medical_instance(7, 6, rng);
  const auto bnb = BnbSolver().solve(ins);
  EXPECT_GT(bnb.breakdown.get("pruned_actions"), 0u);
}

TEST(BnbSolver, InfeasibleInstance) {
  Instance ins(2, {1, 1});
  ins.add_test(0b01, 1.0);
  ins.add_treatment(0b01, 1.0);
  const auto bnb = BnbSolver().solve(ins);
  EXPECT_TRUE(std::isinf(bnb.cost));
  EXPECT_TRUE(bnb.tree.empty());
}

TEST(BnbSolver, LargerKThanTheDenseTableWouldLike) {
  // k = 20 prefix chain: the dense DP would sweep 2^20 states x N; the
  // top-down solver's search space is polynomial here.
  const Instance ins = prefix_chain_instance(20);
  const auto bnb = BnbSolver().solve(ins);
  EXPECT_FALSE(std::isinf(bnb.cost));
  EXPECT_LT(bnb.breakdown.get("visited_states"), std::uint64_t{1} << 14);
}

}  // namespace
}  // namespace ttp::tt
