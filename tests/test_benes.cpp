// Benes permutation routing: the looping algorithm's control bits must
// realize ANY permutation, on the hypercube machine, the CCC machine (in
// O(log n) normal runs), and the bit-serial BVM with precalculated rows.
#include <gtest/gtest.h>

#include <numeric>

#include "bvm/microcode/permute.hpp"
#include "net/benes.hpp"
#include "net/ccc.hpp"
#include "net/hypercube.hpp"
#include "util/rng.hpp"

namespace ttp {
namespace {

std::vector<std::size_t> random_perm(std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  util::Rng rng(seed);
  rng.shuffle(p);
  return p;
}

// Applies the program on the hypercube machine and checks the permutation.
template <typename MachineT>
void expect_realizes(MachineT& m, const std::vector<std::size_t>& perm) {
  const net::BenesProgram prog = net::benes_route(perm);
  for (std::size_t i = 0; i < m.size(); ++i) m.at(i).key = 1000 + i;
  net::init_homes(m);
  net::benes_apply(m, prog);
  for (std::size_t i = 0; i < m.size(); ++i) {
    ASSERT_EQ(m.at(perm[i]).key, 1000 + i) << "src " << i;
  }
}

TEST(Benes, RejectsBadInput) {
  EXPECT_THROW(net::benes_route({0, 1, 2}), std::invalid_argument);   // not 2^m
  EXPECT_THROW(net::benes_route({0, 0, 1, 1}), std::invalid_argument);  // dup
  EXPECT_THROW(net::benes_route({0, 1, 2, 9}), std::invalid_argument);  // range
}

TEST(Benes, StageCountIsTwoLogMinusOne) {
  const auto prog = net::benes_route(random_perm(64, 1));
  EXPECT_EQ(prog.num_stages(), 11);  // 2*6 - 1
  EXPECT_EQ(prog.dim_of(0), 0);
  EXPECT_EQ(prog.dim_of(5), 5);
  EXPECT_EQ(prog.dim_of(10), 0);
}

TEST(Benes, ControlBitsArePairReplicated) {
  const auto prog = net::benes_route(random_perm(32, 2));
  for (int s = 0; s < prog.num_stages(); ++s) {
    const std::size_t mask = std::size_t{1} << prog.dim_of(s);
    for (std::size_t pe = 0; pe < 32; ++pe) {
      ASSERT_EQ(prog.stages[static_cast<std::size_t>(s)][pe],
                prog.stages[static_cast<std::size_t>(s)][pe ^ mask])
          << "stage " << s << " pe " << pe;
    }
  }
}

class BenesHypercube : public ::testing::TestWithParam<int> {};

TEST_P(BenesHypercube, RealizesRandomPermutations) {
  const int dims = GetParam();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    net::HypercubeMachine<net::NormalItem> m(dims);
    expect_realizes(m, random_perm(m.size(), seed));
  }
}

TEST_P(BenesHypercube, RealizesStructuredPermutations) {
  const int dims = GetParam();
  const std::size_t n = std::size_t{1} << dims;
  // Identity.
  std::vector<std::size_t> ident(n);
  std::iota(ident.begin(), ident.end(), std::size_t{0});
  {
    net::HypercubeMachine<net::NormalItem> m(dims);
    expect_realizes(m, ident);
  }
  // Reversal.
  std::vector<std::size_t> rev(n);
  for (std::size_t i = 0; i < n; ++i) rev[i] = n - 1 - i;
  {
    net::HypercubeMachine<net::NormalItem> m(dims);
    expect_realizes(m, rev);
  }
  // Rotation by 1 (the worst case for naive dimension routing).
  std::vector<std::size_t> rot(n);
  for (std::size_t i = 0; i < n; ++i) rot[i] = (i + 1) % n;
  {
    net::HypercubeMachine<net::NormalItem> m(dims);
    expect_realizes(m, rot);
  }
  // Perfect shuffle.
  std::vector<std::size_t> shuf(n);
  for (std::size_t i = 0; i < n; ++i) {
    shuf[i] = ((i << 1) | (i >> (dims - 1))) & (n - 1);
  }
  {
    net::HypercubeMachine<net::NormalItem> m(dims);
    expect_realizes(m, shuf);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, BenesHypercube, ::testing::Values(1, 2, 3, 5, 8));

class BenesCcc : public ::testing::TestWithParam<net::CccConfig> {};

TEST_P(BenesCcc, RealizesRandomPermutationsInNormalRuns) {
  net::CccMachine<net::NormalItem> m(GetParam());
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    expect_realizes(m, random_perm(m.size(), 100 + seed));
  }
  // O(log n): both halves are single pipelined runs; total steps bounded
  // by a constant multiple of dims.
  m.reset_steps();
  const auto prog = net::benes_route(random_perm(m.size(), 7));
  net::benes_apply(m, prog);
  EXPECT_LT(m.steps().parallel_steps,
            40u * static_cast<std::uint64_t>(m.dims()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BenesCcc,
    ::testing::Values(net::CccConfig{1, 2}, net::CccConfig{2, 3},
                      net::CccConfig::complete(2), net::CccConfig{3, 5},
                      net::CccConfig::complete(3)),
    [](const ::testing::TestParamInfo<net::CccConfig>& info) {
      return "r" + std::to_string(info.param.r) + "h" +
             std::to_string(info.param.h);
    });

class BenesBvm : public ::testing::TestWithParam<bvm::BvmConfig> {};

TEST_P(BenesBvm, BitSerialPermutationWithPrecalculatedControls) {
  const bvm::BvmConfig cfg = GetParam();
  bvm::Machine m(cfg);
  const int p = 7;
  const bvm::Field v{0, p}, x{p, p};
  const int ctrl_base = 2 * p, tmp = 60;

  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto perm = random_perm(m.num_pes(), 200 + seed);
    const auto prog = net::benes_route(perm);
    bvm::load_benes_controls(m, prog, ctrl_base);
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      m.poke_value(v.base, p, pe, pe % 100);
    }
    bvm::benes_permute(m, prog, ctrl_base, v, x, tmp);
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      ASSERT_EQ(m.peek_value(v.base, p, perm[pe]), pe % 100)
          << "seed " << seed << " src " << pe;
    }
  }
}

TEST_P(BenesBvm, PipelinedMatchesPerDimAndCostsLess) {
  const bvm::BvmConfig cfg = GetParam();
  const int p = 6;
  const bvm::Field v{0, p}, x{p, p};
  const int ctrl_base = 2 * p;
  const int stages = 2 * cfg.dims() - 1;
  const int adopt_scratch = ctrl_base + stages;
  const int cur = adopt_scratch + cfg.h, tmp = cur + 1;

  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto perm = random_perm(
        (std::size_t{1} << cfg.dims()), 300 + seed);
    const auto prog = net::benes_route(perm);
    bvm::Machine a(cfg), b(cfg);
    bvm::load_benes_controls(a, prog, ctrl_base);
    bvm::load_benes_controls(b, prog, ctrl_base);
    for (std::size_t pe = 0; pe < a.num_pes(); ++pe) {
      a.poke_value(v.base, p, pe, pe % 61);
      b.poke_value(v.base, p, pe, pe % 61);
    }
    bvm::benes_permute(a, prog, ctrl_base, v, x, tmp);
    bvm::benes_permute_pipelined(b, prog, ctrl_base, v, x, adopt_scratch,
                                 cur, tmp);
    for (std::size_t pe = 0; pe < a.num_pes(); ++pe) {
      ASSERT_EQ(b.peek_value(v.base, p, pe), a.peek_value(v.base, p, pe))
          << "seed " << seed << " pe " << pe;
      ASSERT_EQ(b.peek_value(v.base, p, perm[pe]), pe % 61);
    }
    if (cfg.h >= 4) {
      EXPECT_LT(b.instr_count(), a.instr_count())
          << "waves must beat per-dimension laps once several laterals "
             "share the rotation";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BenesBvm,
    ::testing::Values(bvm::BvmConfig{1, 1}, bvm::BvmConfig{2, 2},
                      bvm::BvmConfig::complete(2), bvm::BvmConfig{3, 4}),
    [](const ::testing::TestParamInfo<bvm::BvmConfig>& info) {
      return "r" + std::to_string(info.param.r) + "h" +
             std::to_string(info.param.h);
    });

}  // namespace
}  // namespace ttp
