// §4 dataflow algorithms at the hypercube level: broadcasting and the two
// propagation kinds, including regeneration of the paper's Fig. 6 schedule.
#include <gtest/gtest.h>

#include "net/schedule.hpp"

namespace ttp::net {
namespace {

TEST(Broadcast, EveryPeReceivesTheValue) {
  HypercubeMachine<FlowState> m(4);
  m.at(0).value = 0xBEEF;
  broadcast(m, 0);
  for (std::size_t p = 0; p < m.size(); ++p) {
    EXPECT_EQ(m.at(p).value, 0xBEEFu) << p;
    EXPECT_TRUE(m.at(p).sender);
  }
  EXPECT_EQ(m.steps().parallel_steps, 4u);  // one step per dimension
}

TEST(Broadcast, WorksFromAnySource) {
  for (std::size_t src = 0; src < 8; ++src) {
    HypercubeMachine<FlowState> m(3);
    m.at(src).value = 42 + src;
    broadcast(m, src);
    for (std::size_t p = 0; p < m.size(); ++p) {
      EXPECT_EQ(m.at(p).value, 42 + src);
    }
  }
}

TEST(Broadcast, Fig6ScheduleFor16Pes) {
  // The paper's Fig. 6 lists the send events of broadcasting from PE 0 on a
  // 16-PE array: 1 send along dim 0, 2 along dim 1, 4 along dim 2, 8 along
  // dim 3, each sender s sending to s + 2^dim.
  HypercubeMachine<FlowState> m(4);
  m.at(0).value = 1;
  EventLog log;
  broadcast(m, 0, &log);
  ASSERT_EQ(log.size(), 15u);  // every PE but the source receives once
  std::size_t idx = 0;
  for (int d = 0; d < 4; ++d) {
    const std::size_t expected = std::size_t{1} << d;
    std::size_t count = 0;
    for (const auto& e : log) {
      if (e.dim != d) continue;
      ++count;
      EXPECT_LT(e.from, expected * 2);
      EXPECT_EQ(e.to, e.from + expected);
    }
    EXPECT_EQ(count, expected) << "dim " << d;
    idx += count;
  }
  EXPECT_EQ(idx, 15u);

  const std::string rendered = format_events_fig6(log, 4);
  EXPECT_NE(rendered.find("0000 -> 0001"), std::string::npos);
  EXPECT_NE(rendered.find("0111 -> 1111"), std::string::npos);
}

TEST(Propagation1, MovesDataOneLevelUp) {
  // Paper example: N=2, 16 PEs; PE 0111 receives from 0110, 0101, 0011.
  HypercubeMachine<FlowState> m(4);
  for (std::size_t p = 0; p < m.size(); ++p) {
    if (util::popcount(static_cast<util::Mask>(p)) == 2) {
      m.at(p).sender = true;
      m.at(p).value = std::uint64_t{1} << p;  // unique token per sender
    }
  }
  propagation1_round(m);
  const std::size_t target = 0b0111;
  const std::uint64_t expect = (std::uint64_t{1} << 0b0110) |
                               (std::uint64_t{1} << 0b0101) |
                               (std::uint64_t{1} << 0b0011);
  EXPECT_EQ(m.at(target).value, expect);
  // Only popcount-3 PEs received.
  for (std::size_t p = 0; p < m.size(); ++p) {
    const int pc = util::popcount(static_cast<util::Mask>(p));
    EXPECT_EQ(m.at(p).received, pc == 3) << p;
  }
}

TEST(Propagation1, WalksLevelsWithPromotion) {
  // Data starting at PE 0 should reach the k-group after k rounds, each PE
  // learning its membership only from the arrival (paper's PE-allocation
  // argument).
  const int dims = 4;
  HypercubeMachine<FlowState> m(dims);
  m.at(0).sender = true;
  m.at(0).value = 7;
  for (int level = 1; level <= dims; ++level) {
    propagation1_round(m);
    propagation1_promote(m);
    for (std::size_t p = 0; p < m.size(); ++p) {
      const bool in_group =
          util::popcount(static_cast<util::Mask>(p)) == level;
      EXPECT_EQ(m.at(p).sender, in_group) << "level " << level << " PE " << p;
      if (in_group) EXPECT_EQ(m.at(p).value, 7u);
    }
  }
}

TEST(Propagation2, FloodsToAllSupersets) {
  // Paper example: M=3, N=1; PE 0111 gets data from 0001, 0010, 0100.
  HypercubeMachine<FlowState> m(4);
  for (std::size_t p : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                        std::size_t{8}}) {
    m.at(p).sender = true;
    m.at(p).value = std::uint64_t{1} << p;
  }
  propagation2(m);
  EXPECT_EQ(m.at(0b0111).value,
            (std::uint64_t{1} << 1) | (std::uint64_t{1} << 2) |
                (std::uint64_t{1} << 4));
  // Every superset of a singleton got the union of its singleton subsets.
  for (std::size_t p = 1; p < m.size(); ++p) {
    std::uint64_t expect = 0;
    for (int b = 0; b < 4; ++b) {
      if ((p >> b) & 1u) expect |= std::uint64_t{1} << (std::size_t{1} << b);
    }
    EXPECT_EQ(m.at(p).value, expect) << p;
    EXPECT_TRUE(m.at(p).sender);
  }
}

TEST(Propagation2, SingleRoundCost) {
  HypercubeMachine<FlowState> m(5);
  m.at(0).sender = true;
  propagation2(m);
  EXPECT_EQ(m.steps().parallel_steps, 5u);  // O(m), paper §4.4
}

}  // namespace
}  // namespace ttp::net
