// Service facade end-to-end: canon -> cache -> scheduler -> kernel, with
// responses translated back into the requester's coordinates. Includes the
// dedup acceptance criterion: M identical concurrent requests perform
// exactly one kernel solve, observed through the service's obs counters.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "svc/service.hpp"
#include "tt/generator.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/validate.hpp"
#include "util/rng.hpp"

namespace ttp::svc {
namespace {

using tt::Instance;
using util::bit;

Instance scaled_shuffled_fig1() {
  // fig1_example spelled differently: actions permuted, renamed, weights
  // doubled. Canonicalization must fold this onto the same cache entry.
  Instance ins(4, {0.8, 0.6, 0.4, 0.2});
  ins.add_treatment(bit(2) | bit(3), 2.5, "other");
  ins.add_test(bit(0) | bit(2), 1.5, "b");
  ins.add_test(bit(0) | bit(1), 1.0, "a");
  ins.add_treatment(bit(1) | bit(2), 3.0, "bc");
  ins.add_treatment(bit(0), 2.0, "just-a");
  return ins;
}

TEST(SvcService, MissThenHitWithOriginalCoordinates) {
  Service svc;
  const Instance ins = tt::fig1_example();
  const double optimum = tt::SequentialSolver().solve(ins).cost;

  const Response first = svc.solve(ins);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_EQ(first.cache, CacheOutcome::kMiss);
  EXPECT_NEAR(first.cost, optimum, 1e-9);
  // The returned tree must be a valid optimal procedure for the instance AS
  // SUBMITTED (canonical action indices remapped back).
  const auto report = tt::validate_tree(ins, first.tree, first.cost, 1e-9);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? ""
                                                   : report.errors.front());

  const Response second = svc.solve(ins);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.cache, CacheOutcome::kHit);
  EXPECT_NEAR(second.cost, optimum, 1e-9);
  EXPECT_EQ(svc.metrics().get("svc.cache.hits"), 1u);
  EXPECT_EQ(svc.metrics().get("svc.solve.kernel_instances"), 1u);
}

TEST(SvcService, EquivalentSpellingHitsTheSameEntryRescaled) {
  Service svc;
  const Response a = svc.solve(tt::fig1_example());
  const Response b = svc.solve(scaled_shuffled_fig1());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.cache, CacheOutcome::kHit) << "same canonical key must hit";
  // Weights doubled => expected cost doubles.
  EXPECT_NEAR(b.cost, 2.0 * a.cost, 1e-9);
  // And b's tree must be valid for b's own action numbering.
  const Instance ins = scaled_shuffled_fig1();
  const auto report = tt::validate_tree(ins, b.tree, b.cost, 1e-9);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? ""
                                                   : report.errors.front());
}

TEST(SvcService, ConcurrentIdenticalRequestsSolveExactlyOnce) {
  ServiceConfig cfg;
  cfg.scheduler.batch_delay = std::chrono::microseconds(2000);
  Service svc(cfg);
  const Instance ins = tt::fig1_example();
  const double optimum = tt::SequentialSolver().solve(ins).cost;

  constexpr int kThreads = 16;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const Response r = svc.solve(ins);
      if (r.ok() && std::abs(r.cost - optimum) < 1e-9) ok.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads);
  // The acceptance criterion: M identical concurrent requests, ONE kernel
  // solve. Every other request was a cache hit or an in-flight follower.
  EXPECT_EQ(svc.metrics().get("svc.solve.kernel_instances"), 1u);
  EXPECT_EQ(svc.metrics().get("svc.sched.leaders"), 1u);
  EXPECT_EQ(svc.metrics().get("svc.cache.hits") +
                svc.metrics().get("svc.sched.followers"),
            static_cast<std::uint64_t>(kThreads - 1));
}

TEST(SvcService, SubmitPipelinesIntoOneMicroBatch) {
  ServiceConfig cfg;
  cfg.scheduler.autostart = false;  // stage all submits, then drain once
  cfg.scheduler.max_batch = 64;
  Service svc(cfg);
  util::Rng rng(31);
  tt::RandomOptions opt;
  opt.num_tests = 3;
  opt.num_treatments = 4;
  std::vector<Instance> instances;
  std::vector<Service::Pending> pending;
  for (int i = 0; i < 6; ++i) {
    instances.push_back(tt::random_instance(5, opt, rng));
    pending.push_back(svc.submit(instances.back()));
    EXPECT_FALSE(pending.back().ready());
  }
  svc.scheduler().start();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const Response r = pending[i].get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.cache, CacheOutcome::kMiss);
    EXPECT_NEAR(r.cost, tt::SequentialSolver().solve(instances[i]).cost,
                1e-9);
    EXPECT_TRUE(pending[i].ready());
  }
  // All six distinct misses were staged before the drain thread existed, so
  // they ride a single solve_many call.
  EXPECT_EQ(svc.metrics().get("svc.solve.batches"), 1u);
  EXPECT_EQ(svc.metrics().get("svc.solve.kernel_instances"), 6u);
}

TEST(SvcService, MalformedInstanceResolvesToError) {
  Service svc;
  Instance bad(2, {0.5, 0.5});
  bad.add_treatment(bit(0) | bit(1), -1.0);  // negative cost fails check()
  const Response r = svc.solve(bad);
  EXPECT_EQ(r.status, Status::kError);
  EXPECT_EQ(r.cache, CacheOutcome::kNone);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(svc.metrics().get("svc.requests.malformed"), 1u);
  EXPECT_EQ(svc.metrics().get("svc.solve.kernel_instances"), 0u);
}

TEST(SvcService, OversizeRejectIsTypedAndCounted) {
  ServiceConfig cfg;
  cfg.scheduler.max_k = 3;
  cfg.scheduler.max_sparse_k = 0;  // dense-only: k = 4 must reject
  Service svc(cfg);
  const Response r = svc.solve(tt::fig1_example());  // k = 4 > 3
  EXPECT_EQ(r.status, Status::kRejectedOversize);
  EXPECT_EQ(r.cache, CacheOutcome::kNone);
  EXPECT_EQ(svc.metrics().get("svc.sched.rejected_oversize"), 1u);
  EXPECT_EQ(svc.metrics().get("svc.responses.rejected-oversize"), 1u);
}

TEST(SvcService, StatsTextNamesTheCoreInstruments) {
  Service svc;
  (void)svc.solve(tt::fig1_example());
  (void)svc.solve(tt::fig1_example());
  const std::string stats = svc.stats_text();
  for (const char* needle :
       {"svc.requests", "svc.cache.hits", "svc.cache.misses",
        "svc.sched.leaders", "svc.solve.kernel_instances",
        "svc.request.us"}) {
    EXPECT_NE(stats.find(needle), std::string::npos) << needle << "\n"
                                                     << stats;
  }
}

}  // namespace
}  // namespace ttp::svc
