// The consistent-hash ring (cluster/ring.hpp): distribution quality,
// minimal remap on membership change, determinism across construction
// order, and distinct-replica walks. Suite names start with Svc so the CI
// TSan filter (Svc*:Flight*:Quantile*) picks them up.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "cluster/ring.hpp"
#include "svc/canon.hpp"

namespace ttp::cluster {
namespace {

std::vector<std::string> backend_names(int n) {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    out.push_back("10.0.0." + std::to_string(i + 1) + ":7070");
  }
  return out;
}

/// Synthetic canonical keys: hash of a per-index string, which is exactly
/// how real keys are produced (hash128 of canonical instance text).
svc::CanonKey key_for(int i) {
  return svc::hash128("instance-" + std::to_string(i) + "-payload");
}

TEST(SvcClusterRing, SingleBackendOwnsEverything) {
  Ring ring({"localhost:7070"}, 64);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.primary(key_for(i)), 0u);
  }
}

TEST(SvcClusterRing, DistributionWithinFifteenPercentOfUniform) {
  const int kBackends = 8;
  const int kKeys = 10000;
  Ring ring(backend_names(kBackends), 160);
  std::vector<int> counts(kBackends, 0);
  for (int i = 0; i < kKeys; ++i) {
    ++counts[ring.primary(key_for(i))];
  }
  const double uniform = static_cast<double>(kKeys) / kBackends;
  for (int b = 0; b < kBackends; ++b) {
    EXPECT_GT(counts[b], uniform * 0.85)
        << "backend " << b << " underloaded: " << counts[b];
    EXPECT_LT(counts[b], uniform * 1.15)
        << "backend " << b << " overloaded: " << counts[b];
  }
}

TEST(SvcClusterRing, RemovalRemapsOnlyTheRemovedBackendsKeys) {
  const int kBackends = 8;
  const int kKeys = 10000;
  const std::vector<std::string> names = backend_names(kBackends);
  Ring before(names, 160);

  // Drop the backend that owns key 0 (any fixed choice works).
  const std::size_t removed = before.primary(key_for(0));
  std::vector<std::string> survivors;
  for (std::size_t b = 0; b < names.size(); ++b) {
    if (b != removed) survivors.push_back(names[b]);
  }
  Ring after(survivors, 160);

  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const svc::CanonKey k = key_for(i);
    const std::string& owner_before = before.backend(before.primary(k));
    const std::string& owner_after = after.backend(after.primary(k));
    if (owner_before == names[removed]) {
      // These keys lost their owner; they must move somewhere.
      EXPECT_NE(owner_after, names[removed]);
      ++moved;
    } else {
      // Every other backend's points are unchanged, so its keys stay put.
      EXPECT_EQ(owner_after, owner_before) << "key " << i << " moved "
                                              "despite its owner surviving";
    }
  }
  // Expected remap share is 1/n; allow generous sampling slack but pin the
  // consistent-hashing property (a modulo table would move ~7/8 of keys).
  EXPECT_LT(moved, kKeys * 2 / kBackends)
      << "far more keys moved than the removed backend owned";
  EXPECT_GT(moved, 0);
}

TEST(SvcClusterRing, PlacementIgnoresBackendListOrder) {
  const std::vector<std::string> names = backend_names(6);
  std::vector<std::string> shuffled = names;
  std::reverse(shuffled.begin(), shuffled.end());
  std::rotate(shuffled.begin(), shuffled.begin() + 2, shuffled.end());

  Ring a(names, 96);
  Ring b(shuffled, 96);
  for (int i = 0; i < 2000; ++i) {
    const svc::CanonKey k = key_for(i);
    EXPECT_EQ(a.backend(a.primary(k)), b.backend(b.primary(k)))
        << "key " << i << " placed differently under a permuted list";
  }
}

TEST(SvcClusterRing, PlacementIsDeterministicAcrossInstances) {
  // Two independently built rings (as after a router restart) agree.
  Ring a(backend_names(5), 128);
  Ring b(backend_names(5), 128);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.primary(key_for(i)), b.primary(key_for(i)));
  }
}

TEST(SvcClusterRing, ReplicasAreDistinctAndStartAtPrimary) {
  Ring ring(backend_names(5), 96);
  for (int i = 0; i < 500; ++i) {
    const svc::CanonKey k = key_for(i);
    const std::vector<std::size_t> reps = ring.replicas(k, 3);
    ASSERT_EQ(reps.size(), 3u);
    EXPECT_EQ(reps[0], ring.primary(k));
    std::vector<std::size_t> sorted = reps;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
        << "replica walk repeated a backend for key " << i;
  }
}

TEST(SvcClusterRing, ReplicasClampToBackendCount) {
  Ring ring(backend_names(3), 64);
  const std::vector<std::size_t> reps = ring.replicas(key_for(1), 10);
  ASSERT_EQ(reps.size(), 3u);
  std::vector<std::size_t> sorted = reps;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SvcClusterRing, ThrowsOnEmptyBackendList) {
  EXPECT_THROW(Ring({}, 64), std::invalid_argument);
}

}  // namespace
}  // namespace ttp::cluster
