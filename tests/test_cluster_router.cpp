// The cluster routing tier (cluster/router.hpp) over real loopback
// sockets: argument parsing, key-affinity forwarding with byte-faithful
// relays, failover under concurrent load while a backend dies, hedged
// requests against a black-holed primary, health-probe ejection and
// readmission, and the typed ERR upstream terminal state. Suite names
// start with Svc so the CI TSan filter (Svc*:Flight*:Quantile*) covers
// them.
#ifndef _WIN32

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.hpp"
#include "svc/client.hpp"
#include "svc/service.hpp"
#include "svc/wire.hpp"
#include "tt/serialize.hpp"
#include "util/bits.hpp"

namespace ttp::cluster {
namespace {

using namespace std::chrono_literals;
using svc::Server;
using svc::ServerConfig;
using svc::Service;
using svc::ServiceConfig;
using svc::WireClient;

tt::Instance make_instance(int idx) {
  tt::Instance ins(4, {1.0, 2.0, 3.0, 4.0 + idx});
  ins.add_test(util::bit(0) | util::bit(1), 1.0, "t0");
  ins.add_test(util::bit(1) | util::bit(2), 1.5, "t1");
  for (int j = 0; j < 4; ++j) {
    ins.add_treatment(util::bit(j), 2.0, "c" + std::to_string(j));
  }
  return ins;
}

std::string solve_frame(const tt::Instance& ins) {
  return "SOLVE\n" + tt::to_text(ins) + "END\n";
}

bool eventually(const std::function<bool()>& cond, int budget_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return cond();
}

/// One real ttp_serve backend: Service + Server + runner thread.
class Backend {
 public:
  explicit Backend(int port = 0) {
    ServerConfig cfg;
    cfg.port = port;
    srv_ = std::make_unique<Service>(ServiceConfig{});
    server_ = std::make_unique<Server>(*srv_, cfg);
    std::string error;
    listening_ = server_->listen(error);
    EXPECT_TRUE(listening_) << error;
    if (listening_) {
      runner_ = std::thread([this] { server_->run(); });
    }
  }
  ~Backend() { stop(); }

  void stop() {
    if (runner_.joinable()) {
      server_->begin_drain();
      runner_.join();
    }
  }

  int port() const { return server_->port(); }
  std::string address() const {
    return "127.0.0.1:" + std::to_string(port());
  }
  Service& service() { return *srv_; }

 private:
  std::unique_ptr<Service> srv_;
  std::unique_ptr<Server> server_;
  bool listening_ = false;
  std::thread runner_;
};

/// Accepts connections and never replies — a stuck backend for hedging.
class BlackHole {
 public:
  BlackHole() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd_, 16), 0);
    socklen_t len = sizeof(addr);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    accepter_ = std::thread([this] {
      for (;;) {
        const int c = ::accept(fd_, nullptr, nullptr);
        if (c < 0) return;  // listener closed
        std::lock_guard<std::mutex> lock(mu_);
        accepted_.push_back(c);  // hold open, never reply
      }
    });
  }
  ~BlackHole() {
    // Wake the blocked accept() and join before closing the fd, so the
    // accepter can never race a reused descriptor number.
    ::shutdown(fd_, SHUT_RDWR);
    if (accepter_.joinable()) accepter_.join();
    ::close(fd_);
    std::lock_guard<std::mutex> lock(mu_);
    for (const int c : accepted_) ::close(c);
  }
  int port() const { return port_; }
  std::string address() const {
    return "127.0.0.1:" + std::to_string(port_);
  }

 private:
  int fd_ = -1;
  int port_ = 0;
  std::thread accepter_;
  std::mutex mu_;
  std::vector<int> accepted_;
};

/// A port that refuses connections: bind, read the port, close.
int dead_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

RouterConfig fast_cfg() {
  RouterConfig cfg;
  cfg.upstream.connect_timeout_ms = 500;
  cfg.upstream.request_timeout_ms = 5000;
  cfg.health.probe_timeout_ms = 300;
  return cfg;
}

/// Router + its own front-end Server + runner thread.
class RouterHarness {
 public:
  RouterHarness(std::vector<std::string> backends, RouterConfig cfg,
                bool start_prober = false) {
    router_ = std::make_unique<Router>(std::move(backends), cfg);
    if (start_prober) router_->start_prober();
    ServerConfig srv;
    srv.port = 0;
    server_ = std::make_unique<Server>(*router_, srv);
    std::string error;
    listening_ = server_->listen(error);
    EXPECT_TRUE(listening_) << error;
    if (listening_) {
      runner_ = std::thread([this] { exit_code_ = server_->run(); });
    }
  }
  ~RouterHarness() { stop(); }

  int stop() {
    if (runner_.joinable()) {
      server_->begin_drain();
      runner_.join();
    }
    return exit_code_;
  }

  int port() const { return server_->port(); }
  Router& router() { return *router_; }
  std::uint64_t counter(const char* name) {
    return router_->metrics().counter(name).value();
  }

 private:
  std::unique_ptr<Router> router_;
  std::unique_ptr<Server> server_;
  bool listening_ = false;
  int exit_code_ = -1;
  std::thread runner_;
};

struct SolveReply {
  std::string head;
  std::vector<std::string> body;  ///< Lines up to END (exclusive).
  bool complete = false;
};

SolveReply solve_via(int port, const tt::Instance& ins,
                     int timeout_ms = 10000) {
  SolveReply r;
  WireClient c("127.0.0.1", port);
  if (!c.connected()) return r;
  if (!c.send(solve_frame(ins))) return r;
  if (!c.read_line(r.head, timeout_ms)) return r;
  if (r.head.rfind("ERR ", 0) == 0) {
    r.complete = true;  // typed error is a complete protocol outcome
    return r;
  }
  r.complete = c.read_until("END", r.body, timeout_ms);
  return r;
}

/// Strips the request-unique fields (cache outcome, trace id) from an OK
/// head, keeping cost and nodes — the parts that must match across
/// backends and through the router.
std::string head_essence(const std::string& head) {
  std::istringstream is(head);
  std::string tok, out;
  while (is >> tok) {
    if (tok.rfind("cache=", 0) == 0 || tok.rfind("trace=", 0) == 0) continue;
    out += tok;
    out += ' ';
  }
  return out;
}

// ------------------------------------------------------------- arg parsing

TEST(SvcRouterArgs, RequiresAtLeastOneBackend) {
  const char* argv[] = {"ttp_router", "--port=0"};
  RouterArgs args;
  std::string error;
  EXPECT_FALSE(parse_router_args(2, argv, args, error));
  EXPECT_NE(error.find("--backend"), std::string::npos) << error;
}

TEST(SvcRouterArgs, ParsesFullFlagSet) {
  const char* argv[] = {"ttp_router",
                        "--port=7070",
                        "--backend=a:1",
                        "--backend=b:2",
                        "--vnodes=64",
                        "--retries=3",
                        "--hedge-ms=25",
                        "--connect-timeout-ms=100",
                        "--request-timeout-ms=2000",
                        "--pool-size=4",
                        "--probe-interval-ms=50",
                        "--probe-timeout-ms=80",
                        "--eject-after=2",
                        "--readmit-after=1",
                        "--max-conns=32",
                        "--max-frame-bytes=65536"};
  RouterArgs args;
  std::string error;
  ASSERT_TRUE(parse_router_args(16, argv, args, error)) << error;
  EXPECT_EQ(args.port, 7070);
  EXPECT_EQ(args.backends, (std::vector<std::string>{"a:1", "b:2"}));
  EXPECT_EQ(args.cfg.vnodes, 64);
  EXPECT_EQ(args.cfg.retries, 3);
  EXPECT_EQ(args.cfg.hedge_ms, 25);
  EXPECT_EQ(args.cfg.upstream.connect_timeout_ms, 100);
  EXPECT_EQ(args.cfg.upstream.request_timeout_ms, 2000);
  EXPECT_EQ(args.cfg.upstream.pool_size, 4u);
  EXPECT_EQ(args.cfg.health.probe_interval_ms, 50);
  EXPECT_EQ(args.cfg.health.probe_timeout_ms, 80);
  EXPECT_EQ(args.cfg.health.eject_after, 2);
  EXPECT_EQ(args.cfg.health.readmit_after, 1);
  EXPECT_EQ(args.server.max_conns, 32u);
  EXPECT_EQ(args.server.max_frame_bytes, 65536u);
  EXPECT_EQ(args.cfg.max_frame_bytes, 65536u);
  EXPECT_EQ(args.server.port, 7070);
}

TEST(SvcRouterArgs, RejectsDuplicateBackends) {
  const char* argv[] = {"ttp_router", "--backend=h:1", "--backend=h:1"};
  RouterArgs args;
  std::string error;
  EXPECT_FALSE(parse_router_args(3, argv, args, error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(SvcRouterArgs, RejectsOutOfRangeValues) {
  for (const char* bad :
       {"--vnodes=0", "--retries=17", "--hedge-ms=-1", "--pool-size=9999",
        "--eject-after=0", "--port=65536", "--vnodes=12x"}) {
    const char* argv[] = {"ttp_router", "--backend=h:1", bad};
    RouterArgs args;
    std::string error;
    EXPECT_FALSE(parse_router_args(3, argv, args, error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(SvcRouterArgs, HelpShortCircuits) {
  const char* argv[] = {"ttp_router", "--help"};
  RouterArgs args;
  std::string error;
  ASSERT_TRUE(parse_router_args(2, argv, args, error));
  EXPECT_TRUE(args.help);
}

TEST(SvcRouter, RejectsMalformedBackendAddresses) {
  for (const std::string bad :
       {"nohost", "host:", ":7070", "host:0", "host:99999", "host:7x"}) {
    EXPECT_THROW(Router({bad}, RouterConfig{}), std::invalid_argument)
        << bad;
  }
}

// ------------------------------------------------------- basic forwarding

TEST(SvcRouter, ForwardsSolvesAndRelaysRepliesFaithfully) {
  Backend b1, b2;
  RouterHarness rh({b1.address(), b2.address()}, fast_cfg());

  for (int i = 0; i < 8; ++i) {
    const tt::Instance ins = make_instance(i);
    const SolveReply direct = solve_via(b1.port(), ins);
    ASSERT_TRUE(direct.complete) << "direct solve " << i;
    ASSERT_EQ(direct.head.rfind("OK ", 0), 0u) << direct.head;

    const SolveReply routed = solve_via(rh.port(), ins);
    ASSERT_TRUE(routed.complete) << "routed solve " << i;
    ASSERT_EQ(routed.head.rfind("OK ", 0), 0u) << routed.head;

    // Cost, node count, and the tree bytes are identical through the
    // router; cache outcome and trace id are per-request.
    EXPECT_EQ(head_essence(routed.head), head_essence(direct.head));
    EXPECT_EQ(routed.body, direct.body) << "tree bytes differ for " << i;
  }
  EXPECT_EQ(rh.counter("cluster.routed"), 8u);
  EXPECT_EQ(rh.counter("cluster.upstream_errors"), 0u);
  EXPECT_EQ(rh.stop(), 0);
}

TEST(SvcRouter, KeyAffinityConcentratesRepeatsOnOneBackendCache) {
  Backend b1, b2, b3;
  RouterHarness rh({b1.address(), b2.address(), b3.address()}, fast_cfg());

  // The same instance through the router repeatedly: after the first miss
  // every reply must be a cache hit, which can only happen if the router
  // sends the key to the same backend each time.
  const tt::Instance ins = make_instance(42);
  const SolveReply first = solve_via(rh.port(), ins);
  ASSERT_TRUE(first.complete);
  ASSERT_EQ(first.head.rfind("OK ", 0), 0u) << first.head;
  for (int i = 0; i < 5; ++i) {
    const SolveReply again = solve_via(rh.port(), ins);
    ASSERT_TRUE(again.complete);
    EXPECT_NE(again.head.find("cache=hit"), std::string::npos) << again.head;
  }
  EXPECT_EQ(rh.stop(), 0);
}

TEST(SvcRouter, RelaysTypedBackendErrorsWithoutRetry) {
  Backend b1;
  RouterHarness rh({b1.address()}, fast_cfg());

  WireClient c("127.0.0.1", rh.port());
  ASSERT_TRUE(c.connected());
  // A well-formed instance past the backend's admission limit (k=22 over
  // the default --max-k=20): the backend answers ERR oversize, and the
  // router must relay that typed verdict — not retry it (every replica
  // would refuse identically) and not mask it as an upstream failure.
  tt::Instance big(22, std::vector<double>(22, 1.0));
  big.add_test(util::bit(0) | util::bit(1), 1.0, "t0");
  for (int j = 0; j < 22; ++j) {
    big.add_treatment(util::bit(j), 2.0, "c" + std::to_string(j));
  }
  ASSERT_TRUE(c.send(solve_frame(big)));
  const std::string verdict = c.read_line();
  EXPECT_EQ(verdict.rfind("ERR oversize", 0), 0u) << verdict;
  EXPECT_EQ(rh.counter("cluster.retried"), 0u);
  EXPECT_EQ(rh.stop(), 0);
}

TEST(SvcRouter, RejectsUnparseableFramesLocally) {
  Backend b1;
  RouterHarness rh({b1.address()}, fast_cfg());
  WireClient c("127.0.0.1", rh.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.send("SOLVE\nthis is not an instance\nEND\n"));
  const std::string verdict = c.read_line();
  EXPECT_EQ(verdict.rfind("ERR bad-request", 0), 0u) << verdict;
  // The garbage never reached the backend.
  EXPECT_EQ(b1.service().metrics().counter("svc.requests").value(), 0u);
  EXPECT_EQ(rh.stop(), 0);
}

TEST(SvcRouter, SessionProtocolMirrorsServe) {
  Backend b1;
  RouterHarness rh({b1.address()}, fast_cfg());
  WireClient c("127.0.0.1", rh.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.send("PING\nNONSENSE\nQUIT\n"));
  EXPECT_EQ(c.read_line(), "PONG");
  EXPECT_EQ(c.read_line().rfind("ERR bad-request", 0), 0u);
  EXPECT_EQ(c.read_line(), "BYE");
  EXPECT_EQ(rh.stop(), 0);
}

// ----------------------------------------------------- STATS/METRICS/etc.

TEST(SvcRouter, ExposesClusterCountersAndRingState) {
  Backend b1, b2;
  RouterHarness rh({b1.address(), b2.address()}, fast_cfg());
  solve_via(rh.port(), make_instance(1));

  WireClient c("127.0.0.1", rh.port());
  ASSERT_TRUE(c.send("STATS\n"));
  EXPECT_EQ(c.read_line(), "STATS");
  std::vector<std::string> stats;
  ASSERT_TRUE(c.read_until("END", stats, 5000));
  const std::string all = [&] {
    std::string s;
    for (const auto& l : stats) s += l + "\n";
    return s;
  }();
  EXPECT_NE(all.find("ring.backends: 2"), std::string::npos) << all;
  EXPECT_NE(all.find("cluster.routed = 1"), std::string::npos) << all;
  EXPECT_NE(all.find("svc.server.accepted"), std::string::npos) << all;

  ASSERT_TRUE(c.send("METRICS\n"));
  EXPECT_EQ(c.read_line(), "METRICS");
  std::vector<std::string> metrics;
  ASSERT_TRUE(c.read_until("END", metrics, 5000));
  const std::string prom = [&] {
    std::string s;
    for (const auto& l : metrics) s += l + "\n";
    return s;
  }();
  EXPECT_NE(prom.find("cluster_routed_total 1"), std::string::npos) << prom;
  EXPECT_NE(prom.find("ttp_build_info{role=\"router\"}"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("ttp_svc_latency_seconds{stage=\"e2e\""),
            std::string::npos)
      << prom;

  ASSERT_TRUE(c.send("HEALTH\n"));
  EXPECT_EQ(c.read_line(), "HEALTH");
  std::vector<std::string> health;
  ASSERT_TRUE(c.read_until("END", health, 5000));
  ASSERT_FALSE(health.empty());
  EXPECT_EQ(health[0], "ready");
  const std::string htext = [&] {
    std::string s;
    for (const auto& l : health) s += l + "\n";
    return s;
  }();
  EXPECT_NE(htext.find("backends.total: 2"), std::string::npos) << htext;
  EXPECT_NE(htext.find("backends.routable: 2"), std::string::npos) << htext;
  EXPECT_NE(htext.find(": healthy"), std::string::npos) << htext;
  EXPECT_EQ(rh.stop(), 0);
}

TEST(SvcRouter, TraceLookupsFanOutToBackends) {
  Backend b1, b2;
  RouterHarness rh({b1.address(), b2.address()}, fast_cfg());

  const SolveReply r = solve_via(rh.port(), make_instance(3));
  ASSERT_TRUE(r.complete);
  const std::size_t pos = r.head.find("trace=");
  ASSERT_NE(pos, std::string::npos) << r.head;
  const std::string id = r.head.substr(pos + 6, 16);

  WireClient c("127.0.0.1", rh.port());
  ASSERT_TRUE(c.send("TRACE " + id + "\n"));
  EXPECT_EQ(c.read_line(), "TRACE");
  std::vector<std::string> body;
  ASSERT_TRUE(c.read_until("END", body, 5000));
  bool found_trace_line = false;
  for (const auto& l : body) {
    if (l == "trace: " + id) found_trace_line = true;
  }
  EXPECT_TRUE(found_trace_line) << r.head;

  ASSERT_TRUE(c.send("TRACE 0123456789abcdef\n"));
  EXPECT_EQ(c.read_line().rfind("ERR not-found", 0), 0u);
  EXPECT_EQ(rh.stop(), 0);
}

// ------------------------------------------------------------- resilience

TEST(SvcRouter, FailsOverUnderConcurrentLoadWhenABackendDies) {
  Backend b1, b2, b3;
  RouterConfig cfg = fast_cfg();
  cfg.retries = 2;
  RouterHarness rh({b1.address(), b2.address(), b3.address()}, cfg);

  constexpr int kThreads = 64;
  std::atomic<int> ok{0}, typed{0}, broken{0};
  std::atomic<bool> killed{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Each worker solves several distinct instances; midway through the
      // barrage one backend dies for good.
      for (int i = 0; i < 4; ++i) {
        const SolveReply r =
            solve_via(rh.port(), make_instance(t * 7 + i), 15000);
        if (r.head.rfind("OK ", 0) == 0 && r.complete) {
          ok.fetch_add(1);
        } else if (r.head.rfind("ERR ", 0) == 0) {
          typed.fetch_add(1);
        } else {
          broken.fetch_add(1);
        }
        if (t == 0 && i == 1 && !killed.exchange(true)) b2.stop();
      }
    });
  }
  for (auto& w : workers) w.join();

  // The contract under failover: every request ends in a relayed OK or a
  // typed ERR — never a hang, torn frame, or empty reply.
  EXPECT_EQ(broken.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(ok.load() + typed.load(), kThreads * 4);
  EXPECT_EQ(rh.stop(), 0);
}

TEST(SvcRouter, RetriesTransportFailuresOnNextReplica) {
  Backend alive;
  const int dead = dead_port();
  RouterConfig cfg = fast_cfg();
  cfg.retries = 2;
  // Both orders: whichever replica a key prefers, one of them refuses
  // connections, so some solve exercises the retry path.
  RouterHarness rh({"127.0.0.1:" + std::to_string(dead), alive.address()},
                   cfg);
  int retried_keys = 0;
  for (int i = 0; i < 12; ++i) {
    const SolveReply r = solve_via(rh.port(), make_instance(i));
    ASSERT_TRUE(r.complete) << i;
    ASSERT_EQ(r.head.rfind("OK ", 0), 0u) << r.head;
  }
  retried_keys = static_cast<int>(rh.counter("cluster.retried"));
  EXPECT_GT(retried_keys, 0) << "no key preferred the dead backend in 12 "
                                "instances — distribution bug";
  EXPECT_EQ(rh.counter("cluster.upstream_errors"), 0u);
  EXPECT_EQ(rh.stop(), 0);
}

TEST(SvcRouter, AllReplicasDownYieldsTypedUpstreamError) {
  const int d1 = dead_port(), d2 = dead_port();
  RouterConfig cfg = fast_cfg();
  cfg.retries = 3;
  RouterHarness rh({"127.0.0.1:" + std::to_string(d1),
                    "127.0.0.1:" + std::to_string(d2)},
                   cfg);
  WireClient c("127.0.0.1", rh.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.send(solve_frame(make_instance(0))));
  const std::string verdict = c.read_line(10000);
  EXPECT_EQ(verdict.rfind("ERR upstream", 0), 0u) << verdict;
  // The session survives the upstream failure: the protocol stays in sync.
  ASSERT_TRUE(c.send("PING\n"));
  EXPECT_EQ(c.read_line(), "PONG");
  EXPECT_GE(rh.counter("cluster.upstream_errors"), 1u);
  EXPECT_EQ(rh.stop(), 0);
}

TEST(SvcRouter, HedgesAgainstAStuckPrimary) {
  BlackHole stuck;
  Backend alive;
  RouterConfig cfg = fast_cfg();
  cfg.hedge_ms = 30;  // fire the hedge fast; the stuck backend never answers
  cfg.retries = 1;
  Router router({stuck.address(), alive.address()}, cfg);

  // Find instances whose primary is the black hole so the hedge (not plain
  // first-attempt success) is what saves them.
  const Ring& ring = router.ring();
  std::vector<int> stuck_primaries;
  for (int i = 0; i < 200 && stuck_primaries.size() < 3; ++i) {
    const svc::CanonKey key =
        svc::canonicalize(make_instance(i)).key;
    if (ring.backend(ring.primary(key)) == stuck.address()) {
      stuck_primaries.push_back(i);
    }
  }
  ASSERT_GE(stuck_primaries.size(), 3u);

  for (const int i : stuck_primaries) {
    std::istringstream in(solve_frame(make_instance(i)));
    std::ostringstream out;
    router.serve(in, out, svc::SessionOptions{});
    EXPECT_EQ(out.str().rfind("OK ", 0), 0u) << out.str();
  }
  EXPECT_GE(router.metrics().counter("cluster.hedged").value(), 3u);
  EXPECT_GE(router.metrics().counter("cluster.hedge_wins").value(), 3u);
}

// -------------------------------------------------------- health probing

TEST(SvcRouter, ProberEjectsDeadBackendsAndReadmitsOnRecovery) {
  Backend stable;
  auto victim = std::make_unique<Backend>();
  const int victim_port = victim->port();
  RouterConfig cfg = fast_cfg();
  cfg.health.eject_after = 2;
  cfg.health.readmit_after = 2;
  Router router({stable.address(), victim->address()}, cfg);

  router.prober().probe_all();
  EXPECT_TRUE(router.upstream(0).routable());
  EXPECT_TRUE(router.upstream(1).routable());

  victim->stop();
  victim.reset();
  router.prober().probe_all();
  EXPECT_TRUE(router.upstream(1).routable()) << "one failure must not eject";
  router.prober().probe_all();
  EXPECT_FALSE(router.upstream(1).routable());
  EXPECT_EQ(router.metrics().counter("cluster.ejected").value(), 1u);
  EXPECT_EQ(router.upstream(1).state(), Upstream::State::kEjected);

  // Every SOLVE now routes to the survivor.
  for (int i = 0; i < 6; ++i) {
    std::istringstream in(solve_frame(make_instance(i)));
    std::ostringstream out;
    router.serve(in, out, svc::SessionOptions{});
    EXPECT_EQ(out.str().rfind("OK ", 0), 0u) << out.str();
  }

  // Restart on the same port; readmission needs a success streak.
  Backend revived(victim_port);
  ASSERT_EQ(revived.port(), victim_port);
  router.prober().probe_all();
  EXPECT_FALSE(router.upstream(1).routable())
      << "one success must not readmit";
  router.prober().probe_all();
  EXPECT_TRUE(router.upstream(1).routable());
  EXPECT_EQ(router.metrics().counter("cluster.readmitted").value(), 1u);

  const std::string health = router.health_text();
  EXPECT_NE(health.find("backends.routable: 2"), std::string::npos)
      << health;
}

TEST(SvcRouter, ProberMarksDrainingBackendsUnroutable) {
  Backend b1, b2;
  RouterConfig cfg = fast_cfg();
  Router router({b1.address(), b2.address()}, cfg);
  router.prober().probe_all();
  EXPECT_TRUE(router.upstream(1).routable());

  b2.service().set_draining(true);
  router.prober().probe_all();
  EXPECT_EQ(router.upstream(1).state(), Upstream::State::kDraining);
  EXPECT_FALSE(router.upstream(1).routable());
  // Draining is not a failure: no ejection counted.
  EXPECT_EQ(router.metrics().counter("cluster.ejected").value(), 0u);

  b2.service().set_draining(false);
  router.prober().probe_all();
  EXPECT_TRUE(router.upstream(1).routable());
}

TEST(SvcRouter, BackgroundProberRunsWithoutManualDriving) {
  Backend b1;
  RouterConfig cfg = fast_cfg();
  cfg.health.probe_interval_ms = 20;
  Router router({b1.address()}, cfg);
  router.start_prober();
  EXPECT_TRUE(eventually([&] { return router.prober().rounds() >= 3; }));
  router.prober().stop();
  EXPECT_GE(router.metrics().counter("cluster.probes").value(), 3u);
}

// ---------------------------------------------------------- pooled conns

TEST(SvcRouter, ReusesPooledConnectionsAcrossSolves) {
  Backend b1;
  RouterHarness rh({b1.address()}, fast_cfg());
  const tt::Instance ins = make_instance(9);
  for (int i = 0; i < 5; ++i) {
    const SolveReply r = solve_via(rh.port(), ins);
    ASSERT_TRUE(r.complete);
    ASSERT_EQ(r.head.rfind("OK ", 0), 0u);
  }
  const std::string addr = b1.address();
  const std::uint64_t dialed =
      rh.counter(("cluster.backend." + addr + ".connects").c_str());
  const std::uint64_t reused =
      rh.counter(("cluster.backend." + addr + ".reused").c_str());
  EXPECT_EQ(dialed, 1u) << "every solve dialed a fresh connection";
  EXPECT_EQ(reused, 4u);
  EXPECT_EQ(rh.stop(), 0);
}

}  // namespace
}  // namespace ttp::cluster

#endif  // !_WIN32
