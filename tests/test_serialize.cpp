// Instance text serialization: round-trips, error reporting, file I/O, and
// DOT export structure.
#include <gtest/gtest.h>

#include <cstdio>

#include "tt/generator.hpp"
#include "tt/serialize.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

TEST(Serialize, RoundTripPreservesEverything) {
  util::Rng rng(9);
  for (int seed = 0; seed < 10; ++seed) {
    RandomOptions opt;
    opt.num_tests = 3;
    opt.num_treatments = 4;
    const Instance a = random_instance(5, opt, rng);
    const Instance b = from_text(to_text(a));
    ASSERT_EQ(a.k(), b.k());
    ASSERT_EQ(a.num_actions(), b.num_actions());
    ASSERT_EQ(a.num_tests(), b.num_tests());
    for (int j = 0; j < a.k(); ++j) {
      EXPECT_EQ(a.weight(j), b.weight(j)) << j;  // bitwise: precision 17
    }
    for (int i = 0; i < a.num_actions(); ++i) {
      EXPECT_EQ(a.action(i).set, b.action(i).set);
      EXPECT_EQ(a.action(i).cost, b.action(i).cost);
      EXPECT_EQ(a.action(i).is_test, b.action(i).is_test);
      EXPECT_EQ(a.action(i).name, b.action(i).name);
    }
    // Same optimum, of course.
    EXPECT_EQ(SequentialSolver().solve(a).cost,
              SequentialSolver().solve(b).cost);
  }
}

TEST(Serialize, ParsesCommentsAndWhitespace) {
  const Instance ins = from_text(R"(
# a comment
tt 2
weights 1.0 2.0   # trailing comment
test  probe {0} 0.5
treat fix   {0,1} 1.5
)");
  EXPECT_EQ(ins.k(), 2);
  EXPECT_EQ(ins.num_tests(), 1);
  EXPECT_EQ(ins.action(1).set, 0b11u);
}

TEST(Serialize, EmptySetAllowed) {
  const Instance ins = from_text("tt 2\nweights 1 1\ntreat all {0,1} 1\n");
  EXPECT_EQ(ins.num_actions(), 1);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      (void)from_text(text);
      FAIL() << "expected failure for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("weights 1\n", "missing 'tt");
  expect_error("tt 2\nweights 1\n", "expected 2 weights");
  expect_error("tt 2\nweights 1 1\nbogus x {0} 1\n", "unknown keyword");
  expect_error("tt 2\nweights 1 1\ntest t (0) 1\n", "expected {a,b,...}");
  expect_error("tt 2\nweights 1 1\ntest t {5} 1\n", "outside universe");
  expect_error("treat t {0} 1\n", "before 'tt");
}

TEST(Serialize, FileRoundTrip) {
  const Instance a = fig1_example();
  const std::string path = ::testing::TempDir() + "/ttp_roundtrip.tt";
  save_file(path, a);
  const Instance b = load_file(path);
  EXPECT_EQ(to_text(a), to_text(b));
  std::remove(path.c_str());
  EXPECT_THROW(load_file(path + ".missing"), std::runtime_error);
}

TEST(Serialize, DotExportMentionsEveryNode) {
  const Instance ins = fig1_example();
  const auto res = SequentialSolver().solve(ins);
  const std::string dot = res.tree.to_dot(ins);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (int i = 0; i < res.tree.size(); ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " ["), std::string::npos)
        << i;
  }
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // treatments
  EXPECT_NE(dot.find("shape=box"), std::string::npos);     // tests
  EXPECT_NE(dot.find("label=\"+\""), std::string::npos);
}

}  // namespace
}  // namespace ttp::tt
