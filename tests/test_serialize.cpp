// Instance text serialization: round-trips, error reporting, file I/O, and
// DOT export structure.
#include <gtest/gtest.h>

#include <cstdio>
#include <tuple>

#include "tt/generator.hpp"
#include "tt/serialize.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

TEST(Serialize, RoundTripPreservesEverything) {
  util::Rng rng(9);
  for (int seed = 0; seed < 10; ++seed) {
    RandomOptions opt;
    opt.num_tests = 3;
    opt.num_treatments = 4;
    const Instance a = random_instance(5, opt, rng);
    const Instance b = from_text(to_text(a));
    ASSERT_EQ(a.k(), b.k());
    ASSERT_EQ(a.num_actions(), b.num_actions());
    ASSERT_EQ(a.num_tests(), b.num_tests());
    for (int j = 0; j < a.k(); ++j) {
      EXPECT_EQ(a.weight(j), b.weight(j)) << j;  // bitwise: precision 17
    }
    for (int i = 0; i < a.num_actions(); ++i) {
      EXPECT_EQ(a.action(i).set, b.action(i).set);
      EXPECT_EQ(a.action(i).cost, b.action(i).cost);
      EXPECT_EQ(a.action(i).is_test, b.action(i).is_test);
      EXPECT_EQ(a.action(i).name, b.action(i).name);
    }
    // Same optimum, of course.
    EXPECT_EQ(SequentialSolver().solve(a).cost,
              SequentialSolver().solve(b).cost);
  }
}

// Structural equality, field by field (names included).
void expect_same_instance(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.k(), b.k());
  ASSERT_EQ(a.num_actions(), b.num_actions());
  ASSERT_EQ(a.num_tests(), b.num_tests());
  for (int j = 0; j < a.k(); ++j) EXPECT_EQ(a.weight(j), b.weight(j)) << j;
  for (int i = 0; i < a.num_actions(); ++i) {
    EXPECT_EQ(a.action(i).set, b.action(i).set) << i;
    EXPECT_EQ(a.action(i).cost, b.action(i).cost) << i;
    EXPECT_EQ(a.action(i).is_test, b.action(i).is_test) << i;
    EXPECT_EQ(a.action(i).name, b.action(i).name) << i;
  }
}

TEST(Serialize, PropertyRoundTripRandomizedWithHostileShapes) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    // k = 1 (single-object universe) is the degenerate edge every few
    // trials; otherwise 2..8.
    const int k = trial % 5 == 0 ? 1 : 2 + static_cast<int>(rng.next_u64() % 7);
    RandomOptions opt;
    opt.num_tests = 1 + static_cast<int>(rng.next_u64() % 4);
    opt.num_treatments = 2 + static_cast<int>(rng.next_u64() % 4);
    Instance a = random_instance(k, opt, rng);
    // Duplicate-subset actions (same set, different cost/name) must survive
    // the trip as distinct actions in order.
    const Action& dup = a.action(0);
    if (dup.is_test) {
      a.add_test(dup.set, dup.cost + 0.25, "dup_" + dup.name);
    } else {
      a.add_treatment(dup.set, dup.cost + 0.25, "dup_" + dup.name);
    }

    const std::string text = to_text(a);
    expect_same_instance(a, from_text(text));

    // Re-parse with comment lines and blank lines interleaved between every
    // payload line: comments are whitespace, not content.
    std::string commented = "# leading comment\n";
    for (char c : text) {
      commented += c;
      if (c == '\n') commented += "\n# interleaved comment\n";
    }
    expect_same_instance(a, from_text(commented));
  }
}

TEST(Serialize, CanonicalOrderSortsTestsFirstBySetThenCost) {
  util::Rng rng(99);
  RandomOptions opt;
  opt.num_tests = 4;
  opt.num_treatments = 5;
  for (int trial = 0; trial < 10; ++trial) {
    const Instance ins = random_instance(6, opt, rng);
    const std::vector<int> ord = canonical_action_order(ins);
    ASSERT_EQ(ord.size(), static_cast<std::size_t>(ins.num_actions()));
    // ord is a permutation...
    std::vector<int> seen(ord.size(), 0);
    for (int i : ord) seen[static_cast<std::size_t>(i)]++;
    for (int c : seen) EXPECT_EQ(c, 1);
    // ...and the induced sequence is sorted: tests before treatments, each
    // group by (set, cost).
    for (std::size_t p = 1; p < ord.size(); ++p) {
      const Action& x = ins.action(ord[p - 1]);
      const Action& y = ins.action(ord[p]);
      EXPECT_LE(std::make_tuple(!x.is_test, x.set, x.cost),
                std::make_tuple(!y.is_test, y.set, y.cost))
          << "position " << p;
    }
  }
}

TEST(Serialize, CanonicalTextIsOrderInvariantAndReparsable) {
  // The same actions inserted in two different orders serialize to the same
  // canonical text (names ride along with their actions).
  Instance a(3, {0.5, 0.3, 0.2});
  a.add_test(0b011u, 1.0, "t1");
  a.add_test(0b101u, 1.5, "t2");
  a.add_treatment(0b001u, 2.0, "c1");
  a.add_treatment(0b110u, 3.0, "c2");
  Instance b(3, {0.5, 0.3, 0.2});
  b.add_treatment(0b110u, 3.0, "c2");
  b.add_test(0b101u, 1.5, "t2");
  b.add_treatment(0b001u, 2.0, "c1");
  b.add_test(0b011u, 1.0, "t1");
  EXPECT_EQ(to_canonical_text(a), to_canonical_text(b));
  // Plain to_text preserves insertion order, so it differs between the two.
  EXPECT_NE(to_text(a), to_text(b));
  // Canonical text is itself valid instance text; parsing it yields the
  // canonically ordered instance, and a second canonicalization is a no-op.
  const Instance canon = from_text(to_canonical_text(a));
  EXPECT_TRUE(canon.action(0).is_test);
  EXPECT_TRUE(canon.action(1).is_test);
  EXPECT_EQ(to_canonical_text(canon), to_canonical_text(a));
  EXPECT_EQ(to_text(canon), to_canonical_text(a));
}

TEST(Serialize, CanonicalOrderIsStableAcrossDuplicates) {
  // Two actions with identical (kind, set, cost) keep their relative input
  // order — the permutation is deterministic, not tie-arbitrary.
  Instance ins(2, {0.5, 0.5});
  ins.add_test(0b01u, 1.0, "first");
  ins.add_test(0b01u, 1.0, "second");
  ins.add_treatment(0b11u, 2.0, "fix");
  const std::vector<int> ord = canonical_action_order(ins);
  EXPECT_EQ(ord, (std::vector<int>{0, 1, 2}));
}

TEST(Serialize, ParsesCommentsAndWhitespace) {
  const Instance ins = from_text(R"(
# a comment
tt 2
weights 1.0 2.0   # trailing comment
test  probe {0} 0.5
treat fix   {0,1} 1.5
)");
  EXPECT_EQ(ins.k(), 2);
  EXPECT_EQ(ins.num_tests(), 1);
  EXPECT_EQ(ins.action(1).set, 0b11u);
}

TEST(Serialize, EmptySetAllowed) {
  const Instance ins = from_text("tt 2\nweights 1 1\ntreat all {0,1} 1\n");
  EXPECT_EQ(ins.num_actions(), 1);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      (void)from_text(text);
      FAIL() << "expected failure for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("weights 1\n", "missing 'tt");
  expect_error("tt 2\nweights 1\n", "expected 2 weights");
  expect_error("tt 2\nweights 1 1\nbogus x {0} 1\n", "unknown keyword");
  expect_error("tt 2\nweights 1 1\ntest t (0) 1\n", "expected {a,b,...}");
  expect_error("tt 2\nweights 1 1\ntest t {5} 1\n", "outside universe");
  expect_error("treat t {0} 1\n", "before 'tt");
}

TEST(Serialize, FileRoundTrip) {
  const Instance a = fig1_example();
  const std::string path = ::testing::TempDir() + "/ttp_roundtrip.tt";
  save_file(path, a);
  const Instance b = load_file(path);
  EXPECT_EQ(to_text(a), to_text(b));
  std::remove(path.c_str());
  EXPECT_THROW(load_file(path + ".missing"), std::runtime_error);
}

TEST(Serialize, DotExportMentionsEveryNode) {
  const Instance ins = fig1_example();
  const auto res = SequentialSolver().solve(ins);
  const std::string dot = res.tree.to_dot(ins);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (int i = 0; i < res.tree.size(); ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " ["), std::string::npos)
        << i;
  }
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // treatments
  EXPECT_NE(dot.find("shape=box"), std::string::npos);     // tests
  EXPECT_NE(dot.find("label=\"+\""), std::string::npos);
}

}  // namespace
}  // namespace ttp::tt
