// The 2^k-PE state-parallel solver must be bitwise identical to the
// sequential DP (same kernel association, same tie-breaking), while using
// N-fold fewer PEs than the (S, i)-parallel formulation.
#include <gtest/gtest.h>

#include <cmath>

#include "tt/generator.hpp"
#include "tt/solver_hypercube.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/solver_state_parallel.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

class StateParallel : public ::testing::TestWithParam<int> {};

TEST_P(StateParallel, BitwiseIdenticalToSequential) {
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  Instance ins = [&]() -> Instance {
    switch (seed % 4) {
      case 0:
        return random_instance(5 + seed % 3, RandomOptions{}, rng);
      case 1:
        return medical_instance(6, 5, rng);
      case 2:
        return complete_instance(4);  // the N = O(2^k) regime it targets
      default:
        return lab_analysis_instance(6, rng);
    }
  }();
  const auto seq = SequentialSolver().solve(ins);
  const auto sp = StateParallelSolver().solve(ins);
  EXPECT_EQ(max_table_diff(seq.table, sp.table), 0.0);
  EXPECT_EQ(seq.table.best_action, sp.table.best_action);
  if (!std::isinf(seq.cost)) {
    EXPECT_EQ(sp.tree.size(), seq.tree.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateParallel, ::testing::Range(0, 12));

TEST(StateParallel, TradeoffShape) {
  // On the complete instance (N = O(2^k)) the state-parallel variant uses
  // N-fold fewer PEs but proportionally more parallel steps; the
  // PE-time products stay within a constant of each other.
  const Instance ins = complete_instance(4);
  const auto si = HypercubeSolver().solve(ins);     // (S, i)-parallel
  const auto sp = StateParallelSolver().solve(ins);  // S-parallel

  EXPECT_EQ(max_table_diff(si.table, sp.table), 0.0);
  const auto pes_si = si.breakdown.get("pes");
  const auto pes_sp = sp.breakdown.get("pes");
  EXPECT_GT(pes_si, 16 * pes_sp);  // N = 30 -> padded 32 x fewer PEs
  EXPECT_GT(sp.steps.parallel_steps, 4 * si.steps.parallel_steps);
  const double prod_si = static_cast<double>(pes_si) *
                         static_cast<double>(si.steps.parallel_steps);
  const double prod_sp = static_cast<double>(pes_sp) *
                         static_cast<double>(sp.steps.parallel_steps);
  EXPECT_LT(prod_sp, prod_si);  // serializing the min saves total work here
}

TEST(StateParallel, InadequateInstance) {
  Instance ins(2, {1, 1});
  ins.add_test(0b01, 1.0);
  ins.add_treatment(0b10, 1.0);
  const auto sp = StateParallelSolver().solve(ins);
  EXPECT_TRUE(std::isinf(sp.cost));
  EXPECT_TRUE(sp.tree.empty());
}

}  // namespace
}  // namespace ttp::tt
