// On-machine control-bit generation vs host-computed reference patterns,
// including the paper's Fig. 3 cycle-ID table for the 64-PE CCC.
#include <gtest/gtest.h>

#include "bvm/io.hpp"
#include "bvm/microcode/ids.hpp"

namespace ttp::bvm {
namespace {

class IdsTest : public ::testing::TestWithParam<BvmConfig> {};

TEST_P(IdsTest, MarkPe0) {
  Machine m(GetParam());
  mark_pe0(m, 0);
  const auto expect = ref_pe0(m.config());
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    ASSERT_EQ(m.peek(Reg::R(0), pe), expect[pe]) << pe;
  }
}

TEST_P(IdsTest, PositionId) {
  Machine m(GetParam());
  gen_position_id(m, 0);
  for (int b = 0; b < m.config().r; ++b) {
    const auto expect = ref_position_bit(m.config(), b);
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      ASSERT_EQ(m.peek(Reg::R(b), pe), expect[pe]) << "b=" << b << " pe=" << pe;
    }
  }
}

TEST_P(IdsTest, CycleNumberReplicated) {
  Machine m(GetParam());
  gen_cycle_number(m, 0, 20, 21);
  for (int t = 0; t < m.config().h; ++t) {
    const auto expect = ref_cycle_number_bit(m.config(), t);
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      ASSERT_EQ(m.peek(Reg::R(t), pe), expect[pe]) << "t=" << t << " pe=" << pe;
    }
  }
}

TEST_P(IdsTest, CycleIdMatchesSpec) {
  Machine m(GetParam());
  gen_cycle_number(m, 0, 20, 21);
  gen_cycle_id(m, 10, 0);
  const auto expect = ref_cycle_id(m.config());
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    ASSERT_EQ(m.peek(Reg::R(10), pe), expect[pe]) << pe;
  }
}

TEST_P(IdsTest, ProcessorIdOnMachineMatchesHostPreload) {
  Machine on(GetParam()), host(GetParam());
  gen_processor_id(on, 0, 30, 31);
  load_processor_id_host(host, 0);
  for (int t = 0; t < on.config().dims(); ++t) {
    for (std::size_t pe = 0; pe < on.num_pes(); ++pe) {
      ASSERT_EQ(on.peek(Reg::R(t), pe), host.peek(Reg::R(t), pe))
          << "t=" << t << " pe=" << pe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IdsTest,
    ::testing::Values(BvmConfig{1, 1}, BvmConfig{1, 2}, BvmConfig{2, 2},
                      BvmConfig::complete(2), BvmConfig{3, 4},
                      BvmConfig::complete(3)),
    [](const ::testing::TestParamInfo<BvmConfig>& info) {
      return "r" + std::to_string(info.param.r) + "h" +
             std::to_string(info.param.h);
    });

TEST(IdsFig3, CycleIdPatternFor64PeCcc) {
  // The paper's Fig. 3: on the 64-PE machine the digit at (cycle i, PE j)
  // is bit j of i. Spot-check a few cells of the regenerated table.
  Machine m(BvmConfig::complete(2));
  gen_cycle_number(m, 0, 20, 21);
  gen_cycle_id(m, 10, 0);
  auto bit = [&](int cycle, int pos) {
    return m.peek(Reg::R(10), m.addr(static_cast<std::size_t>(cycle), pos));
  };
  // Cycle 0: all zero. Cycle 5 = 0101: bits at positions 0..3 = 1,0,1,0.
  for (int p = 0; p < 4; ++p) EXPECT_FALSE(bit(0, p));
  EXPECT_TRUE(bit(5, 0));
  EXPECT_FALSE(bit(5, 1));
  EXPECT_TRUE(bit(5, 2));
  EXPECT_FALSE(bit(5, 3));
  // Cycle 15 = 1111: all ones.
  for (int p = 0; p < 4; ++p) EXPECT_TRUE(bit(15, p));
}

TEST(IdsCost, GenerationIsPolylogOfMachineSize) {
  // The on-the-fly generation must not scale with n (only with Q and h ~
  // log n). Compare instruction counts across machine sizes.
  Machine small(BvmConfig::complete(2));   // 64 PEs
  Machine big(BvmConfig::complete(3));     // 2048 PEs
  gen_processor_id(small, 0, 30, 31);
  gen_processor_id(big, 0, 30, 31);
  // 32x the PEs must cost far less than 32x the instructions.
  EXPECT_LT(big.instr_count(), 8 * small.instr_count());
}

}  // namespace
}  // namespace ttp::bvm
