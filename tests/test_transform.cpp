// Instance transformations: each must produce exactly its promised effect
// on the DP table — most importantly restrict_to, whose correctness IS the
// DP's sub-problem property.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tt/generator.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/transform.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

Instance sample(std::uint64_t seed) {
  util::Rng rng(seed);
  RandomOptions opt;
  opt.num_tests = 4;
  opt.num_treatments = 4;
  return random_instance(5, opt, rng);
}

TEST(Transform, ScaleCostsScalesTable) {
  const Instance a = sample(1);
  const Instance b = scale_costs(a, 2.5);
  const auto ra = SequentialSolver().solve(a);
  const auto rb = SequentialSolver().solve(b);
  for (std::size_t s = 0; s < ra.table.cost.size(); ++s) {
    if (std::isinf(ra.table.cost[s])) {
      EXPECT_TRUE(std::isinf(rb.table.cost[s]));
    } else {
      EXPECT_NEAR(rb.table.cost[s], 2.5 * ra.table.cost[s], 1e-9);
    }
  }
}

TEST(Transform, ScaleWeightsScalesRoot) {
  const Instance a = sample(2);
  const Instance b = scale_weights(a, 3.0);
  EXPECT_NEAR(SequentialSolver().solve(b).cost,
              3.0 * SequentialSolver().solve(a).cost, 1e-9);
}

TEST(Transform, PermuteObjectsPreservesRoot) {
  const Instance a = sample(3);
  std::vector<int> perm(static_cast<std::size_t>(a.k()));
  std::iota(perm.begin(), perm.end(), 0);
  util::Rng rng(33);
  rng.shuffle(perm);
  const Instance b = permute_objects(a, perm);
  EXPECT_NEAR(SequentialSolver().solve(b).cost,
              SequentialSolver().solve(a).cost, 1e-9);
}

TEST(Transform, RestrictToIsTheDpSubProblem) {
  // C_restricted(full) == C_original(s) for every nonempty s — the
  // sub-problem property the whole recurrence stands on, now checked via a
  // completely separate instance construction.
  const Instance a = sample(4);
  const auto ra = SequentialSolver().solve(a);
  for (Mask s = 1; s <= a.universe(); s += 3) {  // sampled states
    const Instance sub = restrict_to(a, s);
    const auto rs = SequentialSolver().solve(sub);
    const double expect = ra.table.cost[s];
    if (std::isinf(expect)) {
      EXPECT_TRUE(std::isinf(rs.cost)) << util::mask_to_string(s);
    } else {
      EXPECT_NEAR(rs.cost, expect, 1e-9) << util::mask_to_string(s);
    }
  }
}

TEST(Transform, FilterActionsMonotone) {
  const Instance a = sample(5);
  // Dropping the dearest half of the treatments can only raise C(U).
  double median = 0;
  {
    std::vector<double> costs;
    for (int i = a.num_tests(); i < a.num_actions(); ++i) {
      costs.push_back(a.action(i).cost);
    }
    std::sort(costs.begin(), costs.end());
    median = costs[costs.size() / 2];
  }
  const Instance b = filter_actions(a, [&](int, const Action& act) {
    return act.is_test || act.cost <= median;
  });
  const double ca = SequentialSolver().solve(a).cost;
  const double cb = SequentialSolver().solve(b).cost;
  EXPECT_GE(cb + 1e-12, ca);
}

TEST(Transform, ClassScalingTouchesOnlyItsClass) {
  const Instance a = sample(6);
  const Instance t2 = scale_test_costs(a, 2.0);
  const Instance r2 = scale_treatment_costs(a, 2.0);
  for (int i = 0; i < a.num_actions(); ++i) {
    if (a.action(i).is_test) {
      EXPECT_EQ(t2.action(i).cost, 2.0 * a.action(i).cost);
      EXPECT_EQ(r2.action(i).cost, a.action(i).cost);
    } else {
      EXPECT_EQ(t2.action(i).cost, a.action(i).cost);
      EXPECT_EQ(r2.action(i).cost, 2.0 * a.action(i).cost);
    }
  }
  // Raising test prices pushes the optimum toward treat-first procedures:
  // cost grows, but never beyond scaling everything.
  const double base = SequentialSolver().solve(a).cost;
  const double dear_tests = SequentialSolver().solve(t2).cost;
  EXPECT_GE(dear_tests + 1e-12, base);
  EXPECT_LE(dear_tests, 2.0 * base + 1e-12);
}

TEST(Transform, RejectsBadArguments) {
  const Instance a = sample(7);
  EXPECT_THROW(scale_costs(a, 0.0), std::invalid_argument);
  EXPECT_THROW(scale_weights(a, -1.0), std::invalid_argument);
  EXPECT_THROW(permute_objects(a, {0, 1}), std::invalid_argument);
  EXPECT_THROW(permute_objects(a, {0, 0, 1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(restrict_to(a, 0), std::invalid_argument);
  EXPECT_THROW(restrict_to(a, a.universe() + 1), std::invalid_argument);
}

}  // namespace
}  // namespace ttp::tt
