// Assembler: parse the paper's §2 instruction syntax, round-trip with the
// disassembler, and execute an assembled program.
#include <gtest/gtest.h>

#include "bvm/assembler.hpp"
#include "bvm/machine.hpp"

namespace ttp::bvm {
namespace {

TEST(Assembler, ParsesBasicInstruction) {
  const Instr in = parse_instr("R[5],B = f:0xCA,g:0xF0 (R[3], A.L, B)");
  EXPECT_EQ(in.dest, Reg::R(5));
  EXPECT_EQ(in.f, kTtMux);
  EXPECT_EQ(in.g, kTtB);
  EXPECT_EQ(in.src_f, Reg::R(3));
  EXPECT_EQ(in.src_d, Reg::MakeA());
  EXPECT_EQ(in.d_nbr, Nbr::L);
  EXPECT_EQ(in.act, Act::All);
}

TEST(Assembler, ParsesActivationSets) {
  const Instr a = parse_instr("A,B = f:0xAA,g:0xF0 (A, A, B) IF {0,2,5}");
  EXPECT_EQ(a.act, Act::If);
  EXPECT_EQ(a.act_set, 0b100101u);
  const Instr n = parse_instr("A,B = f:0xAA,g:0xF0 (A, A, B) NF {1}");
  EXPECT_EQ(n.act, Act::Nf);
  EXPECT_EQ(n.act_set, 0b10u);
}

TEST(Assembler, ParsesAllNeighborTags) {
  for (const char* tag : {".S", ".P", ".L", ".XS", ".XP", ".I"}) {
    const std::string text =
        std::string("A,B = f:0xCC,g:0xF0 (A, R[1]") + tag + ", B)";
    EXPECT_NO_THROW(parse_instr(text)) << text;
  }
}

TEST(Assembler, ParsesEnableDest) {
  const Instr in = parse_instr("E,B = f:0xFF,g:0xF0 (A, A, B)");
  EXPECT_EQ(in.dest.kind, Reg::Kind::E);
}

TEST(Assembler, RejectsMalformedInput) {
  EXPECT_THROW(parse_instr("B,B = f:0x0,g:0x0 (A, A, B)"),
               std::invalid_argument);  // B as first target
  EXPECT_THROW(parse_instr("A,B = f:0x0,g:0x0 (B, A, B)"),
               std::invalid_argument);  // B as F
  EXPECT_THROW(parse_instr("A,B = f:0x0,g:0x0 (A, E, B)"),
               std::invalid_argument);  // E as operand
  EXPECT_THROW(parse_instr("A,B = f:0x0,g:0x0 (A, A, B) IF {70}"),
               std::invalid_argument);  // activation out of range
  EXPECT_THROW(parse_instr("A,B = f:0x0 (A, A, B)"), std::invalid_argument);
  EXPECT_THROW(parse_instr("A,B = f:0x0,g:0x0 (A, A, B) garbage"),
               std::invalid_argument);
}

TEST(Assembler, RoundTripsDisassembly) {
  std::vector<Instr> prog;
  Instr a = mov(Reg::R(7), Reg::MakeA(), Nbr::XS);
  a.act = Act::If;
  a.act_set = 0b11;
  prog.push_back(a);
  prog.push_back(setv(Reg::MakeE(), true));
  prog.push_back(binop(Reg::MakeA(), kTtXor3, Reg::R(1), Reg::R(2), Nbr::P));
  const std::string text = disassemble(prog);
  const auto parsed = assemble(text);
  ASSERT_EQ(parsed.size(), prog.size());
  for (std::size_t i = 0; i < prog.size(); ++i) {
    EXPECT_EQ(parsed[i].to_string(), prog[i].to_string()) << i;
  }
}

TEST(Assembler, AssemblesAndRunsProgram) {
  // Compute R[2] = R[0] XOR R[1] on every PE via an assembled listing with
  // comments and blank lines.
  const std::string src = R"(
# xor program
R[2],B = f:0x66,g:0xF0 (R[0], R[1], B)
)";
  const auto prog = assemble(src);
  ASSERT_EQ(prog.size(), 1u);
  Machine m(BvmConfig{2, 2});
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke(Reg::R(0), pe, pe & 1);
    m.poke(Reg::R(1), pe, pe & 2);
  }
  m.run(prog);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(m.peek(Reg::R(2), pe),
              static_cast<bool>(pe & 1) != static_cast<bool>((pe >> 1) & 1));
  }
}

TEST(Assembler, ReportsLineNumbers) {
  try {
    assemble("A,B = f:0xAA,g:0xF0 (A, A, B)\nbogus line\n");
    FAIL() << "expected parse failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace ttp::bvm
