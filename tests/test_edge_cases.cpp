// Edge cases across modules that the mainline suites do not reach.
#include <gtest/gtest.h>

#include <cmath>

#include "bvm/io.hpp"
#include "tt/greedy.hpp"
#include "tt/solver_bnb.hpp"
#include "tt/solver_hypercube.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

namespace ttp {
namespace {

TEST(EdgeCases, HypercubeSolverSingleAction) {
  // N = 1 forces the a = 1 padding floor (a machine never has 0 action
  // dims) and exercises the pad-treatment path.
  tt::Instance ins(2, {1.0, 2.0});
  ins.add_treatment(0b11, 1.5);
  const auto seq = tt::SequentialSolver().solve(ins);
  const auto hyp = tt::HypercubeSolver().solve(ins);
  EXPECT_DOUBLE_EQ(seq.cost, 1.5 * 3.0);
  EXPECT_EQ(tt::max_table_diff(seq.table, hyp.table), 0.0);
}

TEST(EdgeCases, GreedyOnInadequateInstanceFailsGracefully) {
  tt::Instance ins(2, {1.0, 1.0});
  ins.add_test(0b01, 1.0);
  ins.add_treatment(0b01, 1.0);  // object 1 untreatable
  const auto g = tt::greedy_solve(ins, tt::GreedyRule::kBalancedSplit);
  EXPECT_TRUE(std::isinf(g.cost));
  EXPECT_TRUE(g.tree.empty());
  const auto g2 = tt::greedy_solve(ins, tt::GreedyRule::kCheapestFirst);
  EXPECT_TRUE(std::isinf(g2.cost));
}

TEST(EdgeCases, GreedyMatchesOptimalOnForcedInstances) {
  // Exactly one applicable action at every state: greedy == optimal.
  tt::Instance ins(3, {1, 1, 1});
  ins.add_treatment(0b001, 1.0);
  ins.add_treatment(0b010, 1.0);
  ins.add_treatment(0b100, 1.0);
  const auto opt = tt::SequentialSolver().solve(ins);
  const auto g = tt::greedy_solve(ins, tt::GreedyRule::kBalancedSplit);
  EXPECT_NEAR(g.cost, opt.cost, 1e-12);
}

TEST(EdgeCases, BnbTieBreakingOnEqualActions) {
  tt::Instance ins(2, {1.0, 1.0});
  ins.add_treatment(0b11, 2.0, "first");
  ins.add_treatment(0b11, 2.0, "second");
  const auto bnb = tt::BnbSolver().solve(ins);
  EXPECT_EQ(bnb.cost, 4.0);
  EXPECT_EQ(ins.action(bnb.tree.node(bnb.tree.root()).action).name, "first");
}

TEST(EdgeCases, SerialIoOnLargerMachine) {
  // 256 PEs: the I-chain crosses word boundaries several times.
  bvm::Machine m(bvm::BvmConfig{3, 5});
  ASSERT_EQ(m.num_pes(), 256u);
  std::vector<bool> bits(m.num_pes());
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (i * 7) % 3 == 0;
  bvm::load_register_serial(m, bvm::Reg::R(2), bits);
  EXPECT_EQ(bvm::read_register_host(m, bvm::Reg::R(2)), bits);
  const auto out = bvm::read_register_serial(m, bvm::Reg::R(2));
  EXPECT_EQ(out, bits);
}

TEST(EdgeCases, PushInputBitsFeedsChain) {
  bvm::Machine m(bvm::BvmConfig{1, 1});
  m.push_input_bits({true, false, true, true});
  EXPECT_EQ(m.input_pending(), 4u);
  const bvm::Instr shift =
      bvm::mov(bvm::Reg::MakeA(), bvm::Reg::MakeA(), bvm::Nbr::I);
  for (int i = 0; i < 4; ++i) m.exec(shift);
  EXPECT_EQ(m.input_pending(), 0u);
  // After 4 shifts on a 4-PE machine the injected bits fill A in reverse
  // entry order (first-in ends up deepest).
  EXPECT_TRUE(m.peek(bvm::Reg::MakeA(), 3));
  EXPECT_FALSE(m.peek(bvm::Reg::MakeA(), 2));
  EXPECT_TRUE(m.peek(bvm::Reg::MakeA(), 1));
  EXPECT_TRUE(m.peek(bvm::Reg::MakeA(), 0));
}

TEST(EdgeCases, InstanceWithOnlyUselessTests) {
  // Tests equal to U or ∅ never split; solver must ignore them quietly.
  tt::Instance ins(2, {1.0, 1.0});
  ins.add_test(0b11, 0.1, "useless_full");
  ins.add_treatment(0b11, 2.0);
  const auto res = tt::SequentialSolver().solve(ins);
  EXPECT_DOUBLE_EQ(res.cost, 4.0);
  EXPECT_FALSE(ins.action(res.tree.node(res.tree.root()).action).is_test);
}

TEST(EdgeCases, ZeroWeightRejectedEverywhere) {
  tt::Instance ins(2, {1.0, 0.0});
  ins.add_treatment(0b11, 1.0);
  EXPECT_THROW(tt::SequentialSolver().solve(ins), std::invalid_argument);
  EXPECT_THROW(tt::BnbSolver().solve(ins), std::invalid_argument);
  EXPECT_THROW(tt::greedy_solve(ins, tt::GreedyRule::kCheapestFirst),
               std::invalid_argument);
}

TEST(EdgeCases, BvmConfigForDimsBounds) {
  EXPECT_EQ(bvm::BvmConfig::for_dims(2).dims(), 2);
  EXPECT_EQ(bvm::BvmConfig::for_dims(20).dims(), 20);
  EXPECT_THROW(bvm::BvmConfig::for_dims(40), std::invalid_argument);
}

}  // namespace
}  // namespace ttp
