// Cross-checks of the host-side solvers: sequential backward induction vs
// independent top-down recursion vs full tree enumeration, plus tree and
// table validation on random instances. These pin down the DP semantics
// before any machine simulator gets involved.
#include <gtest/gtest.h>

#include <cmath>

#include "tt/generator.hpp"
#include "tt/instance.hpp"
#include "tt/report.hpp"
#include "tt/solver_exhaustive.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/solver_threads.hpp"
#include "tt/validate.hpp"

namespace ttp::tt {
namespace {

TEST(SequentialSolver, SingleObjectSingleTreatment) {
  Instance ins(1, {2.0});
  ins.add_treatment(0b1, 3.0);
  const auto res = SequentialSolver().solve(ins);
  EXPECT_DOUBLE_EQ(res.cost, 6.0);  // t * P
  ASSERT_FALSE(res.tree.empty());
  EXPECT_EQ(res.tree.size(), 1);
}

TEST(SequentialSolver, PicksCheaperTreatment) {
  Instance ins(1, {1.0});
  ins.add_treatment(0b1, 3.0, "dear");
  ins.add_treatment(0b1, 2.0, "cheap");
  const auto res = SequentialSolver().solve(ins);
  EXPECT_DOUBLE_EQ(res.cost, 2.0);
  EXPECT_EQ(ins.action(res.tree.node(res.tree.root()).action).name, "cheap");
}

TEST(SequentialSolver, InadequateInstanceGivesInfiniteCost) {
  Instance ins(2, {1.0, 1.0});
  ins.add_test(0b01, 1.0);
  ins.add_treatment(0b01, 1.0);  // object 1 never treatable
  const auto res = SequentialSolver().solve(ins);
  EXPECT_TRUE(std::isinf(res.cost));
  EXPECT_TRUE(res.tree.empty());
}

TEST(SequentialSolver, TestThenTreatBeatsBlindTreatment) {
  // Two equally likely faults; one broad dear treatment vs test + cheap
  // targeted cures.
  Instance ins(2, {1.0, 1.0});
  ins.add_test(0b01, 0.1);
  ins.add_treatment(0b01, 1.0);
  ins.add_treatment(0b10, 1.0);
  const auto res = SequentialSolver().solve(ins);
  // Optimal: test (0.1*2) then cure each side (1*1 + 1*1) = 2.2.
  EXPECT_NEAR(res.cost, 2.2, 1e-12);
  EXPECT_TRUE(ins.action(res.tree.node(res.tree.root()).action).is_test);
}

TEST(SequentialSolver, TreatmentFailureContinuation) {
  // One treatment covers both objects of unequal priors, another only the
  // rare one. Treating broad-first can still be optimal; verify the failure
  // arc semantics produce the first-principles cost.
  Instance ins(2, {0.9, 0.1});
  ins.add_treatment(0b01, 1.0, "common");
  ins.add_treatment(0b10, 5.0, "rare");
  const auto res = SequentialSolver().solve(ins);
  // Treat "common" first: 1.0*1.0 + failure on {1}: 5*0.1 = 1.5.
  EXPECT_NEAR(res.cost, 1.5, 1e-12);
  const auto rep = validate_tree(ins, res.tree, res.cost);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
}

TEST(SequentialSolver, MatchesFirstPrinciplesTreeCost) {
  const Instance ins = fig1_example();
  const auto res = SequentialSolver().solve(ins);
  ASSERT_FALSE(res.tree.empty());
  EXPECT_NEAR(res.tree.expected_cost(ins), res.cost, 1e-12);
  const auto rep = validate_tree(ins, res.tree, res.cost);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
  const auto trep = validate_table(ins, res.table);
  EXPECT_TRUE(trep.ok) << (trep.errors.empty() ? "" : trep.errors[0]);
}

TEST(SequentialSolver, OpCountIsLayeredSweep) {
  const Instance ins = fig1_example();
  const auto res = SequentialSolver().solve(ins);
  // (2^k - 1) states, N evaluations each.
  EXPECT_EQ(res.steps.total_ops,
            ((std::uint64_t{1} << ins.k()) - 1) *
                static_cast<std::uint64_t>(ins.num_actions()));
}

TEST(RecursiveSolver, AgreesWithSequentialOnFig1) {
  const Instance ins = fig1_example();
  const auto a = SequentialSolver().solve(ins);
  const auto b = RecursiveSolver().solve(ins);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_EQ(max_table_diff(a.table, b.table), 0.0);
}

TEST(EnumerateMinCost, MatchesDpOnTinyInstances) {
  util::Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    RandomOptions opt;
    opt.num_tests = 2;
    opt.num_treatments = 2;
    const Instance ins = random_instance(3, opt, rng);
    const auto dp = SequentialSolver().solve(ins);
    const auto enumd = enumerate_min_cost(ins, (1 << ins.k()) - 1);
    if (std::isinf(dp.cost)) {
      EXPECT_FALSE(enumd.has_value());
    } else {
      ASSERT_TRUE(enumd.has_value());
      EXPECT_NEAR(*enumd, dp.cost, 1e-9) << describe(ins);
    }
  }
}

class RandomCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(RandomCrossCheck, SequentialVsRecursiveVsThreads) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  RandomOptions opt;
  opt.num_tests = 3 + GetParam() % 3;
  opt.num_treatments = 3 + GetParam() % 2;
  const int k = 4 + GetParam() % 4;  // 4..7
  const Instance ins = random_instance(k, opt, rng);

  const auto seq = SequentialSolver().solve(ins);
  const auto rec = RecursiveSolver().solve(ins);
  const auto thr = ThreadsSolver(2).solve(ins);

  EXPECT_EQ(max_table_diff(seq.table, rec.table), 0.0);
  EXPECT_EQ(max_table_diff(seq.table, thr.table), 0.0);
  EXPECT_EQ(seq.table.best_action, thr.table.best_action);

  if (!std::isinf(seq.cost)) {
    const auto rep = validate_tree(ins, seq.tree, seq.cost);
    EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
    const auto trep = validate_table(ins, seq.table);
    EXPECT_TRUE(trep.ok) << (trep.errors.empty() ? "" : trep.errors[0]);
    // Threads reconstruct the identical procedure.
    EXPECT_EQ(seq.tree.size(), thr.tree.size());
    EXPECT_NEAR(thr.tree.expected_cost(ins), seq.cost, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCrossCheck, ::testing::Range(0, 20));

TEST(ThreadsSolver, WidthOneMatchesSequential) {
  util::Rng rng(99);
  const Instance ins = random_instance(5, RandomOptions{}, rng);
  const auto seq = SequentialSolver().solve(ins);
  const auto thr = ThreadsSolver(1).solve(ins);
  EXPECT_EQ(max_table_diff(seq.table, thr.table), 0.0);
}

TEST(ThreadsSolver, PairParallelModeBitwiseIdentical) {
  // The (S,i)-pair decomposition (the paper's, on shared memory) must give
  // the same table and argmins as the state-parallel mode.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    util::Rng rng(seed);
    const Instance ins = random_instance(6, RandomOptions{}, rng);
    const auto seq = SequentialSolver().solve(ins);
    const auto pp =
        ThreadsSolver(3, ThreadsSolver::Mode::kPairParallel).solve(ins);
    EXPECT_EQ(max_table_diff(seq.table, pp.table), 0.0) << seed;
    EXPECT_EQ(seq.table.best_action, pp.table.best_action) << seed;
  }
}

TEST(SequentialSolver, LargeUniverseSmoke) {
  // k = 20: a million states — the scale where the paper's machine would
  // host one PE per (S, i). Sequential memory/time smoke.
  util::Rng rng(2020);
  RandomOptions opt;
  opt.num_tests = 4;
  opt.num_treatments = 4;
  const Instance ins = random_instance(20, opt, rng);
  const auto res = SequentialSolver().solve(ins);
  EXPECT_FALSE(std::isinf(res.cost));
  const auto rep = validate_tree(ins, res.tree, res.cost);
  EXPECT_TRUE(rep.ok);
}

TEST(Tree, PathCostDetectsMalformedTrees) {
  Instance ins(2, {1.0, 1.0});
  ins.add_treatment(0b01, 1.0);
  ins.add_treatment(0b10, 1.0);
  // A tree that forgets the failure continuation for object 1.
  std::vector<TreeNode> nodes{{0b11, 0, -1, -1}};
  Tree broken(std::move(nodes), 0);
  EXPECT_NO_THROW(broken.path_cost(ins, 0));
  EXPECT_THROW(broken.path_cost(ins, 1), std::runtime_error);
}

TEST(Tree, DepthAndRender) {
  const Instance ins = fig1_example();
  const auto res = SequentialSolver().solve(ins);
  EXPECT_GE(res.tree.depth(), 2);
  const std::string s = res.tree.to_string(ins);
  EXPECT_NE(s.find("TREAT"), std::string::npos);
}

}  // namespace
}  // namespace ttp::tt
