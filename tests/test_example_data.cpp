// The shipped .tt instance files must parse, be adequate, solve to finite
// optima on every solver family, and round-trip through the serializer.
#include <gtest/gtest.h>

#include <cmath>

#include "tt/serialize.hpp"
#include "tt/solver_bvm.hpp"
#include "tt/solver_sequential.hpp"

#ifndef TTP_EXAMPLE_DATA_DIR
#define TTP_EXAMPLE_DATA_DIR "examples/data"
#endif

namespace ttp::tt {
namespace {

class ExampleData : public ::testing::TestWithParam<const char*> {};

TEST_P(ExampleData, LoadsSolvesAndRoundTrips) {
  const std::string path =
      std::string(TTP_EXAMPLE_DATA_DIR) + "/" + GetParam();
  const Instance ins = load_file(path);
  EXPECT_TRUE(ins.every_object_treatable()) << path;

  const auto seq = SequentialSolver().solve(ins);
  EXPECT_FALSE(std::isinf(seq.cost)) << path;
  EXPECT_GT(seq.cost, 0.0);

  // Round trip.
  const Instance again = from_text(to_text(ins));
  EXPECT_EQ(SequentialSolver().solve(again).cost, seq.cost);

  // And through the bit-serial machine (fractional costs -> tolerance).
  BvmSolverOptions opt;
  opt.format = util::Fixed::Format{24, 8};
  opt.pipelined_laterals = true;
  const auto bvm = BvmSolver(opt).solve(ins);
  EXPECT_NEAR(bvm.cost, seq.cost, 0.05 * seq.cost) << path;
}

INSTANTIATE_TEST_SUITE_P(Files, ExampleData,
                         ::testing::Values("triage.tt", "server_fleet.tt",
                                           "herbarium.tt"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           return name.substr(0, name.find('.'));
                         });

}  // namespace
}  // namespace ttp::tt
