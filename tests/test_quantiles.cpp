// Tests for the quantile sketch (src/obs/quantiles.hpp): the <=1% relative
// error guarantee against exact quantiles on randomized distributions,
// bucket-boundary exactness, merging, and concurrent recording through
// ShardedQuantiles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "obs/quantiles.hpp"

namespace ttp::obs {
namespace {

/// Exact quantile with the same rank convention as QuantileSnapshot:
/// the value at rank ceil(q * n) (1-based) in sorted order.
std::uint64_t exact_quantile(std::vector<std::uint64_t> sorted, double q) {
  const std::uint64_t n = sorted.size();
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

void expect_within_one_percent(const QuantileSnapshot& snap,
                               std::vector<std::uint64_t> values,
                               const char* what) {
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::uint64_t exact = exact_quantile(values, q);
    const std::uint64_t est = snap.quantile(q);
    if (exact == 0) {
      EXPECT_EQ(est, 0u) << what << " q=" << q;
      continue;
    }
    const double rel =
        std::abs(static_cast<double>(est) - static_cast<double>(exact)) /
        static_cast<double>(exact);
    EXPECT_LE(rel, QuantileSketch::kMaxRelativeError)
        << what << " q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(QuantileSketch, BucketRoundTrip) {
  using namespace qdetail;
  // Exact region: unit buckets.
  for (std::uint64_t v = 0; v < kSubBuckets; ++v) {
    EXPECT_EQ(bucket_of(v), v);
    EXPECT_EQ(bucket_mid(bucket_of(v)), v);
  }
  // Every bucket's lo maps back to the same bucket, and mids stay within
  // the guaranteed relative error of both bucket edges.
  for (std::uint64_t v :
       {std::uint64_t{64}, std::uint64_t{65}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{1000}, std::uint64_t{123456},
        std::uint64_t{1} << 40, (std::uint64_t{1} << 40) + 12345}) {
    const std::size_t b = bucket_of(v);
    ASSERT_LT(b, kBucketCount);
    EXPECT_LE(bucket_lo(b), v);
    const double rel = std::abs(static_cast<double>(bucket_mid(b)) -
                                static_cast<double>(v)) /
                       static_cast<double>(v);
    EXPECT_LE(rel, QuantileSketch::kMaxRelativeError) << "v=" << v;
  }
}

TEST(QuantileSketch, EmptyAndSingle) {
  QuantileSketch s;
  EXPECT_EQ(s.snapshot().quantile(0.99), 0u);
  EXPECT_EQ(s.snapshot().count(), 0u);
  s.record(42);
  const QuantileSnapshot snap = s.snapshot();
  EXPECT_EQ(snap.count(), 1u);
  EXPECT_EQ(snap.sum(), 42u);
  EXPECT_EQ(snap.min(), 42u);
  EXPECT_EQ(snap.max(), 42u);
  for (const double q : {0.0, 0.5, 0.999, 1.0}) {
    EXPECT_EQ(snap.quantile(q), 42u) << q;
  }
}

TEST(QuantileSketch, UniformWithinOnePercent) {
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<std::uint64_t> dist(1, 5'000'000);
  QuantileSketch s;
  std::vector<std::uint64_t> values;
  values.reserve(100'000);
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t v = dist(rng);
    values.push_back(v);
    s.record(v);
  }
  expect_within_one_percent(s.snapshot(), values, "uniform");
}

TEST(QuantileSketch, HeavyTailWithinOnePercent) {
  // Lognormal-ish: most mass small, tail out to ~1e9 — the regime where
  // the registry's log2 histogram is uselessly coarse.
  std::mt19937_64 rng(987654321);
  std::lognormal_distribution<double> dist(5.0, 2.5);
  QuantileSketch s;
  std::vector<std::uint64_t> values;
  values.reserve(100'000);
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t v =
        static_cast<std::uint64_t>(std::llround(dist(rng))) + 1;
    values.push_back(v);
    s.record(v);
  }
  expect_within_one_percent(s.snapshot(), values, "heavy-tail");
}

TEST(QuantileSketch, SmallExactRegionIsExact) {
  QuantileSketch s;
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 0; v < 64; ++v) {
    for (int rep = 0; rep <= static_cast<int>(v); ++rep) {
      s.record(v);
      values.push_back(v);
    }
  }
  std::sort(values.begin(), values.end());
  const QuantileSnapshot snap = s.snapshot();
  for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(snap.quantile(q), exact_quantile(values, q)) << q;
  }
}

TEST(QuantileSketch, MergeMatchesCombinedRecording) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint64_t> dist(1, 1'000'000);
  QuantileSketch a, b, combined;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = dist(rng);
    (i % 2 == 0 ? a : b).record(v);
    combined.record(v);
  }
  QuantileSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const QuantileSnapshot direct = combined.snapshot();
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.sum(), direct.sum());
  EXPECT_EQ(merged.min(), direct.min());
  EXPECT_EQ(merged.max(), direct.max());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(merged.quantile(q), direct.quantile(q)) << q;
  }
}

TEST(QuantileSketch, ResetClears) {
  QuantileSketch s;
  s.record(100);
  s.record(200);
  s.reset();
  const QuantileSnapshot snap = s.snapshot();
  EXPECT_EQ(snap.count(), 0u);
  EXPECT_EQ(snap.sum(), 0u);
  EXPECT_EQ(snap.quantile(0.5), 0u);
}

TEST(QuantileSketch, ShardedConcurrentRecording) {
  ShardedQuantiles sq;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sq, t] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(t) + 1);
      std::uniform_int_distribution<std::uint64_t> dist(1, 1'000'000);
      for (int i = 0; i < kPerThread; ++i) sq.record(dist(rng));
    });
  }
  for (auto& t : threads) t.join();
  const QuantileSnapshot snap = sq.snapshot();
  EXPECT_EQ(snap.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GE(snap.min(), 1u);
  EXPECT_LE(snap.max(), 1'000'000u);
  // The p50 of that many uniform draws is within sketch error of 500k.
  const std::uint64_t p50 = snap.quantile(0.5);
  EXPECT_GT(p50, 450'000u);
  EXPECT_LT(p50, 550'000u);
}

TEST(QuantileSketch, SnapshotWhileRecordingIsConsistent) {
  // A scrape racing a writer must never corrupt: count() of the snapshot
  // equals the sum of its buckets, whatever interleaving happened.
  QuantileSketch s;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::mt19937_64 rng(1);
    std::uniform_int_distribution<std::uint64_t> dist(1, 1'000'000);
    while (!stop.load(std::memory_order_relaxed)) s.record(dist(rng));
  });
  for (int i = 0; i < 50; ++i) {
    const QuantileSnapshot snap = s.snapshot();
    // Bucket total can exceed header count (bucket bumped before count),
    // but a quantile query must still terminate and land inside min/max.
    // (min/max are themselves relaxed reads, so only check when the
    // snapshot caught them in a coherent state.)
    if (snap.count() > 0 && snap.min() <= snap.max()) {
      const std::uint64_t q = snap.quantile(0.9);
      EXPECT_GE(q, snap.min());
      EXPECT_LE(q, snap.max());
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
}  // namespace ttp::obs
