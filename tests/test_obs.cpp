// Tests for the observability layer (src/obs/): TTP_TRACE parsing, span
// nesting and step-delta accounting, the zero-allocation guarantee of the
// disabled tracer, histogram bucket edges, and the exporters — the Chrome
// trace output is parsed back with a tiny JSON reader to pin down validity.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/counters.hpp"

// --- allocation counting (for the disabled-tracer zero-allocation test) ----
//
// Replacing the global operator new is binary-wide, so the counter is
// thread_local: other test threads cannot perturb a measurement taken on
// this thread.
static thread_local std::uint64_t t_alloc_count = 0;

// GCC pairs these frees against the *default* operator new at some inlined
// call sites and warns; the replacement is malloc-backed, so free is right.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace ttp::obs {
namespace {

// --- a minimal JSON reader, enough to validate exporter output --------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue* find(const std::string& key) const {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }
  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.str = string();
      return v;
    }
    if (consume_literal("true")) {
      v.type = JsonValue::Type::kBool;
      v.b = true;
      return v;
    }
    if (consume_literal("false")) {
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (consume_literal("null")) return v;
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit");
          }
          out += static_cast<char>(cp);  // exporter only emits < 0x20
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.num = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                        nullptr);
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// Every test leaves the global tracer off so the rest of the suite (and the
// exit-time flush) is unaffected.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override { tracer().configure(TraceConfig{}); }
};

// --- TTP_TRACE parsing ------------------------------------------------------

TEST_F(ObsTest, ParseOffSpellings) {
  for (const char* v : {"", "off", "none", "0"}) {
    EXPECT_EQ(TraceConfig::parse(v).mode, TraceMode::kOff) << v;
  }
}

TEST_F(ObsTest, ParseModesAndPaths) {
  EXPECT_EQ(TraceConfig::parse("summary").mode, TraceMode::kSummary);
  EXPECT_EQ(TraceConfig::parse("spans").mode, TraceMode::kSpans);

  const TraceConfig chrome = TraceConfig::parse("chrome:/tmp/out.json");
  EXPECT_EQ(chrome.mode, TraceMode::kChrome);
  EXPECT_EQ(chrome.path, "/tmp/out.json");

  const TraceConfig jsonl = TraceConfig::parse("jsonl:trace.jsonl");
  EXPECT_EQ(jsonl.mode, TraceMode::kJsonl);
  EXPECT_EQ(jsonl.path, "trace.jsonl");
}

TEST_F(ObsTest, ParseInvalidThrows) {
  EXPECT_THROW(TraceConfig::parse("bogus"), std::invalid_argument);
  EXPECT_THROW(TraceConfig::parse("Chrome:/tmp/x"), std::invalid_argument);
  EXPECT_THROW(TraceConfig::parse("summary "), std::invalid_argument);
  // Prefix forms demand a non-empty path.
  EXPECT_THROW(TraceConfig::parse("chrome:"), std::invalid_argument);
  EXPECT_THROW(TraceConfig::parse("jsonl:"), std::invalid_argument);
}

TEST_F(ObsTest, FromEnvNeverThrows) {
  ::setenv("TTP_TRACE", "definitely-not-a-mode", 1);
  EXPECT_EQ(TraceConfig::from_env().mode, TraceMode::kOff);
  ::setenv("TTP_TRACE", "summary", 1);
  EXPECT_EQ(TraceConfig::from_env().mode, TraceMode::kSummary);
  ::unsetenv("TTP_TRACE");
  EXPECT_EQ(TraceConfig::from_env().mode, TraceMode::kOff);
}

// --- span recording ---------------------------------------------------------

TEST_F(ObsTest, SpanNestingAndStepDeltas) {
  tracer().configure(TraceConfig{TraceMode::kSpans, ""});
  util::StepCounter sc;
  {
    TTP_TRACE_SPAN(outer, "outer", sc);
    outer.attr("k", 7);
    sc.step(10, /*routed=*/true);
    {
      TTP_TRACE_SPAN(inner, "inner", sc);
      sc.step(5);
      sc.step(5);
    }
    {
      TTP_TRACE_SPAN(sibling, "sibling", sc);
      sibling.attr("note", "second child");
    }
  }
  const std::vector<SpanRecord> spans = tracer().snapshot();
  ASSERT_EQ(spans.size(), 3u);

  const SpanRecord& outer = spans[0];
  const SpanRecord& inner = spans[1];
  const SpanRecord& sibling = spans[2];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(outer.depth, 0);
  EXPECT_FALSE(outer.open);
  ASSERT_EQ(outer.attrs.size(), 1u);
  EXPECT_EQ(outer.attrs[0].first, "k");
  EXPECT_EQ(outer.attrs[0].second, "7");

  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(sibling.parent, outer.id);
  EXPECT_EQ(sibling.depth, 1);

  // Step accounting: outer saw all three parallel steps, inner only its two.
  EXPECT_TRUE(outer.has_steps);
  EXPECT_EQ(outer.parallel_delta(), 3u);
  EXPECT_EQ(outer.routed_delta(), 1u);
  EXPECT_EQ(outer.ops_delta(), 20u);
  EXPECT_EQ(inner.parallel_delta(), 2u);
  EXPECT_EQ(inner.ops_delta(), 10u);
  EXPECT_EQ(sibling.parallel_delta(), 0u);
  EXPECT_GE(outer.wall_ns(), inner.wall_ns());
}

TEST_F(ObsTest, FinishIsIdempotentAndEndsNesting) {
  tracer().configure(TraceConfig{TraceMode::kSpans, ""});
  util::StepCounter sc;
  TTP_TRACE_SPAN(first, "first", sc);
  sc.step(1);
  first.finish();
  first.finish();  // second call must be a no-op
  sc.step(1);      // after finish: not charged to "first"
  TTP_TRACE_SPAN(second, "second", sc);
  second.finish();

  const std::vector<SpanRecord> spans = tracer().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].parallel_delta(), 1u);
  EXPECT_FALSE(spans[0].open);
  // "second" started after "first" finished, so it is a root, not a child.
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].depth, 0);
}

TEST_F(ObsTest, ConfigureInvalidatesOpenSpans) {
  tracer().configure(TraceConfig{TraceMode::kSpans, ""});
  util::StepCounter sc;
  {
    TTP_TRACE_SPAN(stale, "stale", sc);
    tracer().configure(TraceConfig{TraceMode::kSpans, ""});
    // `stale` now ends into the new generation: it must not corrupt it.
  }
  TTP_TRACE_SPAN(fresh, "fresh", sc);
  fresh.finish();
  const std::vector<SpanRecord> spans = tracer().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "fresh");
  EXPECT_EQ(spans[0].parent, 0u);
}

TEST_F(ObsTest, DisabledTracerRecordsAndAllocatesNothing) {
  tracer().configure(TraceConfig{});  // off
  ASSERT_FALSE(tracer().enabled());
  util::StepCounter sc;
  const std::uint64_t before = t_alloc_count;
  for (int i = 0; i < 1000; ++i) {
    TTP_TRACE_SPAN(span, "never.recorded", sc);
    span.attr("i", i);
    span.attr("label", "text");
    TTP_METRIC_ADD("never.counter", 1);
    TTP_METRIC_HIST("never.hist", 42);
    TTP_METRIC_GAUGE("never.gauge", 1.0);
    sc.step(1);
  }
  EXPECT_EQ(t_alloc_count, before) << "disabled tracing must not allocate";
  EXPECT_TRUE(tracer().snapshot().empty());
  EXPECT_TRUE(tracer().metrics().empty());
}

// --- histogram bucketing ----------------------------------------------------

TEST_F(ObsTest, HistogramBucketEdges) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  for (int b = 1; b < 64; ++b) {
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    const std::uint64_t hi = (std::uint64_t{1} << b) - 1;
    EXPECT_EQ(Histogram::bucket_of(lo), b) << b;
    EXPECT_EQ(Histogram::bucket_of(hi), b) << b;
    EXPECT_EQ(Histogram::bucket_lo(b), lo) << b;
    EXPECT_EQ(Histogram::bucket_hi(b), hi) << b;
  }
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 63), 64);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            64);
  EXPECT_EQ(Histogram::bucket_hi(64),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(Histogram::kBuckets, 65);
}

TEST_F(ObsTest, HistogramStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), std::numeric_limits<std::uint64_t>::max());
  for (const std::uint64_t v : {0u, 1u, 3u, 8u, 8u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 20u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(2), 1u);  // 3
  EXPECT_EQ(h.bucket_count(4), 2u);  // 8, 8
  const Histogram copy = h;
  EXPECT_EQ(copy.count(), 5u);
  EXPECT_EQ(copy.sum(), 20u);
  EXPECT_EQ(copy.bucket_count(4), 2u);
}

// --- registry ---------------------------------------------------------------

TEST_F(ObsTest, RegistryCounterMapCompatibility) {
  MetricsRegistry reg;
  reg.add("zebra", 2);
  reg.add("alpha", 1);
  reg.add("zebra", 3);
  EXPECT_EQ(reg.get("zebra"), 5u);
  EXPECT_EQ(reg.get("alpha"), 1u);
  EXPECT_EQ(reg.get("missing"), 0u);
  const auto all = reg.all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "alpha");  // sorted by name, like CounterMap
  EXPECT_EQ(all[1].first, "zebra");

  Counter& c = reg.counter("zebra");
  MetricsRegistry moved = std::move(reg);
  c.add(1);  // reference must survive the move
  EXPECT_EQ(moved.get("zebra"), 6u);
}

// --- exporters --------------------------------------------------------------

TEST_F(ObsTest, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\n\t\r"), "x\\n\\t\\r");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST_F(ObsTest, JsonEscapeEdgeCases) {
  // Embedded NUL must not truncate the string.
  EXPECT_EQ(json_escape(std::string_view("a\0b", 3)), "a\\u0000b");
  // DEL (0x7F) is a control character in JSON-consumer practice; escape it.
  EXPECT_EQ(json_escape("a\x7f" "b"), "a\\u007fb");
  // Multi-byte UTF-8 passes through verbatim — escaping the bytes
  // individually would corrupt the sequence.
  EXPECT_EQ(json_escape("k\xc3\xa9"), "k\xc3\xa9");          // é
  EXPECT_EQ(json_escape("\xe2\x86\x92"), "\xe2\x86\x92");    // →
  EXPECT_EQ(json_escape("\xf0\x9f\x94\xa5"), "\xf0\x9f\x94\xa5");  // 🔥
  // Boundary control chars around the 0x20 threshold.
  EXPECT_EQ(json_escape(std::string_view("\x1f", 1)), "\\u001f");
  EXPECT_EQ(json_escape(" "), " ");
}

TEST_F(ObsTest, RegistryPrintIsNameSortedAcrossKinds) {
  MetricsRegistry reg;
  reg.counter("zebra.count").add(3);
  reg.gauge("alpha.gauge").set(1.5);
  reg.histogram("mid.hist").record(7);
  reg.counter("alpha.count").add(1);
  std::ostringstream os;
  reg.print(os, "");
  const std::string out = os.str();
  // All four lines present, in sorted name order regardless of kind.
  const std::size_t a = out.find("alpha.count");
  const std::size_t g = out.find("alpha.gauge");
  const std::size_t h = out.find("mid.hist");
  const std::size_t z = out.find("zebra.count");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(g, std::string::npos);
  ASSERT_NE(h, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, g);
  EXPECT_LT(g, h);
  EXPECT_LT(h, z);
  // Byte-stable: a second print renders identically.
  std::ostringstream os2;
  reg.print(os2, "");
  EXPECT_EQ(out, os2.str());
}

// --- request trace IDs ------------------------------------------------------

TEST_F(ObsTest, TraceIdsAreUniqueAndNonzero) {
  const std::uint64_t a = next_trace_id();
  const std::uint64_t b = next_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(trace_hex(a).size(), 16u);
  EXPECT_EQ(trace_from_hex(trace_hex(a)), a);
  EXPECT_EQ(trace_from_hex("0x" + trace_hex(b)), b);
  EXPECT_EQ(trace_from_hex("not-hex"), 0u);
  EXPECT_EQ(trace_from_hex(""), 0u);
  EXPECT_EQ(trace_from_hex("12345678901234567"), 0u);  // 17 digits
}

TEST_F(ObsTest, TraceBindingScopesAndNests) {
  EXPECT_EQ(current_trace(), 0u);
  {
    TraceBinding outer(42);
    EXPECT_EQ(current_trace(), 42u);
    {
      TraceBinding inner(7);
      EXPECT_EQ(current_trace(), 7u);
    }
    EXPECT_EQ(current_trace(), 42u);
  }
  EXPECT_EQ(current_trace(), 0u);
}

TEST_F(ObsTest, SpansInheritBoundTrace) {
  tracer().configure(TraceConfig{TraceMode::kSpans, ""});
  {
    TTP_TRACE_SPAN(unbound, "no.trace");
  }
  {
    TraceBinding bind(0xabcdef12u);
    TTP_TRACE_SPAN(bound, "with.trace");
  }
  const auto spans = tracer().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace, 0u);
  EXPECT_EQ(spans[1].trace, 0xabcdef12u);
  // snapshot_trace filters to exactly the bound span.
  const auto filtered = tracer().snapshot_trace(0xabcdef12u);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].name, "with.trace");
}

TEST_F(ObsTest, JsonlCarriesTraceField) {
  tracer().configure(TraceConfig{TraceMode::kSpans, ""});
  {
    TraceBinding bind(0x1234u);
    TTP_TRACE_SPAN(s, "traced.span");
  }
  std::ostringstream os;
  write_jsonl(os, tracer().snapshot());
  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const JsonValue v = JsonParser(line).parse();
  ASSERT_EQ(v.type, JsonValue::Type::kObject);
  const JsonValue* args = v.find("args");
  ASSERT_NE(args, nullptr);
  const JsonValue* trace = args->find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->str, trace_hex(0x1234u));
}

std::vector<SpanRecord> record_sample_spans() {
  tracer().configure(TraceConfig{TraceMode::kSpans, ""});
  util::StepCounter sc;
  {
    TTP_TRACE_SPAN(root, "solve.test", sc);
    root.attr("k", 3);
    root.attr("label", "quote\" and \\slash");
    for (int j = 1; j <= 2; ++j) {
      TTP_TRACE_SPAN(layer, "layer", sc);
      layer.attr("j", j);
      sc.step(4, /*routed=*/true);
    }
  }
  return tracer().snapshot();
}

TEST_F(ObsTest, ChromeTraceIsValidJson) {
  const std::vector<SpanRecord> spans = record_sample_spans();
  std::ostringstream os;
  write_chrome_trace(os, spans);

  const JsonValue doc = JsonParser(os.str()).parse();
  ASSERT_EQ(doc.type, JsonValue::Type::kObject);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);
  // Metadata event + 3 spans.
  ASSERT_EQ(events->arr.size(), 4u);

  std::map<std::string, int> names;
  for (const JsonValue& e : events->arr) {
    ASSERT_EQ(e.type, JsonValue::Type::kObject);
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") continue;
    EXPECT_EQ(ph->str, "X");
    ASSERT_NE(e.find("name"), nullptr);
    ++names[e.find("name")->str];
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("dur"), nullptr);
    EXPECT_GE(e.find("dur")->num, 0.0);
    const JsonValue* args = e.find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_EQ(args->type, JsonValue::Type::kObject);
    ASSERT_NE(args->find("parallel_steps"), nullptr);
    if (e.find("name")->str == "solve.test") {
      // Two layers, each one routed step(4): parallel=2, routed=2, ops=8.
      EXPECT_EQ(args->find("parallel_steps")->num, 2.0);
      EXPECT_EQ(args->find("route_steps")->num, 2.0);
      EXPECT_EQ(args->find("total_ops")->num, 8.0);
      ASSERT_NE(args->find("label"), nullptr);
      EXPECT_EQ(args->find("label")->str, "quote\" and \\slash");
    }
  }
  EXPECT_EQ(names["solve.test"], 1);
  EXPECT_EQ(names["layer"], 2);
}

TEST_F(ObsTest, ChromeTraceFlushWritesFile) {
  const std::string path = ::testing::TempDir() + "ttp_obs_chrome.json";
  tracer().configure(TraceConfig{TraceMode::kChrome, path});
  util::StepCounter sc;
  {
    TTP_TRACE_SPAN(root, "flush.root", sc);
    sc.step(1);
  }
  tracer().flush();

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream content;
  content << in.rdbuf();
  const JsonValue doc = JsonParser(content.str()).parse();
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->arr.size(), 2u);  // metadata + the one span
  EXPECT_EQ(events->arr[1].find("name")->str, "flush.root");
}

TEST_F(ObsTest, JsonlEveryLineParses) {
  const std::vector<SpanRecord> spans = record_sample_spans();
  std::ostringstream os;
  write_jsonl(os, spans);
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const JsonValue v = JsonParser(line).parse();
    ASSERT_EQ(v.type, JsonValue::Type::kObject) << line;
    ASSERT_NE(v.find("name"), nullptr);
    ASSERT_NE(v.find("id"), nullptr);
    ASSERT_NE(v.find("parent"), nullptr);
    ASSERT_NE(v.find("args"), nullptr);
    EXPECT_EQ(v.find("open")->type, JsonValue::Type::kBool);
    ++lines;
  }
  EXPECT_EQ(lines, spans.size());
}

TEST_F(ObsTest, SpanTreeWriterIndentsChildren) {
  const std::vector<SpanRecord> spans = record_sample_spans();
  std::ostringstream os;
  write_span_tree(os, spans);
  const std::string out = os.str();
  EXPECT_NE(out.find("solve.test"), std::string::npos);
  EXPECT_NE(out.find("\n  layer j=1"), std::string::npos);
  EXPECT_NE(out.find("\n  layer j=2"), std::string::npos);
  EXPECT_NE(out.find("steps=2"), std::string::npos);
}

}  // namespace
}  // namespace ttp::obs
