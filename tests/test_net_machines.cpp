// Hypercube and CCC machine tests. The central property: for any
// ASCEND/DESCEND algorithm, the CCC machine (pipelined or not) produces
// bit-identical results to the hypercube machine, at a bounded constant
// slowdown in parallel steps (paper §3, citing Preparata-Vuillemin).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "net/ccc.hpp"
#include "net/hypercube.hpp"

namespace ttp::net {
namespace {

struct Item {
  std::uint64_t v = 0;
};

// A dimension-dependent, order-sensitive mixing op: distinguishes wrong
// pairing, wrong order, and wrong lo/hi roles.
void mix(int dim, Item& lo, Item& hi) {
  const std::uint64_t a = lo.v, b = hi.v;
  lo.v = a * 1000003u + b * 31u + static_cast<std::uint64_t>(dim) + 1;
  hi.v = b * 999979u + a * 37u + 17u * static_cast<std::uint64_t>(dim) + 2;
}

template <typename M>
void seed(M& m) {
  for (std::size_t i = 0; i < m.size(); ++i) m.at(i).v = i * 2654435761u + 1;
}

TEST(HypercubeTopology, SizesAndLinks) {
  HypercubeTopology t{4};
  EXPECT_EQ(t.size(), 16u);
  EXPECT_EQ(t.links(), 32u);  // n log n / 2
  EXPECT_EQ(t.neighbor(5, 1), 7u);
}

TEST(HypercubeMachine, DimStepPairsEveryPeOnce) {
  HypercubeMachine<Item> m(3);
  seed(m);
  std::vector<std::uint64_t> before(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) before[i] = m.at(i).v;
  m.dim_step(1, [](int, Item& lo, Item& hi) { std::swap(lo.v, hi.v); });
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m.at(i).v, before[i ^ 2u]) << i;
  }
  EXPECT_EQ(m.steps().parallel_steps, 1u);
  EXPECT_EQ(m.steps().route_steps, 1u);
}

TEST(HypercubeMachine, AscendMinReduceLeavesGlobalMinEverywhere) {
  HypercubeMachine<Item> m(5);
  seed(m);
  std::uint64_t expect = ~std::uint64_t{0};
  for (std::size_t i = 0; i < m.size(); ++i) {
    expect = std::min(expect, m.at(i).v);
  }
  m.ascend([](int, Item& lo, Item& hi) {
    const std::uint64_t mn = std::min(lo.v, hi.v);
    lo.v = hi.v = mn;
  });
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.at(i).v, expect);
  EXPECT_EQ(m.steps().parallel_steps, 5u);
}

TEST(CccConfig, PaperLinkCount) {
  // Complete CCC: 3n/2 links, the abstract's headline.
  const CccConfig cfg = CccConfig::complete(2);  // 64 PEs
  EXPECT_EQ(cfg.size(), 64u);
  EXPECT_EQ(cfg.links(), 96u);
  EXPECT_EQ(cfg.links() * 2, 3 * cfg.size());
}

TEST(CccConfig, RejectsBadShapes) {
  EXPECT_THROW(CccMachine<Item>(CccConfig{2, 5}), std::invalid_argument);
  EXPECT_THROW(CccMachine<Item>(CccConfig{0, 1}), std::invalid_argument);
}

class CccVsHypercube : public ::testing::TestWithParam<CccConfig> {};

TEST_P(CccVsHypercube, AscendMatches) {
  const CccConfig cfg = GetParam();
  HypercubeMachine<Item> hm(cfg.dims());
  CccMachine<Item> cm(cfg);
  seed(hm);
  seed(cm);
  hm.ascend(mix);
  cm.ascend(mix);
  for (std::size_t i = 0; i < hm.size(); ++i) {
    ASSERT_EQ(cm.at(i).v, hm.at(i).v) << "PE " << i;
  }
}

TEST_P(CccVsHypercube, AscendUnpipelinedMatches) {
  const CccConfig cfg = GetParam();
  HypercubeMachine<Item> hm(cfg.dims());
  CccMachine<Item> cm(cfg);
  seed(hm);
  seed(cm);
  hm.ascend(mix);
  cm.ascend_unpipelined(mix);
  for (std::size_t i = 0; i < hm.size(); ++i) {
    ASSERT_EQ(cm.at(i).v, hm.at(i).v) << "PE " << i;
  }
}

TEST_P(CccVsHypercube, DescendMatches) {
  const CccConfig cfg = GetParam();
  HypercubeMachine<Item> hm(cfg.dims());
  CccMachine<Item> cm(cfg);
  seed(hm);
  seed(cm);
  hm.descend(mix);
  cm.descend(mix);
  for (std::size_t i = 0; i < hm.size(); ++i) {
    ASSERT_EQ(cm.at(i).v, hm.at(i).v) << "PE " << i;
  }
}

TEST_P(CccVsHypercube, AscendRangeMatchesSegments) {
  const CccConfig cfg = GetParam();
  const int dims = cfg.dims();
  for (int split = 0; split <= dims; ++split) {
    HypercubeMachine<Item> hm(dims);
    CccMachine<Item> cm(cfg);
    seed(hm);
    seed(cm);
    // Hypercube: dims [split, dims) then [0, split) — two ascending runs.
    for (int d = split; d < dims; ++d) hm.dim_step(d, mix);
    for (int d = 0; d < split; ++d) hm.dim_step(d, mix);
    cm.ascend_range(split, dims, mix);
    cm.ascend_range(0, split, mix);
    for (std::size_t i = 0; i < hm.size(); ++i) {
      ASSERT_EQ(cm.at(i).v, hm.at(i).v) << "split " << split << " PE " << i;
    }
  }
}

TEST_P(CccVsHypercube, PipelinedSlowdownWithinPaperBand) {
  const CccConfig cfg = GetParam();
  HypercubeMachine<Item> hm(cfg.dims());
  CccMachine<Item> cm(cfg);
  seed(hm);
  seed(cm);
  hm.ascend(mix);
  cm.ascend(mix);
  const double slowdown =
      static_cast<double>(cm.steps().parallel_steps) /
      static_cast<double>(hm.steps().parallel_steps);
  // Paper §3: "a slowdown of a factor of 4 to 6, regardless of network
  // sizes". Allow a modest implementation margin.
  EXPECT_GE(slowdown, 1.5);
  EXPECT_LE(slowdown, 8.0);
}

TEST_P(CccVsHypercube, PipelinedBeatsUnpipelined) {
  const CccConfig cfg = GetParam();
  if (cfg.h < 3) GTEST_SKIP() << "pipelining pays off only with several laterals";
  CccMachine<Item> pipelined(cfg), naive(cfg);
  seed(pipelined);
  seed(naive);
  pipelined.ascend(mix);
  naive.ascend_unpipelined(mix);
  EXPECT_LT(pipelined.steps().parallel_steps, naive.steps().parallel_steps);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CccVsHypercube,
    ::testing::Values(CccConfig{1, 1}, CccConfig{1, 2}, CccConfig{2, 1},
                      CccConfig{2, 3}, CccConfig::complete(2), CccConfig{3, 4},
                      CccConfig{3, 7}, CccConfig::complete(3)),
    [](const ::testing::TestParamInfo<CccConfig>& info) {
      return "r" + std::to_string(info.param.r) + "h" +
             std::to_string(info.param.h);
    });

TEST(CccMachine, LowDimExchangeAloneMatchesHypercubeDim) {
  const CccConfig cfg{3, 2};
  for (int b = 0; b < cfg.r; ++b) {
    HypercubeMachine<Item> hm(cfg.dims());
    CccMachine<Item> cm(cfg);
    seed(hm);
    seed(cm);
    hm.dim_step(b, mix);
    cm.low_dim_exchange(b, mix);
    for (std::size_t i = 0; i < hm.size(); ++i) {
      ASSERT_EQ(cm.at(i).v, hm.at(i).v) << "b=" << b << " PE " << i;
    }
  }
}

}  // namespace
}  // namespace ttp::net
