// dim_exchange_read: every PE must end up with its hypercube partner's
// value, for every dimension, on every machine shape — the primitive the
// whole TT microprogram stands on.
#include <gtest/gtest.h>

#include "bvm/microcode/exchange.hpp"
#include "util/rng.hpp"

namespace ttp::bvm {
namespace {

class ExchangeTest : public ::testing::TestWithParam<BvmConfig> {};

TEST_P(ExchangeTest, PartnerValuesForEveryDim) {
  const BvmConfig cfg = GetParam();
  Machine m(cfg);
  const int len = 7;
  const Field src{0, len}, dst{len, len};
  const int tmp = 2 * len;

  util::Rng rng(42);
  std::vector<std::uint64_t> vals(m.num_pes());
  for (auto& v : vals) v = rng.uniform(0, (1u << len) - 1);

  for (int d = 0; d < cfg.dims(); ++d) {
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      m.poke_value(src.base, len, pe, vals[pe]);
    }
    dim_exchange_read(m, d, src, dst, tmp);
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      const std::size_t partner = pe ^ (std::size_t{1} << d);
      ASSERT_EQ(m.peek_value(dst.base, len, pe), vals[partner])
          << "dim " << d << " pe " << pe;
    }
    // Source must be untouched.
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      ASSERT_EQ(m.peek_value(src.base, len, pe), vals[pe]);
    }
  }
}

TEST_P(ExchangeTest, CostModelMatchesExecution) {
  const BvmConfig cfg = GetParam();
  Machine m(cfg);
  const Field src{0, 5}, dst{5, 5};
  for (int d = 0; d < cfg.dims(); ++d) {
    const auto before = m.instr_count();
    dim_exchange_read(m, d, src, dst, 10);
    EXPECT_EQ(m.instr_count() - before, dim_exchange_cost(cfg, d, 5))
        << "dim " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExchangeTest,
    ::testing::Values(BvmConfig{1, 1}, BvmConfig{1, 2}, BvmConfig{2, 2},
                      BvmConfig::complete(2), BvmConfig{3, 4},
                      BvmConfig::complete(3)),
    [](const ::testing::TestParamInfo<BvmConfig>& info) {
      return "r" + std::to_string(info.param.r) + "h" +
             std::to_string(info.param.h);
    });

TEST(Exchange, RejectsMissingLateral) {
  Machine m(BvmConfig{2, 2});  // dims = 4, laterals at cycle bits 0..1
  const Field src{0, 1}, dst{1, 1};
  EXPECT_THROW(dim_exchange_read(m, 4, src, dst, 2), std::invalid_argument);
  EXPECT_THROW(dim_exchange_read(m, -1, src, dst, 2), std::invalid_argument);
}

}  // namespace
}  // namespace ttp::bvm
