// Coverage for the reporting/counter utilities and the §4 schedules with a
// caller-supplied combine function.
#include <gtest/gtest.h>

#include <sstream>

#include "net/schedule.hpp"
#include "tt/report.hpp"
#include "tt/solver_sequential.hpp"
#include "util/counters.hpp"

namespace ttp {
namespace {

TEST(Report, DescribeListsEveryAction) {
  const tt::Instance ins = tt::fig1_example();
  const std::string d = tt::describe(ins);
  for (int i = 0; i < ins.num_actions(); ++i) {
    EXPECT_NE(d.find(ins.action(i).name), std::string::npos) << i;
  }
  EXPECT_NE(d.find("k=4"), std::string::npos);
}

TEST(Report, PrintResultCoversFeasibleAndInfeasible) {
  const tt::Instance ins = tt::fig1_example();
  const auto res = tt::SequentialSolver().solve(ins);
  std::ostringstream os;
  tt::print_result(os, ins, res, "seq");
  EXPECT_NE(os.str().find("C(U) = 4.05"), std::string::npos);
  EXPECT_NE(os.str().find("optimal procedure"), std::string::npos);

  tt::Instance bad(2, {1.0, 1.0});
  bad.add_treatment(0b01, 1.0);
  const auto rbad = tt::SequentialSolver().solve(bad);
  std::ostringstream os2;
  tt::print_result(os2, bad, rbad, "seq");
  EXPECT_NE(os2.str().find("no successful procedure"), std::string::npos);
}

TEST(Counters, StepCounterAccumulates) {
  util::StepCounter a;
  a.step(10, true);
  a.step(5, false);
  EXPECT_EQ(a.parallel_steps, 2u);
  EXPECT_EQ(a.route_steps, 1u);
  EXPECT_EQ(a.total_ops, 15u);
  util::StepCounter b;
  b.step(1);
  b += a;
  EXPECT_EQ(b.parallel_steps, 3u);
  EXPECT_EQ(b.total_ops, 16u);
  a.reset();
  EXPECT_EQ(a.parallel_steps, 0u);
}

TEST(Counters, CounterMapBasics) {
  util::CounterMap m;
  EXPECT_EQ(m.get("missing"), 0u);
  m.add("x", 3);
  m.add("x", 4);
  EXPECT_EQ(m.get("x"), 7u);
  EXPECT_EQ(m.all().size(), 1u);
  m.reset();
  EXPECT_TRUE(m.all().empty());
}

TEST(Schedule, Propagation1CustomCombine) {
  // Sum-combine instead of the default OR: the level-up values add.
  net::HypercubeMachine<net::FlowState> m(3);
  for (std::size_t p : {1u, 2u, 4u}) {
    m.at(p).sender = true;
    m.at(p).value = 10 * p;
  }
  net::propagation1_round(
      m, nullptr, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  // PE {0,1} = 0b011 receives 10 + 20.
  EXPECT_EQ(m.at(0b011).value, 30u);
  EXPECT_EQ(m.at(0b111).value, 0u);  // two levels up: untouched this round
}

TEST(Schedule, Propagation2CustomCombine) {
  net::HypercubeMachine<net::FlowState> m(3);
  m.at(1).sender = true;
  m.at(1).value = 5;
  m.at(2).sender = true;
  m.at(2).value = 7;
  net::propagation2(
      m, nullptr, [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(m.at(0b011).value, 12u);  // both singletons flow in
}

}  // namespace
}  // namespace ttp
