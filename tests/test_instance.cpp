#include "tt/instance.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ttp::tt {
namespace {

TEST(Instance, ConstructionAndAccessors) {
  Instance ins(3, {0.5, 0.3, 0.2});
  EXPECT_EQ(ins.k(), 3);
  EXPECT_EQ(ins.universe(), 0b111u);
  EXPECT_EQ(ins.num_actions(), 0);
  EXPECT_DOUBLE_EQ(ins.weight(1), 0.3);
}

TEST(Instance, RejectsBadConstruction) {
  EXPECT_THROW(Instance(0, {}), std::invalid_argument);
  EXPECT_THROW(Instance(25, std::vector<double>(25, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(Instance(3, {1.0, 1.0}), std::invalid_argument);
}

TEST(Instance, TestsKeptBeforeTreatments) {
  Instance ins(3, {1, 1, 1});
  ins.add_treatment(0b001, 1.0);
  const int t0 = ins.add_test(0b011, 1.0);
  ins.add_treatment(0b110, 1.0);
  const int t1 = ins.add_test(0b101, 1.0);
  EXPECT_EQ(t0, 0);
  EXPECT_EQ(t1, 1);
  EXPECT_EQ(ins.num_tests(), 2);
  EXPECT_EQ(ins.num_treatments(), 2);
  EXPECT_TRUE(ins.action(0).is_test);
  EXPECT_TRUE(ins.action(1).is_test);
  EXPECT_FALSE(ins.action(2).is_test);
  EXPECT_FALSE(ins.action(3).is_test);
  ins.check();
}

TEST(Instance, SubsetWeightMatchesTable) {
  Instance ins(4, {0.1, 0.2, 0.3, 0.4});
  const auto& table = ins.subset_weight_table();
  ASSERT_EQ(table.size(), 16u);
  for (Mask s = 0; s < 16; ++s) {
    EXPECT_DOUBLE_EQ(table[s], ins.subset_weight(s)) << "mask " << s;
  }
  EXPECT_DOUBLE_EQ(table[0], 0.0);
  EXPECT_DOUBLE_EQ(table[0b1111], 1.0);
}

TEST(Instance, CheckRejectsBadData) {
  Instance bad_weight(2, {1.0, 0.0});
  EXPECT_THROW(bad_weight.check(), std::invalid_argument);

  Instance bad_set(2, {1.0, 1.0});
  bad_set.add_test(0b111, 1.0);  // outside 2-object universe
  EXPECT_THROW(bad_set.check(), std::invalid_argument);

  Instance bad_cost(2, {1.0, 1.0});
  bad_cost.add_treatment(0b01, -1.0);
  EXPECT_THROW(bad_cost.check(), std::invalid_argument);
}

TEST(Instance, EveryObjectTreatable) {
  Instance ins(3, {1, 1, 1});
  ins.add_treatment(0b011, 1.0);
  EXPECT_FALSE(ins.every_object_treatable());
  ins.add_treatment(0b100, 1.0);
  EXPECT_TRUE(ins.every_object_treatable());
}

TEST(Instance, Fig1ExampleIsWellFormed) {
  const Instance ins = fig1_example();
  EXPECT_EQ(ins.k(), 4);
  EXPECT_EQ(ins.num_tests(), 2);
  EXPECT_EQ(ins.num_treatments(), 3);
  EXPECT_TRUE(ins.every_object_treatable());
}

}  // namespace
}  // namespace ttp::tt
