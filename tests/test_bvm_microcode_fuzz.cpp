// Microcode-composition fuzzing: random SEQUENCES of microcode operations
// (saturating add/sub, multiply, compare, select, popcount-increment,
// dimension exchange) applied to several fields, mirrored against shadow
// host arrays. The ISA-level fuzz (test_bvm_differential) pins single
// instructions; this pins the composition semantics the TT program relies
// on — especially B-register discipline across consecutive microprograms.
#include <gtest/gtest.h>

#include <vector>

#include "bvm/microcode/arith.hpp"
#include "bvm/microcode/exchange.hpp"
#include "util/rng.hpp"

namespace ttp::bvm {
namespace {

constexpr int kBits = 9;

struct Shadow {
  std::vector<std::uint64_t> a, b, c;  // three fields
  std::vector<bool> flag;
};

class MicrocodeFuzz : public ::testing::TestWithParam<BvmConfig> {};

TEST_P(MicrocodeFuzz, RandomMicroprogramsMatchHostModel) {
  const BvmConfig cfg = GetParam();
  Machine m(cfg);
  const std::size_t n = m.num_pes();
  const Field A{0, kBits}, B_{kBits, kBits}, C{2 * kBits, kBits};
  const Field scratch{3 * kBits, kBits};
  const int flag = 4 * kBits, tmp = flag + 1, ovf = flag + 2;

  Shadow sh;
  sh.a.resize(n);
  sh.b.resize(n);
  sh.c.resize(n);
  sh.flag.assign(n, false);
  util::Rng rng(0xF00D + static_cast<std::uint64_t>(cfg.r * 13 + cfg.h));
  for (std::size_t pe = 0; pe < n; ++pe) {
    sh.a[pe] = rng.uniform(0, field_inf(kBits));
    sh.b[pe] = rng.uniform(0, field_inf(kBits));
    sh.c[pe] = rng.uniform(0, field_inf(kBits));
    m.poke_value(A.base, kBits, pe, sh.a[pe]);
    m.poke_value(B_.base, kBits, pe, sh.b[pe]);
    m.poke_value(C.base, kBits, pe, sh.c[pe]);
  }

  auto check = [&](int step, int op) {
    for (std::size_t pe = 0; pe < n; ++pe) {
      ASSERT_EQ(m.peek_value(A.base, kBits, pe), sh.a[pe])
          << "A @" << pe << " step " << step << " op " << op;
      ASSERT_EQ(m.peek_value(B_.base, kBits, pe), sh.b[pe])
          << "B @" << pe << " step " << step << " op " << op;
      ASSERT_EQ(m.peek_value(C.base, kBits, pe), sh.c[pe])
          << "C @" << pe << " step " << step << " op " << op;
    }
  };

  for (int step = 0; step < 120; ++step) {
    const int op = static_cast<int>(rng.uniform(0, 7));
    switch (op) {
      case 0:  // C = sat(A + B)
        add_sat(m, C, A, B_, tmp);
        for (std::size_t pe = 0; pe < n; ++pe) {
          sh.c[pe] = sat_add_host(sh.a[pe], sh.b[pe], kBits);
        }
        break;
      case 1:  // A = A monus C
        sub_sat(m, A, A, C, tmp);
        for (std::size_t pe = 0; pe < n; ++pe) {
          sh.a[pe] = sh.a[pe] >= sh.c[pe] ? sh.a[pe] - sh.c[pe] : 0;
        }
        break;
      case 2:  // flag = (B < C); A = flag ? B : A
        less_than(m, flag, B_, C, tmp);
        select(m, A, flag, B_, A);
        for (std::size_t pe = 0; pe < n; ++pe) {
          sh.flag[pe] = sh.b[pe] < sh.c[pe];
          if (sh.flag[pe]) sh.a[pe] = sh.b[pe];
        }
        break;
      case 3: {  // B = partner-of-dim-d's B
        const int d = static_cast<int>(
            rng.uniform(0, static_cast<std::uint64_t>(cfg.dims() - 1)));
        dim_exchange_read(m, d, B_, scratch, tmp);
        copy_field(m, B_, scratch);
        std::vector<std::uint64_t> nb(n);
        for (std::size_t pe = 0; pe < n; ++pe) {
          nb[pe] = sh.b[pe ^ (std::size_t{1} << d)];
        }
        sh.b = nb;
        break;
      }
      case 4:  // C = sat((A * B) >> 3)
        multiply_shift_sat(m, C, A, B_, 3, scratch, ovf, tmp);
        for (std::size_t pe = 0; pe < n; ++pe) {
          sh.c[pe] = sat_mulshift_host(sh.a[pe], sh.b[pe], 3, kBits);
        }
        break;
      case 5:  // B = const
        set_const(m, B_, 0x13 + static_cast<std::uint64_t>(step % 7));
        for (std::size_t pe = 0; pe < n; ++pe) {
          sh.b[pe] = 0x13 + static_cast<std::uint64_t>(step % 7);
        }
        break;
      case 6:  // C = min(A, C); A = max(A, B)
        min_field(m, C, A, C, tmp);
        max_field(m, A, A, B_, tmp);
        for (std::size_t pe = 0; pe < n; ++pe) {
          sh.c[pe] = std::min(sh.a[pe], sh.c[pe]);
          sh.a[pe] = std::max(sh.a[pe], sh.b[pe]);
        }
        break;
      default:  // flag = (A == B); C = flag ? 0 : C
        equals_field(m, flag, A, B_, tmp);
        set_const(m, scratch, 0);
        select(m, C, flag, scratch, C);
        for (std::size_t pe = 0; pe < n; ++pe) {
          if (sh.a[pe] == sh.b[pe]) sh.c[pe] = 0;
        }
        break;
    }
    if (step % 10 == 9) check(step, op);
  }
  check(999, -1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MicrocodeFuzz,
    ::testing::Values(BvmConfig{1, 2}, BvmConfig{2, 3},
                      BvmConfig::complete(2), BvmConfig{3, 4}),
    [](const ::testing::TestParamInfo<BvmConfig>& info) {
      return "r" + std::to_string(info.param.r) + "h" +
             std::to_string(info.param.h);
    });

}  // namespace
}  // namespace ttp::bvm
