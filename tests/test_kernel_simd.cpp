// The SIMD kernel variants' byte-identity contract (PR 4).
//
// The scalar tiles are the normative reference; the portable and AVX2
// variants must produce byte-identical cost AND best_action tables on
// every instance — same IEEE results (memcmp, not tolerance), same
// strict-< lowest-index tie-breaks. These tests force each variant through
// set_kernel_variant() and compare raw table bytes across:
//
//   * randomized instances over the full k = 1..16 range,
//   * tie-heavy integer-cost instances (where a sloppy blend order would
//     silently pick a different argmin),
//   * extreme weight magnitudes (1e-12 .. 1e12 — association-order drift
//     shows up here first),
//   * action mixes skewed to all-tests-but-singleton-cures and
//     treatments-only,
//   * direct eval_states calls on sub-spans of size 1..7 (remainder-lane
//     boundaries: SIMD handles groups of 4, the tail must route through
//     the scalar tile),
//   * all six table-building backends (sequential, threads state/pair,
//     hypercube, ccc, state_parallel) under each forced variant.
//
// AVX2 cases are guarded on kernel_avx2_available() so the suite passes
// (portable-only) on hosts or builds without AVX2. Every test restores
// auto-dispatch on exit so suite order cannot leak a pinned variant.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "tt/generator.hpp"
#include "tt/kernel.hpp"
#include "tt/solver_ccc.hpp"
#include "tt/solver_hypercube.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/solver_state_parallel.hpp"
#include "tt/solver_threads.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

/// RAII: pin a variant for one scope, restore auto-dispatch after.
class VariantGuard {
 public:
  explicit VariantGuard(const char* spec) {
    ok_ = set_kernel_variant(spec);
  }
  ~VariantGuard() { set_kernel_variant("auto"); }
  bool ok() const noexcept { return ok_; }

 private:
  bool ok_;
};

/// The SIMD variants this host can run. "portable" always; "avx2" when
/// compiled in and the CPU reports it.
std::vector<const char*> simd_variants() {
  std::vector<const char*> v{"portable"};
  if (kernel_avx2_available()) v.push_back("avx2");
  return v;
}

DpTable solve_table_with(const char* variant, const Instance& ins) {
  VariantGuard guard(variant);
  EXPECT_TRUE(guard.ok()) << variant;
  SolveArena arena;
  return solve_with_arena(ins, arena).table;
}

/// memcmp, not EXPECT_DOUBLE_EQ and not even ==: the contract is identical
/// BYTES (a -0.0 vs +0.0 drift would pass ==, and NaN would pass nothing).
void expect_bytes_identical(const DpTable& ref, const DpTable& got,
                            const std::string& what) {
  ASSERT_EQ(ref.cost.size(), got.cost.size()) << what;
  EXPECT_EQ(std::memcmp(ref.cost.data(), got.cost.data(),
                        ref.cost.size() * sizeof(double)),
            0)
      << what << ": cost tables differ";
  EXPECT_EQ(ref.best_action, got.best_action)
      << what << ": argmin tables differ";
}

void expect_all_variants_identical(const Instance& ins,
                                   const std::string& what) {
  const DpTable ref = solve_table_with("scalar", ins);
  for (const char* v : simd_variants()) {
    expect_bytes_identical(ref, solve_table_with(v, ins),
                           what + " [" + v + "]");
  }
}

Instance random_for(std::uint64_t seed, int k) {
  util::Rng rng(seed * 7919 + 13);
  RandomOptions opt;
  opt.num_tests = 4 + static_cast<int>(seed % 5);
  opt.num_treatments = 3 + static_cast<int>(seed % 4);
  return random_instance(k, opt, rng);
}

TEST(KernelSimd, ByteIdentityRandomizedAcrossAllK) {
  // k = 1..16: covers empty-ish layers, layers smaller than one vector,
  // layers far larger than the 16-state unrolled block, and tables from
  // one cache line to 512 KiB.
  for (int k = 1; k <= 16; ++k) {
    const int seeds = k <= 12 ? 3 : 1;  // keep big-k runtime bounded
    for (int s = 0; s < seeds; ++s) {
      expect_all_variants_identical(
          random_for(static_cast<std::uint64_t>(k * 10 + s), k),
          "k=" + std::to_string(k) + " seed=" + std::to_string(s));
    }
  }
}

TEST(KernelSimd, ByteIdentityTieHeavyIntegerCosts) {
  // Unit costs + uniform priors: nearly every state has multiple actions
  // attaining the minimum, so any deviation from strict-< ascending-index
  // blending flips an argmin.
  for (int k : {4, 5, 6, 8}) {
    Instance ins(k, std::vector<double>(static_cast<std::size_t>(k), 1.0));
    const Mask full = util::universe(k);
    for (Mask s = 1; s < full; ++s) ins.add_test(s, 1.0);
    for (int j = 0; j < k; ++j) ins.add_treatment(util::bit(j), 1.0);
    expect_all_variants_identical(ins, "all-subsets k=" + std::to_string(k));
  }
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Rng rng(seed);
    RandomOptions opt;
    opt.num_tests = 6;
    opt.num_treatments = 5;
    opt.integer_costs = true;
    opt.max_cost = 2.0;  // costs in {1, 2}: dense ties, not only ties
    expect_all_variants_identical(random_instance(9, opt, rng),
                                  "int-cost seed=" + std::to_string(seed));
  }
}

TEST(KernelSimd, ByteIdentityExtremeWeightMagnitudes) {
  // Weights spanning 24 orders of magnitude: t_i·p(S) + C(...) mixes tiny
  // and huge addends, where any re-association between variants would
  // produce different rounding.
  for (int k : {6, 10}) {
    std::vector<double> w(static_cast<std::size_t>(k));
    for (int j = 0; j < k; ++j) {
      w[static_cast<std::size_t>(j)] =
          (j % 2 == 0) ? 1e-12 * (j + 1) : 1e12 / (j + 1);
    }
    Instance ins(k, std::move(w));
    util::Rng rng(static_cast<std::uint64_t>(k));
    for (int i = 0; i < 6; ++i) {
      const Mask s = static_cast<Mask>(
          rng.uniform(1, (std::uint64_t{1} << k) - 2));
      ins.add_test(s, 0.25 * (i + 1));
    }
    for (int j = 0; j < k; ++j) {
      ins.add_treatment(util::bit(j), 1e6 / (j + 1));
    }
    expect_all_variants_identical(ins, "extreme-weights k=" +
                                           std::to_string(k));
  }
}

TEST(KernelSimd, ByteIdentitySkewedActionMixes) {
  // Treatments only: every state solved by the treatment arm of the
  // recurrence (the tests arm never runs).
  {
    Instance ins(6, {0.3, 0.1, 0.25, 0.05, 0.2, 0.1});
    const Mask full = util::universe(6);
    for (Mask s = 1; s <= full; ++s) {
      ins.add_treatment(s, 1.0 + 0.01 * static_cast<double>(s % 7));
    }
    expect_all_variants_identical(ins, "treatments-only");
  }
  // Test-dominant: every non-trivial subset as a test, singleton cures
  // only — the tests arm dominates every minimization.
  {
    Instance ins(6, {1, 2, 3, 4, 5, 6});
    const Mask full = util::universe(6);
    for (Mask s = 1; s < full; ++s) {
      ins.add_test(s, 0.5 + 0.001 * static_cast<double>(s));
    }
    for (int j = 0; j < 6; ++j) ins.add_treatment(util::bit(j), 100.0);
    expect_all_variants_identical(ins, "test-dominant");
  }
}

TEST(KernelSimd, RemainderLaneBoundaries) {
  // Drive eval_states directly on sub-spans of every size 1..7 (SIMD
  // blocks are 4 states; 1..3 are pure scalar-tail, 5..7 mixed) and on
  // every odd-sized layer of a k=5 universe, comparing against the scalar
  // variant on the same span.
  const Instance ins = random_for(99, 5);
  ins.check();
  const std::vector<double>& wt = ins.subset_weight_table();
  ActionSoA soa;
  soa.build(ins);
  LayerIndex layers;
  layers.build(5);
  const std::size_t states = std::size_t{1} << 5;

  // Finalized lower layers to read from: the scalar-solved full table.
  const DpTable ref = solve_table_with("scalar", ins);

  for (const char* v : simd_variants()) {
    for (int j = 1; j <= 5; ++j) {
      const auto layer = layers.layer(j);
      for (std::size_t len = 1; len <= layer.size(); ++len) {
        for (std::size_t off = 0; off + len <= layer.size();
             off += (len > 2 ? len : 1)) {
          std::vector<double> cost_s(ref.cost), cost_v(ref.cost);
          std::vector<int> best_s(ref.best_action), best_v(ref.best_action);
          {
            VariantGuard guard("scalar");
            eval_states(soa, wt.data(), layer.data() + off, len,
                        cost_s.data(), best_s.data());
          }
          {
            VariantGuard guard(v);
            ASSERT_TRUE(guard.ok());
            eval_states(soa, wt.data(), layer.data() + off, len,
                        cost_v.data(), best_v.data());
          }
          ASSERT_EQ(std::memcmp(cost_s.data(), cost_v.data(),
                                states * sizeof(double)),
                    0)
              << v << " j=" << j << " off=" << off << " len=" << len;
          ASSERT_EQ(best_s, best_v)
              << v << " j=" << j << " off=" << off << " len=" << len;
        }
      }
    }
  }
}

TEST(KernelSimd, PairPhaseByteIdenticalAcrossVariants) {
  const Instance ins = random_for(42, 6);
  ins.check();
  const std::vector<double>& wt = ins.subset_weight_table();
  ActionSoA soa;
  soa.build(ins);
  const std::size_t n = static_cast<std::size_t>(ins.num_actions());
  const DpTable ref = solve_table_with("scalar", ins);
  const auto layer = util::layer_subsets(ins.k(), 3);
  const std::size_t pairs = layer.size() * n;

  std::vector<double> m_ref(pairs);
  {
    VariantGuard guard("scalar");
    eval_pairs(soa, wt.data(), ref.cost.data(), layer.data(), 0, pairs,
               m_ref.data());
  }
  for (const char* v : simd_variants()) {
    VariantGuard guard(v);
    ASSERT_TRUE(guard.ok());
    std::vector<double> m(pairs, -1.0);
    // Deliberately ragged splits: mid-row begins/ends on both sides of the
    // test/treatment boundary.
    const std::size_t cut1 = n / 2, cut2 = 3 * n + 1;
    eval_pairs(soa, wt.data(), ref.cost.data(), layer.data(), 0, cut1,
               m.data());
    eval_pairs(soa, wt.data(), ref.cost.data(), layer.data(), cut1, cut2,
               m.data());
    eval_pairs(soa, wt.data(), ref.cost.data(), layer.data(), cut2, pairs,
               m.data());
    EXPECT_EQ(std::memcmp(m.data(), m_ref.data(), pairs * sizeof(double)), 0)
        << v;

    std::vector<double> cost(ref.cost);
    std::vector<int> best(ref.best_action);
    reduce_pairs(soa, m.data(), layer.data(), 0, layer.size(), cost.data(),
                 best.data());
    EXPECT_EQ(std::memcmp(cost.data(), ref.cost.data(),
                          cost.size() * sizeof(double)),
              0)
        << v;
    EXPECT_EQ(best, ref.best_action) << v;
  }
}

TEST(KernelSimd, ForcedVariantDeterminismAcrossAllBackends) {
  // The strong cross-backend contract of test_determinism.cpp, under every
  // forced variant: all six table-building backends must reproduce the
  // scalar sequential tables byte for byte.
  util::Rng rng(7);
  RandomOptions opt;
  opt.num_tests = 6;
  opt.num_treatments = 5;
  opt.integer_costs = true;
  opt.max_cost = 1.0;  // unit costs: maximal tie pressure
  const Instance ins = random_instance(6, opt, rng);
  const DpTable ref = solve_table_with("scalar", ins);

  std::vector<const char*> variants{"scalar"};
  for (const char* v : simd_variants()) variants.push_back(v);
  for (const char* v : variants) {
    VariantGuard guard(v);
    ASSERT_TRUE(guard.ok());
    struct Backend {
      const char* name;
      SolveResult res;
    };
    const std::vector<Backend> backends = {
        {"sequential", SequentialSolver().solve(ins)},
        {"threads(1)", ThreadsSolver(1).solve(ins)},
        {"threads(3)", ThreadsSolver(3).solve(ins)},
        {"threads-pair(2)",
         ThreadsSolver(2, ThreadsSolver::Mode::kPairParallel).solve(ins)},
        {"hypercube", HypercubeSolver().solve(ins)},
        {"ccc", CccSolver().solve(ins)},
        {"state_parallel", StateParallelSolver().solve(ins)},
    };
    for (const Backend& b : backends) {
      expect_bytes_identical(ref, b.res.table,
                             std::string(v) + "/" + b.name);
    }
  }
}

TEST(KernelSimd, VariantResolutionAndForcing) {
  // Every spec resolves (or cleanly refuses); active name tracks the pin.
  EXPECT_TRUE(set_kernel_variant("scalar"));
  EXPECT_EQ(active_kernel_variant(), KernelVariant::kScalar);
  EXPECT_EQ(active_kernel_variant_name(), "scalar");
  EXPECT_TRUE(set_kernel_variant("portable"));
  EXPECT_EQ(active_kernel_variant(), KernelVariant::kSimdPortable);
  EXPECT_EQ(active_kernel_variant_name(), "simd-portable");
  if (kernel_avx2_available()) {
    EXPECT_TRUE(set_kernel_variant("avx2"));
    EXPECT_EQ(active_kernel_variant(), KernelVariant::kSimdAvx2);
  } else {
    // Unavailable pin: refused AND the previous dispatch is untouched.
    EXPECT_FALSE(set_kernel_variant("avx2"));
    EXPECT_EQ(active_kernel_variant(), KernelVariant::kSimdPortable);
  }
  EXPECT_FALSE(set_kernel_variant("no-such-variant"));
  EXPECT_TRUE(set_kernel_variant("simd"));
  EXPECT_NE(active_kernel_variant(), KernelVariant::kScalar);
  EXPECT_TRUE(set_kernel_variant("auto"));
}

TEST(KernelSimd, PairIndexRowsMatchDefinition) {
  const Instance ins = random_for(5, 6);
  ins.check();
  ActionSoA soa;
  soa.build(ins);
  LayerIndex layers;
  layers.build(6);
  PairIndex pidx;
  ASSERT_TRUE(pidx.ensure(layers, soa));
  for (int j = 0; j <= 6; ++j) {
    const auto layer = layers.layer(j);
    ASSERT_EQ(pidx.stride(j), layer.size()) << j;
    for (int i = 0; i < soa.num_actions; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      const std::uint32_t* ir = pidx.inter_row(j, i);
      const std::uint32_t* mr = pidx.minus_row(j, i);
      for (std::size_t p = 0; p < layer.size(); ++p) {
        EXPECT_EQ(ir[p], static_cast<std::uint32_t>(layer[p] & soa.set[ui]))
            << "j=" << j << " i=" << i << " p=" << p;
        EXPECT_EQ(mr[p], static_cast<std::uint32_t>(layer[p] & soa.nset[ui]))
            << "j=" << j << " i=" << i << " p=" << p;
      }
    }
  }
  // Same (k, sets): ensure() again is a no-op reuse, rows stay valid.
  const std::uint32_t first = pidx.inter_row(1, 0)[0];
  ASSERT_TRUE(pidx.ensure(layers, soa));
  EXPECT_EQ(pidx.inter_row(1, 0)[0], first);
}

TEST(KernelSimd, PairIndexRefusesAboveByteCap) {
  // 2^18 states x 33 actions x 2 tables x 4 bytes ≈ 69 MiB > kMaxBytes.
  LayerIndex layers;
  layers.build(18);
  ActionSoA soa;
  soa.num_actions = 33;
  soa.num_tests = 0;
  soa.set.assign(33, 1);
  soa.nset.assign(33, static_cast<Mask>(~Mask{1}));
  soa.cost.assign(33, 1.0);
  soa.is_test.assign(33, 0);
  PairIndex pidx;
  EXPECT_FALSE(pidx.ensure(layers, soa));
}

TEST(KernelSimd, AlignedBufAlignmentAndNoCopyGrowth) {
  AlignedBuf<double> buf;
  buf.resize_discard(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                AlignedBuf<double>::kAlign,
            0u);
  EXPECT_EQ(buf.size(), 3u);
  double* grown = nullptr;
  buf.resize_discard(1000);
  grown = buf.data();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(grown) %
                AlignedBuf<double>::kAlign,
            0u);
  EXPECT_EQ(buf.size(), 1000u);
  // Shrinking (and regrowing within capacity) never reallocates.
  buf.resize_discard(10);
  EXPECT_EQ(buf.data(), grown);
  buf.resize_discard(1000);
  EXPECT_EQ(buf.data(), grown);
}

TEST(KernelSimd, ArenaReuseAcrossNonMonotoneKUnderEachVariant) {
  std::vector<const char*> variants{"scalar"};
  for (const char* v : simd_variants()) variants.push_back(v);
  for (const char* v : variants) {
    VariantGuard guard(v);
    ASSERT_TRUE(guard.ok());
    SolveArena arena;
    for (int round = 0; round < 2; ++round) {
      for (int k : {8, 12, 5, 10}) {  // deliberately non-monotone
        const Instance ins = random_for(
            static_cast<std::uint64_t>(round * 100 + k), k);
        const DpTable ref = solve_table_with("scalar", ins);
        VariantGuard repin(v);  // solve_table_with restored auto
        const auto res = solve_with_arena(ins, arena);
        expect_bytes_identical(ref, res.table,
                               std::string(v) + " round " +
                                   std::to_string(round) + " k=" +
                                   std::to_string(k));
      }
    }
  }
}

}  // namespace
}  // namespace ttp::tt
