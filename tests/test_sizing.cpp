// Machine-sizing arithmetic (the §1 feasibility claims' backbone).
#include <gtest/gtest.h>

#include "tt/sizing.hpp"

namespace ttp::tt {
namespace {

TEST(Sizing, SizeForRoundsActionsToPowerOfTwo) {
  const SizingRow r = size_for(4, 5);
  EXPECT_EQ(r.machine_dims, 4 + 3);  // 5 -> 8 actions
  EXPECT_EQ(r.pes, std::uint64_t{1} << 7);
  EXPECT_TRUE(r.fits_2_20);
  EXPECT_TRUE(r.fits_2_30);
}

TEST(Sizing, HeadlineNumbers) {
  // k = 15, N = 2^15: exactly 2^30 PEs — the paper's feasible machine.
  const SizingRow r = size_for(15, std::uint64_t{1} << 15);
  EXPECT_EQ(r.machine_dims, 30);
  EXPECT_FALSE(r.fits_2_20);
  EXPECT_TRUE(r.fits_2_30);
  EXPECT_EQ(max_k_for_machine(30, ActionBudget::kAllSubsets), 15);
  const int quad = max_k_for_machine(30, ActionBudget::kQuadratic);
  EXPECT_GE(quad, 20);  // "a few more elements, e.g. 20"
  EXPECT_LE(quad, 24);
}

TEST(Sizing, BudgetsAreMonotone) {
  for (auto policy : {ActionBudget::kAllSubsets, ActionBudget::kQuadratic,
                      ActionBudget::kLinear}) {
    EXPECT_LE(max_k_for_machine(20, policy), max_k_for_machine(30, policy));
    EXPECT_FALSE(budget_name(policy).empty());
  }
}

TEST(Sizing, ActionBudgetFormulas) {
  EXPECT_EQ(actions_for(10, ActionBudget::kAllSubsets), 1024u);
  EXPECT_EQ(actions_for(10, ActionBudget::kQuadratic), 100u);
  EXPECT_EQ(actions_for(10, ActionBudget::kLinear), 40u);
}

TEST(Sizing, EdgeActionsOfOne) {
  const SizingRow r = size_for(3, 1);
  EXPECT_EQ(r.machine_dims, 4);  // N padded to at least 2
}

}  // namespace
}  // namespace ttp::tt
