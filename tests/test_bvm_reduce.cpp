// Machine -> host reductions: the result must be both replicated at every
// PE and correctly emitted through the architectural output pin.
#include <gtest/gtest.h>

#include "bvm/microcode/reduce.hpp"
#include "util/rng.hpp"

namespace ttp::bvm {
namespace {

class ReduceTest : public ::testing::TestWithParam<BvmConfig> {};

TEST_P(ReduceTest, GlobalOrAndAcrossPatterns) {
  const BvmConfig cfg = GetParam();
  // All-zero, all-one, single bit at assorted PEs.
  for (int pattern = 0; pattern < 4; ++pattern) {
    Machine m(cfg);
    bool expect_or = false, expect_and = false;
    switch (pattern) {
      case 0:
        break;  // all zero
      case 1:
        m.row(Reg::R(0)).fill(true);
        expect_or = expect_and = true;
        break;
      case 2:
        m.poke(Reg::R(0), 0, true);
        expect_or = true;
        break;
      default:
        m.poke(Reg::R(0), m.num_pes() - 1, true);
        expect_or = true;
        break;
    }
    {
      Machine mc(cfg);
      mc.row(Reg::R(0)) = m.row(Reg::R(0));
      EXPECT_EQ(global_or(mc, 0, 1, 2), expect_or)
          << "pattern " << pattern;
      // Replicated everywhere too.
      for (std::size_t pe = 0; pe < mc.num_pes(); ++pe) {
        ASSERT_EQ(mc.peek(Reg::R(0), pe), expect_or);
      }
    }
    {
      Machine mc(cfg);
      mc.row(Reg::R(0)) = m.row(Reg::R(0));
      EXPECT_EQ(global_and(mc, 0, 1, 2), expect_and)
          << "pattern " << pattern;
    }
  }
}

TEST_P(ReduceTest, GlobalCountMatchesHostPopcount) {
  const BvmConfig cfg = GetParam();
  Machine m(cfg);
  util::Rng rng(17);
  std::uint64_t expect = 0;
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    const bool v = rng.bernoulli(0.4);
    m.poke(Reg::R(0), pe, v);
    expect += v ? 1 : 0;
  }
  const int w = cfg.dims() + 1;
  const Field total{10, w}, staging{10 + w, w};
  EXPECT_EQ(global_count(m, 0, total, staging, 40), expect);
  // Replicated at every PE.
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    ASSERT_EQ(m.peek_value(total.base, w, pe), expect) << pe;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReduceTest,
    ::testing::Values(BvmConfig{1, 1}, BvmConfig{2, 2},
                      BvmConfig::complete(2), BvmConfig{3, 4}),
    [](const ::testing::TestParamInfo<BvmConfig>& info) {
      return "r" + std::to_string(info.param.r) + "h" +
             std::to_string(info.param.h);
    });

}  // namespace
}  // namespace ttp::bvm
