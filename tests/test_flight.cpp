// Tests for the flight recorder (src/obs/flight.hpp): field round-trips
// through the packed word layout, ring wraparound, newest-first find, and
// lock-free concurrent writers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/flight.hpp"

namespace ttp::obs {
namespace {

FlightRecord sample(std::uint64_t trace) {
  FlightRecord r;
  r.trace = trace;
  r.leader = trace ^ 0xdeadbeefu;
  r.key_hi = 0x0123456789abcdefull;
  r.key_lo = 0xfedcba9876543210ull;
  r.start_ns = 123456789;
  r.e2e_us = 42'000'000'000ull;  // > 32 bits: e2e must survive as u64
  r.admit_us = 11;
  r.queue_us = 22;
  r.batch_us = 33;
  r.solve_us = 44;
  r.respond_us = 55;
  r.k = 12;
  r.actions = 345;
  r.outcome = 2;
  r.status = 3;
  r.batch = 7;
  r.batch_seq = 99;
  return r;
}

void expect_eq(const FlightRecord& a, const FlightRecord& b) {
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.key_hi, b.key_hi);
  EXPECT_EQ(a.key_lo, b.key_lo);
  EXPECT_EQ(a.start_ns, b.start_ns);
  EXPECT_EQ(a.e2e_us, b.e2e_us);
  EXPECT_EQ(a.admit_us, b.admit_us);
  EXPECT_EQ(a.queue_us, b.queue_us);
  EXPECT_EQ(a.batch_us, b.batch_us);
  EXPECT_EQ(a.solve_us, b.solve_us);
  EXPECT_EQ(a.respond_us, b.respond_us);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.actions, b.actions);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.batch, b.batch);
  EXPECT_EQ(a.batch_seq, b.batch_seq);
}

TEST(FlightRecorder, RoundTripsEveryField) {
  FlightRecorder rec(16);
  const FlightRecord in = sample(0xabcdef01u);
  rec.record(in);
  const auto out = rec.find(0xabcdef01u);
  ASSERT_TRUE(out.has_value());
  expect_eq(*out, in);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 8u);    // minimum
  EXPECT_EQ(FlightRecorder(8).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(9).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(4096).capacity(), 4096u);
}

TEST(FlightRecorder, FindMissReturnsNullopt) {
  FlightRecorder rec(8);
  rec.record(sample(1));
  EXPECT_FALSE(rec.find(2).has_value());
  EXPECT_FALSE(rec.find(0).has_value());
}

TEST(FlightRecorder, WraparoundOverwritesOldest) {
  FlightRecorder rec(8);
  ASSERT_EQ(rec.capacity(), 8u);
  for (std::uint64_t t = 1; t <= 20; ++t) rec.record(sample(t));
  EXPECT_EQ(rec.total_recorded(), 20u);
  // The ring holds the last 8 (traces 13..20); older ones are gone.
  for (std::uint64_t t = 13; t <= 20; ++t) {
    EXPECT_TRUE(rec.find(t).has_value()) << t;
  }
  for (std::uint64_t t = 1; t <= 12; ++t) {
    EXPECT_FALSE(rec.find(t).has_value()) << t;
  }
  const auto all = rec.snapshot();
  ASSERT_EQ(all.size(), 8u);
  // Oldest first.
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].trace, 13 + i);
  }
}

TEST(FlightRecorder, FindReturnsNewestForDuplicateTrace) {
  FlightRecorder rec(16);
  FlightRecord first = sample(5);
  first.e2e_us = 100;
  FlightRecord second = sample(5);
  second.e2e_us = 200;
  rec.record(first);
  rec.record(second);
  const auto out = rec.find(5);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->e2e_us, 200u);
}

TEST(FlightRecorder, ConcurrentWritersNeverTearRecords) {
  FlightRecorder rec(64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<bool> stop{false};
  // A reader scanning continuously while writers hammer the ring: every
  // record it extracts must be internally consistent (the seqlock's job).
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const FlightRecord& r : rec.snapshot()) {
        // Writers encode thread id in trace and k, salted per record;
        // a torn read would mix fields from different writers.
        EXPECT_EQ(r.k, static_cast<std::uint16_t>(r.trace >> 32));
        EXPECT_EQ(r.leader, r.trace ^ 0x5555555555555555ull);
      }
    }
  });
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        FlightRecord r;
        r.trace = (static_cast<std::uint64_t>(t + 1) << 32) |
                  static_cast<std::uint64_t>(i + 1);
        r.leader = r.trace ^ 0x5555555555555555ull;
        r.k = static_cast<std::uint16_t>(t + 1);
        r.e2e_us = static_cast<std::uint64_t>(i);
        rec.record(r);
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(rec.total_recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // After the dust settles the ring is full of consistent records.
  const auto all = rec.snapshot();
  EXPECT_EQ(all.size(), rec.capacity());
}

TEST(FlightRecorder, SteadyNowNsIsMonotonic) {
  const std::int64_t a = steady_now_ns();
  const std::int64_t b = steady_now_ns();
  EXPECT_LE(a, b);
  EXPECT_GT(b, 0);
}

}  // namespace
}  // namespace ttp::obs
