// Robustness fuzzing of the two text parsers (BVM assembler, TT instance
// serializer): random garbage must produce exceptions, never crashes or
// silent acceptance of nonsense; random round-trip inputs must re-parse.
#include <gtest/gtest.h>

#include <string>

#include "bvm/assembler.hpp"
#include "tt/generator.hpp"
#include "tt/serialize.hpp"
#include "util/rng.hpp"

namespace ttp {
namespace {

std::string random_garbage(util::Rng& rng, std::size_t len) {
  static const char alphabet[] =
      "ABR[]{}(),=.:# 0123456789xfgIESPLN\n\ttweights";
  std::string s;
  for (std::size_t i = 0; i < len; ++i) {
    s += alphabet[rng.uniform(0, sizeof(alphabet) - 2)];
  }
  return s;
}

TEST(ParserFuzz, AssemblerNeverCrashesOnGarbage) {
  util::Rng rng(0xA55);
  int accepted = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const std::string text = random_garbage(rng, rng.uniform(1, 60));
    try {
      (void)bvm::assemble(text);
      ++accepted;  // blank/comment-only inputs legitimately parse
    } catch (const std::invalid_argument&) {
      // expected for garbage
    } catch (const std::out_of_range&) {
      // stoull overflow on silly numbers — acceptable rejection
    }
  }
  // Almost everything must be rejected; comment/blank-only lines pass.
  EXPECT_LT(accepted, 600);
}

TEST(ParserFuzz, SerializerNeverCrashesOnGarbage) {
  util::Rng rng(0xB66);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::string text = random_garbage(rng, rng.uniform(1, 80));
    try {
      (void)tt::from_text(text);
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
  SUCCEED();
}

TEST(ParserFuzz, MutatedValidInstancesEitherParseOrThrow) {
  util::Rng rng(0xC77);
  const tt::Instance base = tt::fig1_example();
  const std::string good = tt::to_text(base);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text = good;
    // Flip a few characters.
    for (int f = 0; f < 3; ++f) {
      const std::size_t pos = rng.uniform(0, text.size() - 1);
      text[pos] = static_cast<char>('0' + rng.uniform(0, 74));
    }
    try {
      const tt::Instance ins = tt::from_text(text);
      ins.check();  // anything accepted must be structurally sane
    } catch (const std::exception&) {
      // rejection is fine
    }
  }
  SUCCEED();
}

TEST(ParserFuzz, AssemblerRoundTripUnderRandomPrograms) {
  util::Rng rng(0xD88);
  for (int trial = 0; trial < 500; ++trial) {
    bvm::Instr in;
    const auto droll = rng.uniform(0, 9);
    in.dest = droll == 0   ? bvm::Reg::MakeA()
              : droll == 1 ? bvm::Reg::MakeE()
                           : bvm::Reg::R(static_cast<int>(rng.uniform(0, 255)));
    in.f = static_cast<std::uint8_t>(rng.uniform(0, 255));
    in.g = static_cast<std::uint8_t>(rng.uniform(0, 255));
    in.src_f = rng.bernoulli(0.3)
                   ? bvm::Reg::MakeA()
                   : bvm::Reg::R(static_cast<int>(rng.uniform(0, 255)));
    in.src_d = rng.bernoulli(0.3)
                   ? bvm::Reg::MakeA()
                   : bvm::Reg::R(static_cast<int>(rng.uniform(0, 255)));
    const bvm::Nbr nbrs[] = {bvm::Nbr::None, bvm::Nbr::S,  bvm::Nbr::P,
                             bvm::Nbr::L,    bvm::Nbr::XS, bvm::Nbr::XP,
                             bvm::Nbr::I};
    in.d_nbr = nbrs[rng.uniform(0, 6)];
    const auto aroll = rng.uniform(0, 2);
    if (aroll) {
      in.act = aroll == 1 ? bvm::Act::If : bvm::Act::Nf;
      in.act_set = rng.next_u64() & 0xFFFF;
    }
    const bvm::Instr back = bvm::parse_instr(in.to_string());
    ASSERT_EQ(back.to_string(), in.to_string());
  }
}

}  // namespace
}  // namespace ttp
