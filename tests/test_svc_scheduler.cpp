// Singleflight scheduler edge cases: admission rejections, follower
// semantics, micro-batching, and shutdown with in-flight requests. Tests
// that need a deterministic queue state construct with autostart=false and
// only start() once the stage is set.
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/cache.hpp"
#include "svc/canon.hpp"
#include "svc/scheduler.hpp"
#include "tt/generator.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

namespace ttp::svc {
namespace {

using tt::Instance;

Canonical canon_of(const Instance& ins) { return canonicalize(ins); }

std::vector<Instance> distinct_instances(int n, int k = 5) {
  util::Rng rng(123);
  std::vector<Instance> out;
  tt::RandomOptions opt;
  opt.num_tests = 3;
  opt.num_treatments = 4;
  for (int i = 0; i < n; ++i) out.push_back(tt::random_instance(k, opt, rng));
  return out;
}

struct Rig {
  obs::MetricsRegistry metrics;
  ProcedureCache cache;
  Scheduler sched;
  Rig(SchedulerConfig cfg, std::size_t workers = 2)
      : cache(CacheConfig{}, metrics), sched(cache, cfg, metrics, workers) {}
};

TEST(SvcScheduler, SolvesAndCachesDistinctInstances) {
  SchedulerConfig cfg;
  Rig rig(cfg);
  const auto instances = distinct_instances(8);
  std::vector<Scheduler::Ticket> tickets;
  for (const Instance& ins : instances) {
    tickets.push_back(rig.sched.submit(canon_of(ins)));
  }
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const SolveOutcome out = tickets[i].future.get();
    ASSERT_EQ(out.status, Status::kOk) << out.error;
    ASSERT_NE(out.proc, nullptr);
    // Canonical cost rescaled must equal the direct optimum.
    const Canonical c = canon_of(instances[i]);
    const double direct = tt::SequentialSolver().solve(instances[i]).cost;
    EXPECT_NEAR(out.proc->cost * c.weight_scale, direct,
                1e-9 * std::max(1.0, direct));
    EXPECT_NE(rig.cache.find(c.key), nullptr) << "result should be cached";
  }
  EXPECT_EQ(rig.metrics.get("svc.solve.kernel_instances"), 8u);
  EXPECT_EQ(rig.metrics.get("svc.sched.leaders"), 8u);
}

TEST(SvcScheduler, QueueFullRejectsWithTypedStatus) {
  SchedulerConfig cfg;
  cfg.autostart = false;  // nothing drains: the queue fills deterministically
  cfg.max_queue = 2;
  Rig rig(cfg);
  const auto instances = distinct_instances(3);
  const auto t1 = rig.sched.submit(canon_of(instances[0]));
  const auto t2 = rig.sched.submit(canon_of(instances[1]));
  const auto t3 = rig.sched.submit(canon_of(instances[2]));
  EXPECT_TRUE(t1.leader);
  EXPECT_TRUE(t2.leader);
  EXPECT_FALSE(t3.leader);
  const SolveOutcome out = t3.future.get();  // already resolved
  EXPECT_EQ(out.status, Status::kRejectedQueueFull);
  EXPECT_EQ(rig.metrics.get("svc.sched.rejected_queue_full"), 1u);
  EXPECT_EQ(rig.sched.queue_depth(), 2u);
  // A queue-full reject sheds load but never poisons the key: the same
  // instance resubmitted joins the still-queued leader as a follower.
  const auto again = rig.sched.submit(canon_of(instances[0]));
  EXPECT_FALSE(again.leader);
  EXPECT_EQ(rig.metrics.get("svc.sched.followers"), 1u);
}

TEST(SvcScheduler, OversizeRejectsBeforeQueueing) {
  SchedulerConfig cfg;
  cfg.max_k = 4;
  cfg.max_sparse_k = 0;  // dense-only admission: k above max_k rejects
  cfg.max_actions = 100;
  Rig rig(cfg);
  const auto small = distinct_instances(1, 4);
  const auto big = distinct_instances(1, 6);
  EXPECT_EQ(rig.sched.submit(canon_of(small[0])).future.get().status,
            Status::kOk);
  const SolveOutcome out = rig.sched.submit(canon_of(big[0])).future.get();
  EXPECT_EQ(out.status, Status::kRejectedOversize);
  EXPECT_NE(out.error.find("k=6"), std::string::npos) << out.error;
  EXPECT_EQ(rig.metrics.get("svc.sched.rejected_oversize"), 1u);
}

TEST(SvcScheduler, SingleflightFollowersShareOneSolve) {
  SchedulerConfig cfg;
  cfg.autostart = false;  // stage all submits before anything can drain
  Rig rig(cfg);
  const Instance ins = tt::fig1_example();
  constexpr int kWaiters = 16;
  std::vector<Scheduler::Ticket> tickets;
  for (int i = 0; i < kWaiters; ++i) {
    tickets.push_back(rig.sched.submit(canon_of(ins)));
  }
  EXPECT_TRUE(tickets.front().leader);
  for (int i = 1; i < kWaiters; ++i) EXPECT_FALSE(tickets[i].leader);
  EXPECT_EQ(rig.sched.queue_depth(), 1u);

  rig.sched.start();
  std::shared_ptr<const CachedProcedure> first;
  for (auto& t : tickets) {
    const SolveOutcome out = t.future.get();
    ASSERT_EQ(out.status, Status::kOk) << out.error;
    if (!first) first = out.proc;
    // Every follower receives the leader's result: the same object.
    EXPECT_EQ(out.proc, first);
  }
  // The whole fan-in cost exactly one kernel solve.
  EXPECT_EQ(rig.metrics.get("svc.solve.kernel_instances"), 1u);
  EXPECT_EQ(rig.metrics.get("svc.sched.leaders"), 1u);
  EXPECT_EQ(rig.metrics.get("svc.sched.followers"),
            static_cast<std::uint64_t>(kWaiters - 1));
}

TEST(SvcScheduler, MicroBatchGroupsQueuedMisses) {
  SchedulerConfig cfg;
  cfg.autostart = false;
  cfg.max_batch = 4;
  Rig rig(cfg);
  const auto instances = distinct_instances(8);
  std::vector<Scheduler::Ticket> tickets;
  for (const Instance& ins : instances) {
    tickets.push_back(rig.sched.submit(canon_of(ins)));
  }
  rig.sched.start();
  for (auto& t : tickets) {
    EXPECT_EQ(t.future.get().status, Status::kOk);
  }
  // 8 queued leaders with max_batch=4 drain in exactly 2 batches.
  EXPECT_EQ(rig.metrics.get("svc.solve.batches"), 2u);
  EXPECT_EQ(rig.metrics.get("svc.solve.kernel_instances"), 8u);
}

TEST(SvcScheduler, ShutdownResolvesInflightWithCancelled) {
  SchedulerConfig cfg;
  cfg.autostart = false;  // entries stay queued forever
  const auto instances = distinct_instances(3);
  std::vector<Scheduler::Ticket> tickets;
  obs::MetricsRegistry metrics;
  ProcedureCache cache(CacheConfig{}, metrics);
  {
    Scheduler sched(cache, cfg, metrics, 2);
    for (const Instance& ins : instances) {
      tickets.push_back(sched.submit(canonicalize(ins)));
    }
    // Also a follower, to prove followers get the cancellation too.
    tickets.push_back(sched.submit(canonicalize(instances[0])));
    // Destructor runs here with 3 queued leaders + 1 follower in flight.
  }
  for (auto& t : tickets) {
    const SolveOutcome out = t.future.get();  // must not deadlock
    EXPECT_EQ(out.status, Status::kCancelled);
    EXPECT_EQ(out.proc, nullptr);
  }
  EXPECT_EQ(metrics.get("svc.sched.cancelled"), 3u);  // one per entry
}

TEST(SvcScheduler, StopIsIdempotentAndSubmitAfterStopCancels) {
  SchedulerConfig cfg;
  Rig rig(cfg);
  rig.sched.stop();
  rig.sched.stop();
  // After stop, new submits enqueue but nothing drains; stop() again
  // cancels them — callers never hang.
  auto t = rig.sched.submit(canon_of(tt::fig1_example()));
  rig.sched.stop();
  EXPECT_EQ(t.future.get().status, Status::kCancelled);
}

TEST(SvcScheduler, ConcurrentSubmittersAllResolve) {
  SchedulerConfig cfg;
  cfg.max_batch = 8;
  Rig rig(cfg, 4);
  const auto instances = distinct_instances(6);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 12; ++i) {
        const auto& ins = instances[static_cast<std::size_t>((t + i) %
                                                             instances.size())];
        const SolveOutcome out = rig.sched.submit(canon_of(ins)).future.get();
        if (out.status == Status::kOk) ok.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads * 12);
  // Deduplication must have collapsed most of the 96 submissions.
  EXPECT_LE(rig.metrics.get("svc.solve.kernel_instances"), 96u);
  EXPECT_GE(rig.metrics.get("svc.solve.kernel_instances"), 6u);
}

}  // namespace
}  // namespace ttp::svc
