// Normal algorithms (bitonic sort, prefix sum) at all three levels: the
// hypercube machine, the CCC machine (pipelined runs), and the bit-serial
// BVM microcode — each against host-computed expectations.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "bvm/microcode/ids.hpp"
#include "bvm/microcode/normal.hpp"
#include "net/ccc.hpp"
#include "net/hypercube.hpp"
#include "net/normal.hpp"
#include "util/rng.hpp"

namespace ttp {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed,
                                       std::uint64_t max) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.uniform(0, max);
  return v;
}

TEST(NormalHypercube, BitonicSortMatchesStdSort) {
  for (int dims : {1, 2, 3, 5, 8, 10}) {
    net::HypercubeMachine<net::NormalItem> m(dims);
    auto keys = random_keys(m.size(), static_cast<std::uint64_t>(dims), 1000);
    for (std::size_t i = 0; i < m.size(); ++i) m.at(i).key = keys[i];
    net::init_homes(m);
    net::bitonic_sort(m);
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 0; i < m.size(); ++i) {
      ASSERT_EQ(m.at(i).key, keys[i]) << "dims=" << dims << " i=" << i;
    }
  }
}

TEST(NormalHypercube, BitonicSortDuplicatesAndSortedInputs) {
  net::HypercubeMachine<net::NormalItem> m(6);
  // All-equal input.
  for (std::size_t i = 0; i < m.size(); ++i) m.at(i).key = 7;
  net::init_homes(m);
  net::bitonic_sort(m);
  for (std::size_t i = 0; i < m.size(); ++i) ASSERT_EQ(m.at(i).key, 7u);
  // Reverse-sorted input.
  for (std::size_t i = 0; i < m.size(); ++i) m.at(i).key = m.size() - i;
  net::bitonic_sort(m);
  for (std::size_t i = 0; i < m.size(); ++i) ASSERT_EQ(m.at(i).key, i + 1);
}

TEST(NormalHypercube, PrefixSumMatchesPartialSum) {
  for (int dims : {1, 3, 6, 9}) {
    net::HypercubeMachine<net::NormalItem> m(dims);
    auto keys = random_keys(m.size(), 100 + static_cast<std::uint64_t>(dims), 50);
    for (std::size_t i = 0; i < m.size(); ++i) m.at(i).key = keys[i];
    net::init_homes(m);
    net::prefix_sum(m);
    std::uint64_t run = 0;
    const std::uint64_t total =
        std::accumulate(keys.begin(), keys.end(), std::uint64_t{0});
    for (std::size_t i = 0; i < m.size(); ++i) {
      run += keys[i];
      ASSERT_EQ(m.at(i).aux, run) << "dims=" << dims << " i=" << i;
      ASSERT_EQ(m.at(i).key, total);
    }
  }
}

class NormalCcc : public ::testing::TestWithParam<net::CccConfig> {};

TEST_P(NormalCcc, BitonicSortMatchesStdSort) {
  net::CccMachine<net::NormalItem> m(GetParam());
  auto keys = random_keys(m.size(), 77, 5000);
  for (std::size_t i = 0; i < m.size(); ++i) m.at(i).key = keys[i];
  net::init_homes(m);
  net::bitonic_sort(m);
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < m.size(); ++i) {
    ASSERT_EQ(m.at(i).key, keys[i]) << i;
  }
}

TEST_P(NormalCcc, PrefixSumMatchesPartialSum) {
  net::CccMachine<net::NormalItem> m(GetParam());
  auto keys = random_keys(m.size(), 78, 64);
  for (std::size_t i = 0; i < m.size(); ++i) m.at(i).key = keys[i];
  net::init_homes(m);
  net::prefix_sum(m);
  std::uint64_t run = 0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    run += keys[i];
    ASSERT_EQ(m.at(i).aux, run) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NormalCcc,
    ::testing::Values(net::CccConfig{1, 2}, net::CccConfig{2, 3},
                      net::CccConfig::complete(2), net::CccConfig{3, 6},
                      net::CccConfig::complete(3)),
    [](const ::testing::TestParamInfo<net::CccConfig>& info) {
      return "r" + std::to_string(info.param.r) + "h" +
             std::to_string(info.param.h);
    });

struct BvmNormalFixture : ::testing::Test {
  BvmNormalFixture() : m(bvm::BvmConfig{2, 3}) {  // 32 PEs, dims = 5
    bvm::load_processor_id_host(m, pid);
  }
  static constexpr int kBits = 9;
  bvm::Machine m;
  const int pid = 0;
  bvm::Field v{10, kBits}, prefix{10 + kBits, kBits};
  bvm::NormalScratch ws{{10 + 2 * kBits, kBits}, 40, 41, 42, 43};
};

TEST_F(BvmNormalFixture, BitonicSortBitSerial) {
  auto keys = random_keys(m.num_pes(), 5, (1u << kBits) - 2);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke_value(v.base, kBits, pe, keys[pe]);
  }
  bvm::bitonic_sort(m, v, pid, ws);
  std::sort(keys.begin(), keys.end());
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    ASSERT_EQ(m.peek_value(v.base, kBits, pe), keys[pe]) << pe;
  }
}

TEST_F(BvmNormalFixture, BitonicSortAlreadySorted) {
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke_value(v.base, kBits, pe, pe * 3);
  }
  bvm::bitonic_sort(m, v, pid, ws);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    ASSERT_EQ(m.peek_value(v.base, kBits, pe), pe * 3) << pe;
  }
}

TEST_F(BvmNormalFixture, PrefixSumBitSerial) {
  auto keys = random_keys(m.num_pes(), 6, 12);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke_value(v.base, kBits, pe, keys[pe]);
  }
  bvm::prefix_sum(m, v, prefix, pid, ws);
  std::uint64_t run = 0;
  const std::uint64_t total =
      std::accumulate(keys.begin(), keys.end(), std::uint64_t{0});
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    run += keys[pe];
    ASSERT_EQ(m.peek_value(prefix.base, kBits, pe), run) << pe;
    ASSERT_EQ(m.peek_value(v.base, kBits, pe), total) << pe;
  }
}

TEST(NormalConcentrate, WordLevelRoutesFlaggedRecordsInOrder) {
  for (int dims : {2, 4, 6}) {
    net::HypercubeMachine<net::NormalItem> m(dims);
    util::Rng rng(static_cast<std::uint64_t>(dims));
    std::vector<std::uint64_t> expect;
    for (std::size_t i = 0; i < m.size(); ++i) {
      m.at(i).key = 100 + i;
      const bool f = rng.bernoulli(0.4);
      m.at(i).aux = f ? 1 : 0;
      if (f) expect.push_back(100 + i);
    }
    net::init_homes(m);
    net::concentrate(m);
    for (std::size_t r = 0; r < expect.size(); ++r) {
      ASSERT_EQ(m.at(r).key, expect[r]) << "dims=" << dims << " r=" << r;
      ASSERT_EQ(m.at(r).aux, r);
    }
    for (std::size_t r = expect.size(); r < m.size(); ++r) {
      ASSERT_EQ(m.at(r).aux, ~std::uint64_t{0}) << r;
    }
  }
}

TEST_F(BvmNormalFixture, ConcentrateBitSerial) {
  // Flags on a third of the PEs; values identify their origin.
  const bvm::Field rank{40, 6}, key{46, 6}, rank_x{52, 6};
  const bvm::Field value_x{58, kBits};
  const bvm::NormalScratch cws{{70, 6}, 80, 81, 82, 83};  // ws.x len = rank
  const bvm::ConcentrateScratch cs{key, rank_x, value_x, 84};
  const int flag = 85;
  std::vector<std::uint64_t> expect;
  util::Rng rng(12);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke_value(v.base, kBits, pe, 200 + pe);
    const bool f = rng.bernoulli(0.35);
    m.poke(bvm::Reg::R(flag), pe, f);
    if (f) expect.push_back(200 + pe);
  }
  bvm::concentrate(m, flag, v, rank, pid, cws, cs);
  for (std::size_t r = 0; r < expect.size(); ++r) {
    ASSERT_EQ(m.peek_value(v.base, kBits, r), expect[r]) << r;
    ASSERT_EQ(m.peek_value(rank.base, rank.len, r), r) << r;
    ASSERT_TRUE(m.peek(bvm::Reg::R(flag), r)) << r;
  }
  for (std::size_t r = expect.size(); r < m.num_pes(); ++r) {
    ASSERT_FALSE(m.peek(bvm::Reg::R(flag), r)) << r;
  }
}

TEST_F(BvmNormalFixture, ConcentrateEdgeCases) {
  const bvm::Field rank{40, 6}, key{46, 6}, rank_x{52, 6};
  const bvm::Field value_x{58, kBits};
  const bvm::NormalScratch cws{{70, 6}, 80, 81, 82, 83};
  const bvm::ConcentrateScratch cs{key, rank_x, value_x, 84};
  const int flag = 85;
  // Nobody flagged: values permuted arbitrarily but flags all clear.
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke_value(v.base, kBits, pe, pe);
    m.poke(bvm::Reg::R(flag), pe, false);
  }
  bvm::concentrate(m, flag, v, rank, pid, cws, cs);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    ASSERT_FALSE(m.peek(bvm::Reg::R(flag), pe));
  }
  // Everybody flagged: identity routing.
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke_value(v.base, kBits, pe, 7 * pe % 300);
    m.poke(bvm::Reg::R(flag), pe, true);
  }
  bvm::concentrate(m, flag, v, rank, pid, cws, cs);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    ASSERT_EQ(m.peek_value(v.base, kBits, pe), 7 * pe % 300) << pe;
    ASSERT_EQ(m.peek_value(rank.base, rank.len, pe), pe) << pe;
  }
}

TEST_F(BvmNormalFixture, PrefixSumSaturates) {
  // Totals beyond the field saturate to INF and stay there.
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke_value(v.base, kBits, pe, 100);
  }
  bvm::prefix_sum(m, v, prefix, pid, ws);
  const std::uint64_t inf = bvm::field_inf(kBits);
  ASSERT_EQ(m.peek_value(prefix.base, kBits, 0), 100u);
  ASSERT_EQ(m.peek_value(prefix.base, kBits, m.num_pes() - 1), inf);
  ASSERT_EQ(m.peek_value(v.base, kBits, 0), inf);
}

}  // namespace
}  // namespace ttp
