// Request-scoped telemetry, end to end: trace IDs on the wire and through
// the scheduler, TRACE <id> replay from the flight recorder, METRICS
// Prometheus exposition (with quantile accuracy pinned against exact
// latencies), HEALTH, and slow-request capture. Suites are Svc-prefixed so
// the TSan CI job's --gtest_filter picks them up.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "obs/trace.hpp"
#include "svc/service.hpp"
#include "svc/wire.hpp"
#include "tt/generator.hpp"
#include "tt/serialize.hpp"
#include "util/rng.hpp"

namespace ttp::svc {
namespace {

using tt::Instance;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

std::string session(Service& svc, const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  serve_session(svc, in, out);
  return out.str();
}

std::string solve_frame(const Instance& ins) {
  return "SOLVE\n" + tt::to_text(ins) + "END\n";
}

/// Pulls "trace=<hex16>" off an OK reply line; "" when absent.
std::string trace_of(const std::string& ok_line) {
  const std::size_t pos = ok_line.find("trace=");
  if (pos == std::string::npos) return "";
  return ok_line.substr(pos + 6, 16);
}

std::vector<Instance> distinct_instances(int n, int k = 5) {
  util::Rng rng(321);
  std::vector<Instance> out;
  tt::RandomOptions opt;
  opt.num_tests = 3;
  opt.num_treatments = 4;
  for (int i = 0; i < n; ++i) out.push_back(tt::random_instance(k, opt, rng));
  return out;
}

/// Finds the first reply line starting with `prefix` at or after `from`.
std::size_t line_at(const std::vector<std::string>& lines,
                    const std::string& prefix, std::size_t from = 0) {
  for (std::size_t i = from; i < lines.size(); ++i) {
    if (lines[i].rfind(prefix, 0) == 0) return i;
  }
  return lines.size();
}

// --- trace IDs on the wire --------------------------------------------------

TEST(SvcTelemetry, SolveRepliesCarryDistinctTraceIds) {
  Service svc;
  const Instance ins = tt::fig1_example();
  const auto lines = lines_of(session(svc, solve_frame(ins) + solve_frame(ins)));
  const std::size_t first = line_at(lines, "OK ");
  const std::size_t second = line_at(lines, "OK ", first + 1);
  ASSERT_LT(second, lines.size());
  const std::string t1 = trace_of(lines[first]);
  const std::string t2 = trace_of(lines[second]);
  ASSERT_EQ(t1.size(), 16u);
  ASSERT_EQ(t2.size(), 16u);
  // Same instance, two requests: same cache key, distinct trace IDs.
  EXPECT_NE(t1, t2);
  EXPECT_NE(obs::trace_from_hex(t1), 0u);
  EXPECT_NE(obs::trace_from_hex(t2), 0u);
}

TEST(SvcTelemetry, TraceVerbReconstructsRequestEndToEnd) {
  Service svc;
  const Instance ins = tt::fig1_example();
  // First request: a miss that led a solve.
  const auto miss_lines = lines_of(session(svc, solve_frame(ins)));
  const std::size_t ok1 = line_at(miss_lines, "OK cache=miss");
  ASSERT_LT(ok1, miss_lines.size()) << "expected a miss reply";
  const std::string miss_trace = trace_of(miss_lines[ok1]);
  ASSERT_EQ(miss_trace.size(), 16u);

  // Second request: a hit. Both must be replayable.
  const auto hit_lines = lines_of(session(svc, solve_frame(ins)));
  const std::size_t ok2 = line_at(hit_lines, "OK cache=hit");
  ASSERT_LT(ok2, hit_lines.size()) << "expected a hit reply";
  const std::string hit_trace = trace_of(hit_lines[ok2]);

  for (const auto& [trace, outcome, solved] :
       {std::tuple{miss_trace, std::string("miss"), true},
        std::tuple{hit_trace, std::string("hit"), false}}) {
    const auto reply = lines_of(session(svc, "TRACE " + trace + "\n"));
    ASSERT_FALSE(reply.empty());
    EXPECT_EQ(reply[0], "TRACE") << trace;
    std::map<std::string, std::string> kv;
    for (const auto& line : reply) {
      const std::size_t colon = line.find(": ");
      if (colon != std::string::npos) {
        kv[line.substr(0, colon)] = line.substr(colon + 2);
      }
    }
    EXPECT_EQ(kv["trace"], trace);
    EXPECT_EQ(kv["outcome"], outcome);
    EXPECT_EQ(kv["status"], "ok");
    EXPECT_EQ(kv["k"], std::to_string(ins.k()));
    EXPECT_EQ(kv["actions"], std::to_string(ins.num_actions()));
    ASSERT_NE(kv.find("key"), kv.end());
    EXPECT_EQ(kv["key"].size(), 32u);
    // The stage breakdown reconstructs the journey: a miss crossed the
    // queue/solve stages (batch nonzero); a hit never did.
    EXPECT_EQ(kv["batch"], solved ? "1" : "0");
    ASSERT_NE(kv.find("e2e_us"), kv.end());
    ASSERT_NE(kv.find("solve_us"), kv.end());
    EXPECT_EQ(reply.back(), "END");
  }
  // Both requests share the canonical key — the replay proves the hit
  // found the miss's cached procedure.
  const auto r1 = lines_of(session(svc, "TRACE " + miss_trace + "\n"));
  const auto r2 = lines_of(session(svc, "TRACE " + hit_trace + "\n"));
  const std::size_t k1 = line_at(r1, "key: ");
  const std::size_t k2 = line_at(r2, "key: ");
  ASSERT_LT(k1, r1.size());
  ASSERT_LT(k2, r2.size());
  EXPECT_EQ(r1[k1], r2[k2]);
}

TEST(SvcTelemetry, TraceVerbRejectsUnknownAndMalformedIds) {
  Service svc;
  const auto bad = lines_of(session(svc, "TRACE zzzz\n"));
  ASSERT_FALSE(bad.empty());
  EXPECT_EQ(bad[0].rfind("ERR bad-request", 0), 0u);
  const auto missing =
      lines_of(session(svc, "TRACE 00000000000000ff\n"));
  ASSERT_FALSE(missing.empty());
  EXPECT_EQ(missing[0].rfind("ERR not-found", 0), 0u);
}

// --- scheduler trace propagation --------------------------------------------

TEST(SvcTelemetryScheduler, FollowerTicketsLinkToLeaderTrace) {
  obs::MetricsRegistry metrics;
  ProcedureCache cache(CacheConfig{}, metrics);
  SchedulerConfig cfg;
  cfg.autostart = false;  // stage the queue deterministically
  Scheduler sched(cache, cfg, metrics, /*workers=*/2);

  const auto instances = distinct_instances(1);
  const Canonical canon = canonicalize(instances[0]);
  const std::uint64_t leader_trace = obs::next_trace_id();
  const std::uint64_t follower_trace = obs::next_trace_id();

  const auto leader = sched.submit(canon, leader_trace);
  ASSERT_TRUE(leader.leader);
  EXPECT_EQ(leader.leader_trace, leader_trace);
  const auto follower = sched.submit(canon, follower_trace);
  ASSERT_FALSE(follower.leader);
  // The follower's ticket names the leader's trace — the link TRACE and
  // the flight recorder use to connect deduplicated requests.
  EXPECT_EQ(follower.leader_trace, leader_trace);

  sched.start();
  const SolveOutcome out = leader.future.get();
  ASSERT_EQ(out.status, Status::kOk) << out.error;
  // The drain thread stamped the batch journey in steady-clock order.
  EXPECT_GT(out.drain_ns, 0);
  EXPECT_GE(out.solve_start_ns, out.drain_ns);
  EXPECT_GE(out.solve_end_ns, out.solve_start_ns);
  EXPECT_EQ(out.batch, 1u);
  EXPECT_EQ(out.batch_seq, 1u);
  // Followers share the identical outcome (one shared_future).
  const SolveOutcome fout = follower.future.get();
  EXPECT_EQ(fout.batch_seq, out.batch_seq);
}

TEST(SvcTelemetryScheduler, BatchSeqAdvancesPerDrainBatch) {
  obs::MetricsRegistry metrics;
  ProcedureCache cache(CacheConfig{}, metrics);
  SchedulerConfig cfg;
  cfg.autostart = false;
  cfg.max_batch = 2;
  Scheduler sched(cache, cfg, metrics, /*workers=*/2);
  const auto instances = distinct_instances(4);
  std::vector<Scheduler::Ticket> tickets;
  for (const auto& ins : instances) {
    tickets.push_back(sched.submit(canonicalize(ins), obs::next_trace_id()));
  }
  sched.start();
  std::vector<std::uint32_t> seqs;
  for (auto& t : tickets) {
    const SolveOutcome out = t.future.get();
    ASSERT_EQ(out.status, Status::kOk) << out.error;
    EXPECT_LE(out.batch, 2u);
    seqs.push_back(out.batch_seq);
  }
  // 4 entries, max_batch 2 -> at least 2 drain batches, ordinals from 1.
  EXPECT_EQ(*std::min_element(seqs.begin(), seqs.end()), 1u);
  EXPECT_GE(*std::max_element(seqs.begin(), seqs.end()), 2u);
}

// --- METRICS / HEALTH -------------------------------------------------------

TEST(SvcTelemetry, MetricsExpositionParsesWithNonzeroTailQuantiles) {
  Service svc;
  for (const auto& ins : distinct_instances(8)) {
    ASSERT_TRUE(svc.solve(ins).ok());
  }
  const auto reply = lines_of(session(svc, "METRICS\n"));
  ASSERT_GE(reply.size(), 3u);
  EXPECT_EQ(reply.front(), "METRICS");
  EXPECT_EQ(reply.back(), "END");
  bool saw_e2e_p99 = false;
  for (std::size_t i = 1; i + 1 < reply.size(); ++i) {
    const std::string& line = reply[i];
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <kind>"
      std::istringstream is(line);
      std::string hash, type, name, kind;
      ASSERT_TRUE(is >> hash >> type >> name >> kind) << line;
      EXPECT_EQ(type, "TYPE") << line;
      continue;
    }
    // Every sample line is "<name>[{labels}] <number>".
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string name = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    EXPECT_EQ(name.rfind("ttp_", 0), 0u) << line;
    // The bare metric name (before any label set) must not contain dots;
    // label VALUES like quantile="0.99" legitimately do.
    const std::string bare = name.substr(0, name.find('{'));
    EXPECT_EQ(bare.find('.'), std::string::npos) << line;
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    EXPECT_TRUE(end != value.c_str() && *end == '\0') << line;
    if (name ==
        "ttp_svc_latency_seconds{stage=\"e2e\",quantile=\"0.99\"}") {
      saw_e2e_p99 = true;
      EXPECT_GT(v, 0.0) << "p99 must be nonzero after 8 solves";
    }
  }
  EXPECT_TRUE(saw_e2e_p99)
      << "METRICS must expose the e2e p99 summary sample";
}

TEST(SvcTelemetry, StageQuantilesWithinOnePercentOfExactLatencies) {
  // The acceptance bar: sketch quantiles vs the exact per-request e2e
  // latencies the flight recorder captured for the very same requests.
  ServiceConfig cfg;
  cfg.telemetry.flight_capacity = 4096;
  Service svc(cfg);
  for (const auto& ins : distinct_instances(48, 5)) {
    ASSERT_TRUE(svc.solve(ins).ok());
  }
  std::vector<std::uint64_t> exact;
  for (const auto& rec : svc.flight().snapshot()) {
    exact.push_back(rec.e2e_us);
  }
  ASSERT_EQ(exact.size(), 48u);
  std::sort(exact.begin(), exact.end());
  // Re-derive the sketch estimate through METRICS' own data path.
  const auto reply = session(svc, "METRICS\n");
  for (const auto& [q, qs] :
       {std::pair{0.5, "0.5"}, std::pair{0.9, "0.9"}, std::pair{0.99, "0.99"},
        std::pair{0.999, "0.999"}}) {
    const std::string needle = std::string("ttp_svc_latency_seconds{stage="
                                           "\"e2e\",quantile=\"") +
                               qs + "\"} ";
    const std::size_t pos = reply.find(needle);
    ASSERT_NE(pos, std::string::npos) << needle;
    const double est_s = std::strtod(reply.c_str() + pos + needle.size(),
                                     nullptr);
    const double est_us = est_s * 1e6;
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(exact.size())));
    if (rank < 1) rank = 1;
    const double truth = static_cast<double>(exact[rank - 1]);
    ASSERT_GT(truth, 0.0);
    EXPECT_LE(std::abs(est_us - truth) / truth, 0.01)
        << "q=" << qs << " exact=" << truth << "us est=" << est_us << "us";
  }
}

TEST(SvcTelemetry, HealthReportsReadyAndPressure) {
  Service svc;
  ASSERT_TRUE(svc.solve(tt::fig1_example()).ok());
  const auto reply = lines_of(session(svc, "HEALTH\n"));
  ASSERT_GE(reply.size(), 4u);
  EXPECT_EQ(reply[0], "HEALTH");
  EXPECT_EQ(reply[1], "ready");
  EXPECT_EQ(reply.back(), "END");
  std::map<std::string, std::string> kv;
  for (const auto& line : reply) {
    const std::size_t colon = line.find(": ");
    if (colon != std::string::npos) {
      kv[line.substr(0, colon)] = line.substr(colon + 2);
    }
  }
  EXPECT_EQ(kv["queue.depth"], "0");
  EXPECT_EQ(kv["queue.max"], "1024");
  ASSERT_NE(kv.find("cache.bytes"), kv.end());
  EXPECT_GT(std::stoull(kv["cache.bytes"]), 0u) << "one procedure cached";
  EXPECT_EQ(kv["cache.capacity_bytes"],
            std::to_string(std::size_t{64} << 20));
  EXPECT_GT(std::stoull(kv["workers"]), 0u);
  EXPECT_GT(std::stoull(kv["flight.recorded"]), 0u);
}

// --- slow-request capture ---------------------------------------------------

TEST(SvcTelemetry, SlowCaptureDumpsFlightRecordAsJsonl) {
  const std::string log = ::testing::TempDir() + "/ttp_slow_capture.jsonl";
  std::remove(log.c_str());
  ServiceConfig cfg;
  cfg.telemetry.slow_ms = 0;  // every request is "slow"
  cfg.telemetry.slow_log = log;
  Service svc(cfg);
  EXPECT_EQ(svc.slow_threshold_ms(), 0);
  const Instance ins = tt::fig1_example();
  const Response miss = svc.solve(ins);
  const Response hit = svc.solve(ins);
  ASSERT_TRUE(miss.ok());
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(svc.metrics().get("svc.slow_requests"), 2u);

  std::ifstream in(log);
  ASSERT_TRUE(in.is_open()) << log;
  std::vector<std::string> dumps;
  std::string line;
  while (std::getline(in, line)) dumps.push_back(line);
  ASSERT_EQ(dumps.size(), 2u);
  // Each line is one JSON object naming its trace and outcome.
  EXPECT_NE(dumps[0].find("\"trace\":\"" + obs::trace_hex(miss.trace) + "\""),
            std::string::npos);
  EXPECT_NE(dumps[0].find("\"outcome\":\"miss\""), std::string::npos);
  EXPECT_NE(dumps[1].find("\"trace\":\"" + obs::trace_hex(hit.trace) + "\""),
            std::string::npos);
  EXPECT_NE(dumps[1].find("\"outcome\":\"hit\""), std::string::npos);
  for (const auto& d : dumps) {
    EXPECT_EQ(d.front(), '{');
    EXPECT_EQ(d.back(), '}');
    EXPECT_NE(d.find("\"e2e_us\":"), std::string::npos);
    EXPECT_NE(d.find("\"spans\":["), std::string::npos);
  }
  std::remove(log.c_str());
}

TEST(SvcTelemetry, SlowCaptureIncludesSpanTreeWhenTracingOn) {
  obs::tracer().configure(obs::TraceConfig{obs::TraceMode::kSpans, ""});
  const std::string log = ::testing::TempDir() + "/ttp_slow_spans.jsonl";
  std::remove(log.c_str());
  {
    ServiceConfig cfg;
    cfg.telemetry.slow_ms = 0;
    cfg.telemetry.slow_log = log;
    Service svc(cfg);
    ASSERT_TRUE(svc.solve(tt::fig1_example()).ok());
  }
  obs::tracer().configure(obs::TraceConfig{});  // back to off
  std::ifstream in(log);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  // The span dump names the stages the request crossed, kernel included.
  EXPECT_NE(line.find("\"name\":\"svc.request\""), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"solve.batch\""), std::string::npos);
  std::remove(log.c_str());
}

TEST(SvcTelemetry, SlowCaptureDisabledByDefault) {
  Service svc;  // no slow_ms, no TTP_SLOW_MS in the test environment
  EXPECT_EQ(svc.slow_threshold_ms(), -1);
  ASSERT_TRUE(svc.solve(tt::fig1_example()).ok());
  EXPECT_EQ(svc.metrics().get("svc.slow_requests"), 0u);
}

TEST(SvcTelemetry, ResponsesCarryTraceThroughEveryPath) {
  ServiceConfig cfg;
  cfg.scheduler.max_k = 4;  // force an oversize rejection below
  cfg.scheduler.max_sparse_k = 0;  // keep the sparse tier out of the way
  Service svc(cfg);
  const Response ok = svc.solve(distinct_instances(1, 4)[0]);
  ASSERT_TRUE(ok.ok());
  EXPECT_NE(ok.trace, 0u);
  const Response rejected = svc.solve(distinct_instances(1, 6)[0]);
  EXPECT_EQ(rejected.status, Status::kRejectedOversize);
  EXPECT_NE(rejected.trace, 0u);
  EXPECT_NE(ok.trace, rejected.trace);
  // Both are in the flight recorder regardless of outcome.
  EXPECT_TRUE(svc.flight().find(ok.trace).has_value());
  EXPECT_TRUE(svc.flight().find(rejected.trace).has_value());
}

}  // namespace
}  // namespace ttp::svc
