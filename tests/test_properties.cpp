// Property-based tests of the TT dynamic program itself: invariants that
// must hold for any instance, checked over random-seed sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "tt/generator.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

Instance random_adequate(std::uint64_t seed, int k = 5) {
  util::Rng rng(seed);
  RandomOptions opt;
  opt.num_tests = 4;
  opt.num_treatments = 4;
  return random_instance(k, opt, rng);
}

class DpProperties : public ::testing::TestWithParam<int> {};

TEST_P(DpProperties, CostScalingIsLinear) {
  // Multiplying every action cost by c multiplies C(S) by c.
  const Instance a = random_adequate(static_cast<std::uint64_t>(GetParam()));
  Instance b(a.k(), a.weights());
  const double c = 3.5;
  for (const Action& act : a.actions()) {
    if (act.is_test) {
      b.add_test(act.set, act.cost * c, act.name);
    } else {
      b.add_treatment(act.set, act.cost * c, act.name);
    }
  }
  const auto ra = SequentialSolver().solve(a);
  const auto rb = SequentialSolver().solve(b);
  for (std::size_t s = 0; s < ra.table.cost.size(); ++s) {
    if (std::isinf(ra.table.cost[s])) {
      EXPECT_TRUE(std::isinf(rb.table.cost[s]));
    } else {
      EXPECT_NEAR(rb.table.cost[s], c * ra.table.cost[s],
                  1e-9 * (1 + std::fabs(ra.table.cost[s])));
    }
  }
}

TEST_P(DpProperties, WeightScalingIsLinear) {
  // Multiplying every prior by w multiplies C(S) by w (weights are not
  // normalized — the paper notes sub-problems "technically are not TT
  // problems themselves" for the same reason).
  const Instance a = random_adequate(static_cast<std::uint64_t>(GetParam()));
  const double w = 2.25;
  std::vector<double> weights = a.weights();
  for (double& x : weights) x *= w;
  Instance b(a.k(), std::move(weights));
  for (const Action& act : a.actions()) {
    if (act.is_test) {
      b.add_test(act.set, act.cost, act.name);
    } else {
      b.add_treatment(act.set, act.cost, act.name);
    }
  }
  const auto ra = SequentialSolver().solve(a);
  const auto rb = SequentialSolver().solve(b);
  if (std::isinf(ra.cost)) {
    EXPECT_TRUE(std::isinf(rb.cost));
  } else {
    EXPECT_NEAR(rb.cost, w * ra.cost, 1e-9 * (1 + ra.cost));
  }
}

TEST_P(DpProperties, AddingAnActionNeverHurts) {
  const Instance a = random_adequate(static_cast<std::uint64_t>(GetParam()));
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 999);
  Instance b(a.k(), a.weights());
  for (const Action& act : a.actions()) {
    if (act.is_test) {
      b.add_test(act.set, act.cost, act.name);
    } else {
      b.add_treatment(act.set, act.cost, act.name);
    }
  }
  b.add_test(rng.nonempty_subset(b.universe()), 0.01, "bonus_test");
  b.add_treatment(rng.nonempty_subset(b.universe()), 0.01, "bonus_treat");
  const auto ra = SequentialSolver().solve(a);
  const auto rb = SequentialSolver().solve(b);
  for (std::size_t s = 0; s < ra.table.cost.size(); ++s) {
    EXPECT_LE(rb.table.cost[s], ra.table.cost[s] + 1e-12) << s;
  }
}

TEST_P(DpProperties, ObjectRelabelingIsIsomorphic) {
  // Permuting object identities permutes the table but preserves C(U).
  const Instance a = random_adequate(static_cast<std::uint64_t>(GetParam()));
  const int k = a.k();
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 7);
  std::vector<int> perm(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) perm[static_cast<std::size_t>(j)] = j;
  rng.shuffle(perm);
  auto map_mask = [&](Mask m) {
    Mask out = 0;
    for (int j = 0; j < k; ++j) {
      if (util::has_bit(m, j)) out |= util::bit(perm[static_cast<std::size_t>(j)]);
    }
    return out;
  };
  std::vector<double> weights(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    weights[static_cast<std::size_t>(perm[static_cast<std::size_t>(j)])] =
        a.weight(j);
  }
  Instance b(k, std::move(weights));
  for (const Action& act : a.actions()) {
    if (act.is_test) {
      b.add_test(map_mask(act.set), act.cost, act.name);
    } else {
      b.add_treatment(map_mask(act.set), act.cost, act.name);
    }
  }
  const auto ra = SequentialSolver().solve(a);
  const auto rb = SequentialSolver().solve(b);
  for (std::size_t s = 0; s < ra.table.cost.size(); ++s) {
    const double ca = ra.table.cost[s];
    const double cb = rb.table.cost[map_mask(static_cast<Mask>(s))];
    if (std::isinf(ca)) {
      EXPECT_TRUE(std::isinf(cb)) << s;
    } else {
      EXPECT_NEAR(ca, cb, 1e-9) << s;
    }
  }
}

TEST_P(DpProperties, SubtreeOptimality) {
  // Every subtree of the optimal procedure is itself optimal for its state
  // — the Bellman property the recurrence rests on.
  const Instance a = random_adequate(static_cast<std::uint64_t>(GetParam()));
  const auto res = SequentialSolver().solve(a);
  if (std::isinf(res.cost)) GTEST_SKIP();
  for (const TreeNode& node : res.tree.nodes()) {
    // The tree rooted at `node` costs exactly C(node.state).
    double subtree = 0.0;
    for (int j = 0; j < a.k(); ++j) {
      if (!util::has_bit(node.state, j)) continue;
      // Path cost from this node down, for object j.
      double cost = 0.0;
      const TreeNode* cur = &node;
      while (true) {
        const Action& act = a.action(cur->action);
        cost += act.cost;
        const bool inside = util::has_bit(act.set, j);
        int next;
        if (act.is_test) {
          next = inside ? cur->yes : cur->no;
        } else if (inside) {
          break;
        } else {
          next = cur->no;
        }
        ASSERT_GE(next, 0);
        cur = &res.tree.node(next);
      }
      subtree += cost * a.weight(j);
    }
    EXPECT_NEAR(subtree, res.table.cost[node.state], 1e-9)
        << util::mask_to_string(node.state);
  }
}

TEST_P(DpProperties, AdequacyMatchesCoverageForTreatmentReachability) {
  // C(U) finite implies every object treatable; with only treatments the
  // converse also holds.
  const Instance a = random_adequate(static_cast<std::uint64_t>(GetParam()));
  const auto res = SequentialSolver().solve(a);
  if (!std::isinf(res.cost)) {
    EXPECT_TRUE(a.every_object_treatable());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpProperties, ::testing::Range(0, 12));

TEST(DpEdgeCases, SingleObjectNoTreatment) {
  Instance ins(1, {1.0});
  ins.add_test(0b1, 1.0);  // tests alone can never treat
  const auto res = SequentialSolver().solve(ins);
  EXPECT_TRUE(std::isinf(res.cost));
}

TEST(DpEdgeCases, ZeroCostActionsAreFine) {
  Instance ins(2, {1.0, 1.0});
  ins.add_test(0b01, 0.0);
  ins.add_treatment(0b01, 0.0);
  ins.add_treatment(0b10, 0.0);
  const auto res = SequentialSolver().solve(ins);
  EXPECT_DOUBLE_EQ(res.cost, 0.0);
  EXPECT_FALSE(res.tree.empty());
}

TEST(DpEdgeCases, DuplicateActionsTieBreakToLowestIndex) {
  Instance ins(2, {1.0, 1.0});
  ins.add_treatment(0b11, 2.0, "first");
  ins.add_treatment(0b11, 2.0, "second");
  const auto res = SequentialSolver().solve(ins);
  EXPECT_EQ(ins.action(res.table.best_action[0b11]).name, "first");
}

TEST(DpEdgeCases, MaximalKSmoke) {
  // k = 16: 65k states; keep N small. Mostly a memory/time smoke test.
  util::Rng rng(4242);
  RandomOptions opt;
  opt.num_tests = 5;
  opt.num_treatments = 5;
  const Instance ins = random_instance(16, opt, rng);
  const auto res = SequentialSolver().solve(ins);
  EXPECT_FALSE(std::isinf(res.cost));
}

}  // namespace
}  // namespace ttp::tt
