// All instance generators: structural guarantees (adequacy, well-formed
// sets, tests-before-treatments ordering), determinism per seed, and
// solvability of each family.
#include <gtest/gtest.h>

#include <cmath>

#include "tt/generator.hpp"
#include "tt/serialize.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

using Maker = Instance (*)(int, util::Rng&);

Instance make_random(int k, util::Rng& rng) {
  return random_instance(k, RandomOptions{}, rng);
}
Instance make_medical(int k, util::Rng& rng) {
  return medical_instance(k, k, rng);
}
Instance make_binary(int k, util::Rng& rng) {
  return binary_testing_instance(k, k, rng);
}

struct Family {
  const char* name;
  Maker make;
};

const Family kFamilies[] = {
    {"random", &make_random},
    {"medical", &make_medical},
    {"machine_fault", &machine_fault_instance},
    {"biology_key", &biology_key_instance},
    {"lab_analysis", &lab_analysis_instance},
    {"logistics", &logistics_instance},
    {"binary_testing", &make_binary},
};

class Generators : public ::testing::TestWithParam<int> {};

TEST_P(Generators, EveryFamilyIsWellFormedAndAdequate) {
  const int seed = GetParam();
  for (const Family& f : kFamilies) {
    for (int k : {3, 5, 8}) {
      util::Rng rng(static_cast<std::uint64_t>(seed));
      const Instance ins = f.make(k, rng);
      SCOPED_TRACE(std::string(f.name) + " k=" + std::to_string(k));
      EXPECT_NO_THROW(ins.check());
      EXPECT_TRUE(ins.every_object_treatable());
      EXPECT_GT(ins.num_tests() + ins.num_treatments(), 0);
      // Solvable: the DP reaches a finite optimum.
      const auto res = SequentialSolver().solve(ins);
      EXPECT_FALSE(std::isinf(res.cost));
      // And the optimum is positive unless everything is free.
      EXPECT_GE(res.cost, 0.0);
    }
  }
}

TEST_P(Generators, DeterministicPerSeed) {
  const int seed = GetParam();
  for (const Family& f : kFamilies) {
    util::Rng a(static_cast<std::uint64_t>(seed));
    util::Rng b(static_cast<std::uint64_t>(seed));
    EXPECT_EQ(to_text(f.make(6, a)), to_text(f.make(6, b))) << f.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Generators, ::testing::Values(1, 7, 42));

TEST(Generators, CompleteInstanceShape) {
  const Instance ins = complete_instance(3);
  EXPECT_EQ(ins.num_tests(), 6);       // 2^3 - 2 nontrivial proper subsets
  EXPECT_EQ(ins.num_treatments(), 7);  // every nonempty subset
  EXPECT_TRUE(ins.every_object_treatable());
}

TEST(Generators, LogisticsUsesContiguousSegments) {
  util::Rng rng(5);
  const Instance ins = logistics_instance(8, rng);
  for (int i = 0; i < ins.num_tests(); ++i) {
    const Mask s = ins.action(i).set;
    // Contiguity: the set bits form one run.
    const Mask lowbit = s & (0u - s);
    const Mask shifted = s / lowbit;  // normalize to start at bit 0
    EXPECT_EQ((shifted & (shifted + 1)), 0u)
        << "test " << i << " not contiguous: " << util::mask_to_string(s);
  }
}

TEST(Generators, LabAnalysisScreensCheaperThanChromatography) {
  util::Rng rng(6);
  const Instance ins = lab_analysis_instance(7, rng);
  double max_screen = 0, min_chroma = 1e9;
  for (int i = 0; i < ins.num_tests(); ++i) {
    const Action& a = ins.action(i);
    if (a.name.rfind("screen", 0) == 0) {
      max_screen = std::max(max_screen, a.cost);
    } else if (a.name.rfind("chroma", 0) == 0) {
      min_chroma = std::min(min_chroma, a.cost);
    }
  }
  EXPECT_LT(max_screen, min_chroma);
}

}  // namespace
}  // namespace ttp::tt
