// The full bit-serial BVM TT solver against the sequential DP.
//
// Integer-cost/weight instances with a pure-integer fixed-point format must
// match the sequential solver EXACTLY (table, argmin, tree); fractional
// instances match within quantization error.
#include <gtest/gtest.h>

#include <cmath>

#include "tt/generator.hpp"
#include "tt/report.hpp"
#include "tt/solver_bvm.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/validate.hpp"

namespace ttp::tt {
namespace {

BvmSolverOptions integer_opts(bvm::LayerMode mode = bvm::LayerMode::kPropagation) {
  BvmSolverOptions opt;
  opt.format = util::Fixed::Format{24, 0};  // pure integers, no rounding
  opt.layer_mode = mode;
  return opt;
}

Instance integer_instance(int k, std::uint64_t seed) {
  util::Rng rng(seed);
  RandomOptions opt;
  opt.num_tests = 3;
  opt.num_treatments = 3;
  opt.integer_costs = true;
  opt.integer_weights = true;
  opt.max_cost = 4.0;
  return random_instance(k, opt, rng);
}

TEST(BvmSolver, TinyHandComputedInstance) {
  Instance ins(2, {1.0, 1.0});
  ins.add_test(0b01, 1.0);
  ins.add_treatment(0b01, 2.0);
  ins.add_treatment(0b10, 2.0);
  const auto res = BvmSolver(integer_opts()).solve(ins);
  const auto seq = SequentialSolver().solve(ins);
  EXPECT_DOUBLE_EQ(res.cost, seq.cost);
  EXPECT_EQ(res.table.best_action, seq.table.best_action);
}

TEST(BvmSolver, Fig1IntegerScaled) {
  // fig1 has fractional weights; use a binary-friendly format (frac = 4:
  // weights 0.4 etc. quantize) and compare within quantization slack.
  const Instance ins = fig1_example();
  BvmSolverOptions opt;
  opt.format = util::Fixed::Format{26, 10};
  const auto res = BvmSolver(opt).solve(ins);
  const auto seq = SequentialSolver().solve(ins);
  EXPECT_NEAR(res.cost, seq.cost, 0.05);
  const auto rep = validate_tree(ins, res.tree, res.cost, 0.05);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
}

class BvmExact : public ::testing::TestWithParam<int> {};

TEST_P(BvmExact, MatchesSequentialExactlyOnIntegerInstances) {
  const Instance ins = integer_instance(3 + GetParam() % 3,
                                        static_cast<std::uint64_t>(GetParam()));
  const auto seq = SequentialSolver().solve(ins);
  const auto res = BvmSolver(integer_opts()).solve(ins);
  EXPECT_EQ(max_table_diff(seq.table, res.table), 0.0) << describe(ins);
  EXPECT_EQ(seq.table.best_action, res.table.best_action) << describe(ins);
  if (!std::isinf(seq.cost)) {
    EXPECT_EQ(res.tree.size(), seq.tree.size());
    EXPECT_DOUBLE_EQ(res.tree.expected_cost(ins), seq.cost);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BvmExact, ::testing::Range(0, 10));

TEST(BvmSolver, LayerModesAgree) {
  const Instance ins = integer_instance(4, 77);
  const auto prop =
      BvmSolver(integer_opts(bvm::LayerMode::kPropagation)).solve(ins);
  const auto pop =
      BvmSolver(integer_opts(bvm::LayerMode::kPopcount)).solve(ins);
  EXPECT_EQ(max_table_diff(prop.table, pop.table), 0.0);
  EXPECT_EQ(prop.table.best_action, pop.table.best_action);
  // Instruction counts differ between the modes (E14's subject).
  EXPECT_NE(prop.breakdown.get("bvm_instructions"),
            pop.breakdown.get("bvm_instructions"));
}

TEST(BvmSolver, HostIdsMatchOnMachineIds) {
  const Instance ins = integer_instance(4, 11);
  BvmSolverOptions host = integer_opts();
  host.on_machine_ids = false;
  const auto a = BvmSolver(integer_opts()).solve(ins);
  const auto b = BvmSolver(host).solve(ins);
  EXPECT_EQ(max_table_diff(a.table, b.table), 0.0);
  EXPECT_LT(b.breakdown.get("bvm_instructions"),
            a.breakdown.get("bvm_instructions"));
}

TEST(BvmSolver, SerialIoMatchesDma) {
  const Instance ins = integer_instance(3, 5);
  BvmSolverOptions serial = integer_opts();
  serial.serial_io = true;
  const auto a = BvmSolver(integer_opts()).solve(ins);
  const auto b = BvmSolver(serial).solve(ins);
  EXPECT_EQ(max_table_diff(a.table, b.table), 0.0);
  EXPECT_GT(b.breakdown.get("bvm_instructions"),
            a.breakdown.get("bvm_instructions"));
}

TEST(BvmSolver, InfeasibleInstance) {
  Instance ins(2, {1.0, 1.0});
  ins.add_test(0b01, 1.0);
  ins.add_treatment(0b01, 1.0);
  const auto res = BvmSolver(integer_opts()).solve(ins);
  EXPECT_TRUE(std::isinf(res.cost));
  EXPECT_TRUE(res.tree.empty());
}

TEST(BvmSolver, SaturationPinsHugeCostsToInf) {
  // Costs that overflow the tiny format must surface as INF, never as a
  // wrapped small number (the saturating-arithmetic guarantee end to end).
  Instance ins(2, {7.0, 7.0});
  ins.add_treatment(0b11, 100.0);  // 100*14 = 1400 >> 2^8
  BvmSolverOptions opt;
  opt.format = util::Fixed::Format{8, 0};
  const auto res = BvmSolver(opt).solve(ins);
  EXPECT_TRUE(std::isinf(res.cost));
}

TEST(BvmSolver, RegisterBudgetWithinMachineLimit) {
  const Instance ins = integer_instance(5, 3);
  EXPECT_LE(BvmSolver::registers_needed(ins, 24), 256);
  // The paper's flagship shape: k=15, N=32, p=16.
  Instance big(15, std::vector<double>(15, 1.0));
  for (int i = 0; i < 16; ++i) big.add_test(util::bit(i % 15), 1.0);
  for (int i = 0; i < 15; ++i) big.add_treatment(util::bit(i), 1.0);
  EXPECT_LE(BvmSolver::registers_needed(big, 16), 256);
}

TEST(BvmSolver, ReportsMachineMetrics) {
  const Instance ins = integer_instance(4, 2);
  const auto res = BvmSolver(integer_opts()).solve(ins);
  EXPECT_GT(res.breakdown.get("bvm_instructions"), 0u);
  EXPECT_GT(res.breakdown.get("layers"), 0u);
  EXPECT_EQ(res.breakdown.get("bvm_pes"),
            std::uint64_t{1} << (ins.k() + 3));
}

}  // namespace
}  // namespace ttp::tt
