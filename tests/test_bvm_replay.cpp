// Record/replay: the TT microprogram is a STATIC SIMD instruction stream
// for a given problem shape — record it while solving instance A, then
// replay the very same instructions on a fresh machine loaded with instance
// B's action data (same k, padded N, precision and priors) and obtain B's
// optimal DP table. This is the operating mode the paper's control-bit
// discussion assumes: the front-end compiles once, the array crunches data.
#include <gtest/gtest.h>

#include <cmath>

#include "bvm/io.hpp"
#include "tt/solver_bvm.hpp"
#include "tt/solver_hypercube.hpp"
#include "tt/solver_sequential.hpp"
#include "util/bits.hpp"

namespace ttp::tt {
namespace {

// Two instances sharing shape (k = 3, N = 4 padded, same priors) but with
// different tests, treatments and costs.
Instance instance_a() {
  Instance ins(3, {2.0, 1.0, 1.0});
  ins.add_test(0b011, 1.0);
  ins.add_treatment(0b001, 2.0);
  ins.add_treatment(0b110, 3.0);
  ins.add_treatment(0b111, 9.0);
  return ins;
}

Instance instance_b() {
  Instance ins(3, {2.0, 1.0, 1.0});
  ins.add_test(0b101, 2.0);
  ins.add_treatment(0b100, 1.0);
  ins.add_treatment(0b011, 4.0);
  ins.add_treatment(0b010, 2.0);
  return ins;
}

TEST(BvmReplay, RecordedProgramSolvesDifferentActionData) {
  const util::Fixed::Format fmt{20, 0};
  BvmSolverOptions opt;
  opt.format = fmt;
  std::vector<bvm::Instr> program;
  opt.record_program = &program;

  const Instance a = instance_a();
  const Instance b = instance_b();
  ASSERT_EQ(a.num_actions(), b.num_actions());

  const auto res_a = BvmSolver(opt).solve(a);
  ASSERT_GT(program.size(), 1000u);

  // Fresh machine: DMA-load B's action data at the documented layout, then
  // replay A's instruction stream verbatim.
  const int k = b.k();
  const int aDims = HypercubeSolver::action_dims(b);
  const int npad = 1 << aDims;
  const TtRegisterMap rm(k + aDims, k, aDims, fmt.bits, fmt.frac);
  bvm::Machine m(bvm::BvmConfig::for_dims(k + aDims));

  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    const int i = static_cast<int>(pe) & (npad - 1);
    const bool real = i < b.num_actions();
    const Mask t = real ? b.action(i).set : b.universe();
    for (int e = 0; e < k; ++e) {
      m.poke(bvm::Reg::R(rm.tmask + e), pe, util::has_bit(t, e));
    }
    m.poke(bvm::Reg::R(rm.istest), pe, real && b.action(i).is_test);
    const std::uint64_t raw =
        real ? util::Fixed::from_double(fmt, b.action(i).cost).raw()
             : fmt.inf_raw();
    m.poke_value(rm.ct, fmt.bits, pe, raw);
  }
  m.run(program);

  // Extract the table and compare with the host DP on B.
  const auto seq_b = SequentialSolver().solve(b);
  for (std::size_t s = 1; s < (std::size_t{1} << k); ++s) {
    const std::uint64_t raw = m.peek_value(rm.m, fmt.bits, s << aDims);
    const util::Fixed v(fmt, raw);
    const double expect = seq_b.table.cost[s];
    if (std::isinf(expect)) {
      EXPECT_TRUE(v.is_inf()) << s;
    } else {
      EXPECT_DOUBLE_EQ(v.to_double(), expect) << s;
      EXPECT_EQ(static_cast<int>(m.peek_value(rm.best, aDims, s << aDims)),
                seq_b.table.best_action[s])
          << s;
    }
  }

  // Sanity: the recording really was a different problem's program.
  EXPECT_NE(res_a.cost, seq_b.cost);
}

TEST(BvmReplay, RecordingMatchesInstructionCount) {
  BvmSolverOptions opt;
  opt.format = util::Fixed::Format{16, 0};
  std::vector<bvm::Instr> program;
  opt.record_program = &program;
  const auto res = BvmSolver(opt).solve(instance_a());
  EXPECT_EQ(program.size(), res.breakdown.get("bvm_instructions"));
}

}  // namespace
}  // namespace ttp::tt
