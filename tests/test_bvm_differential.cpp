// Differential testing: a deliberately naive per-PE scalar interpreter of
// the BVM ISA (no word tricks, no masks — just the §2 semantics transcribed)
// is run against the word-parallel Machine on thousands of random
// instructions over random machine shapes. Any divergence in any register
// of any PE fails. This anchors the packed-bit-vector implementation to the
// specification independent of the microcode tests.
#include <gtest/gtest.h>

#include <vector>

#include "bvm/machine.hpp"
#include "util/rng.hpp"

namespace ttp::bvm {
namespace {

constexpr int kRegs = 12;  // registers the fuzz touches

// The scalar model: arrays of bool per PE.
struct NaiveMachine {
  explicit NaiveMachine(BvmConfig cfg)
      : cfg(cfg),
        n(cfg.num_pes()),
        a(n, false),
        b(n, false),
        e(n, true),
        r(kRegs, std::vector<bool>(n, false)) {}

  std::size_t neighbor(std::size_t pe, Nbr nb) const {
    const std::size_t Q = static_cast<std::size_t>(cfg.Q());
    const std::size_t c = pe / Q, p = pe % Q;
    switch (nb) {
      case Nbr::S:
        return c * Q + (p + 1) % Q;
      case Nbr::P:
        return c * Q + (p + Q - 1) % Q;
      case Nbr::XS:
        return c * Q + (p ^ 1);
      case Nbr::XP:
        return c * Q + (p % 2 == 0 ? (p + Q - 1) % Q : (p + 1) % Q);
      case Nbr::L:
        return p < static_cast<std::size_t>(cfg.h)
                   ? (c ^ (std::size_t{1} << p)) * Q + p
                   : pe;
      default:
        return pe;
    }
  }

  const std::vector<bool>& row(Reg reg) const {
    switch (reg.kind) {
      case Reg::Kind::A:
        return a;
      case Reg::Kind::B:
        return b;
      case Reg::Kind::E:
        return e;
      default:
        return r[reg.index];
    }
  }
  std::vector<bool>& row(Reg reg) {
    return const_cast<std::vector<bool>&>(
        static_cast<const NaiveMachine*>(this)->row(reg));
  }

  void exec(const Instr& in, std::deque<bool>& input,
            std::vector<bool>& output) {
    // Resolve D with neighbor routing (I handled as the global chain).
    std::vector<bool> dval(n);
    const std::vector<bool>& dsrc = row(in.src_d);
    if (in.d_nbr == Nbr::I) {
      bool carry = false;
      if (!input.empty()) {
        carry = input.front();
        input.pop_front();
      }
      output.push_back(dsrc[n - 1]);
      for (std::size_t pe = 0; pe < n; ++pe) {
        dval[pe] = pe == 0 ? carry : dsrc[pe - 1];
      }
    } else {
      for (std::size_t pe = 0; pe < n; ++pe) {
        dval[pe] = dsrc[neighbor(pe, in.d_nbr)];
      }
    }
    const std::vector<bool>& fval = row(in.src_f);

    std::vector<bool> newdest(n), newb(n);
    for (std::size_t pe = 0; pe < n; ++pe) {
      const int idx = (fval[pe] ? 1 : 0) + (dval[pe] ? 2 : 0) + (b[pe] ? 4 : 0);
      newdest[pe] = (in.f >> idx) & 1;
      newb[pe] = (in.g >> idx) & 1;
    }
    std::vector<bool>& dest = row(in.dest);
    const bool dest_is_e = in.dest.kind == Reg::Kind::E;
    for (std::size_t pe = 0; pe < n; ++pe) {
      const int pos = static_cast<int>(pe % static_cast<std::size_t>(cfg.Q()));
      bool active = true;
      if (in.act == Act::If) active = (in.act_set >> pos) & 1;
      if (in.act == Act::Nf) active = !((in.act_set >> pos) & 1);
      const bool old_e = e[pe];
      if (active && (dest_is_e || old_e)) dest[pe] = newdest[pe];
      // B gates on the PRE-instruction enable value even when the
      // destination was E (matching Machine's documented semantics).
      if (active && old_e) b[pe] = newb[pe];
    }
  }

  BvmConfig cfg;
  std::size_t n;
  std::vector<bool> a, b, e;
  std::vector<std::vector<bool>> r;
};

Instr random_instr(util::Rng& rng, const BvmConfig& cfg) {
  Instr in;
  // Destination: mostly R, sometimes A, rarely E.
  const auto droll = rng.uniform(0, 9);
  if (droll == 0) {
    in.dest = Reg::MakeA();
  } else if (droll == 1) {
    in.dest = Reg::MakeE();
  } else {
    in.dest = Reg::R(static_cast<int>(rng.uniform(0, kRegs - 1)));
  }
  in.f = static_cast<std::uint8_t>(rng.uniform(0, 255));
  in.g = static_cast<std::uint8_t>(rng.uniform(0, 255));
  in.src_f = rng.bernoulli(0.2) ? Reg::MakeA()
                                : Reg::R(static_cast<int>(rng.uniform(0, kRegs - 1)));
  in.src_d = rng.bernoulli(0.2) ? Reg::MakeA()
                                : Reg::R(static_cast<int>(rng.uniform(0, kRegs - 1)));
  const Nbr nbrs[] = {Nbr::None, Nbr::S,  Nbr::P, Nbr::L,
                      Nbr::XS,   Nbr::XP, Nbr::I};
  in.d_nbr = nbrs[rng.uniform(0, 6)];
  const auto aroll = rng.uniform(0, 3);
  if (aroll == 1) {
    in.act = Act::If;
    in.act_set = rng.next_u64() & ((std::uint64_t{1} << cfg.Q()) - 1);
  } else if (aroll == 2) {
    in.act = Act::Nf;
    in.act_set = rng.next_u64() & ((std::uint64_t{1} << cfg.Q()) - 1);
  }
  return in;
}

class Differential : public ::testing::TestWithParam<BvmConfig> {};

TEST_P(Differential, RandomProgramsAgreeEverywhere) {
  const BvmConfig cfg = GetParam();
  Machine fast(cfg);
  NaiveMachine slow(cfg);
  util::Rng rng(0xD1FFu + static_cast<std::uint64_t>(cfg.r * 31 + cfg.h));

  // Seed all registers identically at random.
  for (int j = 0; j < kRegs; ++j) {
    for (std::size_t pe = 0; pe < cfg.num_pes(); ++pe) {
      const bool v = rng.bernoulli(0.5);
      fast.poke(Reg::R(j), pe, v);
      slow.r[static_cast<std::size_t>(j)][pe] = v;
    }
  }

  std::deque<bool> slow_input;
  std::vector<bool> slow_output;
  for (int step = 0; step < 1500; ++step) {
    const Instr in = random_instr(rng, cfg);
    if (in.d_nbr == Nbr::I) {
      const bool bit = rng.bernoulli(0.5);
      fast.push_input(bit);
      slow_input.push_back(bit);
    }
    fast.exec(in);
    slow.exec(in, slow_input, slow_output);

    if (step % 100 != 99) continue;  // full compare every 100 steps
    for (std::size_t pe = 0; pe < cfg.num_pes(); ++pe) {
      ASSERT_EQ(fast.peek(Reg::MakeA(), pe), slow.a[pe])
          << "A @" << pe << " step " << step << " " << in.to_string();
      ASSERT_EQ(fast.peek(Reg::MakeB(), pe), slow.b[pe])
          << "B @" << pe << " step " << step << " " << in.to_string();
      ASSERT_EQ(fast.peek(Reg::MakeE(), pe), slow.e[pe])
          << "E @" << pe << " step " << step << " " << in.to_string();
      for (int j = 0; j < kRegs; ++j) {
        ASSERT_EQ(fast.peek(Reg::R(j), pe), slow.r[static_cast<std::size_t>(j)][pe])
            << "R[" << j << "] @" << pe << " step " << step << " "
            << in.to_string();
      }
    }
  }
  // Output streams must match too.
  ASSERT_EQ(fast.output().size(), slow_output.size());
  for (std::size_t i = 0; i < slow_output.size(); ++i) {
    ASSERT_EQ(fast.output()[i], slow_output[i]) << "output bit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Differential,
    ::testing::Values(BvmConfig{1, 1}, BvmConfig{1, 2}, BvmConfig{2, 3},
                      BvmConfig::complete(2), BvmConfig{3, 4},
                      BvmConfig{3, 8}, BvmConfig{4, 3}),
    [](const ::testing::TestParamInfo<BvmConfig>& info) {
      return "r" + std::to_string(info.param.r) + "h" +
             std::to_string(info.param.h);
    });

}  // namespace
}  // namespace ttp::bvm
