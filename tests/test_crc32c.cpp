// CRC-32C: known-answer vectors (RFC 3720 / iSCSI test patterns), the
// incremental chaining contract, and hardware/table agreement on random
// buffers — the store's record checksums must verify across hosts with and
// without SSE4.2.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/crc32c.hpp"
#include "util/rng.hpp"

namespace ttp::util {
namespace {

TEST(Crc32c, KnownAnswerVectors) {
  // The CRC-32C check value and friends; any convention slip (init, xorout,
  // reflection, polynomial) breaks at least one of these.
  EXPECT_EQ(crc32c("", 0), 0x00000000u);
  EXPECT_EQ(crc32c("a", 1), 0xC1D04330u);
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  const char* fox = "The quick brown fox jumps over the lazy dog";
  EXPECT_EQ(crc32c(fox, std::strlen(fox)), 0x22620404u);
}

TEST(Crc32c, Rfc3720Patterns) {
  // 32 bytes of zeros / ones / ascending — the iSCSI spec's test patterns.
  std::vector<unsigned char> buf(32, 0x00);
  EXPECT_EQ(crc32c(buf.data(), buf.size()), 0x8A9136AAu);
  buf.assign(32, 0xFF);
  EXPECT_EQ(crc32c(buf.data(), buf.size()), 0x62A8AB43u);
  for (int i = 0; i < 32; ++i) buf[static_cast<std::size_t>(i)] =
      static_cast<unsigned char>(i);
  EXPECT_EQ(crc32c(buf.data(), buf.size()), 0x46DD794Eu);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  Rng rng(0xC3C32C);
  std::string bytes;
  for (int i = 0; i < 1000; ++i) {
    bytes.push_back(static_cast<char>(rng.next_u64() & 0xff));
  }
  const std::uint32_t whole = crc32c(bytes.data(), bytes.size());
  // Split at every odd/word-straddling boundary a record writer might use.
  for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{8},
                                  std::size_t{9}, std::size_t{500},
                                  bytes.size()}) {
    std::uint32_t st = crc32c_init();
    st = crc32c_extend(st, bytes.data(), split);
    st = crc32c_extend(st, bytes.data() + split, bytes.size() - split);
    EXPECT_EQ(crc32c_finish(st), whole) << "split at " << split;
  }
}

TEST(Crc32c, BitFlipChangesChecksum) {
  std::string bytes(64, '\x5a');
  const std::uint32_t base = crc32c(bytes.data(), bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] ^= 0x01;
    EXPECT_NE(crc32c(bytes.data(), bytes.size()), base) << "flip at " << i;
    bytes[i] ^= 0x01;
  }
}

TEST(Crc32c, ImplNameIsResolved) {
  const std::string_view name = crc32c_impl_name();
  EXPECT_TRUE(name == "sse42" || name == "table") << name;
  EXPECT_EQ(name == "sse42", crc32c_hw_available());
}

TEST(Crc32c, RandomLengthsStableAcrossCalls) {
  // Exercises every tail length through both the 8-byte main loop and the
  // byte tail; on an SSE4.2 host this runs the hardware path, and the KAT
  // tests above pin it to the same convention as the table path.
  Rng rng(77);
  for (int len = 0; len <= 64; ++len) {
    std::string a;
    for (int i = 0; i < len; ++i) {
      a.push_back(static_cast<char>(rng.next_u64() & 0xff));
    }
    EXPECT_EQ(crc32c(a.data(), a.size()), crc32c(a.data(), a.size()));
  }
}

}  // namespace
}  // namespace ttp::util
