// Bit-serial arithmetic microcode vs host arithmetic, across every PE
// simultaneously (each PE gets different operand values).
#include <gtest/gtest.h>

#include "bvm/microcode/arith.hpp"
#include "util/rng.hpp"

namespace ttp::bvm {
namespace {

constexpr int kBits = 10;

struct ArithFixture : ::testing::Test {
  ArithFixture() : m(BvmConfig{2, 3}) {}  // 32 PEs

  // Loads per-PE values into a field.
  void load(Field f, const std::vector<std::uint64_t>& vals) {
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      m.poke_value(f.base, f.len, pe, vals[pe]);
    }
  }
  std::uint64_t read(Field f, std::size_t pe) {
    return m.peek_value(f.base, f.len, pe);
  }
  std::vector<std::uint64_t> random_vals(std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<std::uint64_t> v(m.num_pes());
    for (auto& x : v) x = rng.uniform(0, field_inf(kBits));
    return v;
  }

  Machine m;
  Field x{0, kBits}, y{kBits, kBits}, z{2 * kBits, kBits};
  Field scratch{3 * kBits, kBits};
  int flag = 4 * kBits, tmp = 4 * kBits + 1, ovf = 4 * kBits + 2;
};

TEST_F(ArithFixture, SetConstAndCopy) {
  set_const(m, x, 0x2A5);
  copy_field(m, y, x);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(read(x, pe), 0x2A5u);
    EXPECT_EQ(read(y, pe), 0x2A5u);
  }
}

TEST_F(ArithFixture, AddSatMatchesHost) {
  const auto xv = random_vals(1), yv = random_vals(2);
  load(x, xv);
  load(y, yv);
  add_sat(m, z, x, y, tmp);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(read(z, pe), sat_add_host(xv[pe], yv[pe], kBits)) << pe;
  }
}

TEST_F(ArithFixture, AddSatAliasing) {
  const auto xv = random_vals(3), yv = random_vals(4);
  load(x, xv);
  load(y, yv);
  add_sat(m, x, x, y, tmp);  // dst aliases x
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(read(x, pe), sat_add_host(xv[pe], yv[pe], kBits)) << pe;
  }
}

TEST_F(ArithFixture, InfIsAbsorbing) {
  std::vector<std::uint64_t> xv(m.num_pes(), field_inf(kBits));
  const auto yv = random_vals(5);
  load(x, xv);
  load(y, yv);
  add_sat(m, z, x, y, tmp);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(read(z, pe), field_inf(kBits)) << pe;
  }
}

TEST_F(ArithFixture, LessThanMatchesHost) {
  const auto xv = random_vals(6), yv = random_vals(7);
  load(x, xv);
  load(y, yv);
  less_than(m, flag, x, y, tmp);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(m.peek(Reg::R(flag), pe), xv[pe] < yv[pe]) << pe;
  }
}

TEST_F(ArithFixture, LessThanEqualOperands) {
  const auto xv = random_vals(8);
  load(x, xv);
  load(y, xv);
  less_than(m, flag, x, y, tmp);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_FALSE(m.peek(Reg::R(flag), pe)) << pe;
  }
}

TEST_F(ArithFixture, EqualsFieldAndConst) {
  auto xv = random_vals(9);
  xv[3] = 0x155;
  load(x, xv);
  equals_const(m, flag, x, 0x155, tmp);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(m.peek(Reg::R(flag), pe), xv[pe] == 0x155u) << pe;
  }
  auto yv = xv;
  yv[7] ^= 0x20;
  load(y, yv);
  equals_field(m, flag, x, y, tmp);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(m.peek(Reg::R(flag), pe), xv[pe] == yv[pe]) << pe;
  }
}

TEST_F(ArithFixture, SelectByFlag) {
  const auto xv = random_vals(10), yv = random_vals(11);
  load(x, xv);
  load(y, yv);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke(Reg::R(flag), pe, pe % 3 == 0);
  }
  select(m, z, flag, x, y);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(read(z, pe), pe % 3 == 0 ? xv[pe] : yv[pe]) << pe;
  }
}

TEST_F(ArithFixture, MinViaCompareSelect) {
  const auto xv = random_vals(12), yv = random_vals(13);
  load(x, xv);
  load(y, yv);
  less_than(m, flag, y, x, tmp);      // flag = y < x
  select(m, x, flag, y, x);           // x = min(x, y)
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(read(x, pe), std::min(xv[pe], yv[pe])) << pe;
  }
}

TEST_F(ArithFixture, PopcountBits) {
  // Use registers 60..65 as input bits.
  const std::vector<int> bits{60, 61, 62, 63, 64};
  util::Rng rng(77);
  std::vector<int> expect(m.num_pes(), 0);
  for (int b : bits) {
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      const bool v = rng.bernoulli(0.5);
      m.poke(Reg::R(b), pe, v);
      expect[pe] += v ? 1 : 0;
    }
  }
  Field cnt{70, 3};
  popcount_bits(m, cnt, bits);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(read(cnt, pe), static_cast<std::uint64_t>(expect[pe])) << pe;
  }
}

TEST_F(ArithFixture, MultiplySatMatchesHost) {
  util::Rng rng(14);
  std::vector<std::uint64_t> xv(m.num_pes()), yv(m.num_pes());
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    // Mix small products and guaranteed overflows.
    xv[pe] = rng.uniform(0, pe % 4 == 0 ? field_inf(kBits) : 40);
    yv[pe] = rng.uniform(0, pe % 4 == 0 ? field_inf(kBits) : 25);
  }
  load(x, xv);
  load(y, yv);
  multiply_sat(m, z, x, y, scratch, ovf, tmp);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(read(z, pe), sat_mul_host(xv[pe], yv[pe], kBits))
        << pe << ": " << xv[pe] << " * " << yv[pe];
  }
}

TEST_F(ArithFixture, MultiplyShiftMatchesHostModel) {
  util::Rng rng(21);
  for (int shift : {0, 3, 5}) {
    std::vector<std::uint64_t> xv(m.num_pes()), yv(m.num_pes());
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      xv[pe] = rng.uniform(0, field_inf(kBits));
      yv[pe] = rng.uniform(0, field_inf(kBits));
    }
    load(x, xv);
    load(y, yv);
    multiply_shift_sat(m, z, x, y, shift, scratch, ovf, tmp);
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      EXPECT_EQ(read(z, pe), sat_mulshift_host(xv[pe], yv[pe], shift, kBits))
          << "shift=" << shift << " pe=" << pe << ": " << xv[pe] << " * "
          << yv[pe];
    }
  }
}

TEST_F(ArithFixture, MultiplyShiftTruncationErrorBounded) {
  // |machine - true| <= shift ulps (per-partial truncation bound).
  const int shift = 4;
  std::vector<std::uint64_t> xv(m.num_pes()), yv(m.num_pes());
  util::Rng rng(22);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    // Keep true products below the 10-bit saturation point.
    xv[pe] = rng.uniform(0, 120);
    yv[pe] = rng.uniform(0, 100);
  }
  load(x, xv);
  load(y, yv);
  multiply_shift_sat(m, z, x, y, shift, scratch, ovf, tmp);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    const double truth =
        static_cast<double>(xv[pe]) * static_cast<double>(yv[pe]) /
        static_cast<double>(1 << shift);
    EXPECT_LE(std::abs(static_cast<double>(read(z, pe)) - truth),
              static_cast<double>(shift) + 1.0)
        << pe;
  }
}

TEST_F(ArithFixture, MultiplyByZeroAndInf) {
  std::vector<std::uint64_t> xv(m.num_pes(), field_inf(kBits));
  std::vector<std::uint64_t> yv(m.num_pes(), 0);
  yv[1] = 1;
  load(x, xv);
  load(y, yv);
  multiply_sat(m, z, x, y, scratch, ovf, tmp);
  EXPECT_EQ(read(z, 0), 0u);                 // INF * 0 = 0 (p(S)=0 case)
  EXPECT_EQ(read(z, 1), field_inf(kBits));   // INF * 1 = INF
}

TEST_F(ArithFixture, InstructionBudgets) {
  // The paper's cost claims hinge on the p-instruction scaling of the
  // bit-serial primitives; pin the exact counts.
  const auto base = m.instr_count();
  add_sat(m, z, x, y, tmp);
  EXPECT_EQ(m.instr_count() - base, static_cast<std::uint64_t>(2 * kBits + 1));
  const auto base2 = m.instr_count();
  less_than(m, flag, x, y, tmp);
  EXPECT_EQ(m.instr_count() - base2, static_cast<std::uint64_t>(kBits + 2));
  const auto base3 = m.instr_count();
  select(m, z, flag, x, y);
  EXPECT_EQ(m.instr_count() - base3, static_cast<std::uint64_t>(kBits + 1));
}

}  // namespace
}  // namespace ttp::bvm
