// The pipelined lateral wave: must produce exactly the same register state
// as the per-dimension exchange+select sequence, at materially lower
// instruction cost, on every machine shape — and the TT solver with
// pipelined laterals must reproduce the unpipelined solver's tables.
#include <gtest/gtest.h>

#include "bvm/microcode/exchange.hpp"
#include "tt/generator.hpp"
#include "tt/solver_bvm.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

namespace ttp::bvm {
namespace {

class WaveTest : public ::testing::TestWithParam<BvmConfig> {};

TEST_P(WaveTest, MatchesPerDimExchangeSelect) {
  const BvmConfig cfg = GetParam();
  const int p = 5;
  const Field v{0, p}, x{p, p};
  const int adopt_base = 2 * p;          // h rows
  const int cur = 2 * p + cfg.h;
  const int take = cur + 1, tmp = cur + 2;

  for (int q_lo = 0; q_lo < cfg.h; ++q_lo) {
    for (int q_hi = q_lo; q_hi <= cfg.h; ++q_hi) {
      Machine wave(cfg), ref(cfg);
      util::Rng rng(static_cast<std::uint64_t>(q_lo * 31 + q_hi));
      // Same data and adopt flags on both machines.
      for (std::size_t pe = 0; pe < cfg.num_pes(); ++pe) {
        const auto val = rng.uniform(0, (1u << p) - 1);
        wave.poke_value(v.base, p, pe, val);
        ref.poke_value(v.base, p, pe, val);
        for (int q = q_lo; q < q_hi; ++q) {
          const bool ad = rng.bernoulli(0.5);
          wave.poke(Reg::R(adopt_base + q), pe, ad);
          ref.poke(Reg::R(adopt_base + q), pe, ad);
        }
      }

      lateral_wave_ascend(wave, q_lo, q_hi,
                          {WaveField{v, adopt_base, cur}});

      // Reference: ascending per-dim exchange + select.
      for (int q = q_lo; q < q_hi; ++q) {
        dim_exchange_read(ref, cfg.r + q, v, x, tmp);
        set_b_from(ref, adopt_base + q);
        (void)take;
        for (int t = 0; t < p; ++t) {
          Instr in;
          in.dest = v.reg(t);
          in.f = kTtMux;  // B ? partner : own
          in.g = kTtB;
          in.src_f = v.reg(t);
          in.src_d = x.reg(t);
          ref.exec(in);
        }
      }

      for (std::size_t pe = 0; pe < cfg.num_pes(); ++pe) {
        ASSERT_EQ(wave.peek_value(v.base, p, pe),
                  ref.peek_value(v.base, p, pe))
            << "q_lo=" << q_lo << " q_hi=" << q_hi << " pe=" << pe;
      }
      // Adopt rows return home unscathed.
      for (int q = q_lo; q < q_hi; ++q) {
        for (std::size_t pe = 0; pe < cfg.num_pes(); ++pe) {
          ASSERT_EQ(wave.peek(Reg::R(adopt_base + q), pe),
                    ref.peek(Reg::R(adopt_base + q), pe));
        }
      }
    }
  }
}

TEST_P(WaveTest, DescendMatchesPerDimExchangeSelect) {
  const BvmConfig cfg = GetParam();
  const int p = 5;
  const Field v{0, p}, x{p, p};
  const int adopt_base = 2 * p;
  const int cur = 2 * p + cfg.h;
  const int tmp = cur + 2;

  for (int q_lo = 0; q_lo < cfg.h; ++q_lo) {
    for (int q_hi = q_lo; q_hi <= cfg.h; ++q_hi) {
      Machine wave(cfg), ref(cfg);
      util::Rng rng(static_cast<std::uint64_t>(q_lo * 37 + q_hi + 7));
      for (std::size_t pe = 0; pe < cfg.num_pes(); ++pe) {
        const auto val = rng.uniform(0, (1u << p) - 1);
        wave.poke_value(v.base, p, pe, val);
        ref.poke_value(v.base, p, pe, val);
        for (int q = q_lo; q < q_hi; ++q) {
          const bool ad = rng.bernoulli(0.5);
          wave.poke(Reg::R(adopt_base + q), pe, ad);
          ref.poke(Reg::R(adopt_base + q), pe, ad);
        }
      }

      lateral_wave_descend(wave, q_lo, q_hi,
                           {WaveField{v, adopt_base, cur}});

      for (int q = q_hi - 1; q >= q_lo; --q) {  // descending reference
        dim_exchange_read(ref, cfg.r + q, v, x, tmp);
        set_b_from(ref, adopt_base + q);
        for (int t = 0; t < p; ++t) {
          Instr in;
          in.dest = v.reg(t);
          in.f = kTtMux;
          in.g = kTtB;
          in.src_f = v.reg(t);
          in.src_d = x.reg(t);
          ref.exec(in);
        }
      }

      for (std::size_t pe = 0; pe < cfg.num_pes(); ++pe) {
        ASSERT_EQ(wave.peek_value(v.base, p, pe),
                  ref.peek_value(v.base, p, pe))
            << "q_lo=" << q_lo << " q_hi=" << q_hi << " pe=" << pe;
      }
    }
  }
}

TEST_P(WaveTest, CostModelMatchesAndBeatsPerDim) {
  const BvmConfig cfg = GetParam();
  const int p = 8;
  const Field v{0, p};
  const int adopt_base = p, cur = p + cfg.h;
  Machine m(cfg);
  const std::vector<WaveField> fields{WaveField{v, adopt_base, cur}};
  const auto before = m.instr_count();
  lateral_wave_ascend(m, 0, cfg.h, fields);
  const auto wave_cost = m.instr_count() - before;
  EXPECT_EQ(wave_cost, lateral_wave_cost(cfg, 0, cfg.h, fields));

  std::uint64_t per_dim = 0;
  for (int q = 0; q < cfg.h; ++q) {
    per_dim += dim_exchange_cost(cfg, cfg.r + q, p) +
               static_cast<std::uint64_t>(p) + 1;  // + select
  }
  if (cfg.h >= 4) {
    EXPECT_LT(wave_cost, per_dim)
        << "pipelining should pay off once several laterals share the lap";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WaveTest,
    ::testing::Values(BvmConfig{1, 1}, BvmConfig{1, 2}, BvmConfig{2, 2},
                      BvmConfig::complete(2), BvmConfig{3, 4},
                      BvmConfig::complete(3)),
    [](const ::testing::TestParamInfo<BvmConfig>& info) {
      return "r" + std::to_string(info.param.r) + "h" +
             std::to_string(info.param.h);
    });

}  // namespace
}  // namespace ttp::bvm

namespace ttp::tt {
namespace {

TEST(BvmPipelined, SolverTablesIdenticalToUnpipelined) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    util::Rng rng(seed);
    RandomOptions ropt;
    ropt.num_tests = 3 + static_cast<int>(seed % 3);
    ropt.num_treatments = 3;
    ropt.integer_costs = true;
    ropt.integer_weights = true;
    const Instance ins = random_instance(4 + static_cast<int>(seed % 3),
                                         ropt, rng);
    BvmSolverOptions a;
    a.format = util::Fixed::Format{20, 0};
    BvmSolverOptions b = a;
    b.pipelined_laterals = true;
    const auto ra = BvmSolver(a).solve(ins);
    const auto rb = BvmSolver(b).solve(ins);
    EXPECT_EQ(max_table_diff(ra.table, rb.table), 0.0) << seed;
    EXPECT_EQ(ra.table.best_action, rb.table.best_action) << seed;
    EXPECT_LT(rb.breakdown.get("layers"), ra.breakdown.get("layers"))
        << "the wave must reduce layer-loop instructions (seed " << seed
        << ")";
  }
}

TEST(BvmPipelined, MatchesSequentialExactly) {
  util::Rng rng(404);
  RandomOptions ropt;
  ropt.num_tests = 4;
  ropt.num_treatments = 4;
  ropt.integer_costs = true;
  ropt.integer_weights = true;
  const Instance ins = random_instance(6, ropt, rng);
  BvmSolverOptions opt;
  opt.format = util::Fixed::Format{22, 0};
  opt.pipelined_laterals = true;
  const auto bvm = BvmSolver(opt).solve(ins);
  const auto seq = SequentialSolver().solve(ins);
  EXPECT_EQ(max_table_diff(bvm.table, seq.table), 0.0);
  EXPECT_EQ(bvm.table.best_action, seq.table.best_action);
}

}  // namespace
}  // namespace ttp::tt
