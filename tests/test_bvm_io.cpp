// Serial I-chain loading vs host DMA: both paths must agree, and the serial
// path must cost exactly n shift instructions per register row.
#include <gtest/gtest.h>

#include "bvm/io.hpp"
#include "util/rng.hpp"

namespace ttp::bvm {
namespace {

std::vector<bool> pattern(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<bool> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.bernoulli(0.5);
  return v;
}

TEST(BvmIo, SerialLoadMatchesDma) {
  const BvmConfig cfg{2, 3};
  Machine serial(cfg), dma(cfg);
  const auto bits = pattern(cfg.num_pes(), 5);
  load_register_serial(serial, Reg::R(3), bits);
  load_register_host(dma, Reg::R(3), bits);
  for (std::size_t pe = 0; pe < cfg.num_pes(); ++pe) {
    ASSERT_EQ(serial.peek(Reg::R(3), pe), dma.peek(Reg::R(3), pe)) << pe;
    ASSERT_EQ(dma.peek(Reg::R(3), pe), bits[pe]) << pe;
  }
  EXPECT_EQ(serial.instr_count(), cfg.num_pes() + 1);
  EXPECT_EQ(dma.instr_count(), 0u);
}

TEST(BvmIo, SerialReadRoundTrip) {
  const BvmConfig cfg{2, 2};
  Machine m(cfg);
  const auto bits = pattern(cfg.num_pes(), 9);
  load_register_host(m, Reg::R(7), bits);
  const auto out = read_register_serial(m, Reg::R(7));
  ASSERT_EQ(out.size(), bits.size());
  for (std::size_t pe = 0; pe < bits.size(); ++pe) {
    EXPECT_EQ(out[pe], bits[pe]) << pe;
  }
}

TEST(BvmIo, HostReadMatches) {
  const BvmConfig cfg{1, 2};
  Machine m(cfg);
  const auto bits = pattern(cfg.num_pes(), 11);
  load_register_host(m, Reg::R(0), bits);
  EXPECT_EQ(read_register_host(m, Reg::R(0)), bits);
}

TEST(BvmIo, SizeMismatchRejected) {
  Machine m(BvmConfig{1, 1});
  EXPECT_THROW(load_register_serial(m, Reg::R(0), std::vector<bool>(3)),
               std::invalid_argument);
  EXPECT_THROW(load_register_host(m, Reg::R(0), std::vector<bool>(99)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ttp::bvm
