// Reachable-subspace sparse DP solver (tt/solver_frontier.hpp): closure
// expansion, bitwise dense/sparse equality, the adaptive planner, and the
// svc sparse admission tier end to end through the wire protocol.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "svc/server.hpp"
#include "svc/service.hpp"
#include "svc/wire.hpp"
#include "tt/generator.hpp"
#include "tt/kernel_sparse.hpp"
#include "tt/serialize.hpp"
#include "tt/sizing.hpp"
#include "tt/solver_frontier.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/validate.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

using util::bit;

/// Interval-structured instance: prefix tests T_m = {0..m-1} plus one
/// universal treatment. Every reachable state is a contiguous bit interval,
/// so |R| = O(k²) regardless of k — the regime the sparse solver exists
/// for. Optional padding appends duplicate-set actions (distinct costs so
/// argmins stay unambiguous under the lowest-index tie rule), which grow N
/// without growing the closure.
Instance interval_instance(int k, int pad_actions = 0) {
  std::vector<double> w(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) w[static_cast<std::size_t>(i)] = 0.01 + 0.003 * i;
  Instance ins(k, std::move(w));
  for (int m = 1; m < k; ++m) {
    ins.add_test(util::universe(m), 1.0 + 0.1 * m);
  }
  for (int p = 0; p < pad_actions / 2; ++p) {
    const int m = 1 + p % (k - 1);
    ins.add_test(util::universe(m), 5.0 + 0.01 * p);
  }
  ins.add_treatment(ins.universe(), 3.0);
  for (int p = 0; p < pad_actions - pad_actions / 2; ++p) {
    ins.add_treatment(ins.universe(), 6.0 + 0.01 * p);
  }
  return ins;
}

/// Singleton tests for every object + universal treatment: the worst case,
/// whose closure is the full 2^k lattice.
Instance singleton_instance(int k) {
  std::vector<double> w(static_cast<std::size_t>(k), 0.1);
  Instance ins(k, std::move(w));
  for (int i = 0; i < k; ++i) ins.add_test(bit(i), 1.0 + 0.1 * i);
  ins.add_treatment(ins.universe(), 2.0);
  return ins;
}

void expect_same_tree(const Tree& a, const Tree& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.root(), b.root());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.node(i).state, b.node(i).state) << "node " << i;
    EXPECT_EQ(a.node(i).action, b.node(i).action) << "node " << i;
    EXPECT_EQ(a.node(i).yes, b.node(i).yes) << "node " << i;
    EXPECT_EQ(a.node(i).no, b.node(i).no) << "node " << i;
  }
}

/// The core contract: on every reachable state the sparse tables must be
/// BITWISE identical to the dense DP — cost, argmin, tree, and the
/// restricted step accounting.
void expect_dense_sparse_identical(const Instance& ins) {
  const SolveResult dense = SequentialSolver().solve(ins);
  FrontierTables tables;
  const FrontierSolver frontier(2);
  const SolveResult sparse = frontier.solve_sparse(ins, &tables);

  EXPECT_EQ(sparse.cost, dense.cost);  // bitwise (== on identical doubles)
  expect_same_tree(sparse.tree, dense.tree);
  EXPECT_TRUE(sparse.table.cost.empty());  // no 2^k tables — the point

  ASSERT_FALSE(tables.masks.empty());
  for (std::size_t slot = 0; slot < tables.masks.size(); ++slot) {
    const Mask m = tables.masks[slot];
    const std::size_t mi = static_cast<std::size_t>(m);
    EXPECT_EQ(tables.cost[slot], dense.table.cost[mi]) << "mask " << m;
    EXPECT_EQ(tables.best[slot], dense.table.best_action[mi]) << "mask " << m;
  }

  // Restricted sequential cost model: every reachable non-empty state is
  // evaluated against all N actions, once.
  const std::uint64_t expect_ops =
      static_cast<std::uint64_t>(tables.masks.size() - 1) *
      static_cast<std::uint64_t>(ins.num_actions());
  EXPECT_EQ(sparse.steps.total_ops, expect_ops);
  EXPECT_EQ(sparse.steps.parallel_steps, expect_ops);
  EXPECT_EQ(sparse.breakdown.get("frontier_states"),
            tables.masks.size());
}

TEST(FrontierStateMap, InsertFindGrowAndReject) {
  StateMap map;
  map.reset(4);
  util::Rng rng(11);
  std::vector<Mask> keys;
  for (int i = 0; i < 5000; ++i) {
    const Mask m = static_cast<Mask>(rng.uniform(0, (1 << 24) - 1));
    if (map.insert(m, static_cast<std::uint32_t>(keys.size()))) {
      keys.push_back(m);
    }
  }
  EXPECT_EQ(map.size(), keys.size());
  EXPECT_GE(map.capacity(), 2 * map.size());  // ≤ 50% load
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(map.find(keys[i]), static_cast<std::uint32_t>(i));
    EXPECT_FALSE(map.insert(keys[i], 999));  // duplicate keeps the value
    EXPECT_EQ(map.find(keys[i]), static_cast<std::uint32_t>(i));
  }
  // A key that was never inserted misses (kMaxUniverse bound keeps it real).
  Mask absent = 0;
  while (map.find(absent) != StateMap::kNotFound) ++absent;
  EXPECT_EQ(map.find(absent), StateMap::kNotFound);
}

TEST(FrontierStateMap, ResetKeepsCapacityAndEmptiesMap) {
  StateMap map;
  map.reset(1000);
  for (Mask m = 1; m <= 1000; ++m) map.insert(m, m);
  const std::size_t cap = map.capacity();
  map.reset(8);
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), cap);  // arena reuse: backing array retained
  EXPECT_EQ(map.find(17), StateMap::kNotFound);
  map.insert(17, 3);
  EXPECT_EQ(map.find(17), 3u);
}

TEST(FrontierClosure, IntervalInstanceHasQuadraticClosure) {
  const int k = 16;
  const Instance ins = interval_instance(k);
  FrontierArena arena;
  const ClosureResult cr =
      expand_reachable(ins, std::size_t{1} << k, arena);
  ASSERT_TRUE(cr.complete);
  // Contiguous intervals only: far fewer than 2^k states.
  EXPECT_LE(cr.states, static_cast<std::size_t>(k) * k);
  EXPECT_EQ(arena.states, cr.states);

  // Layout discipline: ∅ at slot 0, layers ascend, masks ascend per layer,
  // and the map agrees with the layout.
  ASSERT_EQ(arena.layer_off.size(), static_cast<std::size_t>(k) + 2);
  EXPECT_EQ(arena.masks.data()[0], 0u);
  EXPECT_EQ(arena.layer_off.back(), arena.states);
  for (int j = 1; j <= k; ++j) {
    const std::size_t b = arena.layer_off[static_cast<std::size_t>(j)];
    const std::size_t e = arena.layer_off[static_cast<std::size_t>(j) + 1];
    for (std::size_t s = b; s < e; ++s) {
      EXPECT_EQ(util::popcount(arena.masks.data()[s]), j);
      if (s > b) EXPECT_LT(arena.masks.data()[s - 1], arena.masks.data()[s]);
      EXPECT_EQ(arena.map.find(arena.masks.data()[s]),
                static_cast<std::uint32_t>(s));
    }
  }
  // p(S) matches the dense table bitwise on every reachable state.
  const std::vector<double>& wt = ins.subset_weight_table();
  for (std::size_t s = 0; s < arena.states; ++s) {
    EXPECT_EQ(arena.ws.data()[s],
              wt[static_cast<std::size_t>(arena.masks.data()[s])]);
  }
}

TEST(FrontierClosure, SingletonTestsReachTheFullLattice) {
  const int k = 6;
  FrontierArena arena;
  const ClosureResult cr =
      expand_reachable(singleton_instance(k), (std::size_t{1} << k) + 1, arena);
  ASSERT_TRUE(cr.complete);
  EXPECT_EQ(cr.states, std::size_t{1} << k);
}

TEST(FrontierClosure, NeverSplitAndDuplicateActionsAddNothing) {
  const int k = 10;
  const Instance plain = interval_instance(k);
  // A test with set = U never splits any S (S − U = ∅), and duplicate-set
  // actions rediscover existing children only.
  Instance padded = interval_instance(k, /*pad_actions=*/12);
  padded.add_test(padded.universe(), 9.0);
  FrontierArena a1, a2;
  const ClosureResult r1 = expand_reachable(plain, std::size_t{1} << k, a1);
  const ClosureResult r2 = expand_reachable(padded, std::size_t{1} << k, a2);
  ASSERT_TRUE(r1.complete);
  ASSERT_TRUE(r2.complete);
  EXPECT_EQ(r1.states, r2.states);
}

TEST(FrontierClosure, KOneHasTwoStates) {
  Instance ins(1, {1.0});
  ins.add_treatment(bit(0), 1.0);
  FrontierArena arena;
  const ClosureResult cr = expand_reachable(ins, 16, arena);
  ASSERT_TRUE(cr.complete);
  EXPECT_EQ(cr.states, 2u);  // ∅ and U
}

TEST(FrontierClosure, BudgetAbortReportsLowerBound) {
  const int k = 10;
  FrontierArena arena;
  const ClosureResult cr = expand_reachable(singleton_instance(k), 64, arena);
  EXPECT_FALSE(cr.complete);
  EXPECT_GT(cr.states, 64u);
  EXPECT_FALSE(arena.complete);
}

TEST(FrontierEquality, RandomMixedInstances) {
  util::Rng rng(42);
  for (int trial = 0; trial < 12; ++trial) {
    const int k = 6 + trial % 7;  // 6..12
    RandomOptions opt;
    opt.num_tests = 2 + static_cast<int>(rng.uniform(0, k));
    opt.num_treatments = 1 + static_cast<int>(rng.uniform(0, k));
    const Instance ins = random_instance(k, opt, rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + " k=" + std::to_string(k));
    expect_dense_sparse_identical(ins);
  }
}

TEST(FrontierEquality, TieHeavyIntegerInstances) {
  util::Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const int k = 7 + trial % 5;
    RandomOptions opt;
    opt.num_tests = k;
    opt.num_treatments = 3;
    opt.integer_costs = true;   // many exactly-equal M values →
    opt.integer_weights = true;  // the lowest-index tie rule must decide
    opt.min_cost = 1.0;
    opt.max_cost = 3.0;
    const Instance ins = random_instance(k, opt, rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + " k=" + std::to_string(k));
    expect_dense_sparse_identical(ins);
  }
}

TEST(FrontierEquality, ExtremeWeightSpread) {
  // Twelve orders of magnitude across the weights: any deviation from the
  // dense solver's summation association shows up immediately.
  const int k = 8;
  std::vector<double> w = {1e12, 3.0, 1e-9, 7.5, 2e10, 1e-6, 42.0, 5e-3};
  Instance ins(k, std::move(w));
  util::Rng rng(3);
  for (int i = 0; i < k; ++i) {
    ins.add_test(static_cast<Mask>(rng.uniform(1, (1 << k) - 2)),
                 rng.uniform_real(0.5, 4.0));
  }
  for (int i = 0; i < k; ++i) {
    ins.add_treatment(bit(i) | static_cast<Mask>(rng.uniform(0, (1 << k) - 1)),
                      rng.uniform_real(0.5, 4.0));
  }
  ASSERT_TRUE(ins.every_object_treatable());
  expect_dense_sparse_identical(ins);
}

TEST(FrontierEquality, TreatmentOnlyInstances) {
  util::Rng rng(19);
  for (int trial = 0; trial < 6; ++trial) {
    const int k = 6 + trial;
    RandomOptions opt;
    opt.num_tests = 0;
    opt.num_treatments = k + 2;
    const Instance ins = random_instance(k, opt, rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + " k=" + std::to_string(k));
    expect_dense_sparse_identical(ins);
  }
}

TEST(FrontierPlanner, DenseBelowMinSparseK) {
  const Instance ins = interval_instance(8);
  const FrontierSolver solver(2);  // default config: min_sparse_k = 15
  const SolveResult res = solver.solve(ins);
  // The dense path materializes the 2^k table and records no frontier
  // counters; cost still matches the reference.
  EXPECT_FALSE(res.table.cost.empty());
  EXPECT_EQ(res.breakdown.get("frontier_states"), 0u);
  EXPECT_EQ(res.cost, SequentialSolver().solve(ins).cost);
}

TEST(FrontierPlanner, SparseAboveMinSparseK) {
  const Instance ins = interval_instance(16);
  FrontierConfig cfg;
  cfg.min_sparse_k = 15;
  const FrontierSolver solver(2, cfg);
  const SolveResult res = solver.solve(ins);
  EXPECT_TRUE(res.table.cost.empty());
  EXPECT_GT(res.breakdown.get("frontier_states"), 0u);
  EXPECT_EQ(res.cost, SequentialSolver().solve(ins).cost);
}

TEST(FrontierPlanner, BudgetOvershootFallsBackDense) {
  // Singleton tests make R = 2^9 = 512 states; a 64-state budget aborts
  // the expansion and the planner reruns the dense arena path.
  const Instance ins = singleton_instance(9);
  FrontierConfig cfg;
  cfg.min_sparse_k = 2;
  cfg.max_states = 64;
  const FrontierSolver solver(2, cfg);
  const SolveResult res = solver.solve(ins);
  EXPECT_EQ(res.breakdown.get("frontier_fallback"), 1u);
  EXPECT_FALSE(res.table.cost.empty());
  EXPECT_EQ(res.cost, SequentialSolver().solve(ins).cost);
}

TEST(FrontierPlanner, ThrowsWhenCappedAboveTheDenseCeiling) {
  const Instance ins = singleton_instance(9);
  FrontierConfig cfg;
  cfg.min_sparse_k = 2;
  cfg.max_states = 64;
  cfg.dense_max_k = 8;  // no dense fallback for k = 9
  const FrontierSolver solver(2, cfg);
  EXPECT_THROW((void)solver.solve(ins), std::runtime_error);
}

TEST(FrontierPlanner, ForcedSparseThrowsOnPinnedBudget) {
  FrontierConfig cfg;
  cfg.max_states = 16;
  const FrontierSolver solver(1, cfg);
  EXPECT_THROW((void)solver.solve_sparse(singleton_instance(8)),
               std::runtime_error);
}

TEST(FrontierPlanner, EstimatorExactAndCapped) {
  const Instance ins = interval_instance(16);
  const ReachableEstimate big = estimate_reachable(ins, 1u << 16);
  ASSERT_TRUE(big.exact);
  EXPECT_LE(big.states, 16u * 16u);
  const ReachableEstimate small = estimate_reachable(ins, 8);
  EXPECT_FALSE(small.exact);
  EXPECT_GT(small.states, 8u);
  EXPECT_LE(small.states, big.states);
}

TEST(FrontierPlanner, StateBudgetArithmetic) {
  FrontierConfig cfg;
  cfg.max_state_bytes = 400 * 1024;  // 400 KiB / 40 B = 10240 states
  cfg.dense_crossover = 0.125;
  cfg.dense_max_k = 20;
  // Above the dense ceiling: pure byte-budget cap.
  EXPECT_EQ(cfg.state_budget(22), 10240u);
  // Inside the dense range the crossover fraction caps harder: 2^16/8.
  EXPECT_EQ(cfg.state_budget(16), 8192u);
  // The floor keeps tiny budgets from starving small closures.
  cfg.max_state_bytes = 1024;
  EXPECT_EQ(cfg.state_budget(22), 1024u);
  // A pinned max_states wins over the byte budget.
  cfg.max_states = 77;
  EXPECT_EQ(cfg.state_budget(22), 77u);
}

}  // namespace
}  // namespace ttp::tt

namespace ttp::svc {
namespace {

std::string session(Service& svc, const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  serve_session(svc, in, out);
  return out.str();
}

TEST(SvcFrontierAdmission, RejectNamesTheTrippedLimit) {
  ServiceConfig cfg;
  cfg.scheduler.max_k = 4;
  cfg.scheduler.max_actions = 32;
  cfg.scheduler.max_sparse_k = 12;
  // A deliberately tiny byte budget; the probe's state cap still floors at
  // 1024 states, so the rejected instance below needs a closure above that.
  cfg.scheduler.sparse_budget_bytes = 64 * tt::kSparseBytesPerState;
  Service svc(cfg);

  {  // N above max_actions.
    tt::Instance ins = tt::interval_instance(4, /*pad_actions=*/40);
    const Response r = svc.solve(ins);
    EXPECT_EQ(r.status, Status::kRejectedOversize);
    EXPECT_NE(r.error.find("(actions)"), std::string::npos) << r.error;
  }
  {  // k above even the sparse ceiling.
    const Response r = svc.solve(tt::interval_instance(14));
    EXPECT_EQ(r.status, Status::kRejectedOversize);
    EXPECT_NE(r.error.find("(k)"), std::string::npos) << r.error;
  }
  {  // Sparse tier, but the closure (2^11 = 2048 states) exceeds the
     // floored 1024-state budget.
    const Response r = svc.solve(tt::singleton_instance(11));
    EXPECT_EQ(r.status, Status::kRejectedOversize);
    EXPECT_NE(r.error.find("(sparse-budget)"), std::string::npos) << r.error;
  }
  EXPECT_EQ(svc.metrics().get("svc.sched.rejected_oversize"), 3u);
}

TEST(SvcFrontierAdmission, SparseTierAdmitsAndCountsFrontierSolves) {
  ServiceConfig cfg;
  cfg.scheduler.max_k = 4;  // dense ceiling well below the instance's k
  cfg.scheduler.max_sparse_k = 16;
  Service svc(cfg);
  const tt::Instance ins = tt::interval_instance(16);
  const Response r = svc.solve(ins);
  ASSERT_EQ(r.status, Status::kOk) << r.error;
  EXPECT_GT(svc.metrics().get("svc.solve.frontier.instances"), 0u);
  EXPECT_GT(svc.metrics().get("svc.solve.frontier.states"), 0u);
  const double want = tt::SequentialSolver().solve(ins).cost;
  EXPECT_NEAR(r.cost, want, 1e-9 * std::max(1.0, std::abs(want)));
}

TEST(SvcFrontierAdmission, StatsTextReportsAdmissionLimits) {
  ServiceConfig cfg;
  cfg.scheduler.max_k = 12;
  cfg.scheduler.max_sparse_k = 18;
  Service svc(cfg);
  const std::string stats = svc.stats_text();
  EXPECT_NE(stats.find("admission.max_k: 12"), std::string::npos) << stats;
  EXPECT_NE(stats.find("admission.max_actions: 4096"), std::string::npos);
  EXPECT_NE(stats.find("admission.max_sparse_k: 18"), std::string::npos);
  EXPECT_NE(stats.find("admission.sparse_budget_bytes:"), std::string::npos);
}

TEST(SvcFrontierAdmission, ParseServeArgsSparseFlags) {
  const char* argv[] = {"ttp_serve", "--max-sparse-k=22",
                        "--sparse-budget-mb=16"};
  ServeArgs args;
  std::string error;
  ASSERT_TRUE(
      parse_serve_args(static_cast<int>(std::size(argv)), argv, args, error))
      << error;
  EXPECT_EQ(args.cfg.scheduler.max_sparse_k, 22);
  EXPECT_EQ(args.cfg.scheduler.sparse_budget_bytes, std::size_t{16} << 20);
  // Out-of-range rejects: the sparse ceiling is bounded by kMaxUniverse.
  const char* bad[] = {"ttp_serve", "--max-sparse-k=25"};
  ServeArgs args2;
  EXPECT_FALSE(parse_serve_args(static_cast<int>(std::size(bad)), bad, args2,
                                error));
}

TEST(SvcFrontierAdmission, ServesK22ThroughTheWireProtocol) {
  // The acceptance scenario: a k = 22 instance — far beyond the dense
  // admission ceiling — served end to end through the default-configured
  // wire path (max_sparse_k = 24), because its reachable closure is tiny.
  const int k = 22;
  const tt::Instance ins = tt::interval_instance(k, /*pad_actions=*/66);
  ASSERT_EQ(ins.num_actions(), 88);  // N = 4k, the paper's linear budget
  Service svc;

  const std::string reply =
      session(svc, "SOLVE\n" + tt::to_text(ins) + "END\nQUIT\n");
  ASSERT_EQ(reply.rfind("OK cache=miss cost=", 0), 0u) << reply;

  // Parse the reply: header line, tree payload, END.
  const std::size_t nl = reply.find('\n');
  const std::string head = reply.substr(0, nl);
  const std::size_t cost_at = head.find("cost=") + 5;
  const double cost = std::stod(head.substr(cost_at));
  const std::size_t end_at = reply.find("\nEND\n");
  ASSERT_NE(end_at, std::string::npos);
  const tt::Tree tree = tree_from_wire(reply.substr(nl + 1, end_at - nl));

  // The returned procedure is a valid optimal-cost tree for the instance.
  const tt::ValidationReport report = tt::validate_tree(ins, tree, cost);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
  EXPECT_GT(svc.metrics().get("svc.solve.frontier.instances"), 0u);
}

}  // namespace
}  // namespace ttp::svc
