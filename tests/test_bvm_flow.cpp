// BVM-level broadcasting and propagation (§4.3-§4.4) against the word-level
// hypercube versions of the same algorithms.
#include <gtest/gtest.h>

#include "bvm/microcode/broadcast.hpp"
#include "bvm/microcode/ids.hpp"
#include "bvm/microcode/propagate.hpp"
#include "util/bits.hpp"

namespace ttp::bvm {
namespace {

TEST(BvmBroadcast, FromPe0ReachesEveryPe) {
  const BvmConfig cfg{2, 3};  // 32 PEs
  Machine m(cfg);
  const int len = 6;
  const Field value{0, len}, scratch{len, len};
  const int sender = 2 * len, tmp_flag = sender + 1, tmp = sender + 2;
  m.poke_value(value.base, len, 0, 0x2B);
  broadcast_from_pe0(m, value, sender, scratch, tmp_flag, tmp);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(m.peek_value(value.base, len, pe), 0x2Bu) << pe;
    EXPECT_TRUE(m.peek(Reg::R(sender), pe)) << pe;
  }
}

TEST(BvmBroadcast, SubcubeSenderSet) {
  // Broadcasting from a lower subcube (all PEs with address < 4 hold the
  // value) floods everyone in ASCEND order too.
  const BvmConfig cfg{2, 2};
  Machine m(cfg);
  const int len = 4;
  const Field value{0, len}, scratch{len, len};
  const int sender = 10, tmp_flag = 11, tmp = 12;
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    m.poke(Reg::R(sender), pe, pe < 4);
    if (pe < 4) m.poke_value(value.base, len, pe, 0x9);
  }
  broadcast_field(m, value, sender, scratch, tmp_flag, tmp);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    EXPECT_EQ(m.peek_value(value.base, len, pe), 0x9u) << pe;
  }
}

struct PropFixture : ::testing::Test {
  PropFixture() : m(BvmConfig{2, 2}) {  // 16 PEs, dims = 4
    load_processor_id_host(m, pid);
  }
  Machine m;
  const int pid = 0;
  const int sender = 10, recv = 11, tmp_flag = 12, tmp = 13;
  const Field value{20, 4}, scratch{24, 4};
  std::vector<int> all_dims{0, 1, 2, 3};
};

TEST_F(PropFixture, Propagation1OneLevel) {
  // Paper's §4.4 example (N=2): PE 0111 receives from 0110, 0101, 0011.
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    const bool send = util::popcount(static_cast<util::Mask>(pe)) == 2;
    m.poke(Reg::R(sender), pe, send);
    m.poke_value(value.base, value.len, pe, send ? pe : 0);
  }
  m.poke(Reg::R(recv), 0, false);  // recv row starts clear
  propagation1_round(m, all_dims, sender, recv, value, scratch, pid, tmp_flag,
                     tmp);
  EXPECT_EQ(m.peek_value(value.base, value.len, 0b0111),
            static_cast<std::uint64_t>(0b0110 | 0b0101 | 0b0011));
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    const int pc = util::popcount(static_cast<util::Mask>(pe));
    EXPECT_EQ(m.peek(Reg::R(recv), pe), pc == 3) << pe;
  }
}

TEST_F(PropFixture, Propagation1WalksAllLevels) {
  m.poke(Reg::R(sender), 0, true);
  m.poke_value(value.base, value.len, 0, 0xF);
  for (int level = 1; level <= 4; ++level) {
    propagation1_round(m, all_dims, sender, recv, value, scratch, pid,
                       tmp_flag, tmp);
    propagation1_promote(m, sender, recv);
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      const bool in_group =
          util::popcount(static_cast<util::Mask>(pe)) == level;
      ASSERT_EQ(m.peek(Reg::R(sender), pe), in_group)
          << "level " << level << " pe " << pe;
      if (in_group) {
        ASSERT_EQ(m.peek_value(value.base, value.len, pe), 0xFu);
      }
    }
  }
}

TEST_F(PropFixture, Propagation2FloodsSupersets) {
  for (std::size_t pe : {1u, 2u, 4u, 8u}) {
    m.poke(Reg::R(sender), pe, true);
    m.poke_value(value.base, value.len, pe, pe);
  }
  propagation2(m, all_dims, sender, value, scratch, pid, tmp_flag, tmp);
  for (std::size_t pe = 1; pe < m.num_pes(); ++pe) {
    // Every PE ends with the OR of its singleton subsets = its own address.
    ASSERT_EQ(m.peek_value(value.base, value.len, pe), pe) << pe;
    ASSERT_TRUE(m.peek(Reg::R(sender), pe)) << pe;
  }
}

TEST_F(PropFixture, Propagation1OverDimSubset) {
  // Restrict to dims {2,3}: groups count only the high address bits — the
  // TT program's use (set dims only).
  std::vector<int> dims{2, 3};
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    const bool send = (pe >> 2) == 0;  // high bits zero
    m.poke(Reg::R(sender), pe, send);
    m.poke_value(value.base, value.len, pe, send ? 1 : 0);
  }
  propagation1_round(m, dims, sender, recv, value, scratch, pid, tmp_flag,
                     tmp);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    const int hi_pc = util::popcount(static_cast<util::Mask>(pe >> 2));
    EXPECT_EQ(m.peek(Reg::R(recv), pe), hi_pc == 1) << pe;
  }
}

}  // namespace
}  // namespace ttp::bvm
