// Cross-solver argmin determinism on tie-heavy instances. Equal table
// *costs* can hide divergent tie-breaking; the repo's contract is stronger:
// among equal-cost actions the LOWEST INDEX wins, in every table-building
// backend, so all solvers reconstruct the identical procedure tree. These
// instances are built to maximize ties (unit costs, uniform priors,
// symmetric action sets) — the case where a sloppy reduction order or a
// non-strict comparison would silently pick a different argmin.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tt/generator.hpp"
#include "tt/solver_ccc.hpp"
#include "tt/solver_hypercube.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/solver_state_parallel.hpp"
#include "tt/solver_threads.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

/// Every non-trivial subset as a unit-cost test, every singleton as a
/// unit-cost treatment, uniform priors: maximal tie pressure.
Instance all_subsets_unit_cost(int k) {
  Instance ins(k, std::vector<double>(static_cast<std::size_t>(k), 1.0));
  const Mask full = util::universe(k);
  for (Mask s = 1; s < full; ++s) ins.add_test(s, 1.0);
  for (int j = 0; j < k; ++j) ins.add_treatment(util::bit(j), 1.0);
  return ins;
}

/// Random sets, but every cost exactly 1 — ties abound wherever two
/// actions induce equal-cost splits.
Instance random_unit_cost(int k, std::uint64_t seed) {
  util::Rng rng(seed);
  RandomOptions opt;
  opt.num_tests = 6;
  opt.num_treatments = 5;
  opt.integer_costs = true;
  opt.max_cost = 1.0;
  return random_instance(k, opt, rng);
}

void expect_identical_argmins(const Instance& ins) {
  const auto seq = SequentialSolver().solve(ins);

  struct Backend {
    const char* name;
    SolveResult res;
  };
  const std::vector<Backend> backends = {
      {"threads(1)", ThreadsSolver(1).solve(ins)},
      {"threads(3)", ThreadsSolver(3).solve(ins)},
      {"threads-pair(2)",
       ThreadsSolver(2, ThreadsSolver::Mode::kPairParallel).solve(ins)},
      {"hypercube", HypercubeSolver().solve(ins)},
      {"ccc", CccSolver().solve(ins)},
      {"state_parallel", StateParallelSolver().solve(ins)},
  };
  for (const Backend& b : backends) {
    EXPECT_EQ(max_table_diff(seq.table, b.res.table), 0.0) << b.name;
    // The strong check: identical best_action tables, not just equal costs.
    EXPECT_EQ(seq.table.best_action, b.res.table.best_action) << b.name;
  }

  // And the argmin itself obeys the lowest-index rule: no smaller index
  // attains the minimum anywhere.
  const std::vector<double>& wt = ins.subset_weight_table();
  for (std::size_t s = 1; s < seq.table.cost.size(); ++s) {
    const int arg = seq.table.best_action[s];
    if (arg < 0) continue;
    EXPECT_EQ(action_value(ins, seq.table.cost, wt, static_cast<Mask>(s), arg),
              seq.table.cost[s])
        << s;
    for (int i = 0; i < arg; ++i) {
      EXPECT_GT(action_value(ins, seq.table.cost, wt, static_cast<Mask>(s), i),
                seq.table.cost[s])
          << "state " << s << ": lower index " << i
          << " also attains the min picked at " << arg;
    }
  }
}

TEST(TieDeterminism, AllSubsetsUnitCostK4) {
  expect_identical_argmins(all_subsets_unit_cost(4));
}

TEST(TieDeterminism, AllSubsetsUnitCostK5) {
  expect_identical_argmins(all_subsets_unit_cost(5));
}

TEST(TieDeterminism, RandomUnitCostInstances) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_identical_argmins(random_unit_cost(5, seed));
  }
}

}  // namespace
}  // namespace ttp::tt
