// Layer control: the propagation realization and the popcount realization
// must produce identical #S == j flags at every layer (bench E14 measures
// their costs; this pins their equivalence).
#include <gtest/gtest.h>

#include "bvm/microcode/ids.hpp"
#include "bvm/microcode/layer.hpp"
#include "util/bits.hpp"

namespace ttp::bvm {
namespace {

class LayerTest : public ::testing::TestWithParam<LayerMode> {};

TEST_P(LayerTest, FlagsMatchPopcountOfSetBits) {
  const BvmConfig cfg{2, 3};  // 32 PEs, dims = 5
  const int a = 2, k = 3;     // low 2 dims: action index; high 3: the set S
  Machine m(cfg);
  load_processor_id_host(m, 0);
  std::vector<int> set_dims;
  for (int e = 0; e < k; ++e) set_dims.push_back(a + e);

  LayerControl lc(GetParam(), set_dims, 0, 40);
  lc.init(m);
  for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
    const int pc = util::popcount(static_cast<util::Mask>(pe >> a));
    ASSERT_EQ(m.peek(Reg::R(lc.flag()), pe), pc == 0) << pe;
  }
  for (int j = 1; j <= k; ++j) {
    lc.advance(m);
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      const int pc = util::popcount(static_cast<util::Mask>(pe >> a));
      ASSERT_EQ(m.peek(Reg::R(lc.flag()), pe), pc == j)
          << "j=" << j << " pe=" << pe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, LayerTest,
                         ::testing::Values(LayerMode::kPropagation,
                                           LayerMode::kPopcount),
                         [](const ::testing::TestParamInfo<LayerMode>& info) {
                           return info.param == LayerMode::kPropagation
                                      ? "propagation"
                                      : "popcount";
                         });

TEST(LayerCosts, PopcountFrontLoadsPropagationAmortizes) {
  const BvmConfig cfg{2, 3};
  const std::vector<int> set_dims{2, 3, 4};
  Machine mp(cfg), mc(cfg);
  load_processor_id_host(mp, 0);
  load_processor_id_host(mc, 0);
  LayerControl prop(LayerMode::kPropagation, set_dims, 0, 40);
  LayerControl pop(LayerMode::kPopcount, set_dims, 0, 40);

  prop.init(mp);
  pop.init(mc);
  const auto prop_init = mp.instr_count();
  const auto pop_init = mc.instr_count();
  prop.advance(mp);
  pop.advance(mc);
  const auto prop_step = mp.instr_count() - prop_init;
  const auto pop_step = mc.instr_count() - pop_init;
  // Propagation pays per layer (k dim exchanges); popcount pays once.
  EXPECT_GT(prop_step, pop_step);
  EXPECT_GT(pop_init, prop_init / 2);
  EXPECT_GT(prop_step, 0u);
  EXPECT_GT(pop_step, 0u);
}

}  // namespace
}  // namespace ttp::bvm
