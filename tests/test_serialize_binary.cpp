// Binary codec contract (tt/serialize): byte-exact round trips for
// instances and trees, and a decoder that survives hostile bytes —
// truncations, bit flips, and lying length fields must throw (or decode to
// some valid value), never read out of bounds. The ASan/UBSan CI jobs run
// this file, so "no OOB" is enforced, not assumed.
#include <gtest/gtest.h>

#include <string>

#include "tt/generator.hpp"
#include "tt/serialize.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/tree.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

Instance random_named_instance(int k, util::Rng& rng) {
  RandomOptions opt;
  opt.num_tests = 2 + static_cast<int>(rng.uniform(0, 6));
  opt.num_treatments = 1 + static_cast<int>(rng.uniform(0, 6));
  return random_instance(k, opt, rng);
}

TEST(SerializeBinary, InstanceRoundTripToTextByteEquality) {
  util::Rng rng(0xB1AC0DE);
  for (int k = 1; k <= 20; ++k) {
    for (int rep = 0; rep < 8; ++rep) {
      const Instance ins = random_named_instance(k, rng);
      std::string bytes;
      encode_instance_binary(ins, bytes);
      const Instance back = decode_instance_binary(bytes);
      // The decisive property: the text form (17-digit doubles, insertion
      // order) is reproduced byte for byte, so binary storage can never
      // perturb a canonical key or a solver tie-break.
      EXPECT_EQ(to_text(back), to_text(ins)) << "k=" << k << " rep=" << rep;
      // And the binary form itself is a fixed point.
      std::string again;
      encode_instance_binary(back, again);
      EXPECT_EQ(again, bytes);
    }
  }
}

TEST(SerializeBinary, InstanceRoundTripPreservesCanonicalKeyText) {
  // Awkward-but-legal doubles: denormal-ish weights, costs with no short
  // decimal form. Text round trip is exact because the bits are exact.
  Instance ins(3, {0.1, 0.30000000000000004, 12345.678901234567});
  ins.add_test(0b011, 1.0 / 3.0, "t weird");
  ins.add_treatment(0b100, 2.2250738585072014e-308, "c#1");
  ins.add_treatment(0b011, 7.0, "");
  std::string bytes;
  encode_instance_binary(ins, bytes);
  EXPECT_EQ(to_text(decode_instance_binary(bytes)), to_text(ins));
}

TEST(SerializeBinary, TreeRoundTripStructuralIdentity) {
  util::Rng rng(0x7EE);
  SequentialSolver solver;
  for (int k = 1; k <= 12; ++k) {
    const Instance ins = random_named_instance(k, rng);
    const Tree tree = solver.solve(ins).tree;
    std::string bytes;
    encode_tree_binary(tree, bytes);
    const Tree back = decode_tree_binary(bytes);
    ASSERT_EQ(back.size(), tree.size());
    EXPECT_EQ(back.root(), tree.root());
    for (int i = 0; i < tree.size(); ++i) {
      EXPECT_EQ(back.node(i).state, tree.node(i).state);
      EXPECT_EQ(back.node(i).action, tree.node(i).action);
      EXPECT_EQ(back.node(i).yes, tree.node(i).yes);
      EXPECT_EQ(back.node(i).no, tree.node(i).no);
    }
    if (!tree.empty()) {
      // Same rendering against the instance — the store serves this tree.
      EXPECT_EQ(back.to_string(ins), tree.to_string(ins));
    }
  }
}

TEST(SerializeBinary, EmptyTreeRoundTrip) {
  std::string bytes;
  encode_tree_binary(Tree{}, bytes);
  const Tree back = decode_tree_binary(bytes);
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(back.root(), -1);
}

TEST(SerializeBinary, TruncationAlwaysThrows) {
  util::Rng rng(0x7121C);
  SequentialSolver solver;
  const Instance ins = random_named_instance(8, rng);
  std::string ibytes;
  encode_instance_binary(ins, ibytes);
  std::string tbytes;
  encode_tree_binary(solver.solve(ins).tree, tbytes);
  // Every proper prefix must throw: either a truncated field or the final
  // expect_done() trailing-bytes check catches it.
  for (std::size_t len = 0; len < ibytes.size(); ++len) {
    EXPECT_THROW(decode_instance_binary(std::string_view(ibytes).substr(0, len)),
                 std::invalid_argument)
        << "instance prefix " << len;
  }
  for (std::size_t len = 0; len < tbytes.size(); ++len) {
    EXPECT_THROW(decode_tree_binary(std::string_view(tbytes).substr(0, len)),
                 std::invalid_argument)
        << "tree prefix " << len;
  }
}

TEST(SerializeBinary, OversizedCountsRejectedBeforeAllocation) {
  // A node-count varint of 2^40: must throw on the cap check, not try to
  // allocate a 16-terabyte vector.
  std::string huge;
  huge.push_back(static_cast<char>(0x80));
  huge.push_back(static_cast<char>(0x80));
  huge.push_back(static_cast<char>(0x80));
  huge.push_back(static_cast<char>(0x80));
  huge.push_back(static_cast<char>(0x80));
  huge.push_back(static_cast<char>(0x01));  // varint 2^35
  EXPECT_THROW(decode_tree_binary(huge), std::invalid_argument);
  EXPECT_THROW(decode_instance_binary(huge), std::invalid_argument);
  // An unterminated 10+-byte varint must stop at 64 bits, not shift past.
  std::string runaway(16, static_cast<char>(0xff));
  EXPECT_THROW(decode_tree_binary(runaway), std::invalid_argument);
}

TEST(SerializeBinary, BitFlipFuzzNeverReadsOutOfBounds) {
  // Seeded PRNG loop: flip one bit at a time, also splice random lengths.
  // Any outcome is acceptable except a crash/OOB (ASan enforces); a decode
  // that succeeds must yield a checkable value.
  util::Rng rng(0xF1A9);
  SequentialSolver solver;
  for (int round = 0; round < 20; ++round) {
    const Instance ins =
        random_named_instance(2 + static_cast<int>(rng.uniform(0, 8)), rng);
    std::string ibytes;
    encode_instance_binary(ins, ibytes);
    std::string tbytes;
    encode_tree_binary(solver.solve(ins).tree, tbytes);
    for (int flip = 0; flip < 64; ++flip) {
      std::string mut = ibytes;
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniform(0, mut.size() - 1));
      mut[pos] = static_cast<char>(
          mut[pos] ^ static_cast<char>(1 << rng.uniform(0, 7)));
      try {
        const Instance got = decode_instance_binary(mut);
        EXPECT_GE(got.k(), 1);  // whatever decoded is a valid instance
      } catch (const std::invalid_argument&) {
      }
      std::string tmut = tbytes;
      const std::size_t tpos =
          static_cast<std::size_t>(rng.uniform(0, tmut.size() - 1));
      tmut[tpos] = static_cast<char>(
          tmut[tpos] ^ static_cast<char>(1 << rng.uniform(0, 7)));
      try {
        const Tree got = decode_tree_binary(tmut);
        EXPECT_GE(got.size(), 0);
      } catch (const std::invalid_argument&) {
      }
    }
  }
}

}  // namespace
}  // namespace ttp::tt
