// The grand cross-check: every solver in the repository run on the same
// instances, one sweep — sequential, recursive, threads, hypercube, CCC,
// state-parallel, branch-and-bound (all bitwise identical) and the BVM
// (exact on integer formats). This is the test that makes "N solvers, one
// table" a checked invariant rather than a README claim.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

#include "obs/trace.hpp"
#include "tt/generator.hpp"
#include "tt/solver_bnb.hpp"
#include "tt/solver_bvm.hpp"
#include "tt/solver_ccc.hpp"
#include "tt/solver_exhaustive.hpp"
#include "tt/solver_hypercube.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/solver_state_parallel.hpp"
#include "tt/solver_threads.hpp"
#include "tt/validate.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

class AllSolvers : public ::testing::TestWithParam<int> {};

TEST_P(AllSolvers, OneInstanceOneTable) {
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 31 + 5);
  RandomOptions ropt;
  ropt.num_tests = 3 + seed % 3;
  ropt.num_treatments = 3 + seed % 2;
  ropt.integer_costs = true;
  ropt.integer_weights = true;
  ropt.max_cost = 4.0;
  const Instance ins = random_instance(4 + seed % 3, ropt, rng);

  const auto seq = SequentialSolver().solve(ins);

  // Bitwise-identical family.
  const auto rec = RecursiveSolver().solve(ins);
  const auto thr = ThreadsSolver(2).solve(ins);
  const auto hyp = HypercubeSolver().solve(ins);
  const auto ccc = CccSolver().solve(ins);
  const auto spp = StateParallelSolver().solve(ins);
  for (const auto* r : {&rec, &thr, &hyp, &ccc, &spp}) {
    EXPECT_EQ(max_table_diff(seq.table, r->table), 0.0) << seed;
  }
  EXPECT_EQ(seq.table.best_action, thr.table.best_action);
  EXPECT_EQ(seq.table.best_action, hyp.table.best_action);
  EXPECT_EQ(seq.table.best_action, ccc.table.best_action);
  EXPECT_EQ(seq.table.best_action, spp.table.best_action);

  // B&B: exact cost, consistent sparse table.
  const auto bnb = BnbSolver().solve(ins);
  EXPECT_EQ(bnb.cost, seq.cost);

  // BVM, both lateral realizations: exact on integer formats.
  BvmSolverOptions bopt;
  bopt.format = util::Fixed::Format{20, 0};
  const auto bvm_laps = BvmSolver(bopt).solve(ins);
  bopt.pipelined_laterals = true;
  const auto bvm_wave = BvmSolver(bopt).solve(ins);
  EXPECT_EQ(max_table_diff(seq.table, bvm_laps.table), 0.0) << seed;
  EXPECT_EQ(max_table_diff(seq.table, bvm_wave.table), 0.0) << seed;
  EXPECT_EQ(seq.table.best_action, bvm_laps.table.best_action);
  EXPECT_EQ(seq.table.best_action, bvm_wave.table.best_action);

  // And the winning procedure is a valid, correctly-priced tree.
  if (!std::isinf(seq.cost)) {
    const auto rep = validate_tree(ins, seq.tree, seq.cost);
    EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
    for (const auto* r : {&thr, &hyp, &ccc, &spp, &bnb, &bvm_wave}) {
      EXPECT_EQ(r->tree.size(), seq.tree.size()) << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllSolvers, ::testing::Range(0, 10));

// Observability self-consistency: with tracing on, every backend's root span
// must account for exactly the steps the solver reports, and the per-layer
// child spans must partition that total — no step may fall outside a child,
// none may be double-counted.
TEST(SolverSpanAccounting, LayerDeltasPartitionSolverTotals) {
  util::Rng rng(12345);
  RandomOptions ropt;
  ropt.num_tests = 4;
  ropt.num_treatments = 3;
  ropt.integer_costs = true;
  ropt.integer_weights = true;
  ropt.max_cost = 4.0;
  const Instance ins = random_instance(5, ropt, rng);
  const int k = ins.k();

  BvmSolverOptions bopt;
  bopt.format = util::Fixed::Format{20, 0};

  struct Backend {
    std::string root;
    std::function<SolveResult()> run;
    bool wall_only_root = false;  ///< root watches wall+instr, not StepCounter
  };
  const std::vector<Backend> backends = {
      {"solve.sequential", [&] { return SequentialSolver().solve(ins); }},
      {"solve.threads", [&] { return ThreadsSolver(2).solve(ins); }},
      {"solve.hypercube", [&] { return HypercubeSolver().solve(ins); }},
      {"solve.ccc", [&] { return CccSolver().solve(ins); }},
      {"solve.state_parallel", [&] { return StateParallelSolver().solve(ins); }},
      {"solve.bvm", [&] { return BvmSolver(bopt).solve(ins); }, true},
  };

  for (const Backend& backend : backends) {
    obs::tracer().configure(obs::TraceConfig{obs::TraceMode::kSpans, ""});
    const SolveResult res = backend.run();
    const std::vector<obs::SpanRecord> spans = obs::tracer().snapshot();
    obs::tracer().configure(obs::TraceConfig{});

    const obs::SpanRecord* root = nullptr;
    for (const obs::SpanRecord& s : spans) {
      if (s.name == backend.root) {
        ASSERT_EQ(root, nullptr) << "duplicate root " << backend.root;
        root = &s;
      }
    }
    ASSERT_NE(root, nullptr) << backend.root;
    EXPECT_FALSE(root->open) << backend.root;
    EXPECT_TRUE(root->has_steps) << backend.root;
    EXPECT_EQ(root->parallel_delta(), res.steps.parallel_steps)
        << backend.root;

    std::uint64_t sum_parallel = 0, sum_routed = 0, sum_ops = 0;
    int layer_children = 0;
    for (const obs::SpanRecord& s : spans) {
      if (s.parent != root->id) continue;
      EXPECT_FALSE(s.open) << backend.root << " child " << s.name;
      sum_parallel += s.parallel_delta();
      sum_routed += s.routed_delta();
      sum_ops += s.ops_delta();
      if (s.name == "layer") ++layer_children;
    }
    EXPECT_EQ(layer_children, k) << backend.root;
    EXPECT_EQ(sum_parallel, res.steps.parallel_steps) << backend.root;
    if (!backend.wall_only_root) {
      EXPECT_EQ(sum_routed, res.steps.route_steps) << backend.root;
      EXPECT_EQ(sum_ops, res.steps.total_ops) << backend.root;
    }
  }
}

}  // namespace
}  // namespace ttp::tt
