// Binary testing vs TT: the generalization relationship the paper's title
// problem rests on, made executable.
#include <gtest/gtest.h>

#include <cmath>

#include "tt/binary_testing.hpp"
#include "tt/generator.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

Instance tests_only_instance(std::uint64_t seed, int k, int num_tests) {
  util::Rng rng(seed);
  Instance full = binary_testing_instance(k, num_tests, rng);
  Instance out(full.k(), full.weights());
  for (const Action& a : full.actions()) {
    if (a.is_test) out.add_test(a.set, a.cost, a.name);
  }
  return out;
}

TEST(BinaryTesting, TwoObjectHandComputed) {
  Instance ins(2, {0.7, 0.3});
  ins.add_test(0b01, 2.0);
  const auto res = solve_binary_testing(ins);
  EXPECT_DOUBLE_EQ(res.cost, 2.0);  // one test, paid by total weight 1.0
}

TEST(BinaryTesting, ImpossibleWithoutDistinguishingTests) {
  Instance ins(3, {1, 1, 1});
  ins.add_test(0b001, 1.0);  // objects 1 and 2 never separated
  const auto res = solve_binary_testing(ins);
  EXPECT_TRUE(std::isinf(res.cost));
}

TEST(BinaryTesting, EntropyBoundsUnitCostTesting) {
  // For unit-cost tests the expected test count is >= the prior's entropy.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance ins = tests_only_instance(seed, 5, 8);
    const auto res = solve_binary_testing(ins);
    if (std::isinf(res.cost)) continue;
    EXPECT_GE(res.cost + 1e-9, entropy_lower_bound(ins)) << seed;
  }
}

TEST(BinaryTesting, CompleteSplitsAchieveCeilLogForUniform) {
  // With every subset available as a unit test and uniform priors over
  // 2^m objects, optimal testing is a balanced tree: exactly m tests.
  const int k = 8;
  Instance ins(k, std::vector<double>(k, 1.0 / k));
  for (Mask s = 1; s < util::universe(k); ++s) ins.add_test(s, 1.0);
  const auto res = solve_binary_testing(ins);
  EXPECT_NEAR(res.cost, 3.0, 1e-9);  // log2(8) tests, total weight 1
}

TEST(BinaryTesting, IdentifyFirstUpperBoundsTt) {
  // C_tt(U) <= C_bt(U) + Σ P_j c_j for singleton-treatment instances.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const Instance tests = tests_only_instance(seed, 5, 7);
    util::Rng rng(seed + 100);
    std::vector<double> fix(5);
    for (auto& c : fix) c = rng.uniform_real(0.5, 4.0);
    const Instance tt = with_singleton_treatments(tests, fix);

    const auto bt = solve_binary_testing(tests);
    const auto full = SequentialSolver().solve(tt);
    if (std::isinf(bt.cost)) continue;
    double treat_constant = 0.0;
    for (int j = 0; j < 5; ++j) {
      treat_constant += tests.weight(j) * fix[static_cast<std::size_t>(j)];
    }
    EXPECT_LE(full.cost, bt.cost + treat_constant + 1e-9) << seed;
  }
}

TEST(BinaryTesting, EarlyTreatmentBeatsIdentificationWhenTestsAreDear) {
  // Two equally likely faults, a ruinously dear test, cheap fixes: the
  // optimal TT procedure just tries fixes in sequence — strictly cheaper
  // than identify-then-fix. This is exactly the expressive power
  // treatments add over binary testing.
  Instance tests(2, {0.5, 0.5});
  tests.add_test(0b01, 10.0);
  const Instance tt = with_singleton_treatments(tests, {1.0, 1.0});

  const auto bt = solve_binary_testing(tests);
  const auto full = SequentialSolver().solve(tt);
  const double identify_then_fix = bt.cost + 0.5 * 1.0 + 0.5 * 1.0;
  EXPECT_LT(full.cost, identify_then_fix - 1e-9);
  // Optimal: try fix0 (1.0), on failure fix1 (0.5): total 1.5.
  EXPECT_NEAR(full.cost, 1.5, 1e-12);
  // And the TT optimum uses no test at all.
  EXPECT_FALSE(tt.action(full.tree.node(full.tree.root()).action).is_test);
}

TEST(BinaryTesting, TtEqualsBtPlusConstantWhenTreatmentsForceLeaves) {
  // When fixes are free, identification-first costs nothing extra, so
  // C_tt <= C_bt; and trying free fixes blind is even better or equal —
  // C_tt is 0 here because free singleton treatments can be chained.
  Instance tests = tests_only_instance(3, 4, 6);
  const Instance tt = with_singleton_treatments(tests, {0, 0, 0, 0});
  const auto full = SequentialSolver().solve(tt);
  EXPECT_DOUBLE_EQ(full.cost, 0.0);
}

}  // namespace
}  // namespace ttp::tt
