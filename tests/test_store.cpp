// Durable procedure store: record framing, segment replay, torn-tail
// recovery, corrupt-record quarantine, TTL/budget compaction, and the
// service integration (read-through + write-behind). The SvcStore* suite
// also runs under the TSan CI job alongside the other serving tests.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "store/format.hpp"
#include "store/log.hpp"
#include "store/store.hpp"
#include "svc/service.hpp"
#include "tt/generator.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

namespace {

// Fresh directory under /tmp, recursively removed on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = "/tmp/ttp_store_test_XXXXXX";
    const char* p = ::mkdtemp(tmpl.data());
    EXPECT_NE(p, nullptr);
    path = p != nullptr ? p : "";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

}  // namespace

namespace ttp::store {
namespace {

tt::Tree solved_tree(int k, std::uint64_t seed) {
  util::Rng rng(seed);
  tt::RandomOptions opt;
  opt.num_tests = 3;
  opt.num_treatments = 3;
  return tt::SequentialSolver().solve(tt::random_instance(k, opt, rng)).tree;
}

Record make_record(std::uint64_t n, const tt::Tree& tree) {
  Record rec;
  rec.key = StoreKey{n, ~n};
  rec.stamp_s = 1000 + n;
  rec.cost = 1.5 * double(n);
  rec.tree = tree;
  return rec;
}

void expect_tree_eq(const tt::Tree& a, const tt::Tree& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.root(), b.root());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.node(i).state, b.node(i).state);
    EXPECT_EQ(a.node(i).action, b.node(i).action);
    EXPECT_EQ(a.node(i).yes, b.node(i).yes);
    EXPECT_EQ(a.node(i).no, b.node(i).no);
  }
}

TEST(StoreFormat, RecordRoundTrip) {
  const Record rec = make_record(7, solved_tree(6, 0xF00));
  std::string bytes;
  append_record(rec, bytes);
  const ParseResult got = parse_record(bytes);
  ASSERT_EQ(got.status, ParseStatus::kOk);
  EXPECT_EQ(got.consumed, bytes.size());
  EXPECT_EQ(got.record.key, rec.key);
  EXPECT_EQ(got.record.stamp_s, rec.stamp_s);
  EXPECT_EQ(got.record.kind, kRecordProcedure);
  EXPECT_EQ(got.record.cost, rec.cost);
  expect_tree_eq(got.record.tree, rec.tree);
}

TEST(StoreFormat, HeaderRejectsForeignBytes) {
  std::string good;
  append_segment_header(good);
  ASSERT_EQ(good.size(), kSegmentHeaderBytes);
  EXPECT_NO_THROW(check_segment_header(good));
  // Short.
  EXPECT_THROW(check_segment_header(std::string_view(good).substr(0, 11)),
               std::invalid_argument);
  // Bad magic.
  std::string bad = good;
  bad[0] = 'X';
  EXPECT_THROW(check_segment_header(bad), std::invalid_argument);
  // Unsupported version.
  bad = good;
  bad[4] = char(0x7f);
  EXPECT_THROW(check_segment_header(bad), std::invalid_argument);
  // Foreign byte order (endian marker bytes reversed).
  bad = good;
  std::swap(bad[8], bad[11]);
  std::swap(bad[9], bad[10]);
  EXPECT_THROW(check_segment_header(bad), std::invalid_argument);
}

TEST(StoreFormat, EveryProperPrefixIsTruncatedNotCorrupt) {
  // A torn tail is any prefix of a valid frame; the parser must report it
  // as kTruncated (recoverable: truncate and keep serving) and never as
  // kCorrupt, and must not consume anything.
  std::string bytes;
  append_record(make_record(3, solved_tree(5, 0xBEEF)), bytes);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const ParseResult got = parse_record(std::string_view(bytes).substr(0, len));
    EXPECT_EQ(got.status, ParseStatus::kTruncated) << "prefix " << len;
    EXPECT_EQ(got.consumed, 0u);
  }
}

TEST(StoreFormat, CorruptBodySkipsExactlyOneFrameAndResyncs) {
  const tt::Tree tree = solved_tree(5, 0xD00D);
  std::string first;
  append_record(make_record(1, tree), first);
  std::string second;
  append_record(make_record(2, tree), second);
  std::string both = first + second;
  // Flip one bit inside the first record's body (offset 8 = body start).
  both[10] = char(both[10] ^ 0x40);
  const ParseResult bad = parse_record(both);
  ASSERT_EQ(bad.status, ParseStatus::kCorrupt);
  ASSERT_EQ(bad.consumed, first.size()) << "must skip the whole frame";
  // Resync: the next frame parses clean.
  const ParseResult good =
      parse_record(std::string_view(both).substr(bad.consumed));
  ASSERT_EQ(good.status, ParseStatus::kOk);
  EXPECT_EQ(good.record.key, (StoreKey{2, ~std::uint64_t{2}}));
}

TEST(StoreFormat, GarbageLengthPrefixIsUnscannable) {
  // A length prefix above the sanity cap is scribbled bytes, not a skip
  // instruction: consumed == 0 tells the replayer the rest is unscannable.
  std::string bytes(64, char(0xEE));  // len field decodes way past the cap
  const ParseResult got = parse_record(bytes);
  EXPECT_EQ(got.status, ParseStatus::kCorrupt);
  EXPECT_EQ(got.consumed, 0u);
}

TEST(StoreLog, SegmentNameRoundTrip) {
  const std::string name = segment_filename(42);
  EXPECT_EQ(name, "seg-00000000000000000042.ttps");
  std::uint64_t seq = 0;
  ASSERT_TRUE(parse_segment_seq(name, seq));
  EXPECT_EQ(seq, 42u);
  EXPECT_TRUE(parse_segment_seq(segment_filename(~std::uint64_t{0} / 2), seq));
  // Foreign names are rejected, not misparsed.
  EXPECT_FALSE(parse_segment_seq("seg-00000000000000000042.tmp", seq));
  EXPECT_FALSE(parse_segment_seq("seg-xx.ttps", seq));
  EXPECT_FALSE(parse_segment_seq(".ttps", seq));
  EXPECT_FALSE(parse_segment_seq("", seq));
}

StoreConfig test_config(const std::string& dir) {
  StoreConfig cfg;
  cfg.dir = dir;
  cfg.sync = StoreConfig::Sync::kNone;  // tests care about logic, not fsync
  cfg.background_compaction = false;
  return cfg;
}

TEST(Store, PutGetRoundTrip) {
  TempDir tmp;
  obs::MetricsRegistry m;
  ProcedureStore store(test_config(tmp.path), m);
  const tt::Tree t1 = solved_tree(6, 1);
  const tt::Tree t2 = solved_tree(4, 2);
  ASSERT_TRUE(store.put(StoreKey{1, 10}, 3.5, t1));
  ASSERT_TRUE(store.put(StoreKey{2, 20}, 4.5, t2));
  const auto got1 = store.get(StoreKey{1, 10});
  ASSERT_TRUE(got1.has_value());
  EXPECT_EQ(got1->cost, 3.5);
  expect_tree_eq(got1->tree, t1);
  const auto got2 = store.get(StoreKey{2, 20});
  ASSERT_TRUE(got2.has_value());
  EXPECT_EQ(got2->cost, 4.5);
  EXPECT_FALSE(store.get(StoreKey{3, 30}).has_value());
  const StoreStats s = store.stats();
  EXPECT_EQ(s.appends, 2u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.live_records, 2u);
  EXPECT_EQ(m.get("svc.store.appends"), 2u);
}

TEST(Store, LaterPutShadowsEarlier) {
  TempDir tmp;
  obs::MetricsRegistry m;
  ProcedureStore store(test_config(tmp.path), m);
  const tt::Tree tree = solved_tree(5, 3);
  ASSERT_TRUE(store.put(StoreKey{1, 1}, 1.0, tree));
  ASSERT_TRUE(store.put(StoreKey{1, 1}, 2.0, tree));
  const auto got = store.get(StoreKey{1, 1});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->cost, 2.0);
  EXPECT_EQ(store.index_size(), 1u);  // one live key, two on-disk records
}

TEST(Store, WarmRestartRebuildsIndexAndServes) {
  TempDir tmp;
  std::vector<tt::Tree> trees;
  for (int i = 0; i < 8; ++i) trees.push_back(solved_tree(4 + i % 4, 100 + i));
  {
    obs::MetricsRegistry m;
    ProcedureStore store(test_config(tmp.path), m);
    for (std::uint64_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(store.put(StoreKey{i, i * 7}, double(i), trees[i]));
    }
  }  // graceful close: fsync + clean shutdown
  obs::MetricsRegistry m2;
  ProcedureStore store(test_config(tmp.path), m2);
  EXPECT_EQ(store.index_size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto got = store.get(StoreKey{i, i * 7});
    ASSERT_TRUE(got.has_value()) << "key " << i;
    EXPECT_EQ(got->cost, double(i));
    expect_tree_eq(got->tree, trees[i]);
  }
  EXPECT_EQ(store.stats().corrupt_skipped, 0u);
  EXPECT_EQ(store.stats().truncated_tail_bytes, 0u);
}

TEST(Store, TornTailIsTruncatedOnReopen) {
  TempDir tmp;
  std::string youngest;
  {
    obs::MetricsRegistry m;
    ProcedureStore store(test_config(tmp.path), m);
    const tt::Tree tree = solved_tree(5, 9);
    for (std::uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(store.put(StoreKey{i, i}, double(i), tree));
    }
  }
  // Find the segment holding the records and append a torn frame: a length
  // prefix promising 64 bytes of body, but the "crash" cut it at 6.
  std::uintmax_t before = 0;
  for (const auto& e : std::filesystem::directory_iterator(tmp.path)) {
    if (std::filesystem::file_size(e.path()) > kSegmentHeaderBytes) {
      youngest = e.path().string();
      before = std::filesystem::file_size(e.path());
    }
  }
  ASSERT_FALSE(youngest.empty());
  {
    std::ofstream f(youngest, std::ios::binary | std::ios::app);
    const char torn[] = {64, 0, 0, 0, 'x', 'x', 'x', 'x', 'p', 'a'};
    f.write(torn, sizeof torn);
  }
  obs::MetricsRegistry m2;
  ProcedureStore store(test_config(tmp.path), m2);
  EXPECT_EQ(store.stats().truncated_tail_bytes, 10u);
  EXPECT_EQ(std::filesystem::file_size(youngest), before)
      << "torn bytes must be physically gone";
  EXPECT_EQ(store.index_size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(store.get(StoreKey{i, i}).has_value()) << "key " << i;
  }
}

TEST(Store, CorruptMidFileRecordIsSkippedNotServed) {
  TempDir tmp;
  const tt::Tree tree = solved_tree(5, 11);
  // Hand-build a segment: header + rec1 + rec2 (to be corrupted) + rec3.
  std::string rec1, rec2, rec3;
  append_record(make_record(1, tree), rec1);
  append_record(make_record(2, tree), rec2);
  append_record(make_record(3, tree), rec3);
  rec2[9] = char(rec2[9] ^ 0x01);  // one bit inside rec2's body
  std::string file;
  append_segment_header(file);
  file += rec1 + rec2 + rec3;
  {
    std::ofstream f(tmp.path + "/" + segment_filename(1), std::ios::binary);
    f.write(file.data(), std::streamsize(file.size()));
  }
  obs::MetricsRegistry m;
  ProcedureStore store(test_config(tmp.path), m);
  EXPECT_EQ(store.stats().corrupt_skipped, 1u);
  EXPECT_TRUE(store.get(StoreKey{1, ~std::uint64_t{1}}).has_value());
  EXPECT_FALSE(store.get(StoreKey{2, ~std::uint64_t{2}}).has_value())
      << "a corrupt record must never be served";
  EXPECT_TRUE(store.get(StoreKey{3, ~std::uint64_t{3}}).has_value())
      << "replay must resync after the corrupt frame";
}

TEST(Store, CompactionDropsExpiredRecords) {
  TempDir tmp;
  std::uint64_t now = 1000;
  StoreConfig cfg = test_config(tmp.path);
  cfg.ttl_seconds = 60;
  cfg.wall_now_s = [&now] { return now; };
  obs::MetricsRegistry m;
  ProcedureStore store(cfg, m);
  const tt::Tree tree = solved_tree(5, 13);
  ASSERT_TRUE(store.put(StoreKey{1, 1}, 1.0, tree));
  now += 30;
  ASSERT_TRUE(store.put(StoreKey{2, 2}, 2.0, tree));
  now += 45;  // key 1 is now 75s old (expired), key 2 is 45s old (live)
  store.compact_now();
  EXPECT_FALSE(store.get(StoreKey{1, 1}).has_value());
  ASSERT_TRUE(store.get(StoreKey{2, 2}).has_value());
  EXPECT_EQ(store.index_size(), 1u);
  EXPECT_GE(store.stats().compactions, 1u);
}

TEST(Store, CompactionEnforcesByteBudgetKeepingRecentKeys) {
  TempDir tmp;
  std::uint64_t now = 1;
  StoreConfig cfg = test_config(tmp.path);
  cfg.max_bytes = 16u << 10;
  cfg.wall_now_s = [&now] { return ++now; };  // strictly increasing recency
  obs::MetricsRegistry m;
  ProcedureStore store(cfg, m);
  const tt::Tree tree = solved_tree(8, 17);
  constexpr std::uint64_t kKeys = 300;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(store.put(StoreKey{i, i}, double(i), tree));
  }
  const StoreStats s = store.stats();
  EXPECT_GE(s.compactions, 1u) << "the budget must have tripped";
  EXPECT_LE(s.bytes, cfg.max_bytes);
  EXPECT_LT(store.index_size(), kKeys) << "cold keys must have been dropped";
  EXPECT_GT(store.index_size(), 0u);
  // Recency order: the most recent put must survive; the oldest must not.
  EXPECT_TRUE(store.get(StoreKey{kKeys - 1, kKeys - 1}).has_value());
  EXPECT_FALSE(store.get(StoreKey{0, 0}).has_value());
  // And the surviving records still round-trip after the rewrite.
  const auto got = store.get(StoreKey{kKeys - 1, kKeys - 1});
  expect_tree_eq(got->tree, tree);
}

TEST(Store, CompactionSurvivesRestart) {
  TempDir tmp;
  {
    obs::MetricsRegistry m;
    StoreConfig cfg = test_config(tmp.path);
    ProcedureStore store(cfg, m);
    const tt::Tree tree = solved_tree(6, 19);
    for (std::uint64_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(store.put(StoreKey{i, i}, double(i), tree));
      ASSERT_TRUE(store.put(StoreKey{i, i}, double(i) + 0.5, tree));
    }
    store.compact_now();  // shadowed records rewritten away
  }
  obs::MetricsRegistry m2;
  ProcedureStore store(test_config(tmp.path), m2);
  EXPECT_EQ(store.index_size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    const auto got = store.get(StoreKey{i, i});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->cost, double(i) + 0.5) << "latest record must win";
  }
}

TEST(Store, VerifyDirReportsLiveAndCorrupt) {
  TempDir tmp;
  {
    obs::MetricsRegistry m;
    ProcedureStore store(test_config(tmp.path), m);
    const tt::Tree tree = solved_tree(5, 23);
    ASSERT_TRUE(store.put(StoreKey{1, 1}, 1.0, tree));
    ASSERT_TRUE(store.put(StoreKey{1, 1}, 2.0, tree));  // shadows
    ASSERT_TRUE(store.put(StoreKey{2, 2}, 3.0, tree));
  }
  VerifyReport rep = verify_dir(tmp.path);
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.records, 3u);
  EXPECT_EQ(rep.live_records, 2u);
  EXPECT_EQ(rep.corrupt, 0u);
  EXPECT_GT(rep.bytes, 0u);
  // Now scribble over a record body and verify again (read-only: the scan
  // must report the damage without repairing or truncating anything).
  for (const auto& e : std::filesystem::directory_iterator(tmp.path)) {
    if (std::filesystem::file_size(e.path()) > kSegmentHeaderBytes) {
      std::fstream f(e.path(), std::ios::binary | std::ios::in | std::ios::out);
      f.seekp(std::streamoff(kSegmentHeaderBytes + 10));
      f.put(char(0x5A));
    }
  }
  rep = verify_dir(tmp.path);
  EXPECT_FALSE(rep.ok);
  EXPECT_GE(rep.corrupt, 1u);
}

TEST(Store, SyncModeParses) {
  StoreConfig::Sync s{};
  EXPECT_TRUE(parse_sync_mode("none", s));
  EXPECT_EQ(s, StoreConfig::Sync::kNone);
  EXPECT_TRUE(parse_sync_mode("batch", s));
  EXPECT_EQ(s, StoreConfig::Sync::kBatch);
  EXPECT_TRUE(parse_sync_mode("always", s));
  EXPECT_EQ(s, StoreConfig::Sync::kAlways);
  EXPECT_FALSE(parse_sync_mode("Batch", s));
  EXPECT_FALSE(parse_sync_mode("", s));
  EXPECT_EQ(sync_mode_name(StoreConfig::Sync::kBatch), "batch");
}

TEST(Store, OversizedTreeDegradesToFalseNotThrow) {
  TempDir tmp;
  obs::MetricsRegistry m;
  ProcedureStore store(test_config(tmp.path), m);
  // A tree whose encoding exceeds kMaxRecordBytes: 7M nodes with wide
  // varints (high state bit, large child indices).
  std::vector<tt::TreeNode> nodes(7'000'000);
  const int last = int(nodes.size()) - 1;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].state = tt::Mask(i) | (tt::Mask(1) << 31);
    nodes[i].action = int(i % 1000);
    nodes[i].yes = last;
    nodes[i].no = last;
  }
  EXPECT_FALSE(store.put(StoreKey{1, 1}, 1.0, tt::Tree(std::move(nodes), 0)));
  EXPECT_EQ(store.index_size(), 0u);
}

}  // namespace
}  // namespace ttp::store

namespace ttp::svc {
namespace {

ServiceConfig store_backed_config(const std::string& dir) {
  ServiceConfig cfg;
  cfg.store.dir = dir;
  cfg.store.sync = store::StoreConfig::Sync::kNone;
  return cfg;
}

TEST(SvcStore, OffByDefaultAndZeroCost) {
  Service svc;
  EXPECT_EQ(svc.store(), nullptr);
  const Response r = svc.solve(tt::fig1_example());
  ASSERT_TRUE(r.ok());
  // No store => no store metrics registered and no store lines in HEALTH.
  EXPECT_EQ(svc.metrics().get("svc.store.hits"), 0u);
  EXPECT_NE(svc.health_text().find("store: off"), std::string::npos);
}

TEST(SvcStore, WriteBehindAppendsEverySolvedProcedure) {
  TempDir tmp;
  Service svc(store_backed_config(tmp.path));
  ASSERT_NE(svc.store(), nullptr);
  const Response r = svc.solve(tt::fig1_example());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.cache, CacheOutcome::kMiss);
  EXPECT_EQ(svc.metrics().get("svc.store.appends"), 1u);
  EXPECT_EQ(svc.store()->index_size(), 1u);
  // A cache hit does not re-append.
  ASSERT_TRUE(svc.solve(tt::fig1_example()).ok());
  EXPECT_EQ(svc.metrics().get("svc.store.appends"), 1u);
}

TEST(SvcStore, WarmRestartServesFromStoreWithoutKernelSolve) {
  TempDir tmp;
  const tt::Instance ins = tt::fig1_example();
  double cold_cost = 0.0;
  {
    Service svc(store_backed_config(tmp.path));
    const Response r = svc.solve(ins);
    ASSERT_TRUE(r.ok());
    cold_cost = r.cost;
  }  // drain: store flushed and closed
  Service svc(store_backed_config(tmp.path));
  const Response warm = svc.solve(ins);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.cache, CacheOutcome::kStore)
      << "the LRU is cold but the durable tier must hit";
  EXPECT_EQ(warm.cost, cold_cost);
  EXPECT_EQ(svc.metrics().get("svc.solve.kernel_instances"), 0u)
      << "a store hit must not re-solve";
  EXPECT_EQ(svc.metrics().get("svc.store.hits"), 1u);
  // The store hit populated the LRU: the next lookup is an in-memory hit.
  const Response third = svc.solve(ins);
  EXPECT_EQ(third.cache, CacheOutcome::kHit);
  EXPECT_EQ(svc.metrics().get("svc.store.hits"), 1u);
}

TEST(SvcStore, StoreHitTranslatesToRequestCoordinates) {
  // The store holds canonical procedures; a differently-spelled equivalent
  // instance served from the store must come back in its own coordinates,
  // exactly like an LRU hit would.
  TempDir tmp;
  tt::Instance scaled(4, {0.8, 0.6, 0.4, 0.2});  // fig1 weights doubled
  scaled.add_treatment(util::bit(2) | util::bit(3), 2.5, "other");
  scaled.add_test(util::bit(0) | util::bit(2), 1.5, "b");
  scaled.add_test(util::bit(0) | util::bit(1), 1.0, "a");
  scaled.add_treatment(util::bit(1) | util::bit(2), 3.0, "bc");
  scaled.add_treatment(util::bit(0), 2.0, "just-a");
  double base_cost = 0.0;
  {
    Service svc(store_backed_config(tmp.path));
    const Response r = svc.solve(tt::fig1_example());
    ASSERT_TRUE(r.ok());
    base_cost = r.cost;
  }
  Service svc(store_backed_config(tmp.path));
  const Response r = svc.solve(scaled);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.cache, CacheOutcome::kStore);
  EXPECT_NEAR(r.cost, 2.0 * base_cost, 1e-9);
}

TEST(SvcStore, ConcurrentSolvesWriteBehindSafely) {
  TempDir tmp;
  util::Rng rng(0xCAFE);
  tt::RandomOptions opt;
  opt.num_tests = 3;
  opt.num_treatments = 3;
  std::vector<tt::Instance> instances;
  for (int i = 0; i < 8; ++i) {
    instances.push_back(tt::random_instance(5, opt, rng));
  }
  {
    Service svc(store_backed_config(tmp.path));
    std::vector<std::thread> threads;
    threads.reserve(instances.size());
    for (const auto& ins : instances) {
      threads.emplace_back([&svc, &ins] { (void)svc.solve(ins); });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(svc.metrics().get("svc.store.appends"),
              svc.metrics().get("svc.solve.kernel_instances"));
  }
  // Everything written under contention is served warm by a fresh service.
  Service svc(store_backed_config(tmp.path));
  for (const auto& ins : instances) {
    const Response r = svc.solve(ins);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.cache == CacheOutcome::kStore ||
                r.cache == CacheOutcome::kHit)
        << cache_outcome_name(r.cache);
  }
  EXPECT_EQ(svc.metrics().get("svc.solve.kernel_instances"), 0u);
}

TEST(SvcStore, HealthAndStatsNameTheStore) {
  TempDir tmp;
  Service svc(store_backed_config(tmp.path));
  (void)svc.solve(tt::fig1_example());
  const std::string stats = svc.stats_text();
  EXPECT_NE(stats.find("store.dir"), std::string::npos) << stats;
  EXPECT_NE(stats.find("svc.store.appends"), std::string::npos) << stats;
  const std::string health = svc.health_text();
  EXPECT_NE(health.find("store.live_records"), std::string::npos) << health;
  const std::string prom = svc.metrics_text();
  EXPECT_NE(prom.find("ttp_svc_store_appends_total"), std::string::npos)
      << prom;
}

}  // namespace
}  // namespace ttp::svc
