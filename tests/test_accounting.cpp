// Normative step-accounting semantics (solver.hpp): the paper's claims are
// cost-model comparisons, so the simulated counters must mean the same
// thing in every backend. These tests pin the documented formulas —
// including the partial-final-round rule that ThreadsSolver used to get
// wrong — and that per-layer trace spans exactly partition the totals.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "tt/generator.hpp"
#include "tt/solver_sequential.hpp"
#include "tt/solver_threads.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

Instance accounting_instance(int k) {
  util::Rng rng(4242);
  RandomOptions opt;
  opt.num_tests = 5;
  opt.num_treatments = 4;
  return random_instance(k, opt, rng);
}

/// The documented ThreadsSolver formula: Σ_j ceil(|layer j| / width) steps,
/// N·(2^k − 1) ops.
struct Expected {
  std::uint64_t parallel_steps = 0;
  std::uint64_t total_ops = 0;
};

Expected threads_formula(int k, int num_actions, std::uint64_t width) {
  Expected e;
  for (int j = 1; j <= k; ++j) {
    const std::uint64_t n = util::layer_subsets(k, j).size();
    e.parallel_steps += (n + width - 1) / width;
    e.total_ops += n * static_cast<std::uint64_t>(num_actions);
  }
  return e;
}

TEST(StepAccounting, ThreadsMatchesDocumentedFormula) {
  const Instance ins = accounting_instance(6);
  for (std::size_t width : {1u, 2u, 3u, 5u, 8u}) {
    for (auto mode : {ThreadsSolver::Mode::kStateParallel,
                      ThreadsSolver::Mode::kPairParallel}) {
      const auto res = ThreadsSolver(width, mode).solve(ins);
      const Expected want =
          threads_formula(ins.k(), ins.num_actions(), width);
      EXPECT_EQ(res.steps.parallel_steps, want.parallel_steps)
          << "width " << width;
      EXPECT_EQ(res.steps.total_ops, want.total_ops) << "width " << width;
      EXPECT_EQ(res.steps.route_steps, 0u) << "width " << width;
    }
  }
}

TEST(StepAccounting, PartialFinalRoundIsNotOvercharged) {
  // k = 6: the middle layer has C(6,3) = 20 states. With width = 8 the old
  // accounting charged 3 rounds × N×8 = 24N ops for that layer; the rule
  // charges the 20 evaluations per action that actually happen.
  const Instance ins = accounting_instance(6);
  const auto res = ThreadsSolver(8).solve(ins);
  const std::uint64_t n_states = (std::uint64_t{1} << ins.k()) - 1;
  EXPECT_EQ(res.steps.total_ops,
            n_states * static_cast<std::uint64_t>(ins.num_actions()));
}

TEST(StepAccounting, ThreadsEvaluationCountMatchesSequential) {
  // Acceptance rule: on a single-worker pool the threaded backend performs
  // exactly the sequential number of M-evaluations — and the breakdown
  // entry both backends record agrees.
  const Instance ins = accounting_instance(6);
  const auto seq = SequentialSolver().solve(ins);
  const auto thr = ThreadsSolver(1).solve(ins);
  EXPECT_EQ(thr.steps.total_ops, seq.steps.total_ops);
  EXPECT_EQ(seq.breakdown.get("m_evaluations"), seq.steps.total_ops);
  EXPECT_EQ(thr.breakdown.get("m_evaluations"), thr.steps.total_ops);
  EXPECT_EQ(thr.breakdown.get("m_evaluations"),
            seq.breakdown.get("m_evaluations"));
  // Wider pools change the round count, never the evaluation count.
  const auto thr4 = ThreadsSolver(4).solve(ins);
  EXPECT_EQ(thr4.breakdown.get("m_evaluations"),
            seq.breakdown.get("m_evaluations"));
}

TEST(StepAccounting, LayerSpansExactlyPartitionThreadsTotals) {
  const Instance ins = accounting_instance(6);
  const int k = ins.k();
  const std::uint64_t width = 3;

  obs::tracer().configure(obs::TraceConfig{obs::TraceMode::kSpans, ""});
  const auto res = ThreadsSolver(width).solve(ins);
  const std::vector<obs::SpanRecord> spans = obs::tracer().snapshot();
  obs::tracer().configure(obs::TraceConfig{});

  const obs::SpanRecord* root = nullptr;
  for (const auto& s : spans) {
    if (s.name == "solve.threads") root = &s;
  }
  ASSERT_NE(root, nullptr);

  // Each per-layer span carries exactly its layer's documented charge, and
  // the layers together partition the solver totals.
  std::uint64_t sum_steps = 0, sum_ops = 0;
  int layers_seen = 0;
  for (const auto& s : spans) {
    if (s.parent != root->id || s.name != "layer") continue;
    int j = -1;
    for (const auto& [key, value] : s.attrs) {
      if (key == "j") j = std::stoi(value);
    }
    ASSERT_GE(j, 1);
    ASSERT_LE(j, k);
    const std::uint64_t n = util::layer_subsets(k, j).size();
    EXPECT_EQ(s.parallel_delta(), (n + width - 1) / width) << "layer " << j;
    EXPECT_EQ(s.ops_delta(),
              n * static_cast<std::uint64_t>(ins.num_actions()))
        << "layer " << j;
    sum_steps += s.parallel_delta();
    sum_ops += s.ops_delta();
    ++layers_seen;
  }
  EXPECT_EQ(layers_seen, k);
  EXPECT_EQ(sum_steps, res.steps.parallel_steps);
  EXPECT_EQ(sum_ops, res.steps.total_ops);
}

}  // namespace
}  // namespace ttp::tt
