// The hardened ttp_serve connection layer (svc/server.hpp): bounded session
// registry with shedding, poll-based idle/read deadlines, immediate reaping,
// graceful drain, validated argument parsing, and the TTP_FAULT injector —
// all driven over real sockets on the loopback interface.
#ifndef _WIN32

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/faultnet.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "svc/wire.hpp"
#include "tt/serialize.hpp"
#include "util/bits.hpp"

namespace ttp::svc {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- helpers

/// A small adequate instance, distinct per index (the weight encodes it).
tt::Instance make_instance(int idx) {
  tt::Instance ins(4, {1.0, 2.0, 3.0, 4.0 + idx});
  ins.add_test(util::bit(0) | util::bit(1), 1.0, "t0");
  ins.add_test(util::bit(1) | util::bit(2), 1.5, "t1");
  for (int j = 0; j < 4; ++j) {
    ins.add_treatment(util::bit(j), 2.0, "c" + std::to_string(j));
  }
  return ins;
}

std::string solve_frame(const tt::Instance& ins) {
  return "SOLVE\n" + tt::to_text(ins) + "END\n";
}

/// The shared wire client (svc/client.hpp), shaped for tests: loopback
/// host, send() asserts, and the convenience reads return partial text on
/// EOF/timeout — exactly what the old hand-rolled socket helper did, minus
/// the hand-rolled sockets.
class Client : public WireClient {
 public:
  explicit Client(int port) : WireClient("127.0.0.1", port) {}

  void send(const std::string& text) {
    ASSERT_TRUE(WireClient::send(text)) << error();
  }

  using WireClient::read_line;
  using WireClient::read_until;
};

/// Service + listening Server with run() on its own thread; joins on exit.
class ServerHarness {
 public:
  ServerHarness(ServiceConfig svc_cfg, ServerConfig srv_cfg)
      : svc(svc_cfg), server(svc, srv_cfg) {
    std::string error;
    listening_ = server.listen(error);
    EXPECT_TRUE(listening_) << error;
    if (listening_) runner_ = std::thread([this] { exit_code_ = server.run(); });
  }
  ~ServerHarness() { stop(); }

  /// Drains and joins; returns run()'s exit code.
  int stop() {
    if (runner_.joinable()) {
      server.begin_drain();
      runner_.join();
    }
    return exit_code_;
  }

  int port() const { return server.port(); }
  std::uint64_t counter(const char* name) {
    return svc.metrics().counter(name).value();
  }

  Service svc;
  Server server;

 private:
  bool listening_ = false;
  std::thread runner_;
  int exit_code_ = -1;
};

/// Spins until pred() or the timeout; returns pred()'s final value.
template <typename Pred>
bool eventually(Pred pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return pred();
    std::this_thread::sleep_for(2ms);
  }
  return true;
}

// ----------------------------------------------------------- TTP_FAULT plan

TEST(SvcFaultPlan, ParsesTheGrammar) {
  const FaultPlan p =
      FaultPlan::parse("eintr:3,short-read:1,short-write:7,stall:5,"
                       "drop-after:2");
  EXPECT_EQ(p.eintr_every, 3u);
  EXPECT_EQ(p.short_read, 1u);
  EXPECT_EQ(p.short_write, 7u);
  EXPECT_EQ(p.stall_ms, 5);
  EXPECT_EQ(p.drop_after_reads, 2);
  EXPECT_TRUE(p.active());
  EXPECT_FALSE(FaultPlan::parse("").active());
  EXPECT_EQ(FaultPlan{}.drop_after_reads, -1);
}

TEST(SvcFaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("eintr"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("eintr:"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("eintr:x"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("eintr:-1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("frobnicate:3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("eintr:3,bogus:1"), std::invalid_argument);
}

// ------------------------------------------- fault-injected session streams

/// Runs serve_session over one end of a socketpair whose server-side I/O is
/// fault-injected; the test plays client on the other end.
struct FaultedSession {
  int client_fd = -1;
  std::thread thread;
  SessionResult result;
  FdStreamBuf::Event event = FdStreamBuf::Event::kNone;

  FaultedSession(Service& svc, const FaultPlan& plan,
                 FdStreamBuf::Options extra = {}) {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    client_fd = fds[0];
    const int server_fd = fds[1];
    extra.faults = plan;
    thread = std::thread([this, &svc, server_fd, extra] {
      FdStreamBuf buf(server_fd, extra);
      std::istream in(&buf);
      std::ostream out(&buf);
      SessionOptions opts;
      opts.control = &buf;
      result = serve_session(svc, in, out, opts);
      out.flush();
      event = buf.event();
      ::close(server_fd);
    });
  }
  ~FaultedSession() {
    if (client_fd >= 0) ::close(client_fd);
    if (thread.joinable()) thread.join();
  }
  void join() { thread.join(); }

  void send(const std::string& text) {
    ASSERT_EQ(::send(client_fd, text.data(), text.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(text.size()));
  }
  std::string read_all() {
    std::string out;
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
      if (n <= 0) return out;
      out.append(buf, static_cast<std::size_t>(n));
    }
  }
};

TEST(SvcFaultInjector, EintrStormIsRetriedNotTreatedAsEof) {
  Service svc;
  FaultPlan plan;
  plan.eintr_every = 2;  // every other read/write EINTRs first
  FaultedSession s(svc, plan);
  s.send("PING\nPING\nPING\nQUIT\n");
  ::shutdown(s.client_fd, SHUT_WR);
  s.join();
  EXPECT_EQ(s.result.handled, 4u);
  EXPECT_EQ(s.result.end, SessionEnd::kQuit);
  EXPECT_EQ(s.read_all(), "PONG\nPONG\nPONG\nBYE\n");
}

TEST(SvcFaultInjector, ShortReadsAndWritesStillDeliverWholeFrames) {
  Service svc;
  FaultPlan plan;
  plan.short_read = 1;   // one byte per read
  plan.short_write = 3;  // three bytes per write
  plan.eintr_every = 5;  // and an EINTR storm on top
  FaultedSession s(svc, plan);
  s.send(solve_frame(make_instance(0)) + "QUIT\n");
  ::shutdown(s.client_fd, SHUT_WR);
  s.join();
  const std::string reply = s.read_all();
  EXPECT_EQ(reply.rfind("OK cache=miss", 0), 0u) << reply;
  EXPECT_NE(reply.find("\nEND\nBYE\n"), std::string::npos) << reply;
}

TEST(SvcFaultInjector, MidSolveDisconnectLeavesServiceHealthy) {
  Service svc;
  FaultPlan plan;
  plan.drop_after_reads = 1;  // EOF right after the first successful read
  {
    FaultedSession s(svc, plan);
    s.send("SOLVE\ntt 2\nweights 1 1\n");  // torn frame, never END
    ::shutdown(s.client_fd, SHUT_WR);      // let poll see the disconnect
    s.join();
    EXPECT_EQ(s.result.end, SessionEnd::kEof);
    EXPECT_EQ(s.event, FdStreamBuf::Event::kClientEof);
    // The torn frame got its one-line verdict before the session died.
    EXPECT_EQ(s.read_all().rfind("ERR bad-request", 0), 0u);
  }
  // The Service is unharmed: a well-behaved request still solves.
  const Response res = svc.solve(make_instance(1));
  EXPECT_TRUE(res.ok());
}

TEST(SvcFaultInjector, StalledReadsTripTheFrameDeadline) {
  Service svc;
  FaultPlan plan;
  plan.stall_ms = 40;  // each read stalls well past the frame budget
  FdStreamBuf::Options opts;
  opts.read_timeout_ms = 60;
  opts.idle_timeout_ms = 5000;
  FaultedSession s(svc, plan, opts);
  // The command line arrives, then the body trickles in too slowly: the
  // whole-frame deadline fires even though bytes keep flowing.
  s.send("SOLVE\n");
  std::thread feeder([&] {
    for (int i = 0; i < 50 && s.client_fd >= 0; ++i) {
      if (::send(s.client_fd, "x\n", 2, MSG_NOSIGNAL) != 2) break;
      std::this_thread::sleep_for(10ms);
    }
  });
  s.join();
  feeder.join();
  EXPECT_EQ(s.result.end, SessionEnd::kEof);
  EXPECT_EQ(s.event, FdStreamBuf::Event::kTimedOut);
}

// --------------------------------------------------------- argument parsing

TEST(SvcServeArgs, ParsesEveryFlag) {
  const char* argv[] = {
      "ttp_serve",          "--port=7070",          "--workers=3",
      "--cache-mb=16",      "--shards=4",           "--ttl-ms=500",
      "--max-k=12",         "--max-actions=99",     "--max-queue=7",
      "--max-batch=5",      "--batch-delay-us=50",  "--slow-ms=10",
      "--slow-log=/tmp/x",  "--flight-cap=64",      "--max-conns=9",
      "--idle-timeout-ms=1000", "--read-timeout-ms=200",
      "--drain-timeout-ms=3000", "--max-frame-bytes=4096",
  };
  ServeArgs args;
  std::string error;
  ASSERT_TRUE(parse_serve_args(static_cast<int>(std::size(argv)), argv, args,
                               error))
      << error;
  EXPECT_EQ(args.port, 7070);
  EXPECT_EQ(args.server.port, 7070);
  EXPECT_EQ(args.cfg.workers, 3u);
  EXPECT_EQ(args.cfg.cache.capacity_bytes, std::size_t{16} << 20);
  EXPECT_EQ(args.cfg.cache.shards, 4u);
  EXPECT_EQ(args.cfg.scheduler.max_k, 12);
  EXPECT_EQ(args.cfg.scheduler.max_actions, 99);
  EXPECT_EQ(args.cfg.scheduler.max_queue, 7u);
  EXPECT_EQ(args.cfg.scheduler.max_batch, 5u);
  EXPECT_EQ(args.cfg.telemetry.slow_ms, 10);
  EXPECT_EQ(args.cfg.telemetry.slow_log, "/tmp/x");
  EXPECT_EQ(args.cfg.telemetry.flight_capacity, 64u);
  EXPECT_EQ(args.server.max_conns, 9u);
  EXPECT_EQ(args.server.idle_timeout_ms, 1000);
  EXPECT_EQ(args.server.read_timeout_ms, 200);
  EXPECT_EQ(args.server.drain_timeout_ms, 3000);
  EXPECT_EQ(args.server.max_frame_bytes, 4096u);
}

TEST(SvcServeArgs, RejectsWrappingAndGarbageValues) {
  const std::vector<std::vector<const char*>> bad = {
      {"ttp_serve", "--cache-mb=-1"},   // would wrap to ~2^64 bytes
      {"ttp_serve", "--workers=0"},     // zero pool confusingly = hardware
      {"ttp_serve", "--port=70x"},      // trailing garbage
      {"ttp_serve", "--port=99999"},    // above 65535
      {"ttp_serve", "--max-k=0"},       //
      {"ttp_serve", "--max-k=33"},      // Mask is 32 bits
      {"ttp_serve", "--max-queue=-5"},  //
      {"ttp_serve", "--max-frame-bytes=10"},  // below the 1 KiB floor
      {"ttp_serve", "--drain-timeout-ms=0"},  //
      {"ttp_serve", "--port="},         // empty value
      {"ttp_serve", "--frobnicate=1"},  // unknown flag
  };
  for (const auto& argv : bad) {
    ServeArgs args;
    std::string error;
    EXPECT_FALSE(parse_serve_args(static_cast<int>(argv.size()), argv.data(),
                                  args, error))
        << argv[1];
    EXPECT_FALSE(error.empty()) << argv[1];
  }
}

TEST(SvcServeArgs, HelpShortCircuits) {
  const char* argv[] = {"ttp_serve", "--help", "--port=banana"};
  ServeArgs args;
  std::string error;
  ASSERT_TRUE(parse_serve_args(3, argv, args, error));
  EXPECT_TRUE(args.help);
}

// ----------------------------------------------------------- session pool

TEST(SvcServer, ShedsAtMaxConnsWithTypedError) {
  ServerConfig cfg;
  cfg.max_conns = 2;
  cfg.idle_timeout_ms = 10000;
  ServerHarness h(ServiceConfig{}, cfg);

  Client a(h.port()), b(h.port());
  a.send("PING\n");
  b.send("PING\n");
  EXPECT_EQ(a.read_line(), "PONG");
  EXPECT_EQ(b.read_line(), "PONG");

  Client c(h.port());
  ASSERT_TRUE(c.connected());
  const std::string verdict = c.read_line();
  EXPECT_EQ(verdict.rfind("ERR overload", 0), 0u) << verdict;
  EXPECT_GE(h.counter("svc.server.shed"), 1u);
  EXPECT_EQ(h.counter("svc.server.accepted"), 2u);

  // Shedding is not sticky: once a slot frees, new connections are served.
  a.send("QUIT\n");
  EXPECT_EQ(a.read_line(), "BYE");
  ASSERT_TRUE(eventually([&] { return h.server.active_sessions() < 2; }));
  Client d(h.port());
  d.send("PING\n");
  EXPECT_EQ(d.read_line(), "PONG");
  EXPECT_EQ(h.stop(), 0);
}

TEST(SvcServer, RegistryStaysBoundedAcrossManyConnections) {
  // The original serve_tcp pushed one never-joined thread per connection
  // into an unbounded vector; 1000 sequential sessions now leave the
  // registry no larger than max_conns at any point.
  ServerConfig cfg;
  cfg.max_conns = 8;
  ServerHarness h(ServiceConfig{}, cfg);

  for (int i = 0; i < 1000; ++i) {
    Client c(h.port());
    ASSERT_TRUE(c.connected()) << "connection " << i;
    c.send("QUIT\n");
    ASSERT_EQ(c.read_line(), "BYE") << "connection " << i;
  }
  EXPECT_EQ(h.counter("svc.server.accepted"), 1000u);
  EXPECT_LE(h.server.peak_sessions(), cfg.max_conns);
  ASSERT_TRUE(eventually([&] { return h.server.active_sessions() == 0; }));
  EXPECT_EQ(h.stop(), 0);
}

TEST(SvcServer, IdleTimeoutEvictsSilentConnections) {
  ServerConfig cfg;
  cfg.idle_timeout_ms = 100;
  cfg.read_timeout_ms = 5000;
  ServerHarness h(ServiceConfig{}, cfg);

  Client c(h.port());
  ASSERT_TRUE(c.connected());
  const std::string verdict = c.read_line(3000);  // sent nothing at all
  EXPECT_EQ(verdict.rfind("ERR timeout", 0), 0u) << verdict;
  ASSERT_TRUE(eventually([&] { return h.counter("svc.server.timed_out") >= 1; }));
  EXPECT_EQ(h.stop(), 0);
}

TEST(SvcServer, ReadTimeoutEvictsTornFrames) {
  ServerConfig cfg;
  cfg.idle_timeout_ms = 10000;
  cfg.read_timeout_ms = 100;
  ServerHarness h(ServiceConfig{}, cfg);

  Client c(h.port());
  c.send("SOLVE\ntt 2\nweights 1 1\n");  // frame body never finishes
  const std::string verdict = c.read_line(3000);
  EXPECT_EQ(verdict.rfind("ERR timeout", 0), 0u) << verdict;
  ASSERT_TRUE(eventually([&] { return h.counter("svc.server.timed_out") >= 1; }));
  EXPECT_EQ(h.stop(), 0);
}

TEST(SvcServer, AbruptMidSolveDisconnectLeavesServiceHealthy) {
  ServerHarness h(ServiceConfig{}, ServerConfig{});
  {
    Client c(h.port());
    c.send("SOLVE\ntt 2\nweights 1 1\n");
    c.close();  // vanish mid-frame, END never sent
  }
  Client ok(h.port());
  ok.send(solve_frame(make_instance(2)));
  const std::string head = ok.read_line();
  EXPECT_EQ(head.rfind("OK cache=miss", 0), 0u) << head;
  ok.read_until("END");
  EXPECT_EQ(h.stop(), 0);
}

TEST(SvcServer, OversizeFrameGetsItsVerdictEarly) {
  ServerConfig cfg;
  cfg.max_frame_bytes = 1024;
  ServerHarness h(ServiceConfig{}, cfg);

  Client c(h.port());
  std::string frame = "SOLVE\n";
  frame.append(2048, 'x');
  c.send(frame + "\n");  // END still unsent — the verdict must not wait
  const std::string verdict = c.read_line(3000);
  EXPECT_EQ(verdict.rfind("ERR oversize", 0), 0u) << verdict;
  // Finish the frame: the session stays in protocol sync.
  c.send("END\nPING\n");
  EXPECT_EQ(c.read_line(), "PONG");
  EXPECT_EQ(h.stop(), 0);
}

TEST(SvcServer, DrainCompletesInflightSolvesAndExitsInBudget) {
  // The ISSUE's drain proof: 16 concurrent in-flight SOLVEs, drain begins,
  // every request still gets a terminal reply (OK or ERR cancelled), an
  // idle connection gets BYE, and run() returns 0 within the budget.
  ServiceConfig svc_cfg;
  svc_cfg.scheduler.batch_delay = std::chrono::microseconds(200'000);
  svc_cfg.scheduler.max_batch = 16;
  ServerConfig cfg;
  cfg.max_conns = 64;
  cfg.drain_timeout_ms = 8000;
  ServerHarness h(svc_cfg, cfg);

  Client idle(h.port());
  ASSERT_TRUE(idle.connected());

  struct Result {
    std::string head;
    std::string tail;
  };
  std::vector<Result> results(16);
  std::vector<std::thread> clients;
  clients.reserve(16);
  for (int i = 0; i < 16; ++i) {
    clients.emplace_back([&, i] {
      Client c(h.port());
      c.send(solve_frame(make_instance(i)));
      results[static_cast<std::size_t>(i)].head = c.read_line(10000);
      if (results[static_cast<std::size_t>(i)].head.rfind("OK", 0) == 0) {
        c.read_until("END", 10000);
      }
      results[static_cast<std::size_t>(i)].tail = c.read_line(10000);
    });
  }
  // All 16 are in flight (admitted to the scheduler, held by batch_delay).
  ASSERT_TRUE(eventually(
      [&] { return h.counter("svc.sched.leaders") >= 16; }, 5000));

  const auto t0 = std::chrono::steady_clock::now();
  h.server.begin_drain();
  const int exit_code = h.stop();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(exit_code, 0);
  EXPECT_LT(elapsed.count(), cfg.drain_timeout_ms + 2000);

  for (std::thread& t : clients) t.join();
  for (const Result& r : results) {
    const bool terminal = r.head.rfind("OK cache=", 0) == 0 ||
                          r.head.rfind("ERR cancelled", 0) == 0;
    EXPECT_TRUE(terminal) << "non-terminal reply: '" << r.head << "'";
    if (r.head.rfind("OK", 0) == 0) {
      EXPECT_EQ(r.tail, "BYE") << r.tail;
    }
  }
  // The idle session was told goodbye rather than being cut.
  EXPECT_EQ(idle.read_line(), "BYE");
  EXPECT_GE(h.counter("svc.server.drained"), 1u);
  EXPECT_TRUE(h.svc.draining());
}

TEST(SvcServer, SlowlorisCannotDelayOtherClients) {
  // One connection stuck mid-frame must not affect a concurrent
  // well-behaved client's latency (thread-per-session isolation), and is
  // evicted on its own frame deadline.
  ServerConfig cfg;
  cfg.read_timeout_ms = 400;
  ServerHarness h(ServiceConfig{}, cfg);

  Client slow(h.port());
  ASSERT_TRUE(slow.connected());
  slow.send("SOLVE\ntt 2\n");  // frame begun; the body now stalls

  Client fast(h.port());
  const auto t0 = std::chrono::steady_clock::now();
  fast.send(solve_frame(make_instance(7)));
  const std::string head = fast.read_line();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_EQ(head.rfind("OK cache=miss", 0), 0u) << head;
  EXPECT_LT(ms, 2000) << "slowloris delayed a healthy client";
  // And the slowloris is evicted on its own schedule.
  const std::string verdict = slow.read_line(3000);
  EXPECT_EQ(verdict.rfind("ERR timeout", 0), 0u) << verdict;
  EXPECT_EQ(h.stop(), 0);
}

TEST(SvcServer, HealthReportsDrainingDuringDrain) {
  ServerHarness h(ServiceConfig{}, ServerConfig{});
  EXPECT_FALSE(h.svc.draining());
  EXPECT_EQ(h.svc.health_text().rfind("ready", 0), 0u);
  h.server.begin_drain();
  EXPECT_TRUE(h.svc.draining());
  EXPECT_EQ(h.svc.health_text().rfind("draining", 0), 0u);
  EXPECT_EQ(h.stop(), 0);
}

TEST(SvcServer, SchedulerSubmitAfterStopResolvesCancelled) {
  // The drain path's backstop: a request racing scheduler shutdown gets a
  // terminal kCancelled immediately instead of hanging on a dead queue.
  Service svc;
  svc.scheduler().stop();
  const Response res = svc.solve(make_instance(3));
  EXPECT_EQ(res.status, Status::kCancelled);
}

}  // namespace
}  // namespace ttp::svc

#endif  // !_WIN32
