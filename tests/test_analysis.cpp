// Procedure statistics: consistency with the tree's own cost computation
// and with hand-checked values on the worked example.
#include <gtest/gtest.h>

#include <numeric>

#include "tt/analysis.hpp"
#include "tt/generator.hpp"
#include "tt/solver_sequential.hpp"
#include "util/rng.hpp"

namespace ttp::tt {
namespace {

TEST(Analysis, Fig1HandChecked) {
  const Instance ins = fig1_example();
  const auto res = SequentialSolver().solve(ins);
  const auto st = analyze(ins, res.tree);

  EXPECT_NEAR(st.expected_cost, res.cost, 1e-12);
  EXPECT_EQ(st.nodes, res.tree.size());
  EXPECT_EQ(st.depth, res.tree.depth());
  // Per-object path costs agree with the tree's own walker.
  for (int j = 0; j < ins.k(); ++j) {
    EXPECT_NEAR(st.object_cost[static_cast<std::size_t>(j)],
                res.tree.path_cost(ins, j), 1e-12)
        << j;
  }
  // Action shares sum to the expected cost.
  double share_sum = 0.0;
  for (const auto& [i, s] : st.action_share) {
    EXPECT_GE(i, 0);
    share_sum += s;
  }
  EXPECT_NEAR(share_sum, res.cost, 1e-12);
  // Every case gets exactly one successful treatment; failed treatments
  // add more, so the expected treatment count is >= 1.
  EXPECT_GE(st.expected_treatments, 1.0 - 1e-12);
  const std::string rendered = st.to_string(ins);
  EXPECT_NE(rendered.find("expected cost"), std::string::npos);
}

TEST(Analysis, WorstCaseAtLeastExpectedPerUnitWeight) {
  util::Rng rng(8);
  for (int seed = 0; seed < 10; ++seed) {
    const Instance ins = random_instance(5, RandomOptions{}, rng);
    const auto res = SequentialSolver().solve(ins);
    if (res.tree.empty()) continue;
    const double wc = worst_case_cost(ins, res.tree);
    for (int j = 0; j < ins.k(); ++j) {
      EXPECT_GE(wc + 1e-12, res.tree.path_cost(ins, j));
    }
  }
}

TEST(Analysis, ExpectedCostUnderOriginalPriorsMatches) {
  util::Rng rng(9);
  const Instance ins = medical_instance(6, 5, rng);
  const auto res = SequentialSolver().solve(ins);
  EXPECT_NEAR(expected_cost_under(ins, res.tree, ins.weights()), res.cost,
              1e-9);
}

TEST(Analysis, ShiftedPriorsNeverBeatReoptimization) {
  // A procedure optimized for priors w evaluated under priors w' costs at
  // least the optimum for w' — re-optimizing can only help.
  util::Rng rng(10);
  const Instance ins = medical_instance(6, 5, rng);
  const auto res = SequentialSolver().solve(ins);

  std::vector<double> shifted = ins.weights();
  std::rotate(shifted.begin(), shifted.begin() + 1, shifted.end());
  Instance shifted_ins(ins.k(), shifted);
  for (const Action& a : ins.actions()) {
    if (a.is_test) {
      shifted_ins.add_test(a.set, a.cost, a.name);
    } else {
      shifted_ins.add_treatment(a.set, a.cost, a.name);
    }
  }
  const auto reopt = SequentialSolver().solve(shifted_ins);
  const double stale = expected_cost_under(ins, res.tree, shifted);
  EXPECT_GE(stale + 1e-9, reopt.cost);
}

TEST(Analysis, RejectsBadInput) {
  const Instance ins = fig1_example();
  EXPECT_THROW(analyze(ins, Tree{}), std::invalid_argument);
  const auto res = SequentialSolver().solve(ins);
  EXPECT_THROW(expected_cost_under(ins, res.tree, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(
      expected_cost_under(ins, res.tree, {1.0, 1.0, 0.0, 1.0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace ttp::tt
