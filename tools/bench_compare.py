#!/usr/bin/env python3
"""Compare two bench_json.hpp JSON files and flag regressions.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Records are matched on (bench, k, N, variant); for each match the
ns_per_solve delta is reported, and the exit status is nonzero when any
matched record regressed by more than the threshold (default 10% slower
than baseline). Records present on only one side are listed but never fail
the run — benches gain and lose cases across PRs — and two files with no
keys in common (different kernel variant, a filtered CI run) skip the
comparison entirely with exit 0.

This is the gate CI runs against the committed BENCH_*.json trajectory
files at the repo root (see docs/kernel.md for how those are produced).
"""

import argparse
import json
import sys


def key(rec):
    return (rec["bench"], rec.get("args", ""), rec.get("k", 0),
            rec.get("N", 0), rec.get("variant", ""))


def load(path):
    with open(path) as f:
        records = json.load(f)
    table = {}
    for rec in records:
        # Last record wins on duplicate keys (e.g. repeated runs appended
        # to one file); deliberate, so re-runs supersede.
        table[key(rec)] = rec
    return table


def fmt_key(k):
    bench, args, kk, n, variant = k
    slash = "/" if args else ""
    return f"{bench}{slash}{args} k={kk:g} N={n:g} [{variant}]"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="allowed fractional ns_per_solve growth "
                         "(default 0.10 = 10%%)")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    regressions = []
    common = sorted(set(base) & set(cand))
    if not common:
        # Disjoint key sets are a configuration difference (different
        # kernel variant, a filtered CI run), not a perf signal: list the
        # one-sided records and succeed rather than fail the gate.
        print("bench_compare: no records in common — skipping comparison",
              file=sys.stderr)
        width = max(len(fmt_key(k)) for k in set(base) | set(cand))
        for k in sorted(base):
            print(f"{fmt_key(k):<{width}}  only in baseline")
        for k in sorted(cand):
            print(f"{fmt_key(k):<{width}}  only in candidate")
        return 0

    width = max(len(fmt_key(k)) for k in common)
    for k in common:
        b = base[k]["ns_per_solve"]
        c = cand[k]["ns_per_solve"]
        if b <= 0:
            continue
        delta = (c - b) / b
        mark = ""
        if delta > args.threshold:
            mark = "  << REGRESSION"
            regressions.append((k, delta))
        elif delta < -args.threshold:
            mark = "  (improved)"
        print(f"{fmt_key(k):<{width}}  {b:>14,.0f} ns -> {c:>14,.0f} ns  "
              f"{delta:+7.1%}{mark}")

    for k in sorted(set(base) - set(cand)):
        print(f"{fmt_key(k):<{width}}  only in baseline")
    for k in sorted(set(cand) - set(base)):
        print(f"{fmt_key(k):<{width}}  only in candidate")

    if regressions:
        print(f"\n{len(regressions)} regression(s) over "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for k, delta in regressions:
            print(f"  {fmt_key(k)}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(common)} records within {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
