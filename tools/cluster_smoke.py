#!/usr/bin/env python3
"""Cluster smoke: a ttp_router fronting three ttp_serve backends.

Builds the smallest interesting cluster — three backends (one of them
running with TTP_FAULT-injected flaky I/O) behind one router — and
asserts the failure semantics documented in docs/cluster.md:

  * the full serve_smoke protocol suite passes through the router
    (SOLVE/STATS/METRICS/HEALTH/TRACE, router dialect),
  * routed replies are byte-identical to what a standalone single-backend
    ttp_serve produces for the same instances (modulo the per-process
    cache= and trace= head tokens),
  * under >= 64 concurrent in-flight SOLVE streams, SIGKILLing a backend
    mid-load never produces a hang, a torn frame, or an untyped error:
    every reply is a (possibly retried) OK or a typed ERR,
  * the health prober ejects the killed backend, and readmits it after it
    is restarted on the same port,
  * the router's METRICS expose nonzero cluster_ejected / readmitted /
    retried counters after the above.

Usage: tools/cluster_smoke.py [ttp_serve] [ttp_router]
       (defaults ./build/src/ttp_serve ./build/src/ttp_router)
"""

import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import serve_smoke  # noqa: E402  (shared Session/instance/check helpers)

from serve_smoke import fail, make_instance, parse_listening  # noqa: E402

PROBE_INTERVAL_MS = 200
FAILOVER_STREAMS = 64
SOLVES_PER_STREAM = 4


def spawn_serve(binary: str, port: int = 0, env_extra: dict = None) -> tuple:
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.Popen(
        [binary, f"--port={port}"],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        env=env,
    )
    return proc, parse_listening(proc.stderr)


def spawn_router(binary: str, backends: list) -> tuple:
    proc = subprocess.Popen(
        [binary, "--port=0", "--retries=2",
         f"--probe-interval-ms={PROBE_INTERVAL_MS}",
         "--probe-timeout-ms=500", "--eject-after=2", "--readmit-after=2",
         "--connect-timeout-ms=1000"]
        + [f"--backend=127.0.0.1:{p}" for p in backends],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    port = parse_listening(proc.stderr)
    # Keep draining stderr in the background: a full pipe would block the
    # daemon, and the tail is the first thing to read on a failure.
    tail = []

    def drain() -> None:
        for raw in proc.stderr:
            tail.append(raw.decode(errors="replace").rstrip())
            del tail[:-50]

    threading.Thread(target=drain, daemon=True).start()
    return proc, port, tail


class Client:
    """Line-framed TCP client whose reads report failure instead of
    exiting, so it is usable from the failover worker threads."""

    def __init__(self, port: int, timeout: float = 30.0):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=5)
        self.sock.settimeout(timeout)
        self.buf = b""

    def send(self, text: str) -> bool:
        try:
            self.sock.sendall(text.encode())
            return True
        except OSError:
            return False

    def read_line(self) -> str:
        """One line without its newline; '' on EOF or timeout."""
        while b"\n" not in self.buf:
            try:
                chunk = self.sock.recv(65536)
            except OSError:
                return ""
            if not chunk:
                return ""
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def read_reply(self) -> tuple:
        """Reads one full reply; returns (kind, head) with kind in
        {'ok', 'typed', 'broken'}."""
        head = self.read_line()
        if head.startswith("ERR "):
            return "typed", head
        if not head.startswith("OK "):
            return "broken", head
        while True:
            line = self.read_line()
            if line == "END":
                return "ok", head
            if line == "":
                return "broken", head  # torn frame: OK head, no END

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def solve_reply(port: int, instance: str) -> tuple:
    c = Client(port)
    c.send(f"SOLVE\n{instance}END\n")
    head = c.read_line()
    body = []
    while True:
        line = c.read_line()
        if line in ("END", ""):
            break
        body.append(line)
    c.send("QUIT\n")
    c.close()
    return head, body


def head_essence(head: str) -> str:
    """The reply head minus the per-process cache= and trace= tokens."""
    return " ".join(t for t in head.split()
                    if not t.startswith(("cache=", "trace=")))


def router_health(port: int) -> dict:
    c = Client(port, timeout=5)
    c.send("HEALTH\n")
    head = c.read_line()
    if head != "HEALTH":
        fail(f"router HEALTH head: {head!r}")
    kv = {}
    status = c.read_line()
    while True:
        line = c.read_line()
        if line in ("END", ""):
            break
        if ": " in line:
            k, v = line.split(": ", 1)
            kv[k] = v
    kv["status"] = status
    c.send("QUIT\n")
    c.close()
    return kv


def router_metrics(port: int) -> dict:
    c = Client(port, timeout=5)
    c.send("METRICS\n")
    head = c.read_line()
    if head != "METRICS":
        fail(f"router METRICS head: {head!r}")
    samples = {}
    while True:
        line = c.read_line()
        if line in ("END", ""):
            break
        if line.startswith("#") or " " not in line:
            continue
        name, value = line.rsplit(" ", 1)
        try:
            samples[name] = float(value)
        except ValueError:
            pass
    c.send("QUIT\n")
    c.close()
    return samples


def wait_for_routable(port: int, want: int, budget_s: float, label: str):
    deadline = time.monotonic() + budget_s
    while time.monotonic() < deadline:
        kv = router_health(port)
        if int(kv.get("backends.routable", -1)) == want:
            return kv
        time.sleep(PROBE_INTERVAL_MS / 1000)
    fail(f"[{label}] router never reported backends.routable={want}; "
         f"last HEALTH: {router_health(port)}")


def check_protocol_through_router(port: int) -> None:
    rng = random.Random(20260806)
    distinct = [make_instance(i, rng) for i in range(50)]
    stream = [i for i in range(50) for _ in range(4)]
    rng.shuffle(stream)
    s = serve_smoke.TcpSession(port)
    serve_smoke.run_checks(s, router=True, distinct=distinct, stream=stream)
    s.close()
    print("protocol suite through the router OK")


def check_byte_identity(router_port: int, serve_binary: str) -> None:
    """The router must relay solver output verbatim: for every instance,
    the reply body (the procedure tree frame) and the head minus its
    per-process tokens must match a standalone ttp_serve byte for byte."""
    ref_proc, ref_port = spawn_serve(serve_binary)
    try:
        rng = random.Random(20260807)
        for i in range(20):
            inst = make_instance(100 + i, rng)
            r_head, r_body = solve_reply(router_port, inst)
            s_head, s_body = solve_reply(ref_port, inst)
            if not r_head.startswith("OK ") or not s_head.startswith("OK "):
                fail(f"identity instance {i}: heads {r_head!r} / {s_head!r}")
            if head_essence(r_head) != head_essence(s_head):
                fail(f"identity instance {i}: head mismatch\n"
                     f"  router: {r_head}\n  direct: {s_head}")
            if r_body != s_body:
                fail(f"identity instance {i}: reply body differs "
                     f"({len(r_body)} vs {len(s_body)} lines)")
    finally:
        ref_proc.send_signal(signal.SIGTERM)
        ref_proc.wait(timeout=10)
    print("routed replies byte-identical to a single backend OK (20/20)")


def check_failover_under_load(router_port: int, victim: subprocess.Popen,
                              router: subprocess.Popen, router_log: list):
    """>= 64 concurrent SOLVE streams; SIGKILL a backend mid-load. Every
    reply must be an OK or a typed ERR — no hangs, no torn frames.

    The kill fires once a quarter of the replies have landed, so it is
    guaranteed to strike with the other three quarters still in flight
    (a wall-clock sleep would race the load on a fast machine)."""
    rng = random.Random(20260808)
    outcomes = []
    replies = [0]
    lock = threading.Lock()
    start = threading.Barrier(FAILOVER_STREAMS + 1)
    total = FAILOVER_STREAMS * SOLVES_PER_STREAM

    def stream(idx: int) -> None:
        local = []
        try:
            c = Client(router_port)
        except OSError as e:
            with lock:
                outcomes.append(("broken", f"[{idx}] connect: {e}"))
            start.wait()
            return
        start.wait()
        for j in range(SOLVES_PER_STREAM):
            inst = make_instance(idx * SOLVES_PER_STREAM + j, rng)
            if not c.send(f"SOLVE\n{inst}END\n"):
                local.append(("broken", f"[{idx}.{j}] send failed"))
                break
            kind, head = c.read_reply()
            local.append((kind, f"[{idx}.{j}] {head}"))
            with lock:
                replies[0] += 1
            if kind == "broken":
                break
        c.send("QUIT\n")
        c.close()
        with lock:
            outcomes.extend(local)

    threads = [threading.Thread(target=stream, args=(i,))
               for i in range(FAILOVER_STREAMS)]
    for t in threads:
        t.start()
    start.wait()  # all streams connected and about to send
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        with lock:
            if replies[0] >= total // 4:
                break
        time.sleep(0.001)
    victim.kill()  # SIGKILL: no drain, no BYE, sockets just die
    victim.wait(timeout=10)
    for t in threads:
        t.join(timeout=120)
        if t.is_alive():
            fail("a failover stream hung (reply never terminated)")

    ok = sum(1 for k, _ in outcomes if k == "ok")
    typed = sum(1 for k, _ in outcomes if k == "typed")
    broken = [d for k, d in outcomes if k == "broken"]
    if broken:
        alive = router.poll() is None
        fail(f"{len(broken)} non-typed outcomes under failover "
             f"(router alive: {alive}), e.g. " + "; ".join(broken[:5])
             + "\nrouter stderr tail: " + " | ".join(router_log[-10:]))
    if ok + typed != total:
        fail(f"expected {total} terminal replies, got {ok} OK + {typed} ERR")
    if ok == 0:
        fail("no stream survived the backend kill; retries are not working")
    print(f"failover under load OK: {ok} OK, {typed} typed ERR, 0 broken")


def check_eject_and_readmit(router_port: int, serve_binary: str,
                            dead_port: int) -> subprocess.Popen:
    wait_for_routable(router_port, 2, 15, "ejection")
    print("prober ejected the killed backend OK (routable 3 -> 2)")
    # SO_REUSEADDR in Server::listen lets the replacement bind immediately.
    proc, port = spawn_serve(serve_binary, port=dead_port)
    if port != dead_port:
        fail(f"restarted backend on port {port}, wanted {dead_port}")
    kv = wait_for_routable(router_port, 3, 15, "readmission")
    if kv["status"] != "ready":
        fail(f"router status {kv['status']!r} after readmission")
    print("prober readmitted the restarted backend OK (routable 2 -> 3)")
    return proc


def check_cluster_counters(router_port: int) -> None:
    m = router_metrics(router_port)
    for name, floor in (("ttp_cluster_routed_total", 200),
                        ("ttp_cluster_retried_total", 1),
                        ("ttp_cluster_ejected_total", 1),
                        ("ttp_cluster_readmitted_total", 1)):
        if m.get(name, 0) < floor:
            fail(f"METRICS {name} = {m.get(name)}, expected >= {floor}")
    print("cluster.* counters OK: "
          + ", ".join(f"{n.split('_', 2)[-1]}={int(m[n])}" for n in
                      ("ttp_cluster_routed_total",
                       "ttp_cluster_retried_total",
                       "ttp_cluster_ejected_total",
                       "ttp_cluster_readmitted_total")))


def main() -> int:
    serve_bin = sys.argv[1] if len(sys.argv) > 1 else "./build/src/ttp_serve"
    router_bin = sys.argv[2] if len(sys.argv) > 2 else "./build/src/ttp_router"

    procs = []
    try:
        b1, p1 = spawn_serve(serve_bin)
        procs.append(b1)
        b2, p2 = spawn_serve(serve_bin)  # the backend we will SIGKILL
        procs.append(b2)
        # One backend runs on deterministically flaky sockets: every 5th
        # I/O call EINTRs and writes land at most 512 bytes at a time.
        # Replies must still come back complete and byte-identical.
        b3, p3 = spawn_serve(serve_bin,
                             env_extra={"TTP_FAULT": "eintr:5,short-write:512"})
        procs.append(b3)
        router, rport, router_log = spawn_router(router_bin, [p1, p2, p3])
        procs.append(router)
        print(f"cluster up: backends {p1}/{p2}/{p3} (last one faulted), "
              f"router {rport}")

        wait_for_routable(rport, 3, 10, "startup")
        check_protocol_through_router(rport)
        check_byte_identity(rport, serve_bin)
        check_failover_under_load(rport, b2, router, router_log)
        b2_replacement = check_eject_and_readmit(rport, serve_bin, p2)
        procs.append(b2_replacement)
        check_cluster_counters(rport)

        # Graceful teardown: every surviving process must drain to exit 0.
        for proc in (router, b1, b3, b2_replacement):
            proc.send_signal(signal.SIGTERM)
        for name, proc in (("router", router), ("b1", b1), ("b3", b3),
                           ("b2'", b2_replacement)):
            if proc.wait(timeout=15) != 0:
                fail(f"{name} exited {proc.returncode} on SIGTERM")
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
    print("cluster smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
