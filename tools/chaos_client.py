#!/usr/bin/env python3
"""Chaos smoke for the hardened ttp_serve TCP front end.

Spawns the daemon on an ephemeral port with tight connection-lifecycle
limits, then throws hostile traffic at it and asserts the typed-verdict
contract from docs/serving.md:

  * torn frames and abrupt mid-SOLVE disconnects never crash the daemon,
    and the next well-behaved client still solves,
  * a slowloris connection (frame body trickling forever) is evicted with
    ERR timeout while a concurrent normal client's latency is unaffected,
  * an oversize SOLVE frame gets ERR oversize as soon as the cap is
    crossed — before the frame finishes arriving — and the session stays
    in protocol sync,
  * connections past --max-conns are shed with ERR overload, and shedding
    is not sticky once sessions close,
  * a storm of concurrent SOLVE/QUIT sessions all end in a terminal reply,
  * STATS exposes the svc.server.* lifecycle counters,
  * SIGTERM under in-flight load drains gracefully: every in-flight SOLVE
    gets a terminal reply (OK or ERR cancelled), idle sessions get BYE,
    and the daemon exits 0 within the drain budget.

Usage: tools/chaos_client.py [path-to-ttp_serve] [extra daemon args...]
       (default ./build/src/ttp_serve)

Extra args are appended to the daemon command line, which lets the same
chaos suite drive ttp_router: pass the router binary plus its
--backend=host:port flags.
"""

import random
import re
import signal
import socket
import subprocess
import sys
import threading
import time

MAX_CONNS = 8
IDLE_TIMEOUT_MS = 2000
READ_TIMEOUT_MS = 500
DRAIN_TIMEOUT_MS = 5000
MAX_FRAME_BYTES = 4096


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def make_instance(idx: int) -> str:
    """A small adequate instance, distinct per index."""
    k = 4
    lines = [f"tt {k}", "weights 1 2 3 %d" % (4 + idx)]
    lines.append("test t0 {0,1} 1.0")
    lines.append("test t1 {1,2} 1.5")
    for j in range(k):
        lines.append("treat c%d {%d} 2" % (j, j))
    return "\n".join(lines) + "\n"


class Client:
    """Blocking line-framed TCP client with a recv deadline."""

    def __init__(self, port: int, timeout: float = 10.0):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=5)
        self.sock.settimeout(timeout)
        self.buf = b""

    def send(self, text: str) -> None:
        self.sock.sendall(text.encode())

    def read_line(self) -> str:
        """One line, newline stripped; '' on EOF or timeout."""
        while b"\n" not in self.buf:
            try:
                chunk = self.sock.recv(4096)
            except socket.timeout:
                return ""
            if not chunk:
                return ""
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return line.decode()

    def read_until_end(self) -> list:
        lines = []
        while True:
            line = self.read_line()
            if line == "END" or line == "":
                return lines
            lines.append(line)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def spawn_daemon(binary: str, extra_args: list) -> tuple:
    proc = subprocess.Popen(
        [
            binary,
            "--port=0",
            f"--max-conns={MAX_CONNS}",
            f"--idle-timeout-ms={IDLE_TIMEOUT_MS}",
            f"--read-timeout-ms={READ_TIMEOUT_MS}",
            f"--drain-timeout-ms={DRAIN_TIMEOUT_MS}",
            f"--max-frame-bytes={MAX_FRAME_BYTES}",
        ]
        + extra_args,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    # Both ttp_serve and ttp_router announce the resolved ephemeral port
    # with a machine-parseable first stderr line: "LISTENING <port>".
    line = proc.stderr.readline().decode()
    m = re.fullmatch(r"LISTENING (\d+)", line.strip())
    if not m:
        proc.kill()
        fail(f"no LISTENING banner, got: {line!r}")
    return proc, int(m.group(1))


def check_alive(port: int, label: str) -> None:
    """A well-behaved client must still get a full solve."""
    c = Client(port)
    c.send(f"SOLVE\n{make_instance(0)}END\n")
    head = c.read_line()
    if not head.startswith("OK cache="):
        fail(f"[{label}] healthy client got: {head!r}")
    c.read_until_end()
    c.send("QUIT\n")
    if c.read_line() != "BYE":
        fail(f"[{label}] QUIT did not get BYE")
    c.close()


def chaos_torn_frames(port: int) -> None:
    """Torn frames + abrupt disconnects at every protocol position."""
    cuts = ["", "SOL", "SOLVE\n", "SOLVE\ntt 2\n", "SOLVE\ntt 2\nweights 1 1\n",
            "SOLVE\n" + make_instance(1)]  # everything but END
    for i, cut in enumerate(cuts):
        c = Client(port)
        if cut:
            c.send(cut)
        c.close()  # vanish without QUIT
    check_alive(port, "torn-frames")
    print("torn frames + abrupt disconnects OK")


def chaos_slowloris(port: int) -> None:
    """A trickling frame is evicted; a concurrent client is unaffected."""
    slow = Client(port, timeout=READ_TIMEOUT_MS / 1000 * 6)
    slow.send("SOLVE\ntt 4\n")  # frame begun, body now trickles

    t0 = time.monotonic()
    check_alive(port, "slowloris-concurrent")
    fast_ms = (time.monotonic() - t0) * 1000
    if fast_ms > READ_TIMEOUT_MS * 4:
        fail(f"concurrent client took {fast_ms:.0f}ms next to a slowloris")

    # Keep trickling below the line rate until the deadline fires.
    verdict = ""
    for _ in range(40):
        try:
            slow.send("#\n")
        except OSError:
            break
        line = slow.read_line()
        if line:
            verdict = line
            break
        time.sleep(0.05)
    if not verdict:
        verdict = slow.read_line()
    if not verdict.startswith("ERR timeout"):
        fail(f"slowloris verdict: {verdict!r}, expected ERR timeout")
    slow.close()
    print(f"slowloris evicted OK (concurrent solve {fast_ms:.0f}ms)")


def chaos_oversize(port: int) -> None:
    c = Client(port)
    c.send("SOLVE\n" + "x" * (MAX_FRAME_BYTES * 2) + "\n")  # END unsent
    verdict = c.read_line()  # must arrive before the frame completes
    if not verdict.startswith("ERR oversize"):
        fail(f"oversize verdict: {verdict!r}")
    c.send("END\nPING\n")  # finish the frame: session is still in sync
    if c.read_line() != "PONG":
        fail("session out of sync after an oversize frame")
    c.send("QUIT\n")
    c.close()
    print("oversize frame refused early OK")


def chaos_overload(port: int) -> None:
    """Fill every slot, then expect ERR overload; then expect recovery."""
    holders = []
    shed = None
    try:
        for i in range(MAX_CONNS):
            h = Client(port)
            h.send("PING\n")
            if h.read_line() != "PONG":
                fail(f"holder {i} did not PONG")
            holders.append(h)
        extra = Client(port)
        verdict = extra.read_line()
        if not verdict.startswith("ERR overload"):
            fail(f"overload verdict: {verdict!r}")
        extra.close()
        shed = verdict
    finally:
        for h in holders:
            try:
                h.send("QUIT\n")
            except OSError:
                pass
            h.close()
    # Slots freed: the next client is served, not shed.
    deadline = time.monotonic() + 5
    while True:
        c = Client(port)
        c.send("PING\n")
        line = c.read_line()
        c.close()
        if line == "PONG":
            break
        if time.monotonic() > deadline:
            fail(f"shedding is sticky after sessions closed: {line!r}")
        time.sleep(0.05)
    print(f"overload shed OK ({shed})")


def chaos_quit_storm(port: int) -> None:
    """Concurrent SOLVE/QUIT/disconnect churn; every session ends typed."""
    errors = []
    rng = random.Random(20260808)
    plans = [rng.choice(["solve", "quit", "vanish"]) for _ in range(48)]

    def run(idx: int, plan: str) -> None:
        try:
            c = Client(port)
            if plan == "solve":
                c.send(f"SOLVE\n{make_instance(idx % 7)}END\nQUIT\n")
                head = c.read_line()
                if head.startswith("ERR overload"):
                    return  # shed under the storm: a typed, legal outcome
                if not head.startswith("OK cache="):
                    errors.append(f"[{idx}] solve head: {head!r}")
                    return
                c.read_until_end()
                if c.read_line() != "BYE":
                    errors.append(f"[{idx}] solve tail not BYE")
            elif plan == "quit":
                c.send("QUIT\n")
                line = c.read_line()
                if line not in ("BYE",) and not line.startswith("ERR overload"):
                    errors.append(f"[{idx}] quit got: {line!r}")
            else:
                c.send("SOLVE\ntt 2\n")
            c.close()
        except OSError as e:
            errors.append(f"[{idx}] {plan}: {e}")

    threads = [threading.Thread(target=run, args=(i, p))
               for i, p in enumerate(plans)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        fail("quit storm: " + "; ".join(errors[:5]))
    check_alive(port, "quit-storm")
    print(f"concurrent storm OK ({len(plans)} sessions)")


def check_server_counters(port: int) -> None:
    c = Client(port)
    c.send("STATS\n")
    head = c.read_line()
    if head != "STATS":
        fail(f"STATS head: {head!r}")
    body = c.read_until_end()
    c.send("QUIT\n")
    c.close()
    counters = dict(l.split(" = ", 1) for l in body if " = " in l)
    for name in ("svc.server.accepted", "svc.server.shed",
                 "svc.server.timed_out", "svc.server.drained"):
        if name not in counters:
            fail(f"STATS lacks {name}")
    if int(counters["svc.server.accepted"]) < MAX_CONNS:
        fail(f"accepted = {counters['svc.server.accepted']}, too low")
    if int(counters["svc.server.shed"]) < 1:
        fail("shed counter is zero after the overload scenario")
    if int(counters["svc.server.timed_out"]) < 1:
        fail("timed_out counter is zero after the slowloris scenario")
    print("svc.server.* counters OK")


def chaos_drain(proc: subprocess.Popen, port: int) -> None:
    """SIGTERM under load: terminal replies for all, exit 0 in budget."""
    n = 6  # concurrent in-flight solves (distinct instances, all misses)
    results = [None] * n
    barrier = threading.Barrier(n + 1)

    def run(idx: int) -> None:
        c = Client(port, timeout=DRAIN_TIMEOUT_MS / 1000 + 5)
        c.send(f"SOLVE\n{make_instance(100 + idx)}END\n")
        barrier.wait()
        head = c.read_line()
        if head.startswith("OK cache="):
            c.read_until_end()
            results[idx] = ("ok", c.read_line())  # BYE expected on drain
        else:
            results[idx] = ("err", head)
        c.close()

    idle = Client(port, timeout=DRAIN_TIMEOUT_MS / 1000 + 5)
    idle.send("PING\n")
    if idle.read_line() != "PONG":
        fail("idle session did not PONG before drain")

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    barrier.wait()  # every client has its SOLVE on the wire
    t0 = time.monotonic()
    proc.send_signal(signal.SIGTERM)
    try:
        rc = proc.wait(timeout=DRAIN_TIMEOUT_MS / 1000 + 5)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("daemon did not exit within the drain budget")
    elapsed_ms = (time.monotonic() - t0) * 1000
    if rc != 0:
        fail(f"daemon exited {rc} on SIGTERM, expected 0")
    for t in threads:
        t.join()

    for i, res in enumerate(results):
        if res is None:
            fail(f"drain client {i} got no reply at all")
        kind, detail = res
        if kind == "err" and not detail.startswith("ERR cancelled"):
            fail(f"drain client {i} non-terminal reply: {detail!r}")
    idle_line = idle.read_line()
    if idle_line != "BYE":
        fail(f"idle session got {idle_line!r} on drain, expected BYE")
    idle.close()
    oks = sum(1 for r in results if r[0] == "ok")
    print(f"graceful drain OK: {oks}/{n} completed, "
          f"{n - oks} cancelled, exit 0 in {elapsed_ms:.0f}ms")


def main() -> int:
    binary = sys.argv[1] if len(sys.argv) > 1 else "./build/src/ttp_serve"
    proc, port = spawn_daemon(binary, sys.argv[2:])
    try:
        chaos_torn_frames(port)
        chaos_slowloris(port)
        chaos_oversize(port)
        chaos_overload(port)
        chaos_quit_storm(port)
        check_server_counters(port)
        chaos_drain(proc, port)  # terminates the daemon
    finally:
        if proc.poll() is None:
            proc.kill()
            fail("daemon had to be killed")
    print("chaos smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
