#!/usr/bin/env python3
"""Crash-recovery smoke for the durable procedure store (docs/store.md).

Drives a real ttp_serve with --store-dir through a kill -9 and asserts the
warm restart serves from disk instead of re-solving:

  phase 1  spawn ttp_serve --port=0 --store-dir=DIR, SOLVE 50 distinct
           instances (all kernel misses, each appended write-behind), then
           SIGKILL the daemon mid-traffic — more SOLVEs are in flight when
           the process dies, so the store sees an unclean shutdown with no
           drain, no final fsync, and (possibly) an unfinished append.

  phase 2  restart on the same directory, re-SOLVE the same 50 instances,
           and require:
             * >= 45 of them answered cache=store (the warm tier; a couple
               of keys may legitimately have died with the in-flight tail),
             * METRICS agrees: ttp_svc_store_hits_total >= 45,
             * kernel solves on the warm run <= 50 - 45 (no silent
               re-solving behind a claimed store hit),
           then SIGTERM for a graceful drain (exit 0).

  phase 3  `ttp_store verify DIR` exits 0 with zero corrupt live records —
           whatever the kill tore off the tail was truncated at reopen, and
           everything still indexed parses clean.

Usage: tools/store_smoke.py [serve_binary] [store_binary]
Defaults: ./build/src/ttp_serve ./build/src/ttp_store
"""

import os
import random
import re
import shutil
import signal
import subprocess
import sys
import tempfile

from serve_smoke import TcpSession, make_instance, parse_listening


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def spawn(binary: str, store_dir: str):
    proc = subprocess.Popen(
        [binary, "--port=0", f"--store-dir={store_dir}"],
        stdin=subprocess.DEVNULL,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    return proc, parse_listening(proc.stderr)


def solve(s: TcpSession, body: str) -> str:
    """One SOLVE round trip; returns the reply head line."""
    s.send(f"SOLVE\n{body}END\n")
    head = s.read_line()
    if not head.startswith("OK cache="):
        fail(f"unexpected SOLVE reply: {head!r}")
    s.read_until_end(head)  # drain the tree frame
    return head


def metric(s: TcpSession, name: str) -> float:
    s.send("METRICS\n")
    lines = s.read_until_end(s.read_line())
    for line in lines:
        m = re.fullmatch(re.escape(name) + r" ([0-9eE+.-]+)", line)
        if m:
            return float(m.group(1))
    fail(f"METRICS lacks {name}")


def main() -> int:
    serve_bin = sys.argv[1] if len(sys.argv) > 1 else "./build/src/ttp_serve"
    store_bin = sys.argv[2] if len(sys.argv) > 2 else "./build/src/ttp_store"

    rng = random.Random(20260808)
    distinct = [make_instance(i, rng) for i in range(50)]
    extra = [make_instance(100 + i, rng) for i in range(20)]

    store_dir = tempfile.mkdtemp(prefix="ttp_store_smoke_")
    try:
        # ---- phase 1: populate, then die hard mid-traffic ----------------
        proc, port = spawn(serve_bin, store_dir)
        s = TcpSession(port)
        for body in distinct:
            solve(s, body)
        appends = metric(s, "ttp_svc_store_appends_total")
        if appends < 50:
            fail(f"phase 1 appended {appends} records, expected >= 50")
        print(f"phase 1: 50 keys solved, {appends:.0f} records appended")
        # Keep requests in flight while the process dies: fire the extra
        # stream without reading replies, then SIGKILL.
        s.send("".join(f"SOLVE\n{body}END\n" for body in extra))
        s.read_line()  # at least one landed; the rest race the kill
        proc.send_signal(signal.SIGKILL)
        if proc.wait(timeout=30) != -signal.SIGKILL:
            fail(f"expected death by SIGKILL, got {proc.returncode}")
        s.close()
        print("phase 1: daemon killed -9 mid-traffic")

        # ---- phase 2: warm restart must serve from the store -------------
        proc, port = spawn(serve_bin, store_dir)
        s = TcpSession(port)
        heads = [solve(s, body) for body in distinct]
        from_store = sum(1 for h in heads if h.startswith("OK cache=store"))
        store_hits = metric(s, "ttp_svc_store_hits_total")
        kernel = metric(s, "ttp_svc_solve_kernel_instances_total")
        print(f"phase 2: {from_store}/50 served cache=store, "
              f"store_hits={store_hits:.0f}, kernel_solves={kernel:.0f}")
        if from_store < 45:
            fail(f"only {from_store}/50 warm requests came from the store")
        if store_hits < 45:
            fail(f"ttp_svc_store_hits_total = {store_hits}, expected >= 45")
        if kernel > 50 - from_store:
            fail(f"{kernel:.0f} kernel solves on the warm run — the store "
                 "tier is claiming hits it did not serve")
        s.send("QUIT\n")
        if s.read_line() != "BYE":
            fail("warm session did not close with BYE")
        s.close()
        proc.terminate()  # graceful drain: flush + clean store close
        if proc.wait(timeout=30) != 0:
            fail(f"graceful drain exited {proc.returncode}")

        # ---- phase 3: offline verify finds zero corrupt records ----------
        out = subprocess.run(
            [store_bin, "verify", store_dir],
            capture_output=True, text=True, timeout=60,
        )
        print(out.stdout.strip())
        if out.returncode != 0:
            fail(f"ttp_store verify exited {out.returncode}: {out.stderr}")
        kv = dict(line.split(None, 1) for line in out.stdout.splitlines()
                  if len(line.split(None, 1)) == 2)
        if int(kv.get("corrupt", "-1")) != 0:
            fail(f"verify reports corrupt={kv.get('corrupt')}")
        if int(kv.get("live_records", "0")) < 50:
            fail(f"verify reports live_records={kv.get('live_records')}, "
                 "expected >= 50")
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    print("store smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
