// On-disk record format for the durable procedure store (docs/store.md).
//
// A segment file is a 12-byte header followed by back-to-back records:
//
//   header:  magic "TTPS" | format version u32 | endian marker u32
//   record:  body_len u32 | crc32c(body) u32 | body
//   body:    key.hi u64 | key.lo u64 | stamp_s u64 | kind u8 |
//            cost f64 bits | encode_tree_binary(tree)
//
// All fixed-width fields are little-endian; the header's endian marker lets
// a reader reject a segment written with the other byte order outright
// instead of mis-parsing it. The CRC covers the body only (a corrupt length
// prefix is detected by the sanity cap and by the CRC of whatever it frames).
//
// This layer is pure bytes<->structs; segment files, mmap, and fsync policy
// live in store/log.hpp, and the replay/index logic in store/store.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "tt/tree.hpp"

namespace ttp::store {

/// 128-bit canonical instance key. Mirrors svc::CanonKey bit-for-bit but is
/// redeclared here so the store library sits below svc in the dependency
/// graph (svc converts trivially at the call boundary).
struct StoreKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const StoreKey& a, const StoreKey& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

struct StoreKeyHash {
  std::size_t operator()(const StoreKey& k) const noexcept {
    // hi and lo are already uniform hash output; fold with a odd multiplier
    // so (a,b) and (b,a) differ.
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9E3779B97F4A7C15ull));
  }
};

inline constexpr char kSegmentMagic[4] = {'T', 'T', 'P', 'S'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kEndianMarker = 0x01020304u;
inline constexpr std::size_t kSegmentHeaderBytes = 12;

/// Sanity cap on a record body; a length prefix above this is treated as
/// scribbled bytes (unscannable), not as an instruction to skip 4 GiB.
inline constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

/// Record kinds (the `kind` body byte). Unknown kinds are skipped as
/// opaque-but-valid records so old readers tolerate new writers.
inline constexpr std::uint8_t kRecordProcedure = 1;

struct Record {
  StoreKey key;
  std::uint64_t stamp_s = 0;  ///< Wall-clock seconds at append (TTL basis).
  std::uint8_t kind = kRecordProcedure;
  double cost = 0.0;          ///< Canonical expected cost.
  tt::Tree tree;              ///< Empty for non-procedure kinds.
};

/// Appends the 12-byte segment header to `out`.
void append_segment_header(std::string& out);

/// Validates a segment header; throws std::invalid_argument naming the
/// defect (short, bad magic, unsupported version, foreign byte order).
void check_segment_header(std::string_view file_bytes);

/// Appends one framed record (length, CRC, body) to `out`.
void append_record(const Record& rec, std::string& out);

enum class ParseStatus {
  kOk,         ///< `record` is valid; advance by `consumed`.
  kTruncated,  ///< The frame extends past the end of the span (torn tail).
  kCorrupt,    ///< CRC/decode failure. consumed > 0: skip and resync at the
               ///< next frame. consumed == 0: the length prefix itself is
               ///< garbage — the rest of the span is unscannable.
};

struct ParseResult {
  ParseStatus status = ParseStatus::kCorrupt;
  std::size_t consumed = 0;
  Record record;
};

/// Parses the record at the start of `bytes` (a suffix of a segment, after
/// the header). Never throws and never reads past `bytes`.
ParseResult parse_record(std::string_view bytes) noexcept;

}  // namespace ttp::store
