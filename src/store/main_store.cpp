// ttp_store — offline tooling for durable procedure store directories.
//
//   ttp_store verify <dir>              read-only integrity scan; exit 0
//                                       iff no corrupt records
//   ttp_store stats <dir>               segment/record/byte counts
//   ttp_store compact <dir> [--max-mb N] [--ttl-s N]
//                                       run one compaction synchronously
//
// verify and stats never modify the directory (safe on a live store that
// crashed a moment ago); compact opens the store for real — run it only on
// a directory no server currently owns.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/metrics.hpp"
#include "store/store.hpp"

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: ttp_store verify <dir>\n"
        "       ttp_store stats <dir>\n"
        "       ttp_store compact <dir> [--max-mb N] [--ttl-s N]\n";
  return code;
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = v;
  return true;
}

void print_report(const ttp::store::VerifyReport& rep) {
  std::cout << "segments            " << rep.segments << "\n"
            << "bytes               " << rep.bytes << "\n"
            << "records             " << rep.records << "\n"
            << "live_records        " << rep.live_records << "\n"
            << "corrupt             " << rep.corrupt << "\n"
            << "torn_tail_bytes     " << rep.torn_tail_bytes << "\n";
}

int cmd_verify(const std::string& dir) {
  const ttp::store::VerifyReport rep = ttp::store::verify_dir(dir);
  print_report(rep);
  std::cout << (rep.ok ? "OK\n" : "CORRUPT\n");
  return rep.ok ? 0 : 1;
}

int cmd_stats(const std::string& dir) {
  print_report(ttp::store::verify_dir(dir));
  return 0;
}

int cmd_compact(const std::string& dir, int argc, char** argv) {
  ttp::store::StoreConfig cfg;
  cfg.dir = dir;
  cfg.background_compaction = false;
  cfg.sync = ttp::store::StoreConfig::Sync::kAlways;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::uint64_t v = 0;
    if (arg == "--max-mb" && i + 1 < argc && parse_u64(argv[++i], v)) {
      cfg.max_bytes = v << 20;
    } else if (arg == "--ttl-s" && i + 1 < argc && parse_u64(argv[++i], v)) {
      cfg.ttl_seconds = v;
    } else {
      std::cerr << "ttp_store: bad argument '" << arg << "'\n";
      return usage(std::cerr, 2);
    }
  }
  try {
    ttp::obs::MetricsRegistry metrics;
    cfg.metric_prefix = "store";
    ttp::store::ProcedureStore st(std::move(cfg), metrics);
    const std::uint64_t before = st.stats().bytes;
    const std::uint64_t reclaimed = st.compact_now();
    const ttp::store::StoreStats after = st.stats();
    std::cout << "bytes_before        " << before << "\n"
              << "bytes_after         " << after.bytes << "\n"
              << "bytes_reclaimed     " << reclaimed << "\n"
              << "live_records        " << after.live_records << "\n"
              << "segments            " << after.segments << "\n"
              << "corrupt_skipped     " << after.corrupt_skipped << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ttp_store: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0)) {
    return usage(std::cout, 0);
  }
  if (argc < 3) return usage(std::cerr, 2);
  const std::string cmd = argv[1];
  const std::string dir = argv[2];
  try {
    if (cmd == "verify") return cmd_verify(dir);
    if (cmd == "stats") return cmd_stats(dir);
    if (cmd == "compact") return cmd_compact(dir, argc - 3, argv + 3);
  } catch (const std::exception& e) {
    std::cerr << "ttp_store: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "ttp_store: unknown command '" << cmd << "'\n";
  return usage(std::cerr, 2);
}
