// Durable procedure store: a crash-safe, append-only log of solved canonical
// instances, serving as the persistent second tier behind the in-memory LRU
// (svc::ProcedureCache). See docs/store.md for the full design.
//
// Shape:
//   - Writes append framed, CRC-32C-checksummed records (store/format.hpp)
//     to the active segment with a single O_APPEND write() each. A record
//     that entered the page cache survives kill -9; the --store-sync knob
//     (none|batch|always) only governs durability across *machine* crashes.
//   - Open replays every segment in sequence order rebuilding the key →
//     location index (later records win). A torn tail on the youngest
//     segment is truncated away; corrupt records elsewhere are skipped and
//     counted, never served.
//   - Reads resolve through the index and deserialize straight from the
//     read-only mmap of a frozen segment (warm restarts never re-solve) or
//     via pread on the active segment.
//   - When the directory exceeds max_bytes, compaction rewrites live,
//     unexpired, recently-used records into a fresh segment and atomically
//     swaps it in (write tmp → fsync → rename → fsync dir), then unlinks
//     the replaced segments. Sequence numbers are chosen so replay order is
//     preserved at every crash point (rotation S → S+2, output at S+1).
//
// Thread safety: all public methods are safe to call concurrently; one
// mutex guards the index and segment table. Compaction holds the lock only
// to rotate and to swap the index — the rewrite itself runs unlocked
// against immutable mapped segments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "store/format.hpp"
#include "store/log.hpp"
#include "tt/tree.hpp"

namespace ttp::store {

struct StoreConfig {
  /// Directory holding the segments; created if absent (one level).
  std::string dir;

  enum class Sync {
    kNone,    ///< Never fsync on the write path (close/drain still syncs).
    kBatch,   ///< fsync every `batch_appends` appends.
    kAlways,  ///< fsync after every append.
  };
  Sync sync = Sync::kBatch;

  /// Compaction trigger: when segment bytes on disk exceed this, live
  /// records are rewritten and cold/expired ones dropped. The post-compaction
  /// target is 3/4 of this budget.
  std::uint64_t max_bytes = std::uint64_t{256} << 20;

  /// Records older than this (by append wall-clock stamp) are dropped at
  /// compaction and never revived. 0 = no expiry.
  std::uint64_t ttl_seconds = 0;

  std::size_t batch_appends = 32;  ///< kBatch fsync cadence.

  /// Run compaction on a background thread (the serving default). When
  /// false, put() compacts inline once over budget — simpler to reason
  /// about in tests and the offline tool.
  bool background_compaction = true;

  /// Metric name prefix: `<prefix>.{hits,misses,appends,...}`.
  std::string metric_prefix = "svc.store";

  /// Wall-clock seconds (TTL basis); injectable so tests can expire records
  /// without sleeping.
  std::function<std::uint64_t()> wall_now_s;
};

/// Parses "none"/"batch"/"always"; false on anything else.
bool parse_sync_mode(std::string_view text, StoreConfig::Sync& out);
std::string_view sync_mode_name(StoreConfig::Sync s) noexcept;

struct StoreStats {
  std::uint64_t segments = 0;
  std::uint64_t live_records = 0;
  std::uint64_t bytes = 0;            ///< Sum of segment file sizes.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t appends = 0;
  std::uint64_t compactions = 0;
  std::uint64_t corrupt_skipped = 0;  ///< Lifetime, including replay.
  std::uint64_t truncated_tail_bytes = 0;  ///< Torn tail dropped at open.
};

class ProcedureStore {
 public:
  /// Opens the directory, replays segments, rebuilds the index, truncates a
  /// torn tail, and starts the compaction thread. Throws std::runtime_error
  /// when the directory cannot be created/opened or a segment is unreadable
  /// at the I/O level (corrupt *contents* are recovered, not fatal).
  ProcedureStore(StoreConfig cfg, obs::MetricsRegistry& metrics);

  /// Graceful close: stops compaction, fsyncs the active segment regardless
  /// of sync mode, closes everything (the drain path on SIGTERM).
  ~ProcedureStore();

  ProcedureStore(const ProcedureStore&) = delete;
  ProcedureStore& operator=(const ProcedureStore&) = delete;

  struct Procedure {
    double cost = 0.0;
    tt::Tree tree;
  };

  /// Looks the key up and deserializes the stored procedure. nullopt on
  /// miss; a record that fails its CRC on read is dropped from the index,
  /// counted corrupt, and reported as a miss (the caller re-solves).
  std::optional<Procedure> get(const StoreKey& key);

  /// Appends a record and indexes it (later puts shadow earlier ones).
  /// False on I/O error or an oversized tree — the store degrades to a
  /// cache miss, never fails the request.
  bool put(const StoreKey& key, double cost, const tt::Tree& tree);

  /// fsync the active segment now (regardless of sync mode).
  bool flush();

  /// Runs one compaction synchronously; returns bytes reclaimed (0 when
  /// another compaction is in flight or nothing to do).
  std::uint64_t compact_now();

  StoreStats stats() const;
  std::size_t index_size() const;
  const StoreConfig& config() const noexcept { return cfg_; }

 private:
  struct Loc {
    std::uint64_t seq = 0;       ///< Owning segment.
    std::uint64_t offset = 0;    ///< Frame start within the segment.
    std::uint32_t frame_len = 0; ///< 8-byte header + body.
    std::uint64_t stamp_s = 0;   ///< Append time (TTL basis).
    std::uint64_t last_used_s = 0;  ///< Recency for compaction's LRU drop.
  };

  void open_and_replay();
  void replay_segment(std::uint64_t seq, bool youngest);
  std::uint64_t total_bytes_locked() const;
  void publish_gauges_locked();
  void maybe_trigger_compaction();
  std::uint64_t compact_locked(std::unique_lock<std::mutex>& lk);
  void worker_main();

  StoreConfig cfg_;

  mutable std::mutex mu_;
  std::map<std::uint64_t, Segment> segments_;  ///< seq → file, replay order.
  std::uint64_t active_seq_ = 0;
  std::unordered_map<StoreKey, Loc, StoreKeyHash> index_;
  std::size_t dirty_appends_ = 0;
  bool compacting_ = false;
  std::uint64_t truncated_tail_bytes_ = 0;

  std::condition_variable cv_;
  bool stop_ = false;
  bool compact_requested_ = false;
  std::thread worker_;

  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& appends_;
  obs::Counter& compactions_;
  obs::Counter& corrupt_;
  obs::Gauge& bytes_gauge_;
  obs::Gauge& live_gauge_;
  obs::Gauge& segments_gauge_;
};

/// Read-only integrity scan of a store directory (the `ttp_store verify`
/// tool): parses every segment without touching anything on disk.
struct VerifyReport {
  std::uint64_t segments = 0;
  std::uint64_t records = 0;       ///< Valid records (including shadowed).
  std::uint64_t live_records = 0;  ///< Distinct keys, latest record wins.
  std::uint64_t corrupt = 0;       ///< CRC/decode failures mid-file.
  std::uint64_t torn_tail_bytes = 0;  ///< Incomplete frame at youngest tail.
  std::uint64_t bytes = 0;
  bool ok = false;  ///< corrupt == 0 and headers well-formed.
};
VerifyReport verify_dir(const std::string& dir);

}  // namespace ttp::store
