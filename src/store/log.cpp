#include "store/log.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "store/format.hpp"

namespace ttp::store {

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

std::string segment_filename(std::uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "seg-%020llu.ttps",
                static_cast<unsigned long long>(seq));
  return buf;
}

bool parse_segment_seq(std::string_view filename, std::uint64_t& seq) {
  constexpr std::string_view prefix = "seg-";
  constexpr std::string_view suffix = ".ttps";
  if (filename.size() != prefix.size() + 20 + suffix.size()) return false;
  if (filename.substr(0, prefix.size()) != prefix) return false;
  if (filename.substr(prefix.size() + 20) != suffix) return false;
  seq = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const char c = filename[prefix.size() + i];
    if (c < '0' || c > '9') return false;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

Segment& Segment::operator=(Segment&& o) noexcept {
  if (this != &o) {
    close();
    path_ = std::move(o.path_);
    fd_ = std::exchange(o.fd_, -1);
    map_ = std::exchange(o.map_, nullptr);
    map_len_ = std::exchange(o.map_len_, 0);
    size_ = std::exchange(o.size_, 0);
    active_ = std::exchange(o.active_, false);
  }
  return *this;
}

Segment::~Segment() { close(); }

Segment Segment::open_active(const std::string& path) {
  Segment s;
  s.path_ = path;
  s.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (s.fd_ < 0) throw_errno("open", path);
  struct stat st{};
  if (::fstat(s.fd_, &st) != 0) throw_errno("fstat", path);
  s.size_ = static_cast<std::uint64_t>(st.st_size);
  s.active_ = true;
  if (s.size_ == 0) {
    std::string header;
    append_segment_header(header);
    if (!s.append(header)) throw_errno("write header", path);
  }
  return s;
}

Segment Segment::open_frozen(const std::string& path) {
  Segment s;
  s.path_ = path;
  s.fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (s.fd_ < 0) throw_errno("open", path);
  struct stat st{};
  if (::fstat(s.fd_, &st) != 0) throw_errno("fstat", path);
  s.size_ = static_cast<std::uint64_t>(st.st_size);
  s.active_ = false;
  if (s.size_ > 0) {
    void* m = ::mmap(nullptr, static_cast<std::size_t>(s.size_), PROT_READ,
                     MAP_SHARED, s.fd_, 0);
    if (m == MAP_FAILED) throw_errno("mmap", path);
    s.map_ = m;
    s.map_len_ = static_cast<std::size_t>(s.size_);
  }
  return s;
}

bool Segment::append(std::string_view frame) {
  const char* p = frame.data();
  std::size_t left = frame.size();
  // O_APPEND write()s are atomic w.r.t. offset; loop only for EINTR/short
  // writes (regular files rarely short-write, but be correct).
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  size_ += frame.size();
  return true;
}

bool Segment::read_at(std::uint64_t off, std::size_t len,
                      std::string& out) const {
  out.resize(len);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::pread(fd_, out.data() + got, len - got,
                              static_cast<off_t>(off + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // short file
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool Segment::sync() { return ::fsync(fd_) == 0; }

bool Segment::truncate_to(std::uint64_t len) {
  if (::ftruncate(fd_, static_cast<off_t>(len)) != 0) return false;
  size_ = len;
  return true;
}

void Segment::freeze() {
  if (!active_) return;
  if (size_ > 0 && map_ == nullptr) {
    void* m = ::mmap(nullptr, static_cast<std::size_t>(size_), PROT_READ,
                     MAP_SHARED, fd_, 0);
    if (m == MAP_FAILED) throw_errno("mmap", path_);
    map_ = m;
    map_len_ = static_cast<std::size_t>(size_);
  }
  // Only after the mapping exists — a throw above leaves the segment active
  // and usable, so a failed compaction rotation aborts cleanly.
  active_ = false;
}

void Segment::close() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
    map_ = nullptr;
    map_len_ = 0;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Segment::close_and_unlink() noexcept {
  const std::string path = path_;
  close();
  if (!path.empty()) ::unlink(path.c_str());
}

bool sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0) return true;
  if (errno != EEXIST) return false;
  struct stat st{};
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

}  // namespace ttp::store
