#include "store/format.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "tt/serialize.hpp"
#include "util/crc32c.hpp"

namespace ttp::store {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

std::uint32_t get_u32(const char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t get_u64(const char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

// key.hi..cost, before the variable-length tree payload.
constexpr std::size_t kBodyFixedBytes = 8 + 8 + 8 + 1 + 8;

}  // namespace

void append_segment_header(std::string& out) {
  out.append(kSegmentMagic, sizeof(kSegmentMagic));
  put_u32(out, kFormatVersion);
  put_u32(out, kEndianMarker);
}

void check_segment_header(std::string_view file_bytes) {
  if (file_bytes.size() < kSegmentHeaderBytes) {
    throw std::invalid_argument("segment header: file shorter than header");
  }
  if (std::memcmp(file_bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) !=
      0) {
    throw std::invalid_argument("segment header: bad magic");
  }
  const std::uint32_t version = get_u32(file_bytes.data() + 4);
  if (version != kFormatVersion) {
    throw std::invalid_argument("segment header: unsupported format version " +
                                std::to_string(version));
  }
  if (get_u32(file_bytes.data() + 8) != kEndianMarker) {
    throw std::invalid_argument("segment header: foreign byte order");
  }
}

void append_record(const Record& rec, std::string& out) {
  std::string body;
  body.reserve(kBodyFixedBytes + rec.tree.nodes().size() * 8);
  put_u64(body, rec.key.hi);
  put_u64(body, rec.key.lo);
  put_u64(body, rec.stamp_s);
  body.push_back(static_cast<char>(rec.kind));
  put_u64(body, std::bit_cast<std::uint64_t>(rec.cost));
  tt::encode_tree_binary(rec.tree, body);
  if (body.size() > kMaxRecordBytes) {
    throw std::invalid_argument("store record exceeds kMaxRecordBytes");
  }
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  put_u32(out, util::crc32c(body.data(), body.size()));
  out.append(body);
}

ParseResult parse_record(std::string_view bytes) noexcept {
  ParseResult res;
  if (bytes.size() < 8) {
    res.status = ParseStatus::kTruncated;
    return res;
  }
  const std::uint32_t len = get_u32(bytes.data());
  const std::uint32_t crc = get_u32(bytes.data() + 4);
  if (len > kMaxRecordBytes || len < kBodyFixedBytes) {
    // The length prefix is not believable; there is no frame to skip past.
    res.status = ParseStatus::kCorrupt;
    res.consumed = 0;
    return res;
  }
  if (bytes.size() - 8 < len) {
    res.status = ParseStatus::kTruncated;
    return res;
  }
  const std::string_view body = bytes.substr(8, len);
  const std::size_t frame = 8 + std::size_t{len};
  if (util::crc32c(body.data(), body.size()) != crc) {
    res.status = ParseStatus::kCorrupt;
    res.consumed = frame;
    return res;
  }
  res.record.key.hi = get_u64(body.data());
  res.record.key.lo = get_u64(body.data() + 8);
  res.record.stamp_s = get_u64(body.data() + 16);
  res.record.kind = static_cast<std::uint8_t>(body[24]);
  res.record.cost =
      std::bit_cast<double>(get_u64(body.data() + 25));
  if (res.record.kind == kRecordProcedure) {
    try {
      res.record.tree = tt::decode_tree_binary(body.substr(kBodyFixedBytes));
    } catch (...) {
      // CRC passed but the payload is malformed (or allocation failed) — a
      // writer bug or a deliberate bad record; corrupt-but-skippable.
      res.status = ParseStatus::kCorrupt;
      res.consumed = frame;
      return res;
    }
  }
  res.status = ParseStatus::kOk;
  res.consumed = frame;
  return res;
}

}  // namespace ttp::store
