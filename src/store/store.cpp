#include "store/store.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace ttp::store {

namespace {

std::uint64_t default_wall_now_s() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string join(const std::string& dir, const std::string& name) {
  if (!dir.empty() && dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

struct DirScan {
  std::vector<std::uint64_t> seqs;       // sorted ascending
  std::vector<std::string> tmp_names;    // leftover seg-*.tmp etc.
};

DirScan scan_dir(const std::string& dir) {
  DirScan out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    throw std::runtime_error("opendir " + dir + ": " + std::strerror(errno));
  }
  while (dirent* e = ::readdir(d)) {
    const std::string_view name = e->d_name;
    std::uint64_t seq = 0;
    if (parse_segment_seq(name, seq)) {
      out.seqs.push_back(seq);
    } else if (name.size() > 4 &&
               name.substr(name.size() - 4) == ".tmp" &&
               name.substr(0, 4) == "seg-") {
      out.tmp_names.emplace_back(name);
    }
  }
  ::closedir(d);
  std::sort(out.seqs.begin(), out.seqs.end());
  return out;
}

}  // namespace

bool parse_sync_mode(std::string_view text, StoreConfig::Sync& out) {
  if (text == "none") {
    out = StoreConfig::Sync::kNone;
  } else if (text == "batch") {
    out = StoreConfig::Sync::kBatch;
  } else if (text == "always") {
    out = StoreConfig::Sync::kAlways;
  } else {
    return false;
  }
  return true;
}

std::string_view sync_mode_name(StoreConfig::Sync s) noexcept {
  switch (s) {
    case StoreConfig::Sync::kNone:
      return "none";
    case StoreConfig::Sync::kBatch:
      return "batch";
    case StoreConfig::Sync::kAlways:
      return "always";
  }
  return "?";
}

ProcedureStore::ProcedureStore(StoreConfig cfg, obs::MetricsRegistry& metrics)
    : cfg_(std::move(cfg)),
      hits_(metrics.counter(cfg_.metric_prefix + ".hits")),
      misses_(metrics.counter(cfg_.metric_prefix + ".misses")),
      appends_(metrics.counter(cfg_.metric_prefix + ".appends")),
      compactions_(metrics.counter(cfg_.metric_prefix + ".compactions")),
      corrupt_(metrics.counter(cfg_.metric_prefix + ".corrupt_skipped")),
      bytes_gauge_(metrics.gauge(cfg_.metric_prefix + ".bytes")),
      live_gauge_(metrics.gauge(cfg_.metric_prefix + ".live")),
      segments_gauge_(metrics.gauge(cfg_.metric_prefix + ".segments")) {
  if (cfg_.dir.empty()) {
    throw std::runtime_error("ProcedureStore: empty directory");
  }
  if (!cfg_.wall_now_s) cfg_.wall_now_s = default_wall_now_s;
  open_and_replay();
  if (cfg_.background_compaction) {
    worker_ = std::thread([this] { worker_main(); });
  }
}

ProcedureStore::~ProcedureStore() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(active_seq_);
  if (it != segments_.end() && it->second.valid()) {
    it->second.sync();  // drain: whatever reached us is durable on close
    // An active segment holding only the header carries no data — drop it
    // so restarts don't accumulate empty files.
    if (it->second.size() <= kSegmentHeaderBytes) {
      it->second.close_and_unlink();
    }
  }
  // Remaining segments close via their destructors.
}

void ProcedureStore::open_and_replay() {
  if (!ensure_dir(cfg_.dir)) {
    throw std::runtime_error("store: cannot create directory " + cfg_.dir);
  }
  const DirScan scan = scan_dir(cfg_.dir);
  for (const std::string& tmp : scan.tmp_names) {
    ::unlink(join(cfg_.dir, tmp).c_str());  // crashed mid-compaction
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < scan.seqs.size(); ++i) {
    replay_segment(scan.seqs[i], /*youngest=*/i + 1 == scan.seqs.size());
  }
  const std::uint64_t next =
      scan.seqs.empty() ? 1 : scan.seqs.back() + 1;
  segments_.emplace(
      next, Segment::open_active(join(cfg_.dir, segment_filename(next))));
  active_seq_ = next;
  sync_dir(cfg_.dir);
  publish_gauges_locked();
}

void ProcedureStore::replay_segment(std::uint64_t seq, bool youngest) {
  const std::string path = join(cfg_.dir, segment_filename(seq));
  Segment seg = Segment::open_frozen(path);
  const std::string_view bytes = seg.mapped();
  bool header_ok = true;
  try {
    check_segment_header(bytes);
  } catch (const std::invalid_argument&) {
    header_ok = false;
  }
  if (!header_ok) {
    if (youngest && bytes.size() < kSegmentHeaderBytes) {
      // Crashed between creat() and the header write: an empty shell, not
      // data loss. Drop it; its sequence number is never reused because the
      // caller picks max+1 from the scan.
      seg.close_and_unlink();
      return;
    }
    // Unreadable header on a populated segment: nothing in it can be
    // trusted. Keep the file in the table (compaction will retire it) but
    // index nothing.
    corrupt_.add(1);
    segments_.emplace(seq, std::move(seg));
    return;
  }
  std::size_t off = kSegmentHeaderBytes;
  std::uint64_t truncate_at = 0;
  bool want_truncate = false;
  while (off < bytes.size()) {
    const ParseResult pr = parse_record(bytes.substr(off));
    if (pr.status == ParseStatus::kOk) {
      if (pr.record.kind == kRecordProcedure) {
        index_[pr.record.key] =
            Loc{seq, off, static_cast<std::uint32_t>(pr.consumed),
                pr.record.stamp_s, pr.record.stamp_s};
      }
      off += pr.consumed;
      continue;
    }
    if (pr.status == ParseStatus::kCorrupt && pr.consumed > 0) {
      // Mid-file CRC failure with a believable frame: skip it, keep going.
      corrupt_.add(1);
      off += pr.consumed;
      continue;
    }
    // Truncated frame, or a garbage length prefix. On the youngest segment
    // this is the torn tail of the crashed writer — cut it off. Elsewhere
    // it is corruption; the rest of the segment is unscannable.
    if (youngest) {
      truncate_at = off;
      want_truncate = true;
    } else {
      corrupt_.add(1);
    }
    break;
  }
  if (want_truncate) {
    truncated_tail_bytes_ += bytes.size() - truncate_at;
    seg.close();  // unmap before shrinking the file under the mapping
    if (::truncate(path.c_str(), static_cast<off_t>(truncate_at)) != 0) {
      throw std::runtime_error("store: truncate " + path + ": " +
                               std::strerror(errno));
    }
    seg = Segment::open_frozen(path);
  }
  segments_.emplace(seq, std::move(seg));
}

std::uint64_t ProcedureStore::total_bytes_locked() const {
  std::uint64_t n = 0;
  for (const auto& [seq, seg] : segments_) n += seg.size();
  return n;
}

void ProcedureStore::publish_gauges_locked() {
  bytes_gauge_.set(static_cast<double>(total_bytes_locked()));
  live_gauge_.set(static_cast<double>(index_.size()));
  segments_gauge_.set(static_cast<double>(segments_.size()));
}

std::optional<ProcedureStore::Procedure> ProcedureStore::get(
    const StoreKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.add(1);
    return std::nullopt;
  }
  Loc& loc = it->second;
  const auto seg_it = segments_.find(loc.seq);
  std::string buf;
  std::string_view frame;
  bool io_ok = seg_it != segments_.end();
  if (io_ok && seg_it->second.active()) {
    io_ok = seg_it->second.read_at(loc.offset, loc.frame_len, buf);
    frame = buf;
  } else if (io_ok) {
    const std::string_view mapped = seg_it->second.mapped();
    io_ok = loc.offset + loc.frame_len <= mapped.size();
    if (io_ok) frame = mapped.substr(loc.offset, loc.frame_len);
  }
  ParseResult pr;
  if (io_ok) pr = parse_record(frame);
  if (!io_ok || pr.status != ParseStatus::kOk || !(pr.record.key == key)) {
    // The indexed bytes no longer check out (bit rot, I/O error): drop the
    // entry so the caller re-solves and the next put repairs the store.
    corrupt_.add(1);
    index_.erase(it);
    misses_.add(1);
    publish_gauges_locked();
    return std::nullopt;
  }
  loc.last_used_s = cfg_.wall_now_s();
  hits_.add(1);
  return Procedure{pr.record.cost, std::move(pr.record.tree)};
}

bool ProcedureStore::put(const StoreKey& key, double cost,
                         const tt::Tree& tree) {
  Record rec;
  rec.key = key;
  rec.stamp_s = cfg_.wall_now_s();
  rec.kind = kRecordProcedure;
  rec.cost = cost;
  rec.tree = tree;
  std::string frame;
  try {
    append_record(rec, frame);
  } catch (const std::invalid_argument&) {
    return false;  // oversized tree: not storable, not an error
  }
  bool over_budget = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Segment& act = segments_.at(active_seq_);
    const std::uint64_t off = act.size();
    if (!act.append(frame)) return false;
    appends_.add(1);
    index_[key] = Loc{active_seq_, off,
                      static_cast<std::uint32_t>(frame.size()), rec.stamp_s,
                      rec.stamp_s};
    ++dirty_appends_;
    if (cfg_.sync == StoreConfig::Sync::kAlways ||
        (cfg_.sync == StoreConfig::Sync::kBatch &&
         dirty_appends_ >= cfg_.batch_appends)) {
      act.sync();
      dirty_appends_ = 0;
    }
    publish_gauges_locked();
    over_budget = total_bytes_locked() > cfg_.max_bytes && !compacting_;
  }
  if (over_budget) maybe_trigger_compaction();
  return true;
}

void ProcedureStore::maybe_trigger_compaction() {
  if (cfg_.background_compaction) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      compact_requested_ = true;
    }
    cv_.notify_all();
  } else {
    compact_now();
  }
}

void ProcedureStore::worker_main() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stop_ || compact_requested_; });
    if (stop_) return;
    compact_requested_ = false;
    compact_locked(lk);
  }
}

bool ProcedureStore::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = segments_.find(active_seq_);
  if (it == segments_.end()) return false;
  dirty_appends_ = 0;
  return it->second.sync();
}

std::uint64_t ProcedureStore::compact_now() {
  std::unique_lock<std::mutex> lk(mu_);
  return compact_locked(lk);
}

std::uint64_t ProcedureStore::compact_locked(std::unique_lock<std::mutex>& lk) {
  if (compacting_) return 0;
  compacting_ = true;

  // --- Phase 1 (locked): rotate. Active S freezes; the compacted output
  // will be S+1; new appends go to S+2. Replay order (ascending seq) then
  // reads the compacted copy *before* anything appended during or after
  // this compaction, so later-wins semantics hold at every crash point.
  const std::uint64_t S = active_seq_;
  const std::uint64_t out_seq = S + 1;
  const std::uint64_t new_active = S + 2;
  struct Snap {
    StoreKey key;
    Loc loc;
  };
  std::vector<Snap> snap;
  std::uint64_t before_bytes = 0;
  try {
    Segment next = Segment::open_active(
        join(cfg_.dir, segment_filename(new_active)));
    Segment& old = segments_.at(S);
    old.sync();
    old.freeze();
    segments_.emplace(new_active, std::move(next));
    active_seq_ = new_active;
    dirty_appends_ = 0;
  } catch (const std::runtime_error&) {
    compacting_ = false;
    return 0;  // rotation failed; old active still usable, try again later
  }
  snap.reserve(index_.size());
  for (const auto& [key, loc] : index_) {
    if (loc.seq <= S) snap.push_back(Snap{key, loc});
  }
  for (const auto& [seq, seg] : segments_) {
    if (seq <= S) before_bytes += seg.size();
  }
  lk.unlock();

  // --- Phase 2 (unlocked): pick survivors, write the replacement segment.
  // Source segments are frozen and mapped; nobody unmaps them while
  // `compacting_` is set, so raw frames can be copied without the lock.
  const std::uint64_t now_s = cfg_.wall_now_s();
  std::vector<Snap> live;
  live.reserve(snap.size());
  for (const Snap& s : snap) {
    if (cfg_.ttl_seconds > 0 && s.loc.stamp_s + cfg_.ttl_seconds <= now_s) {
      continue;  // expired: dropped for good
    }
    live.push_back(s);
  }
  // Hot-first, then keep while under the post-compaction target.
  std::sort(live.begin(), live.end(), [](const Snap& a, const Snap& b) {
    if (a.loc.last_used_s != b.loc.last_used_s) {
      return a.loc.last_used_s > b.loc.last_used_s;
    }
    return a.loc.stamp_s > b.loc.stamp_s;
  });
  const std::uint64_t target = cfg_.max_bytes - cfg_.max_bytes / 4;
  std::uint64_t kept_bytes = kSegmentHeaderBytes;
  std::size_t keep_n = 0;
  while (keep_n < live.size() &&
         kept_bytes + live[keep_n].loc.frame_len <= target) {
    kept_bytes += live[keep_n].loc.frame_len;
    ++keep_n;
  }
  live.resize(keep_n);

  bool wrote_output = false;
  Segment out;
  std::unordered_map<StoreKey, Loc, StoreKeyHash> new_locs;
  if (!live.empty()) {
    const std::string tmp_path =
        join(cfg_.dir, segment_filename(out_seq) + ".tmp");
    const std::string final_path = join(cfg_.dir, segment_filename(out_seq));
    try {
      Segment tmp = Segment::open_active(tmp_path);
      for (const Snap& s : live) {
        const std::string_view mapped = segments_.at(s.loc.seq).mapped();
        const std::uint64_t off = tmp.size();
        if (!tmp.append(mapped.substr(s.loc.offset, s.loc.frame_len))) {
          throw std::runtime_error("store: compaction append failed");
        }
        Loc moved = s.loc;
        moved.seq = out_seq;
        moved.offset = off;
        new_locs.emplace(s.key, moved);
      }
      if (!tmp.sync()) throw std::runtime_error("store: compaction fsync");
      tmp.close();
      if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
        throw std::runtime_error("store: compaction rename failed");
      }
      sync_dir(cfg_.dir);
      out = Segment::open_frozen(final_path);
      wrote_output = true;
    } catch (const std::runtime_error&) {
      ::unlink(tmp_path.c_str());
      lk.lock();
      compacting_ = false;
      return 0;  // old segments untouched; nothing lost
    }
  }

  // --- Phase 3 (locked): swap the index, retire replaced segments.
  lk.lock();
  if (wrote_output) segments_.emplace(out_seq, std::move(out));
  for (const Snap& s : snap) {
    const auto it = index_.find(s.key);
    if (it == index_.end() || it->second.seq > S) {
      continue;  // re-put during phase 2: the newer record wins
    }
    const auto kept = new_locs.find(s.key);
    if (kept != new_locs.end()) {
      // Preserve any recency bump that happened during phase 2.
      const std::uint64_t used =
          std::max(it->second.last_used_s, kept->second.last_used_s);
      it->second = kept->second;
      it->second.last_used_s = used;
    } else {
      index_.erase(it);  // expired or cold: dropped
    }
  }
  for (auto it = segments_.begin();
       it != segments_.end() && it->first <= S;) {
    it->second.close_and_unlink();
    it = segments_.erase(it);
  }
  sync_dir(cfg_.dir);
  compactions_.add(1);
  compacting_ = false;
  publish_gauges_locked();
  const std::uint64_t after =
      wrote_output ? segments_.at(out_seq).size() : 0;
  return before_bytes > after ? before_bytes - after : 0;
}

StoreStats ProcedureStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreStats st;
  st.segments = segments_.size();
  st.live_records = index_.size();
  st.bytes = total_bytes_locked();
  st.hits = hits_.value();
  st.misses = misses_.value();
  st.appends = appends_.value();
  st.compactions = compactions_.value();
  st.corrupt_skipped = corrupt_.value();
  st.truncated_tail_bytes = truncated_tail_bytes_;
  return st;
}

std::size_t ProcedureStore::index_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

VerifyReport verify_dir(const std::string& dir) {
  VerifyReport rep;
  const DirScan scan = scan_dir(dir);
  rep.ok = true;
  std::unordered_map<StoreKey, bool, StoreKeyHash> live;
  for (std::size_t i = 0; i < scan.seqs.size(); ++i) {
    const bool youngest = i + 1 == scan.seqs.size();
    Segment seg =
        Segment::open_frozen(join(dir, segment_filename(scan.seqs[i])));
    const std::string_view bytes = seg.mapped();
    ++rep.segments;
    rep.bytes += bytes.size();
    try {
      check_segment_header(bytes);
    } catch (const std::invalid_argument&) {
      if (youngest && bytes.size() < kSegmentHeaderBytes) {
        rep.torn_tail_bytes += bytes.size();
      } else {
        ++rep.corrupt;
        rep.ok = false;
      }
      continue;
    }
    std::size_t off = kSegmentHeaderBytes;
    while (off < bytes.size()) {
      const ParseResult pr = parse_record(bytes.substr(off));
      if (pr.status == ParseStatus::kOk) {
        ++rep.records;
        if (pr.record.kind == kRecordProcedure) live[pr.record.key] = true;
        off += pr.consumed;
        continue;
      }
      if (pr.status == ParseStatus::kCorrupt && pr.consumed > 0) {
        ++rep.corrupt;
        rep.ok = false;
        off += pr.consumed;
        continue;
      }
      if (youngest) {
        rep.torn_tail_bytes += bytes.size() - off;
      } else {
        ++rep.corrupt;
        rep.ok = false;
      }
      break;
    }
  }
  rep.live_records = live.size();
  return rep;
}

}  // namespace ttp::store
