// Segment files for the durable procedure store: POSIX fds, O_APPEND
// writes, read-only mmap, fsync. No record knowledge here (store/format.hpp)
// and no index/replay logic (store/store.hpp) — just bytes on disk.
//
// A segment is either *active* (the one O_APPEND writer; reads go through
// pread so the mapping never has to chase the growing tail) or *frozen*
// (immutable; reads are string_views straight into a shared read-only mmap —
// the warm-restart fast path deserializes from the page cache with zero
// copies).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ttp::store {

/// "seg-00000000000000000042.ttps" — fixed-width decimal so lexicographic
/// order equals replay order.
std::string segment_filename(std::uint64_t seq);

/// Inverts segment_filename; false for foreign names (tmp files, dotfiles).
bool parse_segment_seq(std::string_view filename, std::uint64_t& seq);

class Segment {
 public:
  Segment() = default;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;
  Segment(Segment&& o) noexcept { *this = std::move(o); }
  Segment& operator=(Segment&& o) noexcept;
  ~Segment();

  /// Opens (creating if needed) for O_APPEND writing; writes the segment
  /// header if the file is empty. Throws std::runtime_error on I/O failure.
  static Segment open_active(const std::string& path);

  /// Opens an existing file read-only and maps it. Throws std::runtime_error
  /// on I/O failure (a malformed *header* is the caller's concern — the
  /// bytes are simply exposed).
  static Segment open_frozen(const std::string& path);

  bool valid() const noexcept { return fd_ >= 0; }
  bool active() const noexcept { return active_; }
  std::uint64_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }

  /// Frozen (mapped) segments: the whole file. Empty view when unmapped.
  std::string_view mapped() const noexcept {
    return {static_cast<const char*>(map_), map_len_};
  }

  /// Single write() of the whole frame (all-or-nothing against process
  /// death: an O_APPEND write that entered the page cache survives kill -9).
  /// False on I/O error.
  bool append(std::string_view frame);

  /// pread [off, off+len) into out (resized). False on short read or error.
  bool read_at(std::uint64_t off, std::size_t len, std::string& out) const;

  bool sync();  ///< fsync; false on error.

  /// ftruncate to len — torn-tail recovery on the youngest segment.
  bool truncate_to(std::uint64_t len);

  /// Converts the active segment to frozen-and-mapped in place (compaction
  /// rotation). Throws std::runtime_error if the mmap fails.
  void freeze();

  void close() noexcept;
  /// close() then unlink — compaction retiring a replaced segment.
  void close_and_unlink() noexcept;

 private:
  std::string path_;
  int fd_ = -1;
  void* map_ = nullptr;
  std::size_t map_len_ = 0;
  std::uint64_t size_ = 0;
  bool active_ = false;
};

/// fsync on the directory itself — makes renames/creates durable. False on
/// error (non-fatal: data fsync still happened).
bool sync_dir(const std::string& dir);

/// mkdir -p for a single level (parent must exist). False on failure.
bool ensure_dir(const std::string& dir);

}  // namespace ttp::store
