// A small assembler for the paper's §2 instruction syntax:
//
//     R[5],B = f:0xCA,g:0xF0 (R[3], A.L, B) IF {0,2}
//     A,B    = f:0xAA,g:0xF0 (A, R[7].I, B)
//     E,B    = f:0xFF,g:0xF0 (A, A, B) NF {1}
//
// The grammar is exactly what Instr::to_string() emits, so assembly and
// disassembly round-trip; '#' starts a comment, blank lines are skipped.
#pragma once

#include <string>
#include <vector>

#include "bvm/instr.hpp"

namespace ttp::bvm {

struct AsmError {
  int line = 0;
  std::string message;
};

/// Parses one instruction; throws std::invalid_argument with a descriptive
/// message on malformed input.
Instr parse_instr(const std::string& text);

/// Parses a whole program (one instruction per line).
std::vector<Instr> assemble(const std::string& source);

/// Disassembles a program, one instruction per line.
std::string disassemble(const std::vector<Instr>& prog);

}  // namespace ttp::bvm
