// Packed bit-vector: one bit per PE, 64 PEs per word. This is the storage
// for every BVM register row; all ISA evaluation is word-parallel, which is
// what makes simulating a 2^20-PE bit-serial machine practical (a register
// row is 16 KiB and an instruction a few word sweeps).
//
// Invariant: bits at index >= size() are zero (enforced by trim()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ttp::bvm {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n, bool value = false)
      : n_(n), w_((n + 63) / 64, value ? ~std::uint64_t{0} : 0) {
    trim();
  }

  std::size_t size() const noexcept { return n_; }
  std::size_t words() const noexcept { return w_.size(); }
  std::uint64_t word(std::size_t i) const { return w_[i]; }
  std::uint64_t& word(std::size_t i) { return w_[i]; }
  const std::uint64_t* data() const noexcept { return w_.data(); }
  std::uint64_t* data() noexcept { return w_.data(); }

  bool get(std::size_t i) const { return (w_[i >> 6] >> (i & 63)) & 1u; }
  void set(std::size_t i, bool v) {
    const std::uint64_t m = std::uint64_t{1} << (i & 63);
    if (v) {
      w_[i >> 6] |= m;
    } else {
      w_[i >> 6] &= ~m;
    }
  }

  void fill(bool v) {
    for (auto& w : w_) w = v ? ~std::uint64_t{0} : 0;
    trim();
  }

  /// Zeroes the padding bits above size(); call after any whole-word write
  /// that may have spilled into the tail.
  void trim() {
    if (n_ % 64 != 0 && !w_.empty()) {
      w_.back() &= (~std::uint64_t{0}) >> (64 - n_ % 64);
    }
  }

  bool operator==(const BitVec& o) const noexcept {
    return n_ == o.n_ && w_ == o.w_;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> w_;
};

}  // namespace ttp::bvm
