// The Boolean Vector Machine simulator (paper §2).
//
// All register rows are packed bit-vectors; executing one instruction is a
// handful of word-parallel Boolean sweeps, so the simulator is
// cycle-accurate in instruction counts while running 64 PEs per host word.
//
// Host access (poke/peek/load_register/read_register) models the front-end
// computer's DMA and is counted separately from executed instructions; the
// serial I-chain (`Nbr::I` plus input/output queues) is the paper's own
// 1-bit-per-instruction I/O mechanism and is also provided.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "bvm/bitvec.hpp"
#include "bvm/config.hpp"
#include "bvm/instr.hpp"

namespace ttp::bvm {

class Machine {
 public:
  explicit Machine(BvmConfig cfg);

  const BvmConfig& config() const noexcept { return cfg_; }
  std::size_t num_pes() const noexcept { return n_; }

  /// Executes one instruction on all active & enabled PEs.
  void exec(const Instr& in);
  /// Executes a sequence.
  void run(const std::vector<Instr>& prog);

  std::uint64_t instr_count() const noexcept { return instr_count_; }
  /// Stable reference to the instruction counter, for obs::Span probes.
  const std::uint64_t& instr_counter() const noexcept { return instr_count_; }
  void reset_instr_count() noexcept { instr_count_ = 0; }

  /// Streams one disassembled line per executed instruction (nullptr to
  /// disable). The front-end computer's debug console.
  void set_trace(std::ostream* os) noexcept { trace_ = os; }

  /// Appends every executed instruction to `sink` (nullptr to stop). The
  /// BVM is SIMD: a microprogram's instruction stream is static for a given
  /// problem SHAPE (all data dependence is via per-PE register contents),
  /// so a recorded program can be replayed against different data — the
  /// "control bits precalculated" mode of operation.
  void set_recorder(std::vector<Instr>* sink) noexcept { recorder_ = sink; }

  /// Debug dump of a register row as a 0/1 string in PE order.
  std::string dump_row(Reg reg) const;

  // --- serial I/O chain ---
  void push_input(bool bit) { input_.push_back(bit); }
  void push_input_bits(const std::vector<bool>& bits);
  std::size_t input_pending() const noexcept { return input_.size(); }
  const std::vector<bool>& output() const noexcept { return output_; }
  void clear_output() { output_.clear(); }

  // --- host (front-end) access; not BVM instructions ---
  bool peek(Reg reg, std::size_t pe) const;
  void poke(Reg reg, std::size_t pe, bool v);
  /// Reads/writes a whole register row.
  const BitVec& row(Reg reg) const;
  BitVec& row(Reg reg);
  std::uint64_t host_ops() const noexcept { return host_ops_; }

  /// Reads the p-bit little-endian value spread over registers
  /// R[base..base+p-1] at one PE (host DMA).
  std::uint64_t peek_value(int base, int bits, std::size_t pe) const;
  void poke_value(int base, int bits, std::size_t pe, std::uint64_t v);

  // --- addressing helpers ---
  std::size_t addr(std::size_t cycle, int pos) const noexcept {
    return cycle * static_cast<std::size_t>(cfg_.Q()) +
           static_cast<std::size_t>(pos);
  }
  int pos_of(std::size_t pe) const noexcept {
    return static_cast<int>(pe & (static_cast<std::size_t>(cfg_.Q()) - 1));
  }
  std::size_t cycle_of(std::size_t pe) const noexcept {
    return pe >> cfg_.r;
  }

 private:
  // Routes `src` through a neighbor read: out[pe] = src[neighbor(pe)].
  void route(const BitVec& src, Nbr nbr, BitVec& out);
  void route_cycle_shift(const BitVec& src, bool toward_zero, BitVec& out) const;
  void route_xs(const BitVec& src, BitVec& out) const;
  void route_xp(const BitVec& src, BitVec& out) const;
  void route_lateral(const BitVec& src, BitVec& out) const;
  void route_ichain(const BitVec& src, BitVec& out);

  const BitVec& resolve(Reg reg) const;
  BitVec& resolve_mut(Reg reg);

  // Evaluates tt(F, D, B) word-parallel into out.
  static void apply_tt(std::uint8_t tt, const BitVec& f, const BitVec& d,
                       const BitVec& b, BitVec& out);

  // Builds the activation mask (over PEs) for an instruction.
  void activation_mask(const Instr& in, BitVec& mask) const;

  BvmConfig cfg_;
  std::size_t n_;
  BitVec a_, b_, e_;
  std::vector<BitVec> r_;
  std::deque<bool> input_;
  std::vector<bool> output_;
  std::uint64_t instr_count_ = 0;
  std::uint64_t host_ops_ = 0;
  std::ostream* trace_ = nullptr;
  std::vector<Instr>* recorder_ = nullptr;

  // Scratch rows reused across exec calls to avoid per-instruction allocs.
  BitVec scratch_d_, scratch_f_, scratch_g_, scratch_mask_;

  // Precomputed word masks, repeating patterns over in-cycle positions.
  std::uint64_t pattern_for_positions(std::uint64_t act_set) const;
};

}  // namespace ttp::bvm
