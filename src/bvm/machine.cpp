#include "bvm/machine.hpp"

#include <ostream>
#include <stdexcept>

namespace ttp::bvm {

namespace {

constexpr std::uint64_t kAll = ~std::uint64_t{0};

// Evaluates a 2-input truth-table nibble on packed words.
inline std::uint64_t eval2(unsigned nib, std::uint64_t f, std::uint64_t d) {
  switch (nib & 0xF) {
    case 0x0: return 0;
    case 0x1: return ~f & ~d;
    case 0x2: return f & ~d;
    case 0x3: return ~d;
    case 0x4: return ~f & d;
    case 0x5: return ~f;
    case 0x6: return f ^ d;
    case 0x7: return ~(f & d);
    case 0x8: return f & d;
    case 0x9: return ~(f ^ d);
    case 0xA: return f;
    case 0xB: return f | ~d;
    case 0xC: return d;
    case 0xD: return ~f | d;
    case 0xE: return f | d;
    default: return kAll;
  }
}

// Builds a 64-bit word whose bit i depends only on (i mod period) via fn.
template <typename Fn>
std::uint64_t periodic_word(int period, Fn fn) {
  std::uint64_t w = 0;
  for (int i = 0; i < 64; ++i) {
    if (fn(i % period)) w |= std::uint64_t{1} << i;
  }
  return w;
}

}  // namespace

Machine::Machine(BvmConfig cfg) : cfg_(cfg), n_(cfg.num_pes()) {
  cfg_.check();
  if (cfg_.r > 6) {
    // Word-parallel routing relies on cycles aligning with 64-bit words.
    throw std::invalid_argument("Machine: cycle length above 64 unsupported");
  }
  a_ = BitVec(n_);
  b_ = BitVec(n_);
  e_ = BitVec(n_, true);  // all PEs enabled at power-on
  r_.assign(static_cast<std::size_t>(cfg_.regs), BitVec(n_));
  scratch_d_ = BitVec(n_);
  scratch_f_ = BitVec(n_);
  scratch_g_ = BitVec(n_);
  scratch_mask_ = BitVec(n_);
}

const BitVec& Machine::resolve(Reg reg) const {
  switch (reg.kind) {
    case Reg::Kind::A: return a_;
    case Reg::Kind::B: return b_;
    case Reg::Kind::E: return e_;
    case Reg::Kind::R: return r_.at(reg.index);
  }
  throw std::logic_error("Machine::resolve: bad register");
}

BitVec& Machine::resolve_mut(Reg reg) {
  return const_cast<BitVec&>(resolve(reg));
}

std::uint64_t Machine::pattern_for_positions(std::uint64_t act_set) const {
  const int Q = cfg_.Q();
  return periodic_word(Q <= 64 ? Q : 64,
                       [&](int p) { return ((act_set >> p) & 1u) != 0; });
}

void Machine::activation_mask(const Instr& in, BitVec& mask) const {
  std::uint64_t pattern = kAll;
  if (in.act == Act::If) {
    pattern = pattern_for_positions(in.act_set);
  } else if (in.act == Act::Nf) {
    pattern = ~pattern_for_positions(in.act_set);
  }
  for (std::size_t w = 0; w < mask.words(); ++w) mask.word(w) = pattern;
  mask.trim();
}

void Machine::route_cycle_shift(const BitVec& src, bool toward_zero,
                                BitVec& out) const {
  const int Q = cfg_.Q();
  // Positions align with words (Q divides 64 or n < 64), so no cross-word
  // carries: wrap happens inside each Q-bit group.
  if (toward_zero) {
    // S-read: out[p] = src[p+1 mod Q].
    const std::uint64_t m_last =
        periodic_word(Q, [&](int p) { return p == Q - 1; });
    for (std::size_t w = 0; w < src.words(); ++w) {
      const std::uint64_t x = src.word(w);
      out.word(w) = ((x >> 1) & ~m_last) |
                    ((x << (Q - 1)) & m_last);
    }
  } else {
    // P-read: out[p] = src[p-1 mod Q].
    const std::uint64_t m_first = periodic_word(Q, [&](int p) { return p == 0; });
    for (std::size_t w = 0; w < src.words(); ++w) {
      const std::uint64_t x = src.word(w);
      out.word(w) = ((x << 1) & ~m_first) |
                    ((x >> (Q - 1)) & m_first);
    }
  }
  out.trim();
}

void Machine::route_xs(const BitVec& src, BitVec& out) const {
  // out[p] = src[p xor 1].
  const std::uint64_t m_even = periodic_word(2, [](int p) { return p == 0; });
  for (std::size_t w = 0; w < src.words(); ++w) {
    const std::uint64_t x = src.word(w);
    out.word(w) = ((x >> 1) & m_even) | ((x << 1) & ~m_even);
  }
  out.trim();
}

void Machine::route_xp(const BitVec& src, BitVec& out) const {
  // Even positions read their predecessor, odd their successor — the
  // pairing {1,2},{3,4},...,{Q-1,0}.
  const int Q = cfg_.Q();
  const std::uint64_t m_even = periodic_word(2, [](int p) { return p == 0; });
  const std::uint64_t m_first = periodic_word(Q, [&](int p) { return p == 0; });
  const std::uint64_t m_last =
      periodic_word(Q, [&](int p) { return p == Q - 1; });
  for (std::size_t w = 0; w < src.words(); ++w) {
    const std::uint64_t x = src.word(w);
    const std::uint64_t pred = ((x << 1) & ~m_first) | ((x >> (Q - 1)) & m_first);
    const std::uint64_t succ = ((x >> 1) & ~m_last) | ((x << (Q - 1)) & m_last);
    out.word(w) = (pred & m_even) | (succ & ~m_even);
  }
  out.trim();
}

void Machine::route_lateral(const BitVec& src, BitVec& out) const {
  const int Q = cfg_.Q();
  const int h = cfg_.h;
  for (std::size_t w = 0; w < out.words(); ++w) out.word(w) = 0;
  for (int p = 0; p < h; ++p) {
    const std::uint64_t sel = periodic_word(Q, [&](int q) { return q == p; });
    const std::size_t dist = std::size_t{1} << (cfg_.r + p);  // address xor
    if (dist >= 64) {
      const std::size_t word_off = dist >> 6;
      for (std::size_t w = 0; w < src.words(); ++w) {
        out.word(w) |= src.word(w ^ word_off) & sel;
      }
    } else {
      const std::uint64_t m_clear =
          periodic_word(static_cast<int>(2 * dist),
                        [&](int i) { return (static_cast<std::size_t>(i) & dist) == 0; });
      for (std::size_t w = 0; w < src.words(); ++w) {
        const std::uint64_t x = src.word(w);
        const std::uint64_t swapped =
            ((x >> dist) & m_clear) | ((x << dist) & ~m_clear);
        out.word(w) |= swapped & sel;
      }
    }
  }
  if (h < Q) {
    // Positions without a lateral link read their own bit.
    const std::uint64_t self = periodic_word(Q, [&](int q) { return q >= h; });
    for (std::size_t w = 0; w < src.words(); ++w) {
      out.word(w) |= src.word(w) & self;
    }
  }
  out.trim();
}

void Machine::route_ichain(const BitVec& src, BitVec& out) {
  // Global left shift: PE l reads PE l-1; PE 0 consumes one input bit; the
  // bit of PE n-1 leaves through the output pin. The chain moves machine-
  // wide regardless of activation, like the hardware shift path.
  bool carry;
  if (input_.empty()) {
    carry = false;  // an idle input pin reads 0
  } else {
    carry = input_.front();
    input_.pop_front();
  }
  output_.push_back(src.get(n_ - 1));
  for (std::size_t w = 0; w < src.words(); ++w) {
    const std::uint64_t x = src.word(w);
    const bool top = (x >> 63) & 1u;
    out.word(w) = (x << 1) | (carry ? 1u : 0u);
    carry = top;
  }
  out.trim();
}

void Machine::route(const BitVec& src, Nbr nbr, BitVec& out) {
  switch (nbr) {
    case Nbr::None:
      out = src;
      return;
    case Nbr::S:
      route_cycle_shift(src, /*toward_zero=*/true, out);
      return;
    case Nbr::P:
      route_cycle_shift(src, /*toward_zero=*/false, out);
      return;
    case Nbr::L:
      route_lateral(src, out);
      return;
    case Nbr::XS:
      route_xs(src, out);
      return;
    case Nbr::XP:
      route_xp(src, out);
      return;
    case Nbr::I:
      route_ichain(src, out);
      return;
  }
  throw std::logic_error("Machine::route: bad neighbor");
}

void Machine::apply_tt(std::uint8_t tt, const BitVec& f, const BitVec& d,
                       const BitVec& b, BitVec& out) {
  const unsigned lo = tt & 0xF;        // B = 0 plane
  const unsigned hi = (tt >> 4) & 0xF; // B = 1 plane
  for (std::size_t w = 0; w < out.words(); ++w) {
    const std::uint64_t fw = f.word(w);
    const std::uint64_t dw = d.word(w);
    const std::uint64_t bw = b.word(w);
    out.word(w) = (bw & eval2(hi, fw, dw)) | (~bw & eval2(lo, fw, dw));
  }
  out.trim();
}

void Machine::exec(const Instr& in) {
  if (in.src_f.kind == Reg::Kind::B || in.src_f.kind == Reg::Kind::E ||
      in.src_d.kind == Reg::Kind::B || in.src_d.kind == Reg::Kind::E) {
    throw std::invalid_argument(
        "Machine::exec: F/D must be A or R[j] (B is the implicit third "
        "input; E is not readable as an operand)");
  }
  if (in.dest.kind == Reg::Kind::B) {
    throw std::invalid_argument(
        "Machine::exec: B is always the second target, not the first");
  }
  if (in.src_f.kind == Reg::Kind::R && in.src_f.index >= r_.size()) {
    throw std::out_of_range("Machine::exec: F register index");
  }
  if (in.src_d.kind == Reg::Kind::R && in.src_d.index >= r_.size()) {
    throw std::out_of_range("Machine::exec: D register index");
  }
  if (in.dest.kind == Reg::Kind::R && in.dest.index >= r_.size()) {
    throw std::out_of_range("Machine::exec: dest register index");
  }

  const BitVec& f = resolve(in.src_f);
  route(resolve(in.src_d), in.d_nbr, scratch_d_);

  apply_tt(in.f, f, scratch_d_, b_, scratch_f_);  // dest value
  apply_tt(in.g, f, scratch_d_, b_, scratch_g_);  // new B value

  activation_mask(in, scratch_mask_);

  // Writes: dest and B are gated by activation AND the enable register —
  // except writes to E itself, which ignore the enable gate (the E register
  // is always enabled). Gating uses E's pre-instruction value.
  BitVec& dest = resolve_mut(in.dest);
  const bool dest_is_e = in.dest.kind == Reg::Kind::E;
  for (std::size_t w = 0; w < dest.words(); ++w) {
    const std::uint64_t act = scratch_mask_.word(w);
    const std::uint64_t gate_dest = dest_is_e ? act : (act & e_.word(w));
    const std::uint64_t gate_b = act & e_.word(w);
    const std::uint64_t newb =
        (scratch_g_.word(w) & gate_b) | (b_.word(w) & ~gate_b);
    dest.word(w) =
        (scratch_f_.word(w) & gate_dest) | (dest.word(w) & ~gate_dest);
    b_.word(w) = newb;
  }
  dest.trim();
  b_.trim();
  ++instr_count_;
  if (trace_ != nullptr) {
    (*trace_) << instr_count_ << ": " << in.to_string() << '\n';
  }
  if (recorder_ != nullptr) recorder_->push_back(in);
}

std::string Machine::dump_row(Reg reg) const {
  const BitVec& row = resolve(reg);
  std::string s;
  s.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) s += row.get(i) ? '1' : '0';
  return s;
}

void Machine::run(const std::vector<Instr>& prog) {
  for (const auto& in : prog) exec(in);
}

void Machine::push_input_bits(const std::vector<bool>& bits) {
  for (bool b : bits) input_.push_back(b);
}

bool Machine::peek(Reg reg, std::size_t pe) const {
  return resolve(reg).get(pe);
}

void Machine::poke(Reg reg, std::size_t pe, bool v) {
  resolve_mut(reg).set(pe, v);
  ++host_ops_;
}

const BitVec& Machine::row(Reg reg) const { return resolve(reg); }
BitVec& Machine::row(Reg reg) {
  ++host_ops_;
  return resolve_mut(reg);
}

std::uint64_t Machine::peek_value(int base, int bits, std::size_t pe) const {
  std::uint64_t v = 0;
  for (int t = 0; t < bits; ++t) {
    if (r_.at(static_cast<std::size_t>(base + t)).get(pe)) {
      v |= std::uint64_t{1} << t;
    }
  }
  return v;
}

void Machine::poke_value(int base, int bits, std::size_t pe, std::uint64_t v) {
  for (int t = 0; t < bits; ++t) {
    r_.at(static_cast<std::size_t>(base + t)).set(pe, ((v >> t) & 1u) != 0);
  }
  ++host_ops_;
}

}  // namespace ttp::bvm
