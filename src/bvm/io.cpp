#include "bvm/io.hpp"

#include <stdexcept>

namespace ttp::bvm {

void load_register_serial(Machine& m, Reg dst,
                          const std::vector<bool>& bits) {
  const std::size_t n = m.num_pes();
  if (bits.size() != n) {
    throw std::invalid_argument("load_register_serial: size mismatch");
  }
  // The chain moves data toward higher addresses, so the bit destined for
  // the highest PE must enter first.
  for (std::size_t i = n; i-- > 0;) m.push_input(bits[i]);
  const Instr shift = mov(Reg::MakeA(), Reg::MakeA(), Nbr::I);
  for (std::size_t i = 0; i < n; ++i) m.exec(shift);
  m.exec(mov(dst, Reg::MakeA()));
}

std::vector<bool> read_register_serial(Machine& m, Reg src) {
  const std::size_t n = m.num_pes();
  m.clear_output();
  m.exec(mov(Reg::MakeA(), src));
  const Instr shift = mov(Reg::MakeA(), Reg::MakeA(), Nbr::I);
  for (std::size_t i = 0; i < n; ++i) m.exec(shift);
  // PE n-1's bit leaves on the first shift; PE 0's bit leaves last.
  const std::vector<bool>& out = m.output();
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[n - 1 - i] = out[i];
  return bits;
}

void load_register_host(Machine& m, Reg dst, const std::vector<bool>& bits) {
  const std::size_t n = m.num_pes();
  if (bits.size() != n) {
    throw std::invalid_argument("load_register_host: size mismatch");
  }
  BitVec& row = m.row(dst);
  for (std::size_t i = 0; i < n; ++i) row.set(i, bits[i]);
}

std::vector<bool> read_register_host(const Machine& m, Reg src) {
  const std::size_t n = m.num_pes();
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = m.row(src).get(i);
  return bits;
}

}  // namespace ttp::bvm
