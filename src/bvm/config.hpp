// Boolean Vector Machine configuration (paper §2).
//
// The BVM is a bit-serial SIMD machine whose PEs form a cube-connected-
// cycles network: cycles of length Q = 2^r; PE (i, j) is PE number i·Q + j
// (cycle i, position j). Within the cycle it links to its successor and
// predecessor; positions j < h carry a lateral link to (i xor 2^j, j). The
// paper's machine is the complete CCC (h = Q, 2^Q cycles, 3p/2 links); we
// additionally allow h < Q so intermediate machine sizes exist.
//
// Each PE owns one bit of every register row: registers A, B, the enable
// register E, and L = 256 general registers R[0..L-1].
#pragma once

#include <cstddef>
#include <stdexcept>

#include "net/ccc.hpp"

namespace ttp::bvm {

struct BvmConfig {
  int r = 2;    ///< log2 of the cycle length Q.
  int h = 4;    ///< lateral dimensions, 1 <= h <= Q (h == Q: paper machine).
  int regs = 256;  ///< L, the paper's register count.

  int Q() const noexcept { return 1 << r; }
  int dims() const noexcept { return r + h; }
  std::size_t num_pes() const noexcept { return std::size_t{1} << dims(); }
  std::size_t num_cycles() const noexcept { return std::size_t{1} << h; }

  /// The paper's complete machine for a given cycle-size exponent:
  /// r=2 -> 64 PEs (Fig. 3), r=3 -> 2^11, r=4 -> 2^20 ("currently
  /// implementable"), r=5 -> 2^37 (beyond the paper's 2^30 horizon).
  static BvmConfig complete(int r) { return BvmConfig{r, 1 << r, 256}; }

  /// Smallest config with at least `dims` hypercube dimensions; rejects
  /// shapes the simulator cannot host (dims > 26, i.e. > 2^26 PEs).
  static BvmConfig for_dims(int dims) {
    for (int r = 1; r < dims; ++r) {
      if (dims - r <= (1 << r)) {
        const BvmConfig cfg{r, dims - r, 256};
        cfg.check();
        return cfg;
      }
    }
    throw std::invalid_argument("BvmConfig::for_dims: dims too small/large");
  }

  net::CccConfig topology() const { return net::CccConfig{r, h}; }

  void check() const {
    if (r < 1 || h < 1 || h > Q() || dims() > 26 || regs < 8 || regs > 4096) {
      throw std::invalid_argument("BvmConfig: invalid parameters");
    }
  }
};

}  // namespace ttp::bvm
