// Host <-> BVM data transfer.
//
// The paper's machine exposes a 1-bit serial chain (neighbor tag I): each
// I-instruction shifts the whole array one PE forward, consuming one input
// bit at PE 0 and emitting one at PE n-1. Loading a full register row thus
// costs n instructions — faithful but slow, so a host "DMA" fast path
// (Machine::poke/poke_value, zero instructions) is also provided; tests
// assert both agree. Benches default to DMA for initial data and report
// serial-load instruction counts separately.
#pragma once

#include <vector>

#include "bvm/machine.hpp"

namespace ttp::bvm {

/// Loads bits[pe] into register `dst` of each PE through the I-chain using
/// register A as the shift vehicle: n I-shifts, then one copy A -> dst.
/// Clobbers A (and B is preserved).
void load_register_serial(Machine& m, Reg dst, const std::vector<bool>& bits);

/// Reads a full register row out through the I-chain (n shift instructions).
/// Clobbers A. Returns bits[pe] = dst bit of PE pe.
std::vector<bool> read_register_serial(Machine& m, Reg src);

/// DMA equivalents (no instructions executed).
void load_register_host(Machine& m, Reg dst, const std::vector<bool>& bits);
std::vector<bool> read_register_host(const Machine& m, Reg src);

}  // namespace ttp::bvm
