#include "bvm/microcode/arith.hpp"

#include <algorithm>
#include <stdexcept>

namespace ttp::bvm {

namespace {

// B & (F xnor D): running equality accumulator.
constexpr std::uint8_t kTtEqAcc = 0x90;

Instr with_g(Instr in, std::uint8_t g) {
  in.g = g;
  return in;
}

}  // namespace

void set_b_const(Machine& m, bool value, int scratch) {
  Instr in = mov(Reg::R(scratch), Reg::R(scratch));
  in.g = value ? kTtOne : kTtZero;
  m.exec(in);
}

void set_b_from(Machine& m, int src) {
  // B = g(F,D,B) with D = R[src]; dest1 rewrites src with itself.
  Instr in;
  in.dest = Reg::R(src);
  in.f = kTtD;
  in.g = kTtD;
  in.src_d = Reg::R(src);
  m.exec(in);
}

void set_const(Machine& m, Field dst, std::uint64_t value) {
  for (int t = 0; t < dst.len; ++t) {
    m.exec(setv(dst.reg(t), ((value >> t) & 1u) != 0));
  }
}

void copy_field(Machine& m, Field dst, Field src) {
  if (dst.base == src.base) return;
  for (int t = 0; t < dst.len; ++t) {
    m.exec(mov(dst.reg(t), src.reg(t)));
  }
}

void add_sat(Machine& m, Field dst, Field x, Field y, int scratch) {
  if (dst.len != x.len || dst.len != y.len) {
    throw std::invalid_argument("add_sat: length mismatch");
  }
  set_b_const(m, false, scratch);  // carry = 0
  for (int t = 0; t < dst.len; ++t) {
    Instr in;
    in.dest = dst.reg(t);
    in.f = kTtXor3;  // sum
    in.g = kTtMaj;   // carry
    in.src_f = x.reg(t);
    in.src_d = y.reg(t);
    m.exec(in);
  }
  // Saturate: if the carry survived, pin every bit to 1 (INF). A saturated
  // operand re-saturates (all-ones plus anything nonzero carries out), so
  // INF is absorbing.
  for (int t = 0; t < dst.len; ++t) {
    m.exec(with_g(binop(dst.reg(t), kTtOrFB, dst.reg(t), dst.reg(t)), kTtB));
  }
}

void sub_sat(Machine& m, Field dst, Field x, Field y, int scratch) {
  if (dst.len != x.len || dst.len != y.len) {
    throw std::invalid_argument("sub_sat: length mismatch");
  }
  set_b_const(m, false, scratch);  // borrow = 0
  for (int t = 0; t < dst.len; ++t) {
    Instr in;
    in.dest = dst.reg(t);
    in.f = kTtXor3;     // difference bit = F ^ D ^ B
    in.g = kTtBorrow;   // borrow out
    in.src_f = x.reg(t);
    in.src_d = y.reg(t);
    m.exec(in);
  }
  // Monus: if the borrow survived (x < y), clamp the result to zero.
  for (int t = 0; t < dst.len; ++t) {
    m.exec(with_g(binop(dst.reg(t), kTtAndFNotB, dst.reg(t), dst.reg(t)),
                  kTtB));
  }
}

void less_than(Machine& m, int flag, Field x, Field y, int scratch) {
  if (x.len != y.len) throw std::invalid_argument("less_than: length mismatch");
  set_b_const(m, false, scratch);  // borrow = 0
  for (int t = 0; t < x.len; ++t) {
    Instr in;
    in.dest = Reg::R(scratch);  // dest1 unused; borrow rides in B
    in.f = kTtZero;
    in.g = kTtBorrow;
    in.src_f = x.reg(t);
    in.src_d = y.reg(t);
    m.exec(in);
  }
  m.exec(mov(Reg::R(flag), Reg::MakeB()));
}

void equals_field(Machine& m, int flag, Field x, Field y, int scratch) {
  if (x.len != y.len) {
    throw std::invalid_argument("equals_field: length mismatch");
  }
  set_b_const(m, true, scratch);
  for (int t = 0; t < x.len; ++t) {
    Instr in;
    in.dest = Reg::R(scratch);
    in.f = kTtZero;
    in.g = kTtEqAcc;  // B &= (x[t] == y[t])
    in.src_f = x.reg(t);
    in.src_d = y.reg(t);
    m.exec(in);
  }
  m.exec(mov(Reg::R(flag), Reg::MakeB()));
}

void equals_const(Machine& m, int flag, Field x, std::uint64_t value,
                  int scratch) {
  set_b_const(m, true, scratch);
  for (int t = 0; t < x.len; ++t) {
    const bool bit = ((value >> t) & 1u) != 0;
    Instr in;
    in.dest = Reg::R(scratch);
    in.f = kTtZero;
    // B &= (x[t] == bit): F&B when the constant bit is 1, ~F&B otherwise.
    in.g = bit ? kTtAndFB : kTtAndBNotF;
    in.src_f = x.reg(t);
    m.exec(in);
  }
  m.exec(mov(Reg::R(flag), Reg::MakeB()));
}

void select(Machine& m, Field dst, int cond, Field x, Field y) {
  if (dst.len != x.len || dst.len != y.len) {
    throw std::invalid_argument("select: length mismatch");
  }
  set_b_from(m, cond);
  for (int t = 0; t < dst.len; ++t) {
    Instr in;
    in.dest = dst.reg(t);
    in.f = kTtMux;  // B ? D : F
    in.g = kTtB;    // keep the condition in B
    in.src_f = y.reg(t);
    in.src_d = x.reg(t);
    m.exec(in);
  }
}

void popcount_bits(Machine& m, Field dst, const std::vector<int>& bits) {
  set_const(m, dst, 0);
  for (int b : bits) {
    set_b_from(m, b);
    for (int t = 0; t < dst.len; ++t) {
      Instr in;
      in.dest = dst.reg(t);
      in.f = kTtXorFB;  // counter bit ^= carry
      in.g = kTtAndFB;  // carry &= old counter bit
      in.src_f = dst.reg(t);
      m.exec(in);
    }
  }
}

void or_bit_into(Machine& m, Field dst, int bit) {
  for (int t = 0; t < dst.len; ++t) {
    m.exec(binop(dst.reg(t), kTtOrFD, dst.reg(t), Reg::R(bit)));
  }
}

void min_field(Machine& m, Field dst, Field x, Field y, int scratch) {
  less_than(m, scratch, x, y, scratch);
  select(m, dst, scratch, x, y);  // x < y ? x : y
}

void max_field(Machine& m, Field dst, Field x, Field y, int scratch) {
  less_than(m, scratch, x, y, scratch);
  select(m, dst, scratch, y, x);  // x < y ? y : x
}

void abs_diff(Machine& m, Field dst, Field x, Field y, Field scratch,
              int tmp) {
  if (scratch.len != dst.len) {
    throw std::invalid_argument("abs_diff: scratch length mismatch");
  }
  // Monus saturates the wrong direction to zero, so the OR of both
  // directions is |x - y| — computed with one compare-free pass each.
  sub_sat(m, scratch, x, y, tmp);  // max(x-y, 0)
  sub_sat(m, dst, y, x, tmp);      // max(y-x, 0)
  for (int t = 0; t < dst.len; ++t) {
    m.exec(binop(dst.reg(t), kTtOrFD, dst.reg(t), scratch.reg(t)));
  }
}

void shift_left_field(Machine& m, Field v, int amount) {
  if (amount <= 0) return;
  for (int t = v.len - 1; t >= amount; --t) {
    m.exec(mov(v.reg(t), v.reg(t - amount)));
  }
  for (int t = 0; t < amount && t < v.len; ++t) {
    m.exec(setv(v.reg(t), false));
  }
}

void shift_right_field(Machine& m, Field v, int amount) {
  if (amount <= 0) return;
  for (int t = 0; t + amount < v.len; ++t) {
    m.exec(mov(v.reg(t), v.reg(t + amount)));
  }
  for (int t = std::max(0, v.len - amount); t < v.len; ++t) {
    m.exec(setv(v.reg(t), false));
  }
}

void multiply_sat(Machine& m, Field dst, Field x, Field y, Field scratch,
                  int ovf, int tmp) {
  if (dst.len != x.len || dst.len != y.len || scratch.len != x.len) {
    throw std::invalid_argument("multiply_sat: length mismatch");
  }
  const int p = x.len;
  set_const(m, dst, 0);
  m.exec(setv(Reg::R(ovf), false));
  for (int t = 0; t < p; ++t) {
    // scratch = (x << t) & y[t], plus overflow from the shifted-out bits.
    for (int u = 0; u < t; ++u) {
      m.exec(setv(scratch.reg(u), false));
    }
    for (int u = t; u < p; ++u) {
      m.exec(binop(scratch.reg(u), kTtAndFD, x.reg(u - t), y.reg(t)));
    }
    for (int u = p - t; u < p; ++u) {
      // x bit u would shift past the top: x[u] & y[t] is lost precision.
      m.exec(binop(Reg::R(tmp), kTtAndFD, x.reg(u), y.reg(t)));
      m.exec(binop(Reg::R(ovf), kTtOrFD, Reg::R(ovf), Reg::R(tmp)));
    }
    add_sat(m, dst, dst, scratch, tmp);
  }
  or_bit_into(m, dst, ovf);
}

void multiply_shift_sat(Machine& m, Field dst, Field x, Field y, int shift,
                        Field addend, int ovf, int tmp) {
  const int p = x.len;
  if (dst.len != p || y.len != p || addend.len != p) {
    throw std::invalid_argument("multiply_shift_sat: length mismatch");
  }
  set_const(m, dst, 0);
  m.exec(setv(Reg::R(ovf), false));
  for (int t = 0; t < p; ++t) {
    // Partial product (x << t) >> shift = x shifted by o = t - shift,
    // masked by y[t]; the bits a negative o pushes below bit 0 are the
    // bounded truncation, the bits a positive o pushes above bit p-1 feed
    // the sticky overflow flag.
    const int o = t - shift;
    for (int u = 0; u < p; ++u) {
      const int v = u - o;
      if (v >= 0 && v < p) {
        m.exec(binop(addend.reg(u), kTtAndFD, x.reg(v), y.reg(t)));
      } else {
        m.exec(setv(addend.reg(u), false));
      }
    }
    for (int v = p - o; v < p; ++v) {
      m.exec(binop(Reg::R(tmp), kTtAndFD, x.reg(v), y.reg(t)));
      m.exec(binop(Reg::R(ovf), kTtOrFD, Reg::R(ovf), Reg::R(tmp)));
    }
    add_sat(m, dst, dst, addend, tmp);
  }
  or_bit_into(m, dst, ovf);
}

std::uint64_t field_inf(int len) {
  return len >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << len) - 1);
}

std::uint64_t sat_add_host(std::uint64_t a, std::uint64_t b, int len) {
  const std::uint64_t inf = field_inf(len);
  const std::uint64_t s = a + b;
  return (s > inf || s < a) ? inf : s;
}

std::uint64_t sat_mulshift_host(std::uint64_t a, std::uint64_t b, int shift,
                                int len) {
  const std::uint64_t inf = field_inf(len);
  std::uint64_t acc = 0;
  bool ovf = false;
  for (int t = 0; t < len; ++t) {
    if (!((b >> t) & 1u)) continue;
    const int o = t - shift;
    std::uint64_t part;
    if (o >= 0) {
      // Overflow if any of a's top o bits are set (they leave the window).
      if (o > 0 && (a >> (len - o)) != 0) ovf = true;
      part = (a << o) & inf;
    } else {
      part = a >> (-o);
    }
    acc = sat_add_host(acc, part, len);
  }
  return ovf ? inf : acc;
}

std::uint64_t sat_mul_host(std::uint64_t a, std::uint64_t b, int len) {
  const std::uint64_t inf = field_inf(len);
  if (a == 0 || b == 0) return 0;
  if (a > inf / b) return inf;
  const std::uint64_t p = a * b;
  return p > inf ? inf : p;
}

}  // namespace ttp::bvm
