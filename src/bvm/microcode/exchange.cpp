#include "bvm/microcode/exchange.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace ttp::bvm {

namespace {

std::uint64_t positions_with_bit(const BvmConfig& cfg, int b) {
  std::uint64_t s = 0;
  for (int p = 0; p < cfg.Q(); ++p) {
    if ((p >> b) & 1) s |= std::uint64_t{1} << p;
  }
  return s;
}

}  // namespace

void dim_exchange_read(Machine& m, int dim, Field src, Field dst, int tmp) {
  const BvmConfig& cfg = m.config();
  if (dim < 0 || dim >= cfg.dims()) {
    throw std::invalid_argument("dim_exchange_read: dim out of range");
  }
  if (src.len != dst.len) {
    throw std::invalid_argument("dim_exchange_read: length mismatch");
  }

  TTP_TRACE_SPAN(x_span, "bvm.exchange.dim", m.instr_counter());
  x_span.attr("dim", dim);
  x_span.attr("bits", src.len);
  TTP_METRIC_ADD("bvm.dim_exchanges", 1);

  if (dim == 0 && cfg.r >= 1) {
    // The XS link IS the dimension-0 exchange: one instruction per bit.
    for (int t = 0; t < src.len; ++t) {
      m.exec(mov(dst.reg(t), src.reg(t), Nbr::XS));
    }
    return;
  }
  if (dim < cfg.r) {
    // In-cycle exchange at distance hop = 2^dim. For each bit: ship a copy
    // `hop` successor-hops (arrives at PEs with the position bit clear) and
    // a second copy `hop` predecessor-hops (for PEs with the bit set).
    const int hop = 1 << dim;
    const std::uint64_t hi_set = positions_with_bit(cfg, dim);
    for (int t = 0; t < src.len; ++t) {
      m.exec(mov(dst.reg(t), src.reg(t)));
      for (int s = 0; s < hop; ++s) {
        m.exec(mov(dst.reg(t), dst.reg(t), Nbr::S));
      }
      m.exec(mov(Reg::R(tmp), src.reg(t)));
      for (int s = 0; s < hop; ++s) {
        m.exec(mov(Reg::R(tmp), Reg::R(tmp), Nbr::P));
      }
      Instr take = mov(dst.reg(t), Reg::R(tmp));
      take.act = Act::If;
      take.act_set = hi_set;
      m.exec(take);
    }
  } else {
    // Lateral exchange across cycle bit q: rotate each bit one full lap;
    // a datum arriving at position q swaps with its lateral partner (which
    // carries the datum of the same home position in the partner cycle).
    const int q = dim - cfg.r;
    const int Q = cfg.Q();
    if (q >= cfg.h) {
      throw std::invalid_argument("dim_exchange_read: no lateral link");
    }
    for (int t = 0; t < src.len; ++t) {
      m.exec(mov(dst.reg(t), src.reg(t)));
      for (int s = 0; s < Q; ++s) {
        m.exec(mov(dst.reg(t), dst.reg(t), Nbr::S));
        Instr swap = mov(dst.reg(t), dst.reg(t), Nbr::L);
        swap.act = Act::If;
        swap.act_set = std::uint64_t{1} << q;
        m.exec(swap);
      }
    }
  }
}

void lateral_wave_ascend(Machine& m, int q_lo, int q_hi,
                         const std::vector<WaveField>& fields) {
  const BvmConfig& cfg = m.config();
  const int Q = cfg.Q();
  if (q_lo < 0 || q_hi > cfg.h || q_lo > q_hi) {
    throw std::invalid_argument("lateral_wave_ascend: bad dim range");
  }
  if (q_lo == q_hi) return;

  TTP_TRACE_SPAN(wave_span, "bvm.wave.ascend", m.instr_counter());
  wave_span.attr("q_lo", q_lo);
  wave_span.attr("q_hi", q_hi);
  TTP_METRIC_ADD("bvm.lateral_waves", 1);

  // Rows that physically rotate with the data: the payload bits and the
  // in-range adopt rows. We rotate with P-reads so data moves toward
  // HIGHER positions: datum of home j sits at (j + t) mod Q after t steps
  // and executes dim q at t = Q - j + q — consecutive dims on consecutive
  // steps, ascending, pairs in lockstep (the Preparata-Vuillemin wave).
  std::vector<Reg> rotating;
  for (const WaveField& f : fields) {
    for (int t = 0; t < f.data.len; ++t) rotating.push_back(f.data.reg(t));
    for (int q = q_lo; q < q_hi; ++q) {
      rotating.push_back(Reg::R(f.adopt_base + q));
    }
  }

  const int T = Q + q_hi;  // t = 1 .. Q + q_hi - 1
  for (int t = 1; t < T; ++t) {
    for (Reg r : rotating) m.exec(mov(r, r, Nbr::P));

    // Which positions exchange this step?
    std::uint64_t active = 0;
    for (int q = q_lo; q < q_hi; ++q) {
      const int j = ((q - t) % Q + Q) % Q;  // home of datum now at q
      if (t == Q - j + q) active |= std::uint64_t{1} << q;
    }
    if (active == 0) continue;

    for (const WaveField& f : fields) {
      // Gather each active position's adopt bit into the shared CUR row
      // (one gated copy per active position)...
      for (int q = q_lo; q < q_hi; ++q) {
        if (!((active >> q) & 1u)) continue;
        Instr sel = mov(Reg::R(f.cur), Reg::R(f.adopt_base + q));
        sel.act = Act::If;
        sel.act_set = std::uint64_t{1} << q;
        m.exec(sel);
      }
      // ...then ONE machine-wide conditional adoption per data bit: at
      // every active position the L read crosses that position's own
      // lateral dimension, and B carries the per-PE adopt decision.
      set_b_from(m, f.cur);
      for (int t2 = 0; t2 < f.data.len; ++t2) {
        Instr in;
        in.dest = f.data.reg(t2);
        in.f = kTtMux;
        in.g = kTtB;
        in.src_f = f.data.reg(t2);
        in.src_d = f.data.reg(t2);
        in.d_nbr = Nbr::L;
        in.act = Act::If;
        in.act_set = active;
        m.exec(in);
      }
    }
  }
  // Finish the lap so every datum is home again.
  for (int t = T - 1; t % Q != 0; ++t) {
    for (Reg r : rotating) m.exec(mov(r, r, Nbr::P));
  }
}

void lateral_wave_descend(Machine& m, int q_lo, int q_hi,
                          const std::vector<WaveField>& fields) {
  const BvmConfig& cfg = m.config();
  const int Q = cfg.Q();
  if (q_lo < 0 || q_hi > cfg.h || q_lo > q_hi) {
    throw std::invalid_argument("lateral_wave_descend: bad dim range");
  }
  if (q_lo == q_hi) return;

  TTP_TRACE_SPAN(wave_span, "bvm.wave.descend", m.instr_counter());
  wave_span.attr("q_lo", q_lo);
  wave_span.attr("q_hi", q_hi);
  TTP_METRIC_ADD("bvm.lateral_waves", 1);

  std::vector<Reg> rotating;
  for (const WaveField& f : fields) {
    for (int t = 0; t < f.data.len; ++t) rotating.push_back(f.data.reg(t));
    for (int q = q_lo; q < q_hi; ++q) {
      rotating.push_back(Reg::R(f.adopt_base + q));
    }
  }

  // S-reads move data toward LOWER positions: datum of home j sits at
  // (j - t) mod Q after t steps and executes dim q at t = Q + j - q —
  // consecutive, descending, lockstep (mirror of the ascend wave and of
  // CccMachine::high_dims_pipelined_descend).
  const int T = 2 * Q;  // t = 1 .. 2Q-1
  for (int t = 1; t < T; ++t) {
    for (Reg r : rotating) m.exec(mov(r, r, Nbr::S));

    std::uint64_t active = 0;
    for (int q = q_hi - 1; q >= q_lo; --q) {
      const int j = (q + t) % Q;  // home of datum now at position q
      if (t == Q + j - q) active |= std::uint64_t{1} << q;
    }
    if (active == 0) continue;

    for (const WaveField& f : fields) {
      for (int q = q_lo; q < q_hi; ++q) {
        if (!((active >> q) & 1u)) continue;
        Instr sel = mov(Reg::R(f.cur), Reg::R(f.adopt_base + q));
        sel.act = Act::If;
        sel.act_set = std::uint64_t{1} << q;
        m.exec(sel);
      }
      set_b_from(m, f.cur);
      for (int t2 = 0; t2 < f.data.len; ++t2) {
        Instr in;
        in.dest = f.data.reg(t2);
        in.f = kTtMux;
        in.g = kTtB;
        in.src_f = f.data.reg(t2);
        in.src_d = f.data.reg(t2);
        in.d_nbr = Nbr::L;
        in.act = Act::If;
        in.act_set = active;
        m.exec(in);
      }
    }
  }
  // 2Q rotations total: data back home.
  for (Reg r : rotating) m.exec(mov(r, r, Nbr::S));
}

std::uint64_t lateral_wave_cost(const BvmConfig& cfg, int q_lo, int q_hi,
                                const std::vector<WaveField>& fields) {
  const int Q = cfg.Q();
  const int span = q_hi - q_lo;
  if (span <= 0) return 0;
  std::uint64_t rows = 0, bits = 0;
  for (const WaveField& f : fields) {
    rows += static_cast<std::uint64_t>(f.data.len + span);
    bits += static_cast<std::uint64_t>(f.data.len);
  }
  const int T = Q + q_hi;
  std::uint64_t rotations = static_cast<std::uint64_t>(T - 1);
  rotations += static_cast<std::uint64_t>((Q - (T - 1) % Q) % Q);
  // Per (dim, home) pair one CUR-select fires: span*Q selects per field.
  const std::uint64_t selects = static_cast<std::uint64_t>(span) *
                                static_cast<std::uint64_t>(Q) *
                                fields.size();
  // Steps with a nonempty active set: t in [q_lo+1, Q+q_hi-1].
  const std::uint64_t busy_steps =
      static_cast<std::uint64_t>(Q + q_hi - 1 - q_lo);
  return rotations * rows + selects + busy_steps * (bits + fields.size());
}

std::uint64_t dim_exchange_cost(const BvmConfig& cfg, int dim, int len) {
  if (dim == 0 && cfg.r >= 1) {
    return static_cast<std::uint64_t>(len);  // one XS read per bit
  }
  if (dim < cfg.r) {
    return static_cast<std::uint64_t>(len) *
           (2u * (std::uint64_t{1} << dim) + 3u);
  }
  return static_cast<std::uint64_t>(len) *
         (2u * static_cast<std::uint64_t>(cfg.Q()) + 1u);
}

}  // namespace ttp::bvm
