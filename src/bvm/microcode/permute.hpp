// Arbitrary permutations on the BVM via precalculated Benes control bits —
// the §2 claim verbatim: "since the BVM communication network resembles the
// Benes permutation network, it can accomplish any permutation within
// O(log n) time if the control bits are precalculated".
//
// The host computes the 2m-1 switch-setting rows (net/benes.hpp) and DMA-
// loads them; the machine then runs 2m-1 conditional-exchange stages, each
// one dimension exchange plus a B-mux (a swap is "both partners adopt").
#pragma once

#include "bvm/microcode/arith.hpp"
#include "net/benes.hpp"

namespace ttp::bvm {

/// Loads the program's control rows at R[ctrl_base + s] (host DMA — the
/// "precalculated control bits" mode).
void load_benes_controls(Machine& m, const net::BenesProgram& prog,
                         int ctrl_base);

/// Permutes the p-bit per-PE values in `v`: afterwards PE perm[src] holds
/// the value PE src had. `x` is a staging field of the same length; `tmp`
/// one scratch row. Costs (2m-1) · (one dim exchange + p+1 mux).
void benes_permute(Machine& m, const net::BenesProgram& prog, int ctrl_base,
                   Field v, Field x, int tmp);

/// The pipelined realization: the ascending half's lateral stages share one
/// forward wave (their control rows double as the wave's adopt rows) and
/// the descending half's share one backward wave (controls copied into
/// `adopt_scratch_base + q`, one row per lateral dim, because the wave
/// needs them in ascending-q order). This is the machine-speed version of
/// the O(log n) claim: lateral cost O((Q + m)·p) instead of O(m·Q·p).
/// `cur` is the wave's consolidation row.
void benes_permute_pipelined(Machine& m, const net::BenesProgram& prog,
                             int ctrl_base, Field v, Field x,
                             int adopt_scratch_base, int cur, int tmp);

}  // namespace ttp::bvm
