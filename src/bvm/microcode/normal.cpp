#include "bvm/microcode/normal.hpp"

#include "bvm/microcode/exchange.hpp"

namespace ttp::bvm {

void bitonic_sort(Machine& m, Field v, int pid_base, const NormalScratch& ws,
                  const std::vector<Field>& payload,
                  const std::vector<Field>& payload_scratch) {
  if (payload.size() != payload_scratch.size()) {
    throw std::invalid_argument("bitonic_sort: payload scratch mismatch");
  }
  const int dims = m.config().dims();
  m.exec(setv(Reg::R(ws.zero), false));
  for (int s = 1; s <= dims; ++s) {
    // Direction bit: address bit s (constant 0 on the last stage, making
    // the final merge fully ascending).
    const Reg dir = s < dims ? Reg::R(pid_base + s) : Reg::R(ws.zero);
    for (int d = s - 1; d >= 0; --d) {
      dim_exchange_read(m, d, v, ws.x, ws.tmp);
      less_than(m, ws.lt, ws.x, v, ws.tmp);  // lt = partner < mine
      // Adopt the partner's value when (partner<mine) ^ (I am the high
      // side) ^ (descending block): one XOR3 instruction, dir riding in B.
      set_b_from(m, dir.kind == Reg::Kind::R ? dir.index : ws.zero);
      {
        Instr in;
        in.dest = Reg::R(ws.take);
        in.f = kTtXor3;
        in.g = kTtB;
        in.src_f = Reg::R(ws.lt);
        in.src_d = Reg::R(pid_base + d);
        m.exec(in);
      }
      // Payloads ride with their keys: same exchange, same take flag.
      for (std::size_t i = 0; i < payload.size(); ++i) {
        dim_exchange_read(m, d, payload[i], payload_scratch[i], ws.tmp);
        select(m, payload[i], ws.take, payload_scratch[i], payload[i]);
      }
      select(m, v, ws.take, ws.x, v);
    }
  }
}

void concentrate(Machine& m, int flag, Field value, Field rank, int pid_base,
                 const NormalScratch& ws, const ConcentrateScratch& cs) {
  if (rank.len <= m.config().dims()) {
    throw std::invalid_argument("concentrate: rank field too narrow");
  }
  if (cs.key.len != rank.len || cs.rank_x.len != rank.len ||
      ws.x.len != rank.len || cs.value_x.len != value.len) {
    throw std::invalid_argument("concentrate: scratch length mismatch");
  }

  // rank = exclusive prefix count of flags = destination of each flagged
  // record. Inclusive prefix via the scan, then decrement where flagged.
  set_const(m, cs.key, 0);
  m.exec(mov(cs.key.reg(0), Reg::R(flag)));  // key temporarily holds 0/1
  prefix_sum(m, cs.key, rank, pid_base, ws);
  set_b_from(m, flag);  // borrow = flag: decrement-by-flag ripple
  for (int t = 0; t < rank.len; ++t) {
    Instr in;
    in.dest = rank.reg(t);
    in.f = kTtXorFB;     // bit ^= borrow
    in.g = kTtAndBNotF;  // borrow &= ~old bit
    in.src_f = rank.reg(t);
    m.exec(in);
  }

  // Sort key: flagged records by rank, unflagged behind them (all-ones).
  set_b_from(m, flag);
  constexpr std::uint8_t kTtKey = 0xCF;  // B ? D : 1
  for (int t = 0; t < cs.key.len; ++t) {
    Instr in;
    in.dest = cs.key.reg(t);
    in.f = kTtKey;
    in.g = kTtB;
    in.src_d = rank.reg(t);
    m.exec(in);
  }

  // Route: sort by key, carrying value, rank and the flag bit itself.
  bitonic_sort(m, cs.key, pid_base, ws, {value, rank, Field{flag, 1}},
               {cs.value_x, cs.rank_x, Field{cs.flag_x, 1}});
}

void prefix_sum(Machine& m, Field v, Field prefix, int pid_base,
                const NormalScratch& ws) {
  copy_field(m, prefix, v);  // prefix := own value; v becomes block totals
  const int dims = m.config().dims();
  for (int d = 0; d < dims; ++d) {
    dim_exchange_read(m, d, v, ws.x, ws.tmp);
    // Upper half of each block folds the lower half's total into its
    // prefix: prefix += x masked by PID[d].
    for (int t = 0; t < v.len; ++t) {
      m.exec(binop(ws.x.reg(t), kTtAndFD, ws.x.reg(t), Reg::R(pid_base + d)));
    }
    add_sat(m, prefix, prefix, ws.x, ws.tmp);
    // Either way the block total doubles up: v += partner total. Re-fetch
    // the unmasked partner total (the mask above destroyed half of it).
    dim_exchange_read(m, d, v, ws.x, ws.tmp);
    add_sat(m, v, v, ws.x, ws.tmp);
  }
}

}  // namespace ttp::bvm
