#include "bvm/microcode/propagate.hpp"

#include "bvm/microcode/exchange.hpp"

namespace ttp::bvm {

namespace {

// value |= partner_value & take: f(F=partner_bit, D=own_bit, B=take)
// = D | (F & B).
constexpr std::uint8_t kTtOrMasked = 0xEC;

void combine_masked(Machine& m, Field value, Field partner, int take) {
  set_b_from(m, take);
  for (int t = 0; t < value.len; ++t) {
    Instr in;
    in.dest = value.reg(t);
    in.f = kTtOrMasked;
    in.g = kTtB;
    in.src_f = partner.reg(t);
    in.src_d = value.reg(t);
    m.exec(in);
  }
}

}  // namespace

void propagation1_round(Machine& m, const std::vector<int>& dims, int sender,
                        int recv, Field value, Field scratch, int pid_base,
                        int tmp_flag, int tmp) {
  const Field sender_f{sender, 1};
  const Field tmp_flag_f{tmp_flag, 1};
  for (int d : dims) {
    // take = partner_sender & own-address-bit-d (the 1-END condition): a
    // receiver differs from its sender only in dimension d, where it has
    // the 1. Senders never receive (their partner would need equal
    // popcount), so reading this round's sender set is race-free.
    dim_exchange_read(m, d, sender_f, tmp_flag_f, tmp);
    m.exec(binop(Reg::R(tmp_flag), kTtAndFD, Reg::R(tmp_flag),
                 Reg::R(pid_base + d)));
    if (value.len > 0) {
      dim_exchange_read(m, d, value, scratch, tmp);
      combine_masked(m, value, scratch, tmp_flag);
    }
    m.exec(binop(Reg::R(recv), kTtOrFD, Reg::R(recv), Reg::R(tmp_flag)));
  }
}

void propagation1_promote(Machine& m, int sender, int recv) {
  m.exec(mov(Reg::R(sender), Reg::R(recv)));
  m.exec(setv(Reg::R(recv), false));
}

void propagation2(Machine& m, const std::vector<int>& dims, int sender,
                  Field value, Field scratch, int pid_base, int tmp_flag,
                  int tmp) {
  const Field sender_f{sender, 1};
  const Field tmp_flag_f{tmp_flag, 1};
  for (int d : dims) {
    dim_exchange_read(m, d, sender_f, tmp_flag_f, tmp);
    m.exec(binop(Reg::R(tmp_flag), kTtAndFD, Reg::R(tmp_flag),
                 Reg::R(pid_base + d)));
    if (value.len > 0) {
      dim_exchange_read(m, d, value, scratch, tmp);
      combine_masked(m, value, scratch, tmp_flag);
    }
    // Receivers become legal senders immediately (second kind).
    m.exec(binop(Reg::R(sender), kTtOrFD, Reg::R(sender), Reg::R(tmp_flag)));
  }
}

}  // namespace ttp::bvm
