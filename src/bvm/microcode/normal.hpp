// Normal algorithms as bit-serial BVM microcode: Batcher's bitonic sort and
// an inclusive prefix sum over p-bit per-PE values. Beyond demonstrating
// that the TT kernel's primitives (dimension exchange, compare, select,
// add) compose into the classic ASCEND/DESCEND repertoire, these are the
// building blocks BVM system software would ship ([15],[16]).
#pragma once

#include <vector>

#include "bvm/microcode/arith.hpp"

namespace ttp::bvm {

/// Workspace for the normal algorithms: one scratch field of v.len plus
/// four flag registers.
struct NormalScratch {
  Field x;       ///< partner-value staging, len == v.len
  int lt = 0;    ///< comparison flag
  int take = 0;  ///< adoption flag
  int zero = 0;  ///< constant-0 row (for the final sort stage's direction)
  int tmp = 0;   ///< low-level scratch
};

/// Sorts the per-PE values in `v` ascending by PE address via bitonic
/// stages. `pid_base` must hold the processor-ID. O(dims^2) dimension
/// exchanges of p bits each. `payload` fields (with matching scratch
/// fields in `payload_scratch`) travel with their keys.
void bitonic_sort(Machine& m, Field v, int pid_base, const NormalScratch& ws,
                  const std::vector<Field>& payload = {},
                  const std::vector<Field>& payload_scratch = {});

/// Scratch for concentrate(): a sort-key field and staging for each
/// payload. key.len and rank_x.len must equal the rank field's length
/// (and ws.x must too, since the key is what the sort compares).
struct ConcentrateScratch {
  Field key;
  Field rank_x;
  Field value_x;
  int flag_x = 0;
};

/// Nassimi-Sahni data concentration (the paper's ref. [9]): routes the
/// records whose `flag` bit is set to PEs 0..m-1 (m = number of flags),
/// preserving PE order; unflagged records end up behind them. On return
/// `rank` holds, at the destination PEs, the record's 0-based rank, and
/// `flag` has moved with its record. Built from prefix_sum + the
/// payload-carrying bitonic sort. rank.len must exceed the machine's dims.
void concentrate(Machine& m, int flag, Field value, Field rank, int pid_base,
                 const NormalScratch& ws, const ConcentrateScratch& cs);

/// prefix := inclusive prefix sum of v over PE order; v itself ends holding
/// the machine-wide total (saturating arithmetic, INF absorbing).
void prefix_sum(Machine& m, Field v, Field prefix, int pid_base,
                const NormalScratch& ws);

}  // namespace ttp::bvm
