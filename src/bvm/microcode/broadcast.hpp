// BVM realization of the paper's §4.3 Broadcasting() — an ASCEND sweep in
// which a SENDER control bit travels with the data: "first an arbitrary
// register SENDER is chosen, set to 0 by one instruction, then a 1 is input
// to the bit belonging to PE[0]; afterwards this bit is broadcast in the
// instruction PE[j] = PE[j#i] and identifies the sender".
#pragma once

#include "bvm/microcode/arith.hpp"

namespace ttp::bvm {

/// Broadcasts `value` (a k-bit field) from the PEs whose SENDER bit is set
/// to every PE, ASCEND over all dimensions. On return every PE's SENDER bit
/// is 1 and every PE holds the value. Requires the initial sender set to be
/// a lower set in each dimension (a single PE, or a subcube), the paper's
/// usage. Needs a scratch field of the same length plus two scratch regs.
void broadcast_field(Machine& m, Field value, int sender, Field scratch,
                     int tmp_flag, int tmp);

/// Convenience: SENDER = (PE == 0) via the I-chain, then broadcast.
/// This is the paper's exact setup (k·O(m) instructions for k bits).
void broadcast_from_pe0(Machine& m, Field value, int sender, Field scratch,
                        int tmp_flag, int tmp);

}  // namespace ttp::bvm
