// Layer control for the TT program: per DP layer j the machine needs the
// per-PE predicate #S == j ("P(S,i)" in the paper's §6 algorithm).
//
// Two realizations, compared in bench E14:
//  * kPropagation — the paper's §7 choice: "the predicate P(S,i,j) can be
//    implemented by using the propagation of the first kind": group flags
//    walk up one popcount level per layer; no PE ever computes its
//    popcount. Costs k one-bit dimension exchanges per layer.
//  * kPopcount — a one-time bit-serial popcount of the S-bits of the
//    processor-ID, then an equals-compare per layer.
#pragma once

#include <vector>

#include "bvm/microcode/arith.hpp"

namespace ttp::bvm {

enum class LayerMode { kPropagation, kPopcount };

class LayerControl {
 public:
  /// `set_dims`: the hypercube dimensions holding the set S (ascending).
  /// `pid_base`: processor-ID block. Registers [work_base, work_base+len)
  /// are claimed for internal state; len is reported by workspace_size().
  LayerControl(LayerMode mode, std::vector<int> set_dims, int pid_base,
               int work_base);

  static int workspace_size(int k);

  /// Initializes for layer 0 (flag = "S == empty"). Call once.
  void init(Machine& m);

  /// Advances to the next layer and leaves flag() = (#S == j) where j is
  /// the number of advance() calls so far.
  void advance(Machine& m);

  /// Register holding the current layer's enable flag.
  int flag() const { return flag_; }

 private:
  LayerMode mode_;
  std::vector<int> set_dims_;
  int pid_base_;
  int flag_;
  int recv_;
  int tmp_flag_;
  int tmp_;
  Field count_;  // popcount mode
  int layer_ = 0;
};

}  // namespace ttp::bvm
