// Cycle-ID and processor-ID generation (paper §4.1-§4.2) — "the most basic
// modules, used in almost all BVM algorithms".
//
// Specifications (the paper's listings are OCR-damaged; we implement from
// the stated spec and validate against the paper's Fig. 3 / Fig. 4):
//   cycle-ID:     PE (i, j) holds bit j of its cycle number i
//                 (equivalently: 1 iff the PE is at the 1-end of its
//                 lateral link).
//   processor-ID: every PE holds its full address, one register row per
//                 address bit (low r rows: in-cycle position; high h rows:
//                 cycle number, replicated per PE).
//
// Generation is on-machine ("generating control bits on the fly saves the
// precalculation time and the runtime storage"): position bits come free
// from activation sets; cycle-number bits are grown by an ASCEND broadcast
// from cycle 0 across the lateral dimensions, ORing 1-bits into all-zero
// receivers so no enable masking is needed. PE (0,0) is singled out through
// the I-chain, the only architectural source of asymmetry.
#pragma once

#include <vector>

#include "bvm/machine.hpp"

namespace ttp::bvm {

/// R[dest] = 1 exactly at PE 0. Clobbers A; consumes one input bit slot.
void mark_pe0(Machine& m, int dest);

/// R[base+b] = bit b of the PE's in-cycle position, b in [0, r).
void gen_position_id(Machine& m, int base);

/// R[base+t] = bit t of the PE's cycle number, t in [0, h), replicated at
/// every PE of the cycle. Needs two scratch registers. Clobbers A and B.
void gen_cycle_number(Machine& m, int base, int flag, int tmp);

/// R[dest] = the paper's cycle-ID bit (bit `pos` of the cycle number at the
/// PE sitting at position `pos`), derived from a generated cycle number.
void gen_cycle_id(Machine& m, int dest, int cnum_base);

/// Full processor-ID at R[base..base+dims-1] (low r rows: position, high h
/// rows: cycle number). Needs two scratch registers above the ID block.
void gen_processor_id(Machine& m, int base, int flag, int tmp);

/// Host-computed expected patterns for validation and for DMA preloading
/// ("these control bits can be precalculated").
std::vector<bool> ref_pe0(const BvmConfig& cfg);
std::vector<bool> ref_position_bit(const BvmConfig& cfg, int b);
std::vector<bool> ref_cycle_number_bit(const BvmConfig& cfg, int t);
std::vector<bool> ref_cycle_id(const BvmConfig& cfg);
std::vector<bool> ref_address_bit(const BvmConfig& cfg, int t);

/// DMA fast path: writes the processor-ID block without instructions.
void load_processor_id_host(Machine& m, int base);

}  // namespace ttp::bvm
