#include "bvm/microcode/permute.hpp"

#include <algorithm>
#include <stdexcept>

#include "bvm/microcode/exchange.hpp"

namespace ttp::bvm {

void load_benes_controls(Machine& m, const net::BenesProgram& prog,
                         int ctrl_base) {
  if (prog.dims != m.config().dims()) {
    throw std::invalid_argument("load_benes_controls: size mismatch");
  }
  for (int s = 0; s < prog.num_stages(); ++s) {
    BitVec& row = m.row(Reg::R(ctrl_base + s));
    for (std::size_t pe = 0; pe < m.num_pes(); ++pe) {
      row.set(pe, prog.stages[static_cast<std::size_t>(s)][pe]);
    }
  }
}

void benes_permute(Machine& m, const net::BenesProgram& prog, int ctrl_base,
                   Field v, Field x, int tmp) {
  if (prog.dims != m.config().dims()) {
    throw std::invalid_argument("benes_permute: size mismatch");
  }
  for (int s = 0; s < prog.num_stages(); ++s) {
    const int d = prog.dim_of(s);
    dim_exchange_read(m, d, v, x, tmp);
    // Conditional swap: both switch ports carry the same control bit, so
    // "adopt the partner's value where the bit is set" swaps the pair.
    select(m, v, ctrl_base + s, x, v);
  }
}

void benes_permute_pipelined(Machine& m, const net::BenesProgram& prog,
                             int ctrl_base, Field v, Field x,
                             int adopt_scratch_base, int cur, int tmp) {
  if (prog.dims != m.config().dims()) {
    throw std::invalid_argument("benes_permute_pipelined: size mismatch");
  }
  const int dims = prog.dims;
  const int r = m.config().r;

  // --- Ascending half: stages 0..dims-1, stage s = dim s. ---
  for (int s = 0; s < std::min(r, dims); ++s) {
    dim_exchange_read(m, s, v, x, tmp);
    select(m, v, ctrl_base + s, x, v);
  }
  if (dims > r) {
    // Lateral dims r..dims-1: controls are the contiguous rows
    // ctrl_base+r.., already in wave order (adopt row for q = ctrl of
    // stage r+q).
    lateral_wave_ascend(m, 0, dims - r,
                        {WaveField{v, ctrl_base + r, cur}});
  }

  // --- Descending half: stages dims..2*dims-2, stage s = dim 2*dims-2-s.
  if (dims - 1 > r) {
    // Lateral dims dims-2..r: copy their controls into ascending-q order
    // (adopt row q <- ctrl of stage 2*dims-2-(r+q)).
    for (int q = 0; q < dims - 1 - r; ++q) {
      m.exec(mov(Reg::R(adopt_scratch_base + q),
                 Reg::R(ctrl_base + 2 * dims - 2 - (r + q))));
    }
    lateral_wave_descend(m, 0, dims - 1 - r,
                         {WaveField{v, adopt_scratch_base, cur}});
  }
  for (int d = std::min(r, dims - 1) - 1; d >= 0; --d) {
    const int s = 2 * dims - 2 - d;
    dim_exchange_read(m, d, v, x, tmp);
    select(m, v, ctrl_base + s, x, v);
  }
}

}  // namespace ttp::bvm
