#include "bvm/microcode/ids.hpp"

#include "bvm/microcode/arith.hpp"

namespace ttp::bvm {

namespace {

// Activation set {p in [0,Q) : bit b of p is 1}.
std::uint64_t positions_with_bit(const BvmConfig& cfg, int b) {
  std::uint64_t s = 0;
  for (int p = 0; p < cfg.Q(); ++p) {
    if ((p >> b) & 1) s |= std::uint64_t{1} << p;
  }
  return s;
}

// dst |= dst.P, repeated Q-1 times: OR-spreads every 1-bit to its whole
// cycle (works in one sweep direction because the cycle wraps).
void or_spread_in_cycle(Machine& m, Reg reg) {
  const int Q = m.config().Q();
  for (int s = 0; s + 1 < Q; ++s) {
    m.exec(binop(reg, kTtOrFD, reg, reg, Nbr::P));
  }
}

}  // namespace

void mark_pe0(Machine& m, int dest) {
  // A = 1 everywhere; shift the I-chain once with a 0 on the input pin:
  // every PE now reads its predecessor's old 1 except PE 0, which reads the
  // pin. dest = ~A isolates PE 0.
  m.exec(setv(Reg::MakeA(), true));
  m.push_input(false);
  m.exec(mov(Reg::MakeA(), Reg::MakeA(), Nbr::I));
  m.exec(binop(dest < 0 ? Reg::MakeA() : Reg::R(dest), kTtNotD, Reg::MakeA(),
               Reg::MakeA()));
}

void gen_position_id(Machine& m, int base) {
  const BvmConfig& cfg = m.config();
  for (int b = 0; b < cfg.r; ++b) {
    Instr one = setv(Reg::R(base + b), true);
    one.act = Act::If;
    one.act_set = positions_with_bit(cfg, b);
    Instr zero = setv(Reg::R(base + b), false);
    zero.act = Act::Nf;
    zero.act_set = one.act_set;
    m.exec(one);
    m.exec(zero);
  }
}

void gen_cycle_number(Machine& m, int base, int flag, int tmp) {
  const BvmConfig& cfg = m.config();
  const int Q = cfg.Q();
  (void)Q;

  // flag = "my cycle already knows its number", initially cycle 0 only:
  // isolate PE (0,0), then OR-spread within the cycle.
  mark_pe0(m, flag);
  or_spread_in_cycle(m, Reg::R(flag));

  for (int t = 0; t < cfg.h; ++t) {
    m.exec(setv(Reg::R(base + t), false));
  }

  // ASCEND broadcast over the lateral dimensions. Before dimension d the
  // flagged cycles are exactly {c : c < 2^d}, so a lateral pair at position
  // d is never flagged on both sides; receivers are all-zero, so 1-bits can
  // be ORed in without enable masking.
  for (int d = 0; d < cfg.h; ++d) {
    // tmp = (partner cycle is flagged) & ~flag, at position d only.
    m.exec(setv(Reg::R(tmp), false));
    {
      Instr in = binop(Reg::R(tmp), kTtAndDNotF, Reg::R(flag), Reg::R(flag),
                       Nbr::L);
      in.act = Act::If;
      in.act_set = std::uint64_t{1} << d;
      m.exec(in);
    }
    or_spread_in_cycle(m, Reg::R(tmp));  // tmp = "I am a receiving cycle"

    // Receivers adopt the sender's low bits t < d. The sender's bit is
    // replicated around its cycle, so reading it across the lateral at
    // position d and OR-spreading suffices: a receiver reads the sender's
    // bit, a sender reads its (all-zero) receiver's bit, and unflagged-
    // unflagged pairs read zero — no enable masking needed.
    for (int t = 0; t < d; ++t) {
      m.exec(setv(Reg::MakeA(), false));
      {
        Instr in = mov(Reg::MakeA(), Reg::R(base + t), Nbr::L);
        in.act = Act::If;
        in.act_set = std::uint64_t{1} << d;
        m.exec(in);
      }
      // Only receivers may adopt the bit (a flagged cycle's own lateral
      // read at position d would otherwise pollute it on later dims where
      // its partner is flagged too... which cannot happen in ASCEND order,
      // but gating by tmp keeps the invariant local and checkable).
      m.exec(binop(Reg::MakeA(), kTtAndFD, Reg::MakeA(), Reg::R(tmp)));
      or_spread_in_cycle(m, Reg::MakeA());
      m.exec(binop(Reg::R(base + t), kTtOrFD, Reg::R(base + t), Reg::MakeA()));
    }

    // Receivers set their new bit d and become flagged.
    m.exec(binop(Reg::R(base + d), kTtOrFD, Reg::R(base + d), Reg::R(tmp)));
    m.exec(binop(Reg::R(flag), kTtOrFD, Reg::R(flag), Reg::R(tmp)));
  }
}

void gen_cycle_id(Machine& m, int dest, int cnum_base) {
  const BvmConfig& cfg = m.config();
  m.exec(setv(Reg::R(dest), false));
  for (int p = 0; p < cfg.h; ++p) {
    Instr in = mov(Reg::R(dest), Reg::R(cnum_base + p));
    in.act = Act::If;
    in.act_set = std::uint64_t{1} << p;
    m.exec(in);
  }
}

void gen_processor_id(Machine& m, int base, int flag, int tmp) {
  gen_position_id(m, base);
  gen_cycle_number(m, base + m.config().r, flag, tmp);
}

std::vector<bool> ref_pe0(const BvmConfig& cfg) {
  std::vector<bool> v(cfg.num_pes(), false);
  v[0] = true;
  return v;
}

std::vector<bool> ref_position_bit(const BvmConfig& cfg, int b) {
  std::vector<bool> v(cfg.num_pes());
  for (std::size_t pe = 0; pe < cfg.num_pes(); ++pe) {
    v[pe] = ((pe & (cfg.num_pes() - 1) & (static_cast<std::size_t>(cfg.Q()) - 1)) >> b) & 1;
  }
  return v;
}

std::vector<bool> ref_cycle_number_bit(const BvmConfig& cfg, int t) {
  std::vector<bool> v(cfg.num_pes());
  for (std::size_t pe = 0; pe < cfg.num_pes(); ++pe) {
    v[pe] = ((pe >> cfg.r) >> t) & 1;
  }
  return v;
}

std::vector<bool> ref_cycle_id(const BvmConfig& cfg) {
  std::vector<bool> v(cfg.num_pes(), false);
  for (std::size_t pe = 0; pe < cfg.num_pes(); ++pe) {
    const int pos = static_cast<int>(pe & (static_cast<std::size_t>(cfg.Q()) - 1));
    if (pos < cfg.h) v[pe] = ((pe >> cfg.r) >> pos) & 1;
  }
  return v;
}

std::vector<bool> ref_address_bit(const BvmConfig& cfg, int t) {
  std::vector<bool> v(cfg.num_pes());
  for (std::size_t pe = 0; pe < cfg.num_pes(); ++pe) {
    v[pe] = (pe >> t) & 1;
  }
  return v;
}

void load_processor_id_host(Machine& m, int base) {
  const BvmConfig& cfg = m.config();
  for (int t = 0; t < cfg.dims(); ++t) {
    const auto bits = ref_address_bit(cfg, t);
    BitVec& row = m.row(Reg::R(base + t));
    for (std::size_t pe = 0; pe < bits.size(); ++pe) row.set(pe, bits[pe]);
  }
}

}  // namespace ttp::bvm
