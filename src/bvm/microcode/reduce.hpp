// Machine -> host feedback: global reductions whose result leaves through
// the architectural output pin (the I-chain's tail), the way a real SIMD
// front end polls its array for "some/none" responses. Everything here is
// pure ISA — the host only reads the output queue.
#pragma once

#include "bvm/microcode/arith.hpp"

namespace ttp::bvm {

/// Folds `flag` with OR across every PE (ASCEND over all dimensions; on
/// return every PE holds the global OR) and emits one copy through the
/// output pin. Returns the emitted bit. Needs one scratch row.
bool global_or(Machine& m, int flag, int scratch, int tmp);

/// Same with AND (e.g. "did every PE finish?").
bool global_and(Machine& m, int flag, int scratch, int tmp);

/// Machine-wide population count of `flag`: a prefix-free total fold —
/// every PE ends holding the count in `total` (width total.len, saturating)
/// and the host reads it from the output pin, one I-shift per bit. Needs a
/// staging field of total.len.
std::uint64_t global_count(Machine& m, int flag, Field total, Field staging,
                           int tmp);

}  // namespace ttp::bvm
