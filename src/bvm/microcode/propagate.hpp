// BVM realization of the paper's §4.4 propagation algorithms.
//
// Propagation of the first kind moves data from the current sender group
// (PEs whose addresses have exactly i ones over the chosen dimensions) to
// the (i+1)-group; receivers learn their membership from the arrival itself
// — the paper's on-the-fly solution to PE allocation. Promotion then turns
// receivers into the next sender set.
//
// Propagation of the second kind floods data to all supersets in one sweep
// (receivers become senders immediately).
//
// Both are parameterized by the dimension list: the TT program propagates
// only over the k set dimensions, leaving the action-index dimensions
// untouched.
#pragma once

#include <vector>

#include "bvm/microcode/arith.hpp"

namespace ttp::bvm {

/// One round of propagation of the first kind over `dims` (ascending).
/// `pid_base` must hold the processor-ID block. `value` may be empty
/// (len == 0) when only group flags are propagated. Receivers OR-combine.
void propagation1_round(Machine& m, const std::vector<int>& dims, int sender,
                        int recv, Field value, Field scratch, int pid_base,
                        int tmp_flag, int tmp);

/// Promotion: sender = recv, recv = 0.
void propagation1_promote(Machine& m, int sender, int recv);

/// Propagation of the second kind over `dims` (ascending): data flows from
/// the sender group to every superset; receivers become senders and
/// OR-combine values.
void propagation2(Machine& m, const std::vector<int>& dims, int sender,
                  Field value, Field scratch, int pid_base, int tmp_flag,
                  int tmp);

}  // namespace ttp::bvm
