#include "bvm/microcode/layer.hpp"

#include "bvm/microcode/propagate.hpp"
#include "util/bits.hpp"

namespace ttp::bvm {

int LayerControl::workspace_size(int k) {
  // flag + recv + tmp_flag + tmp + count field.
  return 4 + util::ceil_log2(static_cast<std::uint64_t>(k) + 1);
}

LayerControl::LayerControl(LayerMode mode, std::vector<int> set_dims,
                           int pid_base, int work_base)
    : mode_(mode),
      set_dims_(std::move(set_dims)),
      pid_base_(pid_base),
      flag_(work_base),
      recv_(work_base + 1),
      tmp_flag_(work_base + 2),
      tmp_(work_base + 3),
      count_{work_base + 4,
             util::ceil_log2(static_cast<std::uint64_t>(set_dims_.size()) + 1)} {}

void LayerControl::init(Machine& m) {
  layer_ = 0;
  if (mode_ == LayerMode::kPopcount) {
    std::vector<int> bits;
    bits.reserve(set_dims_.size());
    for (int d : set_dims_) bits.push_back(pid_base_ + d);
    popcount_bits(m, count_, bits);
    equals_const(m, flag_, count_, 0, tmp_);
    return;
  }
  // Propagation mode: the 0-group is S == 0, i.e. all S address bits clear.
  // flag = AND of their complements, accumulated in B.
  set_b_const(m, true, tmp_);
  for (int d : set_dims_) {
    Instr in;
    in.dest = Reg::R(tmp_);
    in.f = kTtZero;
    in.g = kTtAndBNotF;  // B &= ~bit
    in.src_f = Reg::R(pid_base_ + d);
    m.exec(in);
  }
  m.exec(mov(Reg::R(flag_), Reg::MakeB()));
  m.exec(setv(Reg::R(recv_), false));
}

void LayerControl::advance(Machine& m) {
  ++layer_;
  if (mode_ == LayerMode::kPopcount) {
    equals_const(m, flag_, count_, static_cast<std::uint64_t>(layer_), tmp_);
    return;
  }
  propagation1_round(m, set_dims_, flag_, recv_, Field{0, 0}, Field{0, 0},
                     pid_base_, tmp_flag_, tmp_);
  propagation1_promote(m, flag_, recv_);
}

}  // namespace ttp::bvm
