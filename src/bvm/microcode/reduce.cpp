#include "bvm/microcode/reduce.hpp"

#include <stdexcept>

#include "bvm/microcode/exchange.hpp"

namespace ttp::bvm {

namespace {

// Folds the 1-bit register with tt (an F,D two-input table) across all
// dimensions; afterwards every PE holds the machine-wide fold.
void fold_all_dims(Machine& m, int flag, int scratch, int tmp,
                   std::uint8_t tt) {
  const Field f{flag, 1}, s{scratch, 1};
  for (int d = 0; d < m.config().dims(); ++d) {
    dim_exchange_read(m, d, f, s, tmp);
    m.exec(binop(Reg::R(flag), tt, Reg::R(flag), Reg::R(scratch)));
  }
}

// Emits PE (n-1)'s bit of `reg` through the output pin: one I-shift with A
// as the vehicle (A is clobbered; the shift consumes one input slot, which
// reads 0 when the queue is idle).
bool emit_tail_bit(Machine& m, int reg) {
  m.exec(mov(Reg::MakeA(), Reg::R(reg)));
  m.exec(mov(Reg::MakeA(), Reg::MakeA(), Nbr::I));
  return m.output().back();
}

}  // namespace

bool global_or(Machine& m, int flag, int scratch, int tmp) {
  fold_all_dims(m, flag, scratch, tmp, kTtOrFD);
  return emit_tail_bit(m, flag);
}

bool global_and(Machine& m, int flag, int scratch, int tmp) {
  fold_all_dims(m, flag, scratch, tmp, kTtAndFD);
  return emit_tail_bit(m, flag);
}

std::uint64_t global_count(Machine& m, int flag, Field total, Field staging,
                           int tmp) {
  if (staging.len != total.len) {
    throw std::invalid_argument("global_count: staging length mismatch");
  }
  // total = flag widened, then tree-sum across all dimensions: after the
  // dim-d exchange both partners hold the sum of their pair, so the fold
  // converges to the machine-wide count at every PE.
  set_const(m, total, 0);
  m.exec(mov(total.reg(0), Reg::R(flag)));
  for (int d = 0; d < m.config().dims(); ++d) {
    dim_exchange_read(m, d, total, staging, tmp);
    add_sat(m, total, total, staging, tmp);
  }
  // Ship the count out through the pin, LSB first.
  std::uint64_t out = 0;
  for (int t = 0; t < total.len; ++t) {
    if (emit_tail_bit(m, total.base + t)) out |= std::uint64_t{1} << t;
  }
  return out;
}

}  // namespace ttp::bvm
