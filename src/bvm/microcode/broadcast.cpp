#include "bvm/microcode/broadcast.hpp"

#include "bvm/microcode/exchange.hpp"
#include "bvm/microcode/ids.hpp"

namespace ttp::bvm {

void broadcast_field(Machine& m, Field value, int sender, Field scratch,
                     int tmp_flag, int tmp) {
  const int dims = m.config().dims();
  const Field sender_f{sender, 1};
  const Field tmp_flag_f{tmp_flag, 1};
  for (int d = 0; d < dims; ++d) {
    // Fetch the partner's value and sender bit.
    dim_exchange_read(m, d, value, scratch, tmp);
    dim_exchange_read(m, d, sender_f, tmp_flag_f, tmp);
    // take = partner_sender & ~sender  (receive only once per PE).
    m.exec(binop(Reg::R(tmp_flag), kTtAndFNotD, Reg::R(tmp_flag),
                 Reg::R(sender)));
    // value = take ? partner_value : value, bit by bit with take in B.
    select(m, value, tmp_flag, scratch, value);
    // sender |= take.
    m.exec(binop(Reg::R(sender), kTtOrFD, Reg::R(sender), Reg::R(tmp_flag)));
  }
}

void broadcast_from_pe0(Machine& m, Field value, int sender, Field scratch,
                        int tmp_flag, int tmp) {
  mark_pe0(m, sender);
  broadcast_field(m, value, sender, scratch, tmp_flag, tmp);
}

}  // namespace ttp::bvm
