// Hypercube-dimension data exchange on the BVM's CCC network (paper §3, §6).
//
// dim_exchange_read(d) gives every PE its dimension-d partner's value:
//   * low dims (d < r): the partner is inside the cycle at distance 2^d;
//     two counter-rotating copies travel 2^d succ/pred hops and each PE
//     keeps the one matching its position bit (the "lowsheaf" shuffle).
//   * lateral dims (d >= r, cycle bit q = d - r): every datum takes one lap
//     around its cycle, swapping across the lateral link each time it
//     passes position q — the rotation realization of the highsheaf; Q
//     shift steps + Q masked lateral reads per bit.
//
// ascend-style sequences built from these are exactly how the paper's TT
// e-loop and min-reduction run on the real machine; the pipelined variant
// that overlaps all lateral dims lives at the word level in net::CccMachine
// (bench E13 quantifies the difference).
#pragma once

#include "bvm/microcode/arith.hpp"

namespace ttp::bvm {

/// dst = partner's src across hypercube dimension `dim`, all PEs at once.
/// dst must not alias src; needs one scratch register for low dims.
/// Costs (per bit): dim 0: 1 instr (the XS link IS the exchange); other
/// low dims b: 2·2^b + 3 instrs; lateral: 2Q + 1 instrs.
void dim_exchange_read(Machine& m, int dim, Field src, Field dst, int tmp);

/// Instruction-count model of dim_exchange_read, for cost assertions.
std::uint64_t dim_exchange_cost(const BvmConfig& cfg, int dim, int len);

/// A payload for the pipelined lateral wave: `data` rotates around the
/// cycles; when a datum passes lateral position q (q in the wave's range)
/// it adopts its dimension-(r+q) partner's value iff its home PE's bit in
/// row `adopt_base + q` is set. The adopt rows rotate along with the data
/// so the decision bit is present wherever the datum currently sits; `cur`
/// is a scratch row into which the wave gathers, per step, each active
/// position's adopt bit, so ONE machine-wide mux per data bit serves every
/// active dimension at once (the L link at position q crosses dim q).
struct WaveField {
  Field data;
  int adopt_base = 0;  ///< rows [adopt_base + q_lo, adopt_base + q_hi)
  int cur = 0;         ///< scratch row
};

/// The Preparata-Vuillemin pipelined ASCEND wave over lateral dimensions
/// q_lo..q_hi-1 (hypercube dims r+q_lo..r+q_hi-1), at the bit level: one
/// rotation lap serves ALL the dims instead of one lap per dim, which is
/// what turns the e-loop's O(k·p·Q) lateral cost into O((Q+k)·p) and makes
/// the paper's T = O(k·p·(k + log N)) bound achievable on the real machine.
/// Every datum performs its in-range dims in ascending order (lockstep
/// rotation pairs data of equal home positions), and all payloads end back
/// at their home PEs.
///
/// Each field's conditional adoption is the same "receiver adopts, sender
/// keeps" semantics as dim_exchange_read + select, fused into the wave.
void lateral_wave_ascend(Machine& m, int q_lo, int q_hi,
                         const std::vector<WaveField>& fields);

/// The mirrored DESCEND wave: lateral dims q_hi-1..q_lo, each datum
/// visiting them in descending order on one backward rotation lap. Same
/// payload/adopt/CUR contract as the ascend wave.
void lateral_wave_descend(Machine& m, int q_lo, int q_hi,
                          const std::vector<WaveField>& fields);

/// Instruction-count model of lateral_wave_ascend.
std::uint64_t lateral_wave_cost(const BvmConfig& cfg, int q_lo, int q_hi,
                                const std::vector<WaveField>& fields);

}  // namespace ttp::bvm
