// Bit-serial arithmetic microcode (the BVM is Boolean-only; a p-bit number
// lives in p register rows, little-endian: bit t of every PE's value is in
// R[base+t]).
//
// Numbers are unsigned saturating fixed-point: the all-ones encoding is INF
// and addition/multiplication saturate to it, which makes INF absorbing —
// exactly the sentinel the TT dynamic program needs.
//
// The dual-assignment instruction is what makes this cheap: addition keeps
// the carry in register B and retires one result bit per instruction
// (f = F^D^B into the destination, g = majority(F,D,B) into B).
//
// Conventions: all routines assume E = all-ones (no microcode here uses the
// enable register; conditional updates go through B-muxes instead) and leave
// B clobbered. Fields must not overlap unless a routine says aliasing is OK.
#pragma once

#include <cstdint>
#include <vector>

#include "bvm/machine.hpp"

namespace ttp::bvm {

/// A p-bit per-PE value spread over registers R[base..base+len-1].
struct Field {
  int base = 0;
  int len = 0;

  Reg reg(int t) const { return Reg::R(base + t); }
};

/// B = value (costs 1 instruction; writes a scratch register as dest1).
void set_b_const(Machine& m, bool value, int scratch);
/// B = R[src] (1 instruction; src doubles as the dummy dest1 and is
/// rewritten with its own value).
void set_b_from(Machine& m, int src);

/// dst = constant (same at every PE). len instructions.
void set_const(Machine& m, Field dst, std::uint64_t value);

/// dst = src, register-row copies. May overlap only if dst.base <= src.base.
void copy_field(Machine& m, Field dst, Field src);

/// dst = saturate(x + y). dst may alias x and/or y. 2·len+1 instructions.
void add_sat(Machine& m, Field dst, Field x, Field y, int scratch);

/// dst = x - y, saturating at 0 (monus). dst may alias x. 2·len+1
/// instructions (borrow rides in B; a surviving borrow clamps to 0).
void sub_sat(Machine& m, Field dst, Field x, Field y, int scratch);

/// R[flag] = (x < y), unsigned. len+2 instructions.
void less_than(Machine& m, int flag, Field x, Field y, int scratch);

/// R[flag] = (x == y). len+2 instructions.
void equals_field(Machine& m, int flag, Field x, Field y, int scratch);

/// R[flag] = (x == constant). len+2 instructions.
void equals_const(Machine& m, int flag, Field x, std::uint64_t value,
                  int scratch);

/// dst = cond ? x : y (cond is a 1-bit register). dst may alias x or y.
void select(Machine& m, Field dst, int cond, Field x, Field y);

/// dst = counter of 1-bits among the listed 1-bit registers. dst.len must
/// hold the maximum count.
void popcount_bits(Machine& m, Field dst, const std::vector<int>& bits);

/// dst = saturate(x * y). dst must not alias x or y. Needs one scratch
/// field of x.len and two scratch flag registers. ~3·len^2 instructions.
void multiply_sat(Machine& m, Field dst, Field x, Field y, Field scratch,
                  int ovf, int tmp);

/// Fixed-point multiply: dst = saturate((x * y) >> shift), evaluated as a
/// sum of pre-shifted partial products so the accumulator stays len bits
/// wide (the partials' discarded low bits bound the truncation error by
/// `shift` ulps). Both operands carry `shift` fractional bits. dst must not
/// alias x or y; addend is a len-wide scratch field.
void multiply_shift_sat(Machine& m, Field dst, Field x, Field y, int shift,
                        Field addend, int ovf, int tmp);

/// dst |= bit (every bit of dst ORed with the 1-bit register), used to pin
/// saturated values to INF. len instructions.
void or_bit_into(Machine& m, Field dst, int bit);

/// dst = min(x, y) / max(x, y). dst may alias x or y. 2·len+3 instructions.
void min_field(Machine& m, Field dst, Field x, Field y, int scratch);
void max_field(Machine& m, Field dst, Field x, Field y, int scratch);

/// dst = |x - y| = (x ∸ y) | (y ∸ x) (both monus directions ORed;
/// ~5·len instructions). dst must not alias x or y.
void abs_diff(Machine& m, Field dst, Field x, Field y, Field scratch,
              int tmp);

/// In-place logical shift of the field by `amount` bit positions (pure
/// register renumbering: `amount` row moves + `amount` clears).
void shift_left_field(Machine& m, Field v, int amount);
void shift_right_field(Machine& m, Field v, int amount);

/// Host-side helpers for tests: encode/decode against the same saturating
/// convention (inf_raw == all-ones).
std::uint64_t field_inf(int len);
std::uint64_t sat_add_host(std::uint64_t a, std::uint64_t b, int len);
std::uint64_t sat_mul_host(std::uint64_t a, std::uint64_t b, int len);
/// Host model of multiply_shift_sat, including its per-partial truncation.
std::uint64_t sat_mulshift_host(std::uint64_t a, std::uint64_t b, int shift,
                                int len);

}  // namespace ttp::bvm
