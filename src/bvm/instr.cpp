#include "bvm/instr.hpp"

#include <sstream>

namespace ttp::bvm {

std::string Reg::to_string() const {
  switch (kind) {
    case Kind::A:
      return "A";
    case Kind::B:
      return "B";
    case Kind::E:
      return "E";
    case Kind::R:
      return "R[" + std::to_string(index) + "]";
  }
  return "?";
}

namespace {

std::string nbr_name(Nbr n) {
  switch (n) {
    case Nbr::None:
      return "";
    case Nbr::S:
      return ".S";
    case Nbr::P:
      return ".P";
    case Nbr::L:
      return ".L";
    case Nbr::XS:
      return ".XS";
    case Nbr::XP:
      return ".XP";
    case Nbr::I:
      return ".I";
  }
  return "?";
}

}  // namespace

std::string Instr::to_string() const {
  std::ostringstream os;
  os << dest.to_string() << ",B = f:0x" << std::hex << int(f) << ",g:0x"
     << int(g) << std::dec << " (" << src_f.to_string() << ", "
     << src_d.to_string() << nbr_name(d_nbr) << ", B)";
  if (act != Act::All) {
    os << (act == Act::If ? " IF {" : " NF {");
    bool first = true;
    for (int p = 0; p < 64; ++p) {
      if ((act_set >> p) & 1u) {
        os << (first ? "" : ",") << p;
        first = false;
      }
    }
    os << "}";
  }
  return os.str();
}

Instr mov(Reg dst, Reg src, Nbr nbr) {
  Instr in;
  in.dest = dst;
  in.g = kTtB;
  if (src.kind == Reg::Kind::B) {
    // B is not a legal D operand; it is always available as the third input.
    in.f = kTtB;
  } else {
    in.f = kTtD;
    in.src_d = src;
    in.d_nbr = nbr;
  }
  return in;
}

Instr setv(Reg dst, bool value) {
  Instr in;
  in.dest = dst;
  in.f = value ? kTtOne : kTtZero;
  in.g = kTtB;
  return in;
}

Instr binop(Reg dst, std::uint8_t f_tt, Reg f, Reg d, Nbr nbr) {
  Instr in;
  in.dest = dst;
  in.f = f_tt;
  in.g = kTtB;
  in.src_f = f;
  in.src_d = d;
  in.d_nbr = nbr;
  return in;
}

}  // namespace ttp::bvm
