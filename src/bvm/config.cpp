#include "bvm/config.hpp"

// Configuration is header-only; this TU anchors the library target.
