// The BVM instruction set (paper §2).
//
// One instruction performs two simultaneous assignments on every active,
// enabled PE:
//
//     {A | R[j] | E},  B  =  f(F, D, B),  g(F, D, B)   [IF|NF <set>]
//
// f and g are arbitrary 3-input Boolean functions given as 8-bit truth
// tables (input index = F + 2·D + 4·B). F is A or R[j]; D is A or R[j],
// optionally read from a neighbor PE:
//
//   S  successor (c, p+1 mod Q)      P  predecessor (c, p-1 mod Q)
//   L  lateral   (c xor 2^p, p)      XS exchange p xor 1
//   XP exchange pairing {1,2},{3,4},...,{Q-1,0}
//   I  global shift chain: PE l reads PE l-1; PE 0 consumes one input bit
//      and PE n-1 emits one output bit
//
// IF <set> activates only in-cycle positions in <set> (NF: the complement).
// The enable register E gates writes per-PE; writes to E itself ignore the
// gate ("E register itself is always enabled"). Deactivated or disabled PEs
// keep their old values, including B.
#pragma once

#include <cstdint>
#include <string>

namespace ttp::bvm {

enum class Nbr : std::uint8_t { None, S, P, L, XS, XP, I };

/// Truth-table helpers. `tt3` builds a table from any callable
/// bool(bool f, bool d, bool b).
template <typename Fn>
constexpr std::uint8_t tt3(Fn fn) {
  std::uint8_t t = 0;
  for (int i = 0; i < 8; ++i) {
    if (fn((i & 1) != 0, (i & 2) != 0, (i & 4) != 0)) {
      t |= static_cast<std::uint8_t>(1u << i);
    }
  }
  return t;
}

// Common tables (named for readability of microcode).
inline constexpr std::uint8_t kTtZero = 0x00;
inline constexpr std::uint8_t kTtOne = 0xFF;
inline constexpr std::uint8_t kTtF = 0xAA;       // copy F
inline constexpr std::uint8_t kTtD = 0xCC;       // copy D
inline constexpr std::uint8_t kTtB = 0xF0;       // keep B
inline constexpr std::uint8_t kTtNotF = 0x55;
inline constexpr std::uint8_t kTtNotD = 0x33;
inline constexpr std::uint8_t kTtNotB = 0x0F;
inline constexpr std::uint8_t kTtAndFD = 0x88;   // F & D
inline constexpr std::uint8_t kTtOrFD = 0xEE;    // F | D
inline constexpr std::uint8_t kTtXorFD = 0x66;   // F ^ D
inline constexpr std::uint8_t kTtAndFB = 0xA0;   // F & B
inline constexpr std::uint8_t kTtOrFB = 0xFA;    // F | B
inline constexpr std::uint8_t kTtXorFB = 0x5A;   // F ^ B
inline constexpr std::uint8_t kTtAndDB = 0xC0;   // D & B
inline constexpr std::uint8_t kTtOrDB = 0xFC;    // D | B
inline constexpr std::uint8_t kTtXor3 = 0x96;    // F ^ D ^ B (sum bit)
inline constexpr std::uint8_t kTtMaj = 0xE8;     // majority (carry bit)
inline constexpr std::uint8_t kTtMux = 0xCA;     // B ? D : F
inline constexpr std::uint8_t kTtAndFNotD = 0x22;    // F & ~D
inline constexpr std::uint8_t kTtAndDNotF = 0x44;    // D & ~F
inline constexpr std::uint8_t kTtAndBNotF = 0x50;    // B & ~F
inline constexpr std::uint8_t kTtAndFNotB = 0x0A;    // F & ~B
inline constexpr std::uint8_t kTtBorrow = 0xD4;  // borrow of F - D with B in
inline constexpr std::uint8_t kTtOrFDB = 0xFE;   // F | D | B

/// A register operand: A, B, E, or R[j].
struct Reg {
  enum class Kind : std::uint8_t { A, B, E, R } kind = Kind::A;
  std::uint16_t index = 0;  // for Kind::R

  static constexpr Reg MakeA() { return Reg{Kind::A, 0}; }
  static constexpr Reg MakeB() { return Reg{Kind::B, 0}; }
  static constexpr Reg MakeE() { return Reg{Kind::E, 0}; }
  static constexpr Reg R(int j) {
    return Reg{Kind::R, static_cast<std::uint16_t>(j)};
  }
  bool operator==(const Reg&) const = default;
  std::string to_string() const;
};

enum class Act : std::uint8_t { All, If, Nf };

struct Instr {
  Reg dest = Reg::MakeA();      ///< first assignment target (A, R[j], or E)
  std::uint8_t f = kTtF;        ///< dest  = f(F, D, B)
  std::uint8_t g = kTtB;        ///< B     = g(F, D, B)
  Reg src_f = Reg::MakeA();     ///< F: A or R[j]
  Reg src_d = Reg::MakeA();     ///< D: A or R[j], before neighbor routing
  Nbr d_nbr = Nbr::None;        ///< neighbor qualifier on D
  Act act = Act::All;
  std::uint64_t act_set = 0;    ///< in-cycle positions, bit p = position p

  std::string to_string() const;
};

/// Convenience builders used heavily by microcode.
Instr mov(Reg dst, Reg src, Nbr nbr = Nbr::None);
Instr setv(Reg dst, bool value);
Instr binop(Reg dst, std::uint8_t f_tt, Reg f, Reg d, Nbr nbr = Nbr::None);

}  // namespace ttp::bvm
