#include "bvm/assembler.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace ttp::bvm {

namespace {

class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) {}

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!eat(c)) fail(std::string("expected '") + c + "'");
  }
  bool eat_word(const std::string& w) {
    skip_ws();
    if (s_.compare(pos_, w.size(), w) == 0) {
      pos_ += w.size();
      return true;
    }
    return false;
  }
  std::string ident() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])))) {
      ++pos_;
    }
    if (start == pos_) fail("expected identifier");
    return s_.substr(start, pos_ - start);
  }
  std::uint64_t number() {
    skip_ws();
    std::size_t start = pos_;
    int base = 10;
    if (s_.compare(pos_, 2, "0x") == 0 || s_.compare(pos_, 2, "0X") == 0) {
      base = 16;
      pos_ += 2;
      start = pos_;
    }
    while (pos_ < s_.size() &&
           std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (start == pos_) fail("expected number");
    return std::stoull(s_.substr(start, pos_ - start), nullptr, base);
  }
  bool at_end() {
    skip_ws();
    return pos_ >= s_.size() || s_[pos_] == '#';
  }
  [[noreturn]] void fail(const std::string& why) {
    throw std::invalid_argument("asm: " + why + " at column " +
                                std::to_string(pos_) + " in: " + s_);
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

Reg parse_reg(Cursor& c, bool allow_e) {
  c.skip_ws();
  if (c.eat_word("R")) {
    c.expect('[');
    const auto idx = c.number();
    c.expect(']');
    return Reg::R(static_cast<int>(idx));
  }
  if (c.eat_word("A")) return Reg::MakeA();
  if (c.eat_word("B")) return Reg::MakeB();
  if (c.eat_word("E")) {
    if (!allow_e) c.fail("E not allowed here");
    return Reg::MakeE();
  }
  c.fail("expected register (A, B, E or R[j])");
}

Nbr parse_nbr(Cursor& c) {
  if (!c.eat('.')) return Nbr::None;
  if (c.eat_word("XS")) return Nbr::XS;
  if (c.eat_word("XP")) return Nbr::XP;
  if (c.eat_word("S")) return Nbr::S;
  if (c.eat_word("P")) return Nbr::P;
  if (c.eat_word("L")) return Nbr::L;
  if (c.eat_word("I")) return Nbr::I;
  c.fail("expected neighbor tag S/P/L/XS/XP/I");
}

}  // namespace

Instr parse_instr(const std::string& text) {
  Cursor c(text);
  Instr in;

  in.dest = parse_reg(c, /*allow_e=*/true);
  if (in.dest.kind == Reg::Kind::B) {
    c.fail("first target cannot be B (B is the implicit second target)");
  }
  c.expect(',');
  if (!c.eat_word("B")) c.fail("second target must be B");
  c.expect('=');
  if (!c.eat_word("f")) c.fail("expected f:<table>");
  c.expect(':');
  in.f = static_cast<std::uint8_t>(c.number());
  c.expect(',');
  if (!c.eat_word("g")) c.fail("expected g:<table>");
  c.expect(':');
  in.g = static_cast<std::uint8_t>(c.number());

  c.expect('(');
  in.src_f = parse_reg(c, /*allow_e=*/false);
  if (in.src_f.kind == Reg::Kind::B) c.fail("F cannot be B");
  c.expect(',');
  in.src_d = parse_reg(c, /*allow_e=*/false);
  if (in.src_d.kind == Reg::Kind::B) {
    c.fail("D cannot be B; read B through the truth table's third input");
  }
  in.d_nbr = parse_nbr(c);
  c.expect(',');
  if (!c.eat_word("B")) c.fail("third operand must be B");
  c.expect(')');

  if (c.eat_word("IF")) {
    in.act = Act::If;
  } else if (c.eat_word("NF")) {
    in.act = Act::Nf;
  }
  if (in.act != Act::All) {
    c.expect('{');
    if (!c.eat('}')) {
      do {
        const auto p = c.number();
        if (p >= 64) c.fail("activation position out of range");
        in.act_set |= std::uint64_t{1} << p;
      } while (c.eat(','));
      c.expect('}');
    }
  }
  if (!c.at_end()) c.fail("trailing input");
  return in;
}

std::vector<Instr> assemble(const std::string& source) {
  std::vector<Instr> prog;
  std::istringstream is(source);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    bool blank = true;
    for (char ch : line) {
      if (!std::isspace(static_cast<unsigned char>(ch))) {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    try {
      prog.push_back(parse_instr(line));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("line " + std::to_string(lineno) + ": " +
                                  e.what());
    }
  }
  return prog;
}

std::string disassemble(const std::vector<Instr>& prog) {
  std::string out;
  for (const auto& in : prog) {
    out += in.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace ttp::bvm
