// Process-wide metrics primitives: counters, gauges, and log2-bucketed
// histograms, collected in a MetricsRegistry.
//
// This is the structured replacement for the ad-hoc util::CounterMap: names
// are string_view on the hot path (no temporary std::string per add), the
// backing store is an unordered_map with heterogeneous lookup, and every
// instrument is safe to update concurrently (atomics behind a stable
// reference). util::CounterMap survives as a thin shim over this registry.
//
// The registry is deliberately dependency-free so that every layer of the
// tree (util included) can link against it.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ttp::obs {

/// Monotonically increasing sum. add() is lock-free.
class Counter {
 public:
  void add(std::uint64_t v) noexcept {
    v_.fetch_add(v, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depths, worker counts).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed log2 bucketing: bucket 0 holds the value 0 and bucket b >= 1 holds
/// values in [2^(b-1), 2^b - 1], so any uint64 lands in one of 65 buckets
/// with a single bit_width(). Tracks count/sum/min/max alongside.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  Histogram() = default;
  /// Relaxed snapshot copy (atomics are not copyable by default).
  Histogram(const Histogram& o) noexcept { *this = o; }
  Histogram& operator=(const Histogram& o) noexcept {
    for (int b = 0; b < kBuckets; ++b) {
      buckets_[static_cast<std::size_t>(b)].store(o.bucket_count(b),
                                                  std::memory_order_relaxed);
    }
    count_.store(o.count(), std::memory_order_relaxed);
    sum_.store(o.sum(), std::memory_order_relaxed);
    min_.store(o.min(), std::memory_order_relaxed);
    max_.store(o.max(), std::memory_order_relaxed);
    return *this;
  }

  static int bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0 : std::bit_width(v);
  }
  static std::uint64_t bucket_lo(int b) noexcept {
    return b <= 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  static std::uint64_t bucket_hi(int b) noexcept {
    if (b <= 0) return 0;
    if (b >= 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// UINT64_MAX when empty.
  std::uint64_t min() const noexcept {
    return min_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket_count(int b) const noexcept {
    return b < 0 || b >= kBuckets
               ? 0
               : buckets_[static_cast<std::size_t>(b)].load(
                     std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  void update_min(std::uint64_t v) noexcept {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) noexcept {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_{0};
};

/// Named instruments with stable references: the pointer returned by
/// counter()/gauge()/histogram() stays valid for the registry's lifetime
/// (and across moves), so call sites may cache it. Lookup takes the
/// registry mutex; updates through the returned reference are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry& o);
  MetricsRegistry& operator=(const MetricsRegistry& o);
  MetricsRegistry(MetricsRegistry&& o) noexcept;
  MetricsRegistry& operator=(MetricsRegistry&& o) noexcept;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // --- CounterMap-compatible convenience API -------------------------------
  void add(std::string_view name, std::uint64_t v) { counter(name).add(v); }
  /// 0 for unknown names.
  std::uint64_t get(std::string_view name) const;
  /// Counter snapshot sorted by name — deterministic iteration for reports
  /// even though the backing store is unordered.
  std::vector<std::pair<std::string, std::uint64_t>> all() const;
  // -------------------------------------------------------------------------

  std::vector<std::pair<std::string, double>> gauges() const;
  /// Applies `fn(name, histogram)` to each histogram, sorted by name.
  void visit_histograms(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;

  bool empty() const;
  /// Drops every instrument (references from before reset() dangle).
  void reset();

  /// Human-readable dump: counters, gauges, then histograms with non-empty
  /// buckets, all sorted by name.
  void print(std::ostream& os, std::string_view indent = "  ") const;

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  template <typename T>
  using Map =
      std::unordered_map<std::string, std::unique_ptr<T>, StringHash,
                         std::equal_to<>>;

  template <typename T>
  static T& intern(Map<T>& m, std::string_view name);

  mutable std::mutex mu_;
  Map<Counter> counters_;
  Map<Gauge> gauges_;
  Map<Histogram> histograms_;
};

}  // namespace ttp::obs
