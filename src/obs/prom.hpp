// Prometheus text exposition for the metrics registry and quantile
// sketches — what the daemon's METRICS verb serves.
//
// Mapping:
//   Counter    -> "# TYPE <prefix><name>_total counter" + one sample
//   Gauge      -> "# TYPE <prefix><name> gauge" + one sample
//   Histogram  -> classic Prometheus histogram: cumulative _bucket{le=...}
//                 samples at the log2 boundaries, then _sum and _count
//   QuantileSnapshot -> summary: {quantile="0.5|0.9|0.99|0.999"} samples
//                 plus _sum and _count, all under one metric name with a
//                 caller-supplied label (the serving layer labels by stage)
//
// Names are sanitized ('.' and anything outside [a-zA-Z0-9_] become '_'),
// and output is sorted by metric name within each writer so scrapes are
// byte-stable across runs.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/quantiles.hpp"

namespace ttp::obs {

/// "svc.cache.hits" -> "ttp_svc_cache_hits" (with the default prefix).
std::string prom_name(std::string_view name,
                      std::string_view prefix = "ttp_");

/// Counters, gauges, and histograms of `reg` in Prometheus text format.
void write_prometheus(std::ostream& os, const MetricsRegistry& reg,
                      std::string_view prefix = "ttp_");

/// One summary metric from a quantile snapshot. `name` is sanitized via
/// prom_name (default prefix), so "svc.latency.seconds" becomes
/// "ttp_svc_latency_seconds". `label` rides on every sample (e.g.
/// `stage="e2e"`); pass empty for none. `scale` converts the sketch's
/// recorded unit into the exposed one (1e-6 for us -> seconds). Emits the
/// "# TYPE" header only when `with_type_header` (so several stages can
/// share one metric family).
void write_prometheus_summary(std::ostream& os, std::string_view name,
                              std::string_view label,
                              const QuantileSnapshot& snap, double scale,
                              bool with_type_header);

}  // namespace ttp::obs
