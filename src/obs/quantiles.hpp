// Fixed-memory, mergeable quantile sketch for latency tails.
//
// The registry's log2 Histogram answers "how many in [2^b, 2^(b+1))" —
// up to 2x relative error at the tail, which is useless for p999 SLOs.
// QuantileSketch is an HDR-style sub-bucketed histogram: values below 64
// land in unit-width buckets (exact), and every power-of-two range above
// is split into 64 sub-buckets, so the midpoint estimate of any bucket is
// within 1/128 (~0.8%) of every value that bucket can hold. Quantiles are
// therefore exact-rank with <=1% relative value error, independent of the
// distribution (tests/test_quantiles.cpp pins this on randomized inputs).
//
// Memory is fixed: 64 + 58*64 buckets of one relaxed-atomic uint64 each
// (~30 KiB). record() is lock-free (a handful of relaxed fetch_adds) and
// snapshot()/merge are plain relaxed reads, so per-worker sketches can be
// folded together on scrape without stopping writers. ShardedQuantiles
// spreads writers over a small fixed set of sketches by thread to keep
// the hot cache lines from ping-ponging, merging on snapshot().
//
// Units are the caller's: the serving layer records microseconds.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace ttp::obs {

namespace qdetail {
/// Sub-bucket resolution: 2^6 = 64 slices per power-of-two range.
inline constexpr int kSubBits = 6;
inline constexpr std::uint64_t kSubBuckets = std::uint64_t{1} << kSubBits;
/// Exponents 0..kSubBits-1 are covered by the exact region; ranges run
/// from exponent kSubBits through 63.
inline constexpr std::size_t kBucketCount =
    kSubBuckets + (64 - kSubBits) * kSubBuckets;

inline std::size_t bucket_of(std::uint64_t v) noexcept {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const int e = std::bit_width(v) - 1;  // e >= kSubBits
  const std::uint64_t sub = (v - (std::uint64_t{1} << e)) >> (e - kSubBits);
  return kSubBuckets +
         static_cast<std::size_t>(e - kSubBits) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

/// Lowest value the bucket can hold.
inline std::uint64_t bucket_lo(std::size_t b) noexcept {
  if (b < kSubBuckets) return b;
  const std::size_t r = (b - kSubBuckets) >> kSubBits;
  const std::uint64_t sub = (b - kSubBuckets) & (kSubBuckets - 1);
  const int e = static_cast<int>(r) + kSubBits;
  return (std::uint64_t{1} << e) + (sub << (e - kSubBits));
}

/// Midpoint estimate: within half a sub-bucket of any member value.
inline std::uint64_t bucket_mid(std::size_t b) noexcept {
  if (b < kSubBuckets) return b;  // unit-width: exact
  const std::size_t r = (b - kSubBuckets) >> kSubBits;
  const int e = static_cast<int>(r) + kSubBits;
  const std::uint64_t width = std::uint64_t{1} << (e - kSubBits);
  return bucket_lo(b) + width / 2;
}
}  // namespace qdetail

/// A frozen, plain-integer copy of a sketch (or a merge of several).
/// Quantile queries and merging happen here, off the hot path.
class QuantileSnapshot {
 public:
  QuantileSnapshot();

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  /// UINT64_MAX when empty.
  std::uint64_t min() const noexcept { return min_; }
  std::uint64_t max() const noexcept { return max_; }

  /// Value estimate at quantile q in [0, 1]: the smallest bucket whose
  /// cumulative count reaches ceil(q * count), reported at its midpoint.
  /// 0 when the snapshot is empty.
  std::uint64_t quantile(double q) const noexcept;

  /// Fold another snapshot in (counts add, min/max widen).
  void merge(const QuantileSnapshot& other) noexcept;

 private:
  friend class QuantileSketch;
  std::uint64_t buckets_[qdetail::kBucketCount];
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

/// The live, writable sketch. record() is lock-free and wait-free;
/// snapshot() reads concurrently with writers (relaxed — a scrape racing a
/// record may miss it, never corrupt).
class QuantileSketch {
 public:
  /// Guaranteed bound on |estimate - value| / value for any recorded value.
  static constexpr double kMaxRelativeError =
      1.0 / static_cast<double>(2 * qdetail::kSubBuckets);

  void record(std::uint64_t v) noexcept {
    buckets_[qdetail::bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Copies the live counters into `out` (additive: call on a fresh or
  /// already-merged snapshot to fold this sketch in).
  void merge_into(QuantileSnapshot& out) const noexcept;

  QuantileSnapshot snapshot() const;

  void reset() noexcept;

 private:
  void update_min(std::uint64_t v) noexcept {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) noexcept {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[qdetail::kBucketCount]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_{0};
};

/// A fixed set of sketches indexed by recording thread, merged on scrape.
/// Spreads the fetch_add traffic of many concurrent workers over distinct
/// cache lines; the scrape pays the (cold-path) merge.
class ShardedQuantiles {
 public:
  static constexpr std::size_t kShards = 8;

  void record(std::uint64_t v) noexcept { shard_for_thread().record(v); }

  /// Merged view of all shards; lock-free with respect to writers.
  QuantileSnapshot snapshot() const;

  void reset() noexcept;

 private:
  QuantileSketch& shard_for_thread() noexcept;
  QuantileSketch shards_[kShards];
};

}  // namespace ttp::obs
