// Span exporters: human-readable tree & per-name summary (for report.cpp
// and the summary/spans TTP_TRACE modes), JSON Lines, and Chrome
// trace_event JSON (chrome://tracing / Perfetto).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace ttp::obs {

/// Indented tree, children under parents in recording order. Each line
/// shows wall time, the watched step deltas (when present), and attrs.
void write_span_tree(std::ostream& os, const std::vector<SpanRecord>& spans);

/// Aggregate by span name: count, total wall time, total step deltas.
void write_span_summary(std::ostream& os,
                        const std::vector<SpanRecord>& spans);

/// One JSON object per line per span.
void write_jsonl(std::ostream& os, const std::vector<SpanRecord>& spans);

/// Chrome trace_event JSON ("X" complete events, microsecond timestamps)
/// wrapped in the {"traceEvents": [...]} object form. Step deltas and
/// attributes ride in "args".
void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanRecord>& spans);

/// JSON string escaping (quotes, backslash, control chars) — exposed for
/// the exporters' tests.
std::string json_escape(std::string_view s);

}  // namespace ttp::obs
