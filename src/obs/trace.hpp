// Structured tracing for the solvers and machine simulators.
//
// A Span is an RAII scope that records BOTH clocks this project cares
// about: wall-clock nanoseconds (what the host paid) and the simulated
// step-counter delta of the enclosing machine/solver (what the paper's cost
// model charges). Spans nest per thread, carry key/value attributes, and
// are collected by the process-global Tracer, which exports them as a
// human-readable tree, JSON Lines, or Chrome trace_event JSON that opens
// directly in chrome://tracing or https://ui.perfetto.dev.
//
// Cost discipline:
//  * compile time — defining TTP_OBS_DISABLED turns every TTP_TRACE_* /
//    TTP_METRIC_* macro into a no-op (spans become NullSpan, a stateless
//    empty struct);
//  * run time — the default mode is off; every macro checks one relaxed
//    atomic before doing anything else, and a disabled tracer performs no
//    allocation whatsoever (tests/test_obs.cpp pins this down).
//
// Control is environment-driven so every solver, example, and bench gains
// observability with no per-call-site flags:
//
//   TTP_TRACE=off             (default) nothing recorded
//   TTP_TRACE=summary         per-span-name aggregates + metrics on stderr
//                             at exit
//   TTP_TRACE=spans           full span tree + metrics on stderr at exit
//   TTP_TRACE=chrome:<path>   Chrome trace_event JSON written to <path>
//   TTP_TRACE=jsonl:<path>    one JSON object per span written to <path>
//
// Layering: obs depends on nothing in this repository (the step-counter
// hookup is duck-typed), so even ttp_util can link against it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ttp::obs {

enum class TraceMode { kOff = 0, kSummary, kSpans, kChrome, kJsonl };

namespace detail {
/// The process-wide trace mode, readable without constructing the Tracer.
/// kUninit means TTP_TRACE has not been consulted yet; the Tracer's
/// constructor and configure() keep this in sync with the active mode so
/// the disabled fast path is one relaxed load of a constant-initialized
/// atomic — no function call, no static-init guard.
inline constexpr int kTraceModeUninit = -1;
inline constinit std::atomic<int> g_trace_mode{kTraceModeUninit};
/// Cold path: constructs the Tracer (which reads TTP_TRACE) and reports
/// whether tracing came up enabled. Defined in trace.cpp.
bool init_trace_mode() noexcept;
}  // namespace detail

/// True iff tracing is on. The off case — the only one benchmarks care
/// about — costs a single relaxed atomic load and a predictable branch.
inline bool trace_enabled() noexcept {
  const int m = detail::g_trace_mode.load(std::memory_order_relaxed);
  if (m == static_cast<int>(TraceMode::kOff)) return false;
  if (m != detail::kTraceModeUninit) return true;
  return detail::init_trace_mode();
}

struct TraceConfig {
  TraceMode mode = TraceMode::kOff;
  std::string path;  ///< output file for kChrome / kJsonl

  /// Parses a TTP_TRACE value ("off", "summary", "spans", "chrome:<path>",
  /// "jsonl:<path>"). Throws std::invalid_argument for anything else,
  /// including a chrome:/jsonl: with an empty path.
  static TraceConfig parse(std::string_view value);
  /// Reads TTP_TRACE; an unset/empty variable means off, an invalid value
  /// warns once on stderr and falls back to off (never throws).
  static TraceConfig from_env() noexcept;
};

// --- request-scoped trace IDs ----------------------------------------------
//
// A trace ID names one request's journey across threads: the serving layer
// mints one per admitted request (next_trace_id), binds it on whichever
// thread is currently working for that request (TraceBinding), and every
// span begun while a binding is active carries the ID. One ID therefore
// stitches wire -> scheduler -> batch -> kernel spans back together even
// though they run on different threads.

namespace detail {
inline thread_local std::uint64_t t_trace = 0;
}  // namespace detail

/// Never returns 0. IDs are process-unique and well-mixed (splitmix64 over
/// a global counter), so prefixes of the hex spelling already distinguish
/// requests in logs.
std::uint64_t next_trace_id() noexcept;

/// The trace ID bound to this thread (0 = none).
inline std::uint64_t current_trace() noexcept { return detail::t_trace; }

/// 16 lowercase hex chars — the wire/log spelling of a trace ID.
std::string trace_hex(std::uint64_t trace);
/// Parses trace_hex output (with or without a 0x prefix); 0 on garbage.
std::uint64_t trace_from_hex(std::string_view s) noexcept;

/// RAII scope: spans begun on this thread while alive carry `trace`.
/// Nest freely; the previous binding is restored on destruction.
class TraceBinding {
 public:
  explicit TraceBinding(std::uint64_t trace) noexcept
      : prev_(detail::t_trace) {
    detail::t_trace = trace;
  }
  ~TraceBinding() { detail::t_trace = prev_; }
  TraceBinding(const TraceBinding&) = delete;
  TraceBinding& operator=(const TraceBinding&) = delete;

 private:
  std::uint64_t prev_;
};

/// One finished (or still-open) span. Times are nanoseconds relative to the
/// tracer's epoch; step snapshots are the watched counters at entry/exit.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 for roots
  std::uint64_t trace = 0;   ///< Request trace ID bound at begin (0 = none)
  int depth = 0;
  int tid = 0;  ///< small dense thread index, not the OS id
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  bool has_steps = false;
  bool open = true;
  std::uint64_t begin_parallel = 0, begin_routed = 0, begin_ops = 0;
  std::uint64_t end_parallel = 0, end_routed = 0, end_ops = 0;
  std::vector<std::pair<std::string, std::string>> attrs;

  std::int64_t wall_ns() const noexcept { return end_ns - start_ns; }
  std::uint64_t parallel_delta() const noexcept {
    return end_parallel - begin_parallel;
  }
  std::uint64_t routed_delta() const noexcept {
    return end_routed - begin_routed;
  }
  std::uint64_t ops_delta() const noexcept { return end_ops - begin_ops; }
};

/// Collects spans and metrics for the whole process. Configured once from
/// the environment on first use; reconfigurable at runtime (tests do this).
/// All members are thread-safe; the enabled() fast path is one relaxed
/// atomic load.
class Tracer {
 public:
  static Tracer& instance();

  bool enabled() const noexcept { return trace_enabled(); }
  TraceMode mode() const noexcept {
    // The instance exists, so the mode has been initialized (>= 0).
    return static_cast<TraceMode>(
        detail::g_trace_mode.load(std::memory_order_relaxed));
  }

  /// Swaps the configuration and clears all recorded spans and metrics.
  /// Spans still open across a configure() end harmlessly into the void.
  void configure(const TraceConfig& cfg);

  MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Copy of everything recorded so far (finished spans have open=false).
  std::vector<SpanRecord> snapshot() const;

  /// Spans carrying this trace ID, in recording order — the raw material
  /// for a slow-request dump or a TRACE replay.
  std::vector<SpanRecord> snapshot_trace(std::uint64_t trace) const;

  /// Writes the exporters for the current mode (tree/summary to stderr,
  /// chrome/jsonl to the configured file). Called automatically at process
  /// exit for whatever is buffered; idempotent until new spans arrive.
  void flush();

  /// Nanoseconds since the tracer's epoch (steady clock).
  std::int64_t now_ns() const;

  // --- span recording (used by Span; not part of the public surface) -----
  struct StepProbe {
    const std::uint64_t* parallel = nullptr;
    const std::uint64_t* routed = nullptr;
    const std::uint64_t* ops = nullptr;
  };
  std::uint64_t begin_span(std::string_view name, const StepProbe& probe);
  void end_span(std::uint64_t token, const StepProbe& probe);
  void span_attr(std::uint64_t token, std::string_view key,
                 std::string_view value);

  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer();

  // Span tokens pack (generation, index) so spans that outlive a
  // configure() reset cannot touch the new buffer.
  static constexpr int kIndexBits = 40;
  std::uint64_t make_token(std::uint64_t index) const;
  SpanRecord* resolve_token(std::uint64_t token);  // mu_ must be held
  int thread_index();

  static constexpr std::size_t kMaxSpans = std::size_t{1} << 20;

  mutable std::mutex mu_;
  std::string path_;
  std::vector<SpanRecord> spans_;
  MetricsRegistry metrics_;
  std::uint64_t generation_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  int next_tid_ = 0;
  bool dirty_ = false;
  std::chrono::steady_clock::time_point epoch_;
};

/// The process-global tracer.
inline Tracer& tracer() { return Tracer::instance(); }

/// RAII span handle. Constructing while tracing is off stores one null
/// pointer and does nothing else — no allocation, no clock read, and no
/// touch of the Tracer singleton.
class Span {
 public:
  explicit Span(std::string_view name) {
    if (trace_enabled()) start(tracer(), name, Tracer::StepProbe{});
  }
  /// Watches a raw instruction counter (e.g. bvm::Machine::instr_counter());
  /// the delta lands in parallel_delta().
  Span(std::string_view name, const std::uint64_t& instr_counter) {
    if (trace_enabled()) {
      start(tracer(), name,
            Tracer::StepProbe{&instr_counter, nullptr, nullptr});
    }
  }
  /// Watches anything shaped like util::StepCounter (duck-typed so obs does
  /// not depend on util).
  template <typename SC>
    requires requires(const SC& s) {
      s.parallel_steps;
      s.route_steps;
      s.total_ops;
    }
  Span(std::string_view name, const SC& sc) {
    if (trace_enabled()) {
      start(tracer(), name,
            Tracer::StepProbe{&sc.parallel_steps, &sc.route_steps,
                              &sc.total_ops});
    }
  }

  // Explicit-tracer overloads (tests construct spans against tracer()
  // directly; behavior is identical to the name-first constructors).
  Span(Tracer& t, std::string_view name) {
    if (t.enabled()) start(t, name, Tracer::StepProbe{});
  }
  Span(Tracer& t, std::string_view name, const std::uint64_t& instr_counter) {
    if (t.enabled()) {
      start(t, name, Tracer::StepProbe{&instr_counter, nullptr, nullptr});
    }
  }
  template <typename SC>
    requires requires(const SC& s) {
      s.parallel_steps;
      s.route_steps;
      s.total_ops;
    }
  Span(Tracer& t, std::string_view name, const SC& sc) {
    if (t.enabled()) {
      start(t, name,
            Tracer::StepProbe{&sc.parallel_steps, &sc.route_steps,
                              &sc.total_ops});
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { finish(); }

  /// Ends the span early (idempotent; the destructor then does nothing).
  void finish() {
    if (t_ == nullptr) return;
    t_->end_span(token_, probe_);
    t_ = nullptr;
  }

  void attr(std::string_view key, std::string_view value) {
    if (t_ != nullptr) t_->span_attr(token_, key, value);
  }
  void attr(std::string_view key, const char* value) {
    if (t_ != nullptr) t_->span_attr(token_, key, value);
  }
  void attr(std::string_view key, std::int64_t value) {
    if (t_ != nullptr) t_->span_attr(token_, key, std::to_string(value));
  }
  void attr(std::string_view key, std::uint64_t value) {
    if (t_ != nullptr) t_->span_attr(token_, key, std::to_string(value));
  }
  void attr(std::string_view key, int value) {
    attr(key, static_cast<std::int64_t>(value));
  }
  void attr(std::string_view key, unsigned value) {
    attr(key, static_cast<std::uint64_t>(value));
  }
  void attr(std::string_view key, double value) {
    if (t_ != nullptr) t_->span_attr(token_, key, std::to_string(value));
  }

 private:
  void start(Tracer& t, std::string_view name, Tracer::StepProbe probe) {
    t_ = &t;
    probe_ = probe;
    token_ = t.begin_span(name, probe_);
  }

  Tracer* t_ = nullptr;
  std::uint64_t token_ = 0;
  Tracer::StepProbe probe_{};
};

/// Stand-in for Span when TTP_OBS_DISABLED compiles tracing out. Accepts
/// (and ignores) every attr() the real Span does.
struct NullSpan {
  template <typename... A>
  void attr(A&&...) const noexcept {}
  void finish() const noexcept {}
};

}  // namespace ttp::obs

// --- call-site macros -------------------------------------------------------
//
// TTP_TRACE_SPAN(var, "name"[, counter]) declares an RAII span named `var`
// in the current scope; `counter` may be a util::StepCounter (or anything
// with its three fields) or a uint64 instruction counter. Attributes go
// through `var.attr(key, value)`.
//
// TTP_METRIC_ADD / TTP_METRIC_HIST / TTP_METRIC_GAUGE update the global
// registry only when tracing is enabled.

#ifndef TTP_OBS_DISABLED

#define TTP_TRACE_SPAN(var, ...) ::ttp::obs::Span var(__VA_ARGS__)

#define TTP_METRIC_ADD(name, v)                           \
  do {                                                    \
    if (::ttp::obs::trace_enabled()) {                    \
      ::ttp::obs::tracer().metrics().counter(name).add(v); \
    }                                                     \
  } while (0)

#define TTP_METRIC_HIST(name, v)                                \
  do {                                                          \
    if (::ttp::obs::trace_enabled()) {                          \
      ::ttp::obs::tracer().metrics().histogram(name).record(v); \
    }                                                           \
  } while (0)

#define TTP_METRIC_GAUGE(name, v)                          \
  do {                                                     \
    if (::ttp::obs::trace_enabled()) {                     \
      ::ttp::obs::tracer().metrics().gauge(name).set(v);   \
    }                                                      \
  } while (0)

#else  // TTP_OBS_DISABLED

#define TTP_TRACE_SPAN(var, ...) \
  [[maybe_unused]] const ::ttp::obs::NullSpan var {}
#define TTP_METRIC_ADD(name, v) \
  do {                          \
  } while (0)
#define TTP_METRIC_HIST(name, v) \
  do {                           \
  } while (0)
#define TTP_METRIC_GAUGE(name, v) \
  do {                            \
  } while (0)

#endif  // TTP_OBS_DISABLED
