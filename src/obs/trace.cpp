#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <stdexcept>

#include "obs/export.hpp"

namespace ttp::obs {

namespace {

// Per-thread span stack: (token, id, depth) of every open span started by
// this thread, tagged with the tracer generation so a configure() reset
// invalidates stale stacks instead of mis-parenting new spans.
struct ThreadStack {
  std::uint64_t generation = 0;
  std::vector<std::pair<std::uint64_t, int>> open;  // (span id, depth)
};

thread_local ThreadStack t_stack;
thread_local int t_tid = -1;

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Each process mints from its own random region of the counter space.
// Trace IDs travel across processes — ttp_router fans TRACE lookups over
// many backends — so two daemons walking the same sequence would alias
// distinct requests under one ID.
std::uint64_t process_trace_origin() noexcept {
  try {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) | rd();
  } catch (...) {
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
  }
}

}  // namespace

std::uint64_t next_trace_id() noexcept {
  static std::atomic<std::uint64_t> counter{process_trace_origin()};
  const std::uint64_t id =
      splitmix64(counter.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;  // 0 is "no trace"; splitmix64 hits it once ever
}

std::string trace_hex(std::uint64_t trace) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(trace));
  return buf;
}

std::uint64_t trace_from_hex(std::string_view s) noexcept {
  if (s.rfind("0x", 0) == 0 || s.rfind("0X", 0) == 0) s.remove_prefix(2);
  if (s.empty() || s.size() > 16) return 0;
  std::uint64_t v = 0;
  for (const char c : s) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = c - 'A' + 10;
    } else {
      return 0;
    }
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

TraceConfig TraceConfig::parse(std::string_view value) {
  TraceConfig cfg;
  if (value.empty() || value == "off" || value == "none" || value == "0") {
    cfg.mode = TraceMode::kOff;
    return cfg;
  }
  if (value == "summary") {
    cfg.mode = TraceMode::kSummary;
    return cfg;
  }
  if (value == "spans") {
    cfg.mode = TraceMode::kSpans;
    return cfg;
  }
  constexpr std::string_view kChromePrefix = "chrome:";
  constexpr std::string_view kJsonlPrefix = "jsonl:";
  if (value.rfind(kChromePrefix, 0) == 0) {
    cfg.mode = TraceMode::kChrome;
    cfg.path = std::string(value.substr(kChromePrefix.size()));
  } else if (value.rfind(kJsonlPrefix, 0) == 0) {
    cfg.mode = TraceMode::kJsonl;
    cfg.path = std::string(value.substr(kJsonlPrefix.size()));
  } else {
    throw std::invalid_argument(
        "TTP_TRACE: expected off|summary|spans|chrome:<path>|jsonl:<path>, "
        "got '" +
        std::string(value) + "'");
  }
  if (cfg.path.empty()) {
    throw std::invalid_argument("TTP_TRACE: '" + std::string(value) +
                                "' needs a non-empty output path");
  }
  return cfg;
}

TraceConfig TraceConfig::from_env() noexcept {
  const char* v = std::getenv("TTP_TRACE");
  if (v == nullptr) return TraceConfig{};
  try {
    return TraceConfig::parse(v);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ttp-obs: %s (tracing stays off)\n", e.what());
    return TraceConfig{};
  }
}

namespace detail {
bool init_trace_mode() noexcept {
  // Constructing the instance reads TTP_TRACE and publishes the mode.
  Tracer::instance();
  return g_trace_mode.load(std::memory_order_relaxed) !=
         static_cast<int>(TraceMode::kOff);
}
}  // namespace detail

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  const TraceConfig cfg = TraceConfig::from_env();
  path_ = cfg.path;
  detail::g_trace_mode.store(static_cast<int>(cfg.mode),
                             std::memory_order_relaxed);
}

Tracer::~Tracer() { flush(); }

void Tracer::configure(const TraceConfig& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  metrics_.reset();
  ++generation_;
  next_id_ = 1;
  dropped_ = 0;
  dirty_ = false;
  path_ = cfg.path;
  detail::g_trace_mode.store(static_cast<int>(cfg.mode),
                             std::memory_order_relaxed);
}

std::int64_t Tracer::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint64_t Tracer::make_token(std::uint64_t index) const {
  return (generation_ << kIndexBits) | index;
}

SpanRecord* Tracer::resolve_token(std::uint64_t token) {
  if ((token >> kIndexBits) != generation_) return nullptr;
  const std::uint64_t index = token & ((std::uint64_t{1} << kIndexBits) - 1);
  if (index >= spans_.size()) return nullptr;
  return &spans_[static_cast<std::size_t>(index)];
}

int Tracer::thread_index() {
  if (t_tid < 0) t_tid = next_tid_++;  // caller holds mu_
  return t_tid;
}

std::uint64_t Tracer::begin_span(std::string_view name,
                                 const StepProbe& probe) {
  const std::int64_t now = now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    metrics_.counter("obs.dropped_spans").add(1);
    return 0;  // generation 0 never matches: the span becomes a no-op
  }
  if (t_stack.generation != generation_) {
    t_stack.generation = generation_;
    t_stack.open.clear();
  }

  SpanRecord rec;
  rec.id = next_id_++;
  rec.trace = current_trace();
  rec.name.assign(name);
  rec.tid = thread_index();
  rec.start_ns = now;
  if (!t_stack.open.empty()) {
    rec.parent = t_stack.open.back().first;
    rec.depth = t_stack.open.back().second + 1;
  }
  if (probe.parallel != nullptr) {
    rec.has_steps = true;
    rec.begin_parallel = *probe.parallel;
    if (probe.routed != nullptr) rec.begin_routed = *probe.routed;
    if (probe.ops != nullptr) rec.begin_ops = *probe.ops;
  }
  t_stack.open.emplace_back(rec.id, rec.depth);
  spans_.push_back(std::move(rec));
  dirty_ = true;
  return make_token(spans_.size() - 1);
}

void Tracer::end_span(std::uint64_t token, const StepProbe& probe) {
  const std::int64_t now = now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord* rec = resolve_token(token);
  if (rec == nullptr || !rec->open) return;
  rec->open = false;
  rec->end_ns = now;
  if (probe.parallel != nullptr) {
    rec->end_parallel = *probe.parallel;
    if (probe.routed != nullptr) rec->end_routed = *probe.routed;
    if (probe.ops != nullptr) rec->end_ops = *probe.ops;
  }
  if (t_stack.generation == generation_) {
    // Normal case: this span is the top of its thread's stack. Guard
    // against out-of-order destruction anyway (pop down to it).
    while (!t_stack.open.empty() && t_stack.open.back().first >= rec->id) {
      t_stack.open.pop_back();
    }
  }
}

void Tracer::span_attr(std::uint64_t token, std::string_view key,
                       std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord* rec = resolve_token(token);
  if (rec == nullptr) return;
  rec->attrs.emplace_back(std::string(key), std::string(value));
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<SpanRecord> Tracer::snapshot_trace(std::uint64_t trace) const {
  std::vector<SpanRecord> out;
  if (trace == 0) return out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const SpanRecord& s : spans_) {
    if (s.trace == trace) out.push_back(s);
  }
  return out;
}

void Tracer::flush() {
  TraceMode m;
  std::string path;
  std::vector<SpanRecord> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!dirty_) return;
    dirty_ = false;
    m = static_cast<TraceMode>(
        detail::g_trace_mode.load(std::memory_order_relaxed));
    path = path_;
    spans = spans_;
    if (dropped_ > 0) {
      std::fprintf(stderr, "ttp-obs: span buffer full, dropped %llu spans\n",
                   static_cast<unsigned long long>(dropped_));
    }
  }
  switch (m) {
    case TraceMode::kOff:
      break;
    case TraceMode::kSummary:
      std::cerr << "--- ttp-obs summary ---\n";
      write_span_summary(std::cerr, spans);
      if (!metrics_.empty()) {
        std::cerr << "metrics:\n";
        metrics_.print(std::cerr);
      }
      break;
    case TraceMode::kSpans:
      std::cerr << "--- ttp-obs span tree ---\n";
      write_span_tree(std::cerr, spans);
      if (!metrics_.empty()) {
        std::cerr << "metrics:\n";
        metrics_.print(std::cerr);
      }
      break;
    case TraceMode::kChrome: {
      std::ofstream out(path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "ttp-obs: cannot write chrome trace to %s\n",
                     path.c_str());
        return;
      }
      write_chrome_trace(out, spans);
      std::fprintf(stderr,
                   "ttp-obs: wrote chrome trace (%zu spans) to %s — open in "
                   "chrome://tracing or https://ui.perfetto.dev\n",
                   spans.size(), path.c_str());
      break;
    }
    case TraceMode::kJsonl: {
      std::ofstream out(path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "ttp-obs: cannot write jsonl trace to %s\n",
                     path.c_str());
        return;
      }
      write_jsonl(out, spans);
      std::fprintf(stderr, "ttp-obs: wrote %zu span records to %s\n",
                   spans.size(), path.c_str());
      break;
    }
  }
}

}  // namespace ttp::obs
