#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>

namespace ttp::obs {

namespace {

// Children of each span, in recording order (spans_ is append-ordered, so
// a stable pass over the vector preserves begin order within a parent).
std::vector<std::vector<std::size_t>> child_lists(
    const std::vector<SpanRecord>& spans,
    std::vector<std::size_t>* roots) {
  std::map<std::uint64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;
  std::vector<std::vector<std::size_t>> kids(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto it = by_id.find(spans[i].parent);
    if (spans[i].parent != 0 && it != by_id.end()) {
      kids[it->second].push_back(i);
    } else {
      roots->push_back(i);
    }
  }
  return kids;
}

std::string format_ns(std::int64_t ns) {
  char buf[32];
  if (ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%" PRId64 "ns", ns);
  }
  return buf;
}

void print_one(std::ostream& os, const SpanRecord& s, int indent) {
  for (int i = 0; i < indent; ++i) os << "  ";
  os << s.name;
  if (s.trace != 0) os << " trace=" << trace_hex(s.trace);
  for (const auto& [k, v] : s.attrs) os << ' ' << k << '=' << v;
  if (s.open) {
    os << "  [open]";
  } else {
    os << "  wall=" << format_ns(s.wall_ns());
  }
  if (s.has_steps) {
    os << " steps=" << s.parallel_delta();
    if (s.routed_delta() > 0) os << " routed=" << s.routed_delta();
    if (s.ops_delta() > 0) os << " ops=" << s.ops_delta();
  }
  os << '\n';
}

void print_tree(std::ostream& os, const std::vector<SpanRecord>& spans,
                const std::vector<std::vector<std::size_t>>& kids,
                std::size_t i, int indent) {
  print_one(os, spans[i], indent);
  for (std::size_t c : kids[i]) print_tree(os, spans, kids, c, indent + 1);
}

}  // namespace

void write_span_tree(std::ostream& os, const std::vector<SpanRecord>& spans) {
  std::vector<std::size_t> roots;
  const auto kids = child_lists(spans, &roots);
  for (std::size_t r : roots) print_tree(os, spans, kids, r, 0);
}

void write_span_summary(std::ostream& os,
                        const std::vector<SpanRecord>& spans) {
  struct Agg {
    std::uint64_t count = 0;
    std::int64_t wall_ns = 0;
    std::uint64_t parallel = 0, routed = 0, ops = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const SpanRecord& s : spans) {
    if (s.open) continue;
    Agg& a = by_name[s.name];
    ++a.count;
    a.wall_ns += s.wall_ns();
    if (s.has_steps) {
      a.parallel += s.parallel_delta();
      a.routed += s.routed_delta();
      a.ops += s.ops_delta();
    }
  }
  for (const auto& [name, a] : by_name) {
    os << "  " << name << ": n=" << a.count
       << " wall=" << format_ns(a.wall_ns);
    if (a.parallel > 0) os << " steps=" << a.parallel;
    if (a.routed > 0) os << " routed=" << a.routed;
    if (a.ops > 0) os << " ops=" << a.ops;
    os << '\n';
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // Control range (including NUL) and DEL become \u escapes; bytes
        // >= 0x80 pass through untouched, so multi-byte UTF-8 sequences in
        // attrs and instance names survive verbatim.
        if (static_cast<unsigned char>(c) < 0x20 ||
            static_cast<unsigned char>(c) == 0x7F) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_attrs_object(std::ostream& os, const SpanRecord& s) {
  os << '{';
  bool first = true;
  auto field = [&](std::string_view k, std::string_view v, bool quote) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(k) << "\":";
    if (quote) {
      os << '"' << json_escape(v) << '"';
    } else {
      os << v;
    }
  };
  if (s.has_steps) {
    field("parallel_steps", std::to_string(s.parallel_delta()), false);
    field("route_steps", std::to_string(s.routed_delta()), false);
    field("total_ops", std::to_string(s.ops_delta()), false);
  }
  // Hex string, not a JSON number: 64-bit IDs overflow double-backed JSON
  // parsers, and the hex spelling matches the wire's trace= field.
  if (s.trace != 0) field("trace", trace_hex(s.trace), true);
  for (const auto& [k, v] : s.attrs) field(k, v, true);
  os << '}';
}

}  // namespace

void write_jsonl(std::ostream& os, const std::vector<SpanRecord>& spans) {
  for (const SpanRecord& s : spans) {
    os << "{\"name\":\"" << json_escape(s.name) << "\",\"id\":" << s.id
       << ",\"parent\":" << s.parent << ",\"depth\":" << s.depth
       << ",\"tid\":" << s.tid << ",\"start_ns\":" << s.start_ns
       << ",\"end_ns\":" << (s.open ? s.start_ns : s.end_ns)
       << ",\"open\":" << (s.open ? "true" : "false") << ",\"args\":";
    write_attrs_object(os, s);
    os << "}\n";
  }
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanRecord>& spans) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"ttp\"}}";
  char buf[64];
  for (const SpanRecord& s : spans) {
    if (s.open) continue;  // Chrome "X" events need a duration
    os << ",\n";
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(s.start_ns) / 1e3);
    os << "{\"name\":\"" << json_escape(s.name)
       << "\",\"cat\":\"ttp\",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid
       << ",\"ts\":" << buf;
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(s.wall_ns()) / 1e3);
    os << ",\"dur\":" << buf << ",\"args\":";
    write_attrs_object(os, s);
    os << '}';
  }
  os << "]}\n";
}

}  // namespace ttp::obs
