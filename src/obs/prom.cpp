#include "obs/prom.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace ttp::obs {

namespace {

/// %.17g round-trips doubles; integers print without exponent.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

}  // namespace

std::string prom_name(std::string_view name, std::string_view prefix) {
  std::string out(prefix);
  out.reserve(prefix.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  // A leading digit after the prefix is fine (the prefix starts the name),
  // but an empty prefix with a digit-leading name is not valid Prometheus.
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void write_prometheus(std::ostream& os, const MetricsRegistry& reg,
                      std::string_view prefix) {
  // all() / gauges() / visit_histograms are each sorted by name already.
  for (const auto& [name, v] : reg.all()) {
    const std::string p = prom_name(name, prefix);
    os << "# TYPE " << p << "_total counter\n";
    os << p << "_total " << num(v) << '\n';
  }
  for (const auto& [name, v] : reg.gauges()) {
    const std::string p = prom_name(name, prefix);
    os << "# TYPE " << p << " gauge\n";
    os << p << ' ' << num(v) << '\n';
  }
  reg.visit_histograms([&](const std::string& name, const Histogram& h) {
    const std::string p = prom_name(name, prefix);
    os << "# TYPE " << p << " histogram\n";
    std::uint64_t cum = 0;
    const int top = h.count() == 0 ? 0 : Histogram::bucket_of(h.max());
    for (int b = 0; b <= top; ++b) {
      cum += h.bucket_count(b);
      os << p << "_bucket{le=\"" << num(Histogram::bucket_hi(b)) << "\"} "
         << num(cum) << '\n';
    }
    os << p << "_bucket{le=\"+Inf\"} " << num(h.count()) << '\n';
    os << p << "_sum " << num(h.sum()) << '\n';
    os << p << "_count " << num(h.count()) << '\n';
  });
}

void write_prometheus_summary(std::ostream& os, std::string_view name,
                              std::string_view label,
                              const QuantileSnapshot& snap, double scale,
                              bool with_type_header) {
  const std::string p = prom_name(name);
  if (with_type_header) {
    os << "# TYPE " << p << " summary\n";
  }
  const std::string sep = label.empty() ? "" : std::string(label) + ",";
  static constexpr double kQs[] = {0.5, 0.9, 0.99, 0.999};
  static constexpr const char* kQNames[] = {"0.5", "0.9", "0.99", "0.999"};
  for (std::size_t i = 0; i < 4; ++i) {
    os << p << '{' << sep << "quantile=\"" << kQNames[i] << "\"} "
       << num(static_cast<double>(snap.quantile(kQs[i])) * scale) << '\n';
  }
  os << p << "_sum";
  if (!label.empty()) os << '{' << label << '}';
  os << ' ' << num(static_cast<double>(snap.sum()) * scale) << '\n';
  os << p << "_count";
  if (!label.empty()) os << '{' << label << '}';
  os << ' ' << num(snap.count()) << '\n';
}

}  // namespace ttp::obs
