#include "obs/quantiles.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>

namespace ttp::obs {

QuantileSnapshot::QuantileSnapshot() {
  std::memset(buckets_, 0, sizeof(buckets_));
}

std::uint64_t QuantileSnapshot::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the answering sample: at least 1, at most count.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < qdetail::kBucketCount; ++b) {
    cum += buckets_[b];
    if (cum >= rank) {
      // Clamp to the observed extremes so the estimate never leaves the
      // recorded range (matters for the top bucket and q=0/q=1). Applied
      // as two one-sided clamps: a snapshot racing a writer can observe
      // min_ > max_, which std::clamp forbids.
      return std::min(std::max(qdetail::bucket_mid(b), min_), max_);
    }
  }
  return max_;
}

void QuantileSnapshot::merge(const QuantileSnapshot& other) noexcept {
  for (std::size_t b = 0; b < qdetail::kBucketCount; ++b) {
    buckets_[b] += other.buckets_[b];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void QuantileSketch::merge_into(QuantileSnapshot& out) const noexcept {
  for (std::size_t b = 0; b < qdetail::kBucketCount; ++b) {
    out.buckets_[b] += buckets_[b].load(std::memory_order_relaxed);
  }
  out.count_ += count_.load(std::memory_order_relaxed);
  out.sum_ += sum_.load(std::memory_order_relaxed);
  out.min_ = std::min(out.min_, min_.load(std::memory_order_relaxed));
  out.max_ = std::max(out.max_, max_.load(std::memory_order_relaxed));
}

QuantileSnapshot QuantileSketch::snapshot() const {
  QuantileSnapshot s;
  merge_into(s);
  return s;
}

void QuantileSketch::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::uint64_t>::max(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

QuantileSketch& ShardedQuantiles::shard_for_thread() noexcept {
  // A stable per-thread index; hashing the thread id spreads consecutive
  // pool workers across shards.
  static thread_local const std::size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[idx % kShards];
}

QuantileSnapshot ShardedQuantiles::snapshot() const {
  QuantileSnapshot s;
  for (const QuantileSketch& shard : shards_) shard.merge_into(s);
  return s;
}

void ShardedQuantiles::reset() noexcept {
  for (QuantileSketch& shard : shards_) shard.reset();
}

}  // namespace ttp::obs
