#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace ttp::obs {

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::uint64_t>::max(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry(const MetricsRegistry& o) { *this = o; }

MetricsRegistry& MetricsRegistry::operator=(const MetricsRegistry& o) {
  if (this == &o) return *this;
  std::scoped_lock lock(mu_, o.mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  for (const auto& [name, c] : o.counters_) {
    auto fresh = std::make_unique<Counter>();
    fresh->add(c->value());
    counters_.emplace(name, std::move(fresh));
  }
  for (const auto& [name, g] : o.gauges_) {
    auto fresh = std::make_unique<Gauge>();
    fresh->set(g->value());
    gauges_.emplace(name, std::move(fresh));
  }
  for (const auto& [name, h] : o.histograms_) {
    histograms_.emplace(name, std::make_unique<Histogram>(*h));
  }
  return *this;
}

MetricsRegistry::MetricsRegistry(MetricsRegistry&& o) noexcept {
  std::scoped_lock lock(o.mu_);
  counters_ = std::move(o.counters_);
  gauges_ = std::move(o.gauges_);
  histograms_ = std::move(o.histograms_);
}

MetricsRegistry& MetricsRegistry::operator=(MetricsRegistry&& o) noexcept {
  if (this == &o) return *this;
  std::scoped_lock lock(mu_, o.mu_);
  counters_ = std::move(o.counters_);
  gauges_ = std::move(o.gauges_);
  histograms_ = std::move(o.histograms_);
  return *this;
}

template <typename T>
T& MetricsRegistry::intern(Map<T>& m, std::string_view name) {
  if (auto it = m.find(name); it != m.end()) return *it->second;
  auto [it, inserted] =
      m.emplace(std::string(name), std::make_unique<T>());
  (void)inserted;
  return *it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return intern(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return intern(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return intern(histograms_, name);
}

std::uint64_t MetricsRegistry::get(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::all()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(counters_.size());
    for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::vector<std::pair<std::string, double>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void MetricsRegistry::visit_histograms(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  std::vector<std::pair<std::string, const Histogram*>> hs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hs.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) hs.emplace_back(name, h.get());
  }
  std::sort(hs.begin(), hs.end());
  for (const auto& [name, h] : hs) fn(name, *h);
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::print(std::ostream& os, std::string_view indent) const {
  // One merged stream, sorted by name across all three instrument kinds —
  // the dump (and therefore STATS/stats_text) is byte-stable across runs,
  // so smoke tests and operator diffs never chase map-iteration noise.
  std::vector<std::pair<std::string, std::string>> lines;
  for (const auto& [name, v] : all()) {
    lines.emplace_back(name, " = " + std::to_string(v));
  }
  for (const auto& [name, v] : gauges()) {
    std::ostringstream val;
    val << " = " << v;
    lines.emplace_back(name, val.str());
  }
  visit_histograms([&](const std::string& name, const Histogram& h) {
    std::ostringstream val;
    val << ": count=" << h.count() << " sum=" << h.sum();
    if (h.count() > 0) {
      val << " min=" << h.min() << " max=" << h.max();
      val << " buckets[";
      bool first = true;
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        const std::uint64_t n = h.bucket_count(b);
        if (n == 0) continue;
        if (!first) val << ' ';
        first = false;
        val << Histogram::bucket_lo(b) << "..=" << Histogram::bucket_hi(b)
            << ":" << n;
      }
      val << ']';
    }
    lines.emplace_back(name, val.str());
  });
  std::sort(lines.begin(), lines.end());
  for (const auto& [name, rest] : lines) {
    os << indent << name << rest << '\n';
  }
}

}  // namespace ttp::obs
