#include "obs/flight.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

namespace ttp::obs {

namespace {

// FlightRecord <-> 11 uint64 words. Packing by hand (instead of memcpy into
// a byte buffer) keeps every store/load a relaxed atomic word op: no data
// race for TSan to flag, no torn halves within a field.
void pack(const FlightRecord& r, std::uint64_t w[]) noexcept {
  w[0] = r.trace;
  w[1] = r.leader;
  w[2] = r.key_hi;
  w[3] = r.key_lo;
  w[4] = static_cast<std::uint64_t>(r.start_ns);
  w[5] = r.e2e_us;
  w[6] = r.admit_us | (std::uint64_t{r.queue_us} << 32);
  w[7] = r.batch_us | (std::uint64_t{r.solve_us} << 32);
  w[8] = r.respond_us | (std::uint64_t{r.batch_seq} << 32);
  w[9] = r.k | (std::uint64_t{r.actions} << 16) |
         (std::uint64_t{r.outcome} << 32) | (std::uint64_t{r.status} << 40);
  w[10] = r.batch;
}

FlightRecord unpack(const std::uint64_t w[]) noexcept {
  FlightRecord r;
  r.trace = w[0];
  r.leader = w[1];
  r.key_hi = w[2];
  r.key_lo = w[3];
  r.start_ns = static_cast<std::int64_t>(w[4]);
  r.e2e_us = w[5];
  r.admit_us = static_cast<std::uint32_t>(w[6]);
  r.queue_us = static_cast<std::uint32_t>(w[6] >> 32);
  r.batch_us = static_cast<std::uint32_t>(w[7]);
  r.solve_us = static_cast<std::uint32_t>(w[7] >> 32);
  r.respond_us = static_cast<std::uint32_t>(w[8]);
  r.batch_seq = static_cast<std::uint32_t>(w[8] >> 32);
  r.k = static_cast<std::uint16_t>(w[9]);
  r.actions = static_cast<std::uint16_t>(w[9] >> 16);
  r.outcome = static_cast<std::uint8_t>(w[9] >> 32);
  r.status = static_cast<std::uint8_t>(w[9] >> 40);
  r.batch = static_cast<std::uint32_t>(w[10]);
  return r;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) {
  capacity = std::bit_ceil(std::max<std::size_t>(capacity, 8));
  mask_ = capacity - 1;
  slots_ = std::make_unique<Slot[]>(capacity);
}

void FlightRecorder::record(const FlightRecord& rec) noexcept {
  const std::uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[static_cast<std::size_t>(idx) & mask_];
  // Seqlock publish: odd = writing. The sequence encodes which lap of the
  // ring wrote the slot, so a reader that raced a wrap sees a mismatch.
  slot.seq.store(2 * idx + 1, std::memory_order_release);
  std::uint64_t words[kWords];
  pack(rec, words);
  for (std::size_t i = 0; i < kWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(2 * idx + 2, std::memory_order_release);
}

bool FlightRecorder::read_slot(const Slot& slot,
                               FlightRecord& out) const noexcept {
  const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
  if (before == 0 || (before & 1) != 0) return false;  // empty or mid-write
  std::uint64_t words[kWords];
  for (std::size_t i = 0; i < kWords; ++i) {
    words[i] = slot.words[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.seq.load(std::memory_order_relaxed) != before) return false;
  out = unpack(words);
  return true;
}

std::optional<FlightRecord> FlightRecorder::find(
    std::uint64_t trace) const noexcept {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n =
      std::min<std::uint64_t>(head, static_cast<std::uint64_t>(mask_) + 1);
  // Newest first, so a re-submitted trace returns its latest journey.
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t idx = head - 1 - i;
    FlightRecord rec;
    if (read_slot(slots_[static_cast<std::size_t>(idx) & mask_], rec) &&
        rec.trace == trace) {
      return rec;
    }
  }
  return std::nullopt;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n =
      std::min<std::uint64_t>(head, static_cast<std::uint64_t>(mask_) + 1);
  std::vector<FlightRecord> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t idx = head - n; idx < head; ++idx) {
    FlightRecord rec;
    if (read_slot(slots_[static_cast<std::size_t>(idx) & mask_], rec)) {
      out.push_back(rec);
    }
  }
  return out;
}

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace ttp::obs
