// Flight recorder: a lock-free fixed-size ring of compact per-request
// records, always on at near-zero cost.
//
// Every request that passes through the serving layer leaves one
// FlightRecord — trace ID, per-stage latencies, cache outcome, canonical
// key, batch linkage — in a power-of-two ring. When something goes wrong
// in production the last N requests are already captured; the daemon's
// `TRACE <id>` verb replays a record, and the slow-request capture path
// (svc) dumps the matching span tree alongside it.
//
// Concurrency: writers claim a slot with one fetch_add and publish the
// payload word-by-word through relaxed atomics guarded by a per-slot
// seqlock (odd sequence = write in progress). Readers copy the words and
// re-check the sequence; a torn or in-progress slot is simply skipped.
// No mutex anywhere, so a reader scraping the ring never stalls request
// threads — and every access is an atomic op, so TSan stays quiet.
//
// Layering: obs depends on nothing else in the repo, so outcome/status are
// opaque uint8 codes here; the serving layer owns their meaning.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace ttp::obs {

/// One request's compact journey. Durations are microseconds; start_ns is
/// steady-clock nanoseconds (same epoch as steady_now_ns()).
struct FlightRecord {
  std::uint64_t trace = 0;      ///< Request trace ID (never 0 once admitted).
  std::uint64_t leader = 0;     ///< Leader's trace when this request joined
                                ///< an in-flight solve; 0 when it led.
  std::uint64_t key_hi = 0;     ///< Canonical content key.
  std::uint64_t key_lo = 0;
  std::int64_t start_ns = 0;    ///< Admission time (steady clock).
  std::uint64_t e2e_us = 0;     ///< Admission -> response, end to end.
  std::uint32_t admit_us = 0;   ///< Canonicalize + cache lookup.
  std::uint32_t queue_us = 0;   ///< Waiting for the drain thread.
  std::uint32_t batch_us = 0;   ///< Micro-batch formation window.
  std::uint32_t solve_us = 0;   ///< Kernel solve (whole batch).
  std::uint32_t respond_us = 0; ///< Future wake -> response built.
  std::uint16_t k = 0;          ///< Universe size.
  std::uint16_t actions = 0;    ///< Action count.
  std::uint8_t outcome = 0;     ///< svc::CacheOutcome code.
  std::uint8_t status = 0;      ///< svc::Status code.
  std::uint32_t batch = 0;      ///< Instances in the solving batch (0 = none).
  std::uint32_t batch_seq = 0;  ///< Which drain batch solved it (0 = none).
};

class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two, minimum 8.
  explicit FlightRecorder(std::size_t capacity = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Lock-free, wait-free publish; overwrites the oldest record when full.
  void record(const FlightRecord& rec) noexcept;

  /// Most recent consistent record with this trace ID, if still in the ring.
  std::optional<FlightRecord> find(std::uint64_t trace) const noexcept;

  /// All consistent records, oldest first. Slots mid-write are skipped.
  std::vector<FlightRecord> snapshot() const;

  std::size_t capacity() const noexcept { return mask_ + 1; }
  /// Total records ever written (>= capacity means the ring has wrapped).
  std::uint64_t total_recorded() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

 private:
  // FlightRecord packed into relaxed-atomic words (see flight.cpp).
  static constexpr std::size_t kWords = 11;
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< Odd while a write is in flight.
    std::atomic<std::uint64_t> words[kWords]{};
  };

  bool read_slot(const Slot& slot, FlightRecord& out) const noexcept;

  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// Steady-clock nanoseconds since an arbitrary fixed epoch — the shared
/// timebase for FlightRecord stamps across threads.
std::int64_t steady_now_ns() noexcept;

}  // namespace ttp::obs
