// A small fixed-size thread pool with a blocking parallel_for, used by the
// shared-memory TT solver. Work is partitioned into contiguous chunks, one
// per worker, to keep the DP layer loop cache-friendly and deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ttp::util {

class ThreadPool {
 public:
  /// Creates `workers` threads (>=1). 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return threads_.size(); }

  /// Runs fn(begin, end) over [0, n) split into size() contiguous chunks and
  /// blocks until all chunks complete. Chunk boundaries depend only on n and
  /// size(), so any run with the same pool width touches the same ranges.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Task {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop(std::size_t id);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t, std::size_t)>* fn_ = nullptr;
  std::vector<Task> tasks_;
  std::uint64_t epoch_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace ttp::util
