// Saturating unsigned fixed-point values, mirroring the BVM's p-bit
// bit-serial number representation.
//
// The BVM stores a p-bit unsigned integer per PE (one register row per bit).
// INF is the all-ones value and is sticky: INF + x == INF. Host-side solvers
// use the same representation when cross-checking the bit-serial machine so
// the comparison is exact, not within-epsilon.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace ttp::util {

class Fixed {
 public:
  /// A fixed-point system: `bits` total bits, `frac` of them fractional.
  struct Format {
    int bits = 32;
    int frac = 8;

    constexpr std::uint64_t max_raw() const noexcept {
      return bits >= 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << bits) - 1;
    }
    /// INF is the all-ones encoding.
    constexpr std::uint64_t inf_raw() const noexcept { return max_raw(); }
    constexpr double scale() const noexcept {
      return static_cast<double>(std::uint64_t{1} << frac);
    }
  };

  Fixed() = default;
  Fixed(Format fmt, std::uint64_t raw) : fmt_(fmt), raw_(raw & fmt.max_raw()) {}

  static Fixed from_double(Format fmt, double v);
  static Fixed inf(Format fmt) { return Fixed(fmt, fmt.inf_raw()); }
  static Fixed zero(Format fmt) { return Fixed(fmt, 0); }

  std::uint64_t raw() const noexcept { return raw_; }
  Format format() const noexcept { return fmt_; }
  bool is_inf() const noexcept { return raw_ == fmt_.inf_raw(); }
  double to_double() const noexcept {
    return is_inf() ? std::numeric_limits<double>::infinity()
                    : static_cast<double>(raw_) / fmt_.scale();
  }

  /// Saturating add; INF is absorbing. Saturation (overflow) also pins to
  /// INF, matching the BVM microcode's sticky-overflow flag behaviour.
  friend Fixed operator+(const Fixed& a, const Fixed& b);
  friend bool operator<(const Fixed& a, const Fixed& b) noexcept {
    return a.raw_ < b.raw_;
  }
  friend bool operator==(const Fixed& a, const Fixed& b) noexcept {
    return a.raw_ == b.raw_;
  }

  /// raw = round(a_raw * w) where w is a plain real weight; saturates.
  Fixed scaled_by(double w) const;

  std::string to_string() const;

 private:
  Format fmt_{};
  std::uint64_t raw_ = 0;
};

}  // namespace ttp::util
