#include "util/crc32c.hpp"

#include <atomic>
#include <cstring>

namespace ttp::util {

namespace {

// ---------------------------------------------------------------------------
// Table fallback: slicing-by-8 over the reflected polynomial 0x82F63B78.
// The eight tables are built once, lazily, under a local static initializer
// (thread-safe per the standard); ~8 KiB total.

struct Tables {
  std::uint32_t t[8][256];
  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (int slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xffu] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables tbl;
  return tbl;
}

std::uint32_t extend_table(std::uint32_t crc, const void* data,
                           std::size_t len) noexcept {
  const Tables& tbl = tables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  while (len >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = tbl.t[7][lo & 0xffu] ^ tbl.t[6][(lo >> 8) & 0xffu] ^
          tbl.t[5][(lo >> 16) & 0xffu] ^ tbl.t[4][lo >> 24] ^
          tbl.t[3][hi & 0xffu] ^ tbl.t[2][(hi >> 8) & 0xffu] ^
          tbl.t[1][(hi >> 16) & 0xffu] ^ tbl.t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- != 0) {
    crc = tbl.t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

// ---------------------------------------------------------------------------
// SSE4.2 hardware path: the crc32 instruction consumes 8 bytes per issue.
// Only the function below is compiled for sse4.2 (target attribute), so the
// binary stays runnable on any x86-64 — dispatch consults CPUID first.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TTP_CRC32C_HAS_HW 1

__attribute__((target("sse4.2"))) std::uint32_t extend_hw(
    std::uint32_t crc, const void* data, std::size_t len) noexcept {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t crc64 = crc;
  while (len >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    len -= 8;
  }
  std::uint32_t crc32 = static_cast<std::uint32_t>(crc64);
  while (len-- != 0) {
    crc32 = __builtin_ia32_crc32qi(crc32, *p++);
  }
  return crc32;
}

bool cpu_has_sse42() noexcept { return __builtin_cpu_supports("sse4.2"); }
#else
#define TTP_CRC32C_HAS_HW 0
#endif

// ---------------------------------------------------------------------------
// Dispatch: resolved once, then a relaxed atomic load (same discipline as
// the kernel variant dispatch in tt/kernel.cpp).

using ExtendFn = std::uint32_t (*)(std::uint32_t, const void*,
                                   std::size_t) noexcept;

std::atomic<ExtendFn> g_extend{nullptr};

ExtendFn resolve() noexcept {
  ExtendFn fn = extend_table;
#if TTP_CRC32C_HAS_HW
  if (cpu_has_sse42()) fn = extend_hw;
#endif
  g_extend.store(fn, std::memory_order_relaxed);
  return fn;
}

ExtendFn extend_fn() noexcept {
  ExtendFn fn = g_extend.load(std::memory_order_relaxed);
  return fn != nullptr ? fn : resolve();
}

}  // namespace

std::uint32_t crc32c_init() noexcept { return 0xFFFFFFFFu; }

std::uint32_t crc32c_extend(std::uint32_t state, const void* data,
                            std::size_t len) noexcept {
  return extend_fn()(state, data, len);
}

std::uint32_t crc32c_finish(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

std::uint32_t crc32c(const void* data, std::size_t len) noexcept {
  return crc32c_finish(crc32c_extend(crc32c_init(), data, len));
}

bool crc32c_hw_available() noexcept {
#if TTP_CRC32C_HAS_HW
  return cpu_has_sse42();
#else
  return false;
#endif
}

std::string_view crc32c_impl_name() noexcept {
#if TTP_CRC32C_HAS_HW
  if (extend_fn() == extend_hw) return "sse42";
#endif
  return "table";
}

}  // namespace ttp::util
