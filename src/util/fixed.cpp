#include "util/fixed.hpp"

#include <cmath>

namespace ttp::util {

Fixed Fixed::from_double(Format fmt, double v) {
  if (v < 0) throw std::invalid_argument("Fixed::from_double: negative value");
  if (std::isinf(v)) return inf(fmt);
  const double raw = std::round(v * fmt.scale());
  if (raw >= static_cast<double>(fmt.inf_raw())) return inf(fmt);
  return Fixed(fmt, static_cast<std::uint64_t>(raw));
}

Fixed operator+(const Fixed& a, const Fixed& b) {
  if (a.is_inf() || b.is_inf()) return Fixed::inf(a.fmt_);
  const std::uint64_t sum = a.raw_ + b.raw_;
  if (sum >= a.fmt_.inf_raw() || sum < a.raw_) return Fixed::inf(a.fmt_);
  return Fixed(a.fmt_, sum);
}

Fixed Fixed::scaled_by(double w) const {
  if (is_inf()) return *this;
  const double raw = std::round(static_cast<double>(raw_) * w);
  if (raw >= static_cast<double>(fmt_.inf_raw())) return inf(fmt_);
  return Fixed(fmt_, static_cast<std::uint64_t>(raw));
}

std::string Fixed::to_string() const {
  if (is_inf()) return "INF";
  return std::to_string(to_double());
}

}  // namespace ttp::util
