// Deterministic, seedable RNG wrapper used by all instance generators and
// property tests. A thin layer over a fixed-algorithm engine so results are
// reproducible across standard libraries (std::mt19937_64 is fully
// specified; the distributions here are hand-rolled for the same reason).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/bits.hpp"

namespace ttp::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform integer in [lo, hi] inclusive; rejection-sampled for
  /// cross-platform determinism.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// True with probability p.
  bool bernoulli(double p) { return uniform_real(0.0, 1.0) < p; }

  /// Uniform non-empty subset of the given space.
  Mask nonempty_subset(Mask space);

  /// Uniform subset (possibly empty) of the given space.
  Mask subset(Mask space);

  /// Shuffle a vector in place (Fisher-Yates with this engine).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform(0, static_cast<std::uint64_t>(i - 1)));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ttp::util
