// CRC-32C (Castagnoli, polynomial 0x1EDC6F41): the checksum guarding the
// durable procedure store's records (src/store/format.hpp).
//
// Two byte-identical implementations, runtime-dispatched like the DP kernel
// (tt/kernel.hpp): an SSE4.2 hardware path using the crc32 instruction
// (8 bytes per issue) when CPUID reports support, and a slicing-by-8 table
// fallback everywhere else. The first call resolves the dispatch; later
// calls are one relaxed atomic load. Both paths implement the standard
// CRC-32C convention (init 0xFFFFFFFF, reflected, final xor 0xFFFFFFFF), so
// crc32c("123456789") == 0xE3069283 — the iSCSI check value — on every
// host, and a segment written on an SSE4.2 machine verifies on one without.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ttp::util {

/// CRC-32C of `len` bytes at `data` (finalized: init/xorout applied).
std::uint32_t crc32c(const void* data, std::size_t len) noexcept;

inline std::uint32_t crc32c(std::string_view bytes) noexcept {
  return crc32c(bytes.data(), bytes.size());
}

/// Incremental form: feed `crc32c_init()`, then extend over consecutive
/// chunks, then `crc32c_finish()`. crc32c(a+b) ==
/// finish(extend(extend(init(), a), b)) — pinned by tests.
std::uint32_t crc32c_init() noexcept;
std::uint32_t crc32c_extend(std::uint32_t state, const void* data,
                            std::size_t len) noexcept;
std::uint32_t crc32c_finish(std::uint32_t state) noexcept;

/// True when the dispatch resolved to the SSE4.2 instruction path.
bool crc32c_hw_available() noexcept;

/// "sse42" or "table" — what crc32c() currently executes.
std::string_view crc32c_impl_name() noexcept;

}  // namespace ttp::util
