// Aligned plain-text tables for bench output. Every bench binary prints the
// rows the corresponding paper artifact reports (EXPERIMENTS.md E1-E15)
// through this one formatter so outputs stay uniform and diffable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ttp::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with %g-style precision.
  static std::string num(double v, int precision = 6);
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a titled section banner around a table (bench output style).
void print_section(std::ostream& os, const std::string& title);

}  // namespace ttp::util
