// Bit and subset utilities for the test-and-treatment dynamic program.
//
// Subsets of the universe U = {0..k-1} are represented as uint32_t masks
// (k <= 24 enforced at the instance level); the DP iterates subsets in
// layers of equal cardinality using Gosper's hack.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace ttp::util {

using Mask = std::uint32_t;

/// Number of set bits.
constexpr int popcount(Mask m) noexcept { return std::popcount(m); }

/// True if bit `b` is set in `m`.
constexpr bool has_bit(Mask m, int b) noexcept { return (m >> b) & 1u; }

/// Mask with only bit `b` set.
constexpr Mask bit(int b) noexcept { return Mask{1} << b; }

/// Full universe mask for k objects.
constexpr Mask universe(int k) noexcept {
  return k >= 32 ? ~Mask{0} : (Mask{1} << k) - 1;
}

/// Bit `p` of integer `q` (the paper's bit(p,q) helper).
constexpr int bit_of(int p, std::uint64_t q) noexcept {
  return static_cast<int>((q >> p) & 1u);
}

/// Integer with bit `t` of `x` complemented (the paper's x#t operator).
constexpr std::uint64_t flip_bit(std::uint64_t x, int t) noexcept {
  return x ^ (std::uint64_t{1} << t);
}

/// log2 of a power of two.
constexpr int log2_exact(std::uint64_t n) noexcept {
  return std::bit_width(n) - 1;
}

constexpr bool is_pow2(std::uint64_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest q with 2^q >= n (n >= 1).
constexpr int ceil_log2(std::uint64_t n) noexcept {
  return n <= 1 ? 0 : std::bit_width(n - 1);
}

/// Next subset of the same cardinality in lexicographic order (Gosper's
/// hack). Returns 0 when `m` was the last such subset below 2^k.
Mask next_same_popcount(Mask m, int k) noexcept;

/// All subsets of `space` (including empty and full), ascending as ints.
std::vector<Mask> all_subsets(Mask space);

/// All subsets of {0..k-1} with exactly `j` bits, ascending.
std::vector<Mask> layer_subsets(int k, int j);

/// Render a mask as "{a,b,c}" (ascending elements), "{}" if empty.
std::string mask_to_string(Mask m);

/// Render the low `width` bits of `v`, most significant first.
std::string to_binary(std::uint64_t v, int width);

}  // namespace ttp::util
