#include "util/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "obs/trace.hpp"

namespace ttp::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  tasks_.resize(workers);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  TTP_METRIC_ADD("threadpool.parallel_for", 1);
  TTP_METRIC_HIST("threadpool.items", n);
  const std::size_t w = threads_.size();
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t chunk = (n + w - 1) / w;
  std::size_t active = 0;
  for (std::size_t i = 0; i < w; ++i) {
    const std::size_t b = std::min(n, i * chunk);
    const std::size_t e = std::min(n, b + chunk);
    tasks_[i] = {b, e};
    if (b < e) ++active;
  }
  fn_ = &fn;
  pending_ = w;
  ++epoch_;
  TTP_METRIC_ADD("threadpool.tasks", active);
  TTP_METRIC_GAUGE("threadpool.pending", static_cast<double>(w));
  cv_start_.notify_all();
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  fn_ = nullptr;
  TTP_METRIC_GAUGE("threadpool.pending", 0.0);
  (void)active;
}

void ThreadPool::worker_loop(std::size_t id) {
  std::uint64_t seen = 0;
#ifndef TTP_OBS_DISABLED
  const std::string idle_name =
      "threadpool.worker." + std::to_string(id) + ".idle_ns";
#endif
  while (true) {
    Task task;
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
#ifndef TTP_OBS_DISABLED
      const bool timing = obs::trace_enabled();
      const std::int64_t idle_t0 = timing ? obs::tracer().now_ns() : 0;
#endif
      cv_start_.wait(lock, [&] { return stop_ || epoch_ != seen; });
#ifndef TTP_OBS_DISABLED
      if (timing && obs::trace_enabled()) {
        obs::Tracer& tr = obs::tracer();
        tr.metrics().counter(idle_name).add(
            static_cast<std::uint64_t>(tr.now_ns() - idle_t0));
      }
#endif
      if (stop_) return;
      seen = epoch_;
      task = tasks_[id];
      fn = fn_;
    }
    if (task.begin < task.end) (*fn)(task.begin, task.end);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace ttp::util
