#include "util/counters.hpp"

// Counters are header-only at present; this TU anchors the library target
// and will hold aggregation helpers if they grow out-of-line state.
