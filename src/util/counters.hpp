// Deterministic cost accounting shared by the machine simulators and the
// solvers. Every reproduction claim in EXPERIMENTS.md is stated in terms of
// these counters, never wall-clock, because the paper's results are
// step-count results.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace ttp::util {

/// Parallel-machine cost model: `parallel_steps` advances once per
/// machine-wide SIMD step regardless of width; `total_ops` accumulates the
/// number of PE-operations performed (work); `route_steps` counts the subset
/// of parallel steps that moved data between PEs.
struct StepCounter {
  std::uint64_t parallel_steps = 0;
  std::uint64_t route_steps = 0;
  std::uint64_t total_ops = 0;

  void step(std::uint64_t ops, bool routed = false) {
    parallel_steps += 1;
    total_ops += ops;
    if (routed) route_steps += 1;
  }
  void reset() { *this = StepCounter{}; }

  StepCounter& operator+=(const StepCounter& o) {
    parallel_steps += o.parallel_steps;
    route_steps += o.route_steps;
    total_ops += o.total_ops;
    return *this;
  }
};

/// Named counters for ad-hoc breakdowns (per-phase instruction counts etc).
class CounterMap {
 public:
  void add(const std::string& name, std::uint64_t v) { counters_[name] += v; }
  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }
  void reset() { counters_.clear(); }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace ttp::util
