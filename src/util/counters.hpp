// Deterministic cost accounting shared by the machine simulators and the
// solvers. Every reproduction claim in EXPERIMENTS.md is stated in terms of
// these counters, never wall-clock, because the paper's results are
// step-count results.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ttp::util {

/// Parallel-machine cost model: `parallel_steps` advances once per
/// machine-wide SIMD step regardless of width; `total_ops` accumulates the
/// number of PE-operations performed (work); `route_steps` counts the subset
/// of parallel steps that moved data between PEs.
struct StepCounter {
  std::uint64_t parallel_steps = 0;
  std::uint64_t route_steps = 0;
  std::uint64_t total_ops = 0;

  void step(std::uint64_t ops, bool routed = false) {
    parallel_steps += 1;
    total_ops += ops;
    if (routed) route_steps += 1;
  }

  /// Bulk form: charges `steps_count` unrouted parallel steps performing
  /// `ops` PE-operations in total. Equivalent to the matching sequence of
  /// step() calls; used by the layer-wave kernel so per-evaluation
  /// accounting stays out of the hot loop.
  void charge(std::uint64_t steps_count, std::uint64_t ops) {
    parallel_steps += steps_count;
    total_ops += ops;
  }
  void reset() { *this = StepCounter{}; }

  StepCounter& operator+=(const StepCounter& o) {
    parallel_steps += o.parallel_steps;
    route_steps += o.route_steps;
    total_ops += o.total_ops;
    return *this;
  }
};

/// Compatibility shim over obs::MetricsRegistry, kept for call sites that
/// predate the obs layer. add() takes string_view and hashes instead of
/// walking a std::map of owned strings; all() returns a name-sorted
/// snapshot so report output stays deterministic. New code should use
/// obs::MetricsRegistry (counters/gauges/histograms) directly.
class CounterMap {
 public:
  void add(std::string_view name, std::uint64_t v) { reg_.add(name, v); }
  std::uint64_t get(std::string_view name) const { return reg_.get(name); }
  std::vector<std::pair<std::string, std::uint64_t>> all() const {
    return reg_.all();
  }
  void reset() { reg_.reset(); }

 private:
  obs::MetricsRegistry reg_;
};

}  // namespace ttp::util
