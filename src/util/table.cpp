#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ttp::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << " |\n";
  };
  line(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) line(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void print_section(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace ttp::util
