#include "util/rng.hpp"

namespace ttp::util {

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return engine_();  // full range
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t x;
  do {
    x = engine_();
  } while (x >= limit && limit != 0);
  return lo + (x % span);
}

double Rng::uniform_real(double lo, double hi) {
  // 53 high bits -> double in [0,1).
  const double u =
      static_cast<double>(engine_() >> 11) * (1.0 / 9007199254740992.0);
  return lo + u * (hi - lo);
}

Mask Rng::nonempty_subset(Mask space) {
  if (space == 0) return 0;
  Mask s;
  do {
    s = subset(space);
  } while (s == 0);
  return s;
}

Mask Rng::subset(Mask space) {
  return static_cast<Mask>(next_u64()) & space;
}

}  // namespace ttp::util
