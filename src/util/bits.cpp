#include "util/bits.hpp"

namespace ttp::util {

Mask next_same_popcount(Mask m, int k) noexcept {
  if (m == 0) return 0;
  const Mask c = m & (0u - m);  // lowest set bit
  const Mask r = m + c;
  // r wraps to a value below m exactly when m's top run of ones reaches bit
  // width(Mask)-1, i.e. m was the last subset of its popcount in the full
  // 32-bit space; Gosper's formula is meaningless past that point.
  if (r < m) return 0;
  Mask next = (((r ^ m) >> 2) / c) | r;
  // universe(k) instead of (Mask{1} << k): the shift is UB at k == 32.
  if (next > universe(k)) return 0;
  return next;
}

std::vector<Mask> all_subsets(Mask space) {
  std::vector<Mask> out;
  Mask s = 0;
  while (true) {
    out.push_back(s);
    if (s == space) break;
    s = (s - space) & space;  // enumerate sub-masks ascending
  }
  return out;
}

std::vector<Mask> layer_subsets(int k, int j) {
  std::vector<Mask> out;
  if (j == 0) {
    out.push_back(0);
    return out;
  }
  if (j > k) return out;
  // universe(j), not (Mask{1} << j) - 1: the shift is UB at j == 32.
  Mask m = universe(j);
  while (m != 0) {
    out.push_back(m);
    m = next_same_popcount(m, k);
  }
  return out;
}

std::string mask_to_string(Mask m) {
  std::string s = "{";
  bool first = true;
  for (int b = 0; b < 32; ++b) {
    if (has_bit(m, b)) {
      if (!first) s += ',';
      s += std::to_string(b);
      first = false;
    }
  }
  s += '}';
  return s;
}

std::string to_binary(std::uint64_t v, int width) {
  std::string s(static_cast<std::size_t>(width), '0');
  for (int b = 0; b < width; ++b) {
    if ((v >> b) & 1u) s[static_cast<std::size_t>(width - 1 - b)] = '1';
  }
  return s;
}

}  // namespace ttp::util
