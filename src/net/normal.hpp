// Classic "normal algorithms" (Preparata-Vuillemin's term for algorithms
// whose communication is a sequence of ascending/descending dimension runs)
// on any machine exposing ascend_range/descend_range — i.e. both the
// hypercube and the CCC machines. These are the algorithms §3 of the paper
// leans on when it argues that designing in ASCEND/DESCEND form and
// transforming to the CCC "seems to be a reasonable way of designing an
// efficient CCC algorithm".
//
// The element type must carry its fixed hypercube address in a `home`
// member (states physically rotate inside CCC cycles, so pair operands are
// identified by home, not by storage slot).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bits.hpp"

namespace ttp::net {

/// Element for sorting/scan demos: `key` is the payload, `home` the fixed
/// hypercube address (set by init_homes).
struct NormalItem {
  std::uint64_t key = 0;
  std::uint64_t aux = 0;  ///< scan results / carried totals
  std::size_t home = 0;
};

template <typename MachineT>
void init_homes(MachineT& m) {
  for (std::size_t i = 0; i < m.size(); ++i) m.at(i).home = i;
}

/// Batcher's bitonic sorter: m stages, stage s a DESCEND over dims [0, s).
/// Sorts keys ascending by home address. O(log^2 n) dimension runs.
template <typename MachineT>
void bitonic_sort(MachineT& m) {
  const int dims = m.dims();
  for (int s = 1; s <= dims; ++s) {
    m.descend_range(0, s, [s](int, NormalItem& lo, NormalItem& hi) {
      // Block direction: bit s of the (lo) home address; the final stage
      // has that bit always clear -> fully ascending.
      const bool descending = (lo.home >> s) & 1u;
      const bool out_of_order =
          descending ? (lo.key < hi.key) : (lo.key > hi.key);
      if (out_of_order) std::swap(lo.key, hi.key);
    });
  }
}

/// Inclusive prefix sum over home order (aux = Σ_{j<=home} key[j]) in one
/// ASCEND: each element carries (prefix, block-total) and folds its
/// partner's block total into the prefix when it sits in the upper half.
template <typename MachineT>
void prefix_sum(MachineT& m) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.at(i).aux = m.at(i).key;  // prefix := own value
  }
  // key doubles as the running block total during the sweep.
  m.ascend_range(0, m.dims(), [](int d, NormalItem& lo, NormalItem& hi) {
    const std::uint64_t lo_total = lo.key;
    const std::uint64_t hi_total = hi.key;
    hi.aux += lo_total;  // upper half: everything below it includes lo block
    lo.key = hi.key = lo_total + hi_total;
    (void)d;
  });
}

/// bitonic_sort variant that carries `aux` alongside the key.
template <typename MachineT>
void bitonic_sort_with_aux(MachineT& m) {
  const int dims = m.dims();
  for (int s = 1; s <= dims; ++s) {
    m.descend_range(0, s, [s](int, NormalItem& lo, NormalItem& hi) {
      const bool descending = (lo.home >> s) & 1u;
      const bool out_of_order =
          descending ? (lo.key < hi.key) : (lo.key > hi.key);
      if (out_of_order) {
        std::swap(lo.key, hi.key);
        std::swap(lo.aux, hi.aux);
      }
    });
  }
}


/// Nassimi-Sahni concentration at the word level: records whose `aux` is
/// nonzero move, in PE order, to PEs 0..m-1 (aux := their 0-based rank);
/// the rest follow behind with aux = max. Realized as the microcode does
/// it: exclusive prefix count of the flags, then a payload-carrying
/// bitonic route keyed by rank-or-infinity.
template <typename MachineT>
void concentrate(MachineT& m) {
  constexpr std::uint64_t kBack = ~std::uint64_t{0};
  // Stash the payload; scan the flags.
  std::vector<std::uint64_t> payload(m.size());
  std::vector<bool> flagged(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    payload[i] = m.at(i).key;
    flagged[i] = m.at(i).aux != 0;
    m.at(i).key = flagged[i] ? 1 : 0;
  }
  prefix_sum(m);  // aux = inclusive count of flags at or before each PE
  // Route key: exclusive rank for flagged records, "infinity" otherwise.
  for (std::size_t i = 0; i < m.size(); ++i) {
    NormalItem& it = m.at(i);
    it.key = flagged[i] ? it.aux - 1 : kBack;
    it.aux = payload[i];  // payload rides in aux through the sort
  }
  bitonic_sort_with_aux(m);
  // Unpack: key <- payload, aux <- rank (kBack for the unflagged tail).
  for (std::size_t i = 0; i < m.size(); ++i) {
    NormalItem& it = m.at(i);
    const std::uint64_t rank = it.key;
    it.key = it.aux;
    it.aux = rank;
  }
}

}  // namespace ttp::net
