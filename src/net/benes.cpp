#include "net/benes.hpp"

#include <stdexcept>

#include "util/bits.hpp"

namespace ttp::net {

namespace {

// Waksman's looping algorithm, one recursion level.
//
// `perm` is local over dims l..m-1 (local bit 0 <-> dim l); the element at
// global position base + (i << l) must reach base + (perm[i] << l). The
// level's switches pair local indices (i, i^1) on both the input and the
// output side; the looping 2-coloring sends each pair's two elements into
// different half-size subnetworks.
void solve(int l, std::size_t base, const std::vector<std::size_t>& perm,
           BenesProgram& prog) {
  const std::size_t n = perm.size();
  const int m = prog.dims;

  if (n == 2) {
    // Base case: the middle stage, a single switch along dim l == m-1.
    const bool swap = perm[0] == 1;
    prog.stages[static_cast<std::size_t>(m - 1)][base] = swap;
    prog.stages[static_cast<std::size_t>(m - 1)]
               [base + (std::size_t{1} << l)] = swap;
    return;
  }

  // Subnet of each input element (by local index) and of each output slot.
  std::vector<int> in_sub(n, -1);
  std::vector<std::size_t> inv(n);
  for (std::size_t i = 0; i < n; ++i) inv[perm[i]] = i;

  for (std::size_t seed = 0; seed < n; ++seed) {
    if (in_sub[seed] >= 0) continue;
    // Walk the constraint loop: input pairs alternate subnets, and the two
    // elements landing on an output pair must come from different subnets.
    std::size_t cur = seed;
    int sub = 0;
    while (in_sub[cur] < 0) {
      in_sub[cur] = sub;
      // Input-pair partner takes the opposite subnet.
      const std::size_t partner = cur ^ 1u;
      if (in_sub[partner] >= 0) break;  // loop closed
      in_sub[partner] = 1 - sub;
      // The output pair that `partner` lands on forces the source of its
      // other slot into subnet `sub` again.
      const std::size_t other_dst = perm[partner] ^ 1u;
      cur = inv[other_dst];
      sub = in_sub[partner] ^ 1;  // == sub
    }
  }

  // Record the switch settings: input stage s = l, output stage 2m-2-l.
  const std::size_t s_in = static_cast<std::size_t>(l);
  const std::size_t s_out = static_cast<std::size_t>(2 * m - 2 - l);
  std::vector<std::size_t> sub_perm[2];
  sub_perm[0].resize(n / 2);
  sub_perm[1].resize(n / 2);
  for (std::size_t i = 0; i < n; i += 2) {
    // Element i enters subnet (0 ^ swap) => swap = in_sub[i].
    const bool inswap = in_sub[i] == 1;
    const std::size_t g0 = base + (i << l);
    const std::size_t g1 = base + ((i + 1) << l);
    prog.stages[s_in][g0] = inswap;
    prog.stages[s_in][g1] = inswap;
  }
  for (std::size_t j = 0; j < n; j += 2) {
    // Output slot j is fed from subnet in_sub[inv[j]]; the switch swaps
    // when the even slot is fed from subnet 1.
    const bool outswap = in_sub[inv[j]] == 1;
    const std::size_t g0 = base + (j << l);
    const std::size_t g1 = base + ((j + 1) << l);
    prog.stages[s_out][g0] = outswap;
    prog.stages[s_out][g1] = outswap;
  }
  for (std::size_t i = 0; i < n; ++i) {
    sub_perm[in_sub[i]][i >> 1] = perm[i] >> 1;
  }

  solve(l + 1, base, sub_perm[0], prog);
  solve(l + 1, base + (std::size_t{1} << l), sub_perm[1], prog);
}

}  // namespace

BenesProgram benes_route(const std::vector<std::size_t>& perm) {
  const std::size_t n = perm.size();
  if (n < 2 || !util::is_pow2(n)) {
    throw std::invalid_argument("benes_route: size must be a power of two");
  }
  std::vector<char> seen(n, 0);
  for (std::size_t v : perm) {
    if (v >= n || seen[v]) {
      throw std::invalid_argument("benes_route: not a permutation");
    }
    seen[v] = 1;
  }
  BenesProgram prog;
  prog.dims = util::log2_exact(n);
  prog.stages.assign(static_cast<std::size_t>(2 * prog.dims - 1),
                     std::vector<bool>(n, false));
  solve(0, 0, perm, prog);
  return prog;
}

std::uint64_t benes_ctrl_word(const BenesProgram& prog, std::size_t pe) {
  std::uint64_t w = 0;
  for (int s = 0; s < prog.num_stages(); ++s) {
    if (prog.stages[static_cast<std::size_t>(s)][pe]) {
      w |= std::uint64_t{1} << s;
    }
  }
  return w;
}

}  // namespace ttp::net
