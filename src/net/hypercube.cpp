#include "net/hypercube.hpp"

// HypercubeMachine is a class template; this TU anchors the library target
// and hosts nothing else. Topology arithmetic is constexpr in the header.
