// The paper's §4 dataflow algorithms at the hypercube level — broadcasting
// and the two kinds of propagation — with optional event logging so benches
// can regenerate the paper's Fig. 6 schedule verbatim.
//
// These are "control-bit" algorithms: a SENDER flag travels with the data
// and is how a PE learns, on the fly, that it has become a legal sender —
// the paper's answer to the PE-allocation problem (no PE initially knows
// which i-PE group it belongs to).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/hypercube.hpp"

namespace ttp::net {

/// One data movement `from -> to` during dimension step `dim`.
struct SendEvent {
  int dim = 0;
  std::size_t from = 0;
  std::size_t to = 0;
};

using EventLog = std::vector<SendEvent>;

/// Per-PE payload for the §4 algorithms. `value` is opaque to the schedule;
/// `sender` is the control bit; `received` records that this PE acquired
/// data in the current propagation1 round (the membership signal).
struct FlowState {
  std::uint64_t value = 0;
  bool sender = false;
  bool received = false;
};

/// §4.3 Broadcasting(): broadcasts PE `source`'s value to all 2^m PEs in m
/// ASCEND steps. Receivers adopt both value and sender bit.
void broadcast(HypercubeMachine<FlowState>& m, std::size_t source,
               EventLog* log = nullptr);

/// §4.4 Propagation1(): one round moves data from the current sender set to
/// PEs one popcount level up (PE j receives from PE l iff l ⊂ j, |j|=|l|+1).
/// Receivers COMBINE (bitwise-or by default) incoming data but do NOT become
/// senders; after the round, exactly the (level+1)-group holds combined data.
/// `promote_receivers` then turns the receivers into the new sender set —
/// calling the round `k` times walks data from the 0-group to the k-group.
void propagation1_round(
    HypercubeMachine<FlowState>& m, EventLog* log = nullptr,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& combine =
        nullptr);

/// Marks every PE that received during the last propagation1 round (i.e. any
/// non-sender whose value is nonzero) as a sender, clearing the old senders.
/// This is the paper's "PE in the (N+1)-group learns its membership from the
/// fact that the sender was in the N-group" mechanism.
void propagation1_promote(HypercubeMachine<FlowState>& m);

/// §4.4 Propagation2(): data flows from the current sender set to ALL
/// supersets in one ASCEND sweep (receivers become senders immediately and
/// COMBINE with logical or).
void propagation2(
    HypercubeMachine<FlowState>& m, EventLog* log = nullptr,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& combine =
        nullptr);

/// Formats an event log the way the paper's Fig. 6 lists it: one line per
/// dimension step, entries "from -> to" in address order, binary addresses.
std::string format_events_fig6(const EventLog& log, int dims);

}  // namespace ttp::net
