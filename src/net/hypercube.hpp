// Word-level hypercube PE-array simulator and the ASCEND/DESCEND engine
// (paper §3; Preparata-Vuillemin normal algorithms).
//
// An algorithm is in ASCEND form if it is a sequence of pairwise operations
// on PEs whose addresses differ in bit 0, then bit 1, ..., then bit m-1
// (DESCEND: the reverse order). The engine applies a caller-supplied op once
// per pair per dimension and charges one routed parallel step per dimension,
// which is the hypercube's native cost (each PE owns a link per dimension).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "util/bits.hpp"
#include "util/counters.hpp"

namespace ttp::net {

/// Pure topology helper for tests and link-count claims (n·log n / 2 links
/// for the hypercube vs 3n/2 for the CCC, paper §3).
struct HypercubeTopology {
  int dims = 0;

  std::size_t size() const noexcept { return std::size_t{1} << dims; }
  std::size_t links() const noexcept { return size() * static_cast<std::size_t>(dims) / 2; }
  std::size_t neighbor(std::size_t pe, int d) const noexcept {
    return pe ^ (std::size_t{1} << d);
  }
};

template <typename State>
class HypercubeMachine {
 public:
  explicit HypercubeMachine(int dims, State init = State{})
      : dims_(dims), pe_(std::size_t{1} << dims, init) {}

  int dims() const noexcept { return dims_; }
  std::size_t size() const noexcept { return pe_.size(); }
  State& at(std::size_t i) { return pe_.at(i); }
  const State& at(std::size_t i) const { return pe_.at(i); }

  const util::StepCounter& steps() const noexcept { return steps_; }
  void reset_steps() { steps_.reset(); }

  /// One communication step along dimension d. `op(d, lo, hi)` is invoked
  /// once per PE pair, `lo` being the PE whose address has bit d clear.
  template <typename Op>
  void dim_step(int d, Op&& op) {
    TTP_TRACE_SPAN(dim_span, "hc.dim", steps_);
    dim_span.attr("d", d);
    TTP_METRIC_ADD("net.hypercube.dim_steps", 1);
    const std::size_t bitmask = std::size_t{1} << d;
    for (std::size_t p = 0; p < pe_.size(); ++p) {
      if (p & bitmask) continue;
      op(d, pe_[p], pe_[p | bitmask]);
    }
    steps_.step(pe_.size(), /*routed=*/true);
  }

  /// Dimensions 0..m-1 in ascending order.
  template <typename Op>
  void ascend(Op&& op) {
    for (int d = 0; d < dims_; ++d) dim_step(d, op);
  }

  /// Dimensions m-1..0.
  template <typename Op>
  void descend(Op&& op) {
    for (int d = dims_ - 1; d >= 0; --d) dim_step(d, op);
  }

  /// Ascending run over dims [lo_dim, hi_dim).
  template <typename Op>
  void ascend_range(int lo_dim, int hi_dim, Op&& op) {
    for (int d = lo_dim; d < hi_dim; ++d) dim_step(d, op);
  }

  /// Descending run over dims [lo_dim, hi_dim).
  template <typename Op>
  void descend_range(int lo_dim, int hi_dim, Op&& op) {
    for (int d = hi_dim - 1; d >= lo_dim; --d) dim_step(d, op);
  }

  /// One local (no communication) parallel step: f(pe_index, state).
  template <typename F>
  void local_step(F&& f) {
    TTP_METRIC_ADD("net.hypercube.local_steps", 1);
    for (std::size_t p = 0; p < pe_.size(); ++p) f(p, pe_[p]);
    steps_.step(pe_.size(), /*routed=*/false);
  }

 private:
  int dims_;
  std::vector<State> pe_;
  util::StepCounter steps_;
};

}  // namespace ttp::net
