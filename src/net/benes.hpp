// Benes permutation routing (paper §2: "since the BVM communication
// network resembles the Benes permutation network, it can accomplish any
// permutation within O(log n) time if the control bits are precalculated").
//
// A Benes network on 2^m elements is 2m-1 stages of 2x2 switches; stage s
// pairs elements along hypercube dimension
//     dim(s) = s        for s < m       (ascending half)
//     dim(s) = 2m-2-s   for s >= m      (descending half)
// The Waksman looping algorithm precalculates one control bit per switch
// such that applying the conditional swaps stage by stage realizes ANY
// permutation. On the machines both halves are normal (ascending /
// descending) dimension runs, so the CCC executes them with its pipelined
// waves — O(log n) parallel steps, the paper's claim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/normal.hpp"

namespace ttp::net {

struct BenesProgram {
  int dims = 0;
  /// stages[s][pe]: swap control of the switch containing pe at stage s
  /// (replicated at both pair members). stages.size() == 2*dims - 1.
  std::vector<std::vector<bool>> stages;

  int num_stages() const { return static_cast<int>(stages.size()); }
  /// Hypercube dimension exercised by stage s.
  int dim_of(int s) const { return s < dims ? s : 2 * dims - 2 - s; }
};

/// Precalculates control bits for `perm` (perm[src] = dst, a permutation of
/// 0..2^m-1). Throws std::invalid_argument if perm is not a permutation of
/// a power-of-two domain.
BenesProgram benes_route(const std::vector<std::size_t>& perm);

/// Packs an item's control bits across all stages into one word (bit s =
/// the control of pe's switch at stage s) — what travels with the item on
/// machines whose data physically moves (the CCC).
std::uint64_t benes_ctrl_word(const BenesProgram& prog, std::size_t pe);

/// Applies the program on any machine exposing ascend_range/descend_range
/// over NormalItem states: key fields are permuted so that afterwards
/// at(perm[src]).key == original at(src).key. aux is clobbered (it carries
/// the control word). Requires init_homes() state.
template <typename MachineT>
void benes_apply(MachineT& m, const BenesProgram& prog) {
  for (std::size_t pe = 0; pe < m.size(); ++pe) {
    m.at(pe).aux = benes_ctrl_word(prog, pe);
  }
  const int dims = prog.dims;
  // Ascending half: stages 0..m-1 are dims 0..m-1.
  m.ascend_range(0, dims, [&](int d, NormalItem& lo, NormalItem& hi) {
    if ((lo.aux >> d) & 1u) std::swap(lo.key, hi.key);
  });
  // Descending half: stages m..2m-2 are dims m-2..0.
  m.descend_range(0, dims - 1, [&](int d, NormalItem& lo, NormalItem& hi) {
    const int stage = 2 * dims - 2 - d;
    if ((lo.aux >> stage) & 1u) std::swap(lo.key, hi.key);
  });
}

}  // namespace ttp::net
