#include "net/schedule.hpp"

#include <sstream>

namespace ttp::net {

namespace {

std::uint64_t or_combine(std::uint64_t a, std::uint64_t b) { return a | b; }

}  // namespace

void broadcast(HypercubeMachine<FlowState>& m, std::size_t source,
               EventLog* log) {
  for (std::size_t p = 0; p < m.size(); ++p) {
    m.at(p).sender = (p == source);
  }
  // Addresses of lo/hi are reconstructed per pair for logging.
  for (int d = 0; d < m.dims(); ++d) {
    std::size_t pair_index = 0;
    m.dim_step(d, [&](int dim, FlowState& lo, FlowState& hi) {
      // Recover the lo address: pair_index enumerates PEs with bit d clear
      // in ascending order.
      std::size_t a = pair_index++;
      const std::size_t low_mask = (std::size_t{1} << dim) - 1;
      const std::size_t lo_addr = ((a & ~low_mask) << 1) | (a & low_mask);
      const std::size_t hi_addr = lo_addr | (std::size_t{1} << dim);
      if (lo.sender && !hi.sender) {
        hi.value = lo.value;
        hi.sender = true;
        if (log) log->push_back({dim, lo_addr, hi_addr});
      } else if (hi.sender && !lo.sender) {
        lo.value = hi.value;
        lo.sender = true;
        if (log) log->push_back({dim, hi_addr, lo_addr});
      }
    });
  }
}

void propagation1_round(
    HypercubeMachine<FlowState>& m, EventLog* log,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& combine) {
  const auto comb = combine ? combine
                            : std::function<std::uint64_t(std::uint64_t,
                                                          std::uint64_t)>(
                                  or_combine);
  for (int d = 0; d < m.dims(); ++d) {
    std::size_t pair_index = 0;
    m.dim_step(d, [&](int dim, FlowState& lo, FlowState& hi) {
      std::size_t a = pair_index++;
      const std::size_t low_mask = (std::size_t{1} << dim) - 1;
      const std::size_t lo_addr = ((a & ~low_mask) << 1) | (a & low_mask);
      const std::size_t hi_addr = lo_addr | (std::size_t{1} << dim);
      // Only the 1-end of the link receives; only senders transmit. A sender
      // never receives in the same round (its subset would need equal
      // popcount), so values read here are this round's inputs.
      if (lo.sender) {
        hi.value = comb(hi.value, lo.value);
        hi.received = true;
        if (log) log->push_back({dim, lo_addr, hi_addr});
      }
    });
  }
}

void propagation1_promote(HypercubeMachine<FlowState>& m) {
  for (std::size_t p = 0; p < m.size(); ++p) {
    FlowState& s = m.at(p);
    s.sender = s.received;
    s.received = false;
  }
}

void propagation2(
    HypercubeMachine<FlowState>& m, EventLog* log,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& combine) {
  const auto comb = combine ? combine
                            : std::function<std::uint64_t(std::uint64_t,
                                                          std::uint64_t)>(
                                  or_combine);
  for (int d = 0; d < m.dims(); ++d) {
    std::size_t pair_index = 0;
    m.dim_step(d, [&](int dim, FlowState& lo, FlowState& hi) {
      std::size_t a = pair_index++;
      const std::size_t low_mask = (std::size_t{1} << dim) - 1;
      const std::size_t lo_addr = ((a & ~low_mask) << 1) | (a & low_mask);
      const std::size_t hi_addr = lo_addr | (std::size_t{1} << dim);
      if (lo.sender) {
        hi.value = comb(hi.value, lo.value);
        hi.sender = true;  // receiver becomes a legal sender immediately
        if (log) log->push_back({dim, lo_addr, hi_addr});
      }
    });
  }
}

std::string format_events_fig6(const EventLog& log, int dims) {
  std::ostringstream os;
  for (int d = 0; d < dims; ++d) {
    os << d + 1 << ".";
    bool first = true;
    for (const auto& e : log) {
      if (e.dim != d) continue;
      os << (first ? " " : ", ") << util::to_binary(e.from, dims) << " -> "
         << util::to_binary(e.to, dims);
      first = false;
    }
    if (first) os << " (none)";
    os << "\n";
  }
  return os.str();
}

}  // namespace ttp::net
