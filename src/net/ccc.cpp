#include "net/ccc.hpp"

// CccMachine is a class template; this TU anchors the library target.
