// Word-level cube-connected-cycles simulator (paper §2-§3).
//
// Topology: cycles of length Q = 2^r; 2^h cycles (1 <= h <= Q). PE address
// is cycle‖position (h + r bits). Within a cycle PE (i,j) links to its
// successor (i, j+1 mod Q) and predecessor; positions j < h additionally
// carry a lateral link to (i xor 2^j, j). h == Q is the paper's complete
// CCC (the BVM); h < Q is Preparata-Vuillemin padding that admits more
// machine sizes. Link count is n (cycle links) + n·h/(2Q) lateral pairs,
// i.e. ~3n/2 for the complete CCC — the paper's headline connection count.
//
// The machine executes hypercube ASCEND/DESCEND algorithms two ways:
//   * ascend_unpipelined: each high dimension costs a full cycle rotation;
//   * ascend (pipelined): all high dimensions share one 2Q-step rotation
//     wave, the Preparata-Vuillemin scheme the paper relies on (§3: a
//     constant slowdown of 4-6 versus the hypercube).
// Both are link-faithful: data moves only along cycle or lateral links, and
// the step counter charges one parallel step per machine-wide move/op wave.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/trace.hpp"
#include "util/bits.hpp"
#include "util/counters.hpp"

namespace ttp::net {

struct CccConfig {
  int r = 2;  ///< log2 of the cycle length.
  int h = 4;  ///< number of lateral (cycle-number) dimensions, 1 <= h <= Q.

  int cycle_len() const noexcept { return 1 << r; }
  int dims() const noexcept { return r + h; }                 // hypercube dims
  std::size_t num_cycles() const noexcept { return std::size_t{1} << h; }
  std::size_t size() const noexcept { return std::size_t{1} << dims(); }
  /// Complete CCC per the paper: every position has a lateral link.
  static CccConfig complete(int r) { return CccConfig{r, 1 << r}; }

  void check() const {
    if (r < 1 || h < 1 || h > cycle_len() || dims() > 26) {
      throw std::invalid_argument("CccConfig: invalid r/h");
    }
  }
  /// Undirected link count: one succ link per PE (n) plus one lateral pair
  /// per two PEs at positions < h.
  std::size_t links() const noexcept {
    const std::size_t lateral =
        num_cycles() * static_cast<std::size_t>(h) / 2;
    // A 2-cycle (Q=2) collapses succ and pred into one physical link.
    const std::size_t ring = cycle_len() == 2 ? size() / 2 : size();
    return ring + lateral;
  }
};

template <typename State>
class CccMachine {
 public:
  explicit CccMachine(CccConfig cfg, State init = State{})
      : cfg_(cfg), pe_(cfg.size(), init), origin_(cfg.size()) {
    cfg_.check();
    reset_origins();
  }

  const CccConfig& config() const noexcept { return cfg_; }
  std::size_t size() const noexcept { return pe_.size(); }
  int dims() const noexcept { return cfg_.dims(); }

  /// Addressing helpers: address = cycle * Q + pos.
  std::size_t addr(std::size_t cycle, int pos) const noexcept {
    return cycle * static_cast<std::size_t>(cfg_.cycle_len()) +
           static_cast<std::size_t>(pos);
  }
  State& at(std::size_t i) { return pe_.at(i); }
  const State& at(std::size_t i) const { return pe_.at(i); }

  const util::StepCounter& steps() const noexcept { return steps_; }
  void reset_steps() { steps_.reset(); }

  /// Full hypercube ASCEND via the pipelined schedule (dims 0..r-1 in-cycle,
  /// then all h lateral dims on one rotation wave).
  template <typename Op>
  void ascend(Op&& op) {
    for (int b = 0; b < cfg_.r; ++b) low_dim_exchange(b, op);
    high_dims_pipelined_ascend(op);
  }

  /// Full hypercube DESCEND (lateral dims h-1..0 on a backward rotation
  /// wave, then in-cycle dims r-1..0).
  template <typename Op>
  void descend(Op&& op) {
    high_dims_pipelined_descend(op);
    for (int b = cfg_.r - 1; b >= 0; --b) low_dim_exchange(b, op);
  }

  /// ASCEND restricted to hypercube dims [lo_dim, hi_dim). In-cycle dims in
  /// range are exchanged individually; if the range reaches any lateral dim
  /// a full pipelined wave runs with the op gated to the range (the wave is
  /// the machine's atom of lateral communication, so its cost is charged in
  /// full). Used by the TT solver, whose layers are two ascending segments.
  template <typename Op>
  void ascend_range(int lo_dim, int hi_dim, Op&& op) {
    for (int b = std::max(0, lo_dim); b < std::min(cfg_.r, hi_dim); ++b) {
      low_dim_exchange(b, op);
    }
    if (hi_dim > cfg_.r) {
      auto gated = [&](int dim, State& x, State& y) {
        if (dim >= lo_dim && dim < hi_dim) op(dim, x, y);
      };
      high_dims_pipelined_ascend(gated);
    }
  }

  /// DESCEND restricted to hypercube dims [lo_dim, hi_dim): the gated
  /// pipelined backward wave for any lateral dims in range, then the
  /// in-cycle dims downward.
  template <typename Op>
  void descend_range(int lo_dim, int hi_dim, Op&& op) {
    if (hi_dim > cfg_.r) {
      auto gated = [&](int dim, State& x, State& y) {
        if (dim >= lo_dim && dim < hi_dim) op(dim, x, y);
      };
      high_dims_pipelined_descend(gated);
    }
    for (int b = std::min(cfg_.r, hi_dim) - 1; b >= std::max(0, lo_dim); --b) {
      low_dim_exchange(b, op);
    }
  }

  /// Naive variant: each lateral dimension pays its own full rotation.
  template <typename Op>
  void ascend_unpipelined(Op&& op) {
    for (int b = 0; b < cfg_.r; ++b) low_dim_exchange(b, op);
    for (int q = 0; q < cfg_.h; ++q) high_dim_exchange_rotating(q, op);
  }

  /// One local parallel step: f(pe_address, state).
  template <typename F>
  void local_step(F&& f) {
    TTP_METRIC_ADD("net.ccc.local_steps", 1);
    for (std::size_t p = 0; p < pe_.size(); ++p) f(p, pe_[p]);
    steps_.step(pe_.size(), /*routed=*/false);
  }

  /// In-cycle exchange along position-bit b (hypercube dim b < r): two
  /// counter-rotating copies travel 2^b hops (the CCC "lowsheaf" shuffle),
  /// then each PE combines with its partner's value.
  template <typename Op>
  void low_dim_exchange(int b, Op&& op) {
    TTP_TRACE_SPAN(x_span, "ccc.exchange.low", steps_);
    x_span.attr("dim", b);
    TTP_METRIC_ADD("net.ccc.low_exchanges", 1);
    const int Q = cfg_.cycle_len();
    const int hop = 1 << b;
    // Physically the exchange is two counter-rotating waves of `hop` hops
    // (lo→hi values ride succ links while hi→lo values ride pred links in
    // the same steps). We move one wave and compute both sides centrally;
    // the step cost charges both directions.
    std::vector<State> bwd = pe_;  // will appear shifted -hop
    for (int s = 0; s < hop; ++s) {
      rotate_copy(bwd, -1);
      steps_.step(2 * pe_.size(), /*routed=*/true);
    }
    for (std::size_t c = 0; c < cfg_.num_cycles(); ++c) {
      for (int p = 0; p < Q; ++p) {
        if (p & hop) continue;
        const std::size_t lo = addr(c, p);
        op(b, pe_[lo], bwd[lo]);          // partner p+hop arrived in bwd
        pe_[addr(c, p + hop)] = bwd[lo];  // hi PE computed symmetrically:
      }
    }
    // Each pair is combined once through op (lo side); the hi result is the
    // mirrored state op produced, written back above.
    steps_.step(pe_.size(), /*routed=*/false);
  }

 private:
  // Rotate a detached copy of all cycles by one hop (dir=+1: value of
  // predecessor arrives, i.e. contents move toward higher positions).
  void rotate_copy(std::vector<State>& v, int dir) const {
    const int Q = cfg_.cycle_len();
    for (std::size_t c = 0; c < cfg_.num_cycles(); ++c) {
      const std::size_t base = addr(c, 0);
      if (dir > 0) {
        State last = v[base + static_cast<std::size_t>(Q - 1)];
        for (int p = Q - 1; p > 0; --p) {
          v[base + static_cast<std::size_t>(p)] =
              v[base + static_cast<std::size_t>(p - 1)];
        }
        v[base] = last;
      } else {
        State first = v[base];
        for (int p = 0; p + 1 < Q; ++p) {
          v[base + static_cast<std::size_t>(p)] =
              v[base + static_cast<std::size_t>(p + 1)];
        }
        v[base + static_cast<std::size_t>(Q - 1)] = first;
      }
    }
  }

  void rotate_data(int dir) {
    rotate_copy(pe_, dir);
    rotate_origin(dir);
    steps_.step(pe_.size(), /*routed=*/true);
  }

  void rotate_origin(int dir) {
    const int Q = cfg_.cycle_len();
    for (std::size_t c = 0; c < cfg_.num_cycles(); ++c) {
      const std::size_t base = addr(c, 0);
      if (dir > 0) {
        int last = origin_[base + static_cast<std::size_t>(Q - 1)];
        for (int p = Q - 1; p > 0; --p) {
          origin_[base + static_cast<std::size_t>(p)] =
              origin_[base + static_cast<std::size_t>(p - 1)];
        }
        origin_[base] = last;
      } else {
        int first = origin_[base];
        for (int p = 0; p + 1 < Q; ++p) {
          origin_[base + static_cast<std::size_t>(p)] =
              origin_[base + static_cast<std::size_t>(p + 1)];
        }
        origin_[base + static_cast<std::size_t>(Q - 1)] = first;
      }
    }
  }

  void reset_origins() {
    const int Q = cfg_.cycle_len();
    for (std::size_t c = 0; c < cfg_.num_cycles(); ++c) {
      for (int p = 0; p < Q; ++p) origin_[addr(c, p)] = p;
    }
  }

  // Lateral exchange for all data currently sitting at position `pos`
  // (hypercube dim r+pos), pairing cycles that differ in cycle-bit `pos`.
  template <typename Op>
  void lateral_exchange_at(int pos, Op&& op) {
    lateral_exchange_batch(std::uint64_t{1} << pos, op);
  }

  // Lateral exchanges at all positions in `pos_mask`, concurrently: they
  // involve disjoint PEs and distinct links, so the whole batch is one
  // machine-wide parallel step.
  template <typename Op>
  void lateral_exchange_batch(std::uint64_t pos_mask, Op&& op) {
    if (pos_mask == 0) return;
    std::size_t touched = 0;
    for (int pos = 0; pos < cfg_.h; ++pos) {
      if (!((pos_mask >> pos) & 1u)) continue;
      const std::size_t bitmask = std::size_t{1} << pos;
      for (std::size_t c = 0; c < cfg_.num_cycles(); ++c) {
        if (c & bitmask) continue;
        op(cfg_.r + pos, pe_[addr(c, pos)], pe_[addr(c | bitmask, pos)]);
      }
      touched += 2 * cfg_.num_cycles();
    }
    steps_.step(touched, /*routed=*/true);
  }

  // Unpipelined lateral dim q: rotate a full revolution; each datum
  // exchanges when it passes position q.
  template <typename Op>
  void high_dim_exchange_rotating(int q, Op&& op) {
    TTP_TRACE_SPAN(rot_span, "ccc.exchange.rotating", steps_);
    rot_span.attr("dim", cfg_.r + q);
    TTP_METRIC_ADD("net.ccc.rotating_exchanges", 1);
    const int Q = cfg_.cycle_len();
    for (int s = 0; s < Q; ++s) {
      rotate_data(+1);
      lateral_exchange_at(q, op);
    }
  }

  // Pipelined wave (derivation in DESIGN.md / tests): rotating forward, the
  // datum of origin j reaches position 0 at time Q-j and then performs
  // lateral dims 0..h-1 at consecutive times t = Q-j+p. Both members of
  // every exchanged pair share an origin, so the schedule is consistent,
  // and each datum sees the lateral dims in ascending order.
  template <typename Op>
  void high_dims_pipelined_ascend(Op&& op) {
    TTP_TRACE_SPAN(wave_span, "ccc.wave.ascend", steps_);
    wave_span.attr("h", cfg_.h);
    TTP_METRIC_ADD("net.ccc.pipelined_waves", 1);
    const int Q = cfg_.cycle_len();
    const int T = Q + cfg_.h;  // t = 1 .. Q+h-1
    for (int t = 1; t < T; ++t) {
      rotate_data(+1);
      std::uint64_t active = 0;
      for (int p = 0; p < cfg_.h; ++p) {
        const int j = ((p - t) % Q + Q) % Q;  // origin of data now at p
        if (t == Q - j + p) active |= std::uint64_t{1} << p;
      }
      lateral_exchange_batch(active, op);
    }
    // Finish the lap so every datum is back at its home position.
    for (int t = T - 1; t % Q != 0; ++t) rotate_data(+1);
    check_home();
  }

  template <typename Op>
  void high_dims_pipelined_descend(Op&& op) {
    TTP_TRACE_SPAN(wave_span, "ccc.wave.descend", steps_);
    wave_span.attr("h", cfg_.h);
    TTP_METRIC_ADD("net.ccc.pipelined_waves", 1);
    const int Q = cfg_.cycle_len();
    const int T = 2 * Q;  // t = 1 .. 2Q-1 covers t = Q+j-p for all j, p<h
    for (int t = 1; t < T; ++t) {
      rotate_data(-1);
      std::uint64_t active = 0;
      for (int p = cfg_.h - 1; p >= 0; --p) {
        const int j = (p + t) % Q;  // origin of data now at p
        if (t == Q + j - p) active |= std::uint64_t{1} << p;
      }
      lateral_exchange_batch(active, op);
    }
    rotate_data(-1);  // 2Q rotations total: data back home
    check_home();
  }

  void check_home() const {
    const int Q = cfg_.cycle_len();
    for (std::size_t c = 0; c < cfg_.num_cycles(); ++c) {
      for (int p = 0; p < Q; ++p) {
        if (origin_[addr(c, p)] != p) {
          throw std::logic_error("CccMachine: data not back at home position");
        }
      }
    }
  }

  CccConfig cfg_;
  std::vector<State> pe_;
  std::vector<int> origin_;  ///< current origin-position of each slot's datum
  util::StepCounter steps_;
};

}  // namespace ttp::net
