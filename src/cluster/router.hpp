// The ttp_router forwarding host: a svc::SessionHost that speaks the same
// newline-framed wire protocol as ttp_serve, but instead of solving,
// routes each SOLVE by its canonical content key over a consistent-hash
// ring of ttp_serve backends.
//
// Why key-affinity routing: every backend keeps a sharded procedure cache
// keyed by svc::CanonKey. Spraying requests round-robin would duplicate
// each instance's cache line n ways and cut the effective cluster cache to
// 1/n; routing by key sends every semantically-identical request to the
// same backend, so the cluster cache is the sum of the parts and the
// singleflight collapse on the backend still works across clients.
//
// Request handling per SOLVE:
//
//   1. Read the frame (shared read_solve_frame — same oversize and
//      torn-frame behavior as ttp_serve), canonicalize, take the key.
//   2. Walk the ring for distinct replicas, keep the routable ones.
//   3. Forward to the primary over a pooled connection. Retryable
//      failures — connect/transport errors, and the typed ERR codes
//      cancelled/overload/timeout, all safe because SOLVE is a pure
//      idempotent computation — move to the next replica, up to
//      --retries extra attempts. Non-retryable typed errors
//      (bad-request, oversize, internal) are relayed as-is: every
//      backend would answer the same.
//   4. Optionally hedge: when --hedge-ms > 0 and a second replica is
//      routable, a first attempt that hasn't started replying within the
//      hedge delay gets a racing duplicate on the next replica; the
//      first complete reply wins, the loser is discarded. The delay
//      adapts: min(--hedge-ms, observed p95) once 64 solves have been
//      recorded.
//   5. Exhaustion relays the last typed backend error if any arrived,
//      else the router's own "ERR upstream ...".
//
// Replies are relayed verbatim — cost, tree bytes, and the backend's
// trace id pass through untouched, so a client cannot tell a router from
// a single ttp_serve (and TRACE <id> still works: the router fans the
// lookup out to the backends).
//
// Counters (cluster.* in the router registry, visible via STATS/METRICS):
//   cluster.routed       SOLVEs answered with a relayed backend reply
//   cluster.retried      failover attempts after a retryable failure
//   cluster.hedged       hedged duplicates launched
//   cluster.hedge_wins   hedges whose duplicate answered first
//   cluster.upstream_errors  SOLVEs that exhausted every replica
//   cluster.probes / probe_failures / ejected / readmitted  (health.hpp)
// plus per-backend cluster.backend.<addr>.* gauges/counters (upstream.hpp)
// and the svc.server.* session-pool counters from the shared Server.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "svc/server.hpp"

#ifndef _WIN32
#include <atomic>
#include <iosfwd>
#include <memory>

#include "cluster/health.hpp"
#include "cluster/ring.hpp"
#include "cluster/upstream.hpp"
#include "obs/quantiles.hpp"
#endif

namespace ttp::cluster {

struct RouterConfig {
  int vnodes = 128;  ///< Ring points per backend.
  int retries = 2;   ///< Extra replicas tried after the first attempt.
  int hedge_ms = 0;  ///< Hedge delay ceiling; 0 disables hedging.
  std::size_t max_frame_bytes = std::size_t{1} << 20;
#ifndef _WIN32
  UpstreamConfig upstream;
  HealthConfig health;
#endif
};

/// Everything ttp_router's command line configures.
struct RouterArgs {
  int port = -1;  ///< -1 = stdio mode.
  bool help = false;
  std::vector<std::string> backends;  ///< --backend=host:port, repeated.
  RouterConfig cfg;
  svc::ServerConfig server;
};

/// Parses and range-validates the ttp_router argument vector; same strict
/// no-silent-wrap contract as parse_serve_args. Requires at least one
/// --backend unless --help was given.
bool parse_router_args(int argc, const char* const* argv, RouterArgs& args,
                       std::string& error);

#ifndef _WIN32

class Router final : public svc::SessionHost {
 public:
  /// Builds the ring, one Upstream per backend, and the prober (not yet
  /// started — call start_prober(), or drive prober().probe_all() by hand
  /// in tests). Throws std::invalid_argument on an empty backend list or
  /// a malformed address.
  Router(std::vector<std::string> backends, RouterConfig cfg);
  ~Router() override;

  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const Ring& ring() const noexcept { return ring_; }
  std::size_t backend_count() const noexcept { return upstreams_.size(); }
  Upstream& upstream(std::size_t i) { return *upstreams_[i]; }
  HealthProber& prober() noexcept { return *prober_; }
  void start_prober() { prober_->start(); }

  bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Current hedge delay: 0 when disabled, else min(--hedge-ms, observed
  /// p95 solve latency) once 64 samples exist (--hedge-ms before that).
  int hedge_delay_ms() const;

  std::string stats_text() const;
  std::string metrics_text() const;
  std::string health_text() const;

  // SessionHost: the shared svc::Server drives these.
  obs::MetricsRegistry& session_metrics() override { return metrics_; }
  svc::SessionResult serve(std::istream& in, std::ostream& out,
                           const svc::SessionOptions& opts) override;
  void drain_begin() noexcept override {
    draining_.store(true, std::memory_order_relaxed);
  }
  void drain_force() override;

 private:
  struct Attempt {
    enum class Kind { kOk, kTypedErr, kTransport };
    Kind kind = Kind::kTransport;
    std::string code;   ///< ERR code when kTypedErr.
    std::string reply;  ///< Full relayable reply text (kOk / kTypedErr).
  };

  void handle_solve(std::istream& in, std::ostream& out,
                    const svc::SessionOptions& opts);
  void handle_trace(const std::string& arg, std::ostream& out);

  /// One complete exchange on an already-sent connection; releases the
  /// connection back to `up` only on a clean kOk/kTypedErr exchange.
  Attempt read_reply(Upstream& up, std::unique_ptr<svc::WireClient> conn);
  /// Dial/pool + send + read_reply.
  Attempt forward_once(Upstream& up, const std::string& frame);
  /// First attempt with hedging: races `a` against a delayed duplicate on
  /// `b`; first complete reply wins.
  Attempt forward_hedged(Upstream& a, Upstream& b, const std::string& frame);

  static bool retryable_code(const std::string& code) noexcept;

  RouterConfig cfg_;
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Upstream>> upstreams_;
  Ring ring_;
  std::unique_ptr<HealthProber> prober_;
  std::atomic<bool> draining_{false};

  obs::ShardedQuantiles e2e_us_;  ///< Successful forwarded-solve latency.

  obs::Counter& routed_;
  obs::Counter& retried_;
  obs::Counter& hedged_;
  obs::Counter& hedge_wins_;
  obs::Counter& upstream_errors_;
};

#endif  // !_WIN32

}  // namespace ttp::cluster
