#ifndef _WIN32

#include "cluster/upstream.hpp"

#include <stdexcept>
#include <utility>

#include "obs/flight.hpp"

namespace ttp::cluster {

namespace {

std::string metric(const std::string& address, const char* leaf) {
  return "cluster.backend." + address + "." + leaf;
}

double state_value(Upstream::State s) noexcept {
  switch (s) {
    case Upstream::State::kHealthy:
      return 0.0;
    case Upstream::State::kDraining:
      return 1.0;
    case Upstream::State::kEjected:
      return 2.0;
  }
  return 2.0;
}

}  // namespace

const char* Upstream::state_name(State s) noexcept {
  switch (s) {
    case State::kHealthy:
      return "healthy";
    case State::kDraining:
      return "draining";
    case State::kEjected:
      return "ejected";
  }
  return "ejected";
}

Upstream::Upstream(const std::string& address, UpstreamConfig cfg,
                   obs::MetricsRegistry& reg)
    : address_(address),
      cfg_(cfg),
      connects_(reg.counter(metric(address, "connects"))),
      connects_failed_(reg.counter(metric(address, "connects_failed"))),
      reused_(reg.counter(metric(address, "reused"))),
      stale_dropped_(reg.counter(metric(address, "stale_dropped"))),
      state_gauge_(reg.gauge(metric(address, "state"))),
      pooled_gauge_(reg.gauge(metric(address, "pooled"))) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    throw std::invalid_argument("Upstream: expected host:port, got '" +
                                address + "'");
  }
  host_ = address.substr(0, colon);
  try {
    std::size_t used = 0;
    port_ = std::stoi(address.substr(colon + 1), &used);
    if (used != address.size() - colon - 1) throw std::invalid_argument("");
  } catch (const std::exception&) {
    throw std::invalid_argument("Upstream: bad port in '" + address + "'");
  }
  if (port_ < 1 || port_ > 65535) {
    throw std::invalid_argument("Upstream: port outside [1, 65535] in '" +
                                address + "'");
  }
  state_gauge_.set(state_value(State::kHealthy));
}

bool Upstream::note_probe_failure(int eject_after) {
  ok_streak_.store(0, std::memory_order_relaxed);
  const int fails = fail_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
  State cur = state_.load(std::memory_order_relaxed);
  if (cur == State::kEjected || fails < eject_after) return false;
  state_.store(State::kEjected, std::memory_order_relaxed);
  state_gauge_.set(state_value(State::kEjected));
  // A recovered backend must not inherit sockets from before it died.
  close_idle();
  return true;
}

bool Upstream::note_probe_success(int readmit_after) {
  fail_streak_.store(0, std::memory_order_relaxed);
  const int oks = ok_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
  const State cur = state_.load(std::memory_order_relaxed);
  if (cur == State::kHealthy) return false;
  if (cur == State::kEjected && oks < readmit_after) return false;
  // Draining -> healthy flips immediately on a non-draining probe; ejected
  // -> healthy needs the full success streak.
  state_.store(State::kHealthy, std::memory_order_relaxed);
  state_gauge_.set(state_value(State::kHealthy));
  return true;
}

bool Upstream::set_draining(bool draining) {
  const State next = draining ? State::kDraining : State::kHealthy;
  const State cur = state_.load(std::memory_order_relaxed);
  if (!draining && cur != State::kDraining) return false;
  if (cur == next) return false;
  fail_streak_.store(0, std::memory_order_relaxed);
  ok_streak_.store(0, std::memory_order_relaxed);
  state_.store(next, std::memory_order_relaxed);
  state_gauge_.set(state_value(next));
  return true;
}

std::unique_ptr<svc::WireClient> Upstream::acquire() {
  const std::int64_t now = obs::steady_now_ns();
  for (;;) {
    std::unique_ptr<svc::WireClient> conn;
    std::int64_t since = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (idle_.empty()) break;
      conn = std::move(idle_.back().conn);
      since = idle_.back().since_ns;
      idle_.pop_back();
      pooled_gauge_.set(static_cast<double>(idle_.size()));
    }
    const std::int64_t age_ms = (now - since) / 1'000'000;
    // Pending bytes on an idle pooled socket can only be the backend's
    // terminal line (ERR timeout / BYE) or an EOF — either way the
    // connection is no longer at a command boundary. poll_readable(0)
    // reports both without consuming anything.
    if (age_ms > cfg_.max_idle_ms || !conn->connected() ||
        conn->poll_readable(0)) {
      stale_dropped_.add(1);
      continue;
    }
    reused_.add(1);
    return conn;
  }
  svc::WireClient::Options opts;
  opts.connect_timeout_ms = cfg_.connect_timeout_ms;
  opts.io_timeout_ms = cfg_.request_timeout_ms;
  opts.faults = cfg_.faults;
  auto conn = std::make_unique<svc::WireClient>(host_, port_, opts);
  if (!conn->connected()) {
    connects_failed_.add(1);
    return nullptr;
  }
  connects_.add(1);
  return conn;
}

void Upstream::release(std::unique_ptr<svc::WireClient> conn) {
  if (conn == nullptr || !conn->connected()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (idle_.size() >= cfg_.pool_size) return;  // conn closes on destruction
  idle_.push_back(Idle{std::move(conn), obs::steady_now_ns()});
  pooled_gauge_.set(static_cast<double>(idle_.size()));
}

void Upstream::close_idle() {
  std::vector<Idle> drop;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drop.swap(idle_);
    pooled_gauge_.set(0.0);
  }
  // Destructors (and their close() syscalls) run outside the lock.
}

std::size_t Upstream::pooled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

}  // namespace ttp::cluster

#endif  // !_WIN32
