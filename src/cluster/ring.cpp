#include "cluster/ring.hpp"

#include <algorithm>
#include <stdexcept>

namespace ttp::cluster {

Ring::Ring(std::vector<std::string> backends, int vnodes)
    : backends_(std::move(backends)), vnodes_(std::max(vnodes, 1)) {
  if (backends_.empty()) {
    throw std::invalid_argument("Ring: at least one backend required");
  }
  points_.reserve(backends_.size() * static_cast<std::size_t>(vnodes_));
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    for (int v = 0; v < vnodes_; ++v) {
      // Hash the *name*, never the index: a backend keeps its points no
      // matter where it appears in the --backend list, which is what makes
      // placement permutation- and restart-stable.
      const svc::CanonKey k =
          svc::hash128(backends_[b] + "#" + std::to_string(v));
      points_.push_back(Point{k.hi, static_cast<std::uint32_t>(b)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [this](const Point& a, const Point& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              // Hash ties are ~impossible at 64 bits, but break them by
              // name so equal configurations agree regardless of order.
              return backends_[a.backend] < backends_[b.backend];
            });
}

std::size_t Ring::first_point(std::uint64_t pos) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), pos,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  if (it == points_.end()) return 0;  // wrap around
  return static_cast<std::size_t>(it - points_.begin());
}

std::size_t Ring::primary(const svc::CanonKey& key) const {
  return points_[first_point(position(key))].backend;
}

std::vector<std::size_t> Ring::replicas(const svc::CanonKey& key,
                                        std::size_t want) const {
  want = std::min(want, backends_.size());
  std::vector<std::size_t> out;
  if (want == 0) return out;
  out.reserve(want);
  std::vector<bool> seen(backends_.size(), false);
  std::size_t i = first_point(position(key));
  for (std::size_t steps = 0; steps < points_.size() && out.size() < want;
       ++steps) {
    const std::uint32_t b = points_[i].backend;
    if (!seen[b]) {
      seen[b] = true;
      out.push_back(b);
    }
    i = (i + 1) % points_.size();
  }
  return out;
}

}  // namespace ttp::cluster
