#ifndef _WIN32

#include "cluster/health.hpp"

#include <chrono>

namespace ttp::cluster {

HealthProber::HealthProber(std::vector<Upstream*> backends, HealthConfig cfg,
                           obs::MetricsRegistry& reg)
    : backends_(std::move(backends)),
      cfg_(cfg),
      probes_(reg.counter("cluster.probes")),
      probe_failures_(reg.counter("cluster.probe_failures")),
      ejected_(reg.counter("cluster.ejected")),
      readmitted_(reg.counter("cluster.readmitted")) {}

HealthProber::~HealthProber() { stop(); }

void HealthProber::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void HealthProber::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool HealthProber::probe_one(Upstream& up, bool& draining) {
  draining = false;
  svc::WireClient::Options opts;
  opts.connect_timeout_ms = cfg_.probe_timeout_ms;
  opts.io_timeout_ms = cfg_.probe_timeout_ms;
  svc::WireClient probe(up.host(), up.port(), opts);
  if (!probe.connected()) return false;
  if (!probe.send("HEALTH\n")) return false;
  std::string line;
  if (!probe.read_line(line, cfg_.probe_timeout_ms) || line != "HEALTH") {
    return false;
  }
  if (!probe.read_line(line, cfg_.probe_timeout_ms)) return false;
  draining = (line == "draining");
  // Drain the body so the backend sees a clean exchange, but don't fail
  // the probe over it: the status line already arrived.
  std::vector<std::string> rest;
  probe.read_until("END", rest, cfg_.probe_timeout_ms);
  return true;
}

void HealthProber::probe_all() {
  for (Upstream* up : backends_) {
    probes_.add(1);
    bool draining = false;
    if (probe_one(*up, draining)) {
      if (draining) {
        up->set_draining(true);
      } else {
        up->set_draining(false);  // no-op unless previously draining
        if (up->note_probe_success(cfg_.readmit_after)) readmitted_.add(1);
      }
    } else {
      probe_failures_.add(1);
      if (up->note_probe_failure(cfg_.eject_after)) ejected_.add(1);
    }
  }
  rounds_.fetch_add(1, std::memory_order_relaxed);
}

void HealthProber::run() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(cfg_.probe_interval_ms),
                   [this] { return stopping_; });
      if (stopping_) return;
    }
    probe_all();
  }
}

}  // namespace ttp::cluster

#endif  // !_WIN32
