#include "cluster/router.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

namespace ttp::cluster {

bool parse_router_args(int argc, const char* const* argv, RouterArgs& args,
                       std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto is = [&](const char* flag) {
      return arg.rfind(std::string(flag) + "=", 0) == 0;
    };
    long v = 0;
    if (arg == "--help" || arg == "-h") {
      args.help = true;
      return true;
    } else if (is("--port")) {
      if (!svc::parse_flag_long(arg, "--port", 0, 65535, v, error)) {
        return false;
      }
      args.port = static_cast<int>(v);
    } else if (is("--backend")) {
      const std::string addr = arg.substr(std::strlen("--backend="));
      if (addr.empty()) {
        error = "--backend expects host:port";
        return false;
      }
      for (const std::string& b : args.backends) {
        if (b == addr) {
          error = "duplicate --backend=" + addr;
          return false;
        }
      }
      args.backends.push_back(addr);
    } else if (is("--vnodes")) {
      if (!svc::parse_flag_long(arg, "--vnodes", 1, 4096, v, error)) {
        return false;
      }
      args.cfg.vnodes = static_cast<int>(v);
    } else if (is("--retries")) {
      if (!svc::parse_flag_long(arg, "--retries", 0, 16, v, error)) {
        return false;
      }
      args.cfg.retries = static_cast<int>(v);
    } else if (is("--hedge-ms")) {
      if (!svc::parse_flag_long(arg, "--hedge-ms", 0, 60'000, v, error)) {
        return false;
      }
      args.cfg.hedge_ms = static_cast<int>(v);
#ifndef _WIN32
    } else if (is("--connect-timeout-ms")) {
      if (!svc::parse_flag_long(arg, "--connect-timeout-ms", 1, 600'000, v,
                                error)) {
        return false;
      }
      args.cfg.upstream.connect_timeout_ms = static_cast<int>(v);
    } else if (is("--request-timeout-ms")) {
      if (!svc::parse_flag_long(arg, "--request-timeout-ms", 1, 600'000, v,
                                error)) {
        return false;
      }
      args.cfg.upstream.request_timeout_ms = static_cast<int>(v);
    } else if (is("--pool-size")) {
      if (!svc::parse_flag_long(arg, "--pool-size", 0, 1024, v, error)) {
        return false;
      }
      args.cfg.upstream.pool_size = static_cast<std::size_t>(v);
    } else if (is("--max-idle-ms")) {
      if (!svc::parse_flag_long(arg, "--max-idle-ms", 1, 1'000'000'000L, v,
                                error)) {
        return false;
      }
      args.cfg.upstream.max_idle_ms = static_cast<int>(v);
    } else if (is("--probe-interval-ms")) {
      if (!svc::parse_flag_long(arg, "--probe-interval-ms", 1, 600'000, v,
                                error)) {
        return false;
      }
      args.cfg.health.probe_interval_ms = static_cast<int>(v);
    } else if (is("--probe-timeout-ms")) {
      if (!svc::parse_flag_long(arg, "--probe-timeout-ms", 1, 600'000, v,
                                error)) {
        return false;
      }
      args.cfg.health.probe_timeout_ms = static_cast<int>(v);
    } else if (is("--eject-after")) {
      if (!svc::parse_flag_long(arg, "--eject-after", 1, 1000, v, error)) {
        return false;
      }
      args.cfg.health.eject_after = static_cast<int>(v);
    } else if (is("--readmit-after")) {
      if (!svc::parse_flag_long(arg, "--readmit-after", 1, 1000, v, error)) {
        return false;
      }
      args.cfg.health.readmit_after = static_cast<int>(v);
#endif  // !_WIN32
    } else if (is("--max-conns")) {
      if (!svc::parse_flag_long(arg, "--max-conns", 1, 65536, v, error)) {
        return false;
      }
      args.server.max_conns = static_cast<std::size_t>(v);
    } else if (is("--idle-timeout-ms")) {
      if (!svc::parse_flag_long(arg, "--idle-timeout-ms", 0, 1'000'000'000L,
                                v, error)) {
        return false;
      }
      args.server.idle_timeout_ms = static_cast<int>(v);
    } else if (is("--read-timeout-ms")) {
      if (!svc::parse_flag_long(arg, "--read-timeout-ms", 0, 1'000'000'000L,
                                v, error)) {
        return false;
      }
      args.server.read_timeout_ms = static_cast<int>(v);
    } else if (is("--drain-timeout-ms")) {
      if (!svc::parse_flag_long(arg, "--drain-timeout-ms", 1,
                                1'000'000'000L, v, error)) {
        return false;
      }
      args.server.drain_timeout_ms = static_cast<int>(v);
    } else if (is("--max-frame-bytes")) {
      if (!svc::parse_flag_long(arg, "--max-frame-bytes", 1024, 1L << 30, v,
                                error)) {
        return false;
      }
      args.server.max_frame_bytes = static_cast<std::size_t>(v);
    } else {
      error = "unknown argument '" + arg + "'";
      return false;
    }
  }
  if (args.backends.empty()) {
    error = "at least one --backend=host:port is required";
    return false;
  }
  args.server.port = args.port;
  args.cfg.max_frame_bytes = args.server.max_frame_bytes;
  return true;
}

}  // namespace ttp::cluster

#ifndef _WIN32

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <istream>
#include <ostream>

#include "obs/flight.hpp"
#include "obs/prom.hpp"
#include "svc/wire.hpp"
#include "tt/serialize.hpp"

namespace ttp::cluster {

namespace {

bool get_line(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

std::vector<std::unique_ptr<Upstream>> make_upstreams(
    const std::vector<std::string>& backends, const UpstreamConfig& cfg,
    obs::MetricsRegistry& reg) {
  if (backends.empty()) {
    throw std::invalid_argument("Router: at least one backend required");
  }
  std::vector<std::unique_ptr<Upstream>> out;
  out.reserve(backends.size());
  for (const std::string& addr : backends) {
    out.push_back(std::make_unique<Upstream>(addr, cfg, reg));
  }
  return out;
}

}  // namespace

Router::Router(std::vector<std::string> backends, RouterConfig cfg)
    : cfg_(cfg),
      upstreams_(make_upstreams(backends, cfg.upstream, metrics_)),
      ring_(backends, cfg.vnodes),
      routed_(metrics_.counter("cluster.routed")),
      retried_(metrics_.counter("cluster.retried")),
      hedged_(metrics_.counter("cluster.hedged")),
      hedge_wins_(metrics_.counter("cluster.hedge_wins")),
      upstream_errors_(metrics_.counter("cluster.upstream_errors")) {
  std::vector<Upstream*> probe_targets;
  probe_targets.reserve(upstreams_.size());
  for (const auto& up : upstreams_) probe_targets.push_back(up.get());
  prober_ = std::make_unique<HealthProber>(std::move(probe_targets),
                                           cfg_.health, metrics_);
}

Router::~Router() { prober_->stop(); }

bool Router::retryable_code(const std::string& code) noexcept {
  // SOLVE is a pure idempotent computation, so anything transient is safe
  // to replay on another replica. bad-request/oversize/internal are
  // deterministic — every backend would answer the same.
  return code == "cancelled" || code == "overload" || code == "timeout";
}

int Router::hedge_delay_ms() const {
  if (cfg_.hedge_ms <= 0) return 0;
  const obs::QuantileSnapshot snap = e2e_us_.snapshot();
  if (snap.count() < 64) return cfg_.hedge_ms;
  const int p95_ms = static_cast<int>(snap.quantile(0.95) / 1000);
  return std::min(cfg_.hedge_ms, std::max(1, p95_ms));
}

Router::Attempt Router::read_reply(Upstream& up,
                                   std::unique_ptr<svc::WireClient> conn) {
  Attempt a;  // defaults to kTransport
  const int budget = cfg_.upstream.request_timeout_ms;
  std::string head;
  if (!conn->read_line(head, budget)) return a;
  if (head.rfind("ERR ", 0) == 0) {
    const std::size_t sp = head.find(' ', 4);
    a.code = head.substr(4, sp == std::string::npos ? std::string::npos
                                                    : sp - 4);
    a.kind = Attempt::Kind::kTypedErr;
    a.reply = head + "\n";
    up.release(std::move(conn));
    return a;
  }
  if (head.rfind("OK", 0) == 0 || head == "TRACE") {
    std::vector<std::string> body;
    if (!conn->read_until("END", body, budget)) return a;
    std::string reply = head;
    reply += '\n';
    for (const std::string& l : body) {
      reply += l;
      reply += '\n';
    }
    reply += "END\n";
    a.kind = Attempt::Kind::kOk;
    a.reply = std::move(reply);
    up.release(std::move(conn));
    return a;
  }
  return a;  // garbled head: protocol desync, treat as transport failure
}

Router::Attempt Router::forward_once(Upstream& up, const std::string& frame) {
  std::unique_ptr<svc::WireClient> conn = up.acquire();
  if (conn == nullptr) return Attempt{};
  if (!conn->send(frame)) return Attempt{};
  return read_reply(up, std::move(conn));
}

Router::Attempt Router::forward_hedged(Upstream& a, Upstream& b,
                                       const std::string& frame) {
  std::unique_ptr<svc::WireClient> c1 = a.acquire();
  if (c1 == nullptr || !c1->send(frame)) return Attempt{};
  if (c1->poll_readable(hedge_delay_ms())) {
    return read_reply(a, std::move(c1));
  }
  // The primary is slow; launch the duplicate and take whichever replica
  // completes a reply first. The loser's connection is discarded (its
  // reply is still in flight, so it can never go back to the pool).
  hedged_.add(1);
  std::unique_ptr<svc::WireClient> c2 = b.acquire();
  if (c2 == nullptr || !c2->send(frame)) {
    return read_reply(a, std::move(c1));  // hedge failed to launch
  }
  const std::int64_t deadline =
      obs::steady_now_ns() +
      static_cast<std::int64_t>(cfg_.upstream.request_timeout_ms) *
          1'000'000;
  while (c1 != nullptr || c2 != nullptr) {
    const int left_ms = static_cast<int>(
        (deadline - obs::steady_now_ns()) / 1'000'000);
    if (left_ms <= 0) break;
    pollfd pfds[2];
    int n = 0;
    int i1 = -1, i2 = -1;
    if (c1 != nullptr) {
      pfds[n] = pollfd{c1->fd(), POLLIN, 0};
      i1 = n++;
    }
    if (c2 != nullptr) {
      pfds[n] = pollfd{c2->fd(), POLLIN, 0};
      i2 = n++;
    }
    const int pr = ::poll(pfds, static_cast<nfds_t>(n), left_ms);
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) break;
    if (i1 >= 0 && pfds[i1].revents != 0) {
      Attempt r = read_reply(a, std::move(c1));
      if (r.kind != Attempt::Kind::kTransport) return r;
      continue;  // primary died mid-reply; keep waiting on the hedge
    }
    if (i2 >= 0 && pfds[i2].revents != 0) {
      Attempt r = read_reply(b, std::move(c2));
      if (r.kind != Attempt::Kind::kTransport) {
        hedge_wins_.add(1);
        return r;
      }
    }
  }
  return Attempt{};
}

void Router::handle_solve(std::istream& in, std::ostream& out,
                          const svc::SessionOptions& opts) {
  std::string blob;
  if (!svc::read_solve_frame(in, out, opts, blob)) return;
  svc::CanonKey key;
  try {
    key = svc::canonicalize(tt::from_text(blob)).key;
  } catch (const std::exception& e) {
    // Reject here rather than forwarding garbage: the verdict is
    // deterministic and the backends shouldn't pay for it.
    svc::write_err(out, "bad-request", e.what());
    return;
  }
  const std::string frame = "SOLVE\n" + blob + "END\n";
  const std::vector<std::size_t> order =
      ring_.replicas(key, upstreams_.size());
  std::vector<std::size_t> cands;
  for (const std::size_t i : order) {
    if (upstreams_[i]->routable()) cands.push_back(i);
  }
  if (cands.empty()) {
    upstream_errors_.add(1);
    svc::write_err(out, "upstream",
                   "no routable backends for key " + key.hex());
    return;
  }
  const std::size_t attempts = std::min(
      cands.size(), static_cast<std::size_t>(cfg_.retries) + 1);
  const std::int64_t t0 = obs::steady_now_ns();
  std::string last_typed;
  for (std::size_t i = 0; i < attempts; ++i) {
    Upstream& up = *upstreams_[cands[i]];
    Attempt r;
    if (i == 0 && cfg_.hedge_ms > 0 && cands.size() >= 2) {
      r = forward_hedged(up, *upstreams_[cands[1]], frame);
    } else {
      r = forward_once(up, frame);
    }
    if (r.kind == Attempt::Kind::kOk) {
      // Count before relaying: a client that has seen the reply and then
      // asks METRICS must see this request included.
      routed_.add(1);
      e2e_us_.record(static_cast<std::uint64_t>(
          (obs::steady_now_ns() - t0) / 1000));
      out << r.reply << std::flush;
      return;
    }
    if (r.kind == Attempt::Kind::kTypedErr) {
      if (!retryable_code(r.code)) {
        routed_.add(1);
        out << r.reply << std::flush;
        return;
      }
      last_typed = r.reply;
    }
    if (i + 1 < attempts) retried_.add(1);
  }
  upstream_errors_.add(1);
  if (!last_typed.empty()) {
    // The backends were reachable but all declined (overload/cancelled/
    // timeout); their typed verdict is more actionable than a generic
    // upstream error.
    out << last_typed << std::flush;
  } else {
    svc::write_err(out, "upstream",
                   "all replicas failed for key " + key.hex());
  }
}

void Router::handle_trace(const std::string& arg, std::ostream& out) {
  // The router doesn't know which backend served a past request (hedges
  // and failovers move keys around), so fan the lookup out. Ring order
  // keeps the common case — the key's primary — first.
  std::string last_err;
  for (const auto& up : upstreams_) {
    if (up->state() == Upstream::State::kEjected) continue;
    std::unique_ptr<svc::WireClient> conn = up->acquire();
    if (conn == nullptr) continue;
    if (!conn->send("TRACE " + arg + "\n")) continue;
    Attempt r = read_reply(*up, std::move(conn));
    if (r.kind == Attempt::Kind::kOk) {
      out << r.reply << std::flush;
      return;
    }
    if (r.kind == Attempt::Kind::kTypedErr && r.code != "not-found") {
      last_err = r.reply;
    }
  }
  if (!last_err.empty()) {
    out << last_err << std::flush;
  } else {
    svc::write_err(out, "not-found",
                   "trace " + arg + " not held by any backend");
  }
}

std::string Router::stats_text() const {
  std::ostringstream os;
  os << "ring.backends: " << upstreams_.size() << '\n'
     << "ring.vnodes: " << cfg_.vnodes << '\n';
  metrics_.print(os, "");
  return os.str();
}

std::string Router::metrics_text() const {
  std::ostringstream os;
  os << "# TYPE ttp_build_info gauge\n"
     << "ttp_build_info{role=\"router\"} 1\n";
  obs::write_prometheus(os, metrics_);
  obs::write_prometheus_summary(os, "svc.latency.seconds", "stage=\"e2e\"",
                                e2e_us_.snapshot(), 1e-6,
                                /*with_type_header=*/true);
  return os.str();
}

std::string Router::health_text() const {
  std::size_t routable = 0;
  for (const auto& up : upstreams_) {
    if (up->routable()) ++routable;
  }
  std::ostringstream os;
  os << (draining() ? "draining" : routable == 0 ? "degraded" : "ready")
     << '\n'
     << "backends.total: " << upstreams_.size() << '\n'
     << "backends.routable: " << routable << '\n'
     << "probe.rounds: " << prober_->rounds() << '\n';
  for (const auto& up : upstreams_) {
    os << "backend." << up->address() << ": "
       << Upstream::state_name(up->state()) << '\n';
  }
  return os.str();
}

svc::SessionResult Router::serve(std::istream& in, std::ostream& out,
                                 const svc::SessionOptions& opts) {
  svc::SessionResult result;
  std::string line;
  for (;;) {
    if (opts.control != nullptr && opts.control->should_end()) {
      result.end = svc::SessionEnd::kStopped;
      return result;
    }
    if (opts.control != nullptr) opts.control->on_boundary();
    if (!get_line(in, line)) {
      result.end = svc::SessionEnd::kEof;
      return result;
    }
    if (line.empty()) continue;
    if (opts.control != nullptr) opts.control->on_frame();
    ++result.handled;
    if (line == "SOLVE") {
      handle_solve(in, out, opts);
    } else if (line == "STATS") {
      out << "STATS\n" << stats_text() << "END\n" << std::flush;
    } else if (line == "METRICS") {
      out << "METRICS\n" << metrics_text() << "END\n" << std::flush;
    } else if (line == "HEALTH") {
      out << "HEALTH\n" << health_text() << "END\n" << std::flush;
    } else if (line.rfind("TRACE ", 0) == 0) {
      handle_trace(line.substr(6), out);
    } else if (line == "PING") {
      out << "PONG\n" << std::flush;
    } else if (line == "QUIT") {
      out << "BYE\n" << std::flush;
      result.end = svc::SessionEnd::kQuit;
      return result;
    } else {
      svc::write_err(out, "bad-request", "unknown command '" + line + "'");
    }
  }
}

void Router::drain_force() {
  prober_->stop();
  for (const auto& up : upstreams_) up->close_idle();
}

}  // namespace ttp::cluster

#endif  // !_WIN32
