// One ttp_serve backend as seen by the router: its address, its health
// state, and a small bounded pool of reusable WireClient connections.
//
// Pooling rules (the subtle part is staleness): ttp_serve closes idle
// sessions after --idle-timeout-ms with a terminal "ERR timeout" line, and
// a draining backend sends "BYE" — either would desynchronize the framing
// if the router blindly reused the socket for its next forwarded SOLVE.
// acquire() therefore drops any pooled connection that has unexpected
// bytes pending (the terminal line), has seen EOF, or has sat idle past
// max_idle_ms, and dials a fresh one instead. release() only returns a
// connection to the pool when the caller completed a full request/reply
// exchange on it.
//
// Health state is a plain atomic driven by the HealthProber's
// consecutive-failure / consecutive-success streaks; the router consults
// routable() when picking replicas. kDraining (the backend answered its
// HEALTH probe with "draining") means alive-but-finishing: not routable,
// but not a failure streak either.
#pragma once

#ifndef _WIN32

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/client.hpp"

namespace ttp::cluster {

struct UpstreamConfig {
  int connect_timeout_ms = 1000;  ///< Per-dial TCP handshake budget.
  int request_timeout_ms = 5000;  ///< Per forwarded request reply budget.
  std::size_t pool_size = 8;      ///< Idle connections kept per backend.
  int max_idle_ms = 30000;        ///< Pooled-connection age cap; must stay
                                  ///< under the backend idle timeout.
  svc::FaultPlan faults{};        ///< Injected into dialed connections.
};

class Upstream {
 public:
  enum class State { kHealthy, kEjected, kDraining };

  /// `address` must be "host:port" (throws std::invalid_argument
  /// otherwise). Registers this backend's counters/gauge in `reg`.
  Upstream(const std::string& address, UpstreamConfig cfg,
           obs::MetricsRegistry& reg);

  const std::string& address() const noexcept { return address_; }
  const std::string& host() const noexcept { return host_; }
  int port() const noexcept { return port_; }
  const UpstreamConfig& config() const noexcept { return cfg_; }

  State state() const noexcept {
    return state_.load(std::memory_order_relaxed);
  }
  bool routable() const noexcept { return state() == State::kHealthy; }
  static const char* state_name(State s) noexcept;

  /// Prober verdicts. Transitions are streak-based: eject after
  /// `eject_after` consecutive failures, readmit after `readmit_after`
  /// consecutive successes. Each returns true when the call transitioned
  /// the state (so the prober can count ejections/readmissions once).
  bool note_probe_failure(int eject_after);
  bool note_probe_success(int readmit_after);
  /// HEALTH said "draining" (or stopped saying it). Resets streaks.
  bool set_draining(bool draining);

  /// A connection ready for one request/reply exchange: pooled if fresh,
  /// freshly dialed otherwise. Null (with the dial error reflected in the
  /// connects_failed counter) when the backend is unreachable.
  std::unique_ptr<svc::WireClient> acquire();
  /// Returns a connection whose exchange completed cleanly to the pool
  /// (or closes it when the pool is full).
  void release(std::unique_ptr<svc::WireClient> conn);
  /// Drops every pooled connection (drain shutdown, or after ejection so
  /// a recovered backend starts from fresh sockets).
  void close_idle();
  std::size_t pooled() const;

 private:
  struct Idle {
    std::unique_ptr<svc::WireClient> conn;
    std::int64_t since_ns;
  };

  std::string address_;
  std::string host_;
  int port_;
  UpstreamConfig cfg_;

  std::atomic<State> state_{State::kHealthy};
  std::atomic<int> fail_streak_{0};
  std::atomic<int> ok_streak_{0};

  mutable std::mutex mu_;
  std::vector<Idle> idle_;

  obs::Counter& connects_;
  obs::Counter& connects_failed_;
  obs::Counter& reused_;
  obs::Counter& stale_dropped_;
  obs::Gauge& state_gauge_;  ///< 0 healthy, 1 draining, 2 ejected.
  obs::Gauge& pooled_gauge_;
};

}  // namespace ttp::cluster

#endif  // !_WIN32
