// Consistent-hash ring over ttp_serve backends.
//
// Each backend contributes `vnodes` points on a 64-bit ring, hashed from
// its *name* ("host:port#<vnode>") through the same svc::hash128 the
// canonical content key uses. A request lands at the first point clockwise
// from its CanonKey position; walking further yields distinct fallback
// replicas for retry and hedging.
//
// Properties the tests (tests/test_cluster_ring.cpp) pin down:
//
//   * Placement depends only on backend names, never on list order or
//     process identity — two routers configured with the same --backend
//     set (in any order) route every key identically, and a restarted
//     router keeps the placement of its predecessor.
//   * Removing one of n backends remaps only the keys that backend owned —
//     an expected 1/n of the keyspace — because every other backend's
//     points stay exactly where they were. (A modulo table would remap
//     nearly everything.)
//   * With enough virtual nodes the per-backend keyspace share
//     concentrates near 1/n (the tests assert ±15% at 8 backends).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "svc/canon.hpp"

namespace ttp::cluster {

class Ring {
 public:
  /// Builds the ring. Backend names are kept in the given order (indices
  /// returned by primary()/replicas() refer to it); placement itself is
  /// order-independent. vnodes is clamped to >= 1.
  explicit Ring(std::vector<std::string> backends, int vnodes = 128);

  std::size_t size() const noexcept { return backends_.size(); }
  const std::string& backend(std::size_t i) const { return backends_[i]; }
  const std::vector<std::string>& backends() const noexcept {
    return backends_;
  }
  int vnodes() const noexcept { return vnodes_; }

  /// Ring position of a canonical content key.
  static std::uint64_t position(const svc::CanonKey& key) noexcept {
    // hi and lo are independent mixes; fold both so the ring position is
    // not correlated with the cache's shard selector (which uses hi ^ lo
    // through CanonKeyHash differently).
    return key.hi ^ (key.lo * 0x9E3779B97F4A7C15ull);
  }

  /// Index of the backend owning `key` (first point clockwise).
  std::size_t primary(const svc::CanonKey& key) const;

  /// Up to `want` distinct backend indices in ring-walk order, primary
  /// first. Returns fewer only when the ring has fewer backends.
  std::vector<std::size_t> replicas(const svc::CanonKey& key,
                                    std::size_t want) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t backend;
  };

  /// Index into points_ of the first point clockwise from `pos`.
  std::size_t first_point(std::uint64_t pos) const;

  std::vector<std::string> backends_;
  int vnodes_;
  std::vector<Point> points_;  ///< Sorted by (hash, backend name).
};

}  // namespace ttp::cluster
