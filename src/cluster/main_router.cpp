// ttp_router — the cluster routing tier for ttp_serve.
//
//   ttp_router --port=7070 --backend=h1:7071 --backend=h2:7071 ...
//   ttp_router --backend=localhost:7071           # one session over stdio
//
// Speaks the ttp_serve wire protocol on the front, routes each SOLVE by
// its canonical content key over a consistent-hash ring of backends, with
// health-probe ejection, retry-on-next-replica failover, and optional
// hedged requests. Architecture and failure semantics: docs/cluster.md.
//
// Knobs (defaults in parentheses; all values range-checked at startup):
//   --backend=HOST:PORT  a ttp_serve backend; repeat per backend (required)
//   --vnodes=N           ring points per backend (128)
//   --retries=N          extra replicas tried per SOLVE (2)
//   --hedge-ms=N         hedge delay ceiling, 0 = no hedging (0)
//   --connect-timeout-ms=N  per-dial budget (1000)
//   --request-timeout-ms=N  per forwarded reply budget (5000)
//   --pool-size=N        idle connections kept per backend (8)
//   --max-idle-ms=N      pooled-connection age cap (30000)
//   --probe-interval-ms=N   health probe period (500)
//   --probe-timeout-ms=N    per-probe budget (1000)
//   --eject-after=N      consecutive probe failures before ejection (3)
//   --readmit-after=N    consecutive successes before readmission (2)
// plus the shared session-pool knobs (--max-conns, --idle-timeout-ms,
// --read-timeout-ms, --drain-timeout-ms, --max-frame-bytes) with the same
// meanings as ttp_serve.
//
// On successful TCP listen the first stderr line is machine-parseable:
//   LISTENING <port>
#include <atomic>
#include <csignal>
#include <iostream>
#include <stdexcept>
#include <string>

#include "cluster/router.hpp"

namespace {

[[noreturn]] void usage(int code) {
  std::cout
      << "usage: ttp_router --backend=HOST:PORT [--backend=HOST:PORT ...]\n"
         "                  [--port=N] [--vnodes=N] [--retries=N]\n"
         "                  [--hedge-ms=N] [--connect-timeout-ms=N]\n"
         "                  [--request-timeout-ms=N] [--pool-size=N]\n"
         "                  [--max-idle-ms=N] [--probe-interval-ms=N]\n"
         "                  [--probe-timeout-ms=N] [--eject-after=N]\n"
         "                  [--readmit-after=N] [--max-conns=N]\n"
         "                  [--idle-timeout-ms=N] [--read-timeout-ms=N]\n"
         "                  [--drain-timeout-ms=N] [--max-frame-bytes=N]\n"
         "Without --port, serves one session over stdin/stdout.\n"
         "Protocol and failure semantics: docs/cluster.md\n";
  std::exit(code);
}

#ifndef _WIN32

std::atomic<ttp::svc::Server*> g_server{nullptr};

void on_shutdown_signal(int) {
  if (ttp::svc::Server* server = g_server.load(std::memory_order_relaxed)) {
    server->begin_drain();
  }
}

#endif  // !_WIN32

}  // namespace

int main(int argc, char** argv) {
#ifndef _WIN32
  std::signal(SIGPIPE, SIG_IGN);
#endif
  ttp::cluster::RouterArgs args;
  std::string error;
  if (!ttp::cluster::parse_router_args(argc, argv, args, error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  if (args.help) usage(0);
#ifndef _WIN32
  try {
    ttp::cluster::Router router(args.backends, args.cfg);
    router.start_prober();
    if (args.port < 0) {
      ttp::svc::SessionOptions opts;
      opts.max_frame_bytes = args.server.max_frame_bytes;
      const auto result = router.serve(std::cin, std::cout, opts);
      std::cerr << "ttp_router: session closed after " << result.handled
                << " commands\n";
      return 0;
    }
    ttp::svc::Server server(router, args.server);
    if (!server.listen(error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    g_server.store(&server, std::memory_order_relaxed);
    std::signal(SIGTERM, on_shutdown_signal);
    std::signal(SIGINT, on_shutdown_signal);
    std::cerr << "LISTENING " << server.port() << "\n"
              << "ttp_router: routing over " << args.backends.size()
              << " backends\n";
    const int rc = server.run();
    g_server.store(nullptr, std::memory_order_relaxed);
    std::cerr << "ttp_router: drained, exiting\n";
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
#else
  std::cerr << "error: ttp_router is not supported on this platform\n";
  return 1;
#endif
}
