// Background health prober for the router's backend set.
//
// Every probe_interval_ms each backend gets a fresh connection (never a
// pooled one — the probe must measure dial + reply, not pool luck) and a
// HEALTH request under probe_timeout_ms. Verdicts drive the Upstream
// state machine:
//
//   ready / degraded  -> success streak; an ejected backend is readmitted
//                        after readmit_after consecutive successes
//   draining          -> backend is alive but finishing its shutdown:
//                        marked kDraining (not routable, no failure streak)
//   connect/timeout/
//   garbled reply     -> failure streak; ejected after eject_after
//                        consecutive failures
//
// Transitions bump the cluster.ejected / cluster.readmitted counters so an
// operator watching METRICS sees membership churn without log-diving.
#pragma once

#ifndef _WIN32

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/upstream.hpp"
#include "obs/metrics.hpp"

namespace ttp::cluster {

struct HealthConfig {
  int probe_interval_ms = 500;  ///< Time between probe rounds.
  int probe_timeout_ms = 1000;  ///< Per-probe connect + reply budget.
  int eject_after = 3;          ///< Consecutive failures before ejection.
  int readmit_after = 2;        ///< Consecutive successes before readmission.
};

class HealthProber {
 public:
  /// Probes `backends` (not owned; must outlive the prober) until stop().
  HealthProber(std::vector<Upstream*> backends, HealthConfig cfg,
               obs::MetricsRegistry& reg);
  ~HealthProber();

  HealthProber(const HealthProber&) = delete;
  HealthProber& operator=(const HealthProber&) = delete;

  void start();
  void stop();
  bool running() const noexcept { return thread_.joinable(); }

  /// One synchronous probe round over every backend — the loop body,
  /// exposed so tests can drive state transitions deterministically.
  void probe_all();

  std::uint64_t rounds() const noexcept {
    return rounds_.load(std::memory_order_relaxed);
  }

 private:
  /// True when the backend answered HEALTH sanely; sets `draining` from
  /// the reported status line.
  bool probe_one(Upstream& up, bool& draining);
  void run();

  std::vector<Upstream*> backends_;
  HealthConfig cfg_;
  obs::Counter& probes_;
  obs::Counter& probe_failures_;
  obs::Counter& ejected_;
  obs::Counter& readmitted_;
  std::atomic<std::uint64_t> rounds_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace ttp::cluster

#endif  // !_WIN32
