#include "svc/wire.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/trace.hpp"
#include "tt/serialize.hpp"
#include "util/bits.hpp"

namespace ttp::svc {

namespace {

/// getline that strips a trailing '\r' so telnet/CRLF clients work.
bool get_line(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

std::string_view err_code(Status s) noexcept {
  switch (s) {
    case Status::kRejectedOversize:
      return "oversize";
    case Status::kRejectedQueueFull:
      return "overload";
    case Status::kCancelled:
      return "cancelled";
    case Status::kOk:
    case Status::kError:
      break;
  }
  return "internal";
}

void handle_solve(Service& svc, std::istream& in, std::ostream& out,
                  const SessionOptions& opts) {
  std::string blob;
  if (!read_solve_frame(in, out, opts, blob)) return;
  Response res;
  try {
    res = svc.solve(tt::from_text(blob));
  } catch (const std::exception& e) {
    write_err(out, "bad-request", e.what());
    return;
  }
  if (!res.ok()) {
    write_err(out, err_code(res.status), res.error);
    return;
  }
  std::ostringstream reply;
  reply.precision(17);
  reply << "OK cache=" << cache_outcome_name(res.cache) << " cost=" << res.cost
        << " nodes=" << res.tree.size()
        << " trace=" << obs::trace_hex(res.trace) << '\n'
        << tree_to_wire(res.tree) << "END\n";
  out << reply.str() << std::flush;
}

/// TRACE <id>: replay one request's flight record from the ring.
void handle_trace(Service& svc, const std::string& arg, std::ostream& out) {
  const std::uint64_t trace = obs::trace_from_hex(arg);
  if (trace == 0) {
    write_err(out, "bad-request", "TRACE expects a 16-hex-digit id");
    return;
  }
  const auto rec = svc.flight().find(trace);
  if (!rec.has_value()) {
    write_err(out, "not-found",
              "trace " + arg + " not in the flight recorder (ring holds " +
                  std::to_string(svc.flight().capacity()) +
                  " most recent requests)");
    return;
  }
  std::ostringstream reply;
  reply << "TRACE\n"
        << "trace: " << obs::trace_hex(rec->trace) << '\n';
  if (rec->leader != 0) {
    reply << "leader: " << obs::trace_hex(rec->leader) << '\n';
  }
  reply << "key: " << obs::trace_hex(rec->key_hi)
        << obs::trace_hex(rec->key_lo) << '\n'
        << "outcome: "
        << cache_outcome_name(static_cast<CacheOutcome>(rec->outcome)) << '\n'
        << "status: " << status_name(static_cast<Status>(rec->status)) << '\n'
        << "k: " << rec->k << '\n'
        << "actions: " << rec->actions << '\n'
        << "batch: " << rec->batch << '\n'
        << "batch_seq: " << rec->batch_seq << '\n'
        << "admit_us: " << rec->admit_us << '\n'
        << "queue_us: " << rec->queue_us << '\n'
        << "batch_us: " << rec->batch_us << '\n'
        << "solve_us: " << rec->solve_us << '\n'
        << "respond_us: " << rec->respond_us << '\n'
        << "e2e_us: " << rec->e2e_us << '\n'
        << "END\n";
  out << reply.str() << std::flush;
}

}  // namespace

void write_err(std::ostream& out, std::string_view code,
               const std::string& message) {
  // Newline-framed protocol: the message must stay on one line.
  std::string flat = message;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  out << "ERR " << code << ' ' << flat << '\n' << std::flush;
}

bool read_solve_frame(std::istream& in, std::ostream& out,
                      const SessionOptions& opts, std::string& blob) {
  blob.clear();
  std::string line;
  bool terminated = false;
  bool oversize = false;
  std::size_t bytes = 0;
  while (get_line(in, line)) {
    if (line == "END") {
      terminated = true;
      break;
    }
    if (oversize) continue;  // discard the rest of the frame unbuffered
    bytes += line.size() + 1;
    if (opts.max_frame_bytes != 0 && bytes > opts.max_frame_bytes) {
      // Reply before the frame finishes arriving: a hostile client gets its
      // verdict after max_frame_bytes, not after an arbitrarily large body.
      oversize = true;
      blob.clear();
      blob.shrink_to_fit();
      write_err(out, "oversize",
                "SOLVE frame exceeds max-frame-bytes=" +
                    std::to_string(opts.max_frame_bytes) +
                    "; discarding until END");
      continue;
    }
    blob += line;
    blob += '\n';
  }
  if (oversize) return false;  // already replied; session stays in sync
  if (!terminated) {
    // A frame cut by the transport's own deadline gets its verdict from the
    // transport ("ERR timeout ..."); only a client-side EOF mid-frame is a
    // protocol violation worth a reply of its own.
    if (opts.control == nullptr || !opts.control->transport_aborted()) {
      write_err(out, "bad-request", "SOLVE frame not terminated by END");
    }
    return false;
  }
  return true;
}

std::string tree_to_wire(const tt::Tree& tree) {
  std::ostringstream os;
  os << "tree " << tree.root() << '\n';
  for (int i = 0; i < tree.size(); ++i) {
    const tt::TreeNode& n = tree.node(i);
    os << "node " << i << ' ' << n.action << ' ' << n.yes << ' ' << n.no << ' '
       << util::mask_to_string(n.state) << '\n';
  }
  return os.str();
}

tt::Tree tree_from_wire(const std::string& text) {
  std::istringstream is(text);
  std::string kw;
  int root = -1;
  if (!(is >> kw) || kw != "tree" || !(is >> root)) {
    throw std::invalid_argument("tree_from_wire: missing 'tree <root>'");
  }
  std::vector<tt::TreeNode> nodes;
  while (is >> kw) {
    if (kw != "node") {
      throw std::invalid_argument("tree_from_wire: expected 'node', got '" +
                                  kw + "'");
    }
    int idx = 0;
    tt::TreeNode n;
    std::string set_tok;
    if (!(is >> idx >> n.action >> n.yes >> n.no >> set_tok)) {
      throw std::invalid_argument("tree_from_wire: malformed node line");
    }
    if (idx != static_cast<int>(nodes.size())) {
      throw std::invalid_argument("tree_from_wire: node indices must ascend");
    }
    if (n.action < -1) {
      throw std::invalid_argument("tree_from_wire: node " +
                                  std::to_string(idx) + " has action " +
                                  std::to_string(n.action) + " < -1");
    }
    if (set_tok.size() < 2 || set_tok.front() != '{' ||
        set_tok.back() != '}') {
      throw std::invalid_argument("tree_from_wire: bad state set '" + set_tok +
                                  "'");
    }
    tt::Mask state = 0;
    std::stringstream inner(set_tok.substr(1, set_tok.size() - 2));
    std::string piece;
    while (std::getline(inner, piece, ',')) {
      if (piece.empty()) continue;
      int bit = -1;
      try {
        std::size_t used = 0;
        bit = std::stoi(piece, &used);
        if (used != piece.size()) bit = -1;
      } catch (const std::exception&) {
        // fall through to the range check below with bit = -1
      }
      // Reject before util::bit: a shift by >= 32 (or negative) on Mask is
      // undefined behavior, and the wire must never reach it.
      if (bit < 0 || bit >= 32) {
        throw std::invalid_argument("tree_from_wire: state element '" + piece +
                                    "' is not a bit index in [0, 32)");
      }
      state |= util::bit(bit);
    }
    n.state = state;
    nodes.push_back(n);
  }
  if (nodes.empty() && root >= 0) {
    throw std::invalid_argument("tree_from_wire: root without nodes");
  }
  if (nodes.empty()) return tt::Tree();
  const int size = static_cast<int>(nodes.size());
  if (root < 0 || root >= size) {
    throw std::invalid_argument("tree_from_wire: root " +
                                std::to_string(root) + " outside [0, " +
                                std::to_string(size) + ")");
  }
  for (int i = 0; i < size; ++i) {
    for (const int arc : {nodes[static_cast<std::size_t>(i)].yes,
                          nodes[static_cast<std::size_t>(i)].no}) {
      if (arc < -1 || arc >= size) {
        throw std::invalid_argument(
            "tree_from_wire: node " + std::to_string(i) +
            " references node " + std::to_string(arc) + " outside [-1, " +
            std::to_string(size) + ")");
      }
    }
  }
  return tt::Tree(std::move(nodes), root);
}

SessionResult serve_session(Service& svc, std::istream& in, std::ostream& out,
                            const SessionOptions& opts) {
  SessionResult result;
  std::string line;
  for (;;) {
    if (opts.control != nullptr && opts.control->should_end()) {
      result.end = SessionEnd::kStopped;
      return result;
    }
    if (opts.control != nullptr) opts.control->on_boundary();
    if (!get_line(in, line)) {
      result.end = SessionEnd::kEof;
      return result;
    }
    if (line.empty()) continue;
    if (opts.control != nullptr) opts.control->on_frame();
    ++result.handled;
    if (line == "SOLVE") {
      handle_solve(svc, in, out, opts);
    } else if (line == "STATS") {
      out << "STATS\n" << svc.stats_text() << "END\n" << std::flush;
    } else if (line == "METRICS") {
      out << "METRICS\n" << svc.metrics_text() << "END\n" << std::flush;
    } else if (line == "HEALTH") {
      out << "HEALTH\n" << svc.health_text() << "END\n" << std::flush;
    } else if (line.rfind("TRACE ", 0) == 0) {
      handle_trace(svc, line.substr(6), out);
    } else if (line == "PING") {
      out << "PONG\n" << std::flush;
    } else if (line == "QUIT") {
      out << "BYE\n" << std::flush;
      result.end = SessionEnd::kQuit;
      return result;
    } else {
      write_err(out, "bad-request", "unknown command '" + line + "'");
    }
  }
}

std::size_t serve_session(Service& svc, std::istream& in, std::ostream& out) {
  return serve_session(svc, in, out, SessionOptions{}).handled;
}

}  // namespace ttp::svc
