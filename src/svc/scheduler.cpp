#include "svc/scheduler.hpp"

#include <algorithm>
#include <vector>

#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "tt/kernel.hpp"
#include "tt/sizing.hpp"
#include "tt/solver_frontier.hpp"

namespace ttp::svc {

namespace {

/// Admission and BatchSolver share one planner derived from the scheduler
/// config, so an instance the probe admitted is guaranteed the solve-time
/// expansion (same byte budget → same state cap) completes.
tt::FrontierConfig planner_from(const SchedulerConfig& cfg) {
  tt::FrontierConfig planner;
  planner.enable_sparse = cfg.max_sparse_k > 0;
  planner.dense_max_k = cfg.max_k;
  planner.max_state_bytes = cfg.sparse_budget_bytes;
  return planner;
}

}  // namespace

std::string_view status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kRejectedOversize:
      return "rejected-oversize";
    case Status::kRejectedQueueFull:
      return "rejected-queue-full";
    case Status::kCancelled:
      return "cancelled";
    case Status::kError:
      return "error";
  }
  return "unknown";
}

Scheduler::Scheduler(ProcedureCache& cache, SchedulerConfig cfg,
                     obs::MetricsRegistry& metrics, std::size_t workers)
    : cache_(cache),
      cfg_(cfg),
      solver_(workers, planner_from(cfg)),
      metrics_(metrics),
      leaders_(metrics.counter("svc.sched.leaders")),
      followers_(metrics.counter("svc.sched.followers")),
      rejected_oversize_(metrics.counter("svc.sched.rejected_oversize")),
      rejected_queue_full_(metrics.counter("svc.sched.rejected_queue_full")),
      cancelled_(metrics.counter("svc.sched.cancelled")),
      batches_(metrics.counter("svc.solve.batches")),
      kernel_instances_(metrics.counter("svc.solve.kernel_instances")),
      batch_size_(metrics.histogram("svc.solve.batch_size")),
      queue_depth_gauge_(metrics.gauge("svc.queue.depth")) {
  cfg_.max_batch = std::max<std::size_t>(cfg_.max_batch, 1);
  if (cfg_.autostart) start();
}

Scheduler::~Scheduler() { stop(); }

Scheduler::Ticket Scheduler::ready_ticket(Status status, std::string error) {
  std::promise<SolveOutcome> p;
  p.set_value(SolveOutcome{status, nullptr, std::move(error)});
  return Ticket{p.get_future().share(), false};
}

Scheduler::Ticket Scheduler::submit(const Canonical& canon,
                                    std::uint64_t trace) {
  const tt::Instance& ins = canon.instance;
  // Admission, most specific limit first; each rejection names the limit
  // that tripped so a client can tell "shrink N" from "shrink k" from
  // "this k would be fine with fewer/looser tests".
  if (ins.num_actions() > cfg_.max_actions) {
    rejected_oversize_.add(1);
    return ready_ticket(
        Status::kRejectedOversize,
        "instance exceeds admission limits (actions): N=" +
            std::to_string(ins.num_actions()) + " (max " +
            std::to_string(cfg_.max_actions) + ")");
  }
  const int k_ceiling = std::max(cfg_.max_k, cfg_.max_sparse_k);
  if (ins.k() > k_ceiling) {
    rejected_oversize_.add(1);
    return ready_ticket(
        Status::kRejectedOversize,
        "instance exceeds admission limits (k): k=" + std::to_string(ins.k()) +
            " (max " + std::to_string(cfg_.max_k) + " dense, " +
            std::to_string(k_ceiling) + " sparse)");
  }
  if (ins.k() > cfg_.max_k) {
    // Sparse tier: admit only when a bounded closure probe proves the
    // reachable set fits the byte budget. The probe cap equals the
    // solve-time planner's cap (same FrontierConfig arithmetic), so an
    // admitted instance cannot fail expansion inside the batch solver.
    const std::size_t cap = planner_from(cfg_).state_budget(ins.k());
    const tt::ReachableEstimate est = tt::estimate_reachable(ins, cap);
    if (!est.exact) {
      rejected_oversize_.add(1);
      return ready_ticket(
          Status::kRejectedOversize,
          "instance exceeds admission limits (sparse-budget): k=" +
              std::to_string(ins.k()) + " reachable closure needs >" +
              std::to_string(est.states * tt::kSparseBytesPerState) +
              " bytes (budget " + std::to_string(cfg_.sparse_budget_bytes) +
              ")");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) {
    // A submit racing shutdown (a session that read its SOLVE command just
    // before the drain deadline cancelled the scheduler) must resolve, not
    // enqueue onto a queue nobody will ever drain — that would hang the
    // waiter forever and with it the drain itself.
    cancelled_.add(1);
    return ready_ticket(Status::kCancelled, "service shutting down");
  }
  if (const auto it = inflight_.find(canon.key); it != inflight_.end()) {
    followers_.add(1);
    // The follower->leader link: the joined solve belongs to the leader's
    // trace, which is what a TRACE replay of this request points at.
    return Ticket{it->second->future, false, it->second->trace};
  }
  if (queue_.size() >= cfg_.max_queue) {
    rejected_queue_full_.add(1);
    return ready_ticket(Status::kRejectedQueueFull,
                        "request queue full (" +
                            std::to_string(cfg_.max_queue) + " pending)");
  }
  auto entry = std::make_shared<Entry>(canon.key, canon.instance, trace);
  inflight_.emplace(canon.key, entry);
  queue_.push_back(entry);
  leaders_.add(1);
  queue_depth_gauge_.set(static_cast<double>(queue_.size()));
  cv_.notify_one();
  return Ticket{entry->future, true, trace};
}

void Scheduler::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_ || stop_) return;
  running_ = true;
  drainer_ = std::thread(&Scheduler::drain_loop, this);
}

void Scheduler::stop() {
  std::thread drainer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    drainer = std::move(drainer_);
  }
  cv_.notify_all();
  // The drain thread finishes (and resolves) its current batch before it
  // observes stop_, so joining here never abandons a mid-solve entry.
  if (drainer.joinable()) drainer.join();
  std::vector<std::shared_ptr<Entry>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphaned.reserve(inflight_.size());
    for (auto& [key, entry] : inflight_) orphaned.push_back(entry);
    inflight_.clear();
    queue_.clear();
    queue_depth_gauge_.set(0.0);
    running_ = false;
  }
  // Resolve outside the lock: a waiter's continuation may call back in.
  for (auto& entry : orphaned) {
    cancelled_.add(1);
    entry->promise.set_value(
        SolveOutcome{Status::kCancelled, nullptr, "service shutting down"});
  }
}

std::size_t Scheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void Scheduler::drain_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;  // stop() cancels whatever is still queued
    // Micro-batch window: hold the first miss for up to batch_delay so
    // concurrent misses ride the same solve_many call.
    const auto deadline = std::chrono::steady_clock::now() + cfg_.batch_delay;
    cv_.wait_until(lock, deadline, [&] {
      return stop_ || queue_.size() >= cfg_.max_batch;
    });
    if (stop_) return;
    std::deque<std::shared_ptr<Entry>> batch;
    const std::size_t take = std::min(queue_.size(), cfg_.max_batch);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    queue_depth_gauge_.set(static_cast<double>(queue_.size()));
    lock.unlock();
    solve_batch(batch);
    lock.lock();
  }
}

void Scheduler::solve_batch(std::deque<std::shared_ptr<Entry>>& batch) {
  const std::int64_t drain_ns = obs::steady_now_ns();
  const std::uint32_t batch_seq = ++batch_seq_;
  TTP_TRACE_SPAN(span, "svc.solve");
  span.attr("batch", static_cast<std::uint64_t>(batch.size()));
  span.attr("batch_seq", static_cast<std::uint64_t>(batch_seq));
  std::vector<const tt::Instance*> ptrs;
  std::vector<std::uint64_t> traces;
  ptrs.reserve(batch.size());
  traces.reserve(batch.size());
  for (const auto& entry : batch) {
    ptrs.push_back(&entry->instance);
    traces.push_back(entry->trace);
  }

  std::vector<tt::SolveResult> results;
  std::string error;
  const std::int64_t solve_start_ns = obs::steady_now_ns();
  try {
    results = solver_.solve_many(std::span<const tt::Instance* const>(ptrs),
                                 traces);
  } catch (const std::exception& e) {
    error = e.what();
  }
  const std::int64_t solve_end_ns = obs::steady_now_ns();
  batches_.add(1);
  batch_size_.record(batch.size());

  std::vector<SolveOutcome> outcomes(batch.size());
  for (auto& o : outcomes) {
    o.drain_ns = drain_ns;
    o.solve_start_ns = solve_start_ns;
    o.solve_end_ns = solve_end_ns;
    o.batch = static_cast<std::uint32_t>(batch.size());
    o.batch_seq = batch_seq;
  }
  if (error.empty()) {
    kernel_instances_.add(batch.size());
    // Per-solve variant attribution: svc.solve.variant.{scalar,simd-*}
    // counts instances, so STATS shows how much traffic each kernel path
    // actually served (the active variant can change at runtime).
    metrics_
        .counter(std::string("svc.solve.variant.") +
                 std::string(tt::active_kernel_variant_name()))
        .add(batch.size());
    // Frontier attribution: how many instances the sparse reachable-set
    // path served, how many closure states it touched doing so, and how
    // often a budget-capped expansion fell back dense.
    std::uint64_t fr_instances = 0, fr_states = 0, fr_fallback = 0;
    for (auto& r : results) {
      const std::uint64_t st = r.breakdown.counter("frontier_states").value();
      if (st != 0) {
        ++fr_instances;
        fr_states += st;
      }
      fr_fallback += r.breakdown.counter("frontier_fallback").value();
    }
    if (fr_instances != 0) {
      metrics_.add("svc.solve.frontier.instances", fr_instances);
      metrics_.add("svc.solve.frontier.states", fr_states);
    }
    if (fr_fallback != 0) {
      metrics_.add("svc.solve.frontier.fallback", fr_fallback);
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      auto proc = std::make_shared<CachedProcedure>();
      proc->tree = std::move(results[i].tree);
      proc->cost = results[i].cost;
      proc->bytes = approx_bytes(*proc);
      cache_.insert(batch[i]->key, proc);
      outcomes[i].status = Status::kOk;
      outcomes[i].proc = std::move(proc);
    }
  } else {
    for (auto& o : outcomes) {
      o.status = Status::kError;
      o.error = error;
    }
  }
  // Write-behind handles for the durable store, taken before the outcomes
  // are moved into the promises below.
  std::vector<std::pair<CanonKey, std::shared_ptr<const CachedProcedure>>>
      to_store;
  if (store_ != nullptr && error.empty()) {
    to_store.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      to_store.emplace_back(batch[i]->key, outcomes[i].proc);
    }
  }
  // Retire AFTER the cache insert so every moment of an entry's life is
  // covered: in flight (followers join) until here, cached from here on.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : batch) inflight_.erase(entry->key);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i]->promise.set_value(std::move(outcomes[i]));
  }
  // Durable tier, write-behind: waiters are already resolved, so disk
  // latency (and fsync policy) never shows up in a response. A failed put
  // degrades to "re-solve after the next restart", counted by the store.
  for (const auto& [key, proc] : to_store) {
    store_->put(store::StoreKey{key.hi, key.lo}, proc->cost, proc->tree);
  }
}

}  // namespace ttp::svc
