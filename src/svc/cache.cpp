#include "svc/cache.hpp"

#include <algorithm>
#include <bit>

namespace ttp::svc {

std::size_t approx_bytes(const CachedProcedure& proc) {
  // Tree storage dominates for real procedures, but an entry's fixed
  // footprint is charged explicitly so a flood of tiny (small-k) entries
  // cannot blow past the byte budget while the accountant still reads
  // "nearly empty". Three heap allocations back one entry: the make_shared
  // block, the LRU list node, and the hash-map node.
  constexpr std::size_t kAllocHeader = 16;  // malloc bookkeeping per alloc
  // make_shared control block: vptr + two refcounts, padded.
  constexpr std::size_t kControlBlock = 4 * sizeof(void*);
  // std::list node: prev/next + Entry{key, shared_ptr, expiry}.
  constexpr std::size_t kListNode =
      2 * sizeof(void*) + sizeof(CanonKey) + sizeof(std::shared_ptr<void>) +
      sizeof(std::chrono::steady_clock::time_point);
  // unordered_map node: next ptr + cached hash + pair<key, iterator>, plus
  // this entry's share of the bucket array.
  constexpr std::size_t kMapNode = 2 * sizeof(void*) + sizeof(CanonKey) +
                                   sizeof(void*) + sizeof(void*);
  return sizeof(CachedProcedure) +
         proc.tree.nodes().capacity() * sizeof(tt::TreeNode) +
         kControlBlock + kListNode + kMapNode + 3 * kAllocHeader;
}

ProcedureCache::ProcedureCache(CacheConfig cfg, obs::MetricsRegistry& metrics)
    : cfg_(std::move(cfg)),
      hits_(metrics.counter("svc.cache.hits")),
      misses_(metrics.counter("svc.cache.misses")),
      inserts_(metrics.counter("svc.cache.inserts")),
      evictions_(metrics.counter("svc.cache.evictions")),
      expired_(metrics.counter("svc.cache.expired")),
      bytes_gauge_(metrics.gauge("svc.cache.bytes")) {
  const std::size_t n = std::bit_ceil(std::max<std::size_t>(cfg_.shards, 1));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_capacity_ = std::max<std::size_t>(cfg_.capacity_bytes / n, 1);
}

void ProcedureCache::erase_locked(Shard& s, std::list<Entry>::iterator it) {
  s.bytes -= it->proc->bytes;
  s.index.erase(it->key);
  s.lru.erase(it);
}

void ProcedureCache::publish_bytes() { bytes_gauge_.set(double(bytes())); }

std::shared_ptr<const CachedProcedure> ProcedureCache::find(
    const CanonKey& key) {
  Shard& s = shard_of(key);
  std::shared_ptr<const CachedProcedure> out;
  bool erased = false;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.index.find(key);
    if (it == s.index.end()) {
      misses_.add(1);
      return nullptr;
    }
    if (cfg_.ttl.count() > 0 && cfg_.now() >= it->second->expiry) {
      erase_locked(s, it->second);
      expired_.add(1);
      misses_.add(1);
      erased = true;
    } else {
      s.lru.splice(s.lru.begin(), s.lru, it->second);  // bump to MRU
      out = it->second->proc;
      hits_.add(1);
    }
  }
  if (erased) publish_bytes();
  return out;
}

void ProcedureCache::insert(const CanonKey& key,
                            std::shared_ptr<const CachedProcedure> p) {
  const auto expiry = cfg_.ttl.count() > 0
                          ? cfg_.now() + cfg_.ttl
                          : Clock::time_point::max();
  Shard& s = shard_of(key);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.index.find(key);
    if (it != s.index.end()) erase_locked(s, it->second);
    s.lru.push_front(Entry{key, std::move(p), expiry});
    s.bytes += s.lru.front().proc->bytes;
    s.index.emplace(key, s.lru.begin());
    inserts_.add(1);
    // Evict LRU tail entries until this shard fits its capacity share; the
    // just-inserted entry survives even when it alone exceeds the share
    // (rejecting it would make oversized-but-admitted instances uncacheable
    // and re-solved forever).
    while (s.bytes > shard_capacity_ && s.lru.size() > 1) {
      erase_locked(s, std::prev(s.lru.end()));
      evictions_.add(1);
    }
  }
  publish_bytes();
}

std::size_t ProcedureCache::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->index.size();
  }
  return n;
}

std::size_t ProcedureCache::bytes() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->bytes;
  }
  return n;
}

void ProcedureCache::clear() {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->lru.clear();
    s->index.clear();
    s->bytes = 0;
  }
  publish_bytes();
}

}  // namespace ttp::svc
