// Sharded LRU procedure cache: canonical key -> solved procedure.
//
// The serving hot path is read-mostly with high key skew (popular instances
// repeat), so the cache is N-way sharded by key hash: each shard owns an
// intrusive LRU list plus a hash map under its own mutex, and capacity is
// accounted in bytes (tree storage dominates, and a k=20 tree is ~6 orders
// larger than a k=4 one, so entry counts would be meaningless).
//
// Entries are handed out as shared_ptr<const CachedProcedure>, so an entry
// evicted while a response is still being serialized stays alive until the
// last reader drops it. TTL is optional (0 = entries never expire) and the
// clock is injectable so tests can expire entries without sleeping.
//
// Counters land in the owning service's obs::MetricsRegistry under
// svc.cache.{hits,misses,inserts,evictions,expired} with a svc.cache.bytes
// gauge; they are always on (the registry is the service's own, not the
// global tracer's, so serving stats exist even with TTP_TRACE=off).
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/canon.hpp"
#include "tt/tree.hpp"

namespace ttp::svc {

/// A solved canonical instance, as stored (and served) by the cache. The
/// tree's action indices refer to the canonical instance; `cost` is the
/// canonical expected cost (multiply by the request's weight_scale).
struct CachedProcedure {
  tt::Tree tree;
  double cost = 0.0;
  std::size_t bytes = 0;  ///< Accounting size, set by approx_bytes().
};

/// Conservative per-entry footprint: node storage + map/list bookkeeping.
std::size_t approx_bytes(const CachedProcedure& proc);

struct CacheConfig {
  std::size_t capacity_bytes = std::size_t{64} << 20;
  std::size_t shards = 8;  ///< Rounded up to a power of two, minimum 1.
  std::chrono::nanoseconds ttl{0};  ///< 0 = no expiry.
  /// Time source (tests inject a fake clock to exercise TTL).
  std::function<std::chrono::steady_clock::time_point()> now =
      [] { return std::chrono::steady_clock::now(); };
};

class ProcedureCache {
 public:
  ProcedureCache(CacheConfig cfg, obs::MetricsRegistry& metrics);

  ProcedureCache(const ProcedureCache&) = delete;
  ProcedureCache& operator=(const ProcedureCache&) = delete;

  /// Hit: bumps the entry to most-recent and returns it. Expired or absent:
  /// counts a miss (plus svc.cache.expired for lazily collected entries)
  /// and returns nullptr.
  std::shared_ptr<const CachedProcedure> find(const CanonKey& key);

  /// Inserts (or refreshes) the entry and evicts least-recently-used
  /// entries from the shard until it fits its capacity share.
  void insert(const CanonKey& key, std::shared_ptr<const CachedProcedure> p);

  std::size_t size() const;   ///< Live entries across all shards.
  std::size_t bytes() const;  ///< Accounted bytes across all shards.
  void clear();

  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Configured byte budget across all shards (HEALTH reports bytes/capacity).
  std::size_t capacity_bytes() const noexcept { return cfg_.capacity_bytes; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    CanonKey key;
    std::shared_ptr<const CachedProcedure> proc;
    Clock::time_point expiry;  ///< time_point::max() when TTL is off.
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< Front = most recently used.
    std::unordered_map<CanonKey, std::list<Entry>::iterator, CanonKeyHash>
        index;
    std::size_t bytes = 0;
  };

  Shard& shard_of(const CanonKey& key) {
    return *shards_[static_cast<std::size_t>(CanonKeyHash{}(key)) &
                    (shards_.size() - 1)];
  }
  void erase_locked(Shard& s, std::list<Entry>::iterator it);
  void publish_bytes();

  CacheConfig cfg_;
  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& inserts_;
  obs::Counter& evictions_;
  obs::Counter& expired_;
  obs::Gauge& bytes_gauge_;
};

}  // namespace ttp::svc
