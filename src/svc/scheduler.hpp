// Singleflight scheduler: dedupes in-flight identical keys, micro-batches
// distinct cache misses into BatchSolver::solve_many, and applies admission
// control so one oversized 2^k request cannot take down the service.
//
// Request lifecycle:
//
//   submit(canonical) ── admission ──> typed reject (oversize / queue full)
//        │
//        ├─ key already in flight ──> follower: the existing entry's
//        │                            shared_future (one solve, M waiters)
//        └─ leader: entry enqueued; the drain thread collects up to
//           max_batch distinct entries (waiting at most batch_delay after
//           the first arrival), solves them in one solve_many call, inserts
//           results into the cache, THEN retires the entries and resolves
//           their futures — so a request arriving mid-solve joins the
//           in-flight entry, and one arriving after retirement hits cache.
//
// Shutdown (stop()/destructor) joins the drain thread and resolves every
// still-pending future with Status::kCancelled; no future is ever leaked
// unresolved, so callers blocked in wait() always wake. A submit() that
// arrives after stop() resolves immediately with kCancelled too (the
// server's graceful-drain path relies on this: a request racing the drain
// deadline gets a terminal "ERR cancelled" reply instead of hanging its
// session on a queue nobody drains).
//
// Tests can construct with cfg.autostart = false to stage deterministic
// queue states (fill the queue, observe singleflight, cancel in-flight)
// before calling start().
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "store/store.hpp"
#include "svc/cache.hpp"
#include "svc/canon.hpp"
#include "tt/solver_batch.hpp"

namespace ttp::svc {

/// Terminal status of a request.
enum class Status {
  kOk = 0,
  kRejectedOversize,   ///< k or N above the configured admission limits.
  kRejectedQueueFull,  ///< Queue depth at max_queue; shed, retry later.
  kCancelled,          ///< Service shut down before the solve ran.
  kError,              ///< Malformed instance or solver failure; see error.
};

std::string_view status_name(Status s) noexcept;

/// What a waiter receives. `proc` is set exactly when status == kOk.
/// The *_ns stamps (obs::steady_now_ns timebase) let each waiter compute
/// its own per-stage latencies: queue wait ends at drain_ns, batch
/// formation at solve_start_ns, the kernel at solve_end_ns. All zero for
/// outcomes that never reached the drain thread (rejects, cancels).
struct SolveOutcome {
  Status status = Status::kCancelled;
  std::shared_ptr<const CachedProcedure> proc;
  std::string error;
  std::int64_t drain_ns = 0;        ///< Entry left the queue.
  std::int64_t solve_start_ns = 0;  ///< solve_many began.
  std::int64_t solve_end_ns = 0;    ///< solve_many returned.
  std::uint32_t batch = 0;          ///< Instances in the solving batch.
  std::uint32_t batch_seq = 0;      ///< 1-based drain-batch ordinal.
};

struct SchedulerConfig {
  std::size_t max_queue = 1024;  ///< Max queued (not yet solving) leaders.
  std::size_t max_batch = 32;    ///< Micro-batch size cap.
  /// How long the drain thread waits after the first queued miss for more
  /// misses to batch with; the latency/throughput knob.
  std::chrono::microseconds batch_delay{200};
  int max_k = 20;          ///< Admission: dense ceiling; see max_sparse_k.
  int max_actions = 4096;  ///< Admission: reject instances above this N.
  /// Admission: instances with max_k < k ≤ max_sparse_k are admitted iff a
  /// bounded closure probe (tt::estimate_reachable) proves their reachable
  /// set fits sparse_budget_bytes — the sparse frontier solver then serves
  /// them without ever materializing 2^k tables. Set to 0 to disable the
  /// sparse solver entirely (admission then caps at max_k and every solve
  /// runs dense); values ≤ max_k keep the adaptive sparse path for large
  /// in-dense-range instances but admit nothing above max_k.
  int max_sparse_k = 24;
  /// Byte budget for one sparse solve's closure tables; both the admission
  /// probe and the solve-time planner derive their state caps from it, so
  /// an admitted instance cannot fail expansion later.
  std::size_t sparse_budget_bytes = std::size_t{64} << 20;
  bool autostart = true;  ///< false: nothing drains until start().
};

class Scheduler {
 public:
  Scheduler(ProcedureCache& cache, SchedulerConfig cfg,
            obs::MetricsRegistry& metrics, std::size_t workers = 0);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  struct Ticket {
    std::shared_future<SolveOutcome> future;
    bool leader = false;  ///< True when this submit enqueued the solve.
    /// Trace ID of the request that owns the in-flight solve: the caller's
    /// own ID when leader, the leader's when joining as a follower (the
    /// follower->leader link the flight recorder stores), 0 on rejection.
    std::uint64_t leader_trace = 0;
  };

  /// Admission check + singleflight join + enqueue. Rejections come back as
  /// already-resolved futures, so callers have a single wait path.
  /// `trace` is the caller's request trace ID; it propagates into the
  /// kernel-level spans of the solve this request leads.
  Ticket submit(const Canonical& canon, std::uint64_t trace = 0);

  /// Launches the drain thread (idempotent). Called from the constructor
  /// unless cfg.autostart is false.
  void start();
  /// Stops draining and cancels everything still pending (idempotent).
  void stop();

  /// Attaches the durable store for write-behind: after a batch resolves,
  /// its results are appended to `store` (waiters are never delayed by disk
  /// I/O — the promise is set first). The store must outlive this scheduler;
  /// Service guarantees that by declaration order. nullptr detaches.
  void set_store(store::ProcedureStore* store) noexcept { store_ = store; }

  std::size_t queue_depth() const;
  std::size_t workers() const noexcept { return solver_.workers(); }

 private:
  struct Entry {
    CanonKey key;
    tt::Instance instance;  // canonical form; solved as-is
    std::uint64_t trace;    // leader's trace ID (followers link to it)
    std::promise<SolveOutcome> promise;
    std::shared_future<SolveOutcome> future;
    Entry(const CanonKey& k, tt::Instance ins, std::uint64_t t)
        : key(k),
          instance(std::move(ins)),
          trace(t),
          future(promise.get_future()) {}
  };

  static Ticket ready_ticket(Status status, std::string error);
  void drain_loop();
  void solve_batch(std::deque<std::shared_ptr<Entry>>& batch);

  ProcedureCache& cache_;
  store::ProcedureStore* store_ = nullptr;  ///< Write-behind tier; optional.
  SchedulerConfig cfg_;
  tt::BatchSolver solver_;
  /// For the per-solve kernel-variant counters: the variant can be re-pinned
  /// at runtime (set_kernel_variant), so the counter name is looked up per
  /// batch rather than bound once in the constructor.
  obs::MetricsRegistry& metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Entry>> queue_;  ///< Leaders not yet solving.
  /// Every unresolved entry (queued or mid-solve); followers join here.
  std::unordered_map<CanonKey, std::shared_ptr<Entry>, CanonKeyHash>
      inflight_;
  bool running_ = false;
  bool stop_ = false;
  std::uint32_t batch_seq_ = 0;  ///< Drain-batch ordinal (drain thread only).
  std::thread drainer_;

  obs::Counter& leaders_;
  obs::Counter& followers_;
  obs::Counter& rejected_oversize_;
  obs::Counter& rejected_queue_full_;
  obs::Counter& cancelled_;
  obs::Counter& batches_;
  obs::Counter& kernel_instances_;
  obs::Histogram& batch_size_;
  obs::Gauge& queue_depth_gauge_;
};

}  // namespace ttp::svc
