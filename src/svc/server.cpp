#include "svc/server.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace ttp::svc {

bool parse_flag_long(const std::string& arg, const char* flag, long min,
                     long max, long& out, std::string& error) {
  const std::string value = arg.substr(std::strlen(flag) + 1);
  bool ok = !value.empty();
  std::size_t i = value[0] == '-' ? 1 : 0;
  ok = ok && i < value.size();
  long v = 0;
  for (; ok && i < value.size(); ++i) {
    const char c = value[i];
    if (c < '0' || c > '9') {
      ok = false;
      break;
    }
    if (v > (std::numeric_limits<long>::max() - (c - '0')) / 10) {
      ok = false;  // would overflow long
      break;
    }
    v = v * 10 + (c - '0');
  }
  if (ok && value[0] == '-') v = -v;
  if (!ok || v < min || v > max) {
    error = "bad value for " + std::string(flag) + ": '" + value +
            "' (accepted range: " + std::to_string(min) + ".." +
            std::to_string(max) + ")";
    return false;
  }
  out = v;
  return true;
}

namespace {

/// Local shorthand for the serve-args table below.
bool parse_long(const std::string& arg, const char* flag, long min, long max,
                long& out, std::string& error) {
  return parse_flag_long(arg, flag, min, max, out, error);
}

}  // namespace

bool parse_serve_args(int argc, const char* const* argv, ServeArgs& args,
                      std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto is = [&](const char* flag) {
      return arg.rfind(std::string(flag) + "=", 0) == 0;
    };
    // Each flag gets an explicit range: a negative or zero count must be a
    // startup error, not a silent wrap into a huge unsigned config field
    // (--cache-mb=-1 used to become a ~2^64-byte cache capacity).
    long v = 0;
    if (arg == "--help" || arg == "-h") {
      args.help = true;
      return true;
    } else if (is("--port")) {
      if (!parse_long(arg, "--port", 0, 65535, v, error)) return false;
      args.port = static_cast<int>(v);
    } else if (is("--workers")) {
      if (!parse_long(arg, "--workers", 1, 4096, v, error)) return false;
      args.cfg.workers = static_cast<std::size_t>(v);
    } else if (is("--cache-mb")) {
      if (!parse_long(arg, "--cache-mb", 1, 1 << 20, v, error)) return false;
      args.cfg.cache.capacity_bytes = static_cast<std::size_t>(v) << 20;
    } else if (is("--shards")) {
      if (!parse_long(arg, "--shards", 1, 1024, v, error)) return false;
      args.cfg.cache.shards = static_cast<std::size_t>(v);
    } else if (is("--ttl-ms")) {
      if (!parse_long(arg, "--ttl-ms", 0, 1'000'000'000L, v, error)) {
        return false;
      }
      args.cfg.cache.ttl = std::chrono::milliseconds(v);
    } else if (is("--max-k")) {
      if (!parse_long(arg, "--max-k", 1, 32, v, error)) return false;
      args.cfg.scheduler.max_k = static_cast<int>(v);
    } else if (is("--max-actions")) {
      if (!parse_long(arg, "--max-actions", 1, 1'000'000, v, error)) {
        return false;
      }
      args.cfg.scheduler.max_actions = static_cast<int>(v);
    } else if (is("--max-sparse-k")) {
      if (!parse_long(arg, "--max-sparse-k", 0, 24, v, error)) return false;
      args.cfg.scheduler.max_sparse_k = static_cast<int>(v);
    } else if (is("--sparse-budget-mb")) {
      if (!parse_long(arg, "--sparse-budget-mb", 1, 1 << 20, v, error)) {
        return false;
      }
      args.cfg.scheduler.sparse_budget_bytes = static_cast<std::size_t>(v)
                                               << 20;
    } else if (is("--max-queue")) {
      if (!parse_long(arg, "--max-queue", 1, 10'000'000, v, error)) {
        return false;
      }
      args.cfg.scheduler.max_queue = static_cast<std::size_t>(v);
    } else if (is("--max-batch")) {
      if (!parse_long(arg, "--max-batch", 1, 65536, v, error)) return false;
      args.cfg.scheduler.max_batch = static_cast<std::size_t>(v);
    } else if (is("--batch-delay-us")) {
      if (!parse_long(arg, "--batch-delay-us", 0, 10'000'000, v, error)) {
        return false;
      }
      args.cfg.scheduler.batch_delay = std::chrono::microseconds(v);
    } else if (is("--slow-ms")) {
      if (!parse_long(arg, "--slow-ms", 0, 1'000'000'000L, v, error)) {
        return false;
      }
      args.cfg.telemetry.slow_ms = static_cast<int>(v);
    } else if (is("--slow-log")) {
      args.cfg.telemetry.slow_log = arg.substr(std::strlen("--slow-log="));
    } else if (is("--flight-cap")) {
      if (!parse_long(arg, "--flight-cap", 8, 1 << 24, v, error)) {
        return false;
      }
      args.cfg.telemetry.flight_capacity = static_cast<std::size_t>(v);
    } else if (is("--max-conns")) {
      if (!parse_long(arg, "--max-conns", 1, 65536, v, error)) return false;
      args.server.max_conns = static_cast<std::size_t>(v);
    } else if (is("--idle-timeout-ms")) {
      if (!parse_long(arg, "--idle-timeout-ms", 0, 1'000'000'000L, v,
                      error)) {
        return false;
      }
      args.server.idle_timeout_ms = static_cast<int>(v);
    } else if (is("--read-timeout-ms")) {
      if (!parse_long(arg, "--read-timeout-ms", 0, 1'000'000'000L, v,
                      error)) {
        return false;
      }
      args.server.read_timeout_ms = static_cast<int>(v);
    } else if (is("--drain-timeout-ms")) {
      if (!parse_long(arg, "--drain-timeout-ms", 1, 1'000'000'000L, v,
                      error)) {
        return false;
      }
      args.server.drain_timeout_ms = static_cast<int>(v);
    } else if (is("--max-frame-bytes")) {
      if (!parse_long(arg, "--max-frame-bytes", 1024, 1L << 30, v, error)) {
        return false;
      }
      args.server.max_frame_bytes = static_cast<std::size_t>(v);
    } else if (is("--store-dir")) {
      args.cfg.store.dir = arg.substr(std::strlen("--store-dir="));
      if (args.cfg.store.dir.empty()) {
        error = "bad value for --store-dir: empty path";
        return false;
      }
    } else if (is("--store-sync")) {
      const std::string value = arg.substr(std::strlen("--store-sync="));
      if (!store::parse_sync_mode(value, args.cfg.store.sync)) {
        error = "bad value for --store-sync: '" + value +
                "' (accepted: none, batch, always)";
        return false;
      }
    } else if (is("--store-max-mb")) {
      if (!parse_long(arg, "--store-max-mb", 1, 1 << 20, v, error)) {
        return false;
      }
      args.cfg.store.max_bytes = static_cast<std::uint64_t>(v) << 20;
    } else if (is("--store-ttl-s")) {
      if (!parse_long(arg, "--store-ttl-s", 0, 1'000'000'000L, v, error)) {
        return false;
      }
      args.cfg.store.ttl_seconds = static_cast<std::uint64_t>(v);
    } else {
      error = "unknown argument '" + arg + "'";
      return false;
    }
  }
  args.server.port = args.port;
  return true;
}

}  // namespace ttp::svc

#ifndef _WIN32

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <istream>
#include <ostream>
#include <thread>

#include "obs/trace.hpp"

namespace ttp::svc {

namespace {

/// Poll slice so blocked reads notice drain/deadlines promptly without
/// burning CPU.
constexpr int kPollSliceMs = 100;

/// send() that cannot raise SIGPIPE (the Server also runs inside test
/// binaries that do not ignore it); falls back to write() for non-sockets.
long send_nosignal(int fd, const void* buf, std::size_t n) noexcept {
  const ssize_t sent = ::send(fd, buf, n, MSG_NOSIGNAL);
  if (sent < 0 && errno == ENOTSOCK) {
    return static_cast<long>(::write(fd, buf, n));
  }
  return static_cast<long>(sent);
}

}  // namespace

FdStreamBuf::FdStreamBuf(int fd, Options opts)
    : fd_(fd), opts_(opts), inject_(opts.faults) {
  setg(rbuf_, rbuf_, rbuf_);
  setp(wbuf_, wbuf_ + sizeof(wbuf_));
  on_boundary();
}

bool FdStreamBuf::draining() const noexcept {
  return opts_.drain != nullptr &&
         opts_.drain->load(std::memory_order_relaxed);
}

void FdStreamBuf::on_boundary() {
  at_boundary_ = true;
  deadline_ns_ = opts_.idle_timeout_ms > 0
                     ? obs::steady_now_ns() +
                           static_cast<std::int64_t>(opts_.idle_timeout_ms) *
                               1'000'000
                     : 0;
}

void FdStreamBuf::on_frame() {
  at_boundary_ = false;
  // One deadline for the whole frame, armed at frame entry and *not* reset
  // per byte: a client trickling a SOLVE body one byte per second is evicted
  // at read_timeout_ms, not granted a fresh budget per byte.
  deadline_ns_ = opts_.read_timeout_ms > 0
                     ? obs::steady_now_ns() +
                           static_cast<std::int64_t>(opts_.read_timeout_ms) *
                               1'000'000
                     : 0;
}

void FdStreamBuf::arm_deadline_ms(int ms) noexcept {
  // A client-side per-call budget. at_boundary_ stays false so a draining
  // flag (never set on the client side anyway) cannot cut a read short.
  at_boundary_ = false;
  deadline_ns_ =
      ms > 0 ? obs::steady_now_ns() + static_cast<std::int64_t>(ms) * 1'000'000
             : 0;
}

bool FdStreamBuf::pending_readable() const noexcept {
  if (gptr() < egptr()) return true;  // bytes already decoded and buffered
  pollfd pfd{fd_, POLLIN, 0};
  return ::poll(&pfd, 1, 0) > 0;
}

bool FdStreamBuf::should_end() {
  // A drain ends the session at the next command boundary — but a request
  // that was fully on the wire before the drain began is in flight from
  // the client's point of view and still gets its terminal reply.
  return draining() && !pending_readable();
}

int FdStreamBuf::remaining_ms() const noexcept {
  if (deadline_ns_ == 0) return -1;
  const std::int64_t left = deadline_ns_ - obs::steady_now_ns();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<std::int64_t>(left / 1'000'000 + 1,
                                                 1'000'000'000));
}

std::streambuf::int_type FdStreamBuf::underflow() {
  for (;;) {
    // Between commands a draining server ends the session here — unless
    // request bytes are already queued, which means a command crossed the
    // drain on the wire and must still be served. Inside a frame the read
    // proceeds (under its deadline) so an in-flight SOLVE body is not torn
    // by the drain itself.
    if (at_boundary_ && draining() && !pending_readable()) {
      event_ = Event::kDrain;
      return traits_type::eof();
    }
    const int rem = remaining_ms();
    if (rem == 0) {
      event_ = Event::kTimedOut;
      return traits_type::eof();
    }
    int wait = kPollSliceMs;
    if (rem > 0 && rem < wait) wait = rem;
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, wait);
    if (pr < 0) {
      if (errno == EINTR) continue;
      event_ = Event::kError;
      return traits_type::eof();
    }
    if (pr == 0) continue;  // slice expired; recheck drain and deadline
    const long n = inject_.read(fd_, rbuf_, sizeof(rbuf_));
    if (n < 0) {
      // EINTR is a retry, never EOF (the original streambuf dropped the
      // session here; fault mode eintr:N now exercises this loop for real).
      // EAGAIN can surface through the SO_RCVTIMEO backstop.
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      event_ = Event::kError;
      return traits_type::eof();
    }
    if (n == 0) {
      event_ = Event::kClientEof;
      return traits_type::eof();
    }
    setg(rbuf_, rbuf_, rbuf_ + n);
    return traits_type::to_int_type(rbuf_[0]);
  }
}

std::streambuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (sync() != 0) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() {
  const char* p = pbase();
  const std::int64_t write_deadline_ns =
      opts_.write_timeout_ms > 0
          ? obs::steady_now_ns() +
                static_cast<std::int64_t>(opts_.write_timeout_ms) * 1'000'000
          : 0;
  while (p < pptr()) {
    if (write_deadline_ns != 0 && obs::steady_now_ns() >= write_deadline_ns) {
      event_ = Event::kTimedOut;  // client stopped reading; don't wedge
      return -1;
    }
    pollfd pfd{fd_, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, kPollSliceMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (pr == 0) continue;
    const long n = inject_.write(fd_, p, static_cast<std::size_t>(pptr() - p));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return -1;
    }
    if (n == 0) return -1;
    p += n;
  }
  setp(wbuf_, wbuf_ + sizeof(wbuf_));
  return 0;
}

Server::Server(SessionHost& host, ServerConfig cfg)
    : host_(host),
      cfg_(cfg),
      accepted_(host.session_metrics().counter("svc.server.accepted")),
      shed_(host.session_metrics().counter("svc.server.shed")),
      timed_out_(host.session_metrics().counter("svc.server.timed_out")),
      drained_(host.session_metrics().counter("svc.server.drained")),
      errored_(host.session_metrics().counter("svc.server.session_errors")),
      active_gauge_(host.session_metrics().gauge("svc.server.active")) {
  cfg_.max_conns = std::max<std::size_t>(cfg_.max_conns, 1);
}

Server::Server(Service& svc, ServerConfig cfg)
    : owned_host_(std::make_unique<ServiceHost>(svc)),
      host_(*owned_host_),
      cfg_(cfg),
      accepted_(host_.session_metrics().counter("svc.server.accepted")),
      shed_(host_.session_metrics().counter("svc.server.shed")),
      timed_out_(host_.session_metrics().counter("svc.server.timed_out")),
      drained_(host_.session_metrics().counter("svc.server.drained")),
      errored_(host_.session_metrics().counter("svc.server.session_errors")),
      active_gauge_(host_.session_metrics().gauge("svc.server.active")) {
  cfg_.max_conns = std::max<std::size_t>(cfg_.max_conns, 1);
}

Server::~Server() {
  begin_drain();
  if (listener_ >= 0) {
    ::close(listener_);
    listener_ = -1;
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : sessions_) {
      if (s->fd >= 0) ::shutdown(s->fd, SHUT_RDWR);
      if (s->thread.joinable()) threads.push_back(std::move(s->thread));
    }
  }
  for (std::thread& t : threads) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : sessions_) {
    if (s->fd >= 0) ::close(s->fd);
  }
  sessions_.clear();
}

bool Server::listen(std::string& error) {
  listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener_ < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    error = std::string("bind: ") + std::strerror(errno);
    ::close(listener_);
    listener_ = -1;
    return false;
  }
  if (::listen(listener_, 128) < 0) {
    error = std::string("listen: ") + std::strerror(errno);
    ::close(listener_);
    listener_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listener_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  return true;
}

void Server::begin_drain() noexcept {
  draining_.store(true, std::memory_order_relaxed);
  host_.drain_begin();
}

std::size_t Server::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::size_t Server::peak_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_sessions_;
}

std::size_t Server::reap_locked() {
  // Join and erase in one pass, reading `done` exactly once per session: a
  // session that flips `done` between a separate join sweep and the erase
  // sweep would be destroyed with its thread still joinable (= terminate).
  auto it = sessions_.begin();
  while (it != sessions_.end()) {
    Session& s = **it;
    if (s.done.load(std::memory_order_acquire)) {
      if (s.thread.joinable()) s.thread.join();
      if (s.fd >= 0) {
        ::close(s.fd);
        s.fd = -1;
      }
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  active_gauge_.set(static_cast<double>(sessions_.size()));
  return sessions_.size();
}

std::size_t Server::reap() {
  std::lock_guard<std::mutex> lock(mu_);
  return reap_locked();
}

void Server::run_session(Session& session) {
  FdStreamBuf::Options opts;
  opts.idle_timeout_ms = cfg_.idle_timeout_ms;
  opts.read_timeout_ms = cfg_.read_timeout_ms;
  // A reply to a client that stopped reading is bounded by the same budget
  // as a frame that stopped arriving.
  opts.write_timeout_ms = cfg_.read_timeout_ms;
  opts.drain = &draining_;
  opts.faults = FaultPlan::from_env();
  FdStreamBuf buf(session.fd, opts);
  std::istream in(&buf);
  std::ostream out(&buf);
  SessionOptions session_opts;
  session_opts.max_frame_bytes = cfg_.max_frame_bytes;
  session_opts.control = &buf;
  SessionResult result;
  try {
    result = host_.serve(in, out, session_opts);
  } catch (const std::exception& e) {
    // A host bug must cost one session, not the whole daemon: an exception
    // escaping into this thread would std::terminate the process and tear
    // down every other connection with it.
    out.clear();
    write_err(out, "internal", std::string("session aborted: ") + e.what());
    errored_.add(1);
    result.end = SessionEnd::kEof;
  }
  if (result.end == SessionEnd::kStopped ||
      (result.end == SessionEnd::kEof &&
       buf.event() == FdStreamBuf::Event::kDrain)) {
    out.clear();
    out << "BYE\n" << std::flush;
    drained_.add(1);
  } else if (result.end == SessionEnd::kEof &&
             buf.event() == FdStreamBuf::Event::kTimedOut) {
    out.clear();
    out << "ERR timeout session deadline exceeded (idle "
        << cfg_.idle_timeout_ms << "ms / frame " << cfg_.read_timeout_ms
        << "ms)\n"
        << std::flush;
    timed_out_.add(1);
  }
  ::shutdown(session.fd, SHUT_RDWR);
  session.done.store(true, std::memory_order_release);
}

int Server::run() {
  if (listener_ < 0) return 1;
  while (!draining()) {
    pollfd pfd{listener_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 50);
    reap();
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;
    const int conn = ::accept(listener_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (reap_locked() >= cfg_.max_conns) {
      // Accept-then-shed: the client gets a typed verdict instead of a
      // mysterious RST or an unbounded backlog wait.
      shed_.add(1);
      const std::string msg = "ERR overload server at max connections (" +
                              std::to_string(cfg_.max_conns) + ")\n";
      send_nosignal(conn, msg.data(), msg.size());
      ::close(conn);
      continue;
    }
    if (cfg_.read_timeout_ms > 0) {
      // Belt-and-braces alongside the poll deadlines: even a read issued
      // outside the poll loop cannot block past the frame budget.
      timeval tv{};
      tv.tv_sec = cfg_.read_timeout_ms / 1000;
      tv.tv_usec = (cfg_.read_timeout_ms % 1000) * 1000;
      ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    auto session = std::make_unique<Session>();
    session->fd = conn;
    Session* raw = session.get();
    sessions_.push_back(std::move(session));
    peak_sessions_ = std::max(peak_sessions_, sessions_.size());
    accepted_.add(1);
    active_gauge_.set(static_cast<double>(sessions_.size()));
    raw->thread = std::thread(&Server::run_session, this, std::ref(*raw));
  }
  ::close(listener_);
  listener_ = -1;
  drain();
  return 0;
}

void Server::drain() {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto budget = std::chrono::milliseconds(cfg_.drain_timeout_ms);
  const auto soft_deadline = t0 + budget * 3 / 4;
  const auto hard_deadline = t0 + budget;
  // Phase 1 (75% of the budget): natural completion. In-flight SOLVEs run
  // to completion and reply OK; sessions then see the drain flag at their
  // next command boundary, get BYE, and exit.
  while (clock::now() < soft_deadline) {
    if (reap() == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (reap() == 0) return;
  // Phase 2: work still pending this deep into the budget is cancelled —
  // the host resolves every outstanding request terminally (the Service
  // host stops the scheduler, so blocked sessions wake and still send a
  // terminal "ERR cancelled" reply; the router host aborts its upstream
  // waits the same way).
  host_.drain_force();
  while (clock::now() < hard_deadline) {
    if (reap() == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Phase 3: force the stragglers' sockets shut; their reads/writes fail
  // immediately and the threads exit. Join everything before returning so
  // the process can exit 0 without leaking a thread.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : sessions_) {
      if (s->fd >= 0 && !s->done.load(std::memory_order_acquire)) {
        ::shutdown(s->fd, SHUT_RDWR);
      }
    }
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : sessions_) {
      if (s->thread.joinable()) threads.push_back(std::move(s->thread));
    }
  }
  for (std::thread& t : threads) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : sessions_) {
    if (s->fd >= 0) ::close(s->fd);
  }
  sessions_.clear();
  active_gauge_.set(0.0);
}

}  // namespace ttp::svc

#endif  // !_WIN32
