// Canonical instance keying for the serving layer.
//
// Two requests that describe the same test-and-treatment problem — the same
// subsets, costs, and relative weights, in any action order, under any
// action names, at any weight scale — should hit the same cache line. The
// canonical form makes that true:
//
//   * actions reordered by tt::canonical_action_order (tests before
//     treatments, each group stably sorted by (set, cost));
//   * names regenerated positionally ("test0", "treat0", ...), so labels
//     never affect the key;
//   * weights divided by their sum. C(S) is linear in the weight vector
//     (every term is t_i·p(S) summed down the recursion), so the optimal
//     tree is scale-invariant and the original expected cost is exactly
//     `weight_scale` times the canonical one in real arithmetic.
//
// The key is a 128-bit hash (two independent 64-bit FNV-1a/splitmix mixes)
// of the canonical text, so semantically identical requests collide and the
// chance of an accidental cross-instance collision is negligible. The
// canonicalization also hands back the permutation needed to translate a
// cached tree's action indices back into the requester's own indices.
//
// Caveat (documented, not hidden): weight normalization divides doubles, so
// two instances whose weights are proportional but not bit-identical after
// division (e.g. accumulated rounding upstream) may key differently. That
// only costs a duplicate solve — correctness never depends on collisions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tt/instance.hpp"
#include "tt/tree.hpp"

namespace ttp::svc {

/// 128-bit canonical-content key.
struct CanonKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CanonKey&, const CanonKey&) = default;

  /// 32 lowercase hex chars, hi first — the wire/debug spelling.
  std::string hex() const;
};

struct CanonKeyHash {
  std::size_t operator()(const CanonKey& k) const noexcept {
    // hi and lo are independent mixes of the same text; folding them keeps
    // the full entropy available to the shard selector and the hash map.
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9E3779B97F4A7C15ull));
  }
};

/// Two independent 64-bit mixes over arbitrary bytes (FNV-1a with distinct
/// offset bases, splitmix-finalized into `hi`). Exposed for tests.
CanonKey hash128(const std::string& bytes);

/// A canonicalized request.
struct Canonical {
  tt::Instance instance;         ///< Normalized weights, canonical actions.
  std::vector<int> to_original;  ///< canonical action i -> requester's index.
  double weight_scale = 1.0;     ///< Σ original weights; original cost =
                                 ///< canonical cost · weight_scale.
  std::string text;              ///< Canonical serialization the key hashes.
  CanonKey key;
};

/// Builds the canonical form. Calls ins.check() first and propagates its
/// std::invalid_argument for malformed input.
Canonical canonicalize(const tt::Instance& ins);

/// Rewrites a tree solved on the canonical instance so its action indices
/// refer to the requester's original actions (states and arcs unchanged).
tt::Tree remap_tree_actions(const tt::Tree& tree,
                            const std::vector<int>& to_original);

}  // namespace ttp::svc
