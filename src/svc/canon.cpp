#include "svc/canon.hpp"

#include <stdexcept>

#include "tt/serialize.hpp"

namespace ttp::svc {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;
constexpr std::uint64_t kFnvOffsetLo = 0xCBF29CE484222325ull;  // standard
constexpr std::uint64_t kFnvOffsetHi = 0x6C62272E07BB0142ull;  // FNV-1a 128 hi

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

CanonKey hash128(const std::string& bytes) {
  std::uint64_t lo = kFnvOffsetLo;
  std::uint64_t hi = kFnvOffsetHi;
  for (const unsigned char c : bytes) {
    lo = (lo ^ c) * kFnvPrime;
    // The hi lane folds the running position-sensitive lo back in, so the
    // two lanes do not reduce to one mix under a common prefix.
    hi = (hi ^ (c + (lo >> 56))) * kFnvPrime;
  }
  return CanonKey{splitmix64(hi), lo};
}

std::string CanonKey::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = kDigits[(hi >> (4 * i)) & 0xF];
    out[static_cast<std::size_t>(31 - i)] = kDigits[(lo >> (4 * i)) & 0xF];
  }
  return out;
}

Canonical canonicalize(const tt::Instance& ins) {
  ins.check();
  double total = 0.0;
  for (int j = 0; j < ins.k(); ++j) total += ins.weight(j);
  std::vector<double> weights(static_cast<std::size_t>(ins.k()));
  for (int j = 0; j < ins.k(); ++j) {
    weights[static_cast<std::size_t>(j)] = ins.weight(j) / total;
  }

  std::vector<int> order = tt::canonical_action_order(ins);
  tt::Instance canon(ins.k(), std::move(weights));
  for (const int i : order) {
    const tt::Action& a = ins.action(i);
    // Empty names regenerate positionally ("test0", "treat0", ...), erasing
    // requester labels from the keyed text.
    if (a.is_test) {
      canon.add_test(a.set, a.cost);
    } else {
      canon.add_treatment(a.set, a.cost);
    }
  }

  Canonical out{std::move(canon), std::move(order), total, {}, {}};
  out.text = tt::to_text(out.instance);
  out.key = hash128(out.text);
  return out;
}

tt::Tree remap_tree_actions(const tt::Tree& tree,
                            const std::vector<int>& to_original) {
  if (tree.empty()) return tree;
  std::vector<tt::TreeNode> nodes = tree.nodes();
  for (tt::TreeNode& n : nodes) {
    if (n.action < 0 ||
        n.action >= static_cast<int>(to_original.size())) {
      throw std::invalid_argument("remap_tree_actions: action out of range");
    }
    n.action = to_original[static_cast<std::size_t>(n.action)];
  }
  return tt::Tree(std::move(nodes), tree.root());
}

}  // namespace ttp::svc
