// Reusable framed wire client for the ttp_serve protocol.
//
// Everything that talks to a ttp_serve (or ttp_router) socket — the cluster
// router's upstream pool, the socket tests, future CLI tooling — used to
// grow its own ad-hoc connect/poll/recv loop. WireClient is the one shared
// implementation: a connect with a real deadline (non-blocking connect +
// poll + SO_ERROR, EINTR-safe), then line-framed request/reply over the
// same hardened FdStreamBuf the server side uses, so reads and writes are
// poll-sliced, deadline-bounded, EINTR-immune, and fault-injectable
// (FaultPlan) without any duplicated syscall plumbing.
//
// Deadlines are per call: read_line(ms)/read_until(term, ms) re-arm the
// stream deadline each time, so callers with an end-to-end budget can hand
// in the remaining slice per read. On EOF/timeout the convenience overloads
// return what arrived; last_event() distinguishes a clean peer EOF from a
// deadline hit from a socket error.
#pragma once

#ifndef _WIN32

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "svc/faultnet.hpp"
#include "svc/server.hpp"

namespace ttp::svc {

class WireClient {
 public:
  struct Options {
    int connect_timeout_ms = 5000;  ///< Budget for the TCP handshake.
    int io_timeout_ms = 5000;       ///< Default per-call read/write budget.
    FaultPlan faults{};             ///< Client-side fault injection (tests).
  };

  /// Connects to host:port; check connected() (the constructor never
  /// throws — error() carries the failure).
  WireClient(const std::string& host, int port, Options opts);
  WireClient(const std::string& host, int port)
      : WireClient(host, port, Options{}) {}
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  bool connected() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  const std::string& error() const noexcept { return error_; }

  /// Writes (and flushes) the whole payload under the write deadline.
  bool send(std::string_view text);

  /// One protocol line into `line` ('\r''\n' stripped); false on
  /// EOF/timeout/error — `line` still holds whatever partial text arrived.
  /// timeout_ms < 0 uses Options::io_timeout_ms.
  bool read_line(std::string& line, int timeout_ms = -1);
  /// Convenience (test-harness shape): the line, or the partial text / ""
  /// when the read failed.
  std::string read_line(int timeout_ms = -1);

  /// Lines up to an exactly-matching `terminator` line (excluded). True
  /// only when the terminator actually arrived. Each line gets a fresh
  /// per-call deadline slice.
  bool read_until(const std::string& terminator,
                  std::vector<std::string>& lines, int timeout_ms = -1);
  std::vector<std::string> read_until(const std::string& terminator,
                                      int timeout_ms = -1);

  /// True when a read would not block: buffered bytes, readable fd, or a
  /// peer EOF/reset waiting to be observed. Slices at most `timeout_ms`.
  bool poll_readable(int timeout_ms);

  /// Why the last failed read stopped (kNone after successful ones).
  FdStreamBuf::Event last_event() const noexcept;

  /// Half-close: signals EOF to the peer, reads still drain.
  void shutdown_write() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
  Options opts_;
  std::string error_;
  std::unique_ptr<FdStreamBuf> buf_;
  std::unique_ptr<std::iostream> io_;
};

}  // namespace ttp::svc

#endif  // !_WIN32
