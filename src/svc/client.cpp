#ifndef _WIN32

#include "svc/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>

namespace ttp::svc {

namespace {

/// Non-blocking connect bounded by timeout_ms; returns the connected fd
/// (restored to blocking mode) or -1 with `error` set.
int connect_with_timeout(const std::string& host, int port, int timeout_ms,
                         std::string& error) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                                   &res);
      rc != 0 || res == nullptr) {
    error = "resolve " + host + ": " + ::gai_strerror(rc);
    return -1;
  }
  const int fd = ::socket(res->ai_family, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    ::freeaddrinfo(res);
    return -1;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0 && errno != EINPROGRESS) {
    error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        error = "connect: timed out after " + std::to_string(timeout_ms) +
                "ms";
        ::close(fd);
        return -1;
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (pr < 0) {
        if (errno == EINTR) continue;
        error = std::string("poll: ") + std::strerror(errno);
        ::close(fd);
        return -1;
      }
      if (pr == 0) continue;  // re-check the deadline
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
      if (so_error != 0) {
        error = std::string("connect: ") + std::strerror(so_error);
        ::close(fd);
        return -1;
      }
      break;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

WireClient::WireClient(const std::string& host, int port, Options opts)
    : opts_(opts) {
  fd_ = connect_with_timeout(host, port, opts.connect_timeout_ms, error_);
  if (fd_ < 0) return;
  FdStreamBuf::Options buf_opts;
  // Per-call deadlines are re-armed through arm_deadline_ms; these defaults
  // cover writes (sync) and any read issued without an explicit budget.
  buf_opts.idle_timeout_ms = opts.io_timeout_ms;
  buf_opts.read_timeout_ms = opts.io_timeout_ms;
  buf_opts.write_timeout_ms = opts.io_timeout_ms;
  buf_opts.faults = opts.faults;
  buf_ = std::make_unique<FdStreamBuf>(fd_, buf_opts);
  io_ = std::make_unique<std::iostream>(buf_.get());
}

WireClient::~WireClient() { close(); }

bool WireClient::send(std::string_view text) {
  if (!connected()) return false;
  io_->clear();
  io_->write(text.data(), static_cast<std::streamsize>(text.size()));
  io_->flush();
  if (io_->good()) return true;
  error_ = "send failed (peer gone or write deadline hit)";
  return false;
}

bool WireClient::read_line(std::string& line, int timeout_ms) {
  line.clear();
  if (!connected()) return false;
  buf_->arm_deadline_ms(timeout_ms < 0 ? opts_.io_timeout_ms : timeout_ms);
  io_->clear();
  if (!std::getline(*io_, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

std::string WireClient::read_line(int timeout_ms) {
  std::string line;
  read_line(line, timeout_ms);
  return line;
}

bool WireClient::read_until(const std::string& terminator,
                            std::vector<std::string>& lines, int timeout_ms) {
  std::string line;
  for (;;) {
    if (!read_line(line, timeout_ms)) return false;
    if (line == terminator) return true;
    lines.push_back(line);
  }
}

std::vector<std::string> WireClient::read_until(const std::string& terminator,
                                                int timeout_ms) {
  std::vector<std::string> lines;
  read_until(terminator, lines, timeout_ms);
  return lines;
}

bool WireClient::poll_readable(int timeout_ms) {
  if (!connected()) return false;
  if (buf_->in_avail() > 0) return true;
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int pr = ::poll(&pfd, 1, timeout_ms < 0 ? 0 : timeout_ms);
    if (pr < 0 && errno == EINTR) continue;
    // POLLHUP/POLLERR count as readable: the next read observes the EOF.
    return pr > 0;
  }
}

FdStreamBuf::Event WireClient::last_event() const noexcept {
  return buf_ ? buf_->event() : FdStreamBuf::Event::kError;
}

void WireClient::shutdown_write() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void WireClient::close() noexcept {
  io_.reset();
  buf_.reset();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ttp::svc

#endif  // !_WIN32
