// Newline-framed text protocol for ttp_serve, factored out of the daemon so
// the stdio loop, the TCP connection handler, and the tests all drive the
// exact same code over plain iostreams.
//
// Request grammar (one command per line; '\r' tolerated before '\n'):
//
//   session  := command*
//   command  := solve | stats | metrics | health | trace | ping | quit
//   solve    := "SOLVE" NL instance-text NL "END" NL
//   stats    := "STATS" NL
//   metrics  := "METRICS" NL
//   health   := "HEALTH" NL
//   trace    := "TRACE" SP trace-id NL        (trace-id: 16 hex chars,
//                                              as reported in solve ok)
//   ping     := "PING" NL
//   quit     := "QUIT" NL
//
// where instance-text is the tt/serialize format (src/tt/serialize.hpp) —
// the wire reuses the library serialization verbatim, including comments.
//
// Replies:
//
//   solve ok  := "OK cache=" outcome " cost=" float " nodes=" int
//                " trace=" hex16 NL tree-text "END" NL
//   tree-text := "tree" int(root) NL node*          (see tree_to_wire)
//   node      := "node" idx action yes no {state} NL
//   solve err := "ERR " code " " message NL
//   stats     := "STATS" NL metric-lines "END" NL
//   metrics   := "METRICS" NL prometheus-text "END" NL
//   health    := "HEALTH" NL ready|degraded NL key-value-lines "END" NL
//   trace     := "TRACE" NL flight-record-lines "END" NL
//                (or "ERR not-found ..." when the ring no longer holds it)
//   ping      := "PONG" NL
//   quit      := "BYE" NL (handler returns)
//
// Error codes: bad-request (unparseable frame or malformed instance),
// oversize, overload (queue full), cancelled (shutdown), not-found
// (TRACE id absent from the flight recorder), internal.
#pragma once

#include <iosfwd>
#include <string>

#include "svc/service.hpp"
#include "tt/tree.hpp"

namespace ttp::svc {

/// Serializes a tree for the wire: "tree <root>\n" then one
/// "node <idx> <action> <yes> <no> {state}\n" per node (indices as in
/// Tree::nodes(), -1 for absent arcs). An empty tree is "tree -1\n".
std::string tree_to_wire(const tt::Tree& tree);

/// Parses tree_to_wire output; throws std::invalid_argument on malformed
/// input. Round-trips structurally (used by client-side tests).
tt::Tree tree_from_wire(const std::string& text);

/// Runs one session: reads commands from `in` until EOF or QUIT, writes
/// replies to `out` (flushed per reply). Protocol errors produce ERR
/// replies, never exceptions; returns the number of commands handled.
std::size_t serve_session(Service& svc, std::istream& in, std::ostream& out);

}  // namespace ttp::svc
