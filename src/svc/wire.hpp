// Newline-framed text protocol for ttp_serve, factored out of the daemon so
// the stdio loop, the TCP connection handler, and the tests all drive the
// exact same code over plain iostreams.
//
// Request grammar (one command per line; '\r' tolerated before '\n'):
//
//   session  := command*
//   command  := solve | stats | metrics | health | trace | ping | quit
//   solve    := "SOLVE" NL instance-text NL "END" NL
//   stats    := "STATS" NL
//   metrics  := "METRICS" NL
//   health   := "HEALTH" NL
//   trace    := "TRACE" SP trace-id NL        (trace-id: 16 hex chars,
//                                              as reported in solve ok)
//   ping     := "PING" NL
//   quit     := "QUIT" NL
//
// where instance-text is the tt/serialize format (src/tt/serialize.hpp) —
// the wire reuses the library serialization verbatim, including comments.
//
// Replies:
//
//   solve ok  := "OK cache=" outcome " cost=" float " nodes=" int
//                " trace=" hex16 NL tree-text "END" NL
//   tree-text := "tree" int(root) NL node*          (see tree_to_wire)
//   node      := "node" idx action yes no {state} NL
//   solve err := "ERR " code " " message NL
//   stats     := "STATS" NL metric-lines "END" NL
//   metrics   := "METRICS" NL prometheus-text "END" NL
//   health    := "HEALTH" NL ready|degraded|draining NL key-value-lines
//                "END" NL
//   trace     := "TRACE" NL flight-record-lines "END" NL
//                (or "ERR not-found ..." when the ring no longer holds it)
//   ping      := "PONG" NL
//   quit      := "BYE" NL (handler returns)
//
// Error codes: bad-request (unparseable frame or malformed instance),
// oversize (admission limits or a SOLVE frame past max_frame_bytes),
// overload (queue full), cancelled (shutdown), not-found (TRACE id absent
// from the flight recorder), timeout (session deadline hit; sent by the
// server transport, see svc/server.hpp), upstream (sent by ttp_router when
// every replica for a key is unreachable; see src/cluster/router.hpp),
// internal.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "svc/service.hpp"
#include "tt/tree.hpp"

namespace ttp::svc {

/// Transport hooks into the session loop. A transport (the TCP server's
/// FdStreamBuf) implements this to learn where the protocol stands —
/// between commands (idle deadline applies, drain may end the session) or
/// inside a frame (the stricter read deadline applies) — without the wire
/// layer knowing anything about sockets.
class SessionControl {
 public:
  virtual ~SessionControl() = default;
  /// The next read starts a fresh command; transports arm the idle
  /// deadline and may abort the read when the server is draining.
  virtual void on_boundary() {}
  /// Subsequent reads are frame body; transports arm the read deadline
  /// (the whole frame must arrive within it — slowloris protection).
  virtual void on_frame() {}
  /// Checked between commands: true ends the session (graceful drain).
  virtual bool should_end() { return false; }
  /// True when the transport itself cut the stream (deadline hit, socket
  /// error) rather than the client finishing cleanly. Mid-frame EOF then
  /// skips the "ERR bad-request ... not terminated" reply so the
  /// transport's own verdict ("ERR timeout ...") is the one terminal line.
  virtual bool transport_aborted() { return false; }
};

/// Per-session knobs, defaulted for embedders and tests.
struct SessionOptions {
  /// SOLVE frame body cap in bytes; past it the reply is "ERR oversize"
  /// (sent immediately, the rest of the frame is discarded unbuffered).
  /// 0 = unlimited.
  std::size_t max_frame_bytes = std::size_t{1} << 20;
  SessionControl* control = nullptr;  ///< Optional transport hooks.
};

/// Why serve_session returned — transports decide their close-out line
/// (BYE on drain, ERR timeout on deadline) from this plus their own state.
enum class SessionEnd {
  kEof,      ///< Input ended (client closed, timeout, or drain abort).
  kQuit,     ///< Client sent QUIT; BYE already written.
  kStopped,  ///< SessionControl::should_end() ended it; nothing written.
};

struct SessionResult {
  std::size_t handled = 0;  ///< Commands processed.
  SessionEnd end = SessionEnd::kEof;
};

/// Serializes a tree for the wire: "tree <root>\n" then one
/// "node <idx> <action> <yes> <no> {state}\n" per node (indices as in
/// Tree::nodes(), -1 for absent arcs). An empty tree is "tree -1\n".
std::string tree_to_wire(const tt::Tree& tree);

/// Parses tree_to_wire output; throws std::invalid_argument on malformed
/// input — including state-set bits outside [0, 32), yes/no arcs that
/// reference nodes outside the tree, and a root outside the node array.
/// Round-trips structurally (used by client-side tests).
tt::Tree tree_from_wire(const std::string& text);

/// Writes a one-line typed error reply: "ERR <code> <message>\n" (flushed;
/// newlines in the message flattened to spaces so the framing holds).
/// Shared with the cluster router, which speaks the same reply grammar.
void write_err(std::ostream& out, std::string_view code,
               const std::string& message);

/// Reads a SOLVE frame body (the lines after the "SOLVE" command, up to
/// END) into `blob`, enforcing opts.max_frame_bytes with the early
/// "ERR oversize" verdict + unbuffered discard-until-END. Returns true when
/// the frame arrived complete and within budget; false when the caller must
/// not process it (the oversize or bad-request reply was already written,
/// or the transport cut the stream and owns the terminal line).
bool read_solve_frame(std::istream& in, std::ostream& out,
                      const SessionOptions& opts, std::string& blob);

/// Runs one session: reads commands from `in` until EOF, QUIT, or the
/// transport's should_end(), writes replies to `out` (flushed per reply).
/// Protocol errors produce ERR replies, never exceptions.
SessionResult serve_session(Service& svc, std::istream& in, std::ostream& out,
                            const SessionOptions& opts);

/// Back-compat convenience: default options; returns the command count.
std::size_t serve_session(Service& svc, std::istream& in, std::ostream& out);

}  // namespace ttp::svc
