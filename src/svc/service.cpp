#include "svc/service.hpp"

#include <chrono>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "obs/trace.hpp"
#include "tt/kernel.hpp"

namespace ttp::svc {

std::string_view cache_outcome_name(CacheOutcome o) noexcept {
  switch (o) {
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kInflight:
      return "inflight";
    case CacheOutcome::kNone:
      return "none";
  }
  return "unknown";
}

Service::Service(ServiceConfig cfg)
    : cache_(std::make_unique<ProcedureCache>(cfg.cache, metrics_)),
      scheduler_(std::make_unique<Scheduler>(*cache_, cfg.scheduler, metrics_,
                                             cfg.workers)) {}

Response Service::from_outcome(const SolveOutcome& outcome,
                               const std::vector<int>& to_original,
                               double weight_scale, CacheOutcome cache) {
  Response r;
  r.status = outcome.status;
  r.cache = cache;
  r.error = outcome.error;
  if (outcome.status == Status::kOk && outcome.proc != nullptr) {
    r.tree = remap_tree_actions(outcome.proc->tree, to_original);
    r.cost = outcome.proc->cost * weight_scale;
  }
  return r;
}

Service::Pending Service::submit(const tt::Instance& ins) {
  Pending p;
  metrics_.counter("svc.requests").add(1);
  TTP_TRACE_SPAN(span, "svc.request");

  std::optional<Canonical> canon;
  try {
    TTP_TRACE_SPAN(canon_span, "svc.canon");
    canon.emplace(canonicalize(ins));
  } catch (const std::exception& e) {
    metrics_.counter("svc.requests.malformed").add(1);
    p.is_resolved_ = true;
    p.resolved_.status = Status::kError;
    p.resolved_.cache = CacheOutcome::kNone;
    p.resolved_.error = e.what();
    return p;
  }
  p.to_original_ = std::move(canon->to_original);
  p.weight_scale_ = canon->weight_scale;

  std::shared_ptr<const CachedProcedure> cached;
  {
    TTP_TRACE_SPAN(cache_span, "svc.cache");
    cached = cache_->find(canon->key);
  }
  if (cached != nullptr) {
    p.is_resolved_ = true;
    p.cache_ = CacheOutcome::kHit;
    p.resolved_ = from_outcome(SolveOutcome{Status::kOk, std::move(cached), {}},
                               p.to_original_, p.weight_scale_,
                               CacheOutcome::kHit);
    return p;
  }

  Scheduler::Ticket ticket;
  {
    TTP_TRACE_SPAN(queue_span, "svc.queue");
    ticket = scheduler_->submit(*canon);
  }
  p.cache_ = ticket.leader ? CacheOutcome::kMiss : CacheOutcome::kInflight;
  p.future_ = std::move(ticket.future);
  return p;
}

Response Service::solve(const tt::Instance& ins) {
  const auto t0 = std::chrono::steady_clock::now();
  Response r = submit(ins).get();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  metrics_.histogram("svc.request.us").record(static_cast<std::uint64_t>(us));
  metrics_
      .counter(std::string("svc.responses.") +
               std::string(status_name(r.status)))
      .add(1);
  return r;
}

Response Service::Pending::get() {
  if (is_resolved_) return resolved_;
  const SolveOutcome outcome = future_.get();
  // cache_ distinguishes leader (miss) from follower (inflight); rejections
  // and cancellations report kNone since the cache never participated.
  const CacheOutcome cache =
      outcome.status == Status::kOk ? cache_ : CacheOutcome::kNone;
  resolved_ =
      Service::from_outcome(outcome, to_original_, weight_scale_, cache);
  is_resolved_ = true;
  return resolved_;
}

bool Service::Pending::ready() const {
  if (is_resolved_) return true;
  return future_.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

std::string Service::stats_text() const {
  std::ostringstream os;
  // Which kernel the solve path dispatches to (scalar | simd-portable |
  // simd-avx2) — operators reading STATS see at a glance whether the
  // binary picked up AVX2 on this host or was pinned via TTP_KERNEL.
  os << "kernel.variant: " << tt::active_kernel_variant_name() << "\n";
  metrics_.print(os, "");
  return os.str();
}

}  // namespace ttp::svc
