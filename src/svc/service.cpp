#include "svc/service.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "obs/export.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"
#include "tt/kernel.hpp"

namespace ttp::svc {

namespace {

/// Clamped microsecond delta between two steady_now_ns stamps. Follower
/// requests can join a solve whose drain stamp predates their own
/// admission, so negative intervals clamp to zero instead of wrapping.
std::uint64_t us_between(std::int64_t later_ns, std::int64_t earlier_ns) {
  return later_ns > earlier_ns
             ? static_cast<std::uint64_t>((later_ns - earlier_ns) / 1000)
             : 0;
}

std::uint32_t clamp_u32(std::uint64_t v) {
  return v > 0xffffffffull ? 0xffffffffu : static_cast<std::uint32_t>(v);
}

/// TelemetryConfig::slow_ms == -1 defers to TTP_SLOW_MS (unset -> off).
int resolve_slow_ms(int configured) {
  if (configured >= 0) return configured;
  const char* env = std::getenv("TTP_SLOW_MS");
  if (env == nullptr || *env == '\0') return -1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return -1;
  return static_cast<int>(v);
}

}  // namespace

std::string_view cache_outcome_name(CacheOutcome o) noexcept {
  switch (o) {
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kInflight:
      return "inflight";
    case CacheOutcome::kStore:
      return "store";
    case CacheOutcome::kNone:
      return "none";
  }
  return "unknown";
}

const char* Service::stage_name(std::size_t s) noexcept {
  switch (s) {
    case kAdmit:
      return "admit";
    case kQueue:
      return "queue";
    case kBatch:
      return "batch";
    case kSolve:
      return "solve";
    case kRespond:
      return "respond";
    case kE2e:
      return "e2e";
  }
  return "unknown";
}

Service::Service(ServiceConfig cfg)
    : flight_(cfg.telemetry.flight_capacity),
      slow_ms_(resolve_slow_ms(cfg.telemetry.slow_ms)),
      slow_log_path_(cfg.telemetry.slow_log),
      cfg_(cfg),
      cache_(std::make_unique<ProcedureCache>(cfg.cache, metrics_)),
      store_(cfg.store.dir.empty()
                 ? nullptr
                 : std::make_unique<store::ProcedureStore>(cfg.store,
                                                           metrics_)),
      scheduler_(std::make_unique<Scheduler>(*cache_, cfg.scheduler, metrics_,
                                             cfg.workers)) {
  if (store_ != nullptr) scheduler_->set_store(store_.get());
}

Response Service::from_outcome(const SolveOutcome& outcome,
                               const std::vector<int>& to_original,
                               double weight_scale, CacheOutcome cache) {
  Response r;
  r.status = outcome.status;
  r.cache = cache;
  r.error = outcome.error;
  if (outcome.status == Status::kOk && outcome.proc != nullptr) {
    r.tree = remap_tree_actions(outcome.proc->tree, to_original);
    r.cost = outcome.proc->cost * weight_scale;
  }
  return r;
}

Service::Pending Service::submit(const tt::Instance& ins) {
  Pending p;
  p.svc_ = this;
  p.trace_ = obs::next_trace_id();
  p.t0_ns_ = obs::steady_now_ns();
  // Bind for the admission path: the canon/cache/queue spans below (and
  // everything the scheduler runs synchronously) carry this request's ID.
  const obs::TraceBinding bind(p.trace_);
  metrics_.counter("svc.requests").add(1);
  TTP_TRACE_SPAN(span, "svc.request");

  std::optional<Canonical> canon;
  try {
    TTP_TRACE_SPAN(canon_span, "svc.canon");
    canon.emplace(canonicalize(ins));
  } catch (const std::exception& e) {
    metrics_.counter("svc.requests.malformed").add(1);
    p.is_resolved_ = true;
    p.resolved_.status = Status::kError;
    p.resolved_.cache = CacheOutcome::kNone;
    p.resolved_.error = e.what();
    p.resolved_.trace = p.trace_;
    obs::FlightRecord rec;
    rec.trace = p.trace_;
    rec.start_ns = p.t0_ns_;
    rec.e2e_us = us_between(obs::steady_now_ns(), p.t0_ns_);
    rec.admit_us = clamp_u32(rec.e2e_us);
    rec.outcome = static_cast<std::uint8_t>(CacheOutcome::kNone);
    rec.status = static_cast<std::uint8_t>(Status::kError);
    finalize(rec);
    return p;
  }
  p.to_original_ = std::move(canon->to_original);
  p.weight_scale_ = canon->weight_scale;
  p.key_ = canon->key;
  p.k_ = static_cast<std::uint16_t>(ins.k());
  p.actions_ = static_cast<std::uint16_t>(ins.num_actions());

  std::shared_ptr<const CachedProcedure> cached;
  {
    TTP_TRACE_SPAN(cache_span, "svc.cache");
    cached = cache_->find(canon->key);
  }
  if (cached != nullptr) {
    resolve_cached(p, std::move(cached), CacheOutcome::kHit);
    return p;
  }

  // Durable second tier: an LRU miss may still be on disk from an earlier
  // run (or an evicted entry). A store hit deserializes from the mapped
  // segment, repopulates the LRU, and resolves inline — no kernel solve.
  if (store_ != nullptr) {
    std::optional<store::ProcedureStore::Procedure> stored;
    {
      TTP_TRACE_SPAN(store_span, "svc.store");
      stored = store_->get(store::StoreKey{canon->key.hi, canon->key.lo});
    }
    if (stored.has_value()) {
      auto proc = std::make_shared<CachedProcedure>();
      proc->tree = std::move(stored->tree);
      proc->cost = stored->cost;
      proc->bytes = approx_bytes(*proc);
      cache_->insert(canon->key, proc);
      resolve_cached(p, std::move(proc), CacheOutcome::kStore);
      return p;
    }
  }

  Scheduler::Ticket ticket;
  {
    TTP_TRACE_SPAN(queue_span, "svc.queue");
    ticket = scheduler_->submit(*canon, p.trace_);
  }
  p.cache_ = ticket.leader ? CacheOutcome::kMiss : CacheOutcome::kInflight;
  p.leader_trace_ = ticket.leader ? 0 : ticket.leader_trace;
  p.admit_us_ = clamp_u32(us_between(obs::steady_now_ns(), p.t0_ns_));
  p.future_ = std::move(ticket.future);
  return p;
}

void Service::resolve_cached(Pending& p,
                             std::shared_ptr<const CachedProcedure> proc,
                             CacheOutcome outcome) {
  const std::int64_t hit_ns = obs::steady_now_ns();
  p.is_resolved_ = true;
  p.cache_ = outcome;
  p.resolved_ = from_outcome(SolveOutcome{Status::kOk, std::move(proc), {}},
                             p.to_original_, p.weight_scale_, outcome);
  p.resolved_.trace = p.trace_;
  const std::int64_t end_ns = obs::steady_now_ns();
  obs::FlightRecord rec;
  rec.trace = p.trace_;
  rec.key_hi = p.key_.hi;
  rec.key_lo = p.key_.lo;
  rec.start_ns = p.t0_ns_;
  rec.admit_us = clamp_u32(us_between(hit_ns, p.t0_ns_));
  rec.respond_us = clamp_u32(us_between(end_ns, hit_ns));
  rec.e2e_us = us_between(end_ns, p.t0_ns_);
  rec.k = p.k_;
  rec.actions = p.actions_;
  rec.outcome = static_cast<std::uint8_t>(outcome);
  rec.status = static_cast<std::uint8_t>(Status::kOk);
  finalize(rec);
}

Response Service::solve(const tt::Instance& ins) {
  const auto t0 = std::chrono::steady_clock::now();
  Response r = submit(ins).get();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  metrics_.histogram("svc.request.us").record(static_cast<std::uint64_t>(us));
  metrics_
      .counter(std::string("svc.responses.") +
               std::string(status_name(r.status)))
      .add(1);
  return r;
}

Response Service::Pending::get() {
  if (is_resolved_) return resolved_;
  const SolveOutcome outcome = future_.get();
  const std::int64_t wake_ns = obs::steady_now_ns();
  // cache_ distinguishes leader (miss) from follower (inflight); rejections
  // and cancellations report kNone since the cache never participated.
  const CacheOutcome cache =
      outcome.status == Status::kOk ? cache_ : CacheOutcome::kNone;
  {
    // The response build (tree remap) belongs to this request's trace too.
    const obs::TraceBinding bind(trace_);
    TTP_TRACE_SPAN(respond_span, "svc.respond");
    resolved_ =
        Service::from_outcome(outcome, to_original_, weight_scale_, cache);
  }
  resolved_.trace = trace_;
  is_resolved_ = true;

  const std::int64_t end_ns = obs::steady_now_ns();
  obs::FlightRecord rec;
  rec.trace = trace_;
  rec.leader = leader_trace_;
  rec.key_hi = key_.hi;
  rec.key_lo = key_.lo;
  rec.start_ns = t0_ns_;
  rec.admit_us = admit_us_;
  if (outcome.drain_ns != 0) {
    const std::uint64_t to_drain = us_between(outcome.drain_ns, t0_ns_);
    rec.queue_us =
        clamp_u32(to_drain > admit_us_ ? to_drain - admit_us_ : 0);
    rec.batch_us =
        clamp_u32(us_between(outcome.solve_start_ns, outcome.drain_ns));
    rec.solve_us =
        clamp_u32(us_between(outcome.solve_end_ns, outcome.solve_start_ns));
  }
  rec.respond_us = clamp_u32(us_between(end_ns, wake_ns));
  rec.e2e_us = us_between(end_ns, t0_ns_);
  rec.k = k_;
  rec.actions = actions_;
  rec.outcome = static_cast<std::uint8_t>(cache);
  rec.status = static_cast<std::uint8_t>(outcome.status);
  rec.batch = outcome.batch;
  rec.batch_seq = outcome.batch_seq;
  svc_->finalize(rec);
  return resolved_;
}

bool Service::Pending::ready() const {
  if (is_resolved_) return true;
  return future_.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

void Service::finalize(const obs::FlightRecord& rec) {
  // admit/respond/e2e apply to every request; the middle stages only to
  // requests that actually waited on a solve (recording zeros for cache
  // hits would drag the queue/solve medians to 0 and hide the tail).
  stage_sketches_[kAdmit].record(rec.admit_us);
  stage_sketches_[kRespond].record(rec.respond_us);
  stage_sketches_[kE2e].record(rec.e2e_us);
  if (rec.batch != 0) {
    stage_sketches_[kQueue].record(rec.queue_us);
    stage_sketches_[kBatch].record(rec.batch_us);
    stage_sketches_[kSolve].record(rec.solve_us);
  }
  flight_.record(rec);
  if (slow_ms_ >= 0 &&
      rec.e2e_us >= static_cast<std::uint64_t>(slow_ms_) * 1000) {
    metrics_.counter("svc.slow_requests").add(1);
    write_slow_capture(rec);
  }
}

void Service::write_slow_capture(const obs::FlightRecord& rec) {
  std::ostringstream line;
  line << "{\"trace\":\"" << obs::trace_hex(rec.trace) << '"';
  if (rec.leader != 0) {
    line << ",\"leader\":\"" << obs::trace_hex(rec.leader) << '"';
  }
  line << ",\"key\":\"" << obs::trace_hex(rec.key_hi)
       << obs::trace_hex(rec.key_lo) << '"'
       << ",\"outcome\":\""
       << cache_outcome_name(static_cast<CacheOutcome>(rec.outcome)) << '"'
       << ",\"status\":\"" << status_name(static_cast<Status>(rec.status))
       << '"' << ",\"e2e_us\":" << rec.e2e_us
       << ",\"admit_us\":" << rec.admit_us
       << ",\"queue_us\":" << rec.queue_us
       << ",\"batch_us\":" << rec.batch_us
       << ",\"solve_us\":" << rec.solve_us
       << ",\"respond_us\":" << rec.respond_us << ",\"k\":" << rec.k
       << ",\"actions\":" << rec.actions << ",\"batch\":" << rec.batch
       << ",\"batch_seq\":" << rec.batch_seq;
  // The span tree, when tracing is on: everything recorded under this
  // trace ID, compact, inlined so one grep-able line tells the whole story.
  const auto spans = obs::tracer().snapshot_trace(rec.trace);
  line << ",\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& s = spans[i];
    if (i != 0) line << ',';
    line << "{\"name\":\"" << obs::json_escape(s.name)
         << "\",\"start_ns\":" << s.start_ns
         << ",\"wall_ns\":" << s.wall_ns() << ",\"tid\":" << s.tid;
    if (!s.attrs.empty()) {
      line << ",\"attrs\":{";
      for (std::size_t a = 0; a < s.attrs.size(); ++a) {
        if (a != 0) line << ',';
        line << '"' << obs::json_escape(s.attrs[a].first) << "\":\""
             << obs::json_escape(s.attrs[a].second) << '"';
      }
      line << '}';
    }
    line << '}';
  }
  line << "]}";

  std::lock_guard<std::mutex> lock(slow_log_mu_);
  if (slow_log_path_.empty()) {
    std::cerr << line.str() << '\n';
  } else {
    std::ofstream out(slow_log_path_, std::ios::app);
    if (out) out << line.str() << '\n';
  }
}

std::string Service::stats_text() const {
  std::ostringstream os;
  // The preamble keeps the same byte-stable invariant as the registry dump
  // below: every `name: value` line in STATS is sorted by name, preamble
  // included (admission.* < kernel.* < store.* < svc.*) — smoke-checked by
  // tools/serve_smoke.py.
  // The effective admission limits, so an operator reading STATS can tell
  // which tier a rejected instance tripped without consulting flags.
  os << "admission.max_actions: " << cfg_.scheduler.max_actions << "\n"
     << "admission.max_k: " << cfg_.scheduler.max_k << "\n"
     << "admission.max_sparse_k: " << cfg_.scheduler.max_sparse_k << "\n"
     << "admission.sparse_budget_bytes: " << cfg_.scheduler.sparse_budget_bytes
     << "\n";
  // Which kernel the solve path dispatches to (scalar | simd-portable |
  // simd-avx2) — operators reading STATS see at a glance whether the
  // binary picked up AVX2 on this host or was pinned via TTP_KERNEL.
  os << "kernel.variant: " << tt::active_kernel_variant_name() << "\n";
  if (store_ != nullptr) {
    os << "store.dir: " << store_->config().dir << "\n"
       << "store.max_bytes: " << store_->config().max_bytes << "\n"
       << "store.sync: " << store::sync_mode_name(store_->config().sync)
       << "\n";
  } else {
    os << "store.dir: (off)\n";
  }
  metrics_.print(os, "");
  return os.str();
}

std::string Service::metrics_text() const {
  std::ostringstream os;
  os << "# TYPE ttp_build_info gauge\n"
     << "ttp_build_info{kernel=\"" << tt::active_kernel_variant_name()
     << "\"} 1\n";
  obs::write_prometheus(os, metrics_);
  // One summary family, labeled by stage; the TYPE header rides on the
  // first stage only.
  for (std::size_t s = 0; s < kStageCount; ++s) {
    const std::string label =
        std::string("stage=\"") + stage_name(s) + "\"";
    obs::write_prometheus_summary(os, "svc.latency.seconds", label,
                                  stage_sketches_[s].snapshot(), 1e-6,
                                  /*with_type_header=*/s == 0);
  }
  return os.str();
}

std::string Service::health_text() const {
  const std::size_t depth = scheduler_->queue_depth();
  const std::size_t max_queue = cfg_.scheduler.max_queue;
  const bool degraded = max_queue > 0 && depth >= max_queue / 2;
  std::ostringstream os;
  os << (draining() ? "draining" : degraded ? "degraded" : "ready") << '\n'
     << "queue.depth: " << depth << '\n'
     << "queue.max: " << max_queue << '\n'
     << "cache.bytes: " << cache_->bytes() << '\n'
     << "cache.capacity_bytes: " << cache_->capacity_bytes() << '\n'
     << "workers: " << scheduler_->workers() << '\n'
     << "flight.recorded: " << flight_.total_recorded() << '\n';
  if (store_ != nullptr) {
    const store::StoreStats st = store_->stats();
    os << "store.bytes: " << st.bytes << '\n'
       << "store.live_records: " << st.live_records << '\n'
       << "store.segments: " << st.segments << '\n'
       << "store.corrupt_skipped: " << st.corrupt_skipped << '\n';
  } else {
    os << "store: off\n";
  }
  return os.str();
}

}  // namespace ttp::svc
